module itsim

go 1.22
