package itsim_test

import (
	"bytes"
	"strings"
	"testing"

	"itsim"
)

func TestPoliciesRoundTrip(t *testing.T) {
	ks := itsim.Policies()
	if len(ks) != 5 {
		t.Fatalf("%d policies", len(ks))
	}
	for _, k := range ks {
		back, err := itsim.PolicyByName(k.String())
		if err != nil || back != k {
			t.Fatalf("PolicyByName(%q) = %v, %v", k.String(), back, err)
		}
	}
}

func TestBatchesExposed(t *testing.T) {
	bs := itsim.Batches()
	if len(bs) != 4 {
		t.Fatalf("%d batches", len(bs))
	}
	b, err := itsim.BatchByName(bs[2].Name)
	if err != nil || b.Name != bs[2].Name {
		t.Fatalf("BatchByName: %v %v", b, err)
	}
}

func TestWorkloadsExposed(t *testing.T) {
	ws := itsim.Workloads()
	if len(ws) != 9 {
		t.Fatalf("%d workloads", len(ws))
	}
	for _, name := range ws {
		g, err := itsim.NewGenerator(name, 0.01)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Len() == 0 || g.FootprintBytes() == 0 {
			t.Fatalf("%s: degenerate generator", name)
		}
	}
	if _, err := itsim.NewGenerator("bogus", 1); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestRunBatchPublicAPI(t *testing.T) {
	b, err := itsim.BatchByName("No_Data_Intensive")
	if err != nil {
		t.Fatal(err)
	}
	run, err := itsim.RunBatch(b, itsim.ITS, itsim.Options{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if run.Policy != "ITS" || len(run.Procs) != 6 || run.Makespan <= 0 {
		t.Fatalf("run = %+v", run)
	}
}

func TestTraceRoundTripPublicAPI(t *testing.T) {
	g, err := itsim.NewGenerator("xz", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := itsim.WriteTrace(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := itsim.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "xz" || back.Len() != g.Len() {
		t.Fatalf("round trip: %s %d", back.Name(), back.Len())
	}
	st := itsim.AnalyzeTrace(back)
	if st.Records != g.Len() {
		t.Fatalf("stats records %d, want %d", st.Records, g.Len())
	}
}

func TestRunProcessesPublicAPI(t *testing.T) {
	mk := func(name string) itsim.Generator {
		g, err := itsim.NewGenerator(name, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	specs := []itsim.ProcessSpec{
		{Name: "a", Gen: mk("wrf"), Priority: 2, BaseVA: itsim.WorkloadBaseVA},
		{Name: "b", Gen: mk("randomwalk"), Priority: 1, BaseVA: itsim.WorkloadBaseVA},
	}
	run, err := itsim.RunProcesses("custom", specs, itsim.Sync, 1, itsim.Options{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Procs) != 2 || !run.Procs[0].Finished || !run.Procs[1].Finished {
		t.Fatal("custom run incomplete")
	}
}

func TestDefaultMachineConfigMatchesPaper(t *testing.T) {
	cfg := itsim.DefaultMachineConfig()
	if cfg.LLCSize != 8<<20 || cfg.LLCWays != 16 || cfg.LineBytes != 64 {
		t.Fatalf("LLC config %+v diverges from §4.1", cfg)
	}
	if cfg.BusLanes != 4 {
		t.Fatalf("PCIe lanes = %d, want 4", cfg.BusLanes)
	}
}

// TestPaperSetupConstants pins every §4.1 constant the reproduction relies
// on (the DESIGN.md tbl-setup experiment).
func TestPaperSetupConstants(t *testing.T) {
	cfg := itsim.DefaultMachineConfig()
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"LLC bytes", int64(cfg.LLCSize), 8 << 20},
		{"LLC ways", int64(cfg.LLCWays), 16},
		{"line bytes", int64(cfg.LineBytes), 64},
		{"PCIe lanes", int64(cfg.BusLanes), 4},
		{"lane bandwidth B/s", cfg.LaneBandwidth, 3_983_000_000},
		{"ULL read ns", int64(cfg.Device.ReadLatency), 3_000},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	// Unscaled SCHED_RR slices are the paper's 5 ms…800 ms.
	min1, max1 := itsim.SliceRange(50) // scale 50 ⇒ past the floor region
	if max1/min1 < 100 {
		t.Errorf("slice ratio %v:%v lost the NICE spread", max1, min1)
	}
}

func TestITSConfigAblationViaPublicAPI(t *testing.T) {
	b, _ := itsim.BatchByName("1_Data_Intensive")
	full, err := itsim.RunBatch(b, itsim.ITS, itsim.Options{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := itsim.RunBatch(b, itsim.ITS, itsim.Options{
		Scale: 0.02,
		ITS:   itsim.ITSConfig{DisablePrefetch: true, DisablePreExecute: true, DisableSelfSacrificing: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalMajorFaults() >= bare.TotalMajorFaults() {
		t.Fatalf("full ITS (%d faults) not better than disabled ITS (%d faults)",
			full.TotalMajorFaults(), bare.TotalMajorFaults())
	}
}

func TestFacadeExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweeps in -short mode")
	}
	opts := itsim.Options{Scale: 0.01}
	// Crossover through the facade.
	xo, err := itsim.RunCrossover(opts, []int{1})
	if err != nil || len(xo) != 1 {
		t.Fatalf("RunCrossover: %v %v", xo, err)
	}
	// Spin sweep through the facade.
	sp, err := itsim.RunSpinSweep(opts, []itsim.Time{7000})
	if err != nil || len(sp) != 4 {
		t.Fatalf("RunSpinSweep: %d pts, %v", len(sp), err)
	}
	// Sensitivity through the facade.
	se, err := itsim.RunSensitivity("No_Data_Intensive", 2, opts)
	if err != nil || len(se) != 5 {
		t.Fatalf("RunSensitivity: %d, %v", len(se), err)
	}
	// Custom policy through the facade.
	b, _ := itsim.BatchByName("No_Data_Intensive")
	run, err := itsim.RunBatchCustom(b, itsim.NewSpinBlockPolicy(0), opts)
	if err != nil || run.Makespan <= 0 {
		t.Fatalf("RunBatchCustom: %v %v", run, err)
	}
}

func TestFacadeGraphWorkloads(t *testing.T) {
	g := itsim.NewGraph(256, 4, 1)
	if g.Edges() == 0 || g.FootprintBytes() == 0 {
		t.Fatal("degenerate graph")
	}
	gens := []itsim.Generator{
		itsim.NewRandomWalkTrace(g, 2, 1000, 1),
		itsim.NewPageRankTrace(g, 1000, 2),
		itsim.NewSSSPTrace(g, 1000, 3),
	}
	specs := make([]itsim.ProcessSpec, len(gens))
	for i, gen := range gens {
		st := itsim.AnalyzeTrace(gen)
		if st.Records != 1000 {
			t.Fatalf("%s: %d records", gen.Name(), st.Records)
		}
		specs[i] = itsim.ProcessSpec{Name: gen.Name(), Gen: gen, Priority: i + 1, BaseVA: itsim.GraphHeapBase}
	}
	run, err := itsim.RunProcesses("graphs", specs, itsim.ITS, 3, itsim.Options{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range run.Procs {
		if !p.Finished {
			t.Fatalf("%s did not finish", p.Name)
		}
	}
}

func TestFacadeLackey(t *testing.T) {
	g, err := itsim.ParseLackey(strings.NewReader("I 1000,4\n L 2000,8\n"), "lk")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}
