// Quickstart: run one process batch under plain synchronous I/O and under
// the paper's Idle-Time-Stealing design, and print the headline comparison —
// total CPU idle time, page faults, and average finish times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"itsim"
)

func main() {
	batch, err := itsim.BatchByName("2_Data_Intensive")
	if err != nil {
		log.Fatal(err)
	}
	opts := itsim.Options{Scale: 0.1} // 10 % of the full experiment size

	syncRun, err := itsim.RunBatch(batch, itsim.Sync, opts)
	if err != nil {
		log.Fatal(err)
	}
	itsRun, err := itsim.RunBatch(batch, itsim.ITS, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("batch %s (%d of 6 processes data-intensive)\n\n", batch.Name, batch.DataIntensive)
	fmt.Printf("%-22s %14s %14s\n", "", "Sync", "ITS")
	fmt.Printf("%-22s %14v %14v\n", "total CPU idle time", syncRun.TotalIdle(), itsRun.TotalIdle())
	fmt.Printf("%-22s %14d %14d\n", "major page faults", syncRun.TotalMajorFaults(), itsRun.TotalMajorFaults())
	fmt.Printf("%-22s %14d %14d\n", "LLC misses", syncRun.TotalLLCMisses(), itsRun.TotalLLCMisses())
	fmt.Printf("%-22s %14v %14v\n", "makespan", syncRun.Makespan, itsRun.Makespan)
	fmt.Printf("%-22s %14v %14v\n", "avg finish (top 50%)", syncRun.TopHalfAvgFinish(), itsRun.TopHalfAvgFinish())
	fmt.Printf("%-22s %14v %14v\n", "avg finish (bottom)", syncRun.BottomHalfAvgFinish(), itsRun.BottomHalfAvgFinish())

	saved := 1 - float64(itsRun.TotalIdle())/float64(syncRun.TotalIdle())
	fmt.Printf("\nITS reduced CPU idle time by %.0f%% versus synchronous I/O\n", 100*saved)
	fmt.Printf("(stolen busy-wait time: %v, prefetch accuracy %.0f%%)\n",
		itsRun.TotalStolen(), 100*itsRun.PrefetchAccuracy())
}
