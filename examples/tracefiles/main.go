// Tracefiles: the external-trace workflow. The simulator's front end is a
// trace format (the paper uses Valgrind captures); this example writes two
// synthetic traces to disk in the binary ITRC format, inspects them, loads
// them back, and runs the loaded traces through the simulator — the exact
// path a user with real captured traces would take.
//
//	go run ./examples/tracefiles
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"itsim"
)

func main() {
	dir, err := os.MkdirTemp("", "itsim-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Capture: write two benchmarks' traces to disk.
	names := []string{"xz", "randomwalk"}
	paths := make([]string, len(names))
	for i, name := range names {
		gen, err := itsim.NewGenerator(name, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		paths[i] = filepath.Join(dir, name+".itrc")
		f, err := os.Create(paths[i])
		if err != nil {
			log.Fatal(err)
		}
		if err := itsim.WriteTrace(f, gen); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		info, _ := os.Stat(paths[i])
		fmt.Printf("wrote %s (%d KiB)\n", paths[i], info.Size()/1024)
	}

	// 2. Inspect and stream: open each trace for incremental decoding —
	// records stream from disk during the run, so the traces are never
	// materialized in memory.
	specs := make([]itsim.ProcessSpec, len(paths))
	for i, path := range paths {
		gen, err := itsim.OpenTrace(path)
		if err != nil {
			log.Fatal(err)
		}
		defer gen.Close()
		st := itsim.AnalyzeTrace(gen)
		if err := gen.Err(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s records=%d instrs=%d loads=%d stores=%d pages=%d\n",
			st.Name, st.Records, st.Instrs, st.Loads, st.Stores, st.UniquePages)
		specs[i] = itsim.ProcessSpec{
			Name:     gen.Name(),
			Gen:      gen,
			Priority: len(paths) - i, // first trace gets the higher priority
		}
	}

	// 3. Simulate: run the loaded traces under Sync and ITS.
	for _, kind := range []itsim.Policy{itsim.Sync, itsim.ITS} {
		run, err := itsim.RunProcesses("from-files", specs, kind, 1, itsim.Options{Scale: 0.05})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-13s makespan=%v idle=%v faults=%d\n",
			kind, run.Makespan, run.TotalIdle(), run.TotalMajorFaults())
		for _, p := range run.Procs {
			fmt.Printf("  %-12s prio=%d finish=%v majflt=%d\n",
				p.Name, p.Priority, p.FinishTime, p.MajorFaults)
		}
	}
}
