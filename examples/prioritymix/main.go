// Prioritymix: the paper's Figure 5 driver — how the priority-aware ITS
// design changes per-process finish times. High-priority processes get the
// self-improving thread (synchronous waits + prefetch + pre-execution);
// low-priority processes get the self-sacrificing thread (asynchronous
// yields). The paper's claim: BOTH halves finish earlier than under every
// baseline.
//
//	go run ./examples/prioritymix [-batch 3_Data_Intensive] [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"itsim"
)

func main() {
	batchName := flag.String("batch", "3_Data_Intensive", "process batch")
	scale := flag.Float64("scale", 0.1, "workload scale")
	flag.Parse()

	batch, err := itsim.BatchByName(*batchName)
	if err != nil {
		log.Fatal(err)
	}
	opts := itsim.Options{Scale: *scale}

	runs := map[itsim.Policy]*itsim.Run{}
	for _, k := range itsim.Policies() {
		r, err := itsim.RunBatch(batch, k, opts)
		if err != nil {
			log.Fatal(err)
		}
		runs[k] = r
	}

	// Per-process finish times, sorted by priority (highest first).
	its := runs[itsim.ITS]
	procs := append([]*itsim.ProcessMetrics(nil), its.Procs...)
	sort.Slice(procs, func(i, j int) bool { return procs[i].Priority > procs[j].Priority })

	fmt.Printf("batch %s under ITS — per-process outcome\n\n", batch.Name)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "process\tpriority\trole\tfinish\tmajor faults\tprefetched\tstolen time")
	for _, p := range procs {
		role := "self-improving"
		if p.Priority <= len(procs)/2 {
			role = "self-sacrificing"
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%v\t%d\t%d\t%v\n",
			p.Name, p.Priority, role, p.FinishTime, p.MajorFaults,
			p.PrefetchIssued, p.StolenPrefetch+p.StolenPreexec)
	}
	w.Flush()

	fmt.Println("\nAverage finish time by priority half, normalized to ITS (Figures 5a/5b)")
	fmt.Fprintln(w, "policy\ttop 50%\tbottom 50%")
	itsTop := its.TopHalfAvgFinish().Seconds()
	itsBot := its.BottomHalfAvgFinish().Seconds()
	for _, k := range itsim.Policies() {
		r := runs[k]
		fmt.Fprintf(w, "%s\t%.2f×\t%.2f×\n", k,
			r.TopHalfAvgFinish().Seconds()/itsTop,
			r.BottomHalfAvgFinish().Seconds()/itsBot)
	}
	w.Flush()

	fmt.Println("\nThe self-sacrificing processes yield during their I/O, yet still finish")
	fmt.Println("earlier than under the baselines: the high-priority processes they made")
	fmt.Println("way for complete sooner and stop contending for memory and CPU.")
}
