// Policycompare: the paper's Figure 4a driver — run every batch under all
// five I/O-mode policies and print the normalized total CPU idle time (the
// "Analysis of CPU Waiting Time" plot), plus the supporting page-fault and
// cache-miss counts of Figures 4b/4c.
//
//	go run ./examples/policycompare [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"itsim"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale (0.25 = canonical, 1.0 = full)")
	flag.Parse()

	grid, err := itsim.RunGrid(itsim.Options{Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	fmt.Println("Normalized total CPU idle time (ITS = 1.00) — Figure 4a")
	header(w)
	for _, gr := range grid {
		n := gr.Normalized(itsim.MetricIdle, itsim.ITS)
		fmt.Fprintf(w, "%s", gr.Batch.Name)
		for _, k := range itsim.Policies() {
			fmt.Fprintf(w, "\t%.2f", n[k])
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	fmt.Println("\nMajor page faults — Figure 4b")
	header(w)
	for _, gr := range grid {
		fmt.Fprintf(w, "%s", gr.Batch.Name)
		for _, k := range itsim.Policies() {
			fmt.Fprintf(w, "\t%d", gr.Runs[k].TotalMajorFaults())
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	fmt.Println("\nCPU cache (LLC) misses — Figure 4c")
	header(w)
	for _, gr := range grid {
		fmt.Fprintf(w, "%s", gr.Batch.Name)
		for _, k := range itsim.Policies() {
			fmt.Fprintf(w, "\t%d", gr.Runs[k].TotalLLCMisses())
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	// The paper's summary claim, recomputed from this run.
	var worstSync, bestSync float64
	for i, gr := range grid {
		n := gr.Normalized(itsim.MetricIdle, itsim.ITS)
		s := 1 - 1/n[itsim.Sync]
		if i == 0 || s < bestSync {
			bestSync = s
		}
		if i == 0 || s > worstSync {
			worstSync = s
		}
	}
	fmt.Printf("\nITS saves %.0f%%–%.0f%% of CPU idle time versus Sync across the batches\n",
		100*bestSync, 100*worstSync)
	fmt.Println("(paper reports 17%–43% on the authors' traces)")
}

func header(w *tabwriter.Writer) {
	fmt.Fprint(w, "batch")
	for _, k := range itsim.Policies() {
		fmt.Fprintf(w, "\t%s", k)
	}
	fmt.Fprintln(w)
}
