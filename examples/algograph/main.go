// Algograph: run algorithm-driven graph traces through the simulator. The
// other examples use the calibrated synthetic workloads; here the traces
// come from actually executing graph algorithms (random walk, page rank,
// BFS-based SSSP) over a scale-free CSR graph — the higher-fidelity stand-in
// for the paper's GraphChi and Graph500 applications — and the ITS design is
// evaluated against Sync and Async on that mix.
//
//	go run ./examples/algograph
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"itsim"
)

func main() {
	// One shared graph: ~64k vertices, ~8 edges each (≈ 8 MiB heap).
	graph := itsim.NewGraph(65536, 8, 2024)
	fmt.Printf("graph: %d vertices, %d edges, %.1f MiB CSR heap\n\n",
		65536, graph.Edges(), float64(graph.FootprintBytes())/(1<<20))

	const records = 60_000
	specs := []itsim.ProcessSpec{
		{Name: "commdetect", Gen: itsim.NewCommDetectTrace(graph, records, 4), Priority: 4, BaseVA: itsim.GraphHeapBase},
		{Name: "pagerank", Gen: itsim.NewPageRankTrace(graph, records, 1), Priority: 3, BaseVA: itsim.GraphHeapBase},
		{Name: "sssp", Gen: itsim.NewSSSPTrace(graph, records, 2), Priority: 2, BaseVA: itsim.GraphHeapBase},
		{Name: "randomwalk", Gen: itsim.NewRandomWalkTrace(graph, 8, records, 3), Priority: 1, BaseVA: itsim.GraphHeapBase},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tmakespan\tCPU idle\tmajor faults\tLLC misses\tprefetch accuracy")
	for _, kind := range []itsim.Policy{itsim.Async, itsim.Sync, itsim.ITS} {
		for i := range specs {
			specs[i].Gen.Reset()
		}
		run, err := itsim.RunProcesses("algograph", specs, kind, 3, itsim.Options{Scale: 0.1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%d\t%.0f%%\n",
			kind, run.Makespan, run.TotalIdle(), run.TotalMajorFaults(),
			run.TotalLLCMisses(), 100*run.PrefetchAccuracy())
	}
	w.Flush()

	fmt.Println("\nEven on pointer-chasing graph algorithms — the hardest case for the")
	fmt.Println("page-table-walking prefetcher — ITS wins through the self-sacrificing")
	fmt.Println("thread and the streaming CSR arrays it can still prefetch.")
}
