package itsim_test

import (
	"fmt"
	"log"
	"strings"

	"itsim"
)

// The minimal end-to-end flow: pick a batch, run it under a policy, read
// the metrics. (Scale 0.01 keeps this example fast; the paper's figures use
// 0.25.)
func ExampleRunBatch() {
	batch, err := itsim.BatchByName("2_Data_Intensive")
	if err != nil {
		log.Fatal(err)
	}
	run, err := itsim.RunBatch(batch, itsim.ITS, itsim.Options{Scale: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(run.Policy, len(run.Procs), run.Makespan > 0)
	// Output: ITS 6 true
}

func ExamplePolicies() {
	for _, k := range itsim.Policies() {
		fmt.Println(k)
	}
	// Output:
	// Async
	// Sync
	// Sync_Runahead
	// Sync_Prefetch
	// ITS
}

// Importing a Valgrind Lackey capture — the paper's trace front end.
func ExampleParseLackey() {
	log := "I  0023C790,2\n L 04222C48,4\n S 04222C14,8\n"
	g, err := itsim.ParseLackey(strings.NewReader(log), "captured")
	if err != nil {
		panic(err)
	}
	st := itsim.AnalyzeTrace(g)
	fmt.Println(st.Name, st.Records, st.Loads, st.Stores)
	// Output: captured 2 1 1
}
