// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§4). Each BenchmarkFigXX reports the figure's series as
// custom benchmark metrics and logs the full table once, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's rows. BenchmarkSimulatorGrid measures the raw cost
// of one full 4-batch × 5-policy simulation; the figure benchmarks reuse a
// cached grid (the figures are deterministic post-processing of it).
//
// The canonical experiment scale for reported figures is 0.25 (see
// EXPERIMENTS.md); the benchmarks run at 0.1 to keep `go test -bench=.`
// fast while preserving every qualitative shape.
package itsim_test

import (
	"fmt"
	"sync"
	"testing"

	"itsim"
)

const benchScale = 0.1

var (
	gridOnce sync.Once
	gridRes  []itsim.GridResult
	gridErr  error
)

func grid(b *testing.B) []itsim.GridResult {
	gridOnce.Do(func() {
		gridRes, gridErr = itsim.RunGrid(itsim.Options{Scale: benchScale})
	})
	if gridErr != nil {
		b.Fatal(gridErr)
	}
	return gridRes
}

// BenchmarkSimulatorGrid measures one full batch×policy grid simulation.
func BenchmarkSimulatorGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := itsim.RunGrid(itsim.Options{Scale: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}

// reportNormalized logs a figure's table and reports the series as metrics.
func reportNormalized(b *testing.B, metric func(*itsim.Run) float64, unit string) {
	g := grid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gr := range g {
			_ = gr.Normalized(metric, itsim.ITS)
		}
	}
	b.StopTimer()
	for _, gr := range g {
		n := gr.Normalized(metric, itsim.ITS)
		b.Logf("%-18s Async=%.2f Sync=%.2f Sync_Runahead=%.2f Sync_Prefetch=%.2f ITS=1.00",
			gr.Batch.Name, n[itsim.Async], n[itsim.Sync], n[itsim.SyncRunahead], n[itsim.SyncPrefetch])
		for _, k := range itsim.Policies() {
			b.ReportMetric(n[k], fmt.Sprintf("%s/%s_%s", unit, gr.Batch.Name, k))
		}
	}
}

// BenchmarkFig4aIdleTime regenerates Figure 4a: normalized total CPU idle
// (waiting) time per batch and policy (ITS = 1.00; paper: Async 2.58–2.95,
// Sync 1.2–1.75, Sync_Runahead 1.08–1.59, Sync_Prefetch 1.10–1.18).
func BenchmarkFig4aIdleTime(b *testing.B) {
	reportNormalized(b, itsim.MetricIdle, "x4a")
}

// BenchmarkFig4bPageFaults regenerates Figure 4b: page-fault counts. The
// paper's shape: prefetching policies cut faults sharply; ITS saves ≥61–65 %
// versus Async/Sync on the low-data-intensive batches.
func BenchmarkFig4bPageFaults(b *testing.B) {
	g := grid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gr := range g {
			for _, k := range itsim.Policies() {
				_ = gr.Runs[k].TotalMajorFaults()
			}
		}
	}
	b.StopTimer()
	for _, gr := range g {
		row := fmt.Sprintf("%-18s", gr.Batch.Name)
		for _, k := range itsim.Policies() {
			f := float64(gr.Runs[k].TotalMajorFaults()) / 100_000
			row += fmt.Sprintf(" %s=%.3f", k, f)
			b.ReportMetric(f, fmt.Sprintf("faults100k/%s_%s", gr.Batch.Name, k))
		}
		b.Log(row + "  (unit: 100 thousands)")
	}
}

// BenchmarkFig4cCacheMisses regenerates Figure 4c: CPU cache-miss counts.
// The paper's shape: Sync_Runahead lowest (it pre-executes on every fault),
// prefetch-only policies do not reduce misses.
func BenchmarkFig4cCacheMisses(b *testing.B) {
	g := grid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gr := range g {
			for _, k := range itsim.Policies() {
				_ = gr.Runs[k].TotalLLCMisses()
			}
		}
	}
	b.StopTimer()
	for _, gr := range g {
		row := fmt.Sprintf("%-18s", gr.Batch.Name)
		for _, k := range itsim.Policies() {
			m := float64(gr.Runs[k].TotalLLCMisses()) / 1_000_000
			row += fmt.Sprintf(" %s=%.3f", k, m)
			b.ReportMetric(m, fmt.Sprintf("missesM/%s_%s", gr.Batch.Name, k))
		}
		b.Log(row + "  (unit: millions)")
	}
}

// BenchmarkFig5aTopFinish regenerates Figure 5a: normalized average finish
// time of the top-50 %-priority processes (paper: savings 14–75 % over the
// baselines, Async up to 4.1×).
func BenchmarkFig5aTopFinish(b *testing.B) {
	reportNormalized(b, itsim.MetricTopFinish, "x5a")
}

// BenchmarkFig5bBottomFinish regenerates Figure 5b: normalized average
// finish time of the bottom-50 %-priority processes (paper: every baseline
// ≥ 1, Async up to 2.35× — the sacrificed processes still finish earlier
// under ITS).
func BenchmarkFig5bBottomFinish(b *testing.B) {
	reportNormalized(b, itsim.MetricBottomFinish, "x5b")
}

// BenchmarkObservationIdleTime regenerates the §2.2 motivation experiment:
// total CPU idle time versus process count under plain synchronous I/O,
// normalized to the 2-process run (the paper reports >22 % idle and growth
// with the process count).
func BenchmarkObservationIdleTime(b *testing.B) {
	var pts []itsim.ObservationPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = itsim.RunObservation(itsim.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	base := pts[0].IdleTime
	for _, pt := range pts {
		norm := float64(pt.IdleTime) / float64(base)
		b.Logf("processes=%d idle=%v normalized=%.2f idleFraction=%.1f%%",
			pt.Processes, pt.IdleTime, norm, 100*pt.IdleFraction)
		b.ReportMetric(norm, fmt.Sprintf("normIdle/procs%d", pt.Processes))
	}
}

// BenchmarkAblationPrefetchDegree sweeps the ITS prefetch degree n
// (DESIGN.md ablation abl-prefetch-degree) on the 2_Data_Intensive batch.
func BenchmarkAblationPrefetchDegree(b *testing.B) {
	batch, err := itsim.BatchByName("2_Data_Intensive")
	if err != nil {
		b.Fatal(err)
	}
	for _, degree := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n%d", degree), func(b *testing.B) {
			var run *itsim.Run
			for i := 0; i < b.N; i++ {
				run, err = itsim.RunBatch(batch, itsim.ITS, itsim.Options{
					Scale: benchScale,
					ITS:   itsim.ITSConfig{PrefetchDegree: degree},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(run.TotalIdle().Seconds()*1e3, "idleMs")
			b.ReportMetric(float64(run.TotalMajorFaults()), "faults")
			b.ReportMetric(100*run.PrefetchAccuracy(), "pfAccuracy%")
		})
	}
}

// BenchmarkAblationSelfSacrificing compares full ITS against ITS without
// the self-sacrificing thread (§3.3) on the most contended batch.
func BenchmarkAblationSelfSacrificing(b *testing.B) {
	batch, err := itsim.BatchByName("3_Data_Intensive")
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		its  itsim.ITSConfig
	}{
		{"full", itsim.ITSConfig{}},
		{"noSelfSacrificing", itsim.ITSConfig{DisableSelfSacrificing: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var run *itsim.Run
			for i := 0; i < b.N; i++ {
				run, err = itsim.RunBatch(batch, itsim.ITS, itsim.Options{Scale: benchScale, ITS: cfg.its})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(run.TotalIdle().Seconds()*1e3, "idleMs")
			b.ReportMetric(float64(run.TotalMajorFaults()), "faults")
			b.ReportMetric(run.TopHalfAvgFinish().Seconds()*1e3, "top50Ms")
		})
	}
}

// BenchmarkAblationPreexecCache ablates the fault-aware pre-execute policy
// (§3.4.2): disabling it or prefetching entirely, and sweeping the LLC
// fraction carved out as the pre-execute cache (the paper fixes one half).
func BenchmarkAblationPreexecCache(b *testing.B) {
	batch, err := itsim.BatchByName("2_Data_Intensive")
	if err != nil {
		b.Fatal(err)
	}
	runOne := func(b *testing.B, opts itsim.Options) {
		var run *itsim.Run
		for i := 0; i < b.N; i++ {
			run, err = itsim.RunBatch(batch, itsim.ITS, opts)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(run.TotalIdle().Seconds()*1e3, "idleMs")
		b.ReportMetric(float64(run.TotalLLCMisses())/1e6, "missesM")
	}
	for _, cfg := range []struct {
		name string
		its  itsim.ITSConfig
	}{
		{"full", itsim.ITSConfig{}},
		{"noPreexec", itsim.ITSConfig{DisablePreExecute: true}},
		{"noPrefetch", itsim.ITSConfig{DisablePrefetch: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			runOne(b, itsim.Options{Scale: benchScale, ITS: cfg.its})
		})
	}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		b.Run(fmt.Sprintf("pxCache%.0f%%", 100*frac), func(b *testing.B) {
			cfg := itsim.DefaultMachineConfig()
			cfg.MinSlice, cfg.MaxSlice = itsim.SliceRange(benchScale)
			cfg.PreExecCacheFraction = frac
			runOne(b, itsim.Options{Scale: benchScale, Machine: &cfg})
		})
	}
}

// BenchmarkCrossoverHugeIO sweeps the swap-in unit from base pages toward
// huge-page-style clusters, reporting the Sync and Async makespans. The
// paper's §1 motivation: synchronous mode is promising only while the I/O
// unit stays microsecond-scale; "larger I/O sizes like huge page
// management" hand the win back to asynchronous mode.
func BenchmarkCrossoverHugeIO(b *testing.B) {
	var pts []itsim.CrossoverPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = itsim.RunCrossover(itsim.Options{Scale: 0.05}, []int{1, 4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		b.Logf("unit=%dKiB sync=%v async=%v winner=%s",
			pt.IOBytes/1024, pt.SyncMakespan, pt.AsyncMakespan, pt.Winner)
		b.ReportMetric(pt.SyncMakespan.Seconds()*1e3, fmt.Sprintf("syncMs/unit%dKiB", pt.IOBytes/1024))
		b.ReportMetric(pt.AsyncMakespan.Seconds()*1e3, fmt.Sprintf("asyncMs/unit%dKiB", pt.IOBytes/1024))
	}
}

// BenchmarkSensitivityPriorityDraws re-runs 1_Data_Intensive across random
// priority draws: the Figure 4a ordering (every baseline ≥ ITS) must be a
// property of the design, not of the pinned draw the figures use.
func BenchmarkSensitivityPriorityDraws(b *testing.B) {
	var res []itsim.SensitivityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = itsim.RunSensitivity("1_Data_Intensive", 5, itsim.Options{Scale: 0.05})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.Logf("%-14s normIdle min=%.2f mean=%.2f max=%.2f", r.Policy, r.Min, r.Mean, r.Max)
		b.ReportMetric(r.Mean, fmt.Sprintf("meanNormIdle/%s", r.Policy))
	}
}

// BenchmarkAblationStrictPriority re-runs the grid under true SCHED_RR
// semantics (strict priority dispatch) instead of the paper's effective
// single-queue NICE round-robin, reporting how the headline ratio moves.
func BenchmarkAblationStrictPriority(b *testing.B) {
	batch, err := itsim.BatchByName("1_Data_Intensive")
	if err != nil {
		b.Fatal(err)
	}
	for _, strict := range []bool{false, true} {
		name := "niceRR"
		if strict {
			name = "strictPriority"
		}
		b.Run(name, func(b *testing.B) {
			cfg := itsim.DefaultMachineConfig()
			cfg.MinSlice, cfg.MaxSlice = itsim.SliceRange(benchScale)
			cfg.StrictPriority = strict
			opts := itsim.Options{Scale: benchScale, Machine: &cfg}
			var its, syn *itsim.Run
			for i := 0; i < b.N; i++ {
				if its, err = itsim.RunBatch(batch, itsim.ITS, opts); err != nil {
					b.Fatal(err)
				}
				if syn, err = itsim.RunBatch(batch, itsim.Sync, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(syn.TotalIdle().Seconds()/its.TotalIdle().Seconds(), "syncVsITSIdle")
			b.ReportMetric(syn.TopHalfAvgFinish().Seconds()/its.TopHalfAvgFinish().Seconds(), "syncVsITSTop50")
		})
	}
}
