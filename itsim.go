// Package itsim is a trace-driven simulator reproducing "How to Steal CPU
// Idle Time When Synchronous I/O Mode Becomes Promising" (Wu, Chang, Yang,
// Kuo — DAC 2024).
//
// The paper proposes the Idle-Time-Stealing (ITS) design: when ultra-low-
// latency storage makes synchronous I/O (busy-waiting) cheaper than a
// context switch, the busy-wait window is stolen for useful work — a
// self-improving kernel thread prefetches pages by walking the page table
// and pre-executes upcoming instructions for high-priority processes, while
// a self-sacrificing kernel thread switches low-priority processes' I/O to
// asynchronous mode so high-priority work keeps the CPU.
//
// This package is the public facade over the full simulated platform
// (single core with L1/LLC, 4-level page tables, mini kernel with swap,
// SCHED_RR scheduler, ULL SSD behind a PCIe 5.x ×4 link) and the paper's
// experiment grid. Quick start:
//
//	batch, _ := itsim.BatchByName("2_Data_Intensive")
//	run, err := itsim.RunBatch(batch, itsim.ITS, itsim.Options{Scale: 0.25})
//	if err != nil { ... }
//	fmt.Println(run.TotalIdle(), run.TotalMajorFaults())
//
// See cmd/itsbench for regenerating every figure of the paper and DESIGN.md
// for the system inventory.
package itsim

import (
	"io"

	"itsim/internal/core"
	"itsim/internal/machine"
	"itsim/internal/metrics"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/trace"
	"itsim/internal/workload"
	"itsim/internal/workload/algo"
)

// Policy identifies one of the five I/O-mode policies of the evaluation.
type Policy = policy.Kind

// The five policies, in the paper's presentation order.
const (
	// Async is the traditional asynchronous I/O baseline.
	Async = policy.Async
	// Sync is the Intel/IBM-advocated synchronous (busy-wait) mode.
	Sync = policy.Sync
	// SyncRunahead adds classic runahead pre-execution to Sync.
	SyncRunahead = policy.SyncRunahead
	// SyncPrefetch adds page-on-page group prefetching to Sync.
	SyncPrefetch = policy.SyncPrefetch
	// ITS is the paper's Idle-Time-Stealing design.
	ITS = policy.ITS
)

// Policies returns all five policy kinds in presentation order.
func Policies() []Policy { return policy.Kinds() }

// PolicyByName parses a policy name ("Async", "Sync", "Sync_Runahead",
// "Sync_Prefetch", "ITS").
func PolicyByName(name string) (Policy, error) { return policy.KindByName(name) }

// ITSConfig tunes the ITS policy (prefetch degree, ablation switches).
type ITSConfig = policy.ITSConfig

// Options configure an experiment run (workload scale, machine overrides,
// ITS tuning).
type Options = core.Options

// MachineConfig sizes the simulated platform; DefaultMachineConfig returns
// the paper's §4.1 configuration.
type MachineConfig = machine.Config

// DefaultMachineConfig returns the paper's §4.1 platform parameters.
func DefaultMachineConfig() MachineConfig { return machine.DefaultConfig() }

// Run is the metrics record of one simulated batch execution.
type Run = metrics.Run

// ProcessMetrics is the per-process slice of a Run.
type ProcessMetrics = metrics.Process

// Time is a virtual timestamp/duration in nanoseconds.
type Time = sim.Time

// Batch is one of the paper's four six-process mixes.
type Batch = workload.Batch

// Batches returns the paper's four process batches
// (No/1/2/3_Data_Intensive).
func Batches() []Batch { return workload.Batches() }

// BatchByName returns the named batch.
func BatchByName(name string) (Batch, error) { return workload.BatchByName(name) }

// Workloads returns the nine benchmark names in the paper's order.
func Workloads() []string { return workload.Names() }

// Generator is a deterministic memory-access trace source.
type Generator = trace.Generator

// NewGenerator builds the named benchmark's synthetic trace generator at
// the given scale (1.0 = full size).
func NewGenerator(name string, scale float64) (Generator, error) {
	p, err := workload.ProfileFor(name, scale)
	if err != nil {
		return nil, err
	}
	return workload.New(p), nil
}

// RunBatch executes one batch under one policy and returns its metrics.
func RunBatch(b Batch, kind Policy, opts Options) (*Run, error) {
	return core.RunBatch(b, kind, opts)
}

// GridResult holds one batch's runs across all five policies.
type GridResult = core.GridResult

// RunGrid executes every batch × policy — the full Figure 4/5 grid.
func RunGrid(opts Options) ([]GridResult, error) { return core.RunGrid(opts) }

// ObservationPoint is one bar of the §2.2 motivation experiment.
type ObservationPoint = core.ObservationPoint

// CrossoverPoint is one row of the huge-I/O sync-vs-async crossover sweep.
type CrossoverPoint = core.CrossoverPoint

// SensitivityResult summarizes a policy's normalized idle across random
// priority draws.
type SensitivityResult = core.SensitivityResult

// SpinPoint is one row of the hybrid-polling comparison sweep.
type SpinPoint = core.SpinPoint

// RunSpinSweep compares ITS against kernel-style hybrid polling
// (spin-then-block) across busy-wait thresholds.
func RunSpinSweep(opts Options, thresholds []Time) ([]SpinPoint, error) {
	return core.RunSpinSweep(opts, thresholds)
}

// CustomPolicy is a policy implementation; use RunBatchCustom to evaluate
// one that is not among the five paper kinds (e.g. NewSpinBlockPolicy).
type CustomPolicy = policy.Policy

// NewSpinBlockPolicy builds the hybrid-polling baseline: busy-wait up to
// threshold (≤0 = the 7 µs default), then block.
func NewSpinBlockPolicy(threshold Time) CustomPolicy {
	return policy.NewSpinBlock(threshold)
}

// RunBatchCustom executes one batch under a custom policy instance.
func RunBatchCustom(b Batch, pol CustomPolicy, opts Options) (*Run, error) {
	return core.RunBatchWithPolicy(b, pol, opts)
}

// RunSensitivity re-runs a batch across several random priority draws,
// showing the figure orderings are draw-independent.
func RunSensitivity(batchName string, draws int, opts Options) ([]SensitivityResult, error) {
	return core.RunSensitivity(batchName, draws, opts)
}

// RunCrossover sweeps the swap-in cluster size and reports where
// asynchronous I/O beats synchronous busy-waiting again (the paper's §1
// "larger I/O sizes" motivation).
func RunCrossover(opts Options, clusterSizes []int) ([]CrossoverPoint, error) {
	return core.RunCrossover(opts, clusterSizes)
}

// RunObservation reproduces the §2.2 experiment: CPU idle time versus
// process count under plain synchronous I/O.
func RunObservation(opts Options) ([]ObservationPoint, error) {
	return core.RunObservation(opts)
}

// Figure metrics for GridResult.Normalized.
var (
	// MetricIdle is Figure 4a's total CPU idle time.
	MetricIdle = core.MetricIdle
	// MetricPageFaults is Figure 4b's major-fault count.
	MetricPageFaults = core.MetricPageFaults
	// MetricCacheMisses is Figure 4c's LLC-miss count.
	MetricCacheMisses = core.MetricCacheMisses
	// MetricTopFinish is Figure 5a's top-50 % average finish time.
	MetricTopFinish = core.MetricTopFinish
	// MetricBottomFinish is Figure 5b's bottom-50 % average finish time.
	MetricBottomFinish = core.MetricBottomFinish
)

// SliceRange returns the SCHED_RR slice bounds scaled to a workload scale
// (see core.SliceRange for the rationale).
func SliceRange(scale float64) (min, max Time) { return core.SliceRange(scale) }

// ProcessSpec declares one process of a custom run: a name, a trace source,
// a scheduling priority and the base virtual address of its image.
type ProcessSpec = machine.ProcessSpec

// WorkloadBaseVA is where the synthetic workloads' images start; custom
// SliceGenerator traces may use any base that covers their addresses.
const WorkloadBaseVA = workload.BaseVA

// RunProcesses executes an ad-hoc process mix (e.g. traces loaded from
// files) under the given policy. dataIntensive hints how memory-hostile the
// mix is (0–3), selecting the same per-batch DRAM sizing the paper uses.
func RunProcesses(name string, specs []ProcessSpec, kind Policy, dataIntensive int, opts Options) (*Run, error) {
	var pol policy.Policy
	if kind == ITS {
		pol = policy.NewITS(opts.ITS)
	} else {
		pol = policy.New(kind)
	}
	return core.RunSpecs(name, specs, pol, dataIntensive, opts)
}

// WriteTrace serializes a trace in the binary ITRC format.
func WriteTrace(w io.Writer, g Generator) error { return trace.WriteAll(w, g) }

// ReadTrace loads an ITRC trace into memory; the result implements
// Generator and can be placed in a ProcessSpec.
func ReadTrace(r io.Reader) (Generator, error) { return trace.ReadAll(r) }

// TraceFile is a streaming ITRC trace backed by an open file. It implements
// Generator; Close it after the run.
type TraceFile = trace.FileGenerator

// OpenTrace opens an ITRC trace file for streaming: records decode
// incrementally during the run instead of being materialized up front, so
// arbitrarily large traces simulate in constant memory. The result can be
// placed in a ProcessSpec; Close it when the run is done, and check its Err
// method afterwards (a truncated file ends the trace early rather than
// failing the run).
func OpenTrace(path string) (*TraceFile, error) { return trace.OpenFile(path) }

// StreamTrace wraps a seekable ITRC stream (e.g. an already-open file or a
// bytes.Reader) as a streaming Generator without loading it into memory.
func StreamTrace(r io.ReadSeeker) (Generator, error) { return trace.NewStreamGenerator(r) }

// ParseLackey converts Valgrind Lackey --trace-mem output — the paper's
// actual trace front end — into a Generator.
func ParseLackey(r io.Reader, name string) (Generator, error) {
	return trace.ParseLackey(r, name)
}

// AnalyzeTrace summarizes a trace (record counts, instruction count, page
// footprint).
type TraceStats = trace.Stats

// AnalyzeTrace runs the generator to completion and returns its statistics.
func AnalyzeTrace(g Generator) TraceStats { return trace.Analyze(g) }

// Graph is a synthetic scale-free graph in CSR layout, the substrate of the
// algorithm-driven trace generators (higher-fidelity stand-ins for the
// paper's GraphChi/Graph500 workloads).
type Graph = algo.Graph

// NewGraph builds a deterministic scale-free graph with n vertices and
// roughly avgDeg out-edges per vertex.
func NewGraph(n, avgDeg int, seed uint64) *Graph { return algo.Generate(n, avgDeg, seed) }

// NewRandomWalkTrace traces w walkers taking random steps over g (GraphChi
// random-walk stand-in), producing exactly records accesses.
func NewRandomWalkTrace(g *Graph, walkers, records int, seed uint64) Generator {
	return algo.NewRandomWalk(g, walkers, records, seed)
}

// NewPageRankTrace traces CSR-streaming page-rank sweeps over g (GraphChi
// page-rank stand-in).
func NewPageRankTrace(g *Graph, records int, seed uint64) Generator {
	return algo.NewPageRank(g, records, seed)
}

// NewSSSPTrace traces BFS frontier expansion over g (Graph500 single-source
// shortest-path stand-in).
func NewSSSPTrace(g *Graph, records int, seed uint64) Generator {
	return algo.NewSSSP(g, records, seed)
}

// NewCommDetectTrace traces synchronous label propagation over g (GraphChi
// community-detection stand-in).
func NewCommDetectTrace(g *Graph, records int, seed uint64) Generator {
	return algo.NewCommDetect(g, records, seed)
}

// GraphHeapBase is the virtual address where a Graph's arrays begin; pass
// it as a ProcessSpec's BaseVA when simulating algorithmic traces.
const GraphHeapBase = algo.Base
