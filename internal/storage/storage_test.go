package storage

import (
	"testing"

	"itsim/internal/bus"
	"itsim/internal/sim"
)

// fastLink returns a link so fast transfer time is negligible but nonzero.
func fastLink() *bus.Link {
	return bus.New(4, bus.DefaultLaneBandwidth)
}

func TestDefaultsApplied(t *testing.T) {
	d := New(Config{}, nil)
	cfg := d.Config()
	if cfg.ReadLatency != DefaultReadLatency || cfg.WriteLatency != DefaultWriteLatency ||
		cfg.Channels != DefaultChannels {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if d.Link() == nil {
		t.Fatal("nil link not replaced")
	}
}

func TestReadLatency(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	done := d.SubmitPage(0, Read, 0)
	// setup (200ns) + flash read (3µs) + bus (~257ns)
	lo := 3*sim.Microsecond + 200*sim.Nanosecond
	hi := lo + 400*sim.Nanosecond
	if done < lo || done > hi {
		t.Fatalf("read done at %v, want in [%v, %v]", done, lo, hi)
	}
}

func TestChannelQueueing(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	// Two reads to the same channel (same slot mod channels) serialize.
	d1 := d.SubmitPage(0, Read, 0)
	d2 := d.SubmitPage(0, Read, uint64(DefaultChannels)) // same channel
	if d2 <= d1 {
		t.Fatalf("same-channel read not queued: %v then %v", d1, d2)
	}
	if d2-d1 < DefaultReadLatency {
		t.Fatalf("second read gained only %v, want ≥ %v", d2-d1, DefaultReadLatency)
	}
	if d.Stats().QueueDelay == 0 {
		t.Fatal("queue delay not recorded")
	}
}

func TestChannelParallelism(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	// Reads on distinct channels overlap: completion spread dominated by
	// the shared bus only.
	var last sim.Time
	for slot := uint64(0); slot < uint64(DefaultChannels); slot++ {
		done := d.SubmitPage(0, Read, slot)
		if done > last {
			last = done
		}
	}
	// All flash reads overlap; the 8 bus transfers serialize (~257ns each).
	budget := 200*sim.Nanosecond + DefaultReadLatency + 8*300*sim.Nanosecond
	if last > budget {
		t.Fatalf("parallel reads finished at %v, want ≤ %v", last, budget)
	}
}

func TestWritesDoNotBlockReads(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	d.SubmitPage(0, Write, 3)
	read := d.SubmitPage(0, Read, 3) // same channel as the write
	budget := 200*sim.Nanosecond + DefaultReadLatency + 600*sim.Nanosecond
	if read > budget {
		t.Fatalf("read blocked behind write: done at %v, want ≤ %v (program-suspend)", read, budget)
	}
}

func TestReadsBlockLaterReadsOnChannel(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	d.SubmitPage(0, Read, 5)
	if d.FreeChannelAt(5, 0) {
		t.Fatal("channel reported free while read in flight")
	}
	if d.FreeChannelAt(5, 10*sim.Microsecond) != true {
		t.Fatal("channel reported busy after read drained")
	}
	if !d.FreeChannelAt(6, 0) {
		t.Fatal("other channel reported busy")
	}
}

func TestWriteAccounting(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	done := d.SubmitPage(0, Write, 1)
	if done < DefaultWriteLatency {
		t.Fatalf("write done at %v, want ≥ program time %v", done, DefaultWriteLatency)
	}
	st := d.Stats()
	if st.Writes != 1 || st.BytesWritten != 4096 || st.Reads != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStatsCounts(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	for i := uint64(0); i < 5; i++ {
		d.SubmitPage(sim.Time(i)*10*sim.Microsecond, Read, i)
	}
	st := d.Stats()
	if st.Reads != 5 || st.BytesRead != 5*4096 {
		t.Fatalf("stats = %+v", st)
	}
	if d.Requests() != 5 {
		t.Fatalf("Requests = %d", d.Requests())
	}
}

func TestNonPositiveSizePanics(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size submit did not panic")
		}
	}()
	d.Submit(0, Read, 0, 0)
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op strings wrong")
	}
}

func TestSlotAllocator(t *testing.T) {
	var s SlotAllocator
	for i := uint64(0); i < 100; i++ {
		if got := s.Alloc(); got != i {
			t.Fatalf("Alloc #%d = %d", i, got)
		}
	}
	if s.Allocated() != 100 {
		t.Fatalf("Allocated = %d", s.Allocated())
	}
}

func TestSlotStripingCoversChannels(t *testing.T) {
	d := New(Config{Channels: 4}, fastLink())
	seen := map[int]bool{}
	for slot := uint64(0); slot < 8; slot++ {
		seen[d.channelOf(slot)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("striping used %d channels, want 4", len(seen))
	}
}
