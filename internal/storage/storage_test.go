package storage

import (
	"testing"

	"itsim/internal/bus"
	"itsim/internal/fault"
	"itsim/internal/sim"
)

// fastLink returns a link so fast transfer time is negligible but nonzero.
func fastLink() *bus.Link {
	return bus.New(4, bus.DefaultLaneBandwidth)
}

func TestDefaultsApplied(t *testing.T) {
	d := New(Config{}, nil)
	cfg := d.Config()
	if cfg.ReadLatency != DefaultReadLatency || cfg.WriteLatency != DefaultWriteLatency ||
		cfg.Channels != DefaultChannels {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if d.Link() == nil {
		t.Fatal("nil link not replaced")
	}
}

func TestReadLatency(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	done := d.SubmitPage(0, Read, 0)
	// setup (200ns) + flash read (3µs) + bus (~257ns)
	lo := 3*sim.Microsecond + 200*sim.Nanosecond
	hi := lo + 400*sim.Nanosecond
	if done < lo || done > hi {
		t.Fatalf("read done at %v, want in [%v, %v]", done, lo, hi)
	}
}

func TestChannelQueueing(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	// Two reads to the same channel (same slot mod channels) serialize.
	d1 := d.SubmitPage(0, Read, 0)
	d2 := d.SubmitPage(0, Read, uint64(DefaultChannels)) // same channel
	if d2 <= d1 {
		t.Fatalf("same-channel read not queued: %v then %v", d1, d2)
	}
	if d2-d1 < DefaultReadLatency {
		t.Fatalf("second read gained only %v, want ≥ %v", d2-d1, DefaultReadLatency)
	}
	if d.Stats().QueueDelay == 0 {
		t.Fatal("queue delay not recorded")
	}
}

func TestChannelParallelism(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	// Reads on distinct channels overlap: completion spread dominated by
	// the shared bus only.
	var last sim.Time
	for slot := uint64(0); slot < uint64(DefaultChannels); slot++ {
		done := d.SubmitPage(0, Read, slot)
		if done > last {
			last = done
		}
	}
	// All flash reads overlap; the 8 bus transfers serialize (~257ns each).
	budget := 200*sim.Nanosecond + DefaultReadLatency + 8*300*sim.Nanosecond
	if last > budget {
		t.Fatalf("parallel reads finished at %v, want ≤ %v", last, budget)
	}
}

func TestWritesDoNotBlockReads(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	d.SubmitPage(0, Write, 3)
	read := d.SubmitPage(0, Read, 3) // same channel as the write
	budget := 200*sim.Nanosecond + DefaultReadLatency + 600*sim.Nanosecond
	if read > budget {
		t.Fatalf("read blocked behind write: done at %v, want ≤ %v (program-suspend)", read, budget)
	}
}

func TestReadsBlockLaterReadsOnChannel(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	d.SubmitPage(0, Read, 5)
	if d.FreeChannelAt(5, 0) {
		t.Fatal("channel reported free while read in flight")
	}
	if d.FreeChannelAt(5, 10*sim.Microsecond) != true {
		t.Fatal("channel reported busy after read drained")
	}
	if !d.FreeChannelAt(6, 0) {
		t.Fatal("other channel reported busy")
	}
}

func TestWriteAccounting(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	done := d.SubmitPage(0, Write, 1)
	if done < DefaultWriteLatency {
		t.Fatalf("write done at %v, want ≥ program time %v", done, DefaultWriteLatency)
	}
	st := d.Stats()
	if st.Writes != 1 || st.BytesWritten != 4096 || st.Reads != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStatsCounts(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	for i := uint64(0); i < 5; i++ {
		d.SubmitPage(sim.Time(i)*10*sim.Microsecond, Read, i)
	}
	st := d.Stats()
	if st.Reads != 5 || st.BytesRead != 5*4096 {
		t.Fatalf("stats = %+v", st)
	}
	if d.Requests() != 5 {
		t.Fatalf("Requests = %d", d.Requests())
	}
}

func TestNonPositiveSizePanics(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size submit did not panic")
		}
	}()
	d.Submit(0, Read, 0, 0)
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op strings wrong")
	}
}

func TestSlotAllocator(t *testing.T) {
	var s SlotAllocator
	for i := uint64(0); i < 100; i++ {
		if got := s.Alloc(); got != i {
			t.Fatalf("Alloc #%d = %d", i, got)
		}
	}
	if s.Allocated() != 100 {
		t.Fatalf("Allocated = %d", s.Allocated())
	}
}

func TestSlotStripingCoversChannels(t *testing.T) {
	d := New(Config{Channels: 4}, fastLink())
	seen := map[int]bool{}
	for slot := uint64(0); slot < 8; slot++ {
		seen[d.channelOf(slot)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("striping used %d channels, want 4", len(seen))
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"defaults", DefaultConfig(), true},
		{"negative read latency", Config{ReadLatency: -1}, false},
		{"negative write latency", Config{WriteLatency: -1}, false},
		{"negative channels", Config{Channels: -4}, false},
		{"negative dma setup", Config{DMASetup: -sim.Nanosecond}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// Zero DMASetup is "unset", not "free": New must default it exactly like the
// other zero-valued knobs, so a config can no longer slip a 0-cost DMA setup
// past defaulting while Validate calls the same value legal.
func TestZeroDMASetupDefaults(t *testing.T) {
	d := New(Config{DMASetup: 0}, fastLink())
	if got := d.Config().DMASetup; got != DefaultDMASetup {
		t.Fatalf("DMASetup = %v, want default %v", got, DefaultDMASetup)
	}
}

// --- fault injection at the device boundary ---

// injected returns a device whose injector has the given config.
func injected(t *testing.T, cfg fault.Config) *Device {
	t.Helper()
	d := New(DefaultConfig(), fastLink())
	d.SetInjector(fault.New(cfg))
	return d
}

func TestInjectedTailLengthensRead(t *testing.T) {
	clean := New(DefaultConfig(), fastLink())
	spiky := injected(t, fault.Config{Seed: 1, TailProb: 1, TailMult: 8})

	base := clean.SubmitPage(0, Read, 0)
	out := spiky.SubmitRetry(0, Read, 0, 4096, -1)
	if out.InjectedTail != 7*DefaultReadLatency {
		t.Fatalf("InjectedTail = %v, want %v", out.InjectedTail, 7*DefaultReadLatency)
	}
	if got := out.Done - base; got != out.InjectedTail {
		t.Fatalf("spiked read finished %v later than clean, want %v", got, out.InjectedTail)
	}
	if st := spiky.Injector().Stats(); st.TailSpikes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectedStallChargesQueueDelay(t *testing.T) {
	window := 50 * sim.Microsecond
	d := injected(t, fault.Config{Seed: 1, StallProb: 1, StallWindow: window})

	clean := New(DefaultConfig(), fastLink())
	base := clean.SubmitPage(0, Read, 0)
	out := d.SubmitRetry(0, Read, 0, 4096, -1)
	if out.Stalled != window {
		t.Fatalf("Stalled = %v, want %v", out.Stalled, window)
	}
	if got := out.Done - base; got != window {
		t.Fatalf("stalled read finished %v later than clean, want %v", got, window)
	}
	if d.Stats().QueueDelay < window {
		t.Fatalf("stall window not charged as queue delay: %v", d.Stats().QueueDelay)
	}
}

func TestDMAFailureProtocol(t *testing.T) {
	d := injected(t, fault.Config{Seed: 1, DMAFailProb: 1, RetryMax: 3})

	// Attempts below RetryMax fail; the time is spent either way.
	out := d.SubmitPageRetry(0, Read, 0, 0)
	if !out.Failed {
		t.Fatal("p=1 DMA failure did not fire")
	}
	if out.Done <= 0 {
		t.Fatal("failed transfer reported no elapsed time")
	}
	// At attempt == RetryMax the injector guarantees success.
	out = d.SubmitPageRetry(out.Done, Read, 0, 3)
	if out.Failed {
		t.Fatal("transfer failed at attempt == RetryMax")
	}
}

func TestPlainSubmitNeverFails(t *testing.T) {
	d := injected(t, fault.Config{Seed: 1, DMAFailProb: 1})
	// Submit is outside the retry protocol: the failure stream must be
	// neither consulted nor advanced.
	d.SubmitPage(0, Read, 0)
	if st := d.Injector().Stats(); st.DMAFailures != 0 {
		t.Fatalf("plain Submit drew from the dma stream: %+v", st)
	}
}

func TestWriteBacksNeverFail(t *testing.T) {
	d := injected(t, fault.Config{Seed: 1, DMAFailProb: 1})
	out := d.SubmitRetry(0, Write, 0, 4096, 0)
	if out.Failed {
		t.Fatal("write-back failed; only reads participate in the failure model")
	}
}

// --- prefetch-burst channel queueing ---

// A prefetch burst against one channel serializes at exactly the device
// service time per request; the same burst striped across channels overlaps.
func TestPrefetchBurstSameChannelSerializes(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	const burst = 4
	var dones []sim.Time
	for i := 0; i < burst; i++ {
		// Slots i*Channels all map to channel 0.
		dones = append(dones, d.SubmitPage(0, Read, uint64(i*DefaultChannels)))
	}
	for i := 1; i < burst; i++ {
		if gap := dones[i] - dones[i-1]; gap != DefaultReadLatency {
			t.Fatalf("burst read %d finished %v after its predecessor, want exactly %v (flash serialization)",
				i, gap, DefaultReadLatency)
		}
	}
	// Total queue delay is the arithmetic series 1+2+3 service times.
	want := sim.Time(burst*(burst-1)/2) * DefaultReadLatency
	if got := d.Stats().QueueDelay; got != want {
		t.Fatalf("QueueDelay = %v, want %v", got, want)
	}
}

func TestPrefetchBurstCrossChannelOverlaps(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	const burst = 4
	var last sim.Time
	for slot := uint64(0); slot < burst; slot++ { // distinct channels
		if done := d.SubmitPage(0, Read, slot); done > last {
			last = done
		}
	}
	// All flash reads overlap; only the bus transfers serialize.
	budget := DefaultDMASetup + DefaultReadLatency + burst*300*sim.Nanosecond
	if last > budget {
		t.Fatalf("cross-channel burst finished at %v, want ≤ %v", last, budget)
	}
	if d.Stats().QueueDelay != 0 {
		t.Fatalf("cross-channel burst queued: %v", d.Stats().QueueDelay)
	}
}

// Demand reads queue behind an in-flight prefetch on the same channel — the
// admission-control contract FreeChannelAt exists to let callers avoid.
func TestDemandReadQueuesBehindPrefetch(t *testing.T) {
	d := New(DefaultConfig(), fastLink())
	d.SubmitPage(0, Read, 2) // "prefetch" occupying channel 2
	if d.FreeChannelAt(2, sim.Microsecond) {
		t.Fatal("channel reported free under in-flight prefetch")
	}
	demand := d.SubmitPage(sim.Microsecond, Read, uint64(2+DefaultChannels))
	cleanBudget := sim.Microsecond + DefaultDMASetup + DefaultReadLatency + 400*sim.Nanosecond
	if demand <= cleanBudget {
		t.Fatalf("demand read at %v did not queue behind the prefetch (clean budget %v)", demand, cleanBudget)
	}
}
