// Package storage models the Ultra-Low-Latency swap device (a Samsung
// Z-NAND-class SSD, paper §4.1: ~3 µs read latency) together with the DMA
// engine that moves pages between the device and DRAM over the PCIe link.
//
// The device exposes internal parallelism through channels: requests to
// different channels proceed concurrently, requests to the same channel
// queue. This is the "substantial parallelism offered by SSDs" the
// page-prefetch policy leverages (§3.4.1) — a burst of prefetch reads mostly
// overlaps instead of serializing.
package storage

import (
	"fmt"

	"itsim/internal/bus"
	"itsim/internal/fault"
	"itsim/internal/sim"
)

// Default ULL device parameters.
const (
	// DefaultReadLatency is the device-internal read service time (paper
	// §4.1, Z-NAND ≈ 3 µs).
	DefaultReadLatency = 3 * sim.Microsecond
	// DefaultWriteLatency is the device-internal program time. Z-NAND
	// program is substantially slower than read; 10 µs is the commonly
	// cited class figure. Write-backs are asynchronous so this mostly
	// affects channel occupancy, not the critical path.
	DefaultWriteLatency = 10 * sim.Microsecond
	// DefaultChannels is the device's internal parallelism.
	DefaultChannels = 8
	// DefaultDMASetup is the fixed per-request DMA programming cost.
	DefaultDMASetup = 200 * sim.Nanosecond
)

// Op is the request direction.
type Op uint8

const (
	// Read moves a page device → DRAM (swap-in / prefetch).
	Read Op = iota
	// Write moves a page DRAM → device (write-back).
	Write
)

// String names the op.
func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Config parameterizes the device.
type Config struct {
	ReadLatency  sim.Time
	WriteLatency sim.Time
	Channels     int
	DMASetup     sim.Time
}

// DefaultConfig returns the paper's device parameters.
func DefaultConfig() Config {
	return Config{
		ReadLatency:  DefaultReadLatency,
		WriteLatency: DefaultWriteLatency,
		Channels:     DefaultChannels,
		DMASetup:     DefaultDMASetup,
	}
}

// Validate rejects negative device parameters. Zero values are legal —
// New replaces them with the defaults — but a negative latency, channel
// count or setup cost is always a caller bug, and before this check a
// Channels < 0 config slipped through New's `<= 0` defaulting only to
// panic later, while a negative DMASetup was silently zeroed.
func (c Config) Validate() error {
	if c.ReadLatency < 0 {
		return fmt.Errorf("storage: read latency must be >= 0, got %v", c.ReadLatency)
	}
	if c.WriteLatency < 0 {
		return fmt.Errorf("storage: write latency must be >= 0, got %v", c.WriteLatency)
	}
	if c.Channels < 0 {
		return fmt.Errorf("storage: channels must be >= 0, got %d", c.Channels)
	}
	if c.DMASetup < 0 {
		return fmt.Errorf("storage: dma setup must be >= 0, got %v", c.DMASetup)
	}
	return nil
}

// Stats counts device activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	QueueDelay   sim.Time // time requests waited behind their channel
	ServiceTime  sim.Time // device-internal busy time
}

// Device is the ULL SSD + DMA engine.
type Device struct {
	cfg       Config
	link      *bus.Link
	chanBusy  []sim.Time
	stats     Stats
	completed uint64
	inj       *fault.Injector
}

// New constructs a device attached to link. Zero-value fields in cfg are
// replaced by the defaults.
func New(cfg Config, link *bus.Link) *Device {
	if cfg.ReadLatency <= 0 {
		cfg.ReadLatency = DefaultReadLatency
	}
	if cfg.WriteLatency <= 0 {
		cfg.WriteLatency = DefaultWriteLatency
	}
	if cfg.Channels <= 0 {
		cfg.Channels = DefaultChannels
	}
	if cfg.DMASetup <= 0 {
		cfg.DMASetup = DefaultDMASetup
	}
	if link == nil {
		link = bus.New(0, 0)
	}
	return &Device{
		cfg:      cfg,
		link:     link,
		chanBusy: make([]sim.Time, cfg.Channels),
	}
}

// Config returns the device parameters.
func (d *Device) Config() Config { return d.cfg }

// SetInjector attaches a fault injector. A nil injector (the default)
// keeps the device on the exact pre-fault code path: no PRNG draws, no
// outcome changes.
func (d *Device) SetInjector(inj *fault.Injector) { d.inj = inj }

// Injector returns the attached fault injector, or nil.
func (d *Device) Injector() *fault.Injector { return d.inj }

// Link returns the attached PCIe link.
func (d *Device) Link() *bus.Link { return d.link }

// Stats returns a copy of the counters.
func (d *Device) Stats() Stats { return d.stats }

// channelOf maps a swap slot to a device channel (slot striping).
func (d *Device) channelOf(slot uint64) int {
	return int(slot % uint64(len(d.chanBusy)))
}

// Outcome describes what happened to a submitted request under fault
// injection. With no injector attached only Done is ever set.
type Outcome struct {
	// Done is when the page is safely on the destination side — or, for
	// a failed transfer, when the failure is detected (the time is spent
	// either way).
	Done sim.Time
	// Failed marks a transient DMA transfer failure: the device did the
	// work and the bus carried the bytes, but the page did not arrive.
	// The caller must resubmit to get the data.
	Failed bool
	// InjectedTail is the extra device service time added by a
	// tail-latency spike (0 when none fired).
	InjectedTail sim.Time
	// Stalled is the channel-stall window this request's channel
	// suffered before servicing (0 when none fired).
	Stalled sim.Time
}

// Submit issues a DMA transfer of n bytes for swap slot at time now and
// returns the completion time. The request pays:
//
//	DMA setup  →  channel queueing  →  device service  →  bus transfer
//
// Reads transfer device→DRAM after the flash read; writes transfer
// DRAM→device before the program. Either way the completion time is when
// the page is safely on the destination side. Under fault injection the
// request can still suffer tail spikes and channel stalls, but never a
// DMA failure — callers that need the retry protocol use SubmitRetry.
func (d *Device) Submit(now sim.Time, op Op, slot uint64, n int) sim.Time {
	return d.submit(now, op, slot, n, -1).Done
}

// SubmitRetry is Submit with the transient-failure protocol: attempt is
// the zero-based retry counter, and the injector guarantees success once
// it reaches the configured retry maximum, so a retry loop that
// increments attempt always terminates. Only reads fail; write-backs are
// asynchronous and always land.
func (d *Device) SubmitRetry(now sim.Time, op Op, slot uint64, n, attempt int) Outcome {
	return d.submit(now, op, slot, n, attempt)
}

// submit is the shared request path. attempt < 0 means the caller does
// not participate in the retry protocol: the failure stream is not
// consulted (and not advanced), so plain Submit reads keep the dma
// decision stream aligned with the kernel's retried reads.
func (d *Device) submit(now sim.Time, op Op, slot uint64, n, attempt int) Outcome {
	if n <= 0 {
		panic(fmt.Sprintf("storage: non-positive transfer size %d", n))
	}
	var out Outcome
	ch := d.channelOf(slot)
	start := now + d.cfg.DMASetup
	if d.inj != nil {
		// One stall decision per request, drawn before queueing so the
		// window extends the channel's busy horizon and is charged as
		// queue delay like any other wait behind the channel.
		if window, ok := d.inj.Stall(); ok {
			busy := d.chanBusy[ch]
			if busy < start {
				busy = start
			}
			d.chanBusy[ch] = busy + window
			out.Stalled = window
		}
	}
	if d.chanBusy[ch] > start {
		d.stats.QueueDelay += d.chanBusy[ch] - start
		start = d.chanBusy[ch]
	}
	service := d.cfg.ReadLatency
	if op == Write {
		service = d.cfg.WriteLatency
	}
	if d.inj != nil {
		// One tail decision per request: the spike multiplies the
		// device-internal service time (read-retry voltage stepping,
		// program interference), not the bus transfer.
		if mult, ok := d.inj.Tail(); ok {
			spiked := sim.Time(float64(service) * mult)
			out.InjectedTail = spiked - service
			service = spiked
		}
	}
	switch op {
	case Read:
		flashDone := start + service
		d.stats.ServiceTime += service
		d.chanBusy[ch] = flashDone
		_, out.Done = d.link.Reserve(flashDone, n)
		d.stats.Reads++
		d.stats.BytesRead += uint64(n)
		if d.inj != nil && attempt >= 0 && d.inj.DMAFail(attempt) {
			// The flash read and the bus transfer happened — the time
			// and bandwidth are spent — but the transfer failed; the
			// caller sees the failure at the would-be completion time.
			out.Failed = true
		}
	case Write:
		// Programs land in the device's write buffer and flush in the
		// background; ULL devices suspend in-flight programs when a read
		// arrives (Z-NAND program-suspend), so writes consume bus
		// bandwidth and internal service time but do NOT block the
		// channel for subsequent reads.
		_, xferDone := d.link.Reserve(start, n)
		if xferDone > start {
			start = xferDone
		}
		out.Done = start + service
		d.stats.ServiceTime += service
		d.stats.Writes++
		d.stats.BytesWritten += uint64(n)
	default:
		panic(fmt.Sprintf("storage: unknown op %d", op))
	}
	d.completed++
	return out
}

// FreeChannelAt reports whether slot's channel is idle at time t. The
// prefetch path uses this for admission control: prefetch reads only ride
// the device's spare parallelism and are dropped when the channel is busy,
// the way swap readahead throttles under load, so demand reads never queue
// behind a prefetch flood.
func (d *Device) FreeChannelAt(slot uint64, t sim.Time) bool {
	return d.chanBusy[d.channelOf(slot)] <= t
}

// BusyChannelsAt returns how many channels are still servicing requests at
// time t (the gauge sampler's view of device load).
func (d *Device) BusyChannelsAt(t sim.Time) int {
	n := 0
	for _, busy := range d.chanBusy {
		if busy > t {
			n++
		}
	}
	return n
}

// SubmitPage is Submit for one 4 KiB page.
func (d *Device) SubmitPage(now sim.Time, op Op, slot uint64) sim.Time {
	return d.Submit(now, op, slot, 4096)
}

// SubmitPageRetry is SubmitRetry for one 4 KiB page.
func (d *Device) SubmitPageRetry(now sim.Time, op Op, slot uint64, attempt int) Outcome {
	return d.SubmitRetry(now, op, slot, 4096, attempt)
}

// Requests returns the total number of submitted requests.
func (d *Device) Requests() uint64 { return d.completed }

// SlotAllocator hands out unique swap slots. The swap area is sized to the
// memory footprint of the processes (paper §4.1), which in the model just
// means slots are never exhausted; the allocator exists so slot→channel
// striping is stable and write-back targets are well-defined.
type SlotAllocator struct{ next uint64 }

// Alloc returns a fresh swap slot.
func (s *SlotAllocator) Alloc() uint64 {
	s.next++
	return s.next - 1
}

// Allocated returns how many slots have been handed out.
func (s *SlotAllocator) Allocated() uint64 { return s.next }
