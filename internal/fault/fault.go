// Package fault provides a seeded, fully deterministic fault-injection
// layer for the ULL storage device. Real ultra-low-latency SSDs are not
// the perfectly-behaved 3 µs readers the paper's model assumes: they show
// tail-latency spikes, whole-channel stalls (GC, read-retry voltage
// sweeps) and transient DMA transfer failures. This package models the
// three as independent, per-request Bernoulli processes so the kernel
// swap path, the executor's spin/block decision and ITS's prefetch
// admission can be stress-tested under a misbehaving device.
//
// Determinism is the design constraint: every injector decision is drawn
// from seeded PRNG streams in device-submission order, so the same seed
// and fault config reproduce byte-identical runs. Each fault axis draws
// from its own stream (derived from the seed with distinct tweaks), so
// sweeping one probability never reshuffles the decisions of another.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"itsim/internal/chaos"
	"itsim/internal/prng"
	"itsim/internal/sim"
)

// Stream tweaks: XORed into the seed so the three fault axes draw from
// uncorrelated PRNG streams.
const (
	tailTweak  = 0x7461696c5f737067 // "tail_spg"
	stallTweak = 0x7374616c6c5f6368 // "stall_ch"
	dmaTweak   = 0x646d615f6661696c // "dma_fail"
)

// Defaults applied by New for fields left zero while their probability is
// non-zero.
const (
	DefaultTailMult     = 8.0
	DefaultStallWindow  = 50 * sim.Microsecond
	DefaultRetryMax     = 3
	DefaultRetryBackoff = 1 * sim.Microsecond
)

// Config describes a deterministic fault schedule. The zero value injects
// nothing.
type Config struct {
	// Seed selects the decision streams. Two injectors with the same
	// Config make identical decisions for identical request sequences.
	Seed uint64

	// TailProb is the per-request probability of a tail-latency spike
	// that multiplies the request's device service time by TailMult.
	TailProb float64
	TailMult float64

	// StallProb is the per-request probability that the request's
	// channel stalls for StallWindow before servicing anything else
	// (modelling GC or read-retry voltage sweeps occupying the channel).
	StallProb   float64
	StallWindow sim.Time

	// DMAFailProb is the per-read probability of a transient DMA
	// transfer failure. The kernel retries with exponential backoff up
	// to RetryMax times; the injector never fails a request whose
	// attempt counter has reached RetryMax, so retry loops are bounded
	// by construction. Write-backs never fail (they are asynchronous
	// and the model has no data-loss path to represent).
	DMAFailProb  float64
	RetryMax     int
	RetryBackoff sim.Time
}

// Enabled reports whether the config injects any faults at all. A
// disabled config must leave the simulator on exactly the code path it
// took before this package existed (no PRNG draws, no events, no summary
// fields).
func (c Config) Enabled() bool {
	return c.TailProb > 0 || c.StallProb > 0 || c.DMAFailProb > 0
}

// Validate rejects configs that are nonsensical rather than merely
// incomplete (New applies defaults for the latter). It is the user-input
// gate for the CLIs; programmatic callers may rely on New's clamping.
// The bounds checks are the shared helpers from internal/chaos, so both
// injector grammars reject out-of-range input (probabilities above 1,
// NaN, negatives) with identical semantics.
func (c Config) Validate() error {
	for _, check := range []error{
		chaos.CheckProb("fault: tail probability", c.TailProb),
		chaos.CheckProb("fault: stall probability", c.StallProb),
		chaos.CheckProb("fault: dma-failure probability", c.DMAFailProb),
		chaos.CheckMult("fault: tail multiplier", c.TailMult),
		chaos.CheckDur("fault: stall window", c.StallWindow),
		chaos.CheckDur("fault: retry backoff", c.RetryBackoff),
	} {
		if check != nil {
			return check
		}
	}
	if c.RetryMax < 0 {
		return fmt.Errorf("fault: retry max must be >= 0, got %d", c.RetryMax)
	}
	return nil
}

// withDefaults fills zero-valued knobs whose axis is active.
func (c Config) withDefaults() Config {
	if c.TailMult < 1 {
		c.TailMult = DefaultTailMult
	}
	if c.StallWindow <= 0 {
		c.StallWindow = DefaultStallWindow
	}
	if c.RetryMax <= 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	return c
}

// Stats counts the faults an injector has actually delivered.
type Stats struct {
	TailSpikes    uint64 `json:"tail_spikes,omitempty"`
	ChannelStalls uint64 `json:"channel_stalls,omitempty"`
	DMAFailures   uint64 `json:"dma_failures,omitempty"`
}

// Injector makes per-request fault decisions. Not safe for concurrent
// use; the simulator is single-threaded per run.
type Injector struct {
	cfg   Config
	tail  *prng.Source
	stall *prng.Source
	dma   *prng.Source
	stats Stats
}

// New builds an injector, applying defaults for zero-valued knobs
// (TailMult 8x, StallWindow 50 µs, RetryMax 3, RetryBackoff 1 µs).
// Probabilities outside [0,1] are clamped by the underlying PRNG's Bool,
// so New never fails; use Config.Validate to reject bad user input.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:   cfg,
		tail:  prng.New(cfg.Seed ^ tailTweak),
		stall: prng.New(cfg.Seed ^ stallTweak),
		dma:   prng.New(cfg.Seed ^ dmaTweak),
	}
}

// Config returns the injector's effective (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns a snapshot of the faults delivered so far.
func (in *Injector) Stats() Stats { return in.stats }

// Tail decides whether this request suffers a tail-latency spike and, if
// so, returns the service-time multiplier.
func (in *Injector) Tail() (mult float64, ok bool) {
	if !in.tail.Bool(in.cfg.TailProb) {
		return 1, false
	}
	in.stats.TailSpikes++
	return in.cfg.TailMult, true
}

// Stall decides whether this request's channel stalls first and, if so,
// returns the stall window.
func (in *Injector) Stall() (window sim.Time, ok bool) {
	if !in.stall.Bool(in.cfg.StallProb) {
		return 0, false
	}
	in.stats.ChannelStalls++
	return in.cfg.StallWindow, true
}

// DMAFail decides whether this read's DMA transfer fails transiently.
// attempt is the zero-based retry counter; once it reaches RetryMax the
// injector always succeeds, bounding every retry loop.
func (in *Injector) DMAFail(attempt int) bool {
	if attempt >= in.cfg.RetryMax {
		return false
	}
	if !in.dma.Bool(in.cfg.DMAFailProb) {
		return false
	}
	in.stats.DMAFailures++
	return true
}

// ParseSpec parses the CLI fault-spec syntax: a comma-separated list of
// key=value pairs. Keys: seed (uint64), tailp/tailx (probability and
// multiplier), stallp/stallw (probability and duration), dmap
// (probability), retries (int), backoff (duration). Durations use Go
// syntax ("50us", "1ms"). An empty spec yields the zero (disabled)
// Config. The result is validated.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, found := strings.Cut(field, "=")
		if !found {
			return Config{}, fmt.Errorf("fault: malformed spec entry %q (want key=value)", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 0, 64)
		case "tailp":
			cfg.TailProb, err = strconv.ParseFloat(val, 64)
		case "tailx":
			cfg.TailMult, err = strconv.ParseFloat(val, 64)
		case "stallp":
			cfg.StallProb, err = strconv.ParseFloat(val, 64)
		case "stallw":
			cfg.StallWindow, err = parseDuration(val)
		case "dmap":
			cfg.DMAFailProb, err = strconv.ParseFloat(val, 64)
		case "retries":
			cfg.RetryMax, err = strconv.Atoi(val)
		case "backoff":
			cfg.RetryBackoff, err = parseDuration(val)
		default:
			return Config{}, fmt.Errorf("fault: unknown spec key %q (known: %s)", key, strings.Join(specKeys(), ", "))
		}
		if err != nil {
			return Config{}, fmt.Errorf("fault: bad value for %s: %v", key, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

func specKeys() []string {
	keys := []string{"seed", "tailp", "tailx", "stallp", "stallw", "dmap", "retries", "backoff"}
	sort.Strings(keys)
	return keys
}

func parseDuration(val string) (sim.Time, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	return sim.Time(d.Nanoseconds()), nil
}
