package fault

import (
	"testing"
)

// FuzzParseSpec: arbitrary CLI fault specs must never panic the parser, and
// every accepted spec must yield a validated Config that builds a working
// injector — ParseSpec is the front door every -faults flag value walks
// through.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("seed=42,tailp=0.01,tailx=8")
	f.Add("stallp=0.005,stallw=50us,dmap=0.001,retries=3,backoff=1us")
	f.Add("seed=0x10,tailp=1.5")
	f.Add("tailp")
	f.Add("unknown=1")
	f.Add(" seed = 7 , tailp = 0.5 ,, ")
	f.Add("backoff=-1ms,retries=-2")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted a config Validate rejects: %v", spec, verr)
		}
		// An accepted config must drive the injector without panicking.
		in := New(cfg)
		in.Tail()
		in.Stall()
		in.DMAFail(0)
		in.DMAFail(in.Config().RetryMax)
	})
}
