package fault

import (
	"math"
	"strings"
	"testing"

	"itsim/internal/sim"
)

// Two injectors with the same config must make the same decision sequence —
// the foundation of byte-identical runs under faults.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, TailProb: 0.3, StallProb: 0.2, DMAFailProb: 0.4}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		am, aok := a.Tail()
		bm, bok := b.Tail()
		if am != bm || aok != bok {
			t.Fatalf("tail decision %d diverged: (%v,%v) vs (%v,%v)", i, am, aok, bm, bok)
		}
		aw, aok := a.Stall()
		bw, bok := b.Stall()
		if aw != bw || aok != bok {
			t.Fatalf("stall decision %d diverged", i)
		}
		if a.DMAFail(0) != b.DMAFail(0) {
			t.Fatalf("dma decision %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().TailSpikes == 0 || a.Stats().ChannelStalls == 0 || a.Stats().DMAFailures == 0 {
		t.Fatalf("expected every axis to fire over 1000 draws: %+v", a.Stats())
	}
}

// Each fault axis draws from its own stream: changing one probability must
// not reshuffle the decisions of the others.
func TestStreamIndependence(t *testing.T) {
	base := Config{Seed: 7, TailProb: 0.25, StallProb: 0.25, DMAFailProb: 0.25}
	bumped := base
	bumped.StallProb = 0.9 // perturb one axis only

	a, b := New(base), New(bumped)
	for i := 0; i < 500; i++ {
		if _, aok := a.Tail(); func() bool { _, bok := b.Tail(); return bok }() != aok {
			t.Fatalf("tail decision %d changed when only stall probability moved", i)
		}
		a.Stall()
		b.Stall()
		if a.DMAFail(0) != b.DMAFail(0) {
			t.Fatalf("dma decision %d changed when only stall probability moved", i)
		}
	}
}

// A zero probability must not consume entropy: interleaving no-op axes
// cannot perturb the active one.
func TestZeroProbabilityDrawsNothing(t *testing.T) {
	withIdle := New(Config{Seed: 3, TailProb: 0.5})
	alone := New(Config{Seed: 3, TailProb: 0.5})
	for i := 0; i < 300; i++ {
		withIdle.Stall()    // StallProb 0: must not advance any stream
		withIdle.DMAFail(0) // DMAFailProb 0: likewise
		_, aok := withIdle.Tail()
		_, bok := alone.Tail()
		if aok != bok {
			t.Fatalf("tail decision %d perturbed by zero-probability draws", i)
		}
	}
	if st := withIdle.Stats(); st.ChannelStalls != 0 || st.DMAFailures != 0 {
		t.Fatalf("zero-probability axes delivered faults: %+v", st)
	}
}

// DMAFail must always succeed once the attempt counter reaches RetryMax —
// the property that bounds every kernel retry loop.
func TestDMAFailBoundedByRetryMax(t *testing.T) {
	in := New(Config{Seed: 1, DMAFailProb: 1, RetryMax: 2})
	if !in.DMAFail(0) || !in.DMAFail(1) {
		t.Fatal("p=1 DMA failure did not fire below RetryMax")
	}
	for i := 0; i < 100; i++ {
		if in.DMAFail(2) {
			t.Fatal("DMAFail fired at attempt == RetryMax")
		}
	}
}

func TestNewAppliesDefaults(t *testing.T) {
	got := New(Config{Seed: 9, TailProb: 0.1, StallProb: 0.1, DMAFailProb: 0.1}).Config()
	if got.TailMult != DefaultTailMult {
		t.Errorf("TailMult = %v, want %v", got.TailMult, DefaultTailMult)
	}
	if got.StallWindow != DefaultStallWindow {
		t.Errorf("StallWindow = %v, want %v", got.StallWindow, DefaultStallWindow)
	}
	if got.RetryMax != DefaultRetryMax {
		t.Errorf("RetryMax = %v, want %v", got.RetryMax, DefaultRetryMax)
	}
	if got.RetryBackoff != DefaultRetryBackoff {
		t.Errorf("RetryBackoff = %v, want %v", got.RetryBackoff, DefaultRetryBackoff)
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if (Config{TailMult: 8, StallWindow: sim.Millisecond, RetryMax: 5}).Enabled() {
		t.Error("config with knobs but no probabilities reports enabled")
	}
	for _, c := range []Config{{TailProb: 0.1}, {StallProb: 0.1}, {DMAFailProb: 0.1}} {
		if !c.Enabled() {
			t.Errorf("%+v reports disabled", c)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"typical", Config{TailProb: 0.01, TailMult: 8, StallProb: 0.001, StallWindow: 50 * sim.Microsecond, DMAFailProb: 0.005, RetryMax: 3, RetryBackoff: sim.Microsecond}, true},
		{"prob one", Config{TailProb: 1, StallProb: 1, DMAFailProb: 1}, true},
		{"negative tail prob", Config{TailProb: -0.1}, false},
		{"tail prob above one", Config{TailProb: 1.1}, false},
		{"negative stall prob", Config{StallProb: -1}, false},
		{"stall prob above one", Config{StallProb: 1.5}, false},
		{"negative dma prob", Config{DMAFailProb: -0.5}, false},
		{"dma prob above one", Config{DMAFailProb: 2}, false},
		{"nan tail prob", Config{TailProb: math.NaN()}, false},
		{"inf stall prob", Config{StallProb: math.Inf(1)}, false},
		{"nan tail mult", Config{TailProb: 0.1, TailMult: math.NaN()}, false},
		{"tail mult below one", Config{TailMult: 0.5}, false},
		{"negative stall window", Config{StallWindow: -1}, false},
		{"negative retry max", Config{RetryMax: -1}, false},
		{"negative backoff", Config{RetryBackoff: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestParseSpec(t *testing.T) {
	got, err := ParseSpec("seed=42, tailp=0.01, tailx=8, stallp=0.001, stallw=50us, dmap=0.005, retries=4, backoff=2us")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 42, TailProb: 0.01, TailMult: 8,
		StallProb: 0.001, StallWindow: 50 * sim.Microsecond,
		DMAFailProb: 0.005, RetryMax: 4, RetryBackoff: 2 * sim.Microsecond,
	}
	if got != want {
		t.Fatalf("ParseSpec = %+v, want %+v", got, want)
	}

	if got, err := ParseSpec(""); err != nil || got.Enabled() {
		t.Fatalf("empty spec: %+v, %v", got, err)
	}
	if got, err := ParseSpec("seed=0x10"); err != nil || got.Seed != 16 {
		t.Fatalf("hex seed: %+v, %v", got, err)
	}

	for _, bad := range []string{
		"tailp",       // no value
		"frob=1",      // unknown key
		"tailp=lots",  // unparseable float
		"stallw=50",   // duration without unit
		"retries=1.5", // non-integer
		"tailp=2",     // fails validation
		"tailx=0.5",   // multiplier below 1
		"seed=-1",     // negative uint
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if _, err := ParseSpec("frob=1"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown-key error does not list known keys: %v", err)
	}
}
