package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	var x uint64
	for i := 0; i < 100; i++ {
		x |= r.Uint64()
	}
	if x == 0 {
		t.Fatal("seed 0 produced only zeros")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nPropertyInRange(t *testing.T) {
	r := New(99)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformish(t *testing.T) {
	// Chi-squared-lite: 8 buckets over Uint64n(8) should each get roughly
	// 1/8 of the draws.
	r := New(123)
	const draws = 80000
	var buckets [8]int
	for i := 0; i < draws; i++ {
		buckets[r.Uint64n(8)]++
	}
	want := draws / 8
	for i, got := range buckets {
		if got < want*9/10 || got > want*11/10 {
			t.Errorf("bucket %d: got %d, want within 10%% of %d", i, got, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ≈ 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) hit fraction %v, want ≈ 0.3", frac)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := New(29)
	const n = 1000
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := r.Zipf(n, 0.8)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Heavy head: the first 10% of ranks should hold well more than 10%
	// of the mass.
	head := 0
	for i := 0; i < n/10; i++ {
		head += counts[i]
	}
	if head < 20000 {
		t.Fatalf("Zipf head mass %d/100000, want skewed (> 20000)", head)
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := New(31)
	if got := r.Zipf(1, 0.5); got != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", got)
	}
	if got := r.Zipf(0, 0.5); got != 0 {
		t.Fatalf("Zipf(0) = %d, want 0", got)
	}
}

// TestMix: the seed mixer is deterministic, order-sensitive, and — unlike
// bare addition — does not collide when mass moves between parts.
func TestMix(t *testing.T) {
	if Mix(1, 2) != Mix(1, 2) {
		t.Fatal("Mix is not deterministic")
	}
	if Mix(1, 2) == Mix(2, 1) {
		t.Error("Mix should be order-sensitive")
	}
	// The collision class seedflow exists for: a+b == (a+1)+(b-1), but the
	// mixed seeds must differ.
	if Mix(10, 20) == Mix(11, 19) {
		t.Error("Mix(10,20) collides with Mix(11,19) — the additive collision it must prevent")
	}
	if Mix() == Mix(0) {
		t.Error("Mix() and Mix(0) should differ (zero part still avalanches)")
	}
}
