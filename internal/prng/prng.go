// Package prng provides a small, fast, deterministic pseudo-random number
// generator used by the synthetic workload generators and the simulator.
//
// Determinism matters more than statistical perfection here: a workload
// trace must be exactly reproducible from its seed so that every policy in
// an experiment sees byte-identical input. The generator is SplitMix64 for
// seeding feeding an xoshiro256** state, both public-domain algorithms.
package prng

import (
	"math"
	"math/bits"
)

// Source is a deterministic 64-bit PRNG (xoshiro256** seeded by SplitMix64).
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source deterministically derived from seed. Distinct seeds
// yield uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// Avoid the theoretical all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Mix folds any number of seed parts into one well-spread 64-bit seed by
// chaining each part through SplitMix64's finalizer. Unlike bare addition
// (where Mix(a, b) vs Mix(a+1, b-1) would collide), every input bit
// avalanches across the result, so derived streams stay uncorrelated.
// seedflow's suggested fix rewrites collision-prone seed arithmetic in the
// deterministic packages to calls of this helper.
//
//itslint:seedmixer
func Mix(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h ^= p
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if
// n == 0. Uses Lemire's multiply-shift rejection method.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	// Multiplying by the exact reciprocal of 2^53 is bit-identical to the
	// division (both are exact power-of-two scalings) and several times
	// cheaper; this runs a handful of times per generated record.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Zipf samples from a bounded Zipf-like distribution over [0, n) with
// exponent theta in (0, 2]. It uses the rejection-inversion-free power
// approximation common in storage-workload generators (YCSB-style): cheap,
// deterministic, and heavy-tailed enough to model hot/cold page behaviour.
func (r *Source) Zipf(n int, theta float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF approximation of a power-law: floor(n * u^(1/(1-theta)))
	// diverges for theta >= 1, so fold to an exponent in (0, 1).
	exp := theta
	if exp >= 0.99 {
		exp = 0.99
	}
	u := r.Float64()
	// Map u through u^(1/(1-exp)): small ranks strongly favoured.
	v := math.Pow(u, 1/(1-exp))
	idx := int(v * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}
