// Package smp is the multi-core machine model: N simulated cores, each
// with its own L1 cache, TLB, SCHED_RR runqueue and policy instance
// (self-sacrificing/self-improving kernel threads run per core), sharing one
// LLC (minus per-core pre-execute carve-outs), one kernel/swap path and one
// ULL device whose channel and PCIe-link contention now comes from every
// core at once.
//
// Each core advances on its own sim.Engine clock; a deterministic
// coordinator repeatedly picks the core with the earliest next-event time
// (ties broken by lowest core id) and steps it up to the next other-core
// event horizon, so the interleaving of shared-state accesses is a pure
// function of the configuration and seeds — runs are bit-reproducible.
// Cores may run ahead of each other within one executor step (a synchronous
// fault window is atomic), giving bounded-skew rather than lock-step
// semantics; every shared component (storage channels, PCIe link, DRAM)
// tolerates out-of-order timestamps by design.
//
// Work-stealing-aware dispatch: an idle core pulls a Ready process from a
// loaded core's runqueue (victim scan order (id+1)%N, so the choice is
// deterministic), paying one context-switch cost for the migration. This is
// the new ITS scenario the single-core machine cannot express: a
// high-priority process keeps busy-waiting on its core while its
// low-priority victim migrates to the idle core instead of blocking.
//
// With Cores=1 the coordinator degenerates exactly to the single-core
// machine loop and produces identical metrics on the same seed.
package smp

import (
	"errors"
	"fmt"
	"math"

	"itsim/internal/bus"
	"itsim/internal/cache"
	"itsim/internal/cpu"
	"itsim/internal/kernel"
	"itsim/internal/machine"
	"itsim/internal/mem"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/preexec"
	"itsim/internal/sched"
	"itsim/internal/sim"
	"itsim/internal/storage"
	"itsim/internal/trace"
)

// never is the parked-core sentinel: no local work at any future time.
const never = sim.Time(math.MaxInt64)

// proc is the per-process runtime state (the machine's, plus the owning
// core and steal-eligibility bookkeeping).
type proc struct {
	pid  int
	spec machine.ProcessSpec
	met  *metrics.Process

	// owner is the core whose runqueue currently holds the process.
	owner int
	// readyAt is when the process last became Ready (owner-core clock);
	// a thief's clock jumps to at least this time before stealing.
	readyAt sim.Time

	// pending tracks this process's in-flight swap-in completions, which
	// live on the owner core's engine and migrate with the process.
	pending []*pendingIO

	look    []trace.Record
	head    int
	drained bool

	sliceLeft  sim.Time
	instCarry  uint64
	blockedAt  sim.Time
	wasBlocked bool
	gapPaid    bool
}

func (p *proc) dropPending(pio *pendingIO) {
	for i, q := range p.pending {
		if q == pio {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			return
		}
	}
}

type inflightKey struct {
	pid  int
	page uint64
}

// pendingIO is one scheduled swap-in completion.
type pendingIO struct {
	key   inflightKey
	frame mem.FrameID
	done  sim.Time
	ev    *sim.Event
}

// coreCPU is one simulated core: private engine/clock, L1, TLB, runqueue,
// policy instance and pre-execute carve-out, plus an always-on accounting
// auditor checking per-core time conservation.
type coreCPU struct {
	m   *Machine
	id  int
	eng *sim.Engine
	sch *sched.RR
	l1  *cache.Cache
	tlb *cpu.TLB
	px  *preexec.Engine
	pol policy.Policy
	aud *obs.Auditor
	met *metrics.Core

	// cur is the dispatched process; it stays dispatched across horizon
	// pauses so a coordinator hand-off is not a spurious context switch.
	cur          *proc
	lastPXPid    int
	dispatchedAt sim.Time
}

// Machine is the N-core platform executing one batch under one policy.
type Machine struct {
	cfg   machine.Config
	cores []*coreCPU
	procs []*proc

	krn *kernel.Kernel
	llc *cache.Cache
	run *metrics.Run

	inflight map[inflightKey]sim.Time

	trc        *obs.Tracer
	want       [obs.NumTypes]bool
	gaugeEvery sim.Time
}

// New builds an N-core machine (N = cfg.Cores; 0 means 1). newPolicy must
// return a fresh policy instance per call — policies are stateful and each
// core runs its own. Configuration problems come back as errors, not
// panics: this is the path user input (the -cores flag) reaches.
func New(cfg machine.Config, newPolicy func() policy.Policy, batchName string, specs []machine.ProcessSpec) (*Machine, error) {
	if newPolicy == nil {
		return nil, errors.New("smp: nil policy factory")
	}
	if len(specs) == 0 {
		return nil, errors.New("smp: no processes")
	}
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.InstPerNs <= 0 {
		cfg.InstPerNs = machine.DefaultInstPerNs
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = machine.DefaultLookahead
	}
	if cfg.DRAMRatio <= 0 {
		cfg.DRAMRatio = 0.75
	}
	if cfg.TLBEntries > 0 && cfg.TLBMissCost <= 0 {
		cfg.TLBMissCost = 25 * sim.Nanosecond
	}
	n := cfg.Cores

	pols := make([]policy.Policy, n)
	for i := range pols {
		if pols[i] = newPolicy(); pols[i] == nil {
			return nil, errors.New("smp: policy factory returned nil")
		}
	}

	// Partition the LLC: every core gets its own pre-execute carve-out
	// (same way-partitioning math as the single-core machine, split N
	// ways); the remainder is the shared LLC.
	llcSize, llcWays := cfg.LLCSize, cfg.LLCWays
	pxSize, pxWays := 0, 0
	if pols[0].Kind().NeedsPreExecCache() {
		per, share, err := cfg.PreExecPartition(n)
		if err != nil {
			return nil, err
		}
		sets := cfg.LLCSize / (cfg.LineBytes * cfg.LLCWays)
		pxWays = per
		pxSize = per * sets * cfg.LineBytes
		llcSize = cfg.LLCSize - pxSize*n
		llcWays = share
	}

	frames := cfg.DRAMFrames
	if frames == 0 {
		var pages uint64
		for _, s := range specs {
			pages += trace.FootprintPages(s.Gen.FootprintBytes())
		}
		frames = int(cfg.DRAMRatio * float64(pages))
	}
	if frames < 64 {
		frames = 64
	}

	link := bus.New(cfg.BusLanes, cfg.LaneBandwidth)
	dev := storage.New(cfg.Device, link)
	m := &Machine{
		cfg:      cfg,
		krn:      kernel.New(mem.NewDRAM(frames, cfg.Replacement), dev),
		llc:      cache.New(cache.Config{SizeBytes: llcSize, LineBytes: cfg.LineBytes, Ways: llcWays}),
		run:      metrics.NewRun(pols[0].Name(), batchName),
		inflight: make(map[inflightKey]sim.Time),
	}

	// Pin every core's slice mapping to the batch-global priority range so
	// a migrated process keeps the slice the single-queue machine would
	// give it (and N=1 reproduces the machine's slices exactly).
	lo, hi := specs[0].Priority, specs[0].Priority
	for _, s := range specs[1:] {
		if s.Priority < lo {
			lo = s.Priority
		}
		if s.Priority > hi {
			hi = s.Priority
		}
	}

	for i := 0; i < n; i++ {
		c := &coreCPU{
			m:         m,
			id:        i,
			eng:       &sim.Engine{},
			sch:       sched.New(),
			l1:        cache.New(cache.Config{SizeBytes: cfg.L1Size, LineBytes: cfg.LineBytes, Ways: cfg.L1Ways}),
			pol:       pols[i],
			aud:       obs.NewAuditor(),
			met:       m.run.AddCore(i),
			lastPXPid: -1,
		}
		if pxSize > 0 {
			c.px = preexec.New(cpu.NewPreExecCache(cache.Config{
				SizeBytes: pxSize, LineBytes: cfg.LineBytes, Ways: pxWays,
			}))
		}
		if cfg.TLBEntries > 0 {
			c.tlb = cpu.NewTLB(cfg.TLBEntries)
		}
		if cfg.StrictPriority {
			c.sch.SetStrictPriority(true)
		}
		if cfg.MinSlice > 0 || cfg.MaxSlice > 0 {
			minS, maxS := cfg.MinSlice, cfg.MaxSlice
			if minS <= 0 {
				minS = sched.MinSlice
			}
			if maxS <= 0 {
				maxS = sched.MaxSlice
			}
			c.sch.SetSliceRange(minS, maxS)
		}
		c.sch.SetPriorityRange(lo, hi)
		c.sch.SetObserver(c.observe)
		m.cores = append(m.cores, c)
	}

	for pid, s := range specs {
		s.Gen.Reset()
		p := &proc{pid: pid, spec: s, met: m.run.AddProcess(pid, s.Name, s.Priority), owner: pid % n}
		m.procs = append(m.procs, p)
		m.krn.AddProcess(pid, s.Name, s.Priority)
		m.krn.MapRegion(pid, s.BaseVA, s.Gen.FootprintBytes())
		m.cores[p.owner].sch.Add(pid, s.Priority)
	}
	m.warmStart(cfg.WarmFraction, frames)

	for i := range m.want {
		m.want[i] = m.cores[0].aud.Wants(obs.Type(i))
	}
	return m, nil
}

// observe is each core's scheduler hook: it keeps steal-eligibility
// timestamps fresh and mirrors unblock transitions into the trace.
func (c *coreCPU) observe(pid int, from, to sched.State) {
	if to == sched.Ready {
		c.m.procs[pid].readyAt = c.eng.Now()
	}
	if from == sched.Blocked && to == sched.Ready && c.m.trc.Wants(obs.EvUnblock) {
		c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvUnblock, PID: pid})
	}
}

// warmSetter is implemented by workloads that can enumerate their working
// set (hottest pages first) for warm-starting DRAM.
type warmSetter interface {
	WarmPages(maxPages int) []uint64
}

// warmStart pre-loads each process's hottest pages into DRAM, fair-share,
// in pid order — the same steady multiprogrammed state the single-core
// machine starts from.
func (m *Machine) warmStart(fraction float64, frames int) {
	if fraction < 0 {
		return
	}
	if fraction == 0 {
		fraction = 0.85
	}
	if fraction > 1 {
		fraction = 1
	}
	budget := int(fraction * float64(frames) / float64(len(m.procs)))
	if budget <= 0 {
		return
	}
	for _, p := range m.procs {
		ws, ok := p.spec.Gen.(warmSetter)
		if !ok {
			continue
		}
		as := m.krn.Process(p.pid).AS
		for _, va := range ws.WarmPages(budget) {
			if pte, found := as.Lookup(va); found && pte.Present() {
				continue
			}
			id, free := m.krn.DRAM().Allocate(p.pid, va, false)
			if !free {
				return // DRAM full: warm-start ends here
			}
			as.MakePresent(va, uint64(id))
		}
	}
}

// Instrument attaches an event tracer and, when gaugeEvery > 0, a periodic
// gauge sampler (driven by core 0's clock). Call before Run. The per-core
// accounting auditors always run.
func (m *Machine) Instrument(trc *obs.Tracer, gaugeEvery sim.Time) {
	m.trc = trc
	m.gaugeEvery = gaugeEvery
	m.krn.SetTracer(trc)
	for i := range m.want {
		m.want[i] = m.cores[0].aud.Wants(obs.Type(i)) || trc.Wants(obs.Type(i))
	}
}

// Auditors exposes the per-core accounting auditors (tests, tools).
func (m *Machine) Auditors() []*obs.Auditor {
	out := make([]*obs.Auditor, len(m.cores))
	for i, c := range m.cores {
		out[i] = c.aud
	}
	return out
}

// Kernel exposes the shared kernel for inspection.
func (m *Machine) Kernel() *kernel.Kernel { return m.krn }

// LLC exposes the shared last-level cache for inspection.
func (m *Machine) LLC() *cache.Cache { return m.llc }

// CoreCount returns the number of simulated cores.
func (m *Machine) CoreCount() int { return len(m.cores) }

// emit stamps the event with the core id and routes it to the core's
// auditor and the shared tracer.
func (c *coreCPU) emit(ev obs.Event) {
	ev.Core = c.id
	if c.aud.Wants(ev.Type) {
		c.aud.Write(ev)
	}
	c.m.trc.Emit(ev)
}

// alive is the number of unfinished processes across every core.
func (m *Machine) alive() int {
	n := 0
	for _, c := range m.cores {
		n += c.sch.Alive()
	}
	return n
}

// nextTime returns the earliest virtual time at which this core can do
// something, or false when the core is parked (nothing now or ever, barring
// other cores' progress). A core with no live local processes ignores its
// leftover trace events so it parks (or steals) instead of spinning.
func (c *coreCPU) nextTime() (sim.Time, bool) {
	if c.cur != nil || c.sch.NextToRun() != -1 {
		return c.eng.Now(), true
	}
	t, ok := c.eng.NextEventTime()
	if ok && c.sch.Alive() == 0 {
		ok = false
	}
	if cand := c.stealCandidate(); cand != nil {
		st := cand.readyAt
		if now := c.eng.Now(); st < now {
			st = now
		}
		if !ok || st < t {
			return st, true
		}
	}
	return t, ok
}

// stealCandidate scans the other cores from (id+1)%N for a loaded victim: a
// core that is running one process while another sits Ready in its queue.
// Only Ready processes migrate — blocked ones have wake-up events tied to
// their owner's engine.
func (c *coreCPU) stealCandidate() *proc {
	n := len(c.m.cores)
	for off := 1; off < n; off++ {
		v := c.m.cores[(c.id+off)%n]
		if v.cur == nil {
			continue
		}
		if pid := v.sch.NextToRun(); pid != -1 {
			return c.m.procs[pid]
		}
	}
	return nil
}

// Run executes every process to completion under the deterministic
// coordinator and returns the metrics.
func (m *Machine) Run() (*metrics.Run, error) {
	label := m.run.Policy + "/" + m.run.Batch
	m.trc.Emit(obs.Event{Time: 0, Type: obs.EvRunBegin, PID: -1, Cause: label})
	for _, c := range m.cores {
		c.aud.Write(obs.Event{Time: 0, Type: obs.EvRunBegin, PID: -1, Core: c.id, Cause: label})
	}
	m.scheduleGauges()

	for m.alive() > 0 {
		best, bestT := -1, never
		for _, c := range m.cores {
			if t, ok := c.nextTime(); ok && (best == -1 || t < bestT) {
				best, bestT = c.id, t
			}
		}
		if best == -1 {
			return m.run, fmt.Errorf("smp: deadlock — every core parked with %d processes unfinished", m.alive())
		}
		// The horizon is the earliest time any OTHER core is due: the
		// chosen core executes up to it, then yields back so shared
		// state mutates in deterministic near-time order.
		horizon := never
		for _, c := range m.cores {
			if c.id == best {
				continue
			}
			if t, ok := c.nextTime(); ok && t < horizon {
				horizon = t
			}
		}
		if err := m.cores[best].step(horizon); err != nil {
			return m.run, err
		}
	}

	var makespan sim.Time
	for _, c := range m.cores {
		c.met.LocalClock = c.eng.Now()
		if c.eng.Now() > makespan {
			makespan = c.eng.Now()
		}
	}
	m.run.Makespan = makespan
	m.trc.Emit(obs.Event{Time: makespan, Type: obs.EvRunEnd, PID: -1})
	for _, c := range m.cores {
		c.aud.Write(obs.Event{Time: c.eng.Now(), Type: obs.EvRunEnd, PID: -1, Core: c.id})
		c.eng.RunUntilIdle() // drain trailing completions and trace events
		if err := c.aud.Err(); err != nil {
			return m.run, fmt.Errorf("smp: core %d accounting audit failed: %w", c.id, err)
		}
	}
	return m.run, nil
}

// step advances this core once: dispatch-and-run, one idle event, or one
// steal. The kernel's event attribution follows the stepping core.
func (c *coreCPU) step(horizon sim.Time) error {
	m := c.m
	if m.cfg.MaxSimTime > 0 && c.eng.Now() > m.cfg.MaxSimTime {
		return fmt.Errorf("smp: core %d exceeded max simulated time %v", c.id, m.cfg.MaxSimTime)
	}
	m.krn.SetCore(c.id)
	if c.cur == nil {
		pid := c.sch.PickNext()
		if pid == -1 {
			// Prefer local events when they land no later than the
			// earliest steal; otherwise pull work over.
			evT, hasEv := c.eng.NextEventTime()
			if cand := c.stealCandidate(); cand != nil {
				st := cand.readyAt
				if now := c.eng.Now(); st < now {
					st = now
				}
				if !hasEv || st < evT {
					c.steal(cand, st)
					return nil
				}
			}
			t0 := c.eng.Now()
			if m.want[obs.EvSchedIdleBegin] {
				c.emit(obs.Event{Time: t0, Type: obs.EvSchedIdleBegin, PID: -1})
			}
			if !c.eng.StepOne() {
				return fmt.Errorf("smp: core %d has no runnable process and no pending event at %v", c.id, t0)
			}
			d := c.eng.Now() - t0
			m.run.SchedulerIdle += d
			c.met.SchedulerIdle += d
			if m.want[obs.EvSchedIdleEnd] {
				c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvSchedIdleEnd, PID: -1})
			}
			return nil
		}
		c.dispatch(pid)
	}
	return c.runCur(horizon)
}

// steal migrates p (Ready on another core) onto this core at time at: the
// idle wait up to the victim's ready time is scheduler idle, the migration
// itself costs one context switch of state movement, and p's in-flight
// swap-in completions move onto this core's engine.
func (c *coreCPU) steal(p *proc, at sim.Time) {
	m := c.m
	if at > c.eng.Now() {
		t0 := c.eng.Now()
		if m.want[obs.EvSchedIdleBegin] {
			c.emit(obs.Event{Time: t0, Type: obs.EvSchedIdleBegin, PID: -1})
		}
		c.eng.AdvanceTo(at) // fires nothing: local events are later by construction
		d := at - t0
		m.run.SchedulerIdle += d
		c.met.SchedulerIdle += d
		if m.want[obs.EvSchedIdleEnd] {
			c.emit(obs.Event{Time: at, Type: obs.EvSchedIdleEnd, PID: -1})
		}
	}

	victim := m.cores[p.owner]
	victim.sch.Remove(p.pid)
	victim.met.MigratedAway++
	p.owner = c.id
	c.sch.Add(p.pid, p.spec.Priority)
	c.met.Steals++

	// Re-home pending completions: past ones (on this clock) apply now,
	// future ones reschedule here.
	moved := p.pending
	p.pending = nil
	for _, pio := range moved {
		victim.eng.Cancel(pio.ev)
		if pio.done <= c.eng.Now() {
			m.krn.CompleteSwapIn(p.pid, pio.key.page, pio.frame)
			delete(m.inflight, pio.key)
		} else {
			c.schedulePendingIO(p, pio)
		}
	}

	// Migration is pure state movement: one context-switch cost, charged
	// to the thief core and counted against the migrated process. Cache
	// and TLB pollution is emergent — the process starts cold here.
	m.run.ContextSwitchTime += kernel.ContextSwitchCost
	c.met.ContextSwitchTime += kernel.ContextSwitchCost
	p.met.ContextSwitches++
	c.advance(nil, kernel.ContextSwitchCost)
	if m.want[obs.EvContextSwitch] {
		c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvContextSwitch, PID: p.pid,
			Dur: kernel.ContextSwitchCost, Cause: "migrate"})
	}
}

// schedulePendingIO schedules pio's completion on this core's engine and
// tracks it on p for migration.
func (c *coreCPU) schedulePendingIO(p *proc, pio *pendingIO) {
	m := c.m
	pio.ev = c.eng.Schedule(pio.done, func(sim.Time) {
		m.krn.CompleteSwapIn(p.pid, pio.key.page, pio.frame)
		delete(m.inflight, pio.key)
		p.dropPending(pio)
	})
	p.pending = append(p.pending, pio)
}

// scheduleGauges starts the periodic gauge sampler on core 0's clock.
func (m *Machine) scheduleGauges() {
	if m.gaugeEvery <= 0 || !m.want[obs.EvGauge] {
		return
	}
	c0 := m.cores[0]
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		m.emitGauges(now)
		if m.alive() > 0 {
			c0.eng.Schedule(now+m.gaugeEvery, tick)
		}
	}
	c0.eng.Schedule(c0.eng.Now()+m.gaugeEvery, tick)
}

func (m *Machine) emitGauges(now sim.Time) {
	c0 := m.cores[0]
	g := func(name string, v int64) {
		c0.emit(obs.Event{Time: now, Type: obs.EvGauge, PID: -1, Cause: name, Value: v})
	}
	ready := 0
	for _, c := range m.cores {
		ready += c.sch.Runnable()
	}
	g("ready_queue_depth", int64(ready))
	g("outstanding_swapins", int64(len(m.inflight)))
	g("llc_lines", int64(m.llc.ValidLines()))
	if m.cores[0].px != nil {
		px := 0
		for _, c := range m.cores {
			px += c.px.PXC.ValidLines()
		}
		g("preexec_cache_lines", int64(px))
	}
	g("busy_storage_channels", int64(m.krn.Device().BusyChannelsAt(now)))
}
