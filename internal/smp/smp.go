// Package smp is the multi-core machine model: N simulated cores, each
// with its own L1 cache, TLB, SCHED_RR runqueue and policy instance
// (self-sacrificing/self-improving kernel threads run per core), sharing one
// LLC (minus per-core pre-execute carve-outs), one kernel/swap path and one
// ULL device whose channel and PCIe-link contention now comes from every
// core at once.
//
// The per-record executor — dispatch, fault windows, prefetch,
// pre-execution, swap-in management — lives in internal/exec and is shared
// verbatim with the single-core machine; this package contributes only what
// is inherently multi-core: the bounded-skew coordinator, work stealing,
// and the pendingIO re-homing a steal requires.
//
// Each core advances on its own sim.Engine clock; a deterministic
// coordinator repeatedly picks the core with the earliest next-event time
// (ties broken by lowest core id) and steps it up to the next other-core
// event horizon, so the interleaving of shared-state accesses is a pure
// function of the configuration and seeds — runs are bit-reproducible.
// Cores may run ahead of each other within one executor step (a synchronous
// fault window is atomic), giving bounded-skew rather than lock-step
// semantics; every shared component (storage channels, PCIe link, DRAM)
// tolerates out-of-order timestamps by design.
//
// Work-stealing-aware dispatch: an idle core pulls a Ready process from a
// loaded core's runqueue (victim scan order (id+1)%N, so the choice is
// deterministic), paying one context-switch cost for the migration. This is
// the new ITS scenario the single-core machine cannot express: a
// high-priority process keeps busy-waiting on its core while its
// low-priority victim migrates to the idle core instead of blocking.
//
// With Cores=1 the coordinator degenerates exactly to the single-core
// machine loop and produces identical metrics on the same seed — not by
// careful porting but structurally, because both instantiate the same
// exec.Core.
package smp

import (
	"errors"
	"fmt"
	"math"

	"itsim/internal/cache"
	"itsim/internal/exec"
	"itsim/internal/kernel"
	"itsim/internal/machine"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/sim"
)

// never is the parked-core sentinel: no local work at any future time.
const never = sim.Time(math.MaxInt64)

// Machine is the N-core platform executing one batch under one policy: a
// shared exec platform plus the coordinator state in this package.
type Machine struct {
	s *exec.Shared
}

// New builds an N-core machine (N = cfg.Cores; 0 means 1). newPolicy must
// return a fresh policy instance per call — policies are stateful and each
// core runs its own. Configuration problems come back as errors, not
// panics: this is the path user input (the -cores flag) reaches.
func New(cfg machine.Config, newPolicy func() policy.Policy, batchName string, specs []machine.ProcessSpec) (*Machine, error) {
	if newPolicy == nil {
		return nil, errors.New("smp: nil policy factory")
	}
	if len(specs) == 0 {
		return nil, errors.New("smp: no processes")
	}
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pols := make([]policy.Policy, cfg.Cores)
	for i := range pols {
		if pols[i] = newPolicy(); pols[i] == nil {
			return nil, errors.New("smp: policy factory returned nil")
		}
	}
	s, err := exec.NewShared(cfg, pols, batchName, specs, true)
	if err != nil {
		return nil, err
	}
	return &Machine{s: s}, nil
}

// Instrument attaches an event tracer and, when gaugeEvery > 0, a periodic
// gauge sampler (driven by core 0's clock). Call before Run. The per-core
// accounting auditors always run.
func (m *Machine) Instrument(trc *obs.Tracer, gaugeEvery sim.Time) {
	m.s.Instrument(trc, gaugeEvery)
}

// Auditors exposes the per-core accounting auditors (tests, tools).
func (m *Machine) Auditors() []*obs.Auditor {
	out := make([]*obs.Auditor, len(m.s.Cores))
	for i, c := range m.s.Cores {
		out[i] = c.Aud
	}
	return out
}

// Kernel exposes the shared kernel for inspection.
func (m *Machine) Kernel() *kernel.Kernel { return m.s.Krn }

// LLC exposes the shared last-level cache for inspection.
func (m *Machine) LLC() *cache.Cache { return m.s.LLC }

// CoreCount returns the number of simulated cores.
func (m *Machine) CoreCount() int { return len(m.s.Cores) }

// nextTime returns the earliest virtual time at which core c can do
// something, or false when the core is parked (nothing now or ever, barring
// other cores' progress). A core with no live local processes ignores its
// leftover trace events so it parks (or steals) instead of spinning.
func (m *Machine) nextTime(c *exec.Core) (sim.Time, bool) {
	if c.Cur != nil || c.Sch.NextToRun() != -1 {
		return c.Eng.Now(), true
	}
	t, ok := c.Eng.NextEventTime()
	if ok && c.Sch.Alive() == 0 {
		ok = false
	}
	if cand := m.stealCandidate(c); cand != nil {
		st := cand.ReadyAt
		if now := c.Eng.Now(); st < now {
			st = now
		}
		if !ok || st < t {
			return st, true
		}
	}
	return t, ok
}

// stealCandidate scans the other cores from (id+1)%N for a loaded victim: a
// core that is running one process while another sits Ready in its queue.
// Only Ready processes migrate — blocked ones have wake-up events tied to
// their owner's engine.
func (m *Machine) stealCandidate(c *exec.Core) *exec.Proc {
	n := len(m.s.Cores)
	for off := 1; off < n; off++ {
		v := m.s.Cores[(c.ID+off)%n]
		if v.Cur == nil {
			continue
		}
		if pid := v.Sch.NextToRun(); pid != -1 {
			return m.s.Procs[pid]
		}
	}
	return nil
}

// Run executes every process to completion under the deterministic
// coordinator and returns the metrics.
func (m *Machine) Run() (*metrics.Run, error) {
	s := m.s
	label := s.Run.Policy + "/" + s.Run.Batch
	s.Trc.Emit(obs.Event{Time: 0, Type: obs.EvRunBegin, PID: -1, Cause: label})
	for _, c := range s.Cores {
		c.Aud.Write(obs.Event{Time: 0, Type: obs.EvRunBegin, PID: -1, Core: c.ID, Cause: label})
	}
	s.ScheduleGauges()

	for s.Alive() > 0 {
		// One pass computes both the chosen core (first strict minimum
		// of next-event times) and the horizon — the earliest time any
		// OTHER core is due, i.e. the second minimum: the chosen core
		// executes up to it, then yields back so shared state mutates
		// in deterministic near-time order. Nothing mutates between
		// scanning a core and stepping, so the snapshot is exact. The
		// scan runs once per coordinator step (roughly once per
		// record when every core is busy), so it is kept to a single
		// walk — nextTime scans for steal candidates and is not free.
		best, bestT := -1, never
		horizon := never
		for i, c := range s.Cores {
			t, ok := m.nextTime(c)
			if !ok {
				continue
			}
			switch {
			case best == -1:
				best, bestT = i, t
			case t < bestT:
				// The displaced minimum is now the earliest
				// "other" core (it preceded every later one).
				best, bestT, horizon = i, t, bestT
			case t < horizon:
				horizon = t
			}
		}
		if best == -1 {
			return s.Run, fmt.Errorf("smp: deadlock — every core parked with %d processes unfinished", s.Alive())
		}
		if err := m.step(s.Cores[best], horizon); err != nil {
			return s.Run, err
		}
	}

	var makespan sim.Time
	for _, c := range s.Cores {
		c.Met.LocalClock = c.Eng.Now()
		if c.Eng.Now() > makespan {
			makespan = c.Eng.Now()
		}
	}
	s.Run.Makespan = makespan
	s.Trc.Emit(obs.Event{Time: makespan, Type: obs.EvRunEnd, PID: -1})
	for _, c := range s.Cores {
		c.Aud.Write(obs.Event{Time: c.Eng.Now(), Type: obs.EvRunEnd, PID: -1, Core: c.ID})
		c.Eng.RunUntilIdle() // drain trailing completions and trace events
		if err := c.Aud.Err(); err != nil {
			return s.Run, fmt.Errorf("smp: core %d accounting audit failed: %w", c.ID, err)
		}
		if err := c.CheckFolded(); err != nil {
			return s.Run, fmt.Errorf("smp: core %d attribution cross-check failed: %w", c.ID, err)
		}
	}
	s.CollectInjection()
	return s.Run, nil
}

// step advances core c once: dispatch-and-run, one idle event, or one
// steal. The kernel's event attribution follows the stepping core.
func (m *Machine) step(c *exec.Core, horizon sim.Time) error {
	s := m.s
	if s.Cfg.MaxSimTime > 0 && c.Eng.Now() > s.Cfg.MaxSimTime {
		return fmt.Errorf("smp: core %d exceeded max simulated time %v", c.ID, s.Cfg.MaxSimTime)
	}
	s.Krn.SetCore(c.ID)
	if c.Cur == nil {
		pid := c.Sch.PickNext()
		if pid == -1 {
			// Prefer local events when they land no later than the
			// earliest steal; otherwise pull work over.
			evT, hasEv := c.Eng.NextEventTime()
			if cand := m.stealCandidate(c); cand != nil {
				st := cand.ReadyAt
				if now := c.Eng.Now(); st < now {
					st = now
				}
				if !hasEv || st < evT {
					m.steal(c, cand, st)
					return nil
				}
			}
			t0 := c.Eng.Now()
			if s.Want[obs.EvSchedIdleBegin] {
				c.Emit(obs.Event{Time: t0, Type: obs.EvSchedIdleBegin, PID: -1})
			}
			if !c.Eng.StepOne() {
				return fmt.Errorf("smp: core %d has no runnable process and no pending event at %v", c.ID, t0)
			}
			d := c.Eng.Now() - t0
			s.Run.SchedulerIdle += d
			c.Met.SchedulerIdle += d
			if s.Want[obs.EvSchedIdleEnd] {
				c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvSchedIdleEnd, PID: -1})
			}
			return nil
		}
		c.Dispatch(pid)
	}
	c.RunUntil(horizon)
	return nil
}

// steal migrates p (Ready on another core) onto core c at time at: the
// idle wait up to the victim's ready time is scheduler idle, the migration
// itself costs one context switch of state movement, and p's in-flight
// swap-in completions move onto this core's engine.
func (m *Machine) steal(c *exec.Core, p *exec.Proc, at sim.Time) {
	s := m.s
	if at > c.Eng.Now() {
		t0 := c.Eng.Now()
		if s.Want[obs.EvSchedIdleBegin] {
			c.Emit(obs.Event{Time: t0, Type: obs.EvSchedIdleBegin, PID: -1})
		}
		c.Eng.AdvanceTo(at) // fires nothing: local events are later by construction
		d := at - t0
		s.Run.SchedulerIdle += d
		c.Met.SchedulerIdle += d
		if s.Want[obs.EvSchedIdleEnd] {
			c.Emit(obs.Event{Time: at, Type: obs.EvSchedIdleEnd, PID: -1})
		}
	}

	victim := s.Cores[p.Owner]
	victim.Sch.Remove(p.PID)
	victim.Met.MigratedAway++
	p.Owner = c.ID
	c.Sch.Add(p.PID, p.Spec.Priority)
	c.Met.Steals++

	// Re-home pending completions: past ones (on this clock) apply now,
	// future ones reschedule here.
	moved := p.Pending
	p.Pending = nil
	for _, pio := range moved {
		victim.Eng.Cancel(pio.Ev)
		if pio.Done <= c.Eng.Now() {
			s.Krn.CompleteSwapIn(p.PID, pio.Key.Page, pio.Frame)
			delete(s.Inflight, pio.Key)
			s.ReleasePendingIO(pio)
		} else {
			c.SchedulePendingIO(p, pio)
		}
	}

	// Migration is pure state movement: one context-switch cost, charged
	// to the thief core and counted against the migrated process. Cache
	// and TLB pollution is emergent — the process starts cold here.
	s.Run.ContextSwitchTime += kernel.ContextSwitchCost
	c.Met.ContextSwitchTime += kernel.ContextSwitchCost
	p.Met.ContextSwitches++
	c.Eng.AdvanceTo(c.Eng.Now() + kernel.ContextSwitchCost)
	if s.Want[obs.EvContextSwitch] {
		c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvContextSwitch, PID: p.PID,
			Dur: kernel.ContextSwitchCost, Cause: "migrate"})
	}
}
