package smp

import (
	"itsim/internal/kernel"
	"itsim/internal/machine"
	"itsim/internal/mem"
	"itsim/internal/obs"
	"itsim/internal/pagetable"
	"itsim/internal/policy"
	"itsim/internal/preexec"
	"itsim/internal/sim"
	"itsim/internal/trace"
)

// This file is the per-record executor, a faithful port of the single-core
// machine's runProcess/access/majorFault path onto one core of the SMP
// model. The differences are confined to: per-core engine/L1/TLB/policy/
// pre-execute state, the shared LLC back-invalidating every core's L1, and
// the horizon pause in runCur that hands control back to the coordinator
// when another core is due.

// tagged folds the pid into the address's upper bits so per-process virtual
// addresses share the physically-indexed caches without aliasing.
func tagged(pid int, addr uint64) uint64 {
	return addr&(1<<pagetable.VABits-1) | uint64(pid+1)<<pagetable.VABits
}

// dispatch puts pid on this core's CPU (the machine's dispatch preamble).
func (c *coreCPU) dispatch(pid int) {
	m := c.m
	p := m.procs[pid]
	if p.wasBlocked {
		wait := c.eng.Now() - p.blockedAt
		p.met.BlockedWait += wait
		m.run.BlockedHist.Observe(wait)
		p.wasBlocked = false
	}
	p.sliceLeft = c.sch.SliceFor(pid)
	c.dispatchedAt = c.eng.Now()
	c.met.Dispatches++
	if m.want[obs.EvDispatch] {
		c.emit(obs.Event{Time: c.dispatchedAt, Type: obs.EvDispatch, PID: pid,
			Cause: p.spec.Name, Value: int64(p.spec.Priority)})
	}
	c.cur = p
}

// runCur executes the dispatched process until it blocks, exhausts its
// slice, finishes — or crosses the coordinator's horizon, in which case it
// stays dispatched and resumes on the core's next step.
func (c *coreCPU) runCur(horizon sim.Time) error {
	m := c.m
	p := c.cur
	for {
		rec, ok := c.peek(p, 0)
		if !ok {
			p.met.FinishTime = c.eng.Now()
			p.met.Finished = true
			c.sch.Finish(p.pid)
			if m.want[obs.EvProcFinish] {
				c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvProcFinish, PID: p.pid,
					Dur: c.eng.Now() - c.dispatchedAt})
			}
			if c.eng.Now() > m.run.Makespan {
				m.run.Makespan = c.eng.Now()
			}
			c.cur = nil
			if c.sch.Alive() > 0 {
				c.chargeSwitch(p)
			}
			return nil
		}
		// Compute gap (once per record, even across fault retries).
		if rec.Gap > 0 && !p.gapPaid {
			p.instCarry += uint64(rec.Gap)
			d := sim.Time(p.instCarry / uint64(m.cfg.InstPerNs))
			p.instCarry %= uint64(m.cfg.InstPerNs)
			if d > 0 {
				c.advance(p, d)
			}
			p.met.Instructions += uint64(rec.Gap)
		}
		p.gapPaid = true
		// The access itself (may busy-wait or block).
		if c.access(p, rec) {
			c.cur = nil
			return nil
		}
		p.met.Instructions++
		c.pop(p)
		// Slice accounting: RR rotates only when someone else is ready.
		if p.sliceLeft <= 0 {
			if m.cfg.MaxSimTime > 0 && c.eng.Now() > m.cfg.MaxSimTime {
				c.sch.Expire(p.pid)
				c.cur = nil
				return nil
			}
			if m.want[obs.EvSliceExpiry] {
				c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvSliceExpiry, PID: p.pid})
			}
			if c.sch.Runnable() > 0 {
				c.sch.Expire(p.pid)
				if m.want[obs.EvPreempt] {
					c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvPreempt, PID: p.pid,
						Dur: c.eng.Now() - c.dispatchedAt})
				}
				c.cur = nil
				c.chargeSwitch(p)
				return nil
			}
			p.sliceLeft = c.sch.SliceFor(p.pid)
		}
		// Horizon pause — checked after at least one record so a tied
		// horizon cannot starve the coordinator of progress.
		if c.eng.Now() >= horizon {
			return nil
		}
	}
}

// chargeSwitch charges the context switch paid whenever the CPU leaves a
// process. The per-core metric takes the full clock cost (including the
// pollution tail) so per-core time conservation closes exactly.
func (c *coreCPU) chargeSwitch(p *proc) {
	m := c.m
	m.run.ContextSwitchTime += kernel.ContextSwitchCost
	p.met.ContextSwitches++
	cost := kernel.ContextSwitchCost + kernel.SwitchPollutionCost
	if c.tlb != nil {
		c.tlb.Flush()
		cost = kernel.ContextSwitchCost
	}
	c.met.ContextSwitchTime += cost
	c.advance(nil, cost)
	if c.tlb == nil {
		p.met.MemStall += kernel.SwitchPollutionCost
	}
	if m.want[obs.EvContextSwitch] {
		c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvContextSwitch, PID: p.pid, Dur: cost})
	}
}

// peek returns the i-th unexecuted record (0 = next), refilling the
// lookahead buffer from the generator.
func (c *coreCPU) peek(p *proc, i int) (trace.Record, bool) {
	if i >= c.m.cfg.Lookahead {
		return trace.Record{}, false
	}
	for !p.drained && len(p.look)-p.head <= i {
		var r trace.Record
		if !p.spec.Gen.Next(&r) {
			p.drained = true
			break
		}
		p.look = append(p.look, r)
	}
	if p.head+i < len(p.look) {
		return p.look[p.head+i], true
	}
	return trace.Record{}, false
}

// pop consumes the head record, compacting the buffer periodically.
func (c *coreCPU) pop(p *proc) {
	p.gapPaid = false
	p.head++
	if p.head >= 4096 && p.head*2 >= len(p.look) {
		p.look = append(p.look[:0], p.look[p.head:]...)
		p.head = 0
	}
}

// advance moves this core's clock forward by d (firing due local events)
// and charges p's slice and CPU occupancy, mirrored into the core counter.
func (c *coreCPU) advance(p *proc, d sim.Time) {
	if d <= 0 {
		return
	}
	c.eng.AdvanceTo(c.eng.Now() + d)
	if p != nil {
		p.sliceLeft -= d
		p.met.CPUTime += d
		c.met.CPUTime += d
	}
}

// access performs one memory access for p. It returns true when the process
// blocked (asynchronous fault); the faulting record stays at the head for
// retry on wake-up.
func (c *coreCPU) access(p *proc, rec trace.Record) (blockedOut bool) {
	m := c.m
	write := rec.Kind == trace.Store
	for {
		tr, _, prefHit := m.krn.Translate(p.pid, rec.Addr, write)
		if tr == kernel.Present {
			if prefHit {
				p.met.MinorFaults++
				p.met.PrefetchUseful++
				if m.want[obs.EvPrefetchHit] {
					c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvPrefetchHit,
						PID: p.pid, VA: rec.Addr})
				}
				c.advance(p, kernel.MinorFaultCost)
				m.krn.ChargeHandler(kernel.MinorFaultCost)
				m.run.FaultHandlerTime += kernel.MinorFaultCost
			}
			c.cacheAccess(p, rec.Addr)
			return false
		}
		if c.majorFault(p, rec) {
			return true
		}
		// Synchronous completion: retry the translation.
	}
}

// cacheAccess charges the (TLB →) L1 → shared-LLC → DRAM path.
func (c *coreCPU) cacheAccess(p *proc, addr uint64) {
	m := c.m
	key := tagged(p.pid, addr)
	if c.tlb != nil && !c.tlb.Lookup(key>>pagetable.PageShift) {
		c.advance(p, m.cfg.TLBMissCost)
		p.met.MemStall += m.cfg.TLBMissCost
	}
	if c.l1.Access(key) {
		c.advance(p, m.cfg.L1Hit)
		return
	}
	p.met.LLCAccesses++
	if m.llc.Access(key) {
		c.advance(p, m.cfg.L1Hit+m.cfg.LLCHit)
		p.met.MemStall += m.cfg.LLCHit
		c.l1.Fill(key)
		return
	}
	p.met.LLCMisses++
	stall := m.cfg.L1Hit + m.cfg.LLCHit + mem.AccessLatency
	c.advance(p, stall)
	p.met.MemStall += m.cfg.LLCHit + mem.AccessLatency
	m.llcFill(key)
	c.l1.Fill(key)
}

// llcFill installs a line in the shared LLC; the inclusive hierarchy
// back-invalidates the displaced victim from every core's L1.
func (m *Machine) llcFill(key uint64) {
	if victim, ok := m.llc.Fill(key); ok {
		addr := m.llc.AddrOf(victim)
		for _, c := range m.cores {
			c.l1.Invalidate(addr)
		}
	}
}

// swapKind distinguishes why a page is being swapped in.
type swapKind uint8

const (
	swapDemand swapKind = iota
	swapPrefetch
	swapCluster
)

// ensureSwapIn starts (or joins) the swap-in of (pid, page-of-va) and
// returns its completion time. The completion runs as an event on this
// core's engine and migrates with the process if it is stolen.
func (c *coreCPU) ensureSwapIn(p *proc, va uint64, kind swapKind) sim.Time {
	m := c.m
	page := va &^ uint64(pagetable.PageSize-1)
	key := inflightKey{pid: p.pid, page: page}
	if done, ok := m.inflight[key]; ok {
		return done
	}
	if pte, ok := m.krn.Process(p.pid).AS.Lookup(page); ok && pte.Present() {
		return c.eng.Now()
	}
	out := m.krn.StartSwapIn(c.eng.Now(), p.pid, page, kind != swapDemand)
	m.inflight[key] = out.Done
	c.schedulePendingIO(p, &pendingIO{key: key, frame: out.Frame, done: out.Done})
	if kind == swapPrefetch {
		p.met.PrefetchIssued++
		if m.want[obs.EvPrefetchIssue] {
			c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvPrefetchIssue,
				PID: p.pid, VA: page, Dur: out.Done - c.eng.Now()})
		}
	}
	return out.Done
}

// clusterSwapIn fetches the swapped-out siblings of va's aligned
// SwapClusterPages-page cluster, returning the last completion time.
func (c *coreCPU) clusterSwapIn(p *proc, va uint64) sim.Time {
	cluster := uint64(c.m.cfg.SwapClusterPages) * pagetable.PageSize
	base := va &^ (cluster - 1)
	victim := va &^ uint64(pagetable.PageSize-1)
	as := c.m.krn.Process(p.pid).AS
	var last sim.Time
	for pv := base; pv < base+cluster; pv += pagetable.PageSize {
		if pv == victim {
			continue
		}
		if pte, ok := as.Lookup(pv); !ok || !pte.Swapped() {
			continue
		}
		if d := c.ensureSwapIn(p, pv, swapCluster); d > last {
			last = d
		}
	}
	return last
}

// tryPrefetch starts the swap-in of a prefetch candidate, subject to device
// admission control — channels now contended by every core's demand and
// prefetch traffic at once.
func (c *coreCPU) tryPrefetch(p *proc, va uint64) {
	m := c.m
	page := va &^ uint64(pagetable.PageSize-1)
	if _, busy := m.inflight[inflightKey{pid: p.pid, page: page}]; busy {
		return
	}
	pte, ok := m.krn.Process(p.pid).AS.Lookup(page)
	if !ok || !pte.Swapped() {
		return
	}
	if !m.krn.Device().FreeChannelAt(pte.Frame(), c.eng.Now()) {
		p.met.PrefetchDropped++
		if m.want[obs.EvPrefetchDrop] {
			c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvPrefetchDrop, PID: p.pid, VA: page})
		}
		return
	}
	c.ensureSwapIn(p, page, swapPrefetch)
}

// majorFault runs the paper's Figure 1 flow for one major fault on this
// core. It returns true when the process blocked (async mode).
func (c *coreCPU) majorFault(p *proc, rec trace.Record) (blocked bool) {
	m := c.m
	faultStart := c.eng.Now()
	if m.want[obs.EvMajorFaultBegin] {
		c.emit(obs.Event{Time: faultStart, Type: obs.EvMajorFaultBegin, PID: p.pid, VA: rec.Addr})
	}
	p.met.MajorFaults++
	c.advance(p, kernel.FaultEntryCost)
	m.krn.ChargeHandler(kernel.FaultEntryCost)
	m.run.FaultHandlerTime += kernel.FaultEntryCost

	ctx := policy.Context{
		Now:         c.eng.Now(),
		PID:         p.pid,
		VA:          rec.Addr,
		AS:          m.krn.Process(p.pid).AS,
		CurPriority: p.spec.Priority,
	}
	if next := c.sch.NextToRun(); next != -1 {
		ctx.HasNext = true
		ctx.NextPriority = m.procs[next].spec.Priority
	}
	d := c.pol.Decide(&ctx)
	if d.DispatchCost > 0 {
		c.advance(p, d.DispatchCost)
		m.krn.ChargeHandler(d.DispatchCost)
		m.run.FaultHandlerTime += d.DispatchCost
	}

	done := c.ensureSwapIn(p, rec.Addr, swapDemand)
	if m.cfg.SwapClusterPages > 1 {
		if d2 := c.clusterSwapIn(p, rec.Addr); d2 > done {
			done = d2
		}
	}

	if d.Mode == policy.AsyncBlock {
		for _, pv := range d.Prefetch {
			c.tryPrefetch(p, pv)
		}
		c.sch.Block(p.pid)
		p.blockedAt = c.eng.Now()
		p.wasBlocked = true
		if m.want[obs.EvBlock] {
			c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvBlock, PID: p.pid,
				VA: rec.Addr, Dur: c.eng.Now() - c.dispatchedAt})
		}
		c.scheduleFaultEnd(p, rec.Addr, faultStart, done, "async")
		c.eng.Schedule(done, func(sim.Time) { c.sch.Unblock(p.pid) })
		c.chargeSwitch(p)
		return true
	}

	if d.SpinThreshold > 0 && done-c.eng.Now() > d.SpinThreshold {
		p.met.StorageWait += d.SpinThreshold
		c.advance(p, d.SpinThreshold)
		c.sch.Block(p.pid)
		p.blockedAt = c.eng.Now()
		p.wasBlocked = true
		if m.want[obs.EvBlock] {
			c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvBlock, PID: p.pid,
				VA: rec.Addr, Dur: c.eng.Now() - c.dispatchedAt})
		}
		c.scheduleFaultEnd(p, rec.Addr, faultStart, done, "spin")
		c.eng.Schedule(done, func(sim.Time) { c.sch.Unblock(p.pid) })
		c.chargeSwitch(p)
		return true
	}

	// Synchronous busy-wait: the window is this core's storage stall; ITS
	// steals it for prefetching and pre-execution.
	windowStart := c.eng.Now()
	if w := done - windowStart; w > 0 {
		p.met.StorageWait += w
		m.run.SyncWaitHist.Observe(w)
	}
	if d.PrefetchWalkCost > 0 {
		walk := d.PrefetchWalkCost
		if rem := done - c.eng.Now(); walk > rem && rem > 0 {
			walk = rem
		}
		c.advance(p, walk)
		p.met.StolenPrefetch += walk
		c.met.StolenPrefetch += walk
		if m.want[obs.EvPrefetchWalk] {
			c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvPrefetchWalk, PID: p.pid,
				Dur: walk, Value: int64(d.PrefetchScanned)})
		}
	}
	for _, pv := range d.Prefetch {
		c.tryPrefetch(p, pv)
	}
	preexecuted := false
	if d.PreExecute && c.px != nil {
		window := done - c.eng.Now()
		if window > 0 {
			c.preExecute(p, rec, window)
			preexecuted = true
		}
	}
	if rem := done - c.eng.Now(); rem > 0 {
		c.advance(p, rem)
	}
	if preexecuted {
		c.endRecovery(p, windowStart, done)
	}
	if m.want[obs.EvMajorFaultEnd] {
		c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvMajorFaultEnd, PID: p.pid,
			VA: rec.Addr, Dur: c.eng.Now() - faultStart, Cause: "sync"})
	}
	return false
}

// scheduleFaultEnd arranges the EvMajorFaultEnd of an asynchronous or
// spin-then-block fault to fire when its DMA lands. Blocked processes never
// migrate, so the owning core's engine is the right home.
func (c *coreCPU) scheduleFaultEnd(p *proc, va uint64, faultStart, done sim.Time, mode string) {
	if !c.m.want[obs.EvMajorFaultEnd] {
		return
	}
	c.eng.Schedule(done, func(now sim.Time) {
		c.emit(obs.Event{Time: now, Type: obs.EvMajorFaultEnd, PID: p.pid,
			VA: va, Dur: now - faultStart, Cause: mode})
	})
}

// endRecovery applies the §3.4.3 termination mode after a pre-execution
// episode.
func (c *coreCPU) endRecovery(p *proc, windowStart, done sim.Time) {
	m := c.m
	if m.cfg.RecoveryPoll <= 0 {
		c.advance(p, machine.InterruptCost)
		p.met.RecoveryOverhead += machine.InterruptCost
		m.krn.ChargeHandler(machine.InterruptCost)
		m.run.FaultHandlerTime += machine.InterruptCost
		if m.want[obs.EvRecovery] {
			c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvRecovery, PID: p.pid,
				Dur: machine.InterruptCost, Cause: "interrupt"})
		}
		return
	}
	elapsed := done - windowStart
	over := (m.cfg.RecoveryPoll - elapsed%m.cfg.RecoveryPoll) % m.cfg.RecoveryPoll
	if over > 0 {
		c.advance(p, over)
		p.met.RecoveryOverhead += over
		p.met.StorageWait += over
	}
	if m.want[obs.EvRecovery] {
		c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvRecovery, PID: p.pid,
			Dur: over, Cause: "poll"})
	}
}

// preExecute runs this core's fault-aware pre-execute engine during a
// synchronous wait window, warming the shared LLC through its private
// carve-out.
func (c *coreCPU) preExecute(p *proc, faulting trace.Record, window sim.Time) {
	m := c.m
	if c.lastPXPid != p.pid {
		c.px.FlushHardware()
		c.lastPXPid = p.pid
	}
	as := m.krn.Process(p.pid).AS
	env := preexec.Env{
		Lookahead: func(i int) (trace.Record, bool) {
			return c.peek(p, 1+i)
		},
		PagePresent: func(va uint64) bool {
			pte, ok := as.Lookup(va)
			return ok && pte.Present()
		},
		PTEINV: func(va uint64) bool {
			pte, ok := as.Lookup(va)
			return ok && pte.INV()
		},
		SetPTEINV: func(va uint64) {
			as.Update(va, func(e pagetable.PTE) pagetable.PTE { return e | pagetable.FlagINV })
		},
		LLCContains: func(addr uint64) bool {
			return m.llc.Contains(tagged(p.pid, addr))
		},
		LLCFill: func(addr uint64) {
			m.llcFill(tagged(p.pid, addr))
			if pte, ok := as.Lookup(addr); ok && pte.Present() {
				m.krn.DRAM().Touch(mem.FrameID(pte.Frame()), false)
			}
		},
		ClearPTEINV: func(va uint64) {
			as.Update(va, func(e pagetable.PTE) pagetable.PTE { return e &^ pagetable.FlagINV })
		},
		FaultVA:  faulting.Addr,
		FaultDst: faulting.Dst,
	}
	res := c.px.Run(window, env)
	if res.Used > 0 {
		c.advance(p, res.Used)
		p.met.StolenPreexec += res.Used - res.Overhead
		c.met.StolenPreexec += res.Used - res.Overhead
		p.met.RecoveryOverhead += res.Overhead
	}
	p.met.PreexecInstrs += res.Instrs
	p.met.PreexecValid += res.Valid
	p.met.PreexecFills += res.Fills
	if m.want[obs.EvPreexecWindow] {
		c.emit(obs.Event{Time: c.eng.Now(), Type: obs.EvPreexecWindow, PID: p.pid,
			Dur: res.Used, Value: int64(res.Instrs)})
	}
}
