package smp_test

import (
	"testing"

	"itsim/internal/fault"
	"itsim/internal/machine"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/smp"
)

// faultyConfig is testConfig with a misbehaving device: tail spikes, channel
// stalls and transient DMA failures all enabled.
func faultyConfig(cores int) machine.Config {
	cfg := testConfig(cores)
	cfg.Fault = fault.Config{
		Seed:        42,
		TailProb:    0.05,
		TailMult:    8,
		StallProb:   0.01,
		StallWindow: 30 * sim.Microsecond,
		DMAFailProb: 0.02,
		RetryMax:    3,
	}
	return cfg
}

// Same seed + fault config ⇒ byte-identical summaries on repeat runs,
// injection counters included.
func TestFaultDeterminism(t *testing.T) {
	run := func(cores int) string {
		m, err := smp.New(faultyConfig(cores), factory(policy.ITS), "2_Data_Intensive", testSpecs(t, 0.02))
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Injection == nil {
			t.Fatal("faulty run produced no injection stats")
		}
		if r.Injection.TailSpikes == 0 && r.Injection.ChannelStalls == 0 && r.Injection.DMAFailures == 0 {
			t.Fatalf("no faults delivered: %+v", r.Injection)
		}
		return summaryJSON(t, r, false)
	}
	for _, cores := range []int{1, 4} {
		if a, b := run(cores), run(cores); a != b {
			t.Errorf("%d-core faulty run is not deterministic\n first: %s\nsecond: %s", cores, a, b)
		}
	}
}

// The fault layer preserves the engine-unification guarantee: the legacy
// single-core machine and a 1-core SMP run agree byte-for-byte under the
// same fault schedule, for every policy kind.
func TestFaultEquivalence(t *testing.T) {
	for _, kind := range policy.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := faultyConfig(1)
			legacy := machine.New(cfg, factory(kind)(), "2_Data_Intensive", testSpecs(t, 0.02))
			wantRun, err := legacy.Run()
			if err != nil {
				t.Fatalf("machine run: %v", err)
			}
			m, err := smp.New(cfg, factory(kind), "2_Data_Intensive", testSpecs(t, 0.02))
			if err != nil {
				t.Fatalf("smp.New: %v", err)
			}
			gotRun, err := m.Run()
			if err != nil {
				t.Fatalf("smp run: %v", err)
			}
			want := summaryJSON(t, wantRun, true)
			got := summaryJSON(t, gotRun, true)
			if got != want {
				t.Errorf("1-core SMP diverged from the machine under faults\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// Per-core time conservation must hold exactly under any fault schedule:
// injected delays surface as longer waits, never as unaccounted time. (The
// always-on auditor would already fail the run; this checks the ledger sums
// too.)
func TestConservationUnderFaults(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Sync, policy.Async, policy.ITS} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := faultyConfig(4)
			cfg.SpinBudget = 6 * sim.Microsecond
			m, err := smp.New(cfg, factory(kind), "2_Data_Intensive", testSpecs(t, 0.02))
			if err != nil {
				t.Fatal(err)
			}
			run, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			var maxClock sim.Time
			for _, c := range run.Cores {
				accounted := c.CPUTime + c.SchedulerIdle + c.ContextSwitchTime
				if accounted != c.LocalClock {
					t.Errorf("core %d: accounted %v != local clock %v (cpu %v, idle %v, switch %v)",
						c.ID, accounted, c.LocalClock, c.CPUTime, c.SchedulerIdle, c.ContextSwitchTime)
				}
				if c.LocalClock > maxClock {
					maxClock = c.LocalClock
				}
			}
			if run.Makespan != maxClock {
				t.Errorf("makespan %v != max local clock %v", run.Makespan, maxClock)
			}
		})
	}
}

// Under heavy tail latency with a spin budget set, ITS must demote
// over-budget synchronous waits to async context switches: the degradation
// path toward Vanilla_Async instead of burning the core.
func TestITSDemotesUnderTailLatency(t *testing.T) {
	cfg := testConfig(1)
	cfg.Fault = fault.Config{Seed: 7, TailProb: 0.3, TailMult: 16}
	cfg.SpinBudget = 4 * sim.Microsecond
	m, err := smp.New(cfg, factory(policy.ITS), "2_Data_Intensive", testSpecs(t, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.TotalDemotions() == 0 {
		t.Fatal("high-tail run with a spin budget produced no demotions")
	}
	// Without a budget the same schedule burns the core instead.
	cfg.SpinBudget = 0
	m, err = smp.New(cfg, factory(policy.ITS), "2_Data_Intensive", testSpecs(t, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	run, err = m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.TotalDemotions() != 0 {
		t.Fatalf("demotions (%d) without a spin budget", run.TotalDemotions())
	}
}

// When the busy_storage_channels gauge saturates, ITS's prefetch throttles
// itself: the throttle counter fires and fewer prefetches are issued than
// with the throttle off.
func TestITSPrefetchThrottles(t *testing.T) {
	throttledITS := func() policy.Policy {
		return policy.NewITS(policy.ITSConfig{PrefetchThrottleFraction: 0.1})
	}
	run := func(f func() policy.Policy) ( /*throttled*/ uint64 /*issued*/, uint64) {
		m, err := smp.New(faultyConfig(1), f, "2_Data_Intensive", testSpecs(t, 0.02))
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		var issued uint64
		for _, p := range r.Procs {
			issued += p.PrefetchIssued
		}
		return r.TotalPrefetchThrottled(), issued
	}
	thN, thIssued := run(throttledITS)
	if thN == 0 {
		t.Fatal("saturated device never throttled the prefetcher")
	}
	offN, offIssued := run(factory(policy.ITS))
	if offN != 0 {
		t.Fatalf("throttle counter (%d) with the throttle off", offN)
	}
	if thIssued >= offIssued {
		t.Errorf("throttled run issued %d prefetches, unthrottled %d — throttling did not reduce issue rate",
			thIssued, offIssued)
	}
}

// A fault config with every probability zero must not change anything: no
// injector is attached and the summary matches the fault-free run
// byte-for-byte.
func TestZeroFaultConfigIsInert(t *testing.T) {
	baseline := func() string {
		m, err := smp.New(testConfig(2), factory(policy.ITS), "2_Data_Intensive", testSpecs(t, 0.02))
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Injection != nil {
			t.Fatalf("fault-free run has injection stats: %+v", r.Injection)
		}
		return summaryJSON(t, r, false)
	}
	zeroed := func() string {
		cfg := testConfig(2)
		cfg.Fault = fault.Config{Seed: 99, TailMult: 8, StallWindow: sim.Millisecond, RetryMax: 5}
		m, err := smp.New(cfg, factory(policy.ITS), "2_Data_Intensive", testSpecs(t, 0.02))
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return summaryJSON(t, r, false)
	}
	if a, b := baseline(), zeroed(); a != b {
		t.Errorf("zero-probability fault config changed the summary\n base: %s\nfault: %s", a, b)
	}
}
