package smp_test

import (
	"encoding/json"
	"strings"
	"testing"

	"itsim/internal/machine"
	"itsim/internal/metrics"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/smp"
	"itsim/internal/workload"
)

// testConfig is the default platform with test-sized slices and the given
// core count.
func testConfig(cores int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = cores
	cfg.MinSlice = 20 * sim.Microsecond
	cfg.MaxSlice = 200 * sim.Microsecond
	return cfg
}

// testSpecs builds fresh specs for the 2_Data_Intensive batch (generators
// are stateful, so every machine needs its own set).
func testSpecs(t *testing.T, scale float64) []machine.ProcessSpec {
	t.Helper()
	b, err := workload.BatchByName("2_Data_Intensive")
	if err != nil {
		t.Fatal(err)
	}
	gens := b.Generators(scale)
	specs := make([]machine.ProcessSpec, len(gens))
	for i, g := range gens {
		specs[i] = machine.ProcessSpec{
			Name:     g.Name(),
			Gen:      g,
			Priority: b.Priorities[i],
			BaseVA:   workload.BaseVA,
		}
	}
	return specs
}

func factory(kind policy.Kind) func() policy.Policy {
	return func() policy.Policy {
		if kind == policy.ITS {
			return policy.NewITS(policy.ITSConfig{})
		}
		return policy.New(kind)
	}
}

// summaryJSON serializes a run summary, optionally without the per-core
// section (which the single-core machine does not produce).
func summaryJSON(t *testing.T, run *metrics.Run, stripCores bool) string {
	t.Helper()
	s := run.Summary()
	if stripCores {
		s.Cores = nil
	}
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestSingleCoreMatchesMachine is the degeneracy guarantee: with Cores=1 the
// SMP coordinator must reproduce the legacy single-core machine's metrics
// exactly, for every policy kind.
func TestSingleCoreMatchesMachine(t *testing.T) {
	const scale = 0.02
	for _, kind := range policy.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			legacy := machine.New(testConfig(1), factory(kind)(), "2_Data_Intensive", testSpecs(t, scale))
			wantRun, err := legacy.Run()
			if err != nil {
				t.Fatalf("machine run: %v", err)
			}
			m, err := smp.New(testConfig(1), factory(kind), "2_Data_Intensive", testSpecs(t, scale))
			if err != nil {
				t.Fatalf("smp.New: %v", err)
			}
			gotRun, err := m.Run()
			if err != nil {
				t.Fatalf("smp run: %v", err)
			}
			want := summaryJSON(t, wantRun, true)
			got := summaryJSON(t, gotRun, true)
			if got != want {
				t.Errorf("N=1 SMP diverged from single-core machine\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestEquivalenceProperty is the structural guarantee the unified engine
// makes: for every policy kind and a sweep of seeded config variants
// (mechanistic TLB, huge-I/O swap clusters, polling recovery, strict
// priorities, different trace scales), the legacy single-core machine and a
// 1-core run through the SMP coordinator produce byte-identical summaries —
// not because the port is careful, but because both instantiate the same
// exec.Core.
func TestEquivalenceProperty(t *testing.T) {
	variants := []struct {
		name  string
		scale float64
		mut   func(*machine.Config)
	}{
		{"base", 0.03, func(cfg *machine.Config) {}},
		{"tlb", 0.02, func(cfg *machine.Config) { cfg.TLBEntries = 64 }},
		{"swap_cluster", 0.02, func(cfg *machine.Config) { cfg.SwapClusterPages = 4 }},
		{"poll_recovery", 0.02, func(cfg *machine.Config) { cfg.RecoveryPoll = 2 * sim.Microsecond }},
		{"strict_priority", 0.02, func(cfg *machine.Config) { cfg.StrictPriority = true }},
		{"combined", 0.01, func(cfg *machine.Config) {
			cfg.TLBEntries = 64
			cfg.SwapClusterPages = 4
			cfg.RecoveryPoll = 2 * sim.Microsecond
		}},
	}
	for _, v := range variants {
		for _, kind := range policy.Kinds() {
			t.Run(v.name+"/"+kind.String(), func(t *testing.T) {
				cfg := testConfig(1)
				v.mut(&cfg)
				legacy := machine.New(cfg, factory(kind)(), "2_Data_Intensive", testSpecs(t, v.scale))
				wantRun, err := legacy.Run()
				if err != nil {
					t.Fatalf("machine run: %v", err)
				}
				m, err := smp.New(cfg, factory(kind), "2_Data_Intensive", testSpecs(t, v.scale))
				if err != nil {
					t.Fatalf("smp.New: %v", err)
				}
				gotRun, err := m.Run()
				if err != nil {
					t.Fatalf("smp run: %v", err)
				}
				want := summaryJSON(t, wantRun, true)
				got := summaryJSON(t, gotRun, true)
				if got != want {
					t.Errorf("1-core SMP diverged from the machine under %s\n got: %s\nwant: %s",
						v.name, got, want)
				}
			})
		}
	}
}

// TestDeterminism runs the 4-core machine twice on identical inputs and
// demands byte-identical summaries, per-core counters included.
func TestDeterminism(t *testing.T) {
	const scale = 0.02
	run := func() string {
		m, err := smp.New(testConfig(4), factory(policy.ITS), "2_Data_Intensive", testSpecs(t, scale))
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return summaryJSON(t, r, false)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("4-core run is not deterministic\n first: %s\nsecond: %s", a, b)
	}
}

// TestPerCoreTimeConservation checks the per-core ledger on a multi-core
// run: every nanosecond of each core's local clock is CPU occupancy,
// scheduler idle, or context-switch time — and the run makespan is the
// latest local clock.
func TestPerCoreTimeConservation(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Sync, policy.Async, policy.ITS} {
		t.Run(kind.String(), func(t *testing.T) {
			m, err := smp.New(testConfig(4), factory(kind), "2_Data_Intensive", testSpecs(t, 0.02))
			if err != nil {
				t.Fatal(err)
			}
			run, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(run.Cores) != 4 {
				t.Fatalf("want 4 core entries, got %d", len(run.Cores))
			}
			var maxClock sim.Time
			for _, c := range run.Cores {
				accounted := c.CPUTime + c.SchedulerIdle + c.ContextSwitchTime
				if accounted != c.LocalClock {
					t.Errorf("core %d: accounted %v != local clock %v (cpu %v, idle %v, switch %v)",
						c.ID, accounted, c.LocalClock, c.CPUTime, c.SchedulerIdle, c.ContextSwitchTime)
				}
				if c.LocalClock > maxClock {
					maxClock = c.LocalClock
				}
			}
			if run.Makespan != maxClock {
				t.Errorf("makespan %v != max local clock %v", run.Makespan, maxClock)
			}
		})
	}
}

// TestWorkStealingOccurs: with more processes than cores, idle cores must
// pull Ready work over, and every steal must pair with a migration on the
// victim side.
func TestWorkStealingOccurs(t *testing.T) {
	m, err := smp.New(testConfig(4), factory(policy.ITS), "2_Data_Intensive", testSpecs(t, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var steals, migrated uint64
	for _, c := range run.Cores {
		steals += c.Steals
		migrated += c.MigratedAway
	}
	if steals == 0 {
		t.Error("no steals on a 4-core run with 5 processes")
	}
	if steals != migrated {
		t.Errorf("steals (%d) != migrations (%d)", steals, migrated)
	}
}

// TestNewErrors covers the validation surface the -cores flag reaches.
func TestNewErrors(t *testing.T) {
	specs := func() []machine.ProcessSpec { return testSpecs(t, 0.01) }
	cases := []struct {
		name string
		cfg  machine.Config
		pol  func() policy.Policy
		want string
	}{
		{"negative cores", testConfig(-1), factory(policy.Sync), "core count"},
		{"non-power-of-two LLC ways", func() machine.Config {
			cfg := testConfig(2)
			cfg.LLCWays = 3
			return cfg
		}(), factory(policy.Sync), "power of two"},
		{"carve-out too small", testConfig(16), factory(policy.Sync), "pre-execute"},
		{"nil factory", testConfig(2), nil, "factory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := smp.New(tc.cfg, tc.pol, "test", specs())
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestZeroCoresDefaultsToOne: a zero core count builds a one-core machine
// (the Options zero value).
func TestZeroCoresDefaultsToOne(t *testing.T) {
	cfg := testConfig(0)
	m, err := smp.New(cfg, factory(policy.Sync), "test", testSpecs(t, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if m.CoreCount() != 1 {
		t.Errorf("CoreCount = %d, want 1", m.CoreCount())
	}
}
