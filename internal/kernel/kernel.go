// Package kernel is the mini Linux-based kernel of the paper's simulator
// (§4.1): per-process address spaces over the 4-level page table, the
// major/minor page-fault handler (§3.1), and the swap path that moves pages
// between DRAM and the ULL device via DMA.
//
// The paper's flow (Figure 1): the MMU raises a page fault (1), the CPU
// enters kernel mode (2), the handler inspects the page-table entry and
// classifies the fault (3), and for a major fault instructs the DMA
// controller to move the page from the ULL device into DRAM (4). The ITS
// thread hook (5) is the policy layer in internal/policy; this package
// provides the mechanisms policies compose.
package kernel

import (
	"fmt"

	"itsim/internal/mem"
	"itsim/internal/obs"
	"itsim/internal/pagetable"
	"itsim/internal/sim"
	"itsim/internal/storage"
)

// Kernel-path cost constants. The paper argues ITS must live in kernel
// space because "switching to kernel-level designs takes only hundreds of
// nanoseconds, whereas transitioning to user-level designs demands several
// microseconds" (§3.2).
const (
	// FaultEntryCost is the user→kernel transition plus handler dispatch
	// charged on every page fault.
	FaultEntryCost = 500 * sim.Nanosecond
	// MinorFaultCost is the metadata-only service time of a minor fault.
	MinorFaultCost = 300 * sim.Nanosecond
	// ITSDispatchCost is the hop from the page-fault handler into an ITS
	// kernel thread (same kernel context, so only hundreds of ns).
	ITSDispatchCost = 150 * sim.Nanosecond
	// ContextSwitchCost is the measured full context switch (§4.1:
	// "7 µs on the machine with Intel Core i7-7800X").
	ContextSwitchCost = 7 * sim.Microsecond
	// SwitchPollutionCost is the memory-stall tail each switch drags in:
	// "frequently performing context switching may cause frequent CPU
	// cache misses and TLB shootdown" (§2.1.1). The switched-in process
	// re-misses its hot lines and refills the TLB; the cost is charged as
	// memory stall attributed to the departing process's switch.
	SwitchPollutionCost = 2500 * sim.Nanosecond
)

// Process is the kernel's per-process state (task_struct + mm_struct).
type Process struct {
	PID      int
	Name     string
	Priority int
	AS       *pagetable.AddressSpace
}

// Stats counts kernel activity.
type Stats struct {
	MajorFaults  uint64
	MinorFaults  uint64
	SwapIns      uint64
	SwapOuts     uint64
	Evictions    uint64
	FirstTouches uint64 // major faults caused by a page's first access
	DMARetries   uint64 // swap-in reads resubmitted after a transient DMA failure
	HandlerTime  sim.Time
}

// Kernel ties address spaces, physical memory and the swap device together.
type Kernel struct {
	procs map[int]*Process
	dram  *mem.DRAM
	dev   *storage.Device
	slots storage.SlotAllocator
	stats Stats
	// trc is the event tracer (nil = tracing off).
	trc *obs.Tracer
	// core is the simulated core currently executing kernel code; emitted
	// events are stamped with it. Single-core machines leave it 0; the
	// SMP coordinator sets it before every core step.
	core int
}

// SetTracer attaches the event tracer the swap path reports to (nil = off).
func (k *Kernel) SetTracer(trc *obs.Tracer) { k.trc = trc }

// SetCore records which simulated core is executing kernel code, for event
// attribution on multi-core machines.
func (k *Kernel) SetCore(core int) { k.core = core }

// New builds a kernel over the given memory and device.
func New(dram *mem.DRAM, dev *storage.Device) *Kernel {
	return &Kernel{
		procs: make(map[int]*Process),
		dram:  dram,
		dev:   dev,
	}
}

// DRAM returns the physical memory pool.
func (k *Kernel) DRAM() *mem.DRAM { return k.dram }

// Device returns the swap device.
func (k *Kernel) Device() *storage.Device { return k.dev }

// Stats returns a copy of the counters.
func (k *Kernel) Stats() Stats { return k.stats }

// AddProcess registers a process and creates its address space.
func (k *Kernel) AddProcess(pid int, name string, priority int) *Process {
	if _, dup := k.procs[pid]; dup {
		panic(fmt.Sprintf("kernel: duplicate pid %d", pid))
	}
	p := &Process{PID: pid, Name: name, Priority: priority, AS: pagetable.New()}
	k.procs[pid] = p
	return p
}

// Process returns the registered process.
func (k *Kernel) Process(pid int) *Process {
	p, ok := k.procs[pid]
	if !ok {
		panic(fmt.Sprintf("kernel: unknown pid %d", pid))
	}
	return p
}

// MapRegion maps [base, base+bytes) into pid's address space as swapped-out
// pages, each with its own swap slot. This mirrors the paper's setup where
// "the ULL storage device size accommodates the memory footprint": the
// process image starts on the device, every first touch is a major fault,
// and the ITS prefetcher's page-table walk sees real swapped PTEs instead of
// holes.
func (k *Kernel) MapRegion(pid int, base, bytes uint64) {
	p := k.Process(pid)
	start := base &^ uint64(pagetable.PageSize-1)
	end := base + bytes
	for va := start; va < end; va += pagetable.PageSize {
		p.AS.MapSwapped(va, k.slots.Alloc())
	}
}

// Translation classifies one virtual access.
type Translation uint8

// Translation results.
const (
	// Present: page resident; Frame carries the physical frame.
	Present Translation = iota
	// SwappedOut: mapped but on the ULL device — a major fault.
	SwappedOut
	// Unmapped: first touch — becomes a major fault from swap after
	// implicit mapping (the process image lives in the swap area).
	Unmapped
)

// Translate looks va up in pid's address space. For Present it also touches
// the frame (reference bit, dirty on write). prefetchHit reports the first
// touch of a prefetcher-filled frame — a swap-cache hit that Linux services
// as a minor fault; the caller charges MinorFaultCost and credits the
// prefetcher.
func (k *Kernel) Translate(pid int, va uint64, write bool) (t Translation, frame mem.FrameID, prefetchHit bool) {
	return k.TranslateIn(k.Process(pid), va, write)
}

// TranslateIn is Translate on an already-resolved process: the executor
// resolves each Proc's kernel process once at construction and calls this
// per record, keeping the pid map lookup out of the hot loop.
func (k *Kernel) TranslateIn(p *Process, va uint64, write bool) (t Translation, frame mem.FrameID, prefetchHit bool) {
	va &^= uint64(pagetable.PageSize - 1)
	pte, ok := p.AS.Lookup(va)
	if !ok || !pte.Mapped() {
		return Unmapped, mem.NoFrame, false
	}
	if pte.Present() {
		id := mem.FrameID(pte.Frame())
		prefetchHit = k.dram.Touch(id, write)
		if prefetchHit {
			k.stats.MinorFaults++
		}
		if write && !pte.Dirty() {
			// Already-dirty pages skip the second table walk: OR-ing
			// the flag in again is a no-op on PTE state and counters.
			p.AS.Update(va, func(e pagetable.PTE) pagetable.PTE { return e | pagetable.FlagDirty })
		}
		return Present, id, prefetchHit
	}
	return SwappedOut, mem.NoFrame, false
}

// slotFor returns va's swap slot, implicitly mapping first-touched pages
// into the swap area.
func (k *Kernel) slotFor(p *Process, va uint64) uint64 {
	pte, ok := p.AS.Lookup(va)
	if ok && pte.Swapped() {
		return pte.Frame()
	}
	if ok && pte.Present() {
		panic(fmt.Sprintf("kernel: slotFor on resident page pid=%d va=%#x", p.PID, va))
	}
	slot := k.slots.Alloc()
	p.AS.MapSwapped(va, slot)
	k.stats.FirstTouches++
	return slot
}

// FaultOutcome describes a started major-fault (or prefetch) swap-in.
type FaultOutcome struct {
	// Frame is the pinned destination frame.
	Frame mem.FrameID
	// Done is when the DMA lands the page in DRAM.
	Done sim.Time
	// EvictedVA/EvictedPID identify the victim page, if any.
	EvictedPID int
	EvictedVA  uint64
	Evicted    bool
	// WriteBack is true when the victim was dirty and a device write was
	// issued.
	WriteBack bool
}

// StartSwapIn begins the major-fault I/O for (pid, va) at time now:
// allocates a frame (evicting if needed), pins it, and submits the DMA read.
// The page becomes usable only after CompleteSwapIn at outcome.Done.
// prefetched marks prefetcher-initiated swap-ins (§3.4.1), which are
// accounted separately and are the first victims under memory pressure.
func (k *Kernel) StartSwapIn(now sim.Time, pid int, va uint64, prefetched bool) FaultOutcome {
	p := k.Process(pid)
	va &^= uint64(pagetable.PageSize - 1)
	slot := k.slotFor(p, va)

	var out FaultOutcome
	id, ok := k.dram.Allocate(pid, va, prefetched)
	if !ok {
		victim := k.dram.PickVictim()
		if victim == mem.NoFrame {
			panic("kernel: DRAM exhausted with every frame pinned")
		}
		vf := k.dram.Frame(victim)
		out.Evicted = true
		out.EvictedPID = vf.Owner
		out.EvictedVA = vf.VA
		out.WriteBack = vf.Dirty // capture before evict/Allocate reuse the slot
		k.evict(now, victim)
		id, ok = k.dram.Allocate(pid, va, prefetched)
		if !ok {
			panic("kernel: allocation failed after eviction")
		}
	}
	k.dram.Pin(id)
	done := k.submitRead(now, pid, va, slot)
	k.stats.SwapIns++
	if !prefetched {
		k.stats.MajorFaults++
	}
	if k.trc.Wants(obs.EvSwapIn) {
		cause := "demand"
		if prefetched {
			cause = "prefetch"
		}
		k.trc.Emit(obs.Event{Time: now, Type: obs.EvSwapIn, PID: pid, Core: k.core, VA: va, Dur: done - now, Cause: cause})
	}
	out.Frame = id
	out.Done = done
	return out
}

// submitRead issues the swap-in DMA read. With no fault injector attached
// this is exactly one SubmitPage — the historical path. Under injection it
// follows the Linux swap path's error handling (cf. Zhong et al.,
// "Revisiting Swapping in User-space"): a transient DMA failure is
// retried with exponential backoff, bounded because the injector never
// fails an attempt at its configured retry maximum. Each injected fault
// observed on the swap-in path is emitted as a typed event, all stamped
// at the submission time with the injected delay in Dur so the event
// stream stays tidy.
func (k *Kernel) submitRead(now sim.Time, pid int, va, slot uint64) sim.Time {
	inj := k.dev.Injector()
	if inj == nil {
		return k.dev.SubmitPage(now, storage.Read, slot)
	}
	backoff := inj.Config().RetryBackoff
	at := now
	for attempt := 0; ; attempt++ {
		res := k.dev.SubmitPageRetry(at, storage.Read, slot, attempt)
		if k.trc.Wants(obs.EvFaultInject) {
			if res.Stalled > 0 {
				k.trc.Emit(obs.Event{Time: now, Type: obs.EvFaultInject, PID: pid, Core: k.core, VA: va, Dur: res.Stalled, Cause: "stall"})
			}
			if res.InjectedTail > 0 {
				k.trc.Emit(obs.Event{Time: now, Type: obs.EvFaultInject, PID: pid, Core: k.core, VA: va, Dur: res.InjectedTail, Cause: "tail"})
			}
			if res.Failed {
				k.trc.Emit(obs.Event{Time: now, Type: obs.EvFaultInject, PID: pid, Core: k.core, VA: va, Cause: "dma"})
			}
		}
		if !res.Failed {
			return res.Done
		}
		k.stats.DMARetries++
		if k.trc.Wants(obs.EvIORetry) {
			k.trc.Emit(obs.Event{Time: now, Type: obs.EvIORetry, PID: pid, Core: k.core, VA: va, Dur: backoff, Value: int64(attempt + 1)})
		}
		// The failure is detected at the would-be completion time; the
		// resubmission waits out the backoff on top of that.
		at = res.Done + backoff
		backoff *= 2
	}
}

// evict swaps a victim frame out: writes it back if dirty and returns its
// page to the swapped state.
func (k *Kernel) evict(now sim.Time, victim mem.FrameID) {
	vf := k.dram.Frame(victim)
	owner := k.Process(vf.Owner)
	slot := k.slots.Alloc()
	if k.trc.Wants(obs.EvEvict) {
		k.trc.Emit(obs.Event{Time: now, Type: obs.EvEvict, PID: vf.Owner, Core: k.core, VA: vf.VA})
	}
	if vf.Dirty {
		// Asynchronous write-back: occupies a device channel and bus
		// bandwidth but nothing waits on it.
		k.dev.SubmitPage(now, storage.Write, slot)
		k.stats.SwapOuts++
		if k.trc.Wants(obs.EvWriteBack) {
			k.trc.Emit(obs.Event{Time: now, Type: obs.EvWriteBack, PID: vf.Owner, Core: k.core, VA: vf.VA})
		}
	}
	owner.AS.MakeSwapped(vf.VA, slot)
	k.dram.Release(victim, true)
	k.stats.Evictions++
}

// CompleteSwapIn finishes a swap-in: unpins the frame and makes the page
// present in the owner's page table.
func (k *Kernel) CompleteSwapIn(pid int, va uint64, frame mem.FrameID) {
	p := k.Process(pid)
	va &^= uint64(pagetable.PageSize - 1)
	k.dram.Unpin(frame)
	p.AS.MakePresent(va, uint64(frame))
}

// ChargeHandler accrues kernel handler time for reporting.
func (k *Kernel) ChargeHandler(d sim.Time) { k.stats.HandlerTime += d }

// ResidentPages returns how many of pid's pages are resident.
func (k *Kernel) ResidentPages(pid int) int { return k.Process(pid).AS.PresentPages() }
