package kernel

import (
	"testing"

	"itsim/internal/bus"
	"itsim/internal/fault"
	"itsim/internal/mem"
	"itsim/internal/pagetable"
	"itsim/internal/sim"
	"itsim/internal/storage"
)

func newKernel(frames int) *Kernel {
	dev := storage.New(storage.DefaultConfig(), bus.New(0, 0))
	return New(mem.NewDRAM(frames, mem.ReplaceClock), dev)
}

func TestAddProcess(t *testing.T) {
	k := newKernel(16)
	p := k.AddProcess(1, "wrf", 5)
	if p.PID != 1 || p.Name != "wrf" || p.Priority != 5 || p.AS == nil {
		t.Fatalf("process = %+v", p)
	}
	if k.Process(1) != p {
		t.Fatal("Process lookup failed")
	}
}

func TestDuplicateProcessPanics(t *testing.T) {
	k := newKernel(16)
	k.AddProcess(1, "a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate pid accepted")
		}
	}()
	k.AddProcess(1, "b", 2)
}

func TestUnknownProcessPanics(t *testing.T) {
	k := newKernel(16)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown pid accepted")
		}
	}()
	k.Process(42)
}

func TestMapRegion(t *testing.T) {
	k := newKernel(16)
	p := k.AddProcess(1, "a", 1)
	k.MapRegion(1, 0x10000, 10*pagetable.PageSize)
	if p.AS.MappedPages() != 10 {
		t.Fatalf("MappedPages = %d, want 10", p.AS.MappedPages())
	}
	pte, ok := p.AS.Lookup(0x10000)
	if !ok || !pte.Swapped() {
		t.Fatalf("first page: %v ok=%v", pte, ok)
	}
	// Distinct slots per page.
	p0, _ := p.AS.Lookup(0x10000)
	p1, _ := p.AS.Lookup(0x11000)
	if p0.Frame() == p1.Frame() {
		t.Fatal("pages share a swap slot")
	}
}

func TestTranslateUnmapped(t *testing.T) {
	k := newKernel(16)
	k.AddProcess(1, "a", 1)
	tr, frame, _ := k.Translate(1, 0xdead000, false)
	if tr != Unmapped || frame != mem.NoFrame {
		t.Fatalf("Translate = %v,%v", tr, frame)
	}
}

func TestFaultLifecycle(t *testing.T) {
	k := newKernel(16)
	p := k.AddProcess(1, "a", 1)
	k.MapRegion(1, 0, pagetable.PageSize)

	tr, _, _ := k.Translate(1, 0x10, false)
	if tr != SwappedOut {
		t.Fatalf("pre-fault Translate = %v, want SwappedOut", tr)
	}
	out := k.StartSwapIn(0, 1, 0x10, false)
	if out.Done <= 0 || out.Evicted {
		t.Fatalf("outcome = %+v", out)
	}
	// Frame pinned until completion.
	if !k.DRAM().Frame(out.Frame).Pinned {
		t.Fatal("in-flight frame not pinned")
	}
	// Page still not present mid-flight.
	if tr, _, _ := k.Translate(1, 0x10, false); tr != SwappedOut {
		t.Fatalf("mid-flight Translate = %v", tr)
	}
	k.CompleteSwapIn(1, 0x10, out.Frame)
	tr, frame, prefHit := k.Translate(1, 0x10, false)
	if tr != Present || frame != out.Frame || prefHit {
		t.Fatalf("post-fault Translate = %v,%v,%v", tr, frame, prefHit)
	}
	if k.DRAM().Frame(out.Frame).Pinned {
		t.Fatal("frame still pinned after completion")
	}
	if pte, _ := p.AS.Lookup(0); !pte.Present() {
		t.Fatal("PTE not present after completion")
	}
	if k.Stats().MajorFaults != 1 || k.Stats().SwapIns != 1 {
		t.Fatalf("stats = %+v", k.Stats())
	}
}

// faultyKernel is newKernel with a DMA-failure injector attached.
func faultyKernel(frames int, fcfg fault.Config) *Kernel {
	dev := storage.New(storage.DefaultConfig(), bus.New(0, 0))
	dev.SetInjector(fault.New(fcfg))
	return New(mem.NewDRAM(frames, mem.ReplaceClock), dev)
}

// A swap-in whose DMA transfer keeps failing retries with exponential
// backoff and terminates no later than RetryMax resubmissions; the retries
// are visible in the kernel stats and in the completion time.
func TestSwapInRetriesOnDMAFailure(t *testing.T) {
	backoff := 2 * sim.Microsecond
	k := faultyKernel(16, fault.Config{Seed: 1, DMAFailProb: 1, RetryMax: 3, RetryBackoff: backoff})
	k.AddProcess(1, "a", 1)
	k.MapRegion(1, 0, pagetable.PageSize)

	out := k.StartSwapIn(0, 1, 0x10, false)
	if got := k.Stats().DMARetries; got != 3 {
		t.Fatalf("DMARetries = %d, want 3 (RetryMax bounds the loop)", got)
	}
	// Four attempts' device time plus the 2+4+8 µs backoff series.
	clean := newKernel(16)
	clean.AddProcess(1, "a", 1)
	clean.MapRegion(1, 0, pagetable.PageSize)
	base := clean.StartSwapIn(0, 1, 0x10, false).Done
	minDone := 4*storage.DefaultReadLatency + (2+4+8)*sim.Microsecond
	if out.Done < minDone {
		t.Fatalf("retried swap-in done at %v, want ≥ %v", out.Done, minDone)
	}
	if out.Done <= base {
		t.Fatalf("retried swap-in (%v) not slower than clean (%v)", out.Done, base)
	}

	// The page still arrives: completion works exactly as for a clean read.
	k.CompleteSwapIn(1, 0x10, out.Frame)
	if tr, _, _ := k.Translate(1, 0x10, false); tr != Present {
		t.Fatalf("post-retry Translate = %v, want Present", tr)
	}
}

// A zero-failure injector must leave the swap path's timing untouched: the
// retry wrapper is pass-through when no fault fires.
func TestSwapInUnchangedWithoutDMAFailures(t *testing.T) {
	k := faultyKernel(16, fault.Config{Seed: 1, TailProb: 0, DMAFailProb: 0, StallProb: 1e-300})
	clean := newKernel(16)
	for _, kk := range []*Kernel{k, clean} {
		kk.AddProcess(1, "a", 1)
		kk.MapRegion(1, 0, pagetable.PageSize)
	}
	// StallProb is denormal-tiny: enabled (injector attached, retry path
	// taken) but never firing, so both kernels must agree exactly.
	a := k.StartSwapIn(0, 1, 0x10, false)
	b := clean.StartSwapIn(0, 1, 0x10, false)
	if a.Done != b.Done {
		t.Fatalf("no-fault injector changed swap-in timing: %v vs %v", a.Done, b.Done)
	}
	if k.Stats().DMARetries != 0 {
		t.Fatalf("DMARetries = %d without any failure", k.Stats().DMARetries)
	}
}

func TestFirstTouchImplicitlyMaps(t *testing.T) {
	k := newKernel(16)
	p := k.AddProcess(1, "a", 1)
	out := k.StartSwapIn(0, 1, 0x5000, false)
	k.CompleteSwapIn(1, 0x5000, out.Frame)
	if k.Stats().FirstTouches != 1 {
		t.Fatalf("FirstTouches = %d", k.Stats().FirstTouches)
	}
	if pte, ok := p.AS.Lookup(0x5000); !ok || !pte.Present() {
		t.Fatal("first-touched page not present")
	}
}

func TestPrefetchedSwapInCountsSeparately(t *testing.T) {
	k := newKernel(16)
	k.AddProcess(1, "a", 1)
	k.MapRegion(1, 0, 2*pagetable.PageSize)
	out := k.StartSwapIn(0, 1, pagetable.PageSize, true)
	k.CompleteSwapIn(1, pagetable.PageSize, out.Frame)
	st := k.Stats()
	if st.MajorFaults != 0 || st.SwapIns != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// First touch of the prefetched page reports a swap-cache hit.
	_, _, prefHit := k.Translate(1, pagetable.PageSize, false)
	if !prefHit {
		t.Fatal("prefetched page's first touch not reported")
	}
	if k.Stats().MinorFaults != 1 {
		t.Fatalf("MinorFaults = %d", k.Stats().MinorFaults)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	k := newKernel(2) // two frames only
	k.AddProcess(1, "a", 1)
	k.MapRegion(1, 0, 4*pagetable.PageSize)
	// Fill both frames.
	for i := uint64(0); i < 2; i++ {
		out := k.StartSwapIn(0, 1, i*pagetable.PageSize, false)
		k.CompleteSwapIn(1, i*pagetable.PageSize, out.Frame)
	}
	// Third swap-in must evict.
	out := k.StartSwapIn(0, 1, 2*pagetable.PageSize, false)
	if !out.Evicted {
		t.Fatal("no eviction with full DRAM")
	}
	if out.EvictedPID != 1 {
		t.Fatalf("evicted pid = %d", out.EvictedPID)
	}
	// The evicted page's PTE is swapped again with a fresh slot.
	p := k.Process(1)
	pte, ok := p.AS.Lookup(out.EvictedVA)
	if !ok || !pte.Swapped() {
		t.Fatalf("evicted page PTE: %v ok=%v", pte, ok)
	}
	if k.Stats().Evictions != 1 {
		t.Fatalf("stats = %+v", k.Stats())
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	k := newKernel(2)
	k.AddProcess(1, "a", 1)
	k.MapRegion(1, 0, 3*pagetable.PageSize)
	for i := uint64(0); i < 2; i++ {
		out := k.StartSwapIn(0, 1, i*pagetable.PageSize, false)
		k.CompleteSwapIn(1, i*pagetable.PageSize, out.Frame)
	}
	// Dirty page 0 via a write access.
	k.Translate(1, 0, true)
	// Fault in page 2: the victim scan may pick either page; loop until a
	// dirty one goes.
	out := k.StartSwapIn(0, 1, 2*pagetable.PageSize, false)
	if !out.Evicted {
		t.Fatal("no eviction")
	}
	writes := k.Device().Stats().Writes
	if out.WriteBack && writes == 0 {
		t.Fatal("write-back reported but no device write")
	}
	if !out.WriteBack && out.EvictedVA == 0 {
		t.Fatal("dirty page evicted without write-back")
	}
	if k.Stats().SwapOuts != k.Device().Stats().Writes {
		t.Fatalf("SwapOuts=%d deviceWrites=%d", k.Stats().SwapOuts, k.Device().Stats().Writes)
	}
}

func TestTranslateWriteSetsDirty(t *testing.T) {
	k := newKernel(4)
	p := k.AddProcess(1, "a", 1)
	out := k.StartSwapIn(0, 1, 0, false)
	k.CompleteSwapIn(1, 0, out.Frame)
	k.Translate(1, 0, true)
	pte, _ := p.AS.Lookup(0)
	if !pte.Dirty() {
		t.Fatal("PTE dirty bit not set on write")
	}
	if !k.DRAM().Frame(out.Frame).Dirty {
		t.Fatal("frame dirty bit not set on write")
	}
}

func TestChargeHandler(t *testing.T) {
	k := newKernel(4)
	k.ChargeHandler(FaultEntryCost)
	k.ChargeHandler(MinorFaultCost)
	if k.Stats().HandlerTime != FaultEntryCost+MinorFaultCost {
		t.Fatalf("HandlerTime = %v", k.Stats().HandlerTime)
	}
}

func TestResidentPages(t *testing.T) {
	k := newKernel(8)
	k.AddProcess(1, "a", 1)
	k.MapRegion(1, 0, 4*pagetable.PageSize)
	if k.ResidentPages(1) != 0 {
		t.Fatal("fresh process has resident pages")
	}
	out := k.StartSwapIn(0, 1, 0, false)
	k.CompleteSwapIn(1, 0, out.Frame)
	if k.ResidentPages(1) != 1 {
		t.Fatalf("ResidentPages = %d", k.ResidentPages(1))
	}
}
