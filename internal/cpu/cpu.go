// Package cpu models the microarchitectural state the fault-aware
// pre-execute policy manipulates (paper §3.4.2–§3.4.3):
//
//   - a register file extended with per-register INV bits;
//   - a shadow register file used by the state-recovery policy to
//     checkpoint/restore architectural state (plus the branch-history
//     register and return-address stack) around pre-execution;
//   - a store buffer whose retired entries drain into
//   - a pre-execute cache with an INV bit per byte, which pre-execute loads
//     consult before trusting forwarded store data.
//
// Pre-execute stores never modify the real CPU cache or memory; their
// results live only in the store buffer and pre-execute cache, exactly as
// the paper requires for correctness.
package cpu

import (
	"itsim/internal/cache"
	"itsim/internal/sim"
	"itsim/internal/trace"
)

// Timing constants for the state-recovery policy (§3.4.3). Checkpointing is
// a register-file-wide copy to the shadow RF; the paper bounds kernel-side
// transitions at "hundreds of nanoseconds".
const (
	// CheckpointCost is charged when pre-execution begins.
	CheckpointCost = 60 * sim.Nanosecond
	// RestoreCost is charged when pre-execution ends and the shadow state
	// (including branch history register and return address stack) is
	// restored.
	RestoreCost = 60 * sim.Nanosecond
)

// RegisterFile tracks the INV (invalid/bogus-data) bit of each
// architectural register during pre-execution.
type RegisterFile struct {
	inv [trace.NumRegs]bool
}

// Reset clears every INV bit.
func (r *RegisterFile) Reset() { r.inv = [trace.NumRegs]bool{} }

// MarkINV sets register reg's INV bit.
func (r *RegisterFile) MarkINV(reg uint8) { r.inv[reg%trace.NumRegs] = true }

// ClearINV clears register reg's INV bit (a valid result overwrote it).
func (r *RegisterFile) ClearINV(reg uint8) { r.inv[reg%trace.NumRegs] = false }

// INV reports register reg's INV bit.
func (r *RegisterFile) INV(reg uint8) bool { return r.inv[reg%trace.NumRegs] }

// CountINV returns how many registers are currently poisoned.
func (r *RegisterFile) CountINV() int {
	n := 0
	for _, b := range r.inv {
		if b {
			n++
		}
	}
	return n
}

// Shadow is the shadow register file of the state-recovery policy. It holds
// a checkpoint of the architectural register state taken when ITS activates.
type Shadow struct {
	saved RegisterFile
	// PC and SP stand in for the full architectural context (program
	// counter, stack pointer, branch history register, return address
	// stack) — the timing model only needs the copy costs, but keeping
	// real fields lets tests verify restore fidelity.
	PC, SP uint64
	valid  bool
}

// Checkpoint copies rf (and pc/sp) into the shadow file.
func (s *Shadow) Checkpoint(rf *RegisterFile, pc, sp uint64) {
	s.saved = *rf
	s.PC, s.SP = pc, sp
	s.valid = true
}

// Restore writes the checkpoint back into rf and returns pc, sp. It panics
// if no checkpoint exists — restoring stale state would corrupt the
// simulated process, the very bug the state-recovery policy exists to
// prevent.
func (s *Shadow) Restore(rf *RegisterFile) (pc, sp uint64) {
	if !s.valid {
		panic("cpu: Restore without Checkpoint")
	}
	*rf = s.saved
	s.valid = false
	return s.PC, s.SP
}

// Valid reports whether a checkpoint is pending.
func (s *Shadow) Valid() bool { return s.valid }

// StoreBufferSize is the number of in-flight store entries (Skylake-class
// cores have 56; the exact figure only bounds forwarding distance).
const StoreBufferSize = 56

type storeEntry struct {
	addr  uint64
	size  uint8
	inv   bool
	valid bool
}

// StoreBuffer holds pre-executed stores awaiting retirement. Retired
// entries drain into the pre-execute cache via Retire's callback.
type StoreBuffer struct {
	entries [StoreBufferSize]storeEntry
	head    int // oldest
	count   int
}

// Reset empties the buffer.
func (b *StoreBuffer) Reset() {
	*b = StoreBuffer{}
}

// Len returns the number of buffered stores.
func (b *StoreBuffer) Len() int { return b.count }

// Insert records a pre-executed store. When the buffer is full the oldest
// entry retires first through retire (which the pre-execute engine uses to
// move it into the pre-execute cache with its INV status).
func (b *StoreBuffer) Insert(addr uint64, size uint8, inv bool, retire func(addr uint64, size uint8, inv bool)) {
	if b.count == StoreBufferSize {
		e := b.entries[b.head]
		b.head = (b.head + 1) % StoreBufferSize
		b.count--
		if retire != nil && e.valid {
			retire(e.addr, e.size, e.inv)
		}
	}
	idx := (b.head + b.count) % StoreBufferSize
	b.entries[idx] = storeEntry{addr: addr, size: size, inv: inv, valid: true}
	b.count++
}

// Lookup searches newest-to-oldest for a store overlapping [addr,
// addr+size). It returns (found, inv-of-youngest-overlap).
func (b *StoreBuffer) Lookup(addr uint64, size uint8) (found, inv bool) {
	for i := b.count - 1; i >= 0; i-- {
		e := &b.entries[(b.head+i)%StoreBufferSize]
		if !e.valid {
			continue
		}
		if overlap(addr, size, e.addr, e.size) {
			return true, e.inv
		}
	}
	return false, false
}

// Drain retires every buffered store through retire, oldest first.
func (b *StoreBuffer) Drain(retire func(addr uint64, size uint8, inv bool)) {
	for i := 0; i < b.count; i++ {
		e := &b.entries[(b.head+i)%StoreBufferSize]
		if retire != nil && e.valid {
			retire(e.addr, e.size, e.inv)
		}
	}
	b.Reset()
}

func overlap(aAddr uint64, aSize uint8, bAddr uint64, bSize uint8) bool {
	return aAddr < bAddr+uint64(bSize) && bAddr < aAddr+uint64(aSize)
}

// PreExecCache is the pre-execute cache: a set-associative cache whose lines
// carry one INV bit per byte (§3.4.2, [11]). It is only accessible during
// pre-execution. Lines come from retired pre-execute stores.
type PreExecCache struct {
	tags *cache.Cache
	// invBits maps a present line to its byte-INV mask (bit i = byte i of
	// the 64-byte line). Entries are dropped on eviction.
	invBits   map[uint64]uint64
	lineBytes int
}

// NewPreExecCache builds a pre-execute cache of the given geometry (for
// Sync_Runahead and ITS the paper uses half the 8 MB LLC).
func NewPreExecCache(cfg cache.Config) *PreExecCache {
	return &PreExecCache{
		tags:      cache.New(cfg),
		invBits:   make(map[uint64]uint64),
		lineBytes: cfg.LineBytes,
	}
}

// Config returns the cache geometry.
func (p *PreExecCache) Config() cache.Config { return p.tags.Config() }

// Stats exposes the underlying tag-array counters.
func (p *PreExecCache) Stats() cache.Stats { return p.tags.Stats() }

// ValidLines returns the number of lines currently present (gauge sampling).
func (p *PreExecCache) ValidLines() int { return p.tags.ValidLines() }

func (p *PreExecCache) byteMask(addr uint64, size uint8) uint64 {
	off := int(addr) & (p.lineBytes - 1)
	n := int(size)
	if off+n > p.lineBytes {
		n = p.lineBytes - off
	}
	if n >= 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << n) - 1) << off
}

// Write installs the bytes of a retired pre-execute store, setting or
// clearing their INV bits according to the store's status (§3.4.2 step 3).
func (p *PreExecCache) Write(addr uint64, size uint8, inv bool) {
	line := p.tags.LineOf(addr)
	if !p.tags.Contains(addr) {
		evicted, was := p.tags.Fill(addr)
		if was {
			delete(p.invBits, evicted)
		}
		// A fresh line starts with every byte invalid: only the written
		// bytes hold (possibly) valid pre-executed data.
		p.invBits[line] = ^uint64(0)
	} else {
		p.tags.Access(addr) // refresh recency
	}
	mask := p.byteMask(addr, size)
	if inv {
		p.invBits[line] |= mask
	} else {
		p.invBits[line] &^= mask
	}
}

// Read checks whether [addr, addr+size) is present and returns
// (present, anyByteINV). A pre-execute load that hits an INV byte is itself
// invalid (§3.4.2 load step 2).
func (p *PreExecCache) Read(addr uint64, size uint8) (present, inv bool) {
	if !p.tags.Contains(addr) {
		return false, false
	}
	p.tags.Access(addr)
	mask := p.byteMask(addr, size)
	return true, p.invBits[p.tags.LineOf(addr)]&mask != 0
}

// Flush empties the cache (between pre-execution episodes of different
// processes the pre-execute state is not meaningful).
func (p *PreExecCache) Flush() {
	p.tags.Flush()
	p.invBits = make(map[uint64]uint64)
}
