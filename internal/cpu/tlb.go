package cpu

import "fmt"

// TLB models the translation lookaside buffer: a fully-associative cache of
// page translations with LRU replacement. The machine can run with the TLB
// enabled as a mechanistic replacement for the fixed per-switch pollution
// constant: without address-space identifiers a context switch flushes the
// TLB, and the switched-in process re-misses its hot pages, paying a page
// walk each time — the §2.1.1 "TLB shootdown" cost, derived instead of
// assumed.
type TLB struct {
	entries map[uint64]uint64 // page key → last-use tick
	cap     int
	tick    uint64

	hits    uint64
	misses  uint64
	flushes uint64
}

// NewTLB builds a TLB with the given entry count.
func NewTLB(entries int) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("cpu: non-positive TLB size %d", entries))
	}
	return &TLB{entries: make(map[uint64]uint64, entries), cap: entries}
}

// Capacity returns the entry count.
func (t *TLB) Capacity() int { return t.cap }

// Lookup checks the translation for the page key (the machine passes
// pid-tagged page numbers) and inserts it on miss, evicting the LRU entry
// when full. Returns true on hit.
func (t *TLB) Lookup(pageKey uint64) bool {
	t.tick++
	if _, ok := t.entries[pageKey]; ok {
		t.entries[pageKey] = t.tick
		t.hits++
		return true
	}
	t.misses++
	if len(t.entries) >= t.cap {
		var lruKey uint64
		lruTick := ^uint64(0)
		for k, tk := range t.entries {
			if tk < lruTick {
				lruTick, lruKey = tk, k
			}
		}
		delete(t.entries, lruKey)
	}
	t.entries[pageKey] = t.tick
	return false
}

// Flush drops every translation (context switch without ASIDs).
func (t *TLB) Flush() {
	for k := range t.entries {
		delete(t.entries, k)
	}
	t.flushes++
}

// Stats returns (hits, misses, flushes).
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// Live returns the number of resident translations.
func (t *TLB) Live() int { return len(t.entries) }
