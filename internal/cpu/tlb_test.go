package cpu

import "testing"

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Lookup(1) {
		t.Fatal("hit on empty TLB")
	}
	if !tlb.Lookup(1) {
		t.Fatal("miss after insert")
	}
	hits, misses, _ := tlb.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(3)
	tlb.Lookup(1)
	tlb.Lookup(2)
	tlb.Lookup(3)
	tlb.Lookup(1) // refresh 1; LRU is now 2
	tlb.Lookup(4) // evicts 2
	if tlb.Live() != 3 {
		t.Fatalf("Live = %d", tlb.Live())
	}
	if !tlb.Lookup(1) || !tlb.Lookup(3) || !tlb.Lookup(4) {
		t.Fatal("recent entries evicted")
	}
	if tlb.Lookup(2) {
		t.Fatal("LRU entry survived")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(8)
	for i := uint64(0); i < 8; i++ {
		tlb.Lookup(i)
	}
	tlb.Flush()
	if tlb.Live() != 0 {
		t.Fatal("flush left entries")
	}
	if _, _, flushes := tlb.Stats(); flushes != 1 {
		t.Fatal("flush not counted")
	}
	if tlb.Lookup(1) {
		t.Fatal("hit after flush")
	}
}

func TestTLBCapacityNeverExceeded(t *testing.T) {
	tlb := NewTLB(16)
	for i := uint64(0); i < 1000; i++ {
		tlb.Lookup(i % 37)
		if tlb.Live() > 16 {
			t.Fatalf("TLB grew to %d entries", tlb.Live())
		}
	}
}

func TestTLBZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTLB(0) accepted")
		}
	}()
	NewTLB(0)
}
