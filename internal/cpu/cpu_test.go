package cpu

import (
	"testing"
	"testing/quick"

	"itsim/internal/cache"
	"itsim/internal/trace"
)

func TestRegisterFileINV(t *testing.T) {
	var rf RegisterFile
	if rf.CountINV() != 0 {
		t.Fatal("fresh RF has INV bits")
	}
	rf.MarkINV(3)
	if !rf.INV(3) || rf.INV(4) || rf.CountINV() != 1 {
		t.Fatal("MarkINV wrong")
	}
	rf.ClearINV(3)
	if rf.INV(3) || rf.CountINV() != 0 {
		t.Fatal("ClearINV wrong")
	}
	// Register ids wrap modulo NumRegs.
	rf.MarkINV(trace.NumRegs + 2)
	if !rf.INV(2) {
		t.Fatal("register id wrap failed")
	}
	rf.Reset()
	if rf.CountINV() != 0 {
		t.Fatal("Reset left INV bits")
	}
}

func TestShadowCheckpointRestore(t *testing.T) {
	var rf RegisterFile
	var sh Shadow
	rf.MarkINV(1)
	rf.MarkINV(5)
	sh.Checkpoint(&rf, 0x400000, 0x7fff0000)
	if !sh.Valid() {
		t.Fatal("checkpoint not valid")
	}
	rf.MarkINV(9)
	rf.ClearINV(1)
	pc, sp := sh.Restore(&rf)
	if pc != 0x400000 || sp != 0x7fff0000 {
		t.Fatalf("restored pc/sp = %#x/%#x", pc, sp)
	}
	if !rf.INV(1) || !rf.INV(5) || rf.INV(9) {
		t.Fatal("register state not restored")
	}
	if sh.Valid() {
		t.Fatal("shadow still valid after Restore")
	}
}

func TestRestoreWithoutCheckpointPanics(t *testing.T) {
	var rf RegisterFile
	var sh Shadow
	defer func() {
		if recover() == nil {
			t.Fatal("Restore without Checkpoint did not panic")
		}
	}()
	sh.Restore(&rf)
}

func TestStoreBufferLookup(t *testing.T) {
	var sb StoreBuffer
	if f, _ := sb.Lookup(0x100, 8); f {
		t.Fatal("empty buffer forwarded")
	}
	sb.Insert(0x100, 8, false, nil)
	if f, inv := sb.Lookup(0x100, 8); !f || inv {
		t.Fatalf("lookup = %v,%v", f, inv)
	}
	// Overlap detection.
	if f, _ := sb.Lookup(0x104, 8); !f {
		t.Fatal("partial overlap not forwarded")
	}
	if f, _ := sb.Lookup(0x108, 8); f {
		t.Fatal("non-overlapping address forwarded")
	}
	// Youngest-wins on overlapping stores.
	sb.Insert(0x100, 8, true, nil)
	if _, inv := sb.Lookup(0x100, 8); !inv {
		t.Fatal("youngest store's INV status not returned")
	}
}

func TestStoreBufferRetireOnOverflow(t *testing.T) {
	var sb StoreBuffer
	var retired []uint64
	retire := func(addr uint64, size uint8, inv bool) { retired = append(retired, addr) }
	for i := 0; i < StoreBufferSize+3; i++ {
		sb.Insert(uint64(i)*64, 8, false, retire)
	}
	if len(retired) != 3 {
		t.Fatalf("retired %d entries, want 3", len(retired))
	}
	for i, a := range retired {
		if a != uint64(i)*64 {
			t.Fatalf("retired out of order: %v", retired)
		}
	}
	if sb.Len() != StoreBufferSize {
		t.Fatalf("Len = %d, want %d", sb.Len(), StoreBufferSize)
	}
}

func TestStoreBufferDrain(t *testing.T) {
	var sb StoreBuffer
	sb.Insert(0x10, 4, true, nil)
	sb.Insert(0x20, 4, false, nil)
	var drained int
	sb.Drain(func(addr uint64, size uint8, inv bool) { drained++ })
	if drained != 2 || sb.Len() != 0 {
		t.Fatalf("drained=%d len=%d", drained, sb.Len())
	}
}

func pxcConfig() cache.Config {
	return cache.Config{SizeBytes: 8192, LineBytes: 64, Ways: 4}
}

func TestPreExecCacheWriteRead(t *testing.T) {
	p := NewPreExecCache(pxcConfig())
	if present, _ := p.Read(0x1000, 8); present {
		t.Fatal("fresh cache has data")
	}
	p.Write(0x1000, 8, false)
	present, inv := p.Read(0x1000, 8)
	if !present || inv {
		t.Fatalf("valid write read back present=%v inv=%v", present, inv)
	}
	// Unwritten bytes of the same line are INV.
	if _, inv := p.Read(0x1008, 8); !inv {
		t.Fatal("unwritten bytes not INV")
	}
	// INV write poisons its bytes.
	p.Write(0x1000, 4, true)
	if _, inv := p.Read(0x1000, 4); !inv {
		t.Fatal("INV store's bytes not poisoned")
	}
	// Bytes 4..8 still valid.
	if _, inv := p.Read(0x1004, 4); inv {
		t.Fatal("valid bytes poisoned by partial INV write")
	}
}

func TestPreExecCacheEvictionDropsINVState(t *testing.T) {
	cfg := cache.Config{SizeBytes: 512, LineBytes: 64, Ways: 2} // 4 sets... 8 lines/2 = 4 sets
	p := NewPreExecCache(cfg)
	sets := uint64(cfg.SizeBytes / cfg.LineBytes / cfg.Ways)
	// Fill one set beyond capacity: 3 lines mapping to set 0.
	for k := uint64(0); k < 3; k++ {
		p.Write(k*sets*64, 8, false)
	}
	// The first line was evicted.
	if present, _ := p.Read(0, 8); present {
		t.Fatal("evicted line still present")
	}
	// Re-writing it starts from all-INV again.
	p.Write(0, 8, false)
	if _, inv := p.Read(8, 8); !inv {
		t.Fatal("refilled line inherited stale valid bytes")
	}
}

func TestPreExecCacheLineStraddle(t *testing.T) {
	p := NewPreExecCache(pxcConfig())
	// A write at the end of a line is clipped to the line.
	p.Write(0x103C, 8, false) // bytes 60..63 valid
	if _, inv := p.Read(0x103C, 4); inv {
		t.Fatal("clipped write's in-line bytes not valid")
	}
	// The next line was never written.
	if present, _ := p.Read(0x1040, 4); present {
		t.Fatal("write leaked into next line")
	}
}

func TestPreExecCacheFlush(t *testing.T) {
	p := NewPreExecCache(pxcConfig())
	p.Write(0x40, 8, false)
	p.Flush()
	if present, _ := p.Read(0x40, 8); present {
		t.Fatal("Flush left contents")
	}
}

// Property: after writing (addr, size, inv), reading the same range returns
// present with exactly that INV status.
func TestPreExecCacheWriteReadProperty(t *testing.T) {
	p := NewPreExecCache(pxcConfig())
	f := func(addr uint32, size uint8, inv bool) bool {
		if size == 0 {
			size = 1
		}
		if size > 64 {
			size %= 64
			if size == 0 {
				size = 1
			}
		}
		a := uint64(addr)
		// Clip to stay inside a line (the cache clips writes; reads of a
		// clipped range would span two lines).
		off := int(a) & 63
		if off+int(size) > 64 {
			size = uint8(64 - off)
		}
		p.Write(a, size, inv)
		present, gotINV := p.Read(a, size)
		return present && gotINV == inv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapHelper(t *testing.T) {
	cases := []struct {
		aAddr uint64
		aSize uint8
		bAddr uint64
		bSize uint8
		want  bool
	}{
		{0, 8, 0, 8, true},
		{0, 8, 7, 1, true},
		{0, 8, 8, 8, false},
		{8, 8, 0, 8, false},
		{4, 2, 5, 1, true},
	}
	for _, c := range cases {
		if got := overlap(c.aAddr, c.aSize, c.bAddr, c.bSize); got != c.want {
			t.Errorf("overlap(%d,%d,%d,%d) = %v", c.aAddr, c.aSize, c.bAddr, c.bSize, got)
		}
	}
}
