package cluster

import (
	"fmt"
	"strings"
)

// Load is one machine's routing-visible state at decision time.
type Load struct {
	// ID is the machine index.
	ID int
	// Queued is the number of requests waiting in the machine's queue;
	// Running the number executing in its current epoch (0 when idle).
	Queued  int
	Running int
	// Health is the machine's EWMA health score in (0,1]: 1.0 is a
	// machine that has never timed out, crashed, or browned out. Only the
	// health-aware router consults it; in a chaos-free fleet it is
	// exactly 1.0 everywhere.
	Health float64
	// Eligible reports whether the machine may accept new requests
	// (false while Down or Draining). Every router skips ineligible
	// machines; when all machines are eligible — every chaos-free fleet —
	// each router's choice is identical to its pre-resilience behavior.
	Eligible bool
}

// InFlight is the machine's total outstanding request count.
func (l Load) InFlight() int { return l.Queued + l.Running }

// Router places arriving requests on machines. Implementations must be
// deterministic pure functions of their own state and the arguments —
// routing is part of the fleet's reproducibility contract.
type Router interface {
	// Name returns the policy name as accepted by NewRouter.
	Name() string
	// Pick chooses a machine for a request from tenant index ti; loads
	// is indexed by machine id and always non-empty. The coordinator
	// only calls Pick while at least one machine is eligible.
	Pick(ti int, loads []Load) int
	// Observe notifies the router that machine m started an epoch
	// serving tenantCounts[ti] requests of each tenant. Routers that
	// ignore history treat it as a no-op.
	Observe(m int, tenantCounts []int)
}

// Router names accepted by NewRouter, in presentation order.
const (
	RoundRobin   = "round-robin"
	LeastLoaded  = "least-loaded"
	PageLocality = "locality"
	HealthAware  = "health"
)

// RouterNames lists the available routing policies.
func RouterNames() []string { return []string{RoundRobin, LeastLoaded, PageLocality, HealthAware} }

// NewRouter builds the named routing policy for a fleet of machines
// serving tenants distinct tenants.
func NewRouter(name string, machines, tenants int) (Router, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", RoundRobin:
		return &roundRobinRouter{}, nil
	case LeastLoaded:
		return &leastLoadedRouter{}, nil
	case PageLocality, "page-locality":
		w := make([][]float64, machines)
		for i := range w {
			w[i] = make([]float64, tenants)
		}
		return &localityRouter{warmth: w}, nil
	case HealthAware, "health-aware":
		return &healthRouter{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (want %s)",
		name, strings.Join(RouterNames(), ", "))
}

// roundRobinRouter cycles through machines regardless of load or tenant:
// the oblivious baseline. Ineligible machines are skipped in cycle order,
// so with everything eligible the sequence is the classic 0,1,2,…
type roundRobinRouter struct {
	next int
}

func (r *roundRobinRouter) Name() string { return RoundRobin }

func (r *roundRobinRouter) Pick(ti int, loads []Load) int {
	n := len(loads)
	m := r.next % n
	for k := 0; k < n; k++ {
		c := (m + k) % n
		if loads[c].Eligible {
			r.next = (c + 1) % n
			return c
		}
	}
	// No machine eligible (the coordinator parks instead of calling Pick
	// in that state): fall back to the plain cycle.
	r.next = (m + 1) % n
	return m
}

func (r *roundRobinRouter) Observe(m int, tenantCounts []int) {}

// leastLoadedRouter picks the eligible machine with the fewest in-flight
// requests (queued + running), ties broken by lowest id.
type leastLoadedRouter struct{}

func (leastLoadedRouter) Name() string { return LeastLoaded }

func (leastLoadedRouter) Pick(ti int, loads []Load) int {
	return leastLoadedPick(loads)
}

func (leastLoadedRouter) Observe(m int, tenantCounts []int) {}

func leastLoadedPick(loads []Load) int {
	best, bestLoad := -1, 0
	for _, l := range loads {
		if !l.Eligible {
			continue
		}
		if f := l.InFlight(); best < 0 || f < bestLoad {
			best, bestLoad = l.ID, f
		}
	}
	if best < 0 {
		// No machine eligible: place by load alone.
		best, bestLoad = loads[0].ID, loads[0].InFlight()
		for _, l := range loads[1:] {
			if f := l.InFlight(); f < bestLoad {
				best, bestLoad = l.ID, f
			}
		}
	}
	return best
}

// localityRouter steers a tenant's requests toward machines that recently
// served that tenant, approximating page locality: a machine whose DRAM
// and LLC were just warmed by tenant T's working set will fault less on
// T's next request. Each epoch is a fresh smp machine in this model, so
// warmth is an honest proxy (queue affinity concentrates a tenant's
// requests into shared epochs, where they really do share pages), not a
// literal page-cache hit model — docs/FLEET.md discusses the distinction.
type localityRouter struct {
	// warmth[m][ti] decays by half at each of machine m's epoch starts
	// and grows by the number of tenant-ti requests the epoch serves.
	warmth [][]float64
}

func (r *localityRouter) Name() string { return PageLocality }

func (r *localityRouter) Pick(ti int, loads []Load) int {
	best, bestWarmth := -1, 0.0
	for _, l := range loads {
		if !l.Eligible {
			continue
		}
		if w := r.warmth[l.ID][ti]; w > bestWarmth {
			best, bestWarmth = l.ID, w
		}
	}
	if best < 0 {
		// No eligible machine is warm for this tenant: place by load.
		return leastLoadedPick(loads)
	}
	return best
}

func (r *localityRouter) Observe(m int, tenantCounts []int) {
	w := r.warmth[m]
	for ti := range w {
		w[ti] = w[ti]/2 + float64(tenantCounts[ti])
	}
}

// healthRouter picks the eligible machine maximizing health per unit of
// outstanding work (Health / (1 + in-flight)), ties broken by lowest id —
// a least-loaded router that discounts machines observed timing out,
// crashing, or running browned-out/cache-cold epochs. In a chaos-free
// fleet every health score is 1.0 and the choice degenerates to
// least-loaded.
type healthRouter struct{}

func (healthRouter) Name() string { return HealthAware }

func (healthRouter) Pick(ti int, loads []Load) int {
	best, bestScore := -1, 0.0
	for _, l := range loads {
		if !l.Eligible {
			continue
		}
		if s := l.Health / float64(1+l.InFlight()); best < 0 || s > bestScore {
			best, bestScore = l.ID, s
		}
	}
	if best < 0 {
		return leastLoadedPick(loads)
	}
	return best
}

func (healthRouter) Observe(m int, tenantCounts []int) {}
