package cluster

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"itsim/internal/sim"
	"itsim/internal/workload"
)

// Tenant-spec limits; ParseTenantSpec and Validate reject values outside
// them so a malformed CLI spec cannot request an unbounded simulation.
const (
	// MaxRequestsPerTenant bounds one tenant's request count.
	MaxRequestsPerTenant = 100_000
	// MaxTenants bounds the number of tenants per fleet.
	MaxTenants = 64
	// MaxRetries bounds one request's re-submission budget.
	MaxRetries = 16
)

// DefaultTenantScale is the per-request workload scale when a tenant spec
// leaves it unset: small enough that a request is a sub-millisecond epoch
// contribution, matching serving-style work rather than a batch job.
const DefaultTenantScale = 0.02

// TenantSpec declares one serving tenant: which benchmark its requests
// run, how they arrive, and how they are judged.
type TenantSpec struct {
	// Name labels the tenant in summaries and traces.
	Name string
	// Bench is the benchmark each request executes (workload names, e.g.
	// "caffe", "pagerank").
	Bench string
	// Rate is the open-loop arrival rate in requests per virtual second;
	// <= 0 means every request arrives at t = 0 (a closed burst).
	Rate float64
	// Requests is how many requests the tenant submits in total.
	Requests int
	// Priority is the SCHED_RR priority of the tenant's processes
	// (larger = higher).
	Priority int
	// Scale is the per-request workload scale (0 = DefaultTenantScale);
	// the cluster's global Scale multiplies it.
	Scale float64
	// Pattern/Period/Amp shape the arrival rate over time (see
	// workload.ArrivalConfig).
	Pattern workload.ArrivalPattern
	Period  sim.Time
	Amp     float64
	// SLO is the tenant's end-to-end latency objective; 0 = no SLO
	// (attainment unreported).
	SLO sim.Time
	// Seed overrides the benchmark profile's pinned seed as the base of
	// the tenant's per-request trace seeds; 0 keeps the profile seed.
	Seed uint64
	// Deadline is the per-attempt timeout: an attempt not completed
	// within it is cancelled (its machine keeps the wasted work) and the
	// request retries or fails. 0 = attempts never time out.
	Deadline sim.Time
	// Retries is how many re-submissions a timed-out request gets before
	// it is marked failed; meaningful only with a Deadline.
	Retries int
	// Hedge enables hedged requests: once the tenant's observed p99
	// latency is known, a duplicate attempt dispatches after that delay
	// and the first completion wins (the loser is cancelled).
	Hedge bool
}

// Validate rejects nonsensical tenant parameters. It is the user-input
// gate shared by ParseTenantSpec and Config.Validate.
func (t TenantSpec) Validate() error {
	if strings.TrimSpace(t.Name) == "" {
		return fmt.Errorf("cluster: tenant with empty name")
	}
	if strings.ContainsAny(t.Name, ",;=") {
		return fmt.Errorf("cluster: tenant name %q contains a spec delimiter", t.Name)
	}
	if _, err := workload.ProfileFor(t.Bench, 1.0); err != nil {
		return fmt.Errorf("cluster: tenant %s: %w", t.Name, err)
	}
	if math.IsNaN(t.Rate) || math.IsInf(t.Rate, 0) {
		return fmt.Errorf("cluster: tenant %s: rate must be finite, got %v", t.Name, t.Rate)
	}
	if t.Requests < 1 || t.Requests > MaxRequestsPerTenant {
		return fmt.Errorf("cluster: tenant %s: requests must be in [1,%d], got %d",
			t.Name, MaxRequestsPerTenant, t.Requests)
	}
	if t.Priority < 1 || t.Priority > 99 {
		return fmt.Errorf("cluster: tenant %s: priority must be in [1,99], got %d", t.Name, t.Priority)
	}
	if math.IsNaN(t.Scale) || math.IsInf(t.Scale, 0) || t.Scale < 0 {
		return fmt.Errorf("cluster: tenant %s: scale must be finite and >= 0, got %v", t.Name, t.Scale)
	}
	if math.IsNaN(t.Amp) || math.IsInf(t.Amp, 0) || t.Amp < 0 || t.Amp > 1 {
		return fmt.Errorf("cluster: tenant %s: amplitude must be in [0,1], got %v", t.Name, t.Amp)
	}
	if t.Period < 0 {
		return fmt.Errorf("cluster: tenant %s: period must be >= 0, got %v", t.Name, t.Period)
	}
	if t.SLO < 0 {
		return fmt.Errorf("cluster: tenant %s: slo must be >= 0, got %v", t.Name, t.SLO)
	}
	if t.Deadline < 0 {
		return fmt.Errorf("cluster: tenant %s: deadline must be >= 0, got %v", t.Name, t.Deadline)
	}
	if t.Retries < 0 || t.Retries > MaxRetries {
		return fmt.Errorf("cluster: tenant %s: retries must be in [0,%d], got %d", t.Name, MaxRetries, t.Retries)
	}
	if t.Retries > 0 && t.Deadline == 0 {
		return fmt.Errorf("cluster: tenant %s: retries require a deadline", t.Name)
	}
	return nil
}

// scale returns the tenant's effective per-request workload scale under
// the cluster-wide multiplier.
func (t TenantSpec) scale(global float64) float64 {
	s := t.Scale
	if s <= 0 {
		s = DefaultTenantScale
	}
	if global > 0 {
		s *= global
	}
	return s
}

// ParseTenantSpec parses the CLI tenant-spec syntax: tenants separated by
// ';', each a comma-separated list of key=value pairs. Keys: name, bench,
// rate (req/s), requests (alias req), prio, scale, pattern
// (steady/diurnal/bursty/multiperiod), period (Go duration), amp, slo (Go
// duration), seed, deadline (Go duration, per-attempt timeout), retries
// (re-submissions after timeouts), hedge (bool). Omitted keys default to:
// name "t<index>", bench "caffe", rate 0 (burst at t = 0), requests 8,
// prio 1, scale DefaultTenantScale, pattern steady, period 2ms, amp 0.5,
// slo 0, seed 0, deadline 0 (no timeout), retries 0, hedge false.
// Every parsed tenant is validated and names must be unique.
func ParseTenantSpec(spec string) ([]TenantSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("cluster: empty tenant spec")
	}
	var out []TenantSpec
	for _, ts := range strings.Split(spec, ";") {
		ts = strings.TrimSpace(ts)
		if ts == "" {
			continue
		}
		if len(out) >= MaxTenants {
			return nil, fmt.Errorf("cluster: more than %d tenants", MaxTenants)
		}
		t := TenantSpec{
			Name:     fmt.Sprintf("t%d", len(out)),
			Bench:    workload.Caffe,
			Requests: 8,
			Priority: 1,
			Scale:    DefaultTenantScale,
			Pattern:  workload.Steady,
			Period:   2 * sim.Millisecond,
			Amp:      0.5,
		}
		for _, field := range strings.Split(ts, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			key, val, found := strings.Cut(field, "=")
			if !found {
				return nil, fmt.Errorf("cluster: malformed tenant entry %q (want key=value)", field)
			}
			key = strings.ToLower(strings.TrimSpace(key))
			val = strings.TrimSpace(val)
			var err error
			switch key {
			case "name":
				t.Name = val
			case "bench":
				t.Bench = strings.ToLower(val)
			case "rate":
				t.Rate, err = strconv.ParseFloat(val, 64)
			case "requests", "req":
				t.Requests, err = strconv.Atoi(val)
			case "prio":
				t.Priority, err = strconv.Atoi(val)
			case "scale":
				t.Scale, err = strconv.ParseFloat(val, 64)
			case "pattern":
				t.Pattern, err = workload.ParsePattern(val)
			case "period":
				t.Period, err = parseDuration(val)
			case "amp":
				t.Amp, err = strconv.ParseFloat(val, 64)
			case "slo":
				t.SLO, err = parseDuration(val)
			case "seed":
				t.Seed, err = strconv.ParseUint(val, 0, 64)
			case "deadline":
				t.Deadline, err = parseDuration(val)
			case "retries":
				t.Retries, err = strconv.Atoi(val)
			case "hedge":
				t.Hedge, err = strconv.ParseBool(val)
			default:
				return nil, fmt.Errorf("cluster: unknown tenant key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: tenant key %s: %w", key, err)
			}
		}
		if err := t.Validate(); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty tenant spec")
	}
	seen := make(map[string]bool, len(out))
	for _, t := range out {
		if seen[t.Name] {
			return nil, fmt.Errorf("cluster: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
	}
	return out, nil
}

// parseDuration converts a Go duration literal to virtual time.
func parseDuration(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return sim.Time(d.Nanoseconds()), nil
}

// Seed-mixing tweaks. Per-request trace seeds and per-tenant arrival
// streams derive from the tenant's base seed with distinct mixers so two
// tenants running the same benchmark still produce decorrelated requests,
// and sweeping arrival parameters never reshuffles trace contents.
const (
	// requestSeedMix is the 64-bit golden-ratio constant (splitmix64's
	// increment): multiplying the request sequence number by it spreads
	// consecutive requests across the seed space.
	requestSeedMix = 0x9E3779B97F4A7C15
	// tenantSeedTweak decorrelates same-bench tenants.
	tenantSeedTweak = 0x74656e616e745f73 // "tenant_s"
	// arrivalSeedTweak separates the arrival stream from trace seeds.
	arrivalSeedTweak = 0x6172726976616c73 // "arrivals"
)

// baseSeed is the tenant's trace-seed base: the explicit override, or the
// benchmark profile's pinned seed, mixed with the tenant index (so
// same-bench tenants differ) and the cluster seed (so -seed perturbs the
// whole fleet; XOR with 0 is the identity).
//
//itslint:seedmixer
func (t TenantSpec) baseSeed(tenantIdx int, clusterSeed uint64) uint64 {
	base := t.Seed
	if base == 0 {
		// The profile exists — Validate ran before any seed derivation.
		p, err := workload.ProfileFor(t.Bench, 1.0)
		if err != nil {
			panic(err)
		}
		base = p.Seed
	}
	return base ^ uint64(tenantIdx+1)*tenantSeedTweak ^ clusterSeed
}

// requestSeed derives request seq's trace seed from the tenant base.
//
//itslint:seedmixer
func requestSeed(base uint64, seq int) uint64 {
	return base ^ uint64(seq+1)*requestSeedMix
}
