package cluster

import (
	"encoding/json"
	"testing"

	"itsim/internal/fault"
	"itsim/internal/machine"
	"itsim/internal/metrics"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/smp"
	"itsim/internal/workload"
)

// burstConfig is a 1-machine fleet whose every request arrives at t = 0
// and fits one epoch — the degenerate shape that must reduce exactly to a
// bare smp batch.
func burstConfig(kind policy.Kind, routing string) Config {
	return Config{
		Machines: 1,
		Slots:    8,
		Policy:   kind,
		Routing:  routing,
		Scale:    0.5, // × DefaultTenantScale = 0.01 effective
		Tenants: []TenantSpec{
			{Name: "alpha", Bench: workload.Caffe, Requests: 2, Priority: 3, SLO: 50 * sim.Millisecond},
			{Name: "beta", Bench: workload.PageRank, Requests: 2, Priority: 1},
		},
	}
}

// TestOneMachineMatchesSMP is the fleet ⇔ smp anchor: a 1-machine,
// single-epoch fleet must produce an epoch run byte-identical to running
// the same specs directly on internal/smp, for every I/O policy and every
// routing policy (routing is irrelevant with one machine and must not
// perturb the outcome).
func TestOneMachineMatchesSMP(t *testing.T) {
	for _, kind := range policy.Kinds() {
		for _, routing := range RouterNames() {
			cfg := burstConfig(kind, routing)
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%s: fleet run: %v", kind, routing, err)
			}
			if len(res.Epochs) != 1 {
				t.Fatalf("%v/%s: got %d epochs, want 1", kind, routing, len(res.Epochs))
			}

			// The same requests, built through the same helpers, run
			// directly on the smp machine.
			reqs := cfg.buildRequests()
			specs := make([]machine.ProcessSpec, len(reqs))
			dataIntensive := 0
			for i, r := range reqs {
				spec, prof := cfg.specFor(r.tenant, r.seq)
				specs[i] = spec
				if prof.Class == workload.DataIntensive {
					dataIntensive++
				}
			}
			mm, err := smp.New(cfg.machineConfig(dataIntensive, 0), cfg.policyFactory(), "m0/e0", specs)
			if err != nil {
				t.Fatalf("%v/%s: smp.New: %v", kind, routing, err)
			}
			bare, err := mm.Run()
			if err != nil {
				t.Fatalf("%v/%s: smp run: %v", kind, routing, err)
			}

			got := marshalSummary(t, res.Epochs[0].Summary())
			want := marshalSummary(t, bare.Summary())
			if got != want {
				t.Errorf("%v/%s: 1-machine fleet epoch differs from bare smp run\nfleet: %s\nsmp:   %s",
					kind, routing, got, want)
			}
		}
	}
}

func marshalSummary(t *testing.T, s metrics.Summary) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal summary: %v", err)
	}
	return string(b)
}

func faultyFleetConfig(seed uint64) Config {
	return Config{
		Machines: 3,
		Slots:    2,
		Policy:   policy.ITS,
		Routing:  LeastLoaded,
		Seed:     seed,
		Scale:    0.5,
		Fault: fault.Config{
			Seed:     42,
			TailProb: 0.05, TailMult: 4,
			StallProb:   0.02,
			DMAFailProb: 0.02,
		},
		Tenants: []TenantSpec{
			{Name: "alpha", Bench: workload.Caffe, Requests: 4, Priority: 3,
				Rate: 200_000, Pattern: workload.Diurnal, Period: 2 * sim.Millisecond, Amp: 0.6,
				SLO: 100 * sim.Millisecond},
			{Name: "beta", Bench: workload.RandomWalk, Requests: 3, Priority: 1,
				Rate: 150_000, Pattern: workload.Bursty, Period: sim.Millisecond, Amp: 0.8},
		},
	}
}

// TestFleetDeterminism: same seed ⇒ byte-identical per-tenant summaries,
// even with open-loop arrivals and fault injection; a different fleet seed
// must change the outcome.
func TestFleetDeterminism(t *testing.T) {
	runJSON := func(seed uint64) string {
		res, err := Run(faultyFleetConfig(seed))
		if err != nil {
			t.Fatalf("fleet run (seed %d): %v", seed, err)
		}
		b, err := json.Marshal(res.Summary)
		if err != nil {
			t.Fatalf("marshal fleet summary: %v", err)
		}
		return string(b)
	}
	a, b := runJSON(7), runJSON(7)
	if a != b {
		t.Errorf("identically-seeded fleet runs differ:\n%s\n%s", a, b)
	}
	if c := runJSON(8); c == a {
		t.Errorf("fleet seed change produced an identical summary")
	}
	if res, err := Run(faultyFleetConfig(7)); err != nil {
		t.Fatal(err)
	} else if res.Summary.Injection == nil {
		t.Errorf("faulty fleet run reported no injection stats")
	}
}

// TestFleetCompletesAllRequests checks conservation: every submitted
// request completes exactly once, on every routing policy.
func TestFleetCompletesAllRequests(t *testing.T) {
	for _, routing := range RouterNames() {
		cfg := faultyFleetConfig(1)
		cfg.Fault = fault.Config{}
		cfg.Routing = routing
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", routing, err)
		}
		s := res.Summary
		if s.Requests != 7 || s.Completed != 7 {
			t.Errorf("%s: requests/completed = %d/%d, want 7/7", routing, s.Requests, s.Completed)
		}
		if s.Routing != routing {
			t.Errorf("%s: summary routing = %q", routing, s.Routing)
		}
		var perMachine uint64
		for _, m := range s.PerMachine {
			perMachine += m.Requests
		}
		if perMachine != 7 {
			t.Errorf("%s: per-machine request counts sum to %d, want 7", routing, perMachine)
		}
		for i, ts := range s.Tenants {
			want := uint64(cfg.Tenants[i].Requests)
			if ts.Requests != want || ts.Completed != want {
				t.Errorf("%s: tenant %s requests/completed = %d/%d, want %d",
					routing, ts.Name, ts.Requests, ts.Completed, want)
			}
			if ts.Latency.Count != want {
				t.Errorf("%s: tenant %s latency histogram has %d samples, want %d",
					routing, ts.Name, ts.Latency.Count, want)
			}
			if ts.SLONs > 0 && (ts.SLOAttainment < 0 || ts.SLOAttainment > 1) {
				t.Errorf("%s: tenant %s SLO attainment %v outside [0,1]",
					routing, ts.Name, ts.SLOAttainment)
			}
		}
		if s.MakespanNs <= 0 {
			t.Errorf("%s: non-positive makespan %d", routing, s.MakespanNs)
		}
	}
}

func TestRoundRobinRouter(t *testing.T) {
	r, err := NewRouter(RoundRobin, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	loads := []Load{{ID: 0, Eligible: true}, {ID: 1, Eligible: true}, {ID: 2, Eligible: true}}
	for i, want := range []int{0, 1, 2, 0, 1} {
		if got := r.Pick(0, loads); got != want {
			t.Errorf("pick %d = %d, want %d", i, got, want)
		}
	}
}

func TestLeastLoadedRouter(t *testing.T) {
	r, err := NewRouter(LeastLoaded, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	loads := []Load{
		{ID: 0, Queued: 2, Running: 1, Eligible: true},
		{ID: 1, Queued: 0, Running: 2, Eligible: true},
		{ID: 2, Queued: 1, Running: 1, Eligible: true},
	}
	if got := r.Pick(0, loads); got != 1 {
		t.Errorf("pick = %d, want 1 (lowest in-flight)", got)
	}
	loads[1].Queued = 1 // now 0 and 2 tie at... 0:3, 1:3, 2:2
	if got := r.Pick(0, loads); got != 2 {
		t.Errorf("pick = %d, want 2", got)
	}
	loads[2].Queued = 2 // all tie at 3: lowest id wins
	if got := r.Pick(0, loads); got != 0 {
		t.Errorf("tie pick = %d, want 0", got)
	}
}

// TestLeastLoadedTieBreakOrder pins the tie-break contract explicitly:
// among equally-loaded eligible machines the lowest machine id wins,
// whatever order ties appear in — health-score integration must not
// perturb this base case.
func TestLeastLoadedTieBreakOrder(t *testing.T) {
	r, err := NewRouter(LeastLoaded, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	all := []Load{
		{ID: 0, Queued: 1, Eligible: true},
		{ID: 1, Queued: 1, Eligible: true},
		{ID: 2, Queued: 1, Eligible: true},
		{ID: 3, Queued: 1, Eligible: true},
	}
	if got := r.Pick(0, all); got != 0 {
		t.Errorf("all-tie pick = %d, want 0 (lowest id)", got)
	}
	// Partial tie at the minimum: 1 and 3 tie below 0 and 2.
	partial := []Load{
		{ID: 0, Queued: 2, Eligible: true},
		{ID: 1, Queued: 1, Eligible: true},
		{ID: 2, Queued: 2, Eligible: true},
		{ID: 3, Queued: 1, Eligible: true},
	}
	if got := r.Pick(0, partial); got != 1 {
		t.Errorf("partial-tie pick = %d, want 1 (lowest id at the minimum)", got)
	}
}

// TestLocalityColdFallback pins the locality router's cold path: with no
// warmth recorded anywhere the router must defer to least-loaded placement
// (including its lowest-id tie-break), not pick machine 0 by accident.
func TestLocalityColdFallback(t *testing.T) {
	r, err := NewRouter(PageLocality, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	loads := []Load{
		{ID: 0, Queued: 4, Eligible: true},
		{ID: 1, Queued: 2, Eligible: true},
		{ID: 2, Queued: 1, Eligible: true},
	}
	if got := r.Pick(0, loads); got != 2 {
		t.Errorf("cold pick = %d, want 2 (least loaded)", got)
	}
	loads[2].Queued = 2 // 1 and 2 tie: lowest id
	if got := r.Pick(0, loads); got != 1 {
		t.Errorf("cold tie pick = %d, want 1", got)
	}
}

// TestRoutersSkipIneligible: every router must route around Down/Draining
// machines.
func TestRoutersSkipIneligible(t *testing.T) {
	for _, name := range RouterNames() {
		r, err := NewRouter(name, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		loads := []Load{
			{ID: 0, Eligible: false, Health: 1},
			{ID: 1, Queued: 5, Eligible: true, Health: 1},
			{ID: 2, Queued: 9, Eligible: false, Health: 1},
		}
		for i := 0; i < 4; i++ {
			if got := r.Pick(0, loads); got != 1 {
				t.Errorf("%s: pick %d = %d, want 1 (only eligible machine)", name, i, got)
			}
		}
	}
}

// TestHealthRouter: the health-aware router prefers healthy machines,
// degenerates to least-loaded when health is uniform, and breaks ties by
// lowest id.
func TestHealthRouter(t *testing.T) {
	r, err := NewRouter(HealthAware, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	uniform := []Load{
		{ID: 0, Queued: 2, Health: 1, Eligible: true},
		{ID: 1, Queued: 1, Health: 1, Eligible: true},
		{ID: 2, Queued: 2, Health: 1, Eligible: true},
	}
	if got := r.Pick(0, uniform); got != 1 {
		t.Errorf("uniform-health pick = %d, want 1 (least loaded)", got)
	}
	sick := []Load{
		{ID: 0, Queued: 1, Health: 0.2, Eligible: true},
		{ID: 1, Queued: 2, Health: 1, Eligible: true},
		{ID: 2, Queued: 4, Health: 1, Eligible: true},
	}
	// 0 scores 0.1, 1 scores 1/3, 2 scores 0.2: load is forgiven before
	// sickness is.
	if got := r.Pick(0, sick); got != 1 {
		t.Errorf("sick pick = %d, want 1", got)
	}
	tie := []Load{
		{ID: 0, Queued: 1, Health: 0.5, Eligible: true},
		{ID: 1, Queued: 1, Health: 0.5, Eligible: true},
	}
	if got := r.Pick(0, tie); got != 0 {
		t.Errorf("tie pick = %d, want 0 (lowest id)", got)
	}
}

func TestLocalityRouter(t *testing.T) {
	r, err := NewRouter(PageLocality, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	loads := []Load{
		{ID: 0, Queued: 5, Eligible: true},
		{ID: 1, Eligible: true},
		{ID: 2, Eligible: true},
	}
	// Cold start: fall back to least-loaded (machine 1, lowest id among
	// the in-flight-0 tie).
	if got := r.Pick(0, loads); got != 1 {
		t.Errorf("cold pick = %d, want 1", got)
	}
	// Machine 2 served tenant 0; tenant 0 should now stick to it even
	// though machine 1 is equally idle.
	r.Observe(2, []int{3, 0})
	if got := r.Pick(0, loads); got != 2 {
		t.Errorf("warm pick = %d, want 2", got)
	}
	// Tenant 1 has no warmth anywhere: load decides.
	if got := r.Pick(1, loads); got != 1 {
		t.Errorf("cold-tenant pick = %d, want 1", got)
	}
	// Warmth decays: after enough epochs without tenant 0, machine 2
	// cools and a freshly-warmed machine wins.
	r.Observe(0, []int{8, 0})
	if got := r.Pick(0, loads); got != 0 {
		t.Errorf("rewarmed pick = %d, want 0", got)
	}
}

func TestNewRouterUnknown(t *testing.T) {
	if _, err := NewRouter("weighted-random", 2, 1); err == nil {
		t.Fatal("unknown routing policy accepted")
	}
}

func TestParseTenantSpec(t *testing.T) {
	t.Run("full", func(t *testing.T) {
		ts, err := ParseTenantSpec(
			"name=web,bench=pagerank,rate=5000,requests=12,prio=5,scale=0.05,pattern=diurnal,period=4ms,amp=0.7,slo=2ms,seed=99;" +
				"bench=caffe,req=3")
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) != 2 {
			t.Fatalf("got %d tenants, want 2", len(ts))
		}
		web := ts[0]
		if web.Name != "web" || web.Bench != workload.PageRank || web.Rate != 5000 ||
			web.Requests != 12 || web.Priority != 5 || web.Scale != 0.05 ||
			web.Pattern != workload.Diurnal || web.Period != 4*sim.Millisecond ||
			web.Amp != 0.7 || web.SLO != 2*sim.Millisecond || web.Seed != 99 {
			t.Errorf("tenant 0 parsed as %+v", web)
		}
		def := ts[1]
		if def.Name != "t1" || def.Bench != workload.Caffe || def.Requests != 3 ||
			def.Priority != 1 || def.Scale != DefaultTenantScale || def.Pattern != workload.Steady {
			t.Errorf("tenant 1 defaults parsed as %+v", def)
		}
	})

	bad := map[string]string{
		"empty":          "",
		"malformed":      "name",
		"unknown-key":    "colour=blue",
		"unknown-bench":  "bench=quake",
		"zero-requests":  "requests=0",
		"huge-requests":  "requests=2000000",
		"bad-prio":       "prio=0",
		"bad-amp":        "amp=1.5",
		"nan-rate":       "rate=NaN",
		"bad-period":     "period=fast",
		"duplicate-name": "name=a;name=a",
		"delimiter-name": "name=a=b", // '=' inside the value
	}
	for label, spec := range bad {
		if _, err := ParseTenantSpec(spec); err == nil {
			t.Errorf("%s: spec %q accepted", label, spec)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := burstConfig(policy.Sync, RoundRobin)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]func(*Config){
		"no-machines":   func(c *Config) { c.Machines = 0 },
		"many-machines": func(c *Config) { c.Machines = MaxMachines + 1 },
		"neg-slots":     func(c *Config) { c.Slots = -1 },
		"no-tenants":    func(c *Config) { c.Tenants = nil },
		"dup-tenants":   func(c *Config) { c.Tenants = append(c.Tenants, c.Tenants[0]) },
		"bad-routing":   func(c *Config) { c.Routing = "mystery" },
		"neg-scale":     func(c *Config) { c.Scale = -1 },
		"bad-fault":     func(c *Config) { c.Fault.TailProb = 2 },
		"neg-spin":      func(c *Config) { c.SpinBudget = -1 },
	}
	for label, mutate := range cases {
		cfg := burstConfig(policy.Sync, RoundRobin)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", label)
		}
	}
}
