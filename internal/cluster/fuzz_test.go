package cluster

import (
	"strings"
	"testing"
)

// FuzzParseTenantSpec asserts the tenant-spec parser's contract on
// arbitrary input: it never panics, and anything it accepts re-validates
// cleanly and carries unique, delimiter-free tenant names — the
// invariants Config.Validate and the coordinator rely on.
func FuzzParseTenantSpec(f *testing.F) {
	f.Add("")
	f.Add("bench=caffe")
	f.Add("name=web,bench=pagerank,rate=5000,requests=12,prio=5,scale=0.05,pattern=diurnal,period=4ms,amp=0.7,slo=2ms,seed=99")
	f.Add("bench=caffe,req=3;bench=wrf,req=2,prio=4")
	f.Add("rate=-1,amp=2,requests=0")
	f.Add("name=a;name=a")
	f.Add("seed=0xдеадбиф,period=∞")
	f.Fuzz(func(t *testing.T, spec string) {
		tenants, err := ParseTenantSpec(spec)
		if err != nil {
			return
		}
		if len(tenants) == 0 {
			t.Fatalf("ParseTenantSpec(%q) returned no tenants and no error", spec)
		}
		if len(tenants) > MaxTenants {
			t.Fatalf("ParseTenantSpec(%q) returned %d tenants, cap is %d", spec, len(tenants), MaxTenants)
		}
		seen := make(map[string]bool, len(tenants))
		for _, tn := range tenants {
			if err := tn.Validate(); err != nil {
				t.Fatalf("ParseTenantSpec(%q) accepted tenant that fails Validate: %v", spec, err)
			}
			if strings.ContainsAny(tn.Name, ",;=") {
				t.Fatalf("ParseTenantSpec(%q) accepted delimiter in name %q", spec, tn.Name)
			}
			if seen[tn.Name] {
				t.Fatalf("ParseTenantSpec(%q) accepted duplicate name %q", spec, tn.Name)
			}
			seen[tn.Name] = true
		}
	})
}
