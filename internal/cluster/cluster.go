// Package cluster is the fleet-scale serving model: N multi-core machines
// (internal/smp) fed by open-loop multi-tenant request arrivals
// (internal/workload) through a pluggable routing policy.
//
// The paper evaluates I/O-mode policies on one machine running one batch;
// serving fleets run the same question at the next level up — when every
// machine busy-waits synchronously (or steals idle time with ITS), what
// happens to per-tenant tail latency and SLO attainment across a cluster?
// This package answers that with the same determinism contract as the rest
// of the simulator: a fleet run is a pure function of its Config, so the
// same seed produces byte-identical per-tenant summaries.
//
// The model is a second-level event loop over whole machines, mirroring how
// internal/smp coordinates cores: fleet time advances to the earliest of
// (next request arrival, next machine-epoch completion), ties resolved
// completions-first then machine-id order. An idle machine with queued
// requests starts an "epoch": it pops up to Slots requests, runs them to
// completion as one smp batch (each request is one process whose trace is a
// scaled, per-request-seeded benchmark workload), and stays busy until the
// epoch's makespan elapses in fleet time. Request latency is therefore
// queueing delay plus epoch completion time — the quantity the per-tenant
// histograms digest.
//
// Epoch runs keep their own local clocks starting at zero: a fleet trace is
// a sequence of ordinary RunBegin/RunEnd frames (one per epoch, batch named
// "m<machine>/e<epoch>") that `itssim observe` replays unchanged, plus
// fleet-scope EvRequestArrive/Route/Done events between frames carrying
// global fleet time.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"itsim/internal/chaos"
	"itsim/internal/core"
	"itsim/internal/fault"
	"itsim/internal/machine"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/smp"
	"itsim/internal/workload"
)

// never is the no-pending-event sentinel, as in internal/smp.
const never = sim.Time(math.MaxInt64)

// DefaultSlots is the per-epoch request batch bound when Config.Slots is
// unset: enough multiprogramming to contend on DRAM (the paper's batches
// run six processes) without unbounded queue drains.
const DefaultSlots = 4

// clusterFaultTweak mixes the machine id into per-machine fault-injector
// seeds, so machines see decorrelated fault schedules from one fleet seed.
// Machine 0's seed is untouched (id×tweak = 0), preserving the 1-machine
// fleet ⇔ bare smp byte-identity.
const clusterFaultTweak = 0x666c6565742d666c // "fleet-fl"

// MaxMachines bounds the fleet size a Config may request.
const MaxMachines = 256

// Config describes one fleet run. The zero value is not usable: Machines
// and Tenants are required.
type Config struct {
	// Machines is the number of smp machines in the fleet.
	Machines int
	// Slots bounds how many queued requests one epoch batches together
	// (0 = DefaultSlots).
	Slots int
	// Policy is the I/O-mode policy every machine runs; ITS tunes the
	// ITS kind (zero value = paper defaults).
	Policy policy.Kind
	ITS    policy.ITSConfig
	// Routing names the routing policy (see RouterNames; "" =
	// round-robin).
	Routing string
	// Tenants declares the serving tenants.
	Tenants []TenantSpec
	// Scale multiplies every tenant's per-request workload scale
	// (0 = 1.0).
	Scale float64
	// Seed perturbs every tenant's trace and arrival seeds at once;
	// 0 keeps the pinned per-benchmark seeds.
	Seed uint64
	// Cores selects each machine's core count (0 = Machine config or the
	// single-core default).
	Cores int
	// Machine overrides the per-machine platform configuration; nil
	// derives one from the tenant mix like core.Options does per batch.
	Machine *machine.Config
	// Fault configures device fault injection on every machine; machine
	// i runs with the seed mixed by i so the fleet sees decorrelated
	// fault schedules.
	Fault fault.Config
	// Chaos configures machine-level chaos injection: crash/restart
	// windows, brownouts, and flapping, applied as timed machine-state
	// transitions. The zero value injects nothing and is byte-inert.
	Chaos chaos.Config
	// ShedDepth enables priority-aware load shedding: once the fleet's
	// total queued-request count reaches it, arriving requests from any
	// tenant below the highest configured priority are rejected.
	// 0 disables shedding.
	ShedDepth int
	// SpinBudget bounds synchronous fault waits on every machine
	// (0 = unbounded).
	SpinBudget sim.Time
	// Tracer receives the fleet event stream: per-epoch machine frames
	// plus fleet-scope request events (nil = tracing off).
	Tracer *obs.Tracer
	// GaugeInterval enables periodic gauge sampling inside epochs.
	GaugeInterval sim.Time
}

func (c *Config) slots() int {
	if c.Slots <= 0 {
		return DefaultSlots
	}
	return c.Slots
}

// Validate rejects unusable fleet configurations; it is the gate the CLI's
// user input passes through.
func (c *Config) Validate() error {
	if c.Machines < 1 || c.Machines > MaxMachines {
		return fmt.Errorf("cluster: machine count must be in [1,%d], got %d", MaxMachines, c.Machines)
	}
	if c.Slots < 0 {
		return fmt.Errorf("cluster: slots must be >= 0, got %d", c.Slots)
	}
	if len(c.Tenants) == 0 {
		return fmt.Errorf("cluster: no tenants")
	}
	if len(c.Tenants) > MaxTenants {
		return fmt.Errorf("cluster: more than %d tenants", MaxTenants)
	}
	seen := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("cluster: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
	}
	if math.IsNaN(c.Scale) || math.IsInf(c.Scale, 0) || c.Scale < 0 {
		return fmt.Errorf("cluster: scale must be finite and >= 0, got %v", c.Scale)
	}
	if _, err := NewRouter(c.Routing, c.Machines, len(c.Tenants)); err != nil {
		return err
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	if c.ShedDepth < 0 {
		return fmt.Errorf("cluster: shed depth must be >= 0, got %d", c.ShedDepth)
	}
	if c.SpinBudget < 0 {
		return fmt.Errorf("cluster: spin budget must be >= 0, got %v", c.SpinBudget)
	}
	return nil
}

// policyFactory returns a fresh-instance policy constructor (the smp model
// runs one instance per core); mirrors the unexported one in internal/core.
func (c *Config) policyFactory() func() policy.Policy {
	kind, its := c.Policy, c.ITS
	return func() policy.Policy {
		if kind == policy.ITS {
			return policy.NewITS(its)
		}
		return policy.New(kind)
	}
}

// maxScale is the largest effective per-request workload scale across
// tenants — the fleet's analogue of core.Options.Scale for slice sizing.
func (c *Config) maxScale() float64 {
	s := 0.0
	for _, t := range c.Tenants {
		if ts := t.scale(c.Scale); ts > s {
			s = ts
		}
	}
	return s
}

// machineConfig builds machine id's platform configuration for an epoch
// with dataIntensive data-intensive processes, following the same
// derivation core.Options applies per batch.
func (c *Config) machineConfig(dataIntensive, machineID int) machine.Config {
	cfg := machine.DefaultConfig()
	if c.Machine != nil {
		cfg = *c.Machine
	} else {
		cfg.MinSlice, cfg.MaxSlice = core.SliceRange(c.maxScale())
		cfg.DRAMRatio = core.DRAMRatioFor(dataIntensive)
	}
	if c.Cores != 0 {
		cfg.Cores = c.Cores
	}
	if c.Fault.Enabled() {
		cfg.Fault = c.Fault
	}
	if c.SpinBudget > 0 {
		cfg.SpinBudget = c.SpinBudget
	}
	if cfg.Fault.Enabled() {
		cfg.Fault.Seed ^= uint64(machineID) * clusterFaultTweak
	}
	return cfg
}

// specFor builds the process spec and scaled profile of one request.
func (c *Config) specFor(ti, seq int) (machine.ProcessSpec, workload.Profile) {
	t := c.Tenants[ti]
	prof, err := workload.ProfileFor(t.Bench, t.scale(c.Scale))
	if err != nil {
		// Validate vetted every tenant's bench and scale already.
		panic(err)
	}
	prof.Seed = requestSeed(t.baseSeed(ti, c.Seed), seq)
	return machine.ProcessSpec{
		Name:     t.Bench,
		Tenant:   t.Name,
		Gen:      workload.New(prof),
		Priority: t.Priority,
		BaseVA:   workload.BaseVA,
	}, prof
}

// request is one serving request's lifecycle record. A request resolves
// exactly once: completed (done), shed at admission, or failed after
// exhausting its deadline + retries.
type request struct {
	id         int // global id in arrival order
	tenant     int // tenant index
	seq        int // per-tenant sequence number
	arrival    sim.Time
	machine    int
	completion sim.Time
	syncWait   sim.Time
	done       bool

	// Resilience lifecycle (all inert without deadlines/hedging/chaos:
	// one attempt, resolved at its completion).
	resolved   bool
	shed       bool
	failed     bool
	hedged     bool
	hedgeWin   bool
	dispatches int // primary + retries (hedges excluded): the backoff exponent
	live       int // non-cancelled, unfinished attempts in flight
	attempts   []*attempt
}

// buildRequests materializes every tenant's open-loop arrival sequence and
// merges them into one deterministic fleet-wide order: ascending arrival
// time, ties by tenant index then sequence number.
func (c *Config) buildRequests() []*request {
	var reqs []*request
	for ti, t := range c.Tenants {
		arr := workload.NewArrivals(workload.ArrivalConfig{
			Rate:    t.Rate,
			Pattern: t.Pattern,
			Period:  t.Period,
			Amp:     t.Amp,
			Seed:    t.baseSeed(ti, c.Seed) ^ arrivalSeedTweak,
		})
		for s := 0; s < t.Requests; s++ {
			reqs = append(reqs, &request{tenant: ti, seq: s, arrival: arr.Next()})
		}
	}
	sort.Slice(reqs, func(i, j int) bool {
		a, b := reqs[i], reqs[j]
		if a.arrival != b.arrival {
			return a.arrival < b.arrival
		}
		if a.tenant != b.tenant {
			return a.tenant < b.tenant
		}
		return a.seq < b.seq
	})
	for i, r := range reqs {
		r.id = i
	}
	return reqs
}

// machineState is one fleet machine's coordinator-side state.
type machineState struct {
	id    int
	queue []*attempt
	// running is the epoch in flight (nil when idle); epochRun its
	// already-computed metrics, epochStart/busyUntil its fleet-time span,
	// epochMult the chaos slowdown it runs under (1 when healthy).
	running    []*attempt
	epochRun   *metrics.Run
	epochStart sim.Time
	busyUntil  sim.Time
	epochMult  float64

	// Resilience state: Healthy with health 1.0 and no schedule in a
	// chaos-free fleet.
	state      machState
	stateUntil sim.Time
	downSince  sim.Time
	sched      *chaos.Schedule
	health     float64

	stats metrics.MachineStats
}

// Result is one fleet run's output.
type Result struct {
	// Summary is the serializable digest (the `itssim fleet -format
	// json` document).
	Summary metrics.FleetSummary
	// Epochs holds every epoch's full run metrics in start order.
	Epochs []*metrics.Run
}

// Run executes the fleet to completion.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	router, err := NewRouter(cfg.Routing, cfg.Machines, len(cfg.Tenants))
	if err != nil {
		return nil, err
	}
	f := &fleet{cfg: &cfg, router: router}
	f.machines = make([]*machineState, cfg.Machines)
	for i := range f.machines {
		f.machines[i] = &machineState{id: i, health: healthInitialScore, stateUntil: never, epochMult: 1}
		f.machines[i].stats.ID = i
	}
	f.loads = make([]Load, cfg.Machines)
	f.tAccs = make([]tenantAcc, len(cfg.Tenants))
	f.trackers = make([]*workload.QuantileTracker, len(cfg.Tenants))
	for ti, t := range cfg.Tenants {
		if t.Priority > f.maxPrio {
			f.maxPrio = t.Priority
		}
		if t.Hedge {
			f.trackers[ti] = workload.NewQuantileTracker(
				workload.DefaultQuantileWindow, workload.DefaultQuantileMinSamples)
		}
	}
	f.chaosSchedules()
	reqs := f.cfg.buildRequests()

	arrIdx := 0
	for f.resolved < len(reqs) {
		// Earliest pending instant per event class: epoch completions,
		// machine-state transitions (chaos windows / timed state ends),
		// lifecycle timers (timeouts, retries, hedges), arrivals. At one
		// instant the classes process in that priority order — machines
		// free up and change state before requests are routed. In a
		// chaos-free, deadline-free fleet tx and tt are always never and
		// the loop degenerates to the historical completions/arrivals
		// alternation exactly.
		tc, tx, tt, ta := never, f.nextChaos(), f.nextTimer(), never
		for _, m := range f.machines {
			if m.running != nil && m.busyUntil < tc {
				tc = m.busyUntil
			}
		}
		if arrIdx < len(reqs) {
			ta = reqs[arrIdx].arrival
		}
		now := tc
		if tx < now {
			now = tx
		}
		if tt < now {
			now = tt
		}
		if ta < now {
			now = ta
		}
		if now == never {
			// Unreachable: requests still unresolved yet nothing is
			// pending — every queued request would have started an epoch
			// below.
			return nil, fmt.Errorf("cluster: stalled with %d requests unresolved", len(reqs)-f.resolved)
		}
		switch {
		case tc == now:
			// Completions first, in machine-id order.
			for _, m := range f.machines {
				if m.running != nil && m.busyUntil == now {
					f.finishEpoch(m)
				}
			}
		case tx == now:
			f.stepChaos(now)
		case tt == now:
			f.fireTimers(now)
		default:
			for arrIdx < len(reqs) && reqs[arrIdx].arrival == ta {
				r := reqs[arrIdx]
				arrIdx++
				if f.want(obs.EvRequestArrive) {
					f.emit(obs.Event{Time: r.arrival, Type: obs.EvRequestArrive, PID: -1,
						Value: int64(r.id), Cause: cfg.Tenants[r.tenant].Name})
				}
				if !f.admit(r) {
					continue
				}
				f.dispatch(r, false, now)
				f.armHedge(r, now)
			}
		}
		// Re-place parked work once possible, then start epochs on idle
		// eligible machines with queued work, in id order.
		f.dispatchParked(now)
		for _, m := range f.machines {
			if m.running == nil && len(m.queue) > 0 && m.eligible() {
				if err := f.startEpoch(m, now); err != nil {
					return nil, err
				}
			}
		}
	}

	return f.result(reqs), nil
}

// fleet is the in-flight coordinator state of one Run.
type fleet struct {
	cfg      *Config
	router   Router
	machines []*machineState
	epochs   []*metrics.Run
	loads    []Load

	// Resilience state (see resilience.go).
	chaosCfg chaos.Config // effective (defaulted) chaos knobs
	timers   timerHeap
	timerSeq uint64
	parked   []*attempt
	trackers []*workload.QuantileTracker
	tAccs    []tenantAcc
	maxPrio  int
	resolved int
}

func (f *fleet) want(t obs.Type) bool { return f.cfg.Tracer.Wants(t) }
func (f *fleet) emit(ev obs.Event)    { f.cfg.Tracer.Emit(ev) }

// startEpoch pops up to Slots requests from m's queue and runs them as one
// smp batch. The run executes eagerly (its metrics and trace are produced
// here), but in fleet time the machine stays busy until the epoch's
// makespan elapses; completions are applied then by finishEpoch.
func (f *fleet) startEpoch(m *machineState, now sim.Time) error {
	n := len(m.queue)
	if s := f.cfg.slots(); n > s {
		n = s
	}
	batch := m.queue[:n:n]
	m.queue = m.queue[n:]

	specs := make([]machine.ProcessSpec, n)
	counts := make([]int, len(f.cfg.Tenants))
	dataIntensive := 0
	for i, a := range batch {
		a.running = true
		spec, prof := f.cfg.specFor(a.req.tenant, a.req.seq)
		specs[i] = spec
		counts[a.req.tenant]++
		if prof.Class == workload.DataIntensive {
			dataIntensive++
		}
	}
	f.router.Observe(m.id, counts)

	name := fmt.Sprintf("m%d/e%d", m.id, m.stats.Epochs)
	mm, err := smp.New(f.cfg.machineConfig(dataIntensive, m.id), f.cfg.policyFactory(), name, specs)
	if err != nil {
		return fmt.Errorf("cluster: epoch %s: %w", name, err)
	}
	mm.Instrument(f.cfg.Tracer, f.cfg.GaugeInterval)
	run, err := mm.Run()
	if err != nil {
		return fmt.Errorf("cluster: epoch %s: %w", name, err)
	}

	m.running = batch
	m.epochRun = run
	m.epochStart = now
	m.epochMult = f.currentMult(m)
	m.busyUntil = now + scaleTime(run.Makespan, m.epochMult)
	m.stats.Epochs++
	m.stats.Requests += uint64(n)
	f.epochs = append(f.epochs, run)
	return nil
}

// finishEpoch applies an eagerly-executed epoch's results at its fleet
// completion time. The first attempt to complete resolves its request;
// cancelled attempts (timed out, or losers of a hedge race) are wasted
// machine work and resolve nothing. A Draining machine whose epoch just
// finished goes Down.
func (f *fleet) finishEpoch(m *machineState) {
	run := m.epochRun
	for i, a := range m.running {
		a.running = false
		a.finished = true
		r := a.req
		if a.cancelled || r.resolved {
			continue
		}
		p := run.Procs[i]
		r.completion = m.epochStart + scaleTime(p.FinishTime, m.epochMult)
		r.syncWait = p.StorageWait
		r.done = p.Finished
		r.machine = m.id
		r.hedgeWin = a.hedge
		if a.hedge {
			f.tAccs[r.tenant].hedgeWins++
		}
		f.resolve(r, a)
		if tr := f.trackers[r.tenant]; tr != nil && r.done {
			tr.Observe(r.completion - r.arrival)
		}
		if f.want(obs.EvRequestDone) {
			f.emit(obs.Event{Time: r.completion, Type: obs.EvRequestDone, PID: -1,
				Core: m.id, Value: int64(r.id), Dur: r.completion - r.arrival,
				Cause: f.cfg.Tenants[r.tenant].Name})
		}
	}
	m.stats.BusyNs += int64(m.busyUntil - m.epochStart)
	m.stats.WaitingNs += int64(run.TotalIdle())
	m.stats.StolenNs += int64(run.TotalStolen())
	m.stats.MajorFaults += run.TotalMajorFaults()
	m.stats.DemotedWaits += run.TotalDemotions()
	m.health = healthDecay*m.health + (1-healthDecay)*(1/m.epochMult)
	m.running, m.epochRun = nil, nil
	if m.state == stateDraining {
		f.goDown(m, m.busyUntil, "flap")
	}
	m.epochMult = 1
}

// result assembles the fleet summary from the completed requests.
func (f *fleet) result(reqs []*request) *Result {
	cfg := f.cfg
	sum := metrics.FleetSummary{
		Policy:   cfg.Policy.String(),
		Routing:  f.router.Name(),
		Machines: cfg.Machines,
		Slots:    cfg.slots(),
	}

	type acc struct {
		latency  *metrics.Histogram
		syncWait *metrics.Histogram
		met      uint64
		ts       metrics.TenantStats
	}
	accs := make([]acc, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		accs[i] = acc{
			latency:  metrics.NewWideLatencyHistogram(),
			syncWait: metrics.NewWideLatencyHistogram(),
			ts: metrics.TenantStats{
				Name:       t.Name,
				Bench:      t.Bench,
				SLONs:      int64(t.SLO),
				DeadlineNs: int64(t.Deadline),
				TimedOut:   f.tAccs[i].timedOut,
				Retries:    f.tAccs[i].retries,
				Hedges:     f.tAccs[i].hedges,
				HedgeWins:  f.tAccs[i].hedgeWins,
				Shed:       f.tAccs[i].shed,
				Failed:     f.tAccs[i].failed,
			},
		}
	}

	var makespan sim.Time
	for _, r := range reqs {
		a := &accs[r.tenant]
		a.ts.Requests++
		sum.Requests++
		if !r.done {
			continue
		}
		a.ts.Completed++
		sum.Completed++
		lat := r.completion - r.arrival
		a.latency.Observe(lat)
		a.syncWait.Observe(r.syncWait)
		slo := cfg.Tenants[r.tenant].SLO
		if slo > 0 && lat <= slo {
			a.met++
		}
		if r.completion > makespan {
			makespan = r.completion
		}
	}
	sum.MakespanNs = int64(makespan)

	for i := range accs {
		a := &accs[i]
		a.ts.Latency = a.latency.Snapshot()
		a.ts.SyncWait = a.syncWait.Snapshot()
		if a.ts.SLONs > 0 && a.ts.Completed > 0 {
			a.ts.SLOAttainment = float64(a.met) / float64(a.ts.Completed)
		}
		sum.Tenants = append(sum.Tenants, a.ts)
	}

	var inj metrics.InjectionStats
	injected := false
	for _, run := range f.epochs {
		if run.Injection == nil {
			continue
		}
		injected = true
		inj.TailSpikes += run.Injection.TailSpikes
		inj.ChannelStalls += run.Injection.ChannelStalls
		inj.DMAFailures += run.Injection.DMAFailures
		inj.DMARetries += run.Injection.DMARetries
	}
	if injected {
		sum.Injection = &inj
	}

	for _, m := range f.machines {
		if m.state == stateDown && sum.MakespanNs > int64(m.downSince) {
			// Still out of service when the run ends: charge the
			// remaining downtime inside the fleet makespan.
			m.stats.DownNs += sum.MakespanNs - int64(m.downSince)
		}
		m.stats.IdleNs = sum.MakespanNs - m.stats.BusyNs - m.stats.DownNs
		if m.stats.IdleNs < 0 {
			// The last epoch's makespan can outrun the final request
			// completion (trailing scheduler idle inside the epoch).
			m.stats.IdleNs = 0
		}
		sum.PerMachine = append(sum.PerMachine, m.stats)
	}

	if cfg.resilienceActive() {
		cs := &metrics.ChaosStats{}
		for _, m := range f.machines {
			cs.Crashes += m.stats.Crashes
			cs.Flaps += m.stats.Flaps
			cs.Brownouts += m.stats.Brownouts
			cs.Rehomed += m.stats.Rehomed
		}
		for _, a := range f.tAccs {
			cs.Timeouts += a.timedOut
			cs.Retries += a.retries
			cs.Hedges += a.hedges
			cs.HedgeWins += a.hedgeWins
			cs.Shed += a.shed
			cs.Failed += a.failed
		}
		sum.Chaos = cs
	}

	return &Result{Summary: sum, Epochs: f.epochs}
}
