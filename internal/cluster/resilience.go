package cluster

// The fleet resilience plane: machine-level chaos (internal/chaos windows
// applied as timed state transitions), and the request-lifecycle reactions
// to it — per-tenant attempt deadlines, deterministic retries with seeded
// jitter, hedged requests, priority-aware load shedding, and deterministic
// re-homing of a crashed or draining machine's queue.
//
// Everything here is inert by construction when the fleet is configured
// without chaos, deadlines, hedging, or shedding: no PRNG streams exist,
// the timer heap stays empty, every machine stays Healthy with health
// exactly 1.0, and the coordinator's event order is byte-identical to the
// pre-resilience fleet.

import (
	"container/heap"

	"itsim/internal/chaos"
	"itsim/internal/obs"
	"itsim/internal/sim"
)

// machState is a fleet machine's serving state.
type machState uint8

const (
	// stateHealthy serves normally.
	stateHealthy machState = iota
	// stateDegraded serves through a brownout window: epochs started now
	// run BrownMult slower.
	stateDegraded
	// stateDraining is a graceful leave in progress: the in-flight epoch
	// finishes, nothing new is accepted, the queue has been re-homed.
	stateDraining
	// stateDown is out of service (crashed or flapped off).
	stateDown
	// stateRejoining serves cache-cold after downtime: epochs started now
	// run WarmMult slower.
	stateRejoining
)

// eligible reports whether the machine may accept new requests and start
// epochs.
func (m *machineState) eligible() bool {
	return m.state == stateHealthy || m.state == stateDegraded || m.state == stateRejoining
}

// currentMult is the makespan multiplier an epoch started in the machine's
// present state runs under.
func (f *fleet) currentMult(m *machineState) float64 {
	switch m.state {
	case stateDegraded:
		return f.chaosCfg.BrownMult
	case stateRejoining:
		return f.chaosCfg.WarmMult
	}
	return 1
}

// scaleTime applies a makespan multiplier to a virtual duration; mult 1
// returns t unchanged so un-degraded epochs take the historical code path
// exactly.
func scaleTime(t sim.Time, mult float64) sim.Time {
	if mult == 1 {
		return t
	}
	return sim.Time(float64(t) * mult)
}

// Health-score EWMA parameters. Chaos-free fleets sample 1.0 forever and
// the score stays exactly 1.0 (0.8 + 0.2 == 1.0 in IEEE doubles).
const (
	healthDecay        = 0.8
	healthTimeoutMult  = 0.7
	healthCrashMult    = 0.25
	healthRejoinScore  = 0.5
	healthInitialScore = 1.0
)

// retryJitterTweak decorrelates retry-backoff jitter from the request's
// trace seed.
const retryJitterTweak = 0x72657472795f6a74 // "retry_jt"

// mix64 is the splitmix64 finalizer: the jitter hash off the per-request
// seed tree.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// attempt is one dispatch of a request onto a machine: the primary, a
// retry, or a hedged duplicate. The machine queues hold attempts.
type attempt struct {
	req   *request
	hedge bool
	// machine is the queue the attempt currently sits in (or ran on); -1
	// while parked before any placement.
	machine   int
	running   bool
	finished  bool
	cancelled bool
}

// tenantAcc accumulates one tenant's resilience counters over a run.
type tenantAcc struct {
	timedOut  uint64
	retries   uint64
	hedges    uint64
	hedgeWins uint64
	shed      uint64
	failed    uint64
}

// timerKind discriminates the coordinator's deadline timers.
type timerKind uint8

const (
	timerTimeout timerKind = iota
	timerRetry
	timerHedge
)

// timer is one pending lifecycle deadline. seq breaks same-instant ties in
// creation order, keeping the heap's pop order deterministic.
type timer struct {
	at   sim.Time
	seq  uint64
	kind timerKind
	a    *attempt // timerTimeout
	r    *request // timerRetry / timerHedge
	d    sim.Time // deadline, backoff delay, or hedge delay (event Dur)
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// schedule pushes a lifecycle timer.
func (f *fleet) schedule(t *timer) {
	t.seq = f.timerSeq
	f.timerSeq++
	heap.Push(&f.timers, t)
}

// nextTimer peeks the earliest pending timer instant.
func (f *fleet) nextTimer() sim.Time {
	if len(f.timers) == 0 {
		return never
	}
	return f.timers[0].at
}

// nextChaos is the earliest pending machine-state instant: a timed state
// ending or a chaos window starting.
func (f *fleet) nextChaos() sim.Time {
	t := never
	for _, m := range f.machines {
		if m.stateUntil < t {
			t = m.stateUntil
		}
		if m.sched != nil {
			if n := m.sched.Next(); n < t {
				t = n
			}
		}
	}
	return t
}

// anyEligible reports whether some machine can accept requests.
func (f *fleet) anyEligible() bool {
	for _, m := range f.machines {
		if m.eligible() {
			return true
		}
	}
	return false
}

// queuedTotal is the fleet-wide admission-control queue depth.
func (f *fleet) queuedTotal() int {
	n := len(f.parked)
	for _, m := range f.machines {
		n += len(m.queue)
	}
	return n
}

// place routes an attempt onto a machine queue (or parks it while no
// machine is eligible), emitting EvRequestRoute for every queue insertion
// — re-homed attempts included, so a trace shows each hop.
func (f *fleet) place(a *attempt, now sim.Time) {
	if !f.anyEligible() {
		a.machine = -1
		f.parked = append(f.parked, a)
		return
	}
	for i, m := range f.machines {
		f.loads[i] = Load{ID: m.id, Queued: len(m.queue), Running: len(m.running),
			Health: m.health, Eligible: m.eligible()}
	}
	pick := f.router.Pick(a.req.tenant, f.loads)
	if pick < 0 || pick >= len(f.machines) || !f.machines[pick].eligible() {
		// Defensive: a router returning an out-of-range or ineligible
		// machine falls back to the first eligible one.
		for _, m := range f.machines {
			if m.eligible() {
				pick = m.id
				break
			}
		}
	}
	a.machine = pick
	a.req.machine = pick
	f.machines[pick].queue = append(f.machines[pick].queue, a)
	if f.want(obs.EvRequestRoute) {
		f.emit(obs.Event{Time: now, Type: obs.EvRequestRoute, PID: -1,
			Core: pick, Value: int64(a.req.id), Cause: f.cfg.Tenants[a.req.tenant].Name})
	}
}

// dispatchParked re-places parked attempts once a machine is eligible
// again, in park order.
func (f *fleet) dispatchParked(now sim.Time) {
	if len(f.parked) == 0 || !f.anyEligible() {
		return
	}
	ps := f.parked
	f.parked = nil
	for _, a := range ps {
		if a.cancelled || a.req.resolved {
			continue
		}
		f.place(a, now)
	}
}

// removeQueued deletes a cancelled attempt from wherever it waits.
func (f *fleet) removeQueued(a *attempt) {
	if a.machine >= 0 {
		q := f.machines[a.machine].queue
		for i, qa := range q {
			if qa == a {
				f.machines[a.machine].queue = append(q[:i], q[i+1:]...)
				return
			}
		}
		return
	}
	for i, pa := range f.parked {
		if pa == a {
			f.parked = append(f.parked[:i], f.parked[i+1:]...)
			return
		}
	}
}

// dispatch creates and places a new attempt for r, arming its deadline
// timer.
func (f *fleet) dispatch(r *request, hedge bool, now sim.Time) {
	a := &attempt{req: r, hedge: hedge, machine: -1}
	r.attempts = append(r.attempts, a)
	r.live++
	if !hedge {
		r.dispatches++
	}
	f.place(a, now)
	if d := f.cfg.Tenants[r.tenant].Deadline; d > 0 {
		f.schedule(&timer{at: now + d, kind: timerTimeout, a: a, d: d})
	}
}

// resolve marks r's lifecycle over and cancels any other live attempts.
func (f *fleet) resolve(r *request, winner *attempt) {
	r.resolved = true
	r.live = 0
	f.resolved++
	for _, a := range r.attempts {
		if a == winner || a.finished || a.cancelled {
			continue
		}
		a.cancelled = true
		if !a.running {
			f.removeQueued(a)
		}
	}
}

// stepChaos applies every machine-state transition pending at now, in
// machine-id order; per machine, timed state endings fire before new
// chaos windows.
func (f *fleet) stepChaos(now sim.Time) {
	for _, m := range f.machines {
		if m.stateUntil == now {
			f.endState(m, now)
		}
		if m.sched == nil {
			continue
		}
		for m.sched.Crash.Peek() == now {
			f.applyCrash(m, now)
			m.sched.Crash.Advance()
		}
		for m.sched.Flap.Peek() == now {
			f.applyFlap(m, now)
			m.sched.Flap.Advance()
		}
		for m.sched.Brown.Peek() == now {
			f.applyBrown(m, now)
			m.sched.Brown.Advance()
		}
	}
}

// endState finishes the machine's timed state window.
func (f *fleet) endState(m *machineState, now sim.Time) {
	switch m.state {
	case stateDown:
		m.stats.DownNs += int64(now - m.downSince)
		m.state = stateRejoining
		m.stateUntil = now + f.chaosCfg.Warm
		m.health = healthRejoinScore
		if f.want(obs.EvMachineUp) {
			f.emit(obs.Event{Time: now, Type: obs.EvMachineUp, PID: -1, Core: m.id, Cause: "rejoin"})
		}
	case stateRejoining:
		m.state = stateHealthy
		m.stateUntil = never
	case stateDegraded:
		m.state = stateHealthy
		m.stateUntil = never
		if f.want(obs.EvMachineUp) {
			f.emit(obs.Event{Time: now, Type: obs.EvMachineUp, PID: -1, Core: m.id, Cause: "brownout-end"})
		}
	default:
		// Healthy/Draining machines carry no timed window.
		m.stateUntil = never
	}
}

// applyCrash hard-kills the machine: the in-flight epoch is aborted (its
// attempts re-home, the machine keeps only the busy time it truly spent),
// the queue re-homes, and the machine is Down for CrashDown. A window
// landing on an already-Down machine is dropped.
func (f *fleet) applyCrash(m *machineState, now sim.Time) {
	if m.state == stateDown {
		return
	}
	m.stats.Crashes++
	m.health *= healthCrashMult
	if f.want(obs.EvMachineDown) {
		f.emit(obs.Event{Time: now, Type: obs.EvMachineDown, PID: -1, Core: m.id,
			Dur: f.chaosCfg.CrashDown, Cause: "crash"})
	}
	var rehome []*attempt
	if m.running != nil {
		m.stats.BusyNs += int64(now - m.epochStart)
		for _, a := range m.running {
			a.running = false
			if a.cancelled || a.finished || a.req.resolved {
				continue
			}
			rehome = append(rehome, a)
		}
		m.running, m.epochRun = nil, nil
	}
	rehome = append(rehome, m.queue...)
	m.queue = nil
	m.state = stateDown
	m.stateUntil = now + f.chaosCfg.CrashDown
	m.downSince = now
	m.stats.Rehomed += uint64(len(rehome))
	for _, a := range rehome {
		f.place(a, now)
	}
}

// applyFlap starts a graceful leave: the queue re-homes immediately, the
// in-flight epoch (if any) finishes before the machine goes Down. Windows
// landing on a machine already Draining, Down, or Rejoining are dropped.
func (f *fleet) applyFlap(m *machineState, now sim.Time) {
	if m.state != stateHealthy && m.state != stateDegraded {
		return
	}
	m.stats.Flaps++
	if f.want(obs.EvMachineDrain) {
		f.emit(obs.Event{Time: now, Type: obs.EvMachineDrain, PID: -1, Core: m.id})
	}
	rehome := m.queue
	m.queue = nil
	m.stats.Rehomed += uint64(len(rehome))
	if m.running == nil {
		f.goDown(m, now, "flap")
	} else {
		m.state = stateDraining
		m.stateUntil = never
	}
	for _, a := range rehome {
		f.place(a, now)
	}
}

// goDown transitions an idle machine into its flap downtime.
func (f *fleet) goDown(m *machineState, now sim.Time, cause string) {
	m.state = stateDown
	m.stateUntil = now + f.chaosCfg.FlapDown
	m.downSince = now
	if f.want(obs.EvMachineDown) {
		f.emit(obs.Event{Time: now, Type: obs.EvMachineDown, PID: -1, Core: m.id,
			Dur: f.chaosCfg.FlapDown, Cause: cause})
	}
}

// applyBrown opens a brownout window: for BrownDur the machine is Degraded
// and epochs it starts run BrownMult slower. Only a Healthy machine
// browns out; windows landing elsewhere are dropped.
func (f *fleet) applyBrown(m *machineState, now sim.Time) {
	if m.state != stateHealthy {
		return
	}
	m.stats.Brownouts++
	m.state = stateDegraded
	m.stateUntil = now + f.chaosCfg.BrownDur
	if f.want(obs.EvMachineDegrade) {
		f.emit(obs.Event{Time: now, Type: obs.EvMachineDegrade, PID: -1, Core: m.id,
			Dur: f.chaosCfg.BrownDur, Value: int64(f.chaosCfg.BrownMult * 1000)})
	}
}

// fireTimers processes every lifecycle timer pending at now, in schedule
// order.
func (f *fleet) fireTimers(now sim.Time) {
	for len(f.timers) > 0 && f.timers[0].at == now {
		t := heap.Pop(&f.timers).(*timer)
		switch t.kind {
		case timerTimeout:
			f.fireTimeout(t, now)
		case timerRetry:
			f.fireRetry(t, now)
		case timerHedge:
			f.fireHedge(t, now)
		}
	}
}

// fireTimeout cancels an attempt that outlived its tenant deadline, then
// retries the request (after seeded backoff) or fails it.
func (f *fleet) fireTimeout(t *timer, now sim.Time) {
	a := t.a
	r := a.req
	if a.cancelled || a.finished || r.resolved {
		return
	}
	spec := &f.cfg.Tenants[r.tenant]
	f.tAccs[r.tenant].timedOut++
	if f.want(obs.EvReqTimeout) {
		f.emit(obs.Event{Time: now, Type: obs.EvReqTimeout, PID: -1, Core: a.machine,
			Value: int64(r.id), Dur: t.d, Cause: spec.Name})
	}
	a.cancelled = true
	if a.machine >= 0 {
		f.machines[a.machine].health *= healthTimeoutMult
	}
	if !a.running {
		f.removeQueued(a)
	}
	r.live--
	if r.live > 0 {
		return // a hedge (or the primary) is still in flight
	}
	if r.dispatches < 1+spec.Retries {
		// Capped exponential backoff with seeded jitter off the request's
		// seed-tree position: deterministic, and decorrelated between
		// requests and between retry rounds.
		base := spec.Deadline / 4
		if base < sim.Microsecond {
			base = sim.Microsecond
		}
		idx := r.dispatches - 1
		if idx > 4 {
			idx = 4
		}
		backoff := base << idx
		seed := requestSeed(spec.baseSeed(r.tenant, f.cfg.Seed), r.seq)
		jitter := sim.Time(mix64(seed^retryJitterTweak^uint64(r.dispatches)*requestSeedMix) % uint64(base/2+1))
		delay := backoff + jitter
		f.schedule(&timer{at: now + delay, kind: timerRetry, r: r, d: delay})
		return
	}
	r.failed = true
	f.tAccs[r.tenant].failed++
	f.resolve(r, nil)
}

// fireRetry re-submits a timed-out request.
func (f *fleet) fireRetry(t *timer, now sim.Time) {
	r := t.r
	if r.resolved {
		return
	}
	spec := &f.cfg.Tenants[r.tenant]
	f.tAccs[r.tenant].retries++
	if f.want(obs.EvReqRetry) {
		f.emit(obs.Event{Time: now, Type: obs.EvReqRetry, PID: -1,
			Value: int64(r.id), Dur: t.d, Cause: spec.Name})
	}
	f.dispatch(r, false, now)
}

// fireHedge dispatches the hedged duplicate if the request is still
// waiting on its primary.
func (f *fleet) fireHedge(t *timer, now sim.Time) {
	r := t.r
	if r.resolved || r.hedged || r.live == 0 {
		return
	}
	spec := &f.cfg.Tenants[r.tenant]
	r.hedged = true
	f.tAccs[r.tenant].hedges++
	if f.want(obs.EvReqHedge) {
		f.emit(obs.Event{Time: now, Type: obs.EvReqHedge, PID: -1,
			Value: int64(r.id), Dur: t.d, Cause: spec.Name})
	}
	f.dispatch(r, true, now)
}

// admit applies priority-aware load shedding at arrival: when the fleet's
// total queue depth has reached ShedDepth, requests from every tenant
// below the highest configured priority are rejected outright.
func (f *fleet) admit(r *request) bool {
	if f.cfg.ShedDepth <= 0 {
		return true
	}
	if f.queuedTotal() < f.cfg.ShedDepth {
		return true
	}
	if f.cfg.Tenants[r.tenant].Priority >= f.maxPrio {
		return true
	}
	r.shed = true
	f.tAccs[r.tenant].shed++
	f.resolved++
	r.resolved = true
	if f.want(obs.EvReqShed) {
		f.emit(obs.Event{Time: r.arrival, Type: obs.EvReqShed, PID: -1,
			Value: int64(r.id), Cause: f.cfg.Tenants[r.tenant].Name})
	}
	return false
}

// armHedge schedules the request's hedge timer if the tenant hedges and
// its latency tracker has warmed up.
func (f *fleet) armHedge(r *request, now sim.Time) {
	spec := &f.cfg.Tenants[r.tenant]
	if !spec.Hedge {
		return
	}
	tr := f.trackers[r.tenant]
	if tr == nil || !tr.Ready() {
		return
	}
	delay := tr.Quantile(0.99)
	if delay < 1 {
		delay = 1
	}
	f.schedule(&timer{at: now + delay, kind: timerHedge, r: r, d: delay})
}

// chaosSchedules attaches per-machine chaos schedules when chaos is
// enabled; a disabled config leaves sched nil everywhere (byte-inert).
func (f *fleet) chaosSchedules() {
	if !f.cfg.Chaos.Enabled() {
		f.chaosCfg = chaos.New(chaos.Config{}).Config()
		return
	}
	inj := chaos.New(f.cfg.Chaos)
	f.chaosCfg = inj.Config()
	for _, m := range f.machines {
		m.sched = inj.Machine(m.id)
	}
}

// resilienceActive reports whether any resilience feature is configured —
// the gate for emitting FleetSummary.Chaos.
func (c *Config) resilienceActive() bool {
	if c.Chaos.Enabled() || c.ShedDepth > 0 {
		return true
	}
	for _, t := range c.Tenants {
		if t.Deadline > 0 || t.Hedge {
			return true
		}
	}
	return false
}
