package cluster

import (
	"encoding/json"
	"testing"

	"itsim/internal/chaos"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/workload"
)

// chaoticFleetConfig is the reference chaotic fleet: all three chaos axes
// live, deadlines + retries on the high-priority tenant, hedging on the
// low-priority one.
func chaoticFleetConfig(seed uint64, routing string) Config {
	return Config{
		Machines: 3,
		Slots:    2,
		Policy:   policy.ITS,
		Routing:  routing,
		Seed:     seed,
		Scale:    0.5,
		// Runs last tens of virtual milliseconds; rates are events per
		// virtual second per machine, so these land a handful of windows
		// per run without starving epochs of the time to finish.
		Chaos: chaos.Config{
			Seed:      9,
			CrashRate: 40,
			BrownRate: 60,
			FlapRate:  25,
		},
		Tenants: []TenantSpec{
			{Name: "alpha", Bench: workload.Caffe, Requests: 6, Priority: 3,
				Rate: 200_000, Pattern: workload.Diurnal, Period: 2 * sim.Millisecond, Amp: 0.6,
				SLO: 100 * sim.Millisecond, Deadline: 5 * sim.Millisecond, Retries: 2},
			{Name: "beta", Bench: workload.RandomWalk, Requests: 5, Priority: 1,
				Rate: 150_000, Pattern: workload.Bursty, Period: sim.Millisecond, Amp: 0.8,
				Hedge: true},
		},
	}
}

// TestChaoticFleetDeterminism: same seeds ⇒ byte-identical summaries even
// with crashes, re-homing, timeouts and retries in the loop; changing the
// chaos seed alone must change the outcome.
func TestChaoticFleetDeterminism(t *testing.T) {
	runJSON := func(chaosSeed uint64) string {
		cfg := chaoticFleetConfig(7, HealthAware)
		cfg.Chaos.Seed = chaosSeed
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("chaotic fleet run: %v", err)
		}
		b, err := json.Marshal(res.Summary)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := runJSON(9), runJSON(9)
	if a != b {
		t.Errorf("identically-seeded chaotic runs differ:\n%s\n%s", a, b)
	}
	if c := runJSON(10); c == a {
		t.Errorf("chaos seed change produced an identical summary")
	}
}

// TestZeroChaosByteInert: a chaos config whose rates are all zero must
// produce byte-identical output to no chaos config at all, even with
// non-zero duration/multiplier knobs set — zero-rate axes draw nothing.
func TestZeroChaosByteInert(t *testing.T) {
	runJSON := func(mutate func(*Config)) string {
		cfg := faultyFleetConfig(7)
		mutate(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Summary)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base := runJSON(func(*Config) {})
	inert := runJSON(func(c *Config) {
		c.Chaos = chaos.Config{Seed: 123, CrashDown: sim.Millisecond,
			Warm: sim.Millisecond, WarmMult: 3, BrownDur: sim.Millisecond,
			BrownMult: 5, FlapDown: sim.Millisecond}
	})
	if base != inert {
		t.Errorf("zero-rate chaos config perturbed the fleet summary:\n%s\n%s", base, inert)
	}
}

// TestRequestConservationUnderChaos: under any chaos schedule, every
// submitted request resolves exactly once — completed, shed, or failed —
// on every routing policy, and the chaos counters reconcile.
func TestRequestConservationUnderChaos(t *testing.T) {
	for _, routing := range RouterNames() {
		cfg := chaoticFleetConfig(1, routing)
		cfg.ShedDepth = 8
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", routing, err)
		}
		s := res.Summary
		if s.Chaos == nil {
			t.Fatalf("%s: chaotic run reported no chaos stats", routing)
		}
		var shed, failed, completed, submitted uint64
		for _, ts := range s.Tenants {
			submitted += ts.Requests
			completed += ts.Completed
			shed += ts.Shed
			failed += ts.Failed
		}
		if submitted != s.Requests || completed != s.Completed {
			t.Errorf("%s: tenant sums %d/%d disagree with fleet totals %d/%d",
				routing, submitted, completed, s.Requests, s.Completed)
		}
		if completed+shed+failed != submitted {
			t.Errorf("%s: completed %d + shed %d + failed %d != submitted %d",
				routing, completed, shed, failed, submitted)
		}
		if s.Chaos.Shed != shed || s.Chaos.Failed != failed {
			t.Errorf("%s: fleet chaos stats shed/failed %d/%d disagree with tenant sums %d/%d",
				routing, s.Chaos.Shed, s.Chaos.Failed, shed, failed)
		}
		// Machine time must reconcile: busy + idle + down == makespan per
		// machine (idle is derived and clamped at zero only when the last
		// epoch outran the final completion).
		for _, m := range s.PerMachine {
			total := m.BusyNs + m.IdleNs + m.DownNs
			if m.IdleNs > 0 && total != s.MakespanNs {
				t.Errorf("%s: machine %d busy+idle+down = %d, want makespan %d",
					routing, m.ID, total, s.MakespanNs)
			}
		}
	}
}

// TestCrashRehoming: a crash-only schedule must actually hit, re-home
// queued work, and still complete every request (deadlines generous, so
// nothing fails).
func TestCrashRehoming(t *testing.T) {
	cfg := chaoticFleetConfig(3, HealthAware)
	cfg.Chaos = chaos.Config{Seed: 5, CrashRate: 150}
	cfg.Tenants[0].Deadline = 0
	cfg.Tenants[0].Retries = 0
	cfg.Tenants[1].Hedge = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Chaos == nil || s.Chaos.Crashes == 0 {
		t.Fatalf("crash-heavy schedule delivered no crashes: %+v", s.Chaos)
	}
	if s.Chaos.Flaps != 0 || s.Chaos.Brownouts != 0 {
		t.Errorf("crash-only schedule delivered flaps=%d brownouts=%d",
			s.Chaos.Flaps, s.Chaos.Brownouts)
	}
	if s.Completed != s.Requests {
		t.Errorf("completed %d of %d despite no deadlines", s.Completed, s.Requests)
	}
	var down int64
	for _, m := range s.PerMachine {
		down += m.DownNs
	}
	if down == 0 {
		t.Errorf("crashes reported but no machine accumulated downtime")
	}
}

// TestDeadlineExhaustionFails: with a deadline far below the service time
// every attempt times out and, once retries are spent, the request fails.
func TestDeadlineExhaustionFails(t *testing.T) {
	cfg := Config{
		Machines: 1,
		Slots:    2,
		Policy:   policy.Sync,
		Scale:    0.5,
		Tenants: []TenantSpec{
			{Name: "doomed", Bench: workload.Caffe, Requests: 3, Priority: 1,
				Deadline: sim.Microsecond, Retries: 1},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	ts := s.Tenants[0]
	if ts.Failed != 3 || s.Completed != 0 {
		t.Errorf("failed/completed = %d/%d, want 3/0", ts.Failed, s.Completed)
	}
	// Each request: primary + one retry, both timing out.
	if ts.Retries != 3 {
		t.Errorf("retries = %d, want 3 (one per request)", ts.Retries)
	}
	if ts.TimedOut != 6 {
		t.Errorf("timeouts = %d, want 6 (two per request)", ts.TimedOut)
	}
	if ts.DeadlineNs != int64(sim.Microsecond) {
		t.Errorf("deadline_ns = %d, want %d", ts.DeadlineNs, sim.Microsecond)
	}
}

// TestHedgingDispatchesAndWins: with one slot per epoch and many queued
// requests, later requests outlive the warmed-up p99 estimate and hedge;
// hedged duplicates must never double-complete a request.
func TestHedgingDispatchesAndWins(t *testing.T) {
	cfg := Config{
		Machines: 2,
		Slots:    1,
		Policy:   policy.Sync,
		Routing:  LeastLoaded,
		Scale:    0.5,
		Tenants: []TenantSpec{
			// Arrivals (every 0.5ms) outpace service (~1.6ms/epoch), so
			// the queue — and with it end-to-end latency — grows steadily:
			// once the p99 window warms up, later requests outlive it and
			// hedge. Much faster arrival rates land every request before
			// the tracker has its eight warm-up samples and never hedge.
			{Name: "hedger", Bench: workload.RandomWalk, Requests: 40, Priority: 1,
				Rate: 2000, Hedge: true},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	ts := s.Tenants[0]
	if ts.Hedges == 0 {
		t.Fatalf("no hedges dispatched under sustained queueing")
	}
	if s.Completed != s.Requests {
		t.Errorf("completed %d of %d: hedging must not lose requests", s.Completed, s.Requests)
	}
	if ts.HedgeWins > ts.Hedges {
		t.Errorf("hedge wins %d exceed hedges %d", ts.HedgeWins, ts.Hedges)
	}
}

// TestPriorityShedding: at ShedDepth the low-priority tenant is rejected,
// the top-priority tenant never is.
func TestPriorityShedding(t *testing.T) {
	cfg := Config{
		Machines:  1,
		Slots:     1,
		Policy:    policy.Sync,
		Scale:     0.5,
		ShedDepth: 2,
		Tenants: []TenantSpec{
			{Name: "gold", Bench: workload.Caffe, Requests: 6, Priority: 5},
			{Name: "bronze", Bench: workload.RandomWalk, Requests: 6, Priority: 1},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	gold, bronze := s.Tenants[0], s.Tenants[1]
	if gold.Shed != 0 {
		t.Errorf("top-priority tenant shed %d requests", gold.Shed)
	}
	if bronze.Shed == 0 {
		t.Errorf("low-priority tenant shed nothing at depth %d with a 12-request burst", cfg.ShedDepth)
	}
	if gold.Completed != gold.Requests {
		t.Errorf("gold completed %d of %d", gold.Completed, gold.Requests)
	}
	if bronze.Completed+bronze.Shed != bronze.Requests {
		t.Errorf("bronze completed %d + shed %d != %d", bronze.Completed, bronze.Shed, bronze.Requests)
	}
	if s.Chaos == nil || s.Chaos.Shed != bronze.Shed {
		t.Errorf("fleet chaos stats missing shed accounting: %+v", s.Chaos)
	}
}

// TestBrownoutInflatesLatency: a brownout-only schedule keeps every
// machine serving but slower; everything completes, brownouts register,
// and no downtime accrues.
func TestBrownoutInflatesLatency(t *testing.T) {
	cfg := chaoticFleetConfig(2, RoundRobin)
	cfg.Chaos = chaos.Config{Seed: 11, BrownRate: 200, BrownDur: sim.Millisecond, BrownMult: 8}
	cfg.Tenants[0].Deadline = 0
	cfg.Tenants[0].Retries = 0
	cfg.Tenants[1].Hedge = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Chaos == nil || s.Chaos.Brownouts == 0 {
		t.Fatalf("brownout-heavy schedule delivered no brownouts")
	}
	if s.Completed != s.Requests {
		t.Errorf("completed %d of %d under brownouts", s.Completed, s.Requests)
	}
	for _, m := range s.PerMachine {
		if m.DownNs != 0 {
			t.Errorf("machine %d accumulated downtime %d under brownouts only", m.ID, m.DownNs)
		}
	}
}

// TestFlapDrainsGracefully: a flap-only schedule must complete everything
// (graceful drains finish their in-flight epoch) while registering flaps
// and downtime.
func TestFlapDrainsGracefully(t *testing.T) {
	cfg := chaoticFleetConfig(4, LeastLoaded)
	cfg.Chaos = chaos.Config{Seed: 13, FlapRate: 150}
	cfg.Tenants[0].Deadline = 0
	cfg.Tenants[0].Retries = 0
	cfg.Tenants[1].Hedge = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Chaos == nil || s.Chaos.Flaps == 0 {
		t.Fatalf("flap-heavy schedule delivered no flaps")
	}
	if s.Completed != s.Requests {
		t.Errorf("completed %d of %d under flapping", s.Completed, s.Requests)
	}
	if s.Chaos.Crashes != 0 {
		t.Errorf("flap-only schedule delivered %d crashes", s.Chaos.Crashes)
	}
}
