// Package mem models main memory: a fixed pool of physical page frames with
// a pluggable replacement policy (CLOCK by default, true-LRU for ablations)
// and the 50 ns access latency of the paper's §4.1 configuration.
//
// DRAM capacity is the experiment's pressure knob: the paper sizes DRAM "to
// match the working set", and memory contention between processes is what
// produces the page-fault cascade the ITS self-sacrificing thread dampens.
package mem

import (
	"fmt"

	"itsim/internal/sim"
)

// AccessLatency is the DRAM access latency (paper §4.1, [3]).
const AccessLatency = 50 * sim.Nanosecond

// FrameID indexes a physical page frame.
type FrameID uint32

// NoFrame is the sentinel invalid frame.
const NoFrame = FrameID(^uint32(0))

// Frame is the metadata of one physical page frame (a struct page analogue).
type Frame struct {
	// Owner is the process id the frame belongs to (-1 when free).
	Owner int
	// VA is the page-aligned virtual address mapped to this frame.
	VA uint64
	// Referenced is the CLOCK reference bit, set on access.
	Referenced bool
	// Dirty means the frame must be written back before reuse.
	Dirty bool
	// Pinned frames are ineligible for eviction (page under DMA).
	Pinned bool
	// Prefetched marks frames filled by a prefetcher and not yet touched
	// by real execution; used for prefetch-accuracy metrics and as a
	// cheap-to-reclaim class.
	Prefetched bool
	// InUse distinguishes allocated frames from free ones.
	InUse bool
}

// Stats counts frame-pool activity.
type Stats struct {
	Allocations uint64
	Evictions   uint64
	Writebacks  uint64 // dirty victims that required write-back
	Frees       uint64
	ClockSweeps uint64 // frames examined by the victim scan
}

// ReplacementKind selects the victim-selection policy.
type ReplacementKind int

const (
	// ReplaceClock is the Linux-style CLOCK (second chance) policy.
	ReplaceClock ReplacementKind = iota
	// ReplaceLRU is true-LRU, for ablation comparisons.
	ReplaceLRU
)

// String names the policy.
func (k ReplacementKind) String() string {
	if k == ReplaceLRU {
		return "lru"
	}
	return "clock"
}

// DRAM is the physical memory pool.
type DRAM struct {
	frames []Frame
	free   []FrameID
	kind   ReplacementKind
	// CLOCK state.
	hand int
	// LRU state: tick per frame; larger = more recent.
	lruTick []uint64
	tick    uint64
	stats   Stats
}

// NewDRAM creates a pool of frames using the given replacement policy.
func NewDRAM(frames int, kind ReplacementKind) *DRAM {
	if frames <= 0 {
		panic(fmt.Sprintf("mem: non-positive frame count %d", frames))
	}
	d := &DRAM{
		frames:  make([]Frame, frames),
		free:    make([]FrameID, 0, frames),
		kind:    kind,
		lruTick: make([]uint64, frames),
	}
	for i := frames - 1; i >= 0; i-- {
		d.frames[i].Owner = -1
		d.free = append(d.free, FrameID(i))
	}
	return d
}

// Capacity returns the total number of frames.
func (d *DRAM) Capacity() int { return len(d.frames) }

// FreeFrames returns the number of unallocated frames.
func (d *DRAM) FreeFrames() int { return len(d.free) }

// InUseFrames returns the number of allocated frames.
func (d *DRAM) InUseFrames() int { return len(d.frames) - len(d.free) }

// Stats returns a copy of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// Frame returns a pointer to the frame's metadata. The pointer stays valid
// for the lifetime of the DRAM.
func (d *DRAM) Frame(id FrameID) *Frame {
	return &d.frames[id]
}

// HasFree reports whether an allocation would succeed without eviction.
func (d *DRAM) HasFree() bool { return len(d.free) > 0 }

// Allocate takes a free frame for (owner, va). It returns NoFrame and false
// when the pool is exhausted; the caller must then evict via PickVictim +
// Release first. Newly allocated frames start Referenced (just-faulted pages
// are hot) unless prefetched is true.
func (d *DRAM) Allocate(owner int, va uint64, prefetched bool) (FrameID, bool) {
	if len(d.free) == 0 {
		return NoFrame, false
	}
	id := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	f := &d.frames[id]
	*f = Frame{
		Owner:      owner,
		VA:         va,
		Referenced: !prefetched,
		Prefetched: prefetched,
		InUse:      true,
	}
	d.stats.Allocations++
	d.touchPolicy(id, prefetched)
	return id, true
}

func (d *DRAM) touchPolicy(id FrameID, prefetched bool) {
	d.tick++
	if prefetched {
		// Prefetched-not-yet-used frames age as if old, so a wrong
		// prefetch is the first thing reclaimed.
		d.lruTick[id] = 0
		return
	}
	d.lruTick[id] = d.tick
}

// Touch records an access to an allocated frame: sets the reference bit,
// refreshes LRU recency, and clears the Prefetched mark. It reports whether
// this was the first touch of a prefetched frame (a swap-cache hit — the
// prefetch was useful, and in Linux terms the access is a minor fault).
func (d *DRAM) Touch(id FrameID, write bool) (firstPrefetchedTouch bool) {
	f := &d.frames[id]
	firstPrefetchedTouch = f.Prefetched
	f.Referenced = true
	f.Prefetched = false
	if write {
		f.Dirty = true
	}
	if d.kind == ReplaceLRU {
		// CLOCK never reads the recency ticks, and Touch runs once per
		// simulated memory access — keep the bookkeeping policy-gated.
		d.tick++
		d.lruTick[id] = d.tick
	}
	return firstPrefetchedTouch
}

// Pin marks a frame ineligible for eviction (page under DMA transfer).
func (d *DRAM) Pin(id FrameID) { d.frames[id].Pinned = true }

// Unpin clears the pin.
func (d *DRAM) Unpin(id FrameID) { d.frames[id].Pinned = false }

// PickVictim selects an in-use, unpinned frame for eviction according to the
// replacement policy, or NoFrame when every frame is pinned or free. The
// frame is NOT released; the caller inspects it (write-back, PTE update) and
// then calls Release.
func (d *DRAM) PickVictim() FrameID {
	switch d.kind {
	case ReplaceLRU:
		return d.pickLRU()
	default:
		return d.pickClock()
	}
}

func (d *DRAM) pickClock() FrameID {
	n := len(d.frames)
	// Two full sweeps guarantee termination: the first pass may clear all
	// reference bits, the second then finds a victim (unless all pinned).
	for pass := 0; pass < 2*n; pass++ {
		id := FrameID(d.hand)
		d.hand = (d.hand + 1) % n
		f := &d.frames[id]
		d.stats.ClockSweeps++
		if !f.InUse || f.Pinned {
			continue
		}
		if f.Referenced {
			f.Referenced = false // second chance
			continue
		}
		return id
	}
	return NoFrame
}

func (d *DRAM) pickLRU() FrameID {
	best := NoFrame
	var bestTick uint64 = ^uint64(0)
	for i := range d.frames {
		f := &d.frames[i]
		if !f.InUse || f.Pinned {
			continue
		}
		if d.lruTick[i] < bestTick {
			bestTick = d.lruTick[i]
			best = FrameID(i)
		}
	}
	return best
}

// Release frees a frame back to the pool, counting an eviction (and a
// write-back if it was dirty) when evicted is true.
func (d *DRAM) Release(id FrameID, evicted bool) {
	f := &d.frames[id]
	if !f.InUse {
		panic(fmt.Sprintf("mem: double free of frame %d", id))
	}
	if evicted {
		d.stats.Evictions++
		if f.Dirty {
			d.stats.Writebacks++
		}
	} else {
		d.stats.Frees++
	}
	*f = Frame{Owner: -1}
	d.free = append(d.free, id)
}

// OwnedFrames returns how many in-use frames belong to owner. O(capacity);
// used by metrics snapshots, not the hot path.
func (d *DRAM) OwnedFrames(owner int) int {
	n := 0
	for i := range d.frames {
		if d.frames[i].InUse && d.frames[i].Owner == owner {
			n++
		}
	}
	return n
}
