package mem

import (
	"testing"
	"testing/quick"
)

func TestNewDRAM(t *testing.T) {
	d := NewDRAM(16, ReplaceClock)
	if d.Capacity() != 16 || d.FreeFrames() != 16 || d.InUseFrames() != 0 {
		t.Fatalf("fresh pool: cap=%d free=%d inuse=%d", d.Capacity(), d.FreeFrames(), d.InUseFrames())
	}
}

func TestNonPositiveCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDRAM(0) did not panic")
		}
	}()
	NewDRAM(0, ReplaceClock)
}

func TestAllocateAndRelease(t *testing.T) {
	d := NewDRAM(2, ReplaceClock)
	id, ok := d.Allocate(1, 0x1000, false)
	if !ok {
		t.Fatal("allocation failed with free frames")
	}
	f := d.Frame(id)
	if f.Owner != 1 || f.VA != 0x1000 || !f.InUse || !f.Referenced || f.Prefetched {
		t.Fatalf("frame state: %+v", f)
	}
	if _, ok := d.Allocate(1, 0x2000, false); !ok {
		t.Fatal("second allocation failed")
	}
	if _, ok := d.Allocate(1, 0x3000, false); ok {
		t.Fatal("allocation succeeded beyond capacity")
	}
	d.Release(id, false)
	if d.FreeFrames() != 1 {
		t.Fatalf("FreeFrames = %d after Release", d.FreeFrames())
	}
	if _, ok := d.Allocate(2, 0x4000, false); !ok {
		t.Fatal("allocation failed after Release")
	}
}

func TestPrefetchedFrameStartsUnreferenced(t *testing.T) {
	d := NewDRAM(4, ReplaceClock)
	id, _ := d.Allocate(1, 0x1000, true)
	f := d.Frame(id)
	if f.Referenced || !f.Prefetched {
		t.Fatalf("prefetched frame: %+v", f)
	}
	if !d.Touch(id, false) {
		t.Fatal("first touch of prefetched frame not reported")
	}
	if d.Touch(id, false) {
		t.Fatal("second touch still reported as prefetched")
	}
	if f.Prefetched {
		t.Fatal("Prefetched not cleared by Touch")
	}
}

func TestTouchWriteSetsDirty(t *testing.T) {
	d := NewDRAM(4, ReplaceClock)
	id, _ := d.Allocate(1, 0, false)
	d.Touch(id, true)
	if !d.Frame(id).Dirty {
		t.Fatal("write touch did not set Dirty")
	}
}

func TestClockSecondChance(t *testing.T) {
	d := NewDRAM(3, ReplaceClock)
	a, _ := d.Allocate(1, 0x1000, false)
	b, _ := d.Allocate(1, 0x2000, false)
	c, _ := d.Allocate(1, 0x3000, false)
	// All referenced: first sweep clears bits; second sweep picks frame 0.
	v := d.PickVictim()
	if v != a {
		t.Fatalf("victim = %d, want %d (hand order)", v, a)
	}
	// Re-reference b; c and a(bit cleared) are candidates before b.
	d.Touch(b, false)
	d.Release(v, true)
	d2, _ := d.Allocate(2, 0x4000, false)
	_ = d2
	v2 := d.PickVictim()
	if v2 == b {
		t.Fatal("CLOCK evicted a just-referenced frame ahead of unreferenced ones")
	}
	_ = c
}

func TestPinnedFramesNeverVictims(t *testing.T) {
	d := NewDRAM(2, ReplaceClock)
	a, _ := d.Allocate(1, 0x1000, false)
	b, _ := d.Allocate(1, 0x2000, false)
	d.Pin(a)
	for i := 0; i < 10; i++ {
		if v := d.PickVictim(); v != b {
			t.Fatalf("victim = %d, want unpinned %d", v, b)
		}
	}
	d.Pin(b)
	if v := d.PickVictim(); v != NoFrame {
		t.Fatalf("victim = %d with all pinned, want NoFrame", v)
	}
	d.Unpin(a)
	if v := d.PickVictim(); v != a {
		t.Fatalf("victim = %d after Unpin, want %d", v, a)
	}
}

func TestLRUVictim(t *testing.T) {
	d := NewDRAM(3, ReplaceLRU)
	a, _ := d.Allocate(1, 0x1000, false)
	b, _ := d.Allocate(1, 0x2000, false)
	c, _ := d.Allocate(1, 0x3000, false)
	d.Touch(a, false) // a most recent; b is LRU
	if v := d.PickVictim(); v != b {
		t.Fatalf("LRU victim = %d, want %d", v, b)
	}
	_ = c
}

func TestLRUPrefersPrefetchedUnused(t *testing.T) {
	d := NewDRAM(3, ReplaceLRU)
	d.Allocate(1, 0x1000, false)
	p, _ := d.Allocate(1, 0x2000, true) // prefetched, never touched
	d.Allocate(1, 0x3000, false)
	if v := d.PickVictim(); v != p {
		t.Fatalf("LRU victim = %d, want prefetched-unused %d", v, p)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	d := NewDRAM(2, ReplaceClock)
	id, _ := d.Allocate(1, 0, false)
	d.Release(id, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	d.Release(id, false)
}

func TestEvictionStats(t *testing.T) {
	d := NewDRAM(2, ReplaceClock)
	a, _ := d.Allocate(1, 0x1000, false)
	d.Touch(a, true) // dirty
	d.Release(a, true)
	st := d.Stats()
	if st.Evictions != 1 || st.Writebacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	b, _ := d.Allocate(1, 0x2000, false)
	d.Release(b, false)
	st = d.Stats()
	if st.Frees != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOwnedFrames(t *testing.T) {
	d := NewDRAM(8, ReplaceClock)
	for i := 0; i < 3; i++ {
		d.Allocate(1, uint64(i)*4096, false)
	}
	for i := 0; i < 2; i++ {
		d.Allocate(2, uint64(i)*4096, false)
	}
	if d.OwnedFrames(1) != 3 || d.OwnedFrames(2) != 2 || d.OwnedFrames(3) != 0 {
		t.Fatalf("OwnedFrames: %d %d %d", d.OwnedFrames(1), d.OwnedFrames(2), d.OwnedFrames(3))
	}
}

// Property: the pool conserves frames — free + in-use == capacity — under
// arbitrary allocate/evict sequences, and PickVictim never returns a free or
// pinned frame.
func TestConservationProperty(t *testing.T) {
	f := func(ops []uint8, lru bool) bool {
		kind := ReplaceClock
		if lru {
			kind = ReplaceLRU
		}
		d := NewDRAM(8, kind)
		var live []FrameID
		for _, op := range ops {
			switch op % 3 {
			case 0, 1:
				id, ok := d.Allocate(int(op%4), uint64(op)*4096, op%5 == 0)
				if ok {
					live = append(live, id)
				} else {
					v := d.PickVictim()
					if v == NoFrame {
						return false
					}
					if !d.Frame(v).InUse || d.Frame(v).Pinned {
						return false
					}
					d.Release(v, true)
					for i, l := range live {
						if l == v {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			case 2:
				if len(live) > 0 {
					d.Touch(live[int(op)%len(live)], op%2 == 0)
				}
			}
			if d.FreeFrames()+d.InUseFrames() != d.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
