package obs

import (
	"fmt"

	"itsim/internal/sim"
)

// Auditor is a sink that checks the machine's accounting invariants as the
// event stream flows past, instead of letting drift pass silently:
//
//   - virtual time is monotonically non-decreasing within a run;
//   - dispatch/leave events alternate correctly (no double dispatch, no
//     leave without a dispatch);
//   - time conservation: every nanosecond of virtual time is attributed to
//     exactly one of CPU occupancy (dispatch → Preempt/Block/ProcFinish),
//     context switching (EvContextSwitch.Dur) or scheduler idle
//     (EvSchedIdleBegin/End). At every EvDispatch and at EvRunEnd the
//     accounted total must equal the virtual clock — the machine's
//     ΣCPUTime + switch time + scheduler idle == makespan invariant,
//     checked continuously at dispatch granularity rather than once at
//     the end.
//
// A violation records the offending event and is reported through Err();
// internal/machine runs an Auditor on every run and fails the run loudly
// when one fires.
type Auditor struct {
	last       sim.Time
	started    bool
	dispatched bool
	dispatch   sim.Time
	dispatchP  int
	idleOpen   bool
	idleStart  sim.Time
	accounted  sim.Time
	cpuAcc     sim.Time
	switchAcc  sim.Time
	idleAcc    sim.Time
	events     uint64
	violations []Violation
}

// Violation is one failed invariant with the event that exposed it.
type Violation struct {
	Event Event
	Msg   string
}

// String renders the violation with its event context.
func (v Violation) String() string {
	return fmt.Sprintf("%s [event %s t=%v pid=%d va=%#x dur=%v cause=%q]",
		v.Msg, v.Event.Type, v.Event.Time, v.Event.PID, v.Event.VA, v.Event.Dur, v.Event.Cause)
}

// NewAuditor returns an auditor ready to observe a run.
func NewAuditor() *Auditor { return &Auditor{dispatchP: -1} }

// auditTypes are the events the machine must route to the auditor even when
// tracing is otherwise off.
var auditTypes = [NumTypes]bool{
	EvRunBegin:       true,
	EvRunEnd:         true,
	EvDispatch:       true,
	EvPreempt:        true,
	EvBlock:          true,
	EvProcFinish:     true,
	EvContextSwitch:  true,
	EvSchedIdleBegin: true,
	EvSchedIdleEnd:   true,
}

// Wants reports whether the auditor consumes this event type.
func (a *Auditor) Wants(t Type) bool { return a != nil && auditTypes[t] }

func (a *Auditor) fail(ev Event, format string, args ...any) {
	a.violations = append(a.violations, Violation{Event: ev, Msg: fmt.Sprintf(format, args...)})
}

// Write implements Sink.
func (a *Auditor) Write(ev Event) {
	a.events++
	if ev.Type == EvRunBegin {
		// A new run legitimately restarts the virtual clock.
		*a = Auditor{last: ev.Time, started: true, dispatchP: -1,
			events: a.events, violations: a.violations}
		return
	}
	if ev.Time < a.last {
		a.fail(ev, "virtual time went backwards: %v after %v", ev.Time, a.last)
	}
	a.last = ev.Time

	switch ev.Type {
	case EvDispatch:
		if a.dispatched {
			a.fail(ev, "dispatch of pid %d while pid %d still on CPU", ev.PID, a.dispatchP)
		}
		if a.idleOpen {
			a.fail(ev, "dispatch of pid %d inside an open scheduler-idle span", ev.PID)
		}
		if drift := ev.Time - a.accounted; drift != 0 {
			a.fail(ev, "time conservation broken at dispatch: clock %v but accounted %v (drift %v)",
				ev.Time, a.accounted, drift)
			a.accounted = ev.Time // resynchronize so one bug reports once
		}
		a.dispatched = true
		a.dispatch = ev.Time
		a.dispatchP = ev.PID
	case EvPreempt, EvBlock, EvProcFinish:
		if !a.dispatched {
			a.fail(ev, "%s of pid %d with no process on CPU", ev.Type, ev.PID)
			break
		}
		if ev.PID != a.dispatchP {
			a.fail(ev, "%s of pid %d but pid %d was dispatched", ev.Type, ev.PID, a.dispatchP)
		}
		occ := ev.Time - a.dispatch
		if ev.Dur != occ {
			a.fail(ev, "occupancy mismatch: event reports %v on CPU, dispatch span is %v", ev.Dur, occ)
		}
		a.accounted += occ
		a.cpuAcc += occ
		a.dispatched = false
		a.dispatchP = -1
	case EvContextSwitch:
		if a.dispatched {
			a.fail(ev, "context switch charged while pid %d is on CPU", a.dispatchP)
		}
		a.accounted += ev.Dur
		a.switchAcc += ev.Dur
	case EvSchedIdleBegin:
		if a.idleOpen {
			a.fail(ev, "scheduler-idle begin inside an open idle span")
		}
		if a.dispatched {
			a.fail(ev, "scheduler idle while pid %d is on CPU", a.dispatchP)
		}
		a.idleOpen = true
		a.idleStart = ev.Time
	case EvSchedIdleEnd:
		if !a.idleOpen {
			a.fail(ev, "scheduler-idle end without begin")
			break
		}
		a.accounted += ev.Time - a.idleStart
		a.idleAcc += ev.Time - a.idleStart
		a.idleOpen = false
	case EvRunEnd:
		if a.dispatched {
			a.fail(ev, "run ended with pid %d still on CPU", a.dispatchP)
		}
		if a.idleOpen {
			a.fail(ev, "run ended inside an open scheduler-idle span")
		}
		if drift := ev.Time - a.accounted; drift != 0 {
			a.fail(ev, "time conservation broken at run end: makespan %v but accounted %v (drift %v)",
				ev.Time, a.accounted, drift)
		}
		a.started = false
	default:
		// The auditor checks only the conservation-bearing events
		// (dispatch/occupancy/switch/idle); everything else — prefetch,
		// swap, fault-injection, gauges — carries no CPU-time accounting
		// and is deliberately ignored. The explicit default keeps the
		// eventsink exhaustiveness lint honest: adding an event kind
		// that SHOULD be audited means adding a case above, not relying
		// on silent fallthrough.
	}
}

// Close implements Sink; it returns the audit verdict like Err.
func (a *Auditor) Close() error { return a.Err() }

// Events returns how many events the auditor has observed.
func (a *Auditor) Events() uint64 { return a.events }

// Accounted returns the virtual time attributed so far.
func (a *Auditor) Accounted() sim.Time { return a.accounted }

// Folded returns the attributed time split by category — CPU occupancy
// (dispatch spans), context switching, and scheduler idle. On a clean run
// the three sum to Accounted(); the machine cross-checks them against the
// per-core conservation ledger at run end so trace replays (internal/replay)
// reconcile with metrics by construction, not by coincidence.
func (a *Auditor) Folded() (cpu, sw, idle sim.Time) {
	if a == nil {
		return 0, 0, 0
	}
	return a.cpuAcc, a.switchAcc, a.idleAcc
}

// Violations returns every recorded violation.
func (a *Auditor) Violations() []Violation { return a.violations }

// Err summarizes the violations as an error, or nil when every invariant
// held.
func (a *Auditor) Err() error {
	if a == nil || len(a.violations) == 0 {
		return nil
	}
	return fmt.Errorf("obs: %d invariant violation(s); first: %s", len(a.violations), a.violations[0])
}
