package obs

import (
	"fmt"
	"os"
)

// fileSink pairs a serializing sink with the file it writes, so Close
// flushes the trace and releases the descriptor.
type fileSink struct {
	Sink
	f *os.File
}

func (s fileSink) Close() error {
	err := s.Sink.Close()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenFileSink creates path and returns a sink serializing in the given
// format: "chrome" (Chrome trace-event JSON, Perfetto-loadable) or "jsonl"
// (one JSON object per line). Closing the sink finalizes and closes the
// file.
func OpenFileSink(path, format string) (Sink, error) {
	var mk func(f *os.File) Sink
	switch format {
	case "chrome":
		mk = func(f *os.File) Sink { return NewChrome(f) }
	case "jsonl":
		mk = func(f *os.File) Sink { return NewJSONL(f) }
	default:
		return nil, fmt.Errorf("obs: unknown trace format %q (want chrome or jsonl)", format)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return fileSink{Sink: mk(f), f: f}, nil
}

// TracerFromFlags builds a tracer from the standard CLI trace flags
// (-trace-out, -trace-format, -trace-filter). An empty path means tracing
// off and yields a nil tracer. The caller must Close the tracer to finalize
// the output file.
func TracerFromFlags(path, format, filter string) (*Tracer, error) {
	if path == "" {
		return nil, nil
	}
	f, err := ParseFilter(filter)
	if err != nil {
		return nil, err
	}
	sink, err := OpenFileSink(path, format)
	if err != nil {
		return nil, err
	}
	return NewTracer(sink, f), nil
}
