package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event track (tid) layout. Each simulated process gets its own
// track (tid = PID + 1); kernel activity gets dedicated kernel-thread
// tracks, mirroring how the paper's ITS work runs in kernel threads. On a
// multi-core machine every core gets its own block of kernel tracks
// (tid = base + coreTidStride·core, named "cpuN:…"), so per-core scheduler,
// swap and stolen-time activity lays out side by side in Perfetto.
const (
	// tidSched is the scheduler track: context switches and idle spans.
	tidSched = 900
	// tidSwap is the kernel swap track: swap-ins, evictions, write-backs.
	tidSwap = 901
	// tidPrefetch is the ITS self-improving thread's prefetch track.
	tidPrefetch = 902
	// tidPreexec is the pre-execution (runahead) track.
	tidPreexec = 903
	// coreTidStride separates consecutive cores' kernel-track blocks.
	coreTidStride = 16
	// tidFleet is the cluster coordinator's track: request arrivals,
	// routing decisions and completions of a fleet run. Fleet events are
	// stamped in global fleet time, unlike the per-machine runs around
	// them, so they get a track of their own.
	tidFleet = 890
)

// Chrome serializes events into Chrome trace-event JSON
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Consecutive
// runs sharing one sink become separate trace "processes" named after their
// policy/batch. Timestamps are virtual microseconds.
//
// The output is the object form {"traceEvents":[...]}; Close writes the
// closing bracket, so a trace is valid JSON only after Close.
type Chrome struct {
	bw    *bufio.Writer
	err   error
	first bool
	// run is the current trace-process id, bumped on EvRunBegin.
	run int
	// named tracks whether thread_name metadata was emitted per tid of
	// the current run.
	named map[int]bool
}

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewChrome returns a Chrome trace sink over w. The caller owns the writer;
// Close writes the trailer and flushes but does not close it.
func NewChrome(w io.Writer) *Chrome {
	return &Chrome{bw: bufio.NewWriterSize(w, 64<<10), first: true, run: 1, named: make(map[int]bool)}
}

// us converts a virtual time to trace microseconds.
func us(t int64) float64 { return float64(t) / 1e3 }

func (c *Chrome) put(ev chromeEvent) {
	if c.err != nil {
		return
	}
	if c.first {
		if _, err := c.bw.WriteString(`{"traceEvents":[` + "\n"); err != nil {
			c.err = err
			return
		}
		c.first = false
	} else if _, err := c.bw.WriteString(",\n"); err != nil {
		c.err = err
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		c.err = err
		return
	}
	if _, err := c.bw.Write(b); err != nil {
		c.err = err
	}
}

// meta emits a metadata record.
func (c *Chrome) meta(name string, tid int, value string) {
	c.put(chromeEvent{Name: name, Ph: "M", PID: c.run, TID: tid, Args: map[string]any{"name": value}})
}

// thread lazily names a track and returns its tid unchanged.
func (c *Chrome) thread(tid int, name string) int {
	if !c.named[tid] {
		c.named[tid] = true
		c.meta("thread_name", tid, name)
	}
	return tid
}

// ktrack resolves a kernel-role track for the event's core. Core 0 keeps the
// legacy "kernel:<role>" names; further cores get their own "cpuN:<role>"
// track block offset by coreTidStride.
func (c *Chrome) ktrack(ev Event, base int, role string) int {
	tid := base + coreTidStride*ev.Core
	name := "kernel:" + role
	if ev.Core > 0 {
		name = fmt.Sprintf("cpu%d:%s", ev.Core, role)
	}
	return c.thread(tid, name)
}

// slice emits a complete ("X") span ending at ev.Time with length ev.Dur.
func (c *Chrome) slice(ev Event, tid int, name string, args map[string]any) {
	d := us(int64(ev.Dur))
	c.put(chromeEvent{Name: name, Ph: "X", Ts: us(int64(ev.Time - ev.Dur)), Dur: &d, PID: c.run, TID: tid, Args: args})
}

// instant emits a thread-scoped instant ("i") record.
func (c *Chrome) instant(ev Event, tid int, name string, args map[string]any) {
	c.put(chromeEvent{Name: name, Ph: "i", Ts: us(int64(ev.Time)), PID: c.run, TID: tid, S: "t", Args: args})
}

// Write implements Sink.
func (c *Chrome) Write(ev Event) {
	switch ev.Type {
	case EvRunBegin:
		if len(c.named) > 0 {
			c.run++
			c.named = make(map[int]bool)
		}
		c.named[-1] = true // mark the run open even if nothing else emits
		c.meta("process_name", 0, ev.Cause)
	case EvRunEnd:
		c.instant(ev, c.ktrack(ev, tidSched, "sched"), "run-end", nil)
	case EvDispatch:
		tid := c.thread(ev.PID+1, "proc:"+ev.Cause)
		c.instant(ev, tid, "dispatch", map[string]any{"prio": ev.Value, "core": ev.Core})
	case EvPreempt, EvBlock, EvProcFinish:
		c.slice(ev, c.thread(ev.PID+1, "proc"), "run", map[string]any{"end": ev.Type.String(), "core": ev.Core})
	case EvUnblock:
		c.instant(ev, c.thread(ev.PID+1, "proc"), "wake", nil)
	case EvSliceExpiry:
		c.instant(ev, c.thread(ev.PID+1, "proc"), "slice-expiry", nil)
	case EvContextSwitch:
		c.slice(ev, c.ktrack(ev, tidSched, "sched"), "switch", map[string]any{"pid": ev.PID})
	case EvSchedIdleBegin:
		c.put(chromeEvent{Name: "idle", Ph: "B", Ts: us(int64(ev.Time)), PID: c.run, TID: c.ktrack(ev, tidSched, "sched")})
	case EvSchedIdleEnd:
		c.put(chromeEvent{Name: "idle", Ph: "E", Ts: us(int64(ev.Time)), PID: c.run, TID: c.ktrack(ev, tidSched, "sched")})
	case EvMajorFaultBegin:
		c.put(chromeEvent{Name: "major-fault", Ph: "B", Ts: us(int64(ev.Time)), PID: c.run,
			TID: c.thread(ev.PID+1, "proc"), Args: map[string]any{"va": hexVA(ev.VA)}})
	case EvMajorFaultEnd:
		c.put(chromeEvent{Name: "major-fault", Ph: "E", Ts: us(int64(ev.Time)), PID: c.run,
			TID: c.thread(ev.PID+1, "proc"), Args: map[string]any{"va": hexVA(ev.VA), "mode": ev.Cause}})
	case EvPrefetchIssue:
		c.instant(ev, c.ktrack(ev, tidPrefetch, "its-prefetch"), "prefetch-issue",
			map[string]any{"pid": ev.PID, "va": hexVA(ev.VA), "lat_ns": int64(ev.Dur)})
	case EvPrefetchDrop:
		c.instant(ev, c.ktrack(ev, tidPrefetch, "its-prefetch"), "prefetch-drop",
			map[string]any{"pid": ev.PID, "va": hexVA(ev.VA)})
	case EvPrefetchHit:
		c.instant(ev, c.ktrack(ev, tidPrefetch, "its-prefetch"), "prefetch-hit",
			map[string]any{"pid": ev.PID, "va": hexVA(ev.VA)})
	case EvPrefetchWalk:
		c.slice(ev, c.ktrack(ev, tidPrefetch, "its-prefetch"), "pt-walk",
			map[string]any{"pid": ev.PID, "scanned": ev.Value})
	case EvPreexecWindow:
		c.slice(ev, c.ktrack(ev, tidPreexec, "preexec"), "preexec",
			map[string]any{"pid": ev.PID, "instrs": ev.Value})
	case EvRecovery:
		c.slice(ev, c.ktrack(ev, tidPreexec, "preexec"), "recovery", map[string]any{"pid": ev.PID})
	case EvSwapIn:
		c.instant(ev, c.ktrack(ev, tidSwap, "swap"), "swap-in",
			map[string]any{"pid": ev.PID, "va": hexVA(ev.VA), "lat_ns": int64(ev.Dur), "kind": ev.Cause})
	case EvEvict:
		c.instant(ev, c.ktrack(ev, tidSwap, "swap"), "evict", map[string]any{"pid": ev.PID, "va": hexVA(ev.VA)})
	case EvWriteBack:
		c.instant(ev, c.ktrack(ev, tidSwap, "swap"), "writeback", map[string]any{"pid": ev.PID, "va": hexVA(ev.VA)})
	case EvFaultInject:
		c.instant(ev, c.ktrack(ev, tidSwap, "swap"), "fault-inject",
			map[string]any{"pid": ev.PID, "va": hexVA(ev.VA), "kind": ev.Cause, "delay_ns": int64(ev.Dur)})
	case EvIORetry:
		c.instant(ev, c.ktrack(ev, tidSwap, "swap"), "io-retry",
			map[string]any{"pid": ev.PID, "va": hexVA(ev.VA), "attempt": ev.Value, "backoff_ns": int64(ev.Dur)})
	case EvDemote:
		c.instant(ev, c.thread(ev.PID+1, "proc"), "demote",
			map[string]any{"va": hexVA(ev.VA), "predicted_ns": int64(ev.Dur), "budget_ns": ev.Value})
	case EvPrefetchThrottle:
		c.instant(ev, c.ktrack(ev, tidPrefetch, "its-prefetch"), "prefetch-throttle",
			map[string]any{"pid": ev.PID, "busy_channels": ev.Value})
	case EvRequestArrive:
		c.instant(ev, c.thread(tidFleet, "fleet:requests"), "request-arrive",
			map[string]any{"req": ev.Value, "tenant": ev.Cause})
	case EvRequestRoute:
		c.instant(ev, c.thread(tidFleet, "fleet:requests"), "request-route",
			map[string]any{"req": ev.Value, "tenant": ev.Cause, "machine": ev.Core})
	case EvRequestDone:
		c.instant(ev, c.thread(tidFleet, "fleet:requests"), "request-done",
			map[string]any{"req": ev.Value, "tenant": ev.Cause, "machine": ev.Core, "latency_ns": int64(ev.Dur)})
	case EvMachineDown:
		c.instant(ev, c.thread(tidFleet, "fleet:machines"), "machine-down",
			map[string]any{"machine": ev.Core, "kind": ev.Cause, "down_ns": int64(ev.Dur)})
	case EvMachineUp:
		c.instant(ev, c.thread(tidFleet, "fleet:machines"), "machine-up",
			map[string]any{"machine": ev.Core, "kind": ev.Cause})
	case EvMachineDrain:
		c.instant(ev, c.thread(tidFleet, "fleet:machines"), "machine-drain",
			map[string]any{"machine": ev.Core})
	case EvMachineDegrade:
		c.instant(ev, c.thread(tidFleet, "fleet:machines"), "machine-degrade",
			map[string]any{"machine": ev.Core, "window_ns": int64(ev.Dur), "mult_x1000": ev.Value})
	case EvReqTimeout:
		c.instant(ev, c.thread(tidFleet, "fleet:requests"), "request-timeout",
			map[string]any{"req": ev.Value, "tenant": ev.Cause, "machine": ev.Core, "deadline_ns": int64(ev.Dur)})
	case EvReqRetry:
		c.instant(ev, c.thread(tidFleet, "fleet:requests"), "request-retry",
			map[string]any{"req": ev.Value, "tenant": ev.Cause, "backoff_ns": int64(ev.Dur)})
	case EvReqHedge:
		c.instant(ev, c.thread(tidFleet, "fleet:requests"), "request-hedge",
			map[string]any{"req": ev.Value, "tenant": ev.Cause, "delay_ns": int64(ev.Dur)})
	case EvReqShed:
		c.instant(ev, c.thread(tidFleet, "fleet:requests"), "request-shed",
			map[string]any{"req": ev.Value, "tenant": ev.Cause})
	case EvGauge:
		c.put(chromeEvent{Name: ev.Cause, Ph: "C", Ts: us(int64(ev.Time)), PID: c.run, TID: 0,
			Args: map[string]any{"value": ev.Value}})
	}
}

// Close writes the trace trailer and flushes.
func (c *Chrome) Close() error {
	if c.err != nil {
		return c.err
	}
	if c.first {
		if _, err := c.bw.WriteString(`{"traceEvents":[`); err != nil {
			return err
		}
		c.first = false
	}
	if _, err := c.bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return c.bw.Flush()
}
