// Package obs is the simulator's event-tracing and run-introspection layer:
// a structured stream of typed simulation events carrying virtual timestamps,
// emitted by the machine, kernel and scheduler as a run executes, fanned out
// to pluggable sinks.
//
// The paper's whole evaluation (§4, Figs 4–5) rests on *attributing* CPU
// idle time to memory stalls, storage busy-wait, context switches and
// scheduler idle; aggregate end-of-run counters cannot show *when* a fault
// window was stolen or *why* a prefetch missed. The event stream can.
//
// Shipped sinks:
//
//   - JSONL (jsonl.go)  — one JSON object per event, greppable/jq-able;
//   - Chrome (chrome.go) — Chrome trace-event JSON, loadable in Perfetto or
//     chrome://tracing, with one track per simulated process plus
//     kernel-thread tracks for scheduler, swap and ITS activity;
//   - Ring (this file)   — a bounded in-memory buffer for tests;
//   - Auditor (audit.go) — no output; continuously checks the machine's
//     time-conservation and monotonicity invariants.
//
// Tracing is off by default: a nil *Tracer is valid everywhere and every
// emission site guards on it, so the untraced hot path costs one predicated
// branch (see BenchmarkTraceOff/BenchmarkTraceChrome in internal/machine).
package obs

import (
	"fmt"
	"strconv"
	"strings"

	"itsim/internal/sim"
)

// Type enumerates the simulation event types.
type Type uint8

// Event types. Machine-scope events (run bounds, scheduler idle, gauges)
// carry PID = -1.
const (
	// EvRunBegin opens a run; Cause is "policy/batch". Sinks use it to
	// separate consecutive runs sharing one output file.
	EvRunBegin Type = iota
	// EvRunEnd closes a run at its makespan.
	EvRunEnd
	// EvDispatch puts a process on the CPU (Cause = process name,
	// Value = priority).
	EvDispatch
	// EvPreempt takes the CPU away at slice expiry with another process
	// ready; Dur is the time the process occupied the CPU this dispatch.
	EvPreempt
	// EvBlock parks the running process on asynchronous I/O; Dur is the
	// CPU occupancy of the ending dispatch.
	EvBlock
	// EvUnblock marks a blocked process turning runnable (I/O landed).
	EvUnblock
	// EvSliceExpiry marks a time-slice running out (the slice refreshes
	// in place when no other process is ready; EvPreempt follows when the
	// CPU actually rotates).
	EvSliceExpiry
	// EvProcFinish retires a process whose trace is exhausted; Dur is the
	// final dispatch's CPU occupancy.
	EvProcFinish
	// EvContextSwitch is the wall-clock cost of one context switch
	// (save/restore plus, in the default model, the cache/TLB pollution
	// tail); Dur is the full charge.
	EvContextSwitch
	// EvSchedIdleBegin/End bracket spans with no runnable process (every
	// process blocked on storage).
	EvSchedIdleBegin
	EvSchedIdleEnd
	// EvMajorFaultBegin/End bracket one major page fault of PID at VA.
	// End carries Dur = the whole window and Cause = handling mode
	// ("sync", "async", "spin").
	EvMajorFaultBegin
	EvMajorFaultEnd
	// EvPrefetchIssue is a prefetch swap-in started for (PID, VA); Dur is
	// the predicted DMA completion delay.
	EvPrefetchIssue
	// EvPrefetchDrop is a prefetch candidate rejected by device admission
	// control (channel busy).
	EvPrefetchDrop
	// EvPrefetchHit is a first touch of a prefetched page (swap-cache-hit
	// minor fault) — the prefetcher's payoff.
	EvPrefetchHit
	// EvPrefetchWalk is one page-table candidate walk (Value = PTEs
	// scanned, Dur = CPU time charged for the walk).
	EvPrefetchWalk
	// EvPreexecWindow is one pre-execution episode; Time is the episode
	// end, Dur the busy-wait time consumed, Value the instructions
	// pre-executed.
	EvPreexecWindow
	// EvRecovery is the state-recovery termination charge ending a
	// pre-execution episode (interrupt cost or polling overshoot in Dur).
	EvRecovery
	// EvSwapIn is a kernel swap-in DMA submission (Dur = completion
	// delay, Cause = "demand" or "prefetch").
	EvSwapIn
	// EvEvict is a page eviction (PID/VA identify the victim page).
	EvEvict
	// EvWriteBack is a dirty-victim write-back DMA submission.
	EvWriteBack
	// EvGauge is a periodic virtual-time gauge sample (Cause = gauge
	// name, Value = sampled value).
	EvGauge
	// EvFaultInject is an injected device fault observed on the swap path
	// (Cause = "tail" / "stall" / "dma", Dur = injected delay for
	// tail/stall).
	EvFaultInject
	// EvIORetry is a kernel resubmission of a failed DMA read (Value =
	// the retry attempt number, Dur = the backoff delay before it).
	EvIORetry
	// EvDemote is a spin-budget demotion: a synchronous wait whose
	// predicted window exceeded the budget was downgraded to an async
	// context switch (Dur = predicted wait, Value = the budget).
	EvDemote
	// EvPrefetchThrottle is ITS skipping a prefetch walk because the
	// busy-channel gauge saturated (Value = busy channels at decision
	// time).
	EvPrefetchThrottle
	// EvRequestArrive is a fleet-scope serving request entering the
	// cluster (Value = request id, Cause = tenant name). Fleet-scope
	// events carry PID = -1, global fleet time, and live *between* the
	// per-machine RunBegin/RunEnd frames in a fleet trace.
	EvRequestArrive
	// EvRequestRoute is the routing decision for a request (Value =
	// request id, Core = chosen machine id, Cause = tenant name).
	EvRequestRoute
	// EvRequestDone is a request completing (Value = request id, Core =
	// machine id, Dur = end-to-end latency, Cause = tenant name).
	EvRequestDone
	// EvMachineDown is a fleet machine leaving service (Core = machine id,
	// Dur = scheduled downtime, Cause = "crash" or "flap"). A crash kills
	// the machine's in-flight epoch; queued requests re-home.
	EvMachineDown
	// EvMachineUp is a fleet machine returning to service (Core = machine
	// id, Cause = "rejoin" after downtime — entering the cache-cold
	// warm-up window — or "brownout-end" when a degraded window closes).
	EvMachineUp
	// EvMachineDrain is a fleet machine starting a graceful drain (Core =
	// machine id): it finishes its in-flight epoch, takes nothing new,
	// and its queued requests re-home immediately.
	EvMachineDrain
	// EvMachineDegrade is a brownout window opening on a machine (Core =
	// machine id, Dur = window length, Value = slowdown multiplier ×1000).
	EvMachineDegrade
	// EvReqTimeout is a request attempt exceeding its tenant deadline
	// (Value = request id, Core = machine the attempt was placed on, Dur =
	// the deadline, Cause = tenant name).
	EvReqTimeout
	// EvReqRetry is a timed-out request being re-submitted (Value =
	// request id, Dur = the backoff delay that preceded it, Cause = tenant
	// name).
	EvReqRetry
	// EvReqHedge is a hedged duplicate attempt being dispatched after the
	// tenant's p99-derived delay (Value = request id, Dur = the hedge
	// delay, Cause = tenant name).
	EvReqHedge
	// EvReqShed is a request rejected at admission by priority-aware load
	// shedding (Value = request id, Cause = tenant name).
	EvReqShed

	// NumTypes is the number of event types (array sizing).
	NumTypes
)

var typeNames = [NumTypes]string{
	EvRunBegin:         "RunBegin",
	EvRunEnd:           "RunEnd",
	EvDispatch:         "Dispatch",
	EvPreempt:          "Preempt",
	EvBlock:            "Block",
	EvUnblock:          "Unblock",
	EvSliceExpiry:      "SliceExpiry",
	EvProcFinish:       "ProcFinish",
	EvContextSwitch:    "ContextSwitch",
	EvSchedIdleBegin:   "SchedulerIdleBegin",
	EvSchedIdleEnd:     "SchedulerIdleEnd",
	EvMajorFaultBegin:  "MajorFaultBegin",
	EvMajorFaultEnd:    "MajorFaultEnd",
	EvPrefetchIssue:    "PrefetchIssue",
	EvPrefetchDrop:     "PrefetchDrop",
	EvPrefetchHit:      "PrefetchHit",
	EvPrefetchWalk:     "PrefetchWalk",
	EvPreexecWindow:    "PreexecWindow",
	EvRecovery:         "Recovery",
	EvSwapIn:           "SwapIn",
	EvEvict:            "Evict",
	EvWriteBack:        "WriteBack",
	EvGauge:            "Gauge",
	EvFaultInject:      "FaultInject",
	EvIORetry:          "IORetry",
	EvDemote:           "Demote",
	EvPrefetchThrottle: "PrefetchThrottle",
	EvRequestArrive:    "RequestArrive",
	EvRequestRoute:     "RequestRoute",
	EvRequestDone:      "RequestDone",
	EvMachineDown:      "MachineDown",
	EvMachineUp:        "MachineUp",
	EvMachineDrain:     "MachineDrain",
	EvMachineDegrade:   "MachineDegrade",
	EvReqTimeout:       "ReqTimeout",
	EvReqRetry:         "ReqRetry",
	EvReqHedge:         "ReqHedge",
	EvReqShed:          "ReqShed",
}

// String names the type as used in filters and JSONL output.
func (t Type) String() string {
	if t < NumTypes {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// ParseType resolves a type name (case-insensitive).
func ParseType(name string) (Type, error) {
	for t, n := range typeNames {
		if strings.EqualFold(n, name) {
			return Type(t), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event type %q", name)
}

// Event is one structured simulation event. Field meaning varies by Type
// (see the type constants); unused fields are zero.
type Event struct {
	// Time is the virtual timestamp. For windowed types (EvPreempt,
	// EvBlock, EvProcFinish, EvContextSwitch, EvPreexecWindow,
	// EvRecovery, EvMajorFaultEnd) it is the *end* of the span and Dur
	// its length, so the stream stays monotonic.
	Time sim.Time
	// Dur is the span length for windowed types, or a predicted
	// completion delay for I/O submissions.
	Dur sim.Time
	// Value carries a type-specific count (priority, PTEs scanned,
	// instructions, gauge sample).
	Value int64
	// VA is the page-aligned or faulting virtual address, when relevant.
	VA uint64
	// PID is the simulated process id, or -1 for machine-scope events.
	PID int
	// Core is the simulated CPU core the event happened on. Single-core
	// machines emit 0; the SMP model stamps the executing core so sinks
	// can lay events out on per-core tracks.
	Core int
	// Type discriminates the event.
	Type Type
	// Cause is a short type-specific label (policy mode, process name,
	// gauge name, swap-in reason).
	Cause string
}

// Sink consumes events. Write must not retain ev beyond the call unless it
// copies it. Close flushes buffered output; sinks must tolerate Close
// without any prior Write.
type Sink interface {
	Write(ev Event)
	Close() error
}

// Filter restricts which events a Tracer forwards.
type Filter struct {
	// Types is the allowed set; nil admits every type. EvRunBegin and
	// EvRunEnd always pass — sinks need the run boundaries to stay
	// well-formed.
	Types map[Type]bool
	// PIDs is the allowed process-id set; nil admits every pid.
	// Machine-scope events (PID = -1) always pass.
	PIDs map[int]bool
}

// ParseFilter parses a -trace-filter flag value: a comma-separated list of
// event type names (case-insensitive) and "pid=N" entries. An empty string
// means no filtering. Example: "PrefetchIssue,PrefetchHit,pid=0,pid=2".
func ParseFilter(s string) (Filter, error) {
	var f Filter
	s = strings.TrimSpace(s)
	if s == "" {
		return f, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(tok, "pid="); ok {
			pid, err := strconv.Atoi(rest)
			if err != nil {
				return Filter{}, fmt.Errorf("obs: bad pid filter %q: %w", tok, err)
			}
			if f.PIDs == nil {
				f.PIDs = make(map[int]bool)
			}
			f.PIDs[pid] = true
			continue
		}
		t, err := ParseType(tok)
		if err != nil {
			return Filter{}, err
		}
		if f.Types == nil {
			f.Types = make(map[Type]bool)
		}
		f.Types[t] = true
	}
	return f, nil
}

// Tracer forwards events to a sink, applying a filter. A nil *Tracer is
// valid and drops everything — the off-by-default fast path.
type Tracer struct {
	sink  Sink
	types [NumTypes]bool
	pids  map[int]bool // nil = all
}

// NewTracer builds a tracer over sink with the given filter. A nil sink
// yields a nil tracer (tracing off).
func NewTracer(sink Sink, f Filter) *Tracer {
	if sink == nil {
		return nil
	}
	t := &Tracer{sink: sink, pids: f.PIDs}
	for i := range t.types {
		t.types[i] = f.Types == nil || f.Types[Type(i)]
	}
	// Run boundaries always pass: sinks key multi-run output off them.
	t.types[EvRunBegin] = true
	t.types[EvRunEnd] = true
	return t
}

// Wants reports whether events of this type can pass the filter; emission
// sites use it to skip building events nobody will see.
func (t *Tracer) Wants(typ Type) bool {
	return t != nil && t.types[typ]
}

// Emit forwards ev to the sink if it passes the filter. Safe on nil.
func (t *Tracer) Emit(ev Event) {
	if t == nil || !t.types[ev.Type] {
		return
	}
	if t.pids != nil && ev.PID >= 0 && !t.pids[ev.PID] {
		return
	}
	t.sink.Write(ev)
}

// Close closes the underlying sink. Safe on nil.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	return t.sink.Close()
}

// Ring is a bounded in-memory sink for tests: it keeps the most recent
// events, dropping the oldest once full.
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewRing returns a ring sink holding up to n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Write implements Sink.
func (r *Ring) Write(ev Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
	r.dropped++
}

// Close implements Sink (no-op).
func (r *Ring) Close() error { return nil }

// Dropped returns how many events were overwritten.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.wrapped {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// multi fans events out to several sinks.
type multi []Sink

// Multi combines sinks into one; Close closes each, returning the first
// error.
func Multi(sinks ...Sink) Sink {
	ss := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			ss = append(ss, s)
		}
	}
	return ss
}

func (m multi) Write(ev Event) {
	for _, s := range m {
		s.Write(ev)
	}
}

func (m multi) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
