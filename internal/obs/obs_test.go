package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"itsim/internal/sim"
)

func TestTypeStringParseRoundTrip(t *testing.T) {
	for typ := Type(0); typ < NumTypes; typ++ {
		name := typ.String()
		if name == "" || strings.HasPrefix(name, "Type(") {
			t.Fatalf("type %d has no name", typ)
		}
		got, err := ParseType(strings.ToLower(name))
		if err != nil {
			t.Fatalf("ParseType(%q): %v", name, err)
		}
		if got != typ {
			t.Fatalf("ParseType(%q) = %v, want %v", name, got, typ)
		}
	}
	if _, err := ParseType("NotAnEvent"); err == nil {
		t.Fatal("unknown type name accepted")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var trc *Tracer
	if trc.Wants(EvDispatch) {
		t.Fatal("nil tracer wants events")
	}
	trc.Emit(Event{Type: EvDispatch}) // must not panic
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}
	if NewTracer(nil, Filter{}) != nil {
		t.Fatal("NewTracer(nil) should yield a nil tracer")
	}
}

func TestTracerTypeFilter(t *testing.T) {
	ring := NewRing(16)
	trc := NewTracer(ring, Filter{Types: map[Type]bool{EvPrefetchIssue: true}})

	trc.Emit(Event{Type: EvRunBegin, Cause: "p/b"})
	trc.Emit(Event{Type: EvDispatch, PID: 0})
	trc.Emit(Event{Type: EvPrefetchIssue, PID: 0, VA: 0x1000})
	trc.Emit(Event{Type: EvRunEnd, Time: 10})

	got := ring.Events()
	want := []Type{EvRunBegin, EvPrefetchIssue, EvRunEnd}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(got), len(want), got)
	}
	for i, ev := range got {
		if ev.Type != want[i] {
			t.Fatalf("event %d is %v, want %v", i, ev.Type, want[i])
		}
	}
	if !trc.Wants(EvPrefetchIssue) || trc.Wants(EvDispatch) {
		t.Fatal("Wants disagrees with the filter")
	}
	// Run boundaries must pass even when not named in the filter.
	if !trc.Wants(EvRunBegin) || !trc.Wants(EvRunEnd) {
		t.Fatal("run boundaries filtered out")
	}
}

func TestTracerPIDFilter(t *testing.T) {
	ring := NewRing(16)
	trc := NewTracer(ring, Filter{PIDs: map[int]bool{1: true}})

	trc.Emit(Event{Type: EvDispatch, PID: 0})
	trc.Emit(Event{Type: EvDispatch, PID: 1})
	trc.Emit(Event{Type: EvGauge, PID: -1, Cause: "ready_queue_depth"})

	got := ring.Events()
	if len(got) != 2 {
		t.Fatalf("got %d events, want 2 (pid 1 + machine-scope): %v", len(got), got)
	}
	if got[0].PID != 1 || got[1].PID != -1 {
		t.Fatalf("wrong events survived: %v", got)
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter(" PrefetchIssue , prefetchhit, pid=0, pid=2 ")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Types[EvPrefetchIssue] || !f.Types[EvPrefetchHit] || len(f.Types) != 2 {
		t.Fatalf("types = %v", f.Types)
	}
	if !f.PIDs[0] || !f.PIDs[2] || len(f.PIDs) != 2 {
		t.Fatalf("pids = %v", f.PIDs)
	}

	if f, err := ParseFilter(""); err != nil || f.Types != nil || f.PIDs != nil {
		t.Fatalf("empty filter: %v %v", f, err)
	}
	if _, err := ParseFilter("NotAnEvent"); err == nil {
		t.Fatal("bad type accepted")
	}
	if _, err := ParseFilter("pid=x"); err == nil {
		t.Fatal("bad pid accepted")
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Write(Event{Time: sim.Time(i), Type: EvGauge})
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, ev := range got {
		if int(ev.Time) != i+2 {
			t.Fatalf("event %d has time %v, want %d (oldest-first after wrap)", i, ev.Time, i+2)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", r.Dropped())
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := Multi(a, nil, b)
	m.Write(Event{Type: EvDispatch, PID: 7})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("event not fanned out to every sink")
	}
}

func TestHexVA(t *testing.T) {
	cases := map[uint64]string{
		0:                  "0x0",
		0xf:                "0xf",
		0xdeadbeef:         "0xdeadbeef",
		0xffffffffffffffff: "0xffffffffffffffff",
	}
	for va, want := range cases {
		if got := hexVA(va); got != want {
			t.Fatalf("hexVA(%#x) = %q, want %q", va, got, want)
		}
	}
}

func TestJSONLOutput(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Write(Event{Time: 1500, Type: EvPrefetchIssue, PID: 2, VA: 0x2000, Dur: 3000})
	s.Write(Event{Time: 2000, Type: EvGauge, PID: -1, Cause: "llc_lines", Value: 42})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (header + 2 events)", len(lines))
	}
	if lines[0]["itsim_trace"] != float64(TraceSchemaVersion) {
		t.Fatalf("bad schema header: %v", lines[0])
	}
	if lines[1]["type"] != "PrefetchIssue" || lines[1]["va"] != "0x2000" || lines[1]["pid"] != float64(2) {
		t.Fatalf("bad first event line: %v", lines[1])
	}
	if _, ok := lines[2]["pid"]; ok {
		t.Fatalf("machine-scope event should omit pid: %v", lines[2])
	}
	if lines[2]["cause"] != "llc_lines" || lines[2]["value"] != float64(42) {
		t.Fatalf("bad gauge line: %v", lines[2])
	}
}

func TestJSONLHeaderDecode(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	v, err := DecodeJSONLHeader(bytes.TrimSpace(buf.Bytes()))
	if err != nil {
		t.Fatalf("decoding own header: %v", err)
	}
	if v != TraceSchemaVersion {
		t.Fatalf("header version %d, want %d", v, TraceSchemaVersion)
	}
	if _, err := DecodeJSONLHeader([]byte(`{"t":0,"type":"RunBegin"}`)); err == nil {
		t.Fatal("bare event line accepted as a header")
	}
	if _, err := DecodeJSONLHeader([]byte("not json")); err == nil {
		t.Fatal("junk accepted as a header")
	}
}

// TestJSONLRoundTrip proves DecodeJSONL is the exact inverse of Write for
// every field the wire form carries.
func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 0, Type: EvRunBegin, PID: -1, Cause: "ITS/test"},
		{Time: 10, Type: EvDispatch, PID: 3, Core: 1, Value: 7, Cause: "wrf"},
		{Time: 1500, Type: EvPrefetchIssue, PID: 2, VA: 0xdead2000, Dur: 3000},
		{Time: 2000, Type: EvGauge, PID: -1, Core: 2, Cause: "llc_lines", Value: 42},
		{Time: 9000, Type: EvMajorFaultEnd, PID: 0, VA: 0x1000, Dur: 4500, Cause: "sync"},
		{Time: 9500, Type: EvRunEnd, PID: -1},
	}
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	for _, ev := range events {
		s.Write(ev)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("missing header line")
	}
	for i, want := range events {
		if !sc.Scan() {
			t.Fatalf("trace ended before event %d", i)
		}
		got, err := DecodeJSONL(sc.Bytes())
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := DecodeJSONL([]byte(`{"t":1,"type":"NoSuchEvent"}`)); err == nil {
		t.Fatal("unknown event type accepted")
	}
	if _, err := DecodeJSONL([]byte(`{"t":1,"type":"Dispatch","va":"2000"}`)); err == nil {
		t.Fatal("unprefixed va accepted")
	}
}

// chromeDoc decodes a Chrome trace for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeChrome(t *testing.T, data []byte) chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v\n%s", err, data)
	}
	return doc
}

func TestChromeEmptyTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, buf.Bytes())
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace has %d events", len(doc.TraceEvents))
	}
}

func TestChromeOutput(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	c.Write(Event{Time: 0, Type: EvRunBegin, PID: -1, Cause: "ITS/2_Data_Intensive"})
	c.Write(Event{Time: 0, Type: EvDispatch, PID: 0, Cause: "procA", Value: 3})
	c.Write(Event{Time: 5000, Type: EvMajorFaultBegin, PID: 0, VA: 0x3000})
	c.Write(Event{Time: 8000, Type: EvMajorFaultEnd, PID: 0, VA: 0x3000, Dur: 3000, Cause: "sync"})
	c.Write(Event{Time: 9000, Type: EvPreempt, PID: 0, Dur: 9000})
	c.Write(Event{Time: 9000, Type: EvRunEnd, PID: -1})
	// Second run in the same sink must become a separate trace process.
	c.Write(Event{Time: 0, Type: EvRunBegin, PID: -1, Cause: "Sync/2_Data_Intensive"})
	c.Write(Event{Time: 0, Type: EvDispatch, PID: 0, Cause: "procA", Value: 3})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	doc := decodeChrome(t, buf.Bytes())
	pids := map[int]bool{}
	var sawSlice, sawFaultB, sawFaultE bool
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
		switch {
		case ev.Ph == "X" && ev.Name == "run":
			sawSlice = true
			// The span must start at Time-Dur: 9000 ns - 9000 ns = 0 µs.
			if ev.Ts != 0 || ev.Dur != 9 {
				t.Fatalf("run slice ts=%v dur=%v, want ts=0 dur=9", ev.Ts, ev.Dur)
			}
		case ev.Ph == "B" && ev.Name == "major-fault":
			sawFaultB = true
			if ev.Ts != 5 {
				t.Fatalf("fault begin ts=%v, want 5", ev.Ts)
			}
		case ev.Ph == "E" && ev.Name == "major-fault":
			sawFaultE = true
			if ev.Args["mode"] != "sync" {
				t.Fatalf("fault end args=%v", ev.Args)
			}
		}
	}
	if !sawSlice || !sawFaultB || !sawFaultE {
		t.Fatalf("missing records: slice=%v faultB=%v faultE=%v", sawSlice, sawFaultB, sawFaultE)
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("two runs should map to trace pids 1 and 2, got %v", pids)
	}
}

// The degradation events must render as instants on their owning tracks:
// injections and retries on the swap track, throttles on the prefetch
// track, demotions on the faulting process's own track.
func TestChromeFaultRecords(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	c.Write(Event{Time: 0, Type: EvRunBegin, PID: -1, Cause: "ITS/2_Data_Intensive"})
	c.Write(Event{Time: 1000, Type: EvFaultInject, PID: 0, VA: 0x3000, Cause: "tail", Dur: 7000})
	c.Write(Event{Time: 2000, Type: EvIORetry, PID: 0, VA: 0x3000, Value: 2, Dur: 4000})
	c.Write(Event{Time: 3000, Type: EvDemote, PID: 0, VA: 0x3000, Dur: 9000, Value: 4000})
	c.Write(Event{Time: 4000, Type: EvPrefetchThrottle, PID: 0, Value: 8})
	c.Write(Event{Time: 5000, Type: EvRunEnd, PID: -1})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	doc := decodeChrome(t, buf.Bytes())
	byName := map[string]struct {
		tid  int
		args map[string]any
	}{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" {
			byName[ev.Name] = struct {
				tid  int
				args map[string]any
			}{ev.TID, ev.Args}
		}
	}
	inj, ok := byName["fault-inject"]
	if !ok || inj.tid != tidSwap || inj.args["kind"] != "tail" || inj.args["delay_ns"] != float64(7000) {
		t.Fatalf("fault-inject record: ok=%v %+v", ok, inj)
	}
	retry, ok := byName["io-retry"]
	if !ok || retry.tid != tidSwap || retry.args["attempt"] != float64(2) {
		t.Fatalf("io-retry record: ok=%v %+v", ok, retry)
	}
	dem, ok := byName["demote"]
	if !ok || dem.tid != 1 || dem.args["predicted_ns"] != float64(9000) || dem.args["budget_ns"] != float64(4000) {
		t.Fatalf("demote record: ok=%v %+v", ok, dem)
	}
	thr, ok := byName["prefetch-throttle"]
	if !ok || thr.tid != tidPrefetch || thr.args["busy_channels"] != float64(8) {
		t.Fatalf("prefetch-throttle record: ok=%v %+v", ok, thr)
	}
}

func TestOpenFileSinkRejectsUnknownFormat(t *testing.T) {
	if _, err := OpenFileSink(filepath.Join(t.TempDir(), "x"), "nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestTracerFromFlags(t *testing.T) {
	trc, err := TracerFromFlags("", "chrome", "")
	if trc != nil || err != nil {
		t.Fatalf("empty path should disable tracing, got %v %v", trc, err)
	}
	if _, err := TracerFromFlags(filepath.Join(t.TempDir(), "x"), "chrome", "pid=x"); err == nil {
		t.Fatal("bad filter accepted")
	}
	path := filepath.Join(t.TempDir(), "t.json")
	trc, err = TracerFromFlags(path, "chrome", "Dispatch")
	if err != nil {
		t.Fatal(err)
	}
	trc.Emit(Event{Type: EvRunBegin, Cause: "p/b"})
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}
}
