package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"itsim/internal/sim"
)

// TraceSchemaVersion identifies the JSONL trace wire format. The sink
// stamps it into a header line (the first line of every trace file) and
// readers reject traces whose version they do not understand, so stale
// tooling fails loudly instead of misattributing fields.
const TraceSchemaVersion = 1

// traceHeader is the schema-version header: the first line of every JSONL
// trace, e.g. {"itsim_trace":1}.
type traceHeader struct {
	Version int `json:"itsim_trace"`
}

// jsonlEvent is the wire form of one JSONL event. Times are integer virtual
// nanoseconds so lines stay trivially machine-readable (jq, awk).
type jsonlEvent struct {
	T     int64  `json:"t"`
	Type  string `json:"type"`
	PID   *int   `json:"pid,omitempty"`
	Core  int    `json:"core,omitempty"`
	VA    string `json:"va,omitempty"`
	Dur   int64  `json:"dur,omitempty"`
	Value int64  `json:"value,omitempty"`
	Cause string `json:"cause,omitempty"`
}

// JSONL writes one JSON object per event to an io.Writer. The caller owns
// the writer; Close flushes but does not close it.
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL sink over w. The schema-version header is
// written eagerly so even an event-free trace is self-describing.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 64<<10)
	s := &JSONL{bw: bw, enc: json.NewEncoder(bw)}
	if err := s.enc.Encode(traceHeader{Version: TraceSchemaVersion}); err != nil {
		s.err = err
	}
	return s
}

// Write implements Sink.
func (s *JSONL) Write(ev Event) {
	if s.err != nil {
		return
	}
	je := jsonlEvent{
		T:     int64(ev.Time),
		Type:  ev.Type.String(),
		Core:  ev.Core,
		Dur:   int64(ev.Dur),
		Value: ev.Value,
		Cause: ev.Cause,
	}
	if ev.PID >= 0 {
		pid := ev.PID
		je.PID = &pid
	}
	if ev.VA != 0 {
		je.VA = hexVA(ev.VA)
	}
	if err := s.enc.Encode(&je); err != nil {
		s.err = err
	}
}

// Close flushes buffered lines.
func (s *JSONL) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// DecodeJSONLHeader parses the schema-version header line of a JSONL trace
// and returns the version it declares. A line that is not a header (for
// example a bare event line from a pre-versioning trace) is an error.
func DecodeJSONLHeader(line []byte) (int, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var h traceHeader
	if err := dec.Decode(&h); err != nil {
		return 0, fmt.Errorf("obs: not a JSONL trace header: %v", err)
	}
	if h.Version <= 0 {
		return 0, errors.New("obs: JSONL trace header missing itsim_trace version")
	}
	return h.Version, nil
}

// DecodeJSONL parses one JSONL event line back into an Event — the exact
// inverse of Write for every field the wire form carries (a PID absent on
// the wire decodes to -1, matching the encoder's omission rule).
func DecodeJSONL(line []byte) (Event, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var je jsonlEvent
	if err := dec.Decode(&je); err != nil {
		return Event{}, fmt.Errorf("obs: bad JSONL event: %v", err)
	}
	typ, err := ParseType(je.Type)
	if err != nil {
		return Event{}, err
	}
	ev := Event{
		Time:  sim.Time(je.T),
		Dur:   sim.Time(je.Dur),
		Value: je.Value,
		PID:   -1,
		Core:  je.Core,
		Type:  typ,
		Cause: je.Cause,
	}
	if je.PID != nil {
		ev.PID = *je.PID
	}
	if je.VA != "" {
		digits, ok := strings.CutPrefix(je.VA, "0x")
		if !ok {
			return Event{}, fmt.Errorf("obs: va %q is not 0x-prefixed hex", je.VA)
		}
		va, err := strconv.ParseUint(digits, 16, 64)
		if err != nil {
			return Event{}, fmt.Errorf("obs: bad va %q: %v", je.VA, err)
		}
		ev.VA = va
	}
	return ev, nil
}

// hexVA renders a virtual address as 0x-prefixed hex.
func hexVA(va uint64) string {
	const digits = "0123456789abcdef"
	var b [18]byte
	i := len(b)
	for {
		i--
		b[i] = digits[va&0xF]
		va >>= 4
		if va == 0 {
			break
		}
	}
	i -= 2
	b[i], b[i+1] = '0', 'x'
	return string(b[i:])
}
