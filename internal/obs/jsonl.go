package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonlEvent is the wire form of one JSONL event. Times are integer virtual
// nanoseconds so lines stay trivially machine-readable (jq, awk).
type jsonlEvent struct {
	T     int64  `json:"t"`
	Type  string `json:"type"`
	PID   *int   `json:"pid,omitempty"`
	Core  int    `json:"core,omitempty"`
	VA    string `json:"va,omitempty"`
	Dur   int64  `json:"dur,omitempty"`
	Value int64  `json:"value,omitempty"`
	Cause string `json:"cause,omitempty"`
}

// JSONL writes one JSON object per event to an io.Writer. The caller owns
// the writer; Close flushes but does not close it.
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 64<<10)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Write implements Sink.
func (s *JSONL) Write(ev Event) {
	if s.err != nil {
		return
	}
	je := jsonlEvent{
		T:     int64(ev.Time),
		Type:  ev.Type.String(),
		Core:  ev.Core,
		Dur:   int64(ev.Dur),
		Value: ev.Value,
		Cause: ev.Cause,
	}
	if ev.PID >= 0 {
		pid := ev.PID
		je.PID = &pid
	}
	if ev.VA != 0 {
		je.VA = hexVA(ev.VA)
	}
	if err := s.enc.Encode(&je); err != nil {
		s.err = err
	}
}

// Close flushes buffered lines.
func (s *JSONL) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// hexVA renders a virtual address as 0x-prefixed hex.
func hexVA(va uint64) string {
	const digits = "0123456789abcdef"
	var b [18]byte
	i := len(b)
	for {
		i--
		b[i] = digits[va&0xF]
		va >>= 4
		if va == 0 {
			break
		}
	}
	i -= 2
	b[i], b[i+1] = '0', 'x'
	return string(b[i:])
}
