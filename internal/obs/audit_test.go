package obs

import (
	"strings"
	"testing"

	"itsim/internal/sim"
)

// feed writes a stream of events into a fresh auditor.
func feed(evs ...Event) *Auditor {
	a := NewAuditor()
	for _, ev := range evs {
		a.Write(ev)
	}
	return a
}

// A fully-accounted run: two dispatches separated by a context switch, a
// scheduler-idle span, and a final dispatch, summing exactly to the makespan.
func goodRun() []Event {
	return []Event{
		{Time: 0, Type: EvRunBegin, PID: -1, Cause: "ITS/test"},
		{Time: 0, Type: EvDispatch, PID: 0},
		{Time: 100, Type: EvPreempt, PID: 0, Dur: 100},
		{Time: 110, Type: EvContextSwitch, PID: 1, Dur: 10},
		{Time: 110, Type: EvDispatch, PID: 1},
		{Time: 200, Type: EvBlock, PID: 1, Dur: 90},
		{Time: 210, Type: EvContextSwitch, PID: 0, Dur: 10},
		{Time: 210, Type: EvSchedIdleBegin, PID: -1},
		{Time: 300, Type: EvSchedIdleEnd, PID: -1},
		{Time: 300, Type: EvDispatch, PID: 0},
		{Time: 400, Type: EvProcFinish, PID: 0, Dur: 100},
		{Time: 400, Type: EvRunEnd, PID: -1},
	}
}

func TestAuditorPassesConservedRun(t *testing.T) {
	a := feed(goodRun()...)
	if err := a.Err(); err != nil {
		t.Fatalf("well-formed run failed the audit: %v", err)
	}
	if a.Accounted() != sim.Time(400) {
		t.Fatalf("accounted %v, want 400", a.Accounted())
	}
	if a.Events() != 12 {
		t.Fatalf("observed %d events, want 12", a.Events())
	}
	cpu, sw, idle := a.Folded()
	if cpu != 290 || sw != 20 || idle != 90 {
		t.Fatalf("folded (cpu %v, switch %v, idle %v), want (290, 20, 90)", cpu, sw, idle)
	}
	if cpu+sw+idle != a.Accounted() {
		t.Fatalf("folded categories sum to %v, accounted is %v", cpu+sw+idle, a.Accounted())
	}
}

func TestAuditorFoldedNilSafe(t *testing.T) {
	var a *Auditor
	if cpu, sw, idle := a.Folded(); cpu != 0 || sw != 0 || idle != 0 {
		t.Fatal("nil auditor folded totals nonzero")
	}
}

// mutate runs goodRun with one event transformed (or dropped when fn returns
// false) and asserts the auditor flags it with a message containing want.
func mutate(t *testing.T, want string, fn func(ev *Event) bool) {
	t.Helper()
	a := NewAuditor()
	for _, ev := range goodRun() {
		if fn(&ev) {
			a.Write(ev)
		}
	}
	err := a.Err()
	if err == nil {
		t.Fatalf("mis-accounted run passed the audit (wanted %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("audit error %q does not mention %q", err, want)
	}
}

func TestAuditorCatchesDroppedContextSwitch(t *testing.T) {
	first := true
	mutate(t, "time conservation broken", func(ev *Event) bool {
		if ev.Type == EvContextSwitch && first {
			first = false
			return false
		}
		return true
	})
}

func TestAuditorCatchesBackwardsTime(t *testing.T) {
	mutate(t, "virtual time went backwards", func(ev *Event) bool {
		if ev.Type == EvSchedIdleEnd {
			ev.Time = 50
		}
		return true
	})
}

func TestAuditorCatchesOccupancyMismatch(t *testing.T) {
	mutate(t, "occupancy mismatch", func(ev *Event) bool {
		if ev.Type == EvPreempt {
			ev.Dur = 99
		}
		return true
	})
}

func TestAuditorCatchesDoubleDispatch(t *testing.T) {
	mutate(t, "still on CPU", func(ev *Event) bool {
		if ev.Type == EvPreempt {
			*ev = Event{Time: ev.Time, Type: EvDispatch, PID: 2}
		}
		return true
	})
}

func TestAuditorCatchesLeaveWithoutDispatch(t *testing.T) {
	mutate(t, "no process on CPU", func(ev *Event) bool {
		return !(ev.Type == EvDispatch && ev.Time == 0)
	})
}

func TestAuditorCatchesRunEndDrift(t *testing.T) {
	mutate(t, "time conservation broken at run end", func(ev *Event) bool {
		if ev.Type == EvRunEnd {
			ev.Time = 450
		}
		return true
	})
}

func TestAuditorCatchesUnbalancedIdle(t *testing.T) {
	mutate(t, "scheduler-idle end without begin", func(ev *Event) bool {
		return ev.Type != EvSchedIdleBegin
	})
}

// A second EvRunBegin legitimately restarts the virtual clock: two
// back-to-back clean runs through one auditor must stay clean.
func TestAuditorResetsAcrossRuns(t *testing.T) {
	a := NewAuditor()
	for i := 0; i < 2; i++ {
		for _, ev := range goodRun() {
			a.Write(ev)
		}
	}
	if err := a.Err(); err != nil {
		t.Fatalf("clean back-to-back runs failed the audit: %v", err)
	}
	if a.Events() != 24 {
		t.Fatalf("observed %d events, want 24", a.Events())
	}
}

func TestAuditorNilSafe(t *testing.T) {
	var a *Auditor
	if a.Wants(EvDispatch) {
		t.Fatal("nil auditor wants events")
	}
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditorViolationString(t *testing.T) {
	a := feed(
		Event{Time: 0, Type: EvRunBegin, PID: -1},
		Event{Time: 10, Type: EvPreempt, PID: 3, Dur: 10, VA: 0x40, Cause: "x"},
	)
	vs := a.Violations()
	if len(vs) == 0 {
		t.Fatal("no violation recorded")
	}
	s := vs[0].String()
	for _, frag := range []string{"Preempt", "pid=3", "0x40"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("violation string %q missing %q", s, frag)
		}
	}
}
