package replay

import (
	"bytes"
	"strings"
	"testing"

	"itsim/internal/obs"
)

// encode serializes events through the real JSONL sink, header included.
func encode(t testing.TB, evs ...obs.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := obs.NewJSONL(&buf)
	for _, ev := range evs {
		s.Write(ev)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReaderRejectsMissingHeader(t *testing.T) {
	_, err := NewReader(strings.NewReader(`{"t":0,"type":"RunBegin"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("headerless trace accepted (err %v)", err)
	}
}

func TestReaderRejectsUnknownVersion(t *testing.T) {
	_, err := NewReader(strings.NewReader(`{"itsim_trace":99}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future schema version accepted (err %v)", err)
	}
}

func TestReaderRejectsEmptyInput(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReaderReportsBadLineNumber(t *testing.T) {
	in := `{"itsim_trace":1}` + "\n" + `{"t":0,"type":"RunBegin"}` + "\n" + "junk\n"
	r, err := NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.Next(); err != nil || !ok {
		t.Fatalf("valid event rejected: %v", err)
	}
	_, _, err = r.Next()
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("junk line error %v does not name line 3", err)
	}
}

func TestReaderRejectsInvalidFields(t *testing.T) {
	for _, bad := range []string{
		`{"t":-5,"type":"Dispatch"}`,
		`{"t":1,"type":"Dispatch","dur":-1}`,
		`{"t":1,"type":"Dispatch","core":-2}`,
		`{"t":1,"type":"Dispatch","pid":-7}`,
		`{"t":1,"type":"NoSuchType"}`,
		`{"t":1,"type":"Dispatch","bogus":3}`,
	} {
		r, err := NewReader(strings.NewReader(`{"itsim_trace":1}` + "\n" + bad + "\n"))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Next(); err == nil {
			t.Fatalf("invalid line %s accepted", bad)
		}
	}
}

func TestReaderRejectsOversizedLine(t *testing.T) {
	in := `{"itsim_trace":1}` + "\n" + strings.Repeat("x", MaxLineBytes+1) + "\n"
	r, err := NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil {
		t.Fatal("oversized line accepted")
	}
}

func TestReadAllRoundTrip(t *testing.T) {
	want := []obs.Event{
		{Time: 0, Type: obs.EvRunBegin, PID: -1, Cause: "ITS/test"},
		{Time: 5, Type: obs.EvDispatch, PID: 0, Core: 1, Value: 3, Cause: "wrf"},
		{Time: 9, Type: obs.EvMajorFaultEnd, PID: 0, Core: 1, VA: 0x2000, Dur: 4, Cause: "sync"},
		{Time: 12, Type: obs.EvProcFinish, PID: 0, Core: 1, Dur: 12},
		{Time: 12, Type: obs.EvRunEnd, PID: -1},
	}
	got, err := ReadAll(bytes.NewReader(encode(t, want...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}
