// Package replay is the post-hoc trace-analytics layer: it ingests the obs
// JSONL sink's output as a first-class data source instead of a write-only
// debugging artifact.
//
// Three engines operate on the stream:
//
//   - Attribute folds the event stream into per-run, per-core, per-pid
//     virtual-time buckets — where each core's time went (execute, sync
//     fault wait, prefetch walk, pre-execute window, recovery, context
//     switch, scheduler idle) — rendered as flame-style folded stacks or a
//     JSON table, and cross-checkable against the metrics conservation
//     ledger with zero tolerance (metrics.Summary.CheckAttribution).
//   - Diff aligns two traces event-by-event on virtual time and reports the
//     first divergent event, per-counter drift, and per-window deltas
//     around fault injections — turning "same seed ⇒ byte-identical" from a
//     summary-level check into an event-level one.
//   - Timeline buckets the run by virtual time with per-bucket sync-wait
//     percentiles, showing when the waiting happened rather than only how
//     much.
//
// Everything is streaming and deterministic: memory is bounded by the
// folded state (not the trace length), and identical traces produce
// byte-identical output.
package replay

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"itsim/internal/obs"
)

// MaxLineBytes bounds one trace line. The sink never writes lines anywhere
// near this long; a longer line means a corrupt or hostile input and fails
// the read instead of growing memory without bound.
const MaxLineBytes = 1 << 20

// Reader streams events out of one JSONL trace, validating the
// schema-version header up front and every line as it passes. Memory use is
// bounded by one line regardless of trace size.
type Reader struct {
	sc   *bufio.Scanner
	line int
	done bool
}

// NewReader validates the trace's schema-version header and returns a
// streaming reader over its events. Traces with a missing or unknown
// version are rejected with a clear error rather than misread.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), MaxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("replay: reading trace header: %w", err)
		}
		return nil, errors.New("replay: empty input (want a JSONL trace starting with its schema header)")
	}
	v, err := obs.DecodeJSONLHeader(sc.Bytes())
	if err != nil {
		return nil, fmt.Errorf("replay: line 1: %w (is this an itsim JSONL trace?)", err)
	}
	if v != obs.TraceSchemaVersion {
		return nil, fmt.Errorf("replay: trace schema version %d, but this build reads only version %d — regenerate the trace or upgrade the tool",
			v, obs.TraceSchemaVersion)
	}
	return &Reader{sc: sc, line: 1}, nil
}

// Next returns the next event of the trace. ok is false at a clean end of
// input; a malformed line is an error naming its line number.
func (r *Reader) Next() (ev obs.Event, ok bool, err error) {
	if r.done {
		return obs.Event{}, false, nil
	}
	if !r.sc.Scan() {
		r.done = true
		if err := r.sc.Err(); err != nil {
			return obs.Event{}, false, fmt.Errorf("replay: after line %d: %w", r.line, err)
		}
		return obs.Event{}, false, nil
	}
	r.line++
	ev, err = obs.DecodeJSONL(r.sc.Bytes())
	if err != nil {
		return obs.Event{}, false, fmt.Errorf("replay: line %d: %w", r.line, err)
	}
	if ev.Time < 0 || ev.Dur < 0 {
		return obs.Event{}, false, fmt.Errorf("replay: line %d: negative time or duration", r.line)
	}
	if ev.Core < 0 && !(ev.Core == -1 && requestLifecycle(ev.Type)) {
		return obs.Event{}, false, fmt.Errorf("replay: line %d: negative core id", r.line)
	}
	if ev.PID < -1 {
		return obs.Event{}, false, fmt.Errorf("replay: line %d: invalid pid %d (machine scope is -1)", r.line, ev.PID)
	}
	return ev, true, nil
}

// requestLifecycle reports whether the kind describes a fleet request's
// lifecycle, where Core carries the machine id and -1 means "no machine"
// (the request timed out parked, was shed at admission, or retried before
// placement).
func requestLifecycle(t obs.Type) bool {
	switch t {
	case obs.EvReqTimeout, obs.EvReqRetry, obs.EvReqHedge, obs.EvReqShed:
		return true
	default:
		return false
	}
}

// Line returns the 1-based line number of the last event returned (the
// header is line 1).
func (r *Reader) Line() int { return r.line }

// ReadAll drains a whole trace into memory — a convenience for tests and
// small traces; the analytics engines stream instead.
func ReadAll(r io.Reader) ([]obs.Event, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []obs.Event
	for {
		ev, ok, err := rd.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, ev)
	}
}
