package replay

import (
	"fmt"
	"io"
	"sort"

	"itsim/internal/obs"
	"itsim/internal/sim"
)

// Timeline is the bucketed virtual-time view of a trace: when the events,
// dispatches, synchronous waits and scheduler idle happened, not just how
// much of each the run totalled.
type Timeline struct {
	Runs []*RunTimeline `json:"runs"`
}

// RunTimeline is one run's bucket series.
type RunTimeline struct {
	Label   string    `json:"label"`
	Width   sim.Time  `json:"bucket_ns"`
	Buckets []*Bucket `json:"buckets"`
}

// Bucket aggregates one [Start, Start+Width) window of virtual time. The
// sync-wait percentiles are exact (nearest-rank over the windows that ended
// in the bucket), not histogram approximations.
type Bucket struct {
	Start      sim.Time `json:"start_ns"`
	Events     uint64   `json:"events"`
	Dispatches uint64   `json:"dispatches"`
	SyncFaults uint64   `json:"sync_faults"`
	// IdleTime is scheduler-idle span time overlapping the bucket (spans
	// are split across the buckets they cover).
	IdleTime    sim.Time `json:"idle_ns"`
	SyncWaitP50 sim.Time `json:"sync_wait_p50_ns"`
	SyncWaitP99 sim.Time `json:"sync_wait_p99_ns"`
	SyncWaitMax sim.Time `json:"sync_wait_max_ns"`

	syncDurs []sim.Time
}

// maxBuckets bounds a run's bucket count so a hostile trace (tiny width,
// huge timestamp) cannot allocate without bound.
const maxBuckets = 1 << 20

// BuildTimeline buckets a whole trace by virtual time. Only run-framed
// events count (a RunBegin/RunEnd pair scopes each run).
func BuildTimeline(r *Reader, width sim.Time) (*Timeline, error) {
	if width <= 0 {
		width = sim.Millisecond
	}
	tl := &Timeline{}
	var run *RunTimeline
	idleStart := make(map[int]sim.Time) // core → open idle-span start
	for {
		ev, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if ev.Type == obs.EvRunBegin {
			if run != nil {
				return nil, fmt.Errorf("replay: line %d: RunBegin inside an open run", r.Line())
			}
			run = &RunTimeline{Label: ev.Cause, Width: width}
			idleStart = make(map[int]sim.Time)
			continue
		}
		if run == nil {
			if fleetScope(ev.Type) {
				continue // cluster-coordinator events live between runs
			}
			return nil, fmt.Errorf("replay: line %d: %s event outside any run", r.Line(), ev.Type)
		}
		if ev.Type == obs.EvRunEnd {
			tl.Runs = append(tl.Runs, run)
			run = nil
			continue
		}
		b, err := run.bucket(ev.Time)
		if err != nil {
			return nil, fmt.Errorf("replay: line %d: %w", r.Line(), err)
		}
		b.Events++
		switch ev.Type {
		case obs.EvDispatch:
			b.Dispatches++
		case obs.EvMajorFaultEnd:
			if ev.Cause == "sync" {
				b.SyncFaults++
				b.syncDurs = append(b.syncDurs, ev.Dur)
			}
		case obs.EvSchedIdleBegin:
			idleStart[ev.Core] = ev.Time
		case obs.EvSchedIdleEnd:
			if err := run.spreadIdle(idleStart[ev.Core], ev.Time); err != nil {
				return nil, fmt.Errorf("replay: line %d: %w", r.Line(), err)
			}
		default:
			// Every other event only counts toward the bucket total.
		}
	}
	if run != nil {
		return nil, fmt.Errorf("replay: trace ended inside run %q (no EvRunEnd)", run.Label)
	}
	if len(tl.Runs) == 0 {
		return nil, fmt.Errorf("replay: trace contains no runs")
	}
	for _, rt := range tl.Runs {
		rt.finalize()
	}
	return tl, nil
}

// bucket returns (growing the series on demand) the bucket covering time t.
func (rt *RunTimeline) bucket(t sim.Time) (*Bucket, error) {
	i := int(t / rt.Width)
	if i >= maxBuckets {
		return nil, fmt.Errorf("timestamp %d overflows the %d-bucket bound at width %d", int64(t), maxBuckets, int64(rt.Width))
	}
	for len(rt.Buckets) <= i {
		rt.Buckets = append(rt.Buckets, &Bucket{Start: sim.Time(len(rt.Buckets)) * rt.Width})
	}
	return rt.Buckets[i], nil
}

// spreadIdle distributes one idle span over the buckets it overlaps.
func (rt *RunTimeline) spreadIdle(start, end sim.Time) error {
	for t := start; t < end; {
		b, err := rt.bucket(t)
		if err != nil {
			return err
		}
		next := b.Start + rt.Width
		if next > end {
			next = end
		}
		b.IdleTime += next - t
		t = next
	}
	return nil
}

// finalize computes the per-bucket percentiles.
func (rt *RunTimeline) finalize() {
	for _, b := range rt.Buckets {
		if len(b.syncDurs) == 0 {
			continue
		}
		sort.Slice(b.syncDurs, func(i, j int) bool { return b.syncDurs[i] < b.syncDurs[j] })
		b.SyncWaitP50 = nearestRank(b.syncDurs, 50)
		b.SyncWaitP99 = nearestRank(b.syncDurs, 99)
		b.SyncWaitMax = b.syncDurs[len(b.syncDurs)-1]
		b.syncDurs = nil
	}
}

// nearestRank returns the pct-th percentile of a sorted slice by the
// nearest-rank definition (integer arithmetic, no float rounding drift).
func nearestRank(sorted []sim.Time, pct int) sim.Time {
	n := len(sorted)
	i := (pct*n + 99) / 100
	if i < 1 {
		i = 1
	}
	return sorted[i-1]
}

// WriteText renders the timeline as a deterministic table, one row per
// bucket, durations in integer virtual nanoseconds.
func (tl *Timeline) WriteText(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, rt := range tl.Runs {
		pf("run %s (bucket %d ns)\n", rt.Label, int64(rt.Width))
		pf("%12s %8s %10s %10s %12s %14s %14s %14s\n",
			"start_ns", "events", "dispatches", "syncfaults", "idle_ns", "syncwait_p50", "syncwait_p99", "syncwait_max")
		for _, b := range rt.Buckets {
			if b.Events == 0 && b.IdleTime == 0 {
				continue
			}
			pf("%12d %8d %10d %10d %12d %14d %14d %14d\n",
				int64(b.Start), b.Events, b.Dispatches, b.SyncFaults, int64(b.IdleTime),
				int64(b.SyncWaitP50), int64(b.SyncWaitP99), int64(b.SyncWaitMax))
		}
	}
	return err
}
