package replay

import (
	"bytes"
	"reflect"
	"testing"

	"itsim/internal/obs"
)

// FuzzReplayRead feeds arbitrary bytes through the trace reader and the
// three analytics engines. The reader must never panic on hostile input,
// and any trace it accepts must round-trip losslessly through the JSONL
// sink: decode → encode → decode is the identity.
func FuzzReplayRead(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"itsim_trace\":1}\n"))
	f.Add([]byte("{\"itsim_trace\":99}\n"))
	f.Add([]byte("{\"t\":0,\"type\":\"RunBegin\"}\n"))
	f.Add(encode(f, goodTrace()...))
	f.Add(encode(f, []obs.Event{
		{Time: 0, Type: obs.EvRunBegin, PID: -1, Cause: "ITS/seed"},
		{Time: 3, Type: obs.EvFaultInject, PID: 0, VA: 0xdead, Cause: "tail"},
		{Time: 9, Type: obs.EvRunEnd, PID: -1},
	}...))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}

		// Accepted traces must survive an encode/decode round trip intact.
		var buf bytes.Buffer
		sink := obs.NewJSONL(&buf)
		for _, ev := range evs {
			sink.Write(ev)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		again, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading re-encoded trace: %v", err)
		}
		if len(evs) == 0 {
			if len(again) != 0 {
				t.Fatalf("empty trace re-read as %d events", len(again))
			}
		} else if !reflect.DeepEqual(evs, again) {
			t.Fatalf("round trip lossy:\n in: %+v\nout: %+v", evs, again)
		}

		// The engines may reject the stream, but must not panic on it.
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			_, _ = Attribute(r)
		}
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			_, _ = BuildTimeline(r, 0)
		}
		ra, errA := NewReader(bytes.NewReader(data))
		rb, errB := NewReader(bytes.NewReader(data))
		if errA == nil && errB == nil {
			if d, err := Diff(ra, rb, 0); err == nil && !d.Identical() {
				t.Fatal("trace diffs against itself as divergent")
			}
		}
	})
}
