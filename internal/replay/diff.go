package replay

import (
	"fmt"
	"io"
	"sort"

	"itsim/internal/obs"
	"itsim/internal/sim"
)

// Divergence is the first point at which two traces stop agreeing. Index is
// 0-based over events (the schema header does not count); a nil side means
// that trace ended while the other continued.
type Divergence struct {
	Index int        `json:"index"`
	A     *obs.Event `json:"a,omitempty"`
	B     *obs.Event `json:"b,omitempty"`
}

// CounterDrift is one event type whose count or total duration differs
// between the traces.
type CounterDrift struct {
	Type   string   `json:"type"`
	CountA uint64   `json:"count_a"`
	CountB uint64   `json:"count_b"`
	DurA   sim.Time `json:"dur_a_ns"`
	DurB   sim.Time `json:"dur_b_ns"`
}

// WindowDelta compares event activity in a ±Window interval around one
// fault-injection event: how far the perturbation spread.
type WindowDelta struct {
	At     sim.Time `json:"t_ns"`
	Cause  string   `json:"cause"`
	CountA int      `json:"count_a"`
	CountB int      `json:"count_b"`
}

// DiffResult is the full event-level comparison of two traces.
type DiffResult struct {
	EventsA int         `json:"events_a"`
	EventsB int         `json:"events_b"`
	First   *Divergence `json:"first_divergence,omitempty"`
	// Drift lists event types whose count or summed duration differ,
	// in enum order.
	Drift []CounterDrift `json:"counter_drift,omitempty"`
	// Windows lists fault-injection windows whose event counts differ.
	// Window centers come from trace A (falling back to B when A carries
	// no injections at all).
	Windows []WindowDelta `json:"fault_windows,omitempty"`
	// Window is the half-width used for the fault-window comparison.
	Window sim.Time `json:"window_ns"`
}

// Identical reports byte-level event equality: same events in the same
// order. When true, Drift and Windows are necessarily empty.
func (d *DiffResult) Identical() bool { return d.First == nil && d.EventsA == d.EventsB }

// sideStats accumulates one trace's aggregate view while streaming.
type sideStats struct {
	counts  [obs.NumTypes]uint64
	durs    [obs.NumTypes]sim.Time
	times   []int64
	injects []obs.Event
	n       int
}

func (s *sideStats) add(ev obs.Event) {
	s.counts[ev.Type]++
	s.durs[ev.Type] += ev.Dur
	s.times = append(s.times, int64(ev.Time))
	if ev.Type == obs.EvFaultInject {
		s.injects = append(s.injects, ev)
	}
	s.n++
}

// Diff aligns two traces event-by-event and reports the first divergent
// event, per-counter drift, and event-count deltas in ±window around each
// fault injection. Identically-seeded runs must come back Identical; a
// one-event perturbation is localized to its first divergent event.
func Diff(ra, rb *Reader, window sim.Time) (*DiffResult, error) {
	if window <= 0 {
		window = 50 * sim.Microsecond
	}
	res := &DiffResult{Window: window}
	var sa, sb sideStats
	for {
		eva, oka, err := ra.Next()
		if err != nil {
			return nil, fmt.Errorf("trace A: %w", err)
		}
		evb, okb, err := rb.Next()
		if err != nil {
			return nil, fmt.Errorf("trace B: %w", err)
		}
		if oka {
			sa.add(eva)
		}
		if okb {
			sb.add(evb)
		}
		if !oka && !okb {
			break
		}
		if res.First == nil {
			switch {
			case oka && !okb:
				a := eva
				res.First = &Divergence{Index: sa.n - 1, A: &a}
			case !oka && okb:
				b := evb
				res.First = &Divergence{Index: sb.n - 1, B: &b}
			case eva != evb:
				a, b := eva, evb
				res.First = &Divergence{Index: sa.n - 1, A: &a, B: &b}
			}
		}
		// Past the first divergence, keep draining both sides so counter
		// and window statistics cover the whole traces.
	}
	res.EventsA, res.EventsB = sa.n, sb.n
	if res.Identical() {
		return res, nil
	}

	for t := obs.Type(0); t < obs.NumTypes; t++ {
		if sa.counts[t] != sb.counts[t] || sa.durs[t] != sb.durs[t] {
			res.Drift = append(res.Drift, CounterDrift{
				Type:   t.String(),
				CountA: sa.counts[t], CountB: sb.counts[t],
				DurA: sa.durs[t], DurB: sb.durs[t],
			})
		}
	}

	centers := sa.injects
	if len(centers) == 0 {
		centers = sb.injects
	}
	if len(centers) > 0 {
		// Event times are only per-core monotonic in the file; sort copies
		// for the window counting.
		sort.Slice(sa.times, func(i, j int) bool { return sa.times[i] < sa.times[j] })
		sort.Slice(sb.times, func(i, j int) bool { return sb.times[i] < sb.times[j] })
		for _, c := range centers {
			lo, hi := int64(c.Time-window), int64(c.Time+window)
			na := countRange(sa.times, lo, hi)
			nb := countRange(sb.times, lo, hi)
			if na != nb {
				res.Windows = append(res.Windows, WindowDelta{At: c.Time, Cause: c.Cause, CountA: na, CountB: nb})
			}
		}
	}
	return res, nil
}

// countRange counts values in [lo, hi] within a sorted slice.
func countRange(ts []int64, lo, hi int64) int {
	a := sort.Search(len(ts), func(i int) bool { return ts[i] >= lo })
	b := sort.Search(len(ts), func(i int) bool { return ts[i] > hi })
	return b - a
}

// fmtEvent renders one event compactly for diff reports.
func fmtEvent(ev *obs.Event) string {
	if ev == nil {
		return "<end of trace>"
	}
	return fmt.Sprintf("%s t=%d core=%d pid=%d va=%#x dur=%d value=%d cause=%q",
		ev.Type, int64(ev.Time), ev.Core, ev.PID, ev.VA, int64(ev.Dur), ev.Value, ev.Cause)
}

// WriteText renders the diff as a deterministic human-readable report.
func (d *DiffResult) WriteText(w io.Writer) error {
	if d.Identical() {
		_, err := fmt.Fprintf(w, "traces identical: %d events\n", d.EventsA)
		return err
	}
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("traces diverge (%d vs %d events)\n", d.EventsA, d.EventsB)
	if d.First != nil {
		pf("first divergence at event #%d:\n  a: %s\n  b: %s\n",
			d.First.Index, fmtEvent(d.First.A), fmtEvent(d.First.B))
	}
	if len(d.Drift) > 0 {
		pf("counter drift:\n")
		for _, c := range d.Drift {
			pf("  %-18s count %d -> %d, dur %d -> %d\n", c.Type, c.CountA, c.CountB, int64(c.DurA), int64(c.DurB))
		}
	}
	if len(d.Windows) > 0 {
		pf("fault-injection windows (±%v) with event-count deltas:\n", d.Window)
		for _, fw := range d.Windows {
			pf("  t=%d cause=%q: %d -> %d events\n", int64(fw.At), fw.Cause, fw.CountA, fw.CountB)
		}
	}
	return err
}
