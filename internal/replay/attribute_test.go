package replay

import (
	"bytes"
	"strings"
	"testing"

	"itsim/internal/obs"
)

// goodTrace is a fully-accounted single-core run with one synchronous fault
// window (partially stolen by walk/pre-execute/recovery) and one async
// fault end landing inside an idle span.
func goodTrace() []obs.Event {
	return []obs.Event{
		{Time: 0, Type: obs.EvRunBegin, PID: -1, Cause: "ITS/test"},
		{Time: 0, Type: obs.EvDispatch, PID: 0, Cause: "wrf"},
		{Time: 10, Type: obs.EvMajorFaultBegin, PID: 0, VA: 0x1000},
		{Time: 20, Type: obs.EvPrefetchWalk, PID: 0, Dur: 5, Value: 3},
		{Time: 40, Type: obs.EvPreexecWindow, PID: 0, Dur: 15, Value: 30},
		{Time: 45, Type: obs.EvRecovery, PID: 0, Dur: 5, Cause: "interrupt"},
		{Time: 50, Type: obs.EvMajorFaultEnd, PID: 0, VA: 0x1000, Dur: 40, Cause: "sync"},
		{Time: 100, Type: obs.EvProcFinish, PID: 0, Dur: 100},
		{Time: 110, Type: obs.EvContextSwitch, PID: 1, Dur: 10},
		{Time: 110, Type: obs.EvDispatch, PID: 1, Cause: "gups"},
		{Time: 150, Type: obs.EvMajorFaultBegin, PID: 1, VA: 0x9000},
		{Time: 200, Type: obs.EvBlock, PID: 1, VA: 0x9000, Dur: 90},
		{Time: 210, Type: obs.EvContextSwitch, PID: 0, Dur: 10},
		{Time: 210, Type: obs.EvSchedIdleBegin, PID: -1},
		{Time: 250, Type: obs.EvMajorFaultEnd, PID: 1, VA: 0x9000, Dur: 100, Cause: "async"},
		{Time: 300, Type: obs.EvSchedIdleEnd, PID: -1},
		{Time: 300, Type: obs.EvDispatch, PID: 1, Cause: "gups"},
		{Time: 400, Type: obs.EvProcFinish, PID: 1, Dur: 100},
		{Time: 400, Type: obs.EvRunEnd, PID: -1},
	}
}

// attributeEvents folds a handcrafted stream through the real wire format.
func attributeEvents(t *testing.T, evs ...obs.Event) (*Attribution, error) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(encode(t, evs...)))
	if err != nil {
		t.Fatal(err)
	}
	return Attribute(r)
}

func TestAttributeGoodRun(t *testing.T) {
	att, err := attributeEvents(t, goodTrace()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(att.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(att.Runs))
	}
	run := att.Runs[0]
	if run.Label != "ITS/test" || run.Makespan != 400 {
		t.Fatalf("bad run header: %+v", run)
	}
	if len(run.Cores) != 1 {
		t.Fatalf("got %d cores, want 1", len(run.Cores))
	}
	c := run.Cores[0]
	if c.CPUTime != 290 || c.SwitchTime != 20 || c.IdleTime != 90 {
		t.Fatalf("core fold (cpu %v, switch %v, idle %v), want (290, 20, 90)", c.CPUTime, c.SwitchTime, c.IdleTime)
	}
	if c.Total() != run.Makespan {
		t.Fatalf("core total %v != makespan %v", c.Total(), run.Makespan)
	}
	if len(c.Procs) != 2 {
		t.Fatalf("got %d procs, want 2", len(c.Procs))
	}
	p0, p1 := c.Procs[0], c.Procs[1]
	if p0.PID != 0 || p0.Name != "wrf" || p0.CPUTime != 100 || p0.Execute != 60 ||
		p0.FaultWait != 15 || p0.PrefetchWalk != 5 || p0.Preexec != 15 || p0.Recovery != 5 ||
		p0.SyncFaults != 1 || p0.Dispatches != 1 {
		t.Fatalf("pid 0 fold wrong: %+v", p0)
	}
	if sum := p0.Execute + p0.FaultWait + p0.PrefetchWalk + p0.Preexec + p0.Recovery; sum != p0.CPUTime {
		t.Fatalf("pid 0 categories sum to %v, CPU time is %v", sum, p0.CPUTime)
	}
	if p1.PID != 1 || p1.Name != "gups" || p1.CPUTime != 190 || p1.Execute != 190 ||
		p1.SyncFaults != 0 || p1.Dispatches != 2 {
		t.Fatalf("pid 1 fold wrong: %+v", p1)
	}
	if run.Count(obs.EvMajorFaultBegin) != 2 || run.Count(obs.EvMajorFaultEnd) != 2 {
		t.Fatalf("bad event counts: %d begins, %d ends",
			run.Count(obs.EvMajorFaultBegin), run.Count(obs.EvMajorFaultEnd))
	}
}

func TestAttributeMultiRun(t *testing.T) {
	evs := append(goodTrace(), goodTrace()...)
	evs[len(goodTrace())].Cause = "Sync/test"
	att, err := attributeEvents(t, evs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(att.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(att.Runs))
	}
	if att.Runs[0].Label != "ITS/test" || att.Runs[1].Label != "Sync/test" {
		t.Fatalf("bad labels: %q, %q", att.Runs[0].Label, att.Runs[1].Label)
	}
	if att.Runs[1].Cores[0].CPUTime != 290 {
		t.Fatalf("second run fold wrong: %+v", att.Runs[1].Cores[0])
	}
}

// mutateTrace runs goodTrace with one transformation and asserts the fold
// rejects it with a message containing want.
func mutateTrace(t *testing.T, want string, fn func(evs []obs.Event) []obs.Event) {
	t.Helper()
	_, err := attributeEvents(t, fn(goodTrace())...)
	if err == nil {
		t.Fatalf("malformed trace accepted (wanted %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestAttributeCatchesUnclosedRun(t *testing.T) {
	mutateTrace(t, "no EvRunEnd", func(evs []obs.Event) []obs.Event {
		return evs[:len(evs)-1]
	})
}

func TestAttributeCatchesEventAfterRunEnd(t *testing.T) {
	mutateTrace(t, "outside any run", func(evs []obs.Event) []obs.Event {
		return append(evs, obs.Event{Time: 500, Type: obs.EvGauge, PID: -1, Cause: "llc_lines"})
	})
}

func TestAttributeCatchesOccupancyMismatch(t *testing.T) {
	mutateTrace(t, "occupancy mismatch", func(evs []obs.Event) []obs.Event {
		for i := range evs {
			if evs[i].Type == obs.EvProcFinish && evs[i].Time == 100 {
				evs[i].Dur = 99
			}
		}
		return evs
	})
}

func TestAttributeCatchesFilteredTrace(t *testing.T) {
	// Dropping the idle events leaves a conservation hole the fold must
	// report as such, since a filtered trace cannot be attributed.
	mutateTrace(t, "event filter", func(evs []obs.Event) []obs.Event {
		out := evs[:0]
		for _, ev := range evs {
			if ev.Type == obs.EvSchedIdleBegin || ev.Type == obs.EvSchedIdleEnd {
				continue
			}
			out = append(out, ev)
		}
		return out
	})
}

func TestAttributeCatchesOverlappingIntervals(t *testing.T) {
	mutateTrace(t, "on CPU", func(evs []obs.Event) []obs.Event {
		out := evs[:0]
		for _, ev := range evs {
			if ev.Type == obs.EvProcFinish && ev.Time == 100 {
				continue // pid 0 never leaves: next dispatch overlaps
			}
			out = append(out, ev)
		}
		return out
	})
}

func TestAttributeFoldedOutput(t *testing.T) {
	att, err := attributeEvents(t, goodTrace()...)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := att.WriteFolded(&a); err != nil {
		t.Fatal(err)
	}
	if err := att.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("folded output not deterministic")
	}
	for _, want := range []string{
		"ITS/test;core0;idle 90\n",
		"ITS/test;core0;switch 20\n",
		"ITS/test;core0;cpu;pid0:wrf;execute 60\n",
		"ITS/test;core0;cpu;pid0:wrf;sync-fault;wait 15\n",
		"ITS/test;core0;cpu;pid0:wrf;sync-fault;prefetch-walk 5\n",
		"ITS/test;core0;cpu;pid0:wrf;sync-fault;preexec 15\n",
		"ITS/test;core0;cpu;pid0:wrf;sync-fault;recovery 5\n",
		"ITS/test;core0;cpu;pid1:gups;execute 190\n",
	} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("folded output missing %q:\n%s", want, a.String())
		}
	}
}
