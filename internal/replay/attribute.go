package replay

import (
	"fmt"
	"io"
	"sort"

	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/sim"
)

// Attribution is the folded result of one trace: one section per run (a
// trace may carry several back-to-back runs).
type Attribution struct {
	Runs []*RunAttribution `json:"runs"`
}

// RunAttribution is one run's folded virtual-time accounting.
type RunAttribution struct {
	// Label is the run's EvRunBegin cause, conventionally "policy/batch".
	Label string `json:"label"`
	// Makespan is the EvRunEnd timestamp.
	Makespan sim.Time `json:"makespan_ns"`
	// Events counts every event of the run including the run markers.
	Events uint64 `json:"events"`
	// Cores holds the per-core folds, ascending by core id. Only cores
	// that emitted at least one event appear.
	Cores []*CoreAttr `json:"cores"`

	// counts tallies events by type for diffing and the folded footer.
	counts [obs.NumTypes]uint64
}

// CoreAttr is one core's fold: the three conservation categories plus the
// per-pid split of the CPU category.
type CoreAttr struct {
	Core       int         `json:"core"`
	CPUTime    sim.Time    `json:"cpu_time_ns"`
	SwitchTime sim.Time    `json:"context_switch_time_ns"`
	IdleTime   sim.Time    `json:"scheduler_idle_ns"`
	Dispatches uint64      `json:"dispatches"`
	Switches   uint64      `json:"switches"`
	IdleSpans  uint64      `json:"idle_spans"`
	Procs      []*ProcAttr `json:"procs"`
}

// Total is the core's attributed virtual time (== its local clock on a
// clean trace).
func (c *CoreAttr) Total() sim.Time { return c.CPUTime + c.SwitchTime + c.IdleTime }

// ProcAttr splits one process's CPU occupancy on one core. A process that
// migrates appears under every core it ran on. The identity
// CPUTime == Execute + FaultWait + PrefetchWalk + Preexec + Recovery
// holds exactly: Execute is occupancy outside synchronous fault windows,
// FaultWait the un-stolen residual of those windows (handler entry, device
// wait the policy could not use), and the last three are the stolen parts —
// the paper's "stolen idle" made visible per process.
type ProcAttr struct {
	PID          int      `json:"pid"`
	Name         string   `json:"name,omitempty"`
	CPUTime      sim.Time `json:"cpu_time_ns"`
	Execute      sim.Time `json:"execute_ns"`
	FaultWait    sim.Time `json:"fault_wait_ns"`
	PrefetchWalk sim.Time `json:"prefetch_walk_ns"`
	Preexec      sim.Time `json:"preexec_ns"`
	Recovery     sim.Time `json:"recovery_ns"`
	SyncFaults   uint64   `json:"sync_faults"`
	Dispatches   uint64   `json:"dispatches"`

	// syncTotal is the raw sum of synchronous fault-window durations;
	// FaultWait and Execute are derived from it when the run closes.
	syncTotal sim.Time
}

// coreFold is the streaming per-core state while a run is open.
type coreFold struct {
	attr       *coreEntry
	last       sim.Time
	dispatched bool
	pid        int
	start      sim.Time
	idleOpen   bool
	idleStart  sim.Time
}

// coreEntry pairs a CoreAttr under construction with its per-pid table.
type coreEntry struct {
	ca    *CoreAttr
	procs map[int]*ProcAttr
}

// folder is the whole streaming fold state.
type folder struct {
	out     *Attribution
	run     *RunAttribution // nil between runs
	cores   map[int]*coreFold
	coreIDs []int // insertion-ordered core ids for deterministic finalize
}

// Attribute folds a whole trace into per-run, per-core, per-pid
// virtual-time totals, validating interval discipline as it streams: spans
// must alternate and close, per-core time must be monotonic and fully
// attributed (the auditor's conservation invariant, replayed from the
// file), and nothing may follow a run's EvRunEnd. A trace recorded with an
// event filter that drops the scheduling classes fails here — attribution
// needs the full conservation-bearing stream.
func Attribute(r *Reader) (*Attribution, error) {
	f := &folder{out: &Attribution{}}
	for {
		ev, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := f.fold(ev); err != nil {
			return nil, fmt.Errorf("replay: line %d: %w", r.Line(), err)
		}
	}
	if f.run != nil {
		return nil, fmt.Errorf("replay: trace ended inside run %q (no EvRunEnd)", f.run.Label)
	}
	if len(f.out.Runs) == 0 {
		return nil, fmt.Errorf("replay: trace contains no runs")
	}
	return f.out, nil
}

// core returns (creating on demand) the fold state of one core.
func (f *folder) core(id int) *coreFold {
	if st, ok := f.cores[id]; ok {
		return st
	}
	st := &coreFold{attr: &coreEntry{ca: &CoreAttr{Core: id}, procs: make(map[int]*ProcAttr)}}
	f.cores[id] = st
	f.coreIDs = append(f.coreIDs, id)
	return st
}

// proc returns (creating on demand) the per-pid row of one core.
func (e *coreEntry) proc(pid int, name string) *ProcAttr {
	if p, ok := e.procs[pid]; ok {
		if p.Name == "" {
			p.Name = name
		}
		return p
	}
	p := &ProcAttr{PID: pid, Name: name}
	e.procs[pid] = p
	return p
}

// fold consumes one event. The switch is exhaustive over every obs event
// kind (enforced by the eventsink itslint pass): a new kind must be
// explicitly classified as interval-bearing or count-only.
func (f *folder) fold(ev obs.Event) error {
	if ev.Type == obs.EvRunBegin {
		if f.run != nil {
			return fmt.Errorf("RunBegin %q inside open run %q", ev.Cause, f.run.Label)
		}
		f.run = &RunAttribution{Label: ev.Cause}
		f.cores = make(map[int]*coreFold)
		f.coreIDs = nil
		f.run.Events++
		f.run.counts[ev.Type]++
		return nil
	}
	if f.run == nil {
		if fleetScope(ev.Type) {
			// Cluster-coordinator events (request arrivals, routing,
			// completions) are stamped in global fleet time and live
			// between the per-machine runs of a fleet trace; they carry
			// no per-core occupancy, so attribution skips them.
			return nil
		}
		return fmt.Errorf("%s event outside any run (after RunEnd or before RunBegin)", ev.Type)
	}
	f.run.Events++
	f.run.counts[ev.Type]++
	if ev.Type == obs.EvRunEnd {
		return f.finish(ev)
	}

	st := f.core(ev.Core)
	if ev.Time < st.last {
		return fmt.Errorf("core %d time went backwards: %v after %v", ev.Core, ev.Time, st.last)
	}
	st.last = ev.Time
	ca := st.attr.ca

	switch ev.Type {
	case obs.EvDispatch:
		if st.dispatched {
			return fmt.Errorf("core %d: dispatch of pid %d while pid %d still on CPU", ev.Core, ev.PID, st.pid)
		}
		if st.idleOpen {
			return fmt.Errorf("core %d: dispatch inside an open scheduler-idle span", ev.Core)
		}
		if got := ca.Total(); got != ev.Time {
			return fmt.Errorf("core %d: conservation broken at dispatch: clock %v but attributed %v — was the trace recorded with an event filter?",
				ev.Core, ev.Time, got)
		}
		st.dispatched = true
		st.pid = ev.PID
		st.start = ev.Time
		ca.Dispatches++
		st.attr.proc(ev.PID, ev.Cause).Dispatches++
	case obs.EvPreempt, obs.EvBlock, obs.EvProcFinish:
		if !st.dispatched {
			return fmt.Errorf("core %d: %s of pid %d with no process on CPU", ev.Core, ev.Type, ev.PID)
		}
		if ev.PID != st.pid {
			return fmt.Errorf("core %d: %s of pid %d but pid %d was dispatched", ev.Core, ev.Type, ev.PID, st.pid)
		}
		occ := ev.Time - st.start
		if ev.Dur != occ {
			return fmt.Errorf("core %d: occupancy mismatch: event reports %v, dispatch span is %v", ev.Core, ev.Dur, occ)
		}
		ca.CPUTime += occ
		st.attr.proc(ev.PID, "").CPUTime += occ
		st.dispatched = false
	case obs.EvContextSwitch:
		if st.dispatched {
			return fmt.Errorf("core %d: context switch charged while pid %d is on CPU", ev.Core, st.pid)
		}
		ca.SwitchTime += ev.Dur
		ca.Switches++
	case obs.EvSchedIdleBegin:
		if st.idleOpen {
			return fmt.Errorf("core %d: scheduler-idle begin inside an open idle span", ev.Core)
		}
		if st.dispatched {
			return fmt.Errorf("core %d: scheduler idle while pid %d is on CPU", ev.Core, st.pid)
		}
		st.idleOpen = true
		st.idleStart = ev.Time
	case obs.EvSchedIdleEnd:
		if !st.idleOpen {
			return fmt.Errorf("core %d: scheduler-idle end without begin", ev.Core)
		}
		ca.IdleTime += ev.Time - st.idleStart
		ca.IdleSpans++
		st.idleOpen = false
	case obs.EvMajorFaultEnd:
		// Only synchronous windows are CPU-attributed: they close inline
		// within the faulting process's dispatch. Async/spin/demote ends
		// fire off-CPU when the DMA lands and carry no occupancy.
		if ev.Cause == "sync" {
			if !st.dispatched || st.pid != ev.PID {
				return fmt.Errorf("core %d: synchronous fault end for pid %d outside its dispatch", ev.Core, ev.PID)
			}
			p := st.attr.proc(ev.PID, "")
			p.syncTotal += ev.Dur
			p.SyncFaults++
		}
	case obs.EvPrefetchWalk:
		if st.dispatched && st.pid == ev.PID {
			st.attr.proc(ev.PID, "").PrefetchWalk += ev.Dur
		}
	case obs.EvPreexecWindow:
		if st.dispatched && st.pid == ev.PID {
			st.attr.proc(ev.PID, "").Preexec += ev.Dur
		}
	case obs.EvRecovery:
		if st.dispatched && st.pid == ev.PID {
			st.attr.proc(ev.PID, "").Recovery += ev.Dur
		}
	case obs.EvMajorFaultBegin, obs.EvUnblock, obs.EvSliceExpiry, obs.EvPrefetchIssue,
		obs.EvPrefetchDrop, obs.EvPrefetchHit, obs.EvSwapIn, obs.EvEvict, obs.EvWriteBack,
		obs.EvGauge, obs.EvFaultInject, obs.EvIORetry, obs.EvDemote, obs.EvPrefetchThrottle,
		obs.EvRequestArrive, obs.EvRequestRoute, obs.EvRequestDone,
		obs.EvMachineDown, obs.EvMachineUp, obs.EvMachineDrain, obs.EvMachineDegrade,
		obs.EvReqTimeout, obs.EvReqRetry, obs.EvReqHedge, obs.EvReqShed:
		// Count-only: no CPU-time accounting rides on these.
	case obs.EvRunBegin, obs.EvRunEnd:
		// Handled above; listed to keep the switch exhaustive.
	}
	return nil
}

// fleetScope reports whether t is a cluster-coordinator event kind that a
// fleet trace legitimately carries outside the per-machine RunBegin/RunEnd
// frames (see internal/cluster).
func fleetScope(t obs.Type) bool {
	switch t {
	case obs.EvRequestArrive, obs.EvRequestRoute, obs.EvRequestDone,
		obs.EvMachineDown, obs.EvMachineUp, obs.EvMachineDrain, obs.EvMachineDegrade,
		obs.EvReqTimeout, obs.EvReqRetry, obs.EvReqHedge, obs.EvReqShed:
		return true
	default:
		return false
	}
}

// finish closes the current run at its EvRunEnd.
func (f *folder) finish(ev obs.Event) error {
	for _, id := range f.coreIDs {
		st := f.cores[id]
		if st.dispatched {
			return fmt.Errorf("run ended with pid %d still dispatched on core %d", st.pid, id)
		}
		if st.idleOpen {
			return fmt.Errorf("run ended inside an open scheduler-idle span on core %d", id)
		}
	}
	run := f.run
	run.Makespan = ev.Time
	sort.Ints(f.coreIDs)
	for _, id := range f.coreIDs {
		e := f.cores[id].attr
		e.ca.Procs = e.sortedProcs()
		for _, p := range e.ca.Procs {
			p.FaultWait = p.syncTotal - p.PrefetchWalk - p.Preexec - p.Recovery
			p.Execute = p.CPUTime - p.syncTotal
		}
		run.Cores = append(run.Cores, e.ca)
	}
	f.out.Runs = append(f.out.Runs, run)
	f.run = nil
	f.cores = nil
	f.coreIDs = nil
	return nil
}

// sortedProcs extracts the per-pid rows ascending by pid.
func (e *coreEntry) sortedProcs() []*ProcAttr {
	out := make([]*ProcAttr, 0, len(e.procs))
	//itslint:allow order-insensitive extraction, sorted immediately below
	for _, p := range e.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// CoreAttributions converts one run's fold into the metrics cross-check
// form, for Summary.CheckAttribution.
func (r *RunAttribution) CoreAttributions() []metrics.CoreAttribution {
	out := make([]metrics.CoreAttribution, len(r.Cores))
	for i, c := range r.Cores {
		out[i] = metrics.CoreAttribution{
			Core:              c.Core,
			CPUTime:           c.CPUTime,
			ContextSwitchTime: c.SwitchTime,
			SchedulerIdle:     c.IdleTime,
		}
	}
	return out
}

// Count returns how many events of one type the run carried.
func (r *RunAttribution) Count(t obs.Type) uint64 { return r.counts[t] }

// WriteFolded renders the attribution as flame-style folded stacks — one
// "frame1;frame2;... value" line per leaf, value in virtual nanoseconds —
// directly consumable by flamegraph.pl / speedscope / inferno. Zero-valued
// leaves are omitted; output is byte-deterministic.
func (a *Attribution) WriteFolded(w io.Writer) error {
	var err error
	emit := func(v sim.Time, format string, args ...any) {
		if err != nil || v <= 0 {
			return
		}
		if _, e := fmt.Fprintf(w, format+" %d\n", append(args, int64(v))...); e != nil {
			err = e
		}
	}
	for _, run := range a.Runs {
		for _, c := range run.Cores {
			emit(c.IdleTime, "%s;core%d;idle", run.Label, c.Core)
			emit(c.SwitchTime, "%s;core%d;switch", run.Label, c.Core)
			for _, p := range c.Procs {
				name := p.Name
				if name == "" {
					name = "?"
				}
				emit(p.Execute, "%s;core%d;cpu;pid%d:%s;execute", run.Label, c.Core, p.PID, name)
				emit(p.FaultWait, "%s;core%d;cpu;pid%d:%s;sync-fault;wait", run.Label, c.Core, p.PID, name)
				emit(p.PrefetchWalk, "%s;core%d;cpu;pid%d:%s;sync-fault;prefetch-walk", run.Label, c.Core, p.PID, name)
				emit(p.Preexec, "%s;core%d;cpu;pid%d:%s;sync-fault;preexec", run.Label, c.Core, p.PID, name)
				emit(p.Recovery, "%s;core%d;cpu;pid%d:%s;sync-fault;recovery", run.Label, c.Core, p.PID, name)
			}
		}
	}
	return err
}
