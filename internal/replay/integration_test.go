package replay_test

import (
	"bytes"
	"fmt"
	"testing"

	"itsim/internal/core"
	"itsim/internal/fault"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/replay"
	"itsim/internal/sim"
	"itsim/internal/workload"
)

// The acceptance criterion: for every policy and core count of the test
// matrix, the replayed attribution totals must reconcile exactly — zero
// tolerance, virtual-time arithmetic — with the per-core conservation
// ledger (CPUTime + SchedulerIdle + ContextSwitchTime == LocalClock).
func TestAttributeReconcilesWithLedgerMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy×cores matrix is slow")
	}
	b := workload.Batches()[1]
	for _, kind := range policy.Kinds() {
		for _, cores := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/cores=%d", kind, cores), func(t *testing.T) {
				var buf bytes.Buffer
				trc := obs.NewTracer(obs.NewJSONL(&buf), obs.Filter{})
				run, err := core.RunBatch(b, kind, core.Options{Scale: 0.02, Cores: cores, Tracer: trc})
				if err != nil {
					t.Fatal(err)
				}
				if err := trc.Close(); err != nil {
					t.Fatal(err)
				}
				r, err := replay.NewReader(&buf)
				if err != nil {
					t.Fatal(err)
				}
				att, err := replay.Attribute(r)
				if err != nil {
					t.Fatal(err)
				}
				if len(att.Runs) != 1 {
					t.Fatalf("got %d runs, want 1", len(att.Runs))
				}
				sum := run.Summary()
				if err := sum.CheckAttribution(att.Runs[0].CoreAttributions()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// A faulty, spin-budgeted ITS run (demotions, retries, injected tail
// spikes) must reconcile just as exactly as a healthy one.
func TestAttributeReconcilesUnderFaultInjection(t *testing.T) {
	b := workload.Batches()[1]
	for _, cores := range []int{1, 2} {
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			var buf bytes.Buffer
			trc := obs.NewTracer(obs.NewJSONL(&buf), obs.Filter{})
			run, err := core.RunBatch(b, policy.ITS, core.Options{
				Scale: 0.02, Cores: cores, Tracer: trc,
				Fault:      fault.Config{Seed: 42, TailProb: 0.2, TailMult: 16, StallProb: 0.01, DMAFailProb: 0.05},
				SpinBudget: 4 * sim.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := trc.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := replay.NewReader(&buf)
			if err != nil {
				t.Fatal(err)
			}
			att, err := replay.Attribute(r)
			if err != nil {
				t.Fatal(err)
			}
			sum := run.Summary()
			if err := sum.CheckAttribution(att.Runs[0].CoreAttributions()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Two identically-seeded runs must replay-diff to zero divergence, and
// their folded attribution output must be byte-identical.
func TestDiffIdenticalSeededRuns(t *testing.T) {
	mk := func() []byte {
		var buf bytes.Buffer
		trc := obs.NewTracer(obs.NewJSONL(&buf), obs.Filter{})
		_, err := core.RunBatch(workload.Batches()[1], policy.ITS, core.Options{
			Scale: 0.02, Tracer: trc,
			Fault:      fault.Config{Seed: 7, TailProb: 0.1, TailMult: 8, DMAFailProb: 0.02},
			SpinBudget: 4 * sim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := trc.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatal("identically-seeded traces differ at the byte level")
	}
	ra, err := replay.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := replay.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	d, err := replay.Diff(ra, rb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Identical() {
		var rep bytes.Buffer
		_ = d.WriteText(&rep)
		t.Fatalf("identically-seeded runs diverge:\n%s", rep.String())
	}

	fold := func(data []byte) []byte {
		r, err := replay.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		att, err := replay.Attribute(r)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := att.WriteFolded(&out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(fold(a), fold(b)) {
		t.Fatal("folded attribution output not byte-identical across identical traces")
	}
}

// A one-event perturbation must be localized to its first divergent event.
func TestDiffLocalizesPerturbation(t *testing.T) {
	var buf bytes.Buffer
	trc := obs.NewTracer(obs.NewJSONL(&buf), obs.Filter{})
	_, err := core.RunBatch(workload.Batches()[1], policy.ITS, core.Options{Scale: 0.02, Tracer: trc})
	if err != nil {
		t.Fatal(err)
	}
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := replay.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) < 100 {
		t.Fatalf("trace too short (%d events) for a mid-stream perturbation", len(evs))
	}
	idx := len(evs) / 2
	perturbed := make([]obs.Event, len(evs))
	copy(perturbed, evs)
	perturbed[idx].Dur += 3

	var pbuf bytes.Buffer
	sink := obs.NewJSONL(&pbuf)
	for _, ev := range perturbed {
		sink.Write(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	ra, err := replay.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := replay.NewReader(bytes.NewReader(pbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := replay.Diff(ra, rb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Identical() {
		t.Fatal("perturbed trace diffs as identical")
	}
	if d.First == nil || d.First.Index != idx {
		t.Fatalf("first divergence at %+v, want index %d", d.First, idx)
	}
	if d.First.A == nil || d.First.B == nil || d.First.B.Dur != d.First.A.Dur+3 {
		t.Fatalf("divergent pair does not show the perturbation: %+v", d.First)
	}
	if len(d.Drift) != 1 || d.Drift[0].Type != evs[idx].Type.String() {
		t.Fatalf("counter drift %+v not localized to the perturbed type %s", d.Drift, evs[idx].Type)
	}
}
