package replay_test

import (
	"bytes"
	"fmt"
	"testing"

	"itsim/internal/core"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/replay"
	"itsim/internal/sim"
	"itsim/internal/workload"
)

// TestStealIdleAttribution pins down per-core gauge and idle-interval
// emission under SMP work stealing: the idle wait a thief core spends
// before pulling a process over is attributed to the thief (not the
// victim), idle intervals never overlap, and nothing — gauges included —
// leaks past RunEnd.
func TestStealIdleAttribution(t *testing.T) {
	var buf bytes.Buffer
	trc := obs.NewTracer(obs.NewJSONL(&buf), obs.Filter{})
	run, err := core.RunBatch(workload.Batches()[2], policy.Sync, core.Options{
		Scale: 0.02, Cores: 4, Tracer: trc, GaugeInterval: 200 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}
	sum := run.Summary()
	var steals uint64
	for _, c := range sum.Cores {
		steals += c.Steals
	}
	if steals == 0 {
		t.Fatal("workload produced no steals; pick a config that does")
	}

	evs, err := replay.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// RunEnd closes the trace: no event of any kind after it.
	if last := evs[len(evs)-1]; last.Type != obs.EvRunEnd {
		t.Fatalf("last event is %s, want RunEnd", last.Type)
	}
	endT := evs[len(evs)-1].Time
	for i, ev := range evs[:len(evs)-1] {
		if ev.Type == obs.EvRunEnd {
			t.Fatalf("event %d: RunEnd before end of trace", i)
		}
		if ev.Time > endT {
			t.Fatalf("event %d (%s at %d) is later than RunEnd at %d", i, ev.Type, int64(ev.Time), int64(endT))
		}
	}

	// Per-core: idle intervals pair up without overlap, and every
	// migration's preceding idle span is stamped with the thief core.
	type coreState struct {
		idleOpen  bool
		idleStart sim.Time
		idleSum   sim.Time
		lastEnd   sim.Time // end of the most recent idle span
		endValid  bool
		migrates  int
	}
	states := make([]coreState, len(sum.Cores))
	for i, ev := range evs {
		if ev.Core >= len(states) {
			t.Fatalf("event %d on core %d, but summary has %d cores", i, ev.Core, len(states))
		}
		st := &states[ev.Core]
		switch ev.Type {
		case obs.EvSchedIdleBegin:
			if st.idleOpen {
				t.Fatalf("event %d: core %d opens an idle span inside another", i, ev.Core)
			}
			if st.endValid && ev.Time < st.lastEnd {
				t.Fatalf("event %d: core %d idle span at %d overlaps previous ending %d",
					i, ev.Core, int64(ev.Time), int64(st.lastEnd))
			}
			st.idleOpen, st.idleStart = true, ev.Time
		case obs.EvSchedIdleEnd:
			if !st.idleOpen {
				t.Fatalf("event %d: core %d closes an idle span it never opened", i, ev.Core)
			}
			st.idleOpen = false
			st.idleSum += ev.Time - st.idleStart
			st.lastEnd, st.endValid = ev.Time, true
		case obs.EvContextSwitch:
			if ev.Cause == "migrate" {
				st.migrates++
				// The thief idled from the steal decision up to the victim's
				// ready time; that span — if any — must sit on this core and
				// touch the migration.
				if st.endValid && st.lastEnd > ev.Time {
					t.Fatalf("event %d: migrate on core %d at %d precedes its idle end %d",
						i, ev.Core, int64(ev.Time), int64(st.lastEnd))
				}
			}
		}
	}
	var migrates, wantMigrates int
	for id := range states {
		st := &states[id]
		if st.idleOpen {
			t.Fatalf("core %d: idle span never closed before RunEnd", id)
		}
		if got, want := st.idleSum, sum.Cores[id].SchedulerIdle; got != want {
			t.Fatalf("core %d: trace idle spans sum to %d, ledger says %d", id, int64(got), int64(want))
		}
		if got, want := st.migrates, int(sum.Cores[id].Steals); got != want {
			t.Fatalf("core %d: %d migrate switches in trace, ledger counts %d steals", id, got, want)
		}
		migrates += st.migrates
		wantMigrates += int(sum.Cores[id].Steals)
	}
	if migrates != wantMigrates || migrates == 0 {
		t.Fatalf("%d migrate switches, want %d (> 0)", migrates, wantMigrates)
	}

	// Gauges are per-core and never fire after the run ends.
	gauges := map[int]int{}
	for _, ev := range evs {
		if ev.Type == obs.EvGauge {
			gauges[ev.Core]++
		}
	}
	if len(gauges) == 0 {
		t.Fatal("no gauge events despite GaugeInterval")
	}

	// And the full attribution still reconciles exactly.
	r, err := replay.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	att, err := replay.Attribute(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.CheckAttribution(att.Runs[0].CoreAttributions()); err != nil {
		t.Fatal(err)
	}

	// The migrated pid's very next dispatch is on the thief core.
	for i, ev := range evs {
		if ev.Type != obs.EvContextSwitch || ev.Cause != "migrate" {
			continue
		}
		found := false
		for _, nx := range evs[i+1:] {
			if nx.Type == obs.EvDispatch && nx.PID == ev.PID {
				if nx.Core != ev.Core {
					t.Fatalf("pid %d migrated to core %d but next dispatched on core %d", ev.PID, ev.Core, nx.Core)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pid %d migrated at event %d but never dispatched again", ev.PID, i)
		}
	}
}

// TestStealSummaryString guards against the steal counters silently
// vanishing from the summary (the satellite's observability contract).
func TestStealSummaryString(t *testing.T) {
	run, err := core.RunBatch(workload.Batches()[2], policy.Sync, core.Options{Scale: 0.02, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := run.Summary()
	var steals, migrated uint64
	for _, c := range sum.Cores {
		steals += c.Steals
		migrated += c.MigratedAway
	}
	if steals != migrated {
		t.Fatalf("steals (%d) and migrations (%d) must pair up", steals, migrated)
	}
	if steals == 0 {
		t.Fatal("expected at least one steal in this configuration")
	}
	_ = fmt.Sprintf("%d", steals)
}
