package replay

import (
	"bytes"
	"strings"
	"testing"

	"itsim/internal/obs"
	"itsim/internal/sim"
)

// diffEvents runs Diff over two handcrafted streams through the real wire
// format.
func diffEvents(t *testing.T, a, b []obs.Event, window sim.Time) *DiffResult {
	t.Helper()
	ra, err := NewReader(bytes.NewReader(encode(t, a...)))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewReader(bytes.NewReader(encode(t, b...)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(ra, rb, window)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiffIdentical(t *testing.T) {
	d := diffEvents(t, goodTrace(), goodTrace(), 0)
	if !d.Identical() {
		t.Fatalf("identical traces diverge: %+v", d)
	}
	if d.First != nil || len(d.Drift) != 0 || len(d.Windows) != 0 {
		t.Fatalf("identical diff carries findings: %+v", d)
	}
	if d.EventsA != len(goodTrace()) || d.EventsB != len(goodTrace()) {
		t.Fatalf("event counts %d/%d, want %d", d.EventsA, d.EventsB, len(goodTrace()))
	}
	var out bytes.Buffer
	if err := d.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "traces identical: 19 events") {
		t.Fatalf("unexpected report: %s", out.String())
	}
}

func TestDiffFirstDivergentEvent(t *testing.T) {
	b := goodTrace()
	b[7].Dur++ // ProcFinish @100: occupancy perturbed by 1ns
	d := diffEvents(t, goodTrace(), b, 0)
	if d.Identical() {
		t.Fatal("perturbed trace diffs as identical")
	}
	if d.First == nil || d.First.Index != 7 {
		t.Fatalf("first divergence %+v, want index 7", d.First)
	}
	if d.First.A == nil || d.First.B == nil ||
		d.First.A.Type != obs.EvProcFinish || d.First.B.Dur != d.First.A.Dur+1 {
		t.Fatalf("divergent pair wrong: a=%+v b=%+v", d.First.A, d.First.B)
	}
	if len(d.Drift) != 1 || d.Drift[0].Type != "ProcFinish" ||
		d.Drift[0].CountA != d.Drift[0].CountB || d.Drift[0].DurB != d.Drift[0].DurA+1 {
		t.Fatalf("drift %+v not localized to ProcFinish duration", d.Drift)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	a := goodTrace()
	b := a[:len(a)-1] // trace B ends early
	d := diffEvents(t, a, b, 0)
	if d.Identical() {
		t.Fatal("truncated trace diffs as identical")
	}
	if d.First == nil || d.First.Index != len(b) || d.First.A == nil || d.First.B != nil {
		t.Fatalf("divergence %+v, want one-sided at index %d", d.First, len(b))
	}
	var out bytes.Buffer
	if err := d.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<end of trace>") {
		t.Fatalf("report does not show the one-sided end:\n%s", out.String())
	}
}

func TestDiffCounterDriftAggregates(t *testing.T) {
	b := goodTrace()
	// Swap the async fault end for a gauge: two types drift in count.
	b[14] = obs.Event{Time: 250, Type: obs.EvGauge, PID: -1, Value: 9, Cause: "llc_lines"}
	d := diffEvents(t, goodTrace(), b, 0)
	if len(d.Drift) != 2 {
		t.Fatalf("drift %+v, want MajorFaultEnd and Gauge entries", d.Drift)
	}
	// Enum order: MajorFaultEnd before Gauge.
	if d.Drift[0].Type != "MajorFaultEnd" || d.Drift[0].CountA != 2 || d.Drift[0].CountB != 1 {
		t.Fatalf("drift[0] wrong: %+v", d.Drift[0])
	}
	if d.Drift[1].Type != "Gauge" || d.Drift[1].CountA != 0 || d.Drift[1].CountB != 1 {
		t.Fatalf("drift[1] wrong: %+v", d.Drift[1])
	}
}

func TestDiffFaultWindows(t *testing.T) {
	// Both traces carry a fault injection at t=120; trace B gains an extra
	// retry inside the ±100ns window and an unrelated far-away event.
	mk := func(extra ...obs.Event) []obs.Event {
		evs := []obs.Event{
			{Time: 0, Type: obs.EvRunBegin, PID: -1, Cause: "ITS/test"},
			{Time: 120, Type: obs.EvFaultInject, PID: 0, Cause: "tail"},
		}
		evs = append(evs, extra...)
		return append(evs, obs.Event{Time: 5000, Type: obs.EvRunEnd, PID: -1})
	}
	a := mk()
	b := mk(
		obs.Event{Time: 150, Type: obs.EvIORetry, PID: 0, Cause: "dma"},
		obs.Event{Time: 4000, Type: obs.EvGauge, PID: -1, Cause: "llc_lines"},
	)
	d := diffEvents(t, a, b, 100)
	if d.Window != 100 {
		t.Fatalf("window %v, want 100", d.Window)
	}
	if len(d.Windows) != 1 {
		t.Fatalf("windows %+v, want exactly the t=120 injection", d.Windows)
	}
	w := d.Windows[0]
	if w.At != 120 || w.Cause != "tail" || w.CountA != 1 || w.CountB != 2 {
		t.Fatalf("window delta wrong: %+v", w)
	}
}

func TestDiffDefaultWindow(t *testing.T) {
	b := goodTrace()
	b[7].Dur++
	d := diffEvents(t, goodTrace(), b, 0)
	if d.Window != 50*sim.Microsecond {
		t.Fatalf("default window %v, want 50µs", d.Window)
	}
}
