package core

import (
	"runtime"
	"sync"
)

// runJobs executes job(0..n-1) on a bounded pool of GOMAXPROCS workers and
// returns the lowest-index error, if any.
//
// A simulated run is a pure function of its batch, policy and configuration
// — workload.Batch.Generators builds fresh generators per call and the
// machine models share no mutable globals — so independent runs of a grid
// can execute on separate OS threads. The job indexing keeps results (and
// the first reported error) in a deterministic order, making parallel
// output byte-identical to serial output.
//
// Tracing forces serial in-order execution (workers = 1): multi-run
// experiments interleave their event streams into one shared sink, and that
// interleaving is part of the observable output.
func (o Options) runJobs(n int, job func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if o.Tracer != nil || workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			// Serial mode stops at the first error like a plain loop, so
			// a traced experiment never starts work after a failure.
			if errs[i] = job(i); errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
