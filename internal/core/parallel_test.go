package core

import (
	"encoding/json"
	"errors"
	"testing"

	"itsim/internal/policy"
	"itsim/internal/workload"
)

func TestRunJobsOrderAndErrors(t *testing.T) {
	out := make([]int, 16)
	if err := (Options{}).runJobs(len(out), func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("job %d wrote %d", i, v)
		}
	}

	boom := errors.New("boom")
	err := (Options{}).runJobs(8, func(i int) error {
		if i >= 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want job error, got %v", err)
	}
}

// TestParallelGridMatchesSerial pins the harness guarantee: the
// host-parallel grid is byte-identical to running each cell one at a time.
func TestParallelGridMatchesSerial(t *testing.T) {
	opts := tinyOpts()
	grid, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(workload.Batches()) {
		t.Fatalf("%d grid rows", len(grid))
	}
	// Serial reference: the same cells via direct RunBatch calls.
	for _, gr := range grid {
		for _, k := range policy.Kinds() {
			ref, err := RunBatch(gr.Batch, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := json.Marshal(ref.Summary())
			got, _ := json.Marshal(gr.Runs[k].Summary())
			if string(got) != string(want) {
				t.Errorf("%s/%s: parallel grid cell diverged from serial run", gr.Batch.Name, k)
			}
		}
	}
}

// TestMultiCoreOptionsRoute checks the Options.Cores routing: multi-core
// counts reach the SMP model (per-core metrics appear), invalid counts
// surface as errors, and the single-instance entry points refuse them.
func TestMultiCoreOptionsRoute(t *testing.T) {
	opts := tinyOpts()
	opts.Cores = 2
	b := workload.Batches()[0]
	run, err := RunBatch(b, policy.Sync, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Cores) != 2 {
		t.Fatalf("want 2 core entries, got %d", len(run.Cores))
	}

	opts.Cores = -3
	if _, err := RunBatch(b, policy.Sync, opts); err == nil {
		t.Fatal("negative core count did not error")
	}

	opts.Cores = 2
	if _, err := RunBatchWithPolicy(b, policy.New(policy.Sync), opts); err == nil {
		t.Fatal("RunBatchWithPolicy accepted a multi-core option")
	}
}
