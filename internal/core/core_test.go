package core

import (
	"testing"

	"itsim/internal/machine"
	"itsim/internal/metrics"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/workload"
)

// tinyOpts runs experiments at 1% scale so the whole grid stays fast.
func tinyOpts() Options {
	cfg := machine.DefaultConfig()
	cfg.MinSlice, cfg.MaxSlice = SliceRange(0.01)
	cfg.MaxSimTime = 30 * sim.Second
	return Options{Scale: 0.01, Machine: &cfg}
}

func TestSliceRange(t *testing.T) {
	min1, max1 := SliceRange(1.0)
	if min1 <= 0 || max1 <= min1 {
		t.Fatalf("SliceRange(1) = %v, %v", min1, max1)
	}
	minS, maxS := SliceRange(0.01)
	if minS < 20*sim.Microsecond {
		t.Fatalf("min slice %v below floor", minS)
	}
	if maxS < 10*minS {
		t.Fatalf("max slice %v not well above min %v", maxS, minS)
	}
	if maxS >= max1 {
		t.Fatal("slices did not scale down")
	}
}

func TestDRAMRatioFor(t *testing.T) {
	if DRAMRatioFor(0) != DRAMRatioFor(1) {
		t.Fatal("low-DI batches should share a ratio")
	}
	if DRAMRatioFor(2) <= DRAMRatioFor(0) {
		t.Fatal("DI-heavy batches need the larger ratio")
	}
}

func TestRunBatchProducesCompleteMetrics(t *testing.T) {
	b := workload.Batches()[0]
	run, err := RunBatch(b, policy.Sync, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if run.Policy != "Sync" || run.Batch != b.Name {
		t.Fatalf("labels: %q %q", run.Policy, run.Batch)
	}
	if len(run.Procs) != 6 {
		t.Fatalf("%d procs", len(run.Procs))
	}
	for _, p := range run.Procs {
		if !p.Finished || p.Instructions == 0 {
			t.Fatalf("proc %s incomplete: %+v", p.Name, p)
		}
	}
	if run.Makespan <= 0 || run.TotalIdle() <= 0 {
		t.Fatal("degenerate run metrics")
	}
}

func TestRunBatchHonoursITSConfig(t *testing.T) {
	b := workload.Batches()[0]
	opts := tinyOpts()
	opts.ITS = policy.ITSConfig{DisablePrefetch: true, DisablePreExecute: true, DisableSelfSacrificing: true}
	run, err := RunBatch(b, policy.ITS, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range run.Procs {
		if p.PrefetchIssued != 0 {
			t.Fatal("DisablePrefetch ignored by RunBatch")
		}
	}
}

func TestRunBatchWithPolicyCustom(t *testing.T) {
	b := workload.Batches()[0]
	pol := policy.NewITS(policy.ITSConfig{PrefetchDegree: 2})
	run, err := RunBatchWithPolicy(b, pol, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if run.Policy != "ITS" {
		t.Fatalf("policy label %q", run.Policy)
	}
}

func TestNormalized(t *testing.T) {
	gr := GridResult{Runs: map[policy.Kind]*metrics.Run{}}
	mk := func(idleMs int64) *metrics.Run {
		r := metrics.NewRun("x", "b")
		p := r.AddProcess(0, "w", 1)
		p.MemStall = sim.Time(idleMs) * sim.Millisecond
		return r
	}
	gr.Runs[policy.ITS] = mk(10)
	gr.Runs[policy.Sync] = mk(15)
	gr.Runs[policy.Async] = mk(30)
	n := gr.Normalized(MetricIdle, policy.ITS)
	if n[policy.ITS] != 1.0 {
		t.Fatalf("ITS normalized to %v", n[policy.ITS])
	}
	if n[policy.Sync] != 1.5 || n[policy.Async] != 3.0 {
		t.Fatalf("normalized = %v", n)
	}
}

func TestNormalizedMissingRef(t *testing.T) {
	gr := GridResult{Runs: map[policy.Kind]*metrics.Run{}}
	if got := gr.Normalized(MetricIdle, policy.ITS); len(got) != 0 {
		t.Fatalf("missing ref produced %v", got)
	}
}

func TestObservationMembersMatchPaper(t *testing.T) {
	m := ObservationMembers()
	want := []string{workload.Wrf, workload.Blender, workload.PageRank, workload.RandomWalk, workload.Graph500}
	if len(m) != len(want) {
		t.Fatalf("members = %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("members = %v, want %v", m, want)
		}
	}
}

func TestRunObservationShape(t *testing.T) {
	pts, err := RunObservation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // 2..5 processes
		t.Fatalf("%d points", len(pts))
	}
	for i, pt := range pts {
		if pt.Processes != i+2 {
			t.Fatalf("point %d has %d processes", i, pt.Processes)
		}
		if pt.IdleTime <= 0 || pt.Makespan <= 0 || pt.IdleFraction <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
	}
	// The paper's observation: idle time grows with process count.
	for i := 1; i < len(pts); i++ {
		if pts[i].IdleTime <= pts[i-1].IdleTime {
			t.Fatalf("idle time not increasing: %v then %v",
				pts[i-1].IdleTime, pts[i].IdleTime)
		}
	}
	// "more than 22% of CPU idle time" with multiprogramming.
	if pts[len(pts)-1].IdleFraction < 0.22 {
		t.Fatalf("idle fraction %v below the paper's 22%% floor", pts[len(pts)-1].IdleFraction)
	}
}

// TestGridHeadline is the repository's miniature end-to-end check of the
// paper's headline claims: on every batch, ITS has the lowest total idle
// time, and Async the highest.
func TestGridHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	grid, err := RunGrid(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 4 {
		t.Fatalf("%d grid rows", len(grid))
	}
	for _, gr := range grid {
		n := gr.Normalized(MetricIdle, policy.ITS)
		for _, k := range policy.Kinds() {
			if k == policy.ITS {
				continue
			}
			if n[k] < 1.0 {
				t.Errorf("%s: %v idle %.3f× below ITS", gr.Batch.Name, k, n[k])
			}
		}
		if n[policy.Async] < n[policy.Sync] {
			t.Errorf("%s: Async (%.2f) below Sync (%.2f)", gr.Batch.Name, n[policy.Async], n[policy.Sync])
		}
	}
}

func TestRunCrossoverShape(t *testing.T) {
	if testing.Short() {
		t.Skip("crossover sweep in -short mode")
	}
	pts, err := RunCrossover(tinyOpts(), []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	// At 4 KiB units the ULL-era premise holds: Sync wins. At 256 KiB
	// units the killer-microsecond logic inverts: Async wins back.
	if pts[0].Winner != "Sync" {
		t.Fatalf("4 KiB unit: winner = %s, want Sync (makespans %v vs %v)",
			pts[0].Winner, pts[0].SyncMakespan, pts[0].AsyncMakespan)
	}
	if pts[1].Winner != "Async" {
		t.Fatalf("256 KiB unit: winner = %s, want Async (makespans %v vs %v)",
			pts[1].Winner, pts[1].SyncMakespan, pts[1].AsyncMakespan)
	}
	if pts[0].IOBytes != 4096 || pts[1].IOBytes != 64*4096 {
		t.Fatalf("IO sizes wrong: %+v", pts)
	}
}

func TestRunSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep in -short mode")
	}
	res, err := RunSensitivity("1_Data_Intensive", 3, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d policies", len(res))
	}
	for _, r := range res {
		if r.Min > r.Mean || r.Mean > r.Max {
			t.Fatalf("%v: min/mean/max disordered: %+v", r.Policy, r)
		}
		if r.Policy == policy.ITS {
			if r.Min != 1.0 || r.Max != 1.0 {
				t.Fatalf("ITS not normalized to itself: %+v", r)
			}
			continue
		}
		// The design's ordering must hold across every draw: even the
		// best draw leaves every baseline at or above ITS.
		if r.Min < 1.0 {
			t.Fatalf("%v beat ITS on some draw: %+v", r.Policy, r)
		}
	}
	if _, err := RunSensitivity("nope", 2, tinyOpts()); err == nil {
		t.Fatal("unknown batch accepted")
	}
}

func TestRunSpinSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spin sweep in -short mode")
	}
	pts, err := RunSpinSweep(tinyOpts(), []sim.Time{sim.Microsecond, 20 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	// 2 thresholds + Sync + Async + ITS.
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Name != "ITS" || last.IdleVsITS != 1.0 {
		t.Fatalf("reference row wrong: %+v", last)
	}
	for _, pt := range pts {
		if pt.Idle <= 0 || pt.Makespan <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
		// In the ULL regime (3 µs I/O < 7 µs switch) no hybrid threshold
		// beats ITS.
		if pt.Name != "ITS" && pt.IdleVsITS < 1.0 {
			t.Fatalf("%s beat ITS: %+v", pt.Name, pt)
		}
	}
	// A generous threshold behaves like Sync (never blocks).
	var generous, syncIdle sim.Time
	for _, pt := range pts {
		if pt.Threshold == 20*sim.Microsecond {
			generous = pt.Idle
		}
		if pt.Name == "Sync" {
			syncIdle = pt.Idle
		}
	}
	if generous != syncIdle {
		t.Fatalf("generous spin (%v) should equal Sync (%v)", generous, syncIdle)
	}
}
