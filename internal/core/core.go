// Package core orchestrates the paper's experiments: it instantiates
// process batches, runs them through the simulated machine under each
// I/O-mode policy, and post-processes the metrics into the normalized
// figures of the evaluation (§4.2).
//
// This is the layer the public itsim package re-exports; examples and the
// benchmark harness drive everything through it.
package core

import (
	"errors"
	"fmt"

	"itsim/internal/chaos"
	"itsim/internal/fault"
	"itsim/internal/machine"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/smp"
	"itsim/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Scale multiplies workload footprints and trace lengths (1.0 = the
	// full-size experiment; tests use much smaller values).
	Scale float64
	// Cores selects the simulated core count (the -cores flag). 0 defers
	// to Machine (or the single-core default); values above 1 run on the
	// multi-core SMP model with per-core schedulers and work stealing.
	// Invalid counts surface as errors from the run functions.
	Cores int
	// Machine overrides the platform configuration; nil selects
	// machine.DefaultConfig().
	Machine *machine.Config
	// ITS tunes the ITS policy used by RunBatch/RunGrid (ablations);
	// the zero value selects the paper defaults.
	ITS policy.ITSConfig
	// Fault configures deterministic device fault injection on every run
	// started through this Options value; the zero value injects
	// nothing. Composes with Machine: a non-nil Machine config's own
	// Fault field wins when this one is zero.
	Fault fault.Config
	// Chaos configures deterministic machine-level chaos injection; it
	// only affects the fleet experiment (the single-machine experiments
	// have no machine population to fail). The zero value injects nothing.
	Chaos chaos.Config
	// SpinBudget bounds synchronous fault waits (0 = unbounded, the
	// historical behaviour): waits predicted to exceed it demote to
	// async context switches. Same precedence as Fault.
	SpinBudget sim.Time
	// Tracer receives the simulation event stream of every run started
	// through this Options value (nil = tracing off). Multi-run
	// experiments interleave their runs into the same sink, separated by
	// RunBegin events.
	Tracer *obs.Tracer
	// GaugeInterval enables periodic virtual-time gauge sampling through
	// Tracer at the given interval (0 = off).
	GaugeInterval sim.Time
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// sliceScalePerUnit converts workload scale to slice scale. The paper's
// 800 ms/5 ms slices govern traces that run for minutes; our synthetic
// traces at scale 1.0 run for a few hundred milliseconds, roughly 50×
// shorter, so slices shrink by the same factor (0.02) to preserve how often
// round-robin rotation interleaves the processes. MinSliceFloor keeps the
// smallest slice well above the 7 µs context switch, as in the paper.
const (
	sliceScalePerUnit = 0.02
	minSliceFloor     = 20 * sim.Microsecond
)

// SliceRange returns the scaled SCHED_RR slice bounds for a workload scale.
func SliceRange(scale float64) (min, max sim.Time) {
	max = sim.Time(float64(800*sim.Millisecond) * sliceScalePerUnit * scale)
	min = sim.Time(float64(5*sim.Millisecond) * sliceScalePerUnit * scale)
	if min < minSliceFloor {
		min = minSliceFloor
	}
	if max < 10*min {
		max = 10 * min
	}
	return min, max
}

// DRAMRatioFor returns the per-batch DRAM sizing ratio. The paper tailors
// DRAM to each batch's working set (§4.1); data-intensive-heavy batches get
// a slightly larger share of their (much larger) aggregate footprint so the
// resident working sets stay comparable.
func DRAMRatioFor(dataIntensive int) float64 {
	if dataIntensive >= 2 {
		return 0.78
	}
	return 0.70
}

func (o Options) machineConfig(b workload.Batch) machine.Config {
	cfg := machine.DefaultConfig()
	if o.Machine != nil {
		cfg = *o.Machine
	} else {
		cfg.MinSlice, cfg.MaxSlice = SliceRange(o.scale())
		cfg.DRAMRatio = DRAMRatioFor(b.DataIntensive)
	}
	if o.Cores != 0 {
		cfg.Cores = o.Cores
	}
	if o.Fault.Enabled() {
		cfg.Fault = o.Fault
	}
	if o.SpinBudget > 0 {
		cfg.SpinBudget = o.SpinBudget
	}
	return cfg
}

// specsFor builds the machine process specs for a batch.
func specsFor(b workload.Batch, scale float64) []machine.ProcessSpec {
	gens := b.Generators(scale)
	specs := make([]machine.ProcessSpec, len(gens))
	for i, g := range gens {
		specs[i] = machine.ProcessSpec{
			Name:     g.Name(),
			Gen:      g,
			Priority: b.Priorities[i],
			BaseVA:   workload.BaseVA,
		}
	}
	return specs
}

// policyFactory returns a constructor for kind that builds a fresh policy
// instance per call — the SMP model runs one instance per core.
func policyFactory(kind policy.Kind, its policy.ITSConfig) func() policy.Policy {
	return func() policy.Policy {
		if kind == policy.ITS {
			return policy.NewITS(its)
		}
		return policy.New(kind)
	}
}

// runMachine builds the right machine model for cfg (the single-core
// machine, or the SMP model when more than one core is configured), runs the
// specs on it and returns the metrics. Both models run the shared executor
// in internal/exec; they differ only in coordination (plain run loop vs
// bounded-skew coordinator with work stealing), so the 1-core outputs are
// byte-identical on either path.
func runMachine(cfg machine.Config, newPolicy func() policy.Policy, name string, specs []machine.ProcessSpec, opts Options) (*metrics.Run, error) {
	if newPolicy == nil {
		return nil, errors.New("core: nil policy factory")
	}
	if cfg.Cores != 0 && cfg.Cores != 1 {
		m, err := smp.New(cfg, newPolicy, name, specs)
		if err != nil {
			return nil, err
		}
		m.Instrument(opts.Tracer, opts.GaugeInterval)
		return m.Run()
	}
	m := machine.New(cfg, newPolicy(), name, specs)
	m.Instrument(opts.Tracer, opts.GaugeInterval)
	return m.Run()
}

// RunBatch executes one batch under one policy kind. The ITS kind honours
// opts.ITS.
func RunBatch(b workload.Batch, kind policy.Kind, opts Options) (*metrics.Run, error) {
	return RunBatchWithPolicyFactory(b, policyFactory(kind, opts.ITS), opts)
}

// RunBatchWithPolicyFactory executes one batch under a custom policy; the
// factory must return a fresh instance per call (policies are stateful, and
// multi-core runs instantiate one per core).
func RunBatchWithPolicyFactory(b workload.Batch, newPolicy func() policy.Policy, opts Options) (*metrics.Run, error) {
	run, err := runMachine(opts.machineConfig(b), newPolicy, b.Name, specsFor(b, opts.scale()), opts)
	if err != nil {
		name := "?"
		if p := newPolicy(); p != nil {
			name = p.Name()
		}
		return run, fmt.Errorf("core: batch %s under %s: %w", b.Name, name, err)
	}
	return run, nil
}

// RunBatchWithPolicy executes one batch under a custom policy instance
// (ablations pass tailored ITS configurations here). Because a single
// stateful instance cannot be shared across cores, multi-core options
// return an error — use RunBatchWithPolicyFactory there.
func RunBatchWithPolicy(b workload.Batch, pol policy.Policy, opts Options) (*metrics.Run, error) {
	if cfg := opts.machineConfig(b); cfg.Cores != 0 && cfg.Cores != 1 {
		return nil, fmt.Errorf("core: batch %s under %s: single policy instance cannot run on %d cores; use RunBatchWithPolicyFactory",
			b.Name, pol.Name(), cfg.Cores)
	}
	m := machine.New(opts.machineConfig(b), pol, b.Name, specsFor(b, opts.scale()))
	m.Instrument(opts.Tracer, opts.GaugeInterval)
	run, err := m.Run()
	if err != nil {
		return run, fmt.Errorf("core: batch %s under %s: %w", b.Name, pol.Name(), err)
	}
	return run, nil
}

// RunSpecs executes an ad-hoc set of process specs (custom traces, custom
// priorities) under the given policy. The batch-dependent defaults use
// dataIntensive as the contention hint (see DRAMRatioFor). Like
// RunBatchWithPolicy, it takes one policy instance and therefore rejects
// multi-core options.
func RunSpecs(name string, specs []machine.ProcessSpec, pol policy.Policy, dataIntensive int, opts Options) (*metrics.Run, error) {
	cfg := opts.machineConfig(workload.Batch{DataIntensive: dataIntensive})
	if cfg.Cores != 0 && cfg.Cores != 1 {
		return nil, fmt.Errorf("core: custom run %s under %s: single policy instance cannot run on %d cores; use RunBatchWithPolicyFactory",
			name, pol.Name(), cfg.Cores)
	}
	m := machine.New(cfg, pol, name, specs)
	m.Instrument(opts.Tracer, opts.GaugeInterval)
	run, err := m.Run()
	if err != nil {
		return run, fmt.Errorf("core: custom run %s under %s: %w", name, pol.Name(), err)
	}
	return run, nil
}

// GridResult holds one batch's runs across all policies.
type GridResult struct {
	Batch workload.Batch
	// Runs is indexed by policy kind.
	Runs map[policy.Kind]*metrics.Run
}

// RunGrid executes every batch × every policy — the full Figure 4/5 grid.
// The batch×policy cells run host-parallel (each is an independent
// simulation); the assembled grid is identical to a serial sweep.
func RunGrid(opts Options) ([]GridResult, error) {
	batches := workload.Batches()
	kinds := policy.Kinds()
	runs := make([]*metrics.Run, len(batches)*len(kinds))
	err := opts.runJobs(len(runs), func(i int) error {
		var err error
		runs[i], err = RunBatch(batches[i/len(kinds)], kinds[i%len(kinds)], opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make([]GridResult, 0, len(batches))
	for bi, b := range batches {
		gr := GridResult{Batch: b, Runs: make(map[policy.Kind]*metrics.Run)}
		for ki, k := range kinds {
			gr.Runs[k] = runs[bi*len(kinds)+ki]
		}
		out = append(out, gr)
	}
	return out, nil
}

// Metric extracts a scalar from a run for normalization.
type Metric func(*metrics.Run) float64

// Standard figure metrics.
var (
	// MetricIdle is Fig 4a's total CPU idle time (seconds).
	MetricIdle Metric = func(r *metrics.Run) float64 { return r.TotalIdle().Seconds() }
	// MetricPageFaults is Fig 4b's major-fault count.
	MetricPageFaults Metric = func(r *metrics.Run) float64 { return float64(r.TotalMajorFaults()) }
	// MetricCacheMisses is Fig 4c's LLC-miss count.
	MetricCacheMisses Metric = func(r *metrics.Run) float64 { return float64(r.TotalLLCMisses()) }
	// MetricTopFinish is Fig 5a's top-50 % average finish time (seconds).
	MetricTopFinish Metric = func(r *metrics.Run) float64 { return r.TopHalfAvgFinish().Seconds() }
	// MetricBottomFinish is Fig 5b's bottom-50 % average finish time.
	MetricBottomFinish Metric = func(r *metrics.Run) float64 { return r.BottomHalfAvgFinish().Seconds() }
)

// Normalized returns metric(run)/metric(baseline run of refKind) for every
// policy in gr, i.e. the paper's "normalized to the ITS design" y-axis when
// refKind is policy.ITS.
func (gr GridResult) Normalized(metric Metric, refKind policy.Kind) map[policy.Kind]float64 {
	out := make(map[policy.Kind]float64, len(gr.Runs))
	ref, ok := gr.Runs[refKind]
	if !ok {
		return out
	}
	den := metric(ref)
	for k, r := range gr.Runs {
		if den == 0 {
			out[k] = 0
			continue
		}
		out[k] = metric(r) / den
	}
	return out
}

// CrossoverPoint is one row of the huge-I/O crossover experiment: at a
// given swap-in cluster size, how synchronous busy-waiting compares with
// asynchronous context switching.
type CrossoverPoint struct {
	// ClusterPages is the swap-in granularity (1 = 4 KiB base pages).
	ClusterPages int
	// IOBytes is the corresponding transfer unit.
	IOBytes uint64
	// SyncIdle / AsyncIdle are total CPU idle (waiting) times.
	SyncIdle  sim.Time
	AsyncIdle sim.Time
	// SyncMakespan / AsyncMakespan are batch completion times.
	SyncMakespan  sim.Time
	AsyncMakespan sim.Time
	// Winner is "Sync" or "Async" by makespan.
	Winner string
}

// RunCrossover reproduces the paper's §1 motivation that synchronous I/O is
// promising only while the transfer unit stays microsecond-scale: it sweeps
// the swap-in cluster size (4 KiB base pages up to huge-page-style units)
// on the 1_Data_Intensive batch and reports where asynchronous mode wins
// back. clusterSizes defaults to {1, 2, 4, 8, 16, 32, 64} pages.
func RunCrossover(opts Options, clusterSizes []int) ([]CrossoverPoint, error) {
	if len(clusterSizes) == 0 {
		clusterSizes = []int{1, 2, 4, 8, 16, 32, 64}
	}
	b, err := workload.BatchByName("1_Data_Intensive")
	if err != nil {
		return nil, err
	}
	var out []CrossoverPoint
	for _, cl := range clusterSizes {
		cfg := opts.machineConfig(b)
		cfg.SwapClusterPages = cl
		o := opts
		o.Machine = &cfg
		syncRun, err := RunBatch(b, policy.Sync, o)
		if err != nil {
			return nil, err
		}
		asyncRun, err := RunBatch(b, policy.Async, o)
		if err != nil {
			return nil, err
		}
		pt := CrossoverPoint{
			ClusterPages:  cl,
			IOBytes:       uint64(cl) * 4096,
			SyncIdle:      syncRun.TotalIdle(),
			AsyncIdle:     asyncRun.TotalIdle(),
			SyncMakespan:  syncRun.Makespan,
			AsyncMakespan: asyncRun.Makespan,
			Winner:        "Sync",
		}
		if asyncRun.Makespan < syncRun.Makespan {
			pt.Winner = "Async"
		}
		out = append(out, pt)
	}
	return out, nil
}

// SpinPoint is one row of the hybrid-polling comparison: a Spin_Block
// policy with the given busy-wait threshold versus the paper's policies.
type SpinPoint struct {
	// Threshold is the spin budget before falling back to blocking;
	// 0 marks the reference rows (pure Sync ≈ ∞ threshold, pure Async ≈ 0).
	Threshold sim.Time
	Name      string
	Idle      sim.Time
	Makespan  sim.Time
	// IdleVsITS is TotalIdle normalized to the same batch's ITS run.
	IdleVsITS float64
}

// RunSpinSweep compares ITS against the kernel-style hybrid-polling
// baseline (spin up to a threshold, then block) that ships in today's
// kernels: the natural question the paper leaves open. Sweeps the given
// thresholds (defaults 1, 3, 7, 15 µs) on the 2_Data_Intensive batch and
// reports idle time normalized to ITS.
func RunSpinSweep(opts Options, thresholds []sim.Time) ([]SpinPoint, error) {
	if len(thresholds) == 0 {
		thresholds = []sim.Time{
			1 * sim.Microsecond,
			3 * sim.Microsecond,
			7 * sim.Microsecond,
			15 * sim.Microsecond,
		}
	}
	b, err := workload.BatchByName("2_Data_Intensive")
	if err != nil {
		return nil, err
	}
	// Jobs 0..len(thresholds)-1 are the Spin_Block points, then Sync,
	// Async, ITS; all are independent simulations and run host-parallel.
	refs := []policy.Kind{policy.Sync, policy.Async, policy.ITS}
	runs := make([]*metrics.Run, len(thresholds)+len(refs))
	err = opts.runJobs(len(runs), func(i int) error {
		var err error
		if i < len(thresholds) {
			th := thresholds[i]
			runs[i], err = RunBatchWithPolicyFactory(b, func() policy.Policy {
				return policy.NewSpinBlock(th)
			}, opts)
		} else {
			runs[i], err = RunBatch(b, refs[i-len(thresholds)], opts)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	itsRun := runs[len(runs)-1]
	ref := itsRun.TotalIdle().Seconds()
	mk := func(name string, th sim.Time, run *metrics.Run) SpinPoint {
		pt := SpinPoint{Threshold: th, Name: name, Idle: run.TotalIdle(), Makespan: run.Makespan}
		if ref > 0 {
			pt.IdleVsITS = run.TotalIdle().Seconds() / ref
		}
		return pt
	}
	var out []SpinPoint
	for i, th := range thresholds {
		out = append(out, mk(runs[i].Policy, th, runs[i]))
	}
	for i, k := range []policy.Kind{policy.Sync, policy.Async} {
		out = append(out, mk(k.String(), 0, runs[len(thresholds)+i]))
	}
	out = append(out, mk("ITS", 0, itsRun))
	return out, nil
}

// SensitivityResult summarizes one policy's normalized idle time across
// several random priority draws of the same batch.
type SensitivityResult struct {
	Policy policy.Kind
	// Min/Mean/Max of idle time normalized to the same draw's ITS run.
	Min, Mean, Max float64
}

// RunSensitivity re-runs one batch under every policy for draws different
// random priority assignments (seeded deterministically), normalizing each
// draw's idle times to its own ITS run. The paper assigns priorities
// "randomly" without disclosing the draw; this experiment shows the Figure 4a
// ordering is a property of the design, not of the pinned draw in
// workload.Batches.
func RunSensitivity(batchName string, draws int, opts Options) ([]SensitivityResult, error) {
	if draws <= 0 {
		draws = 5
	}
	base, err := workload.BatchByName(batchName)
	if err != nil {
		return nil, err
	}
	// Precompute each draw's batch serially (the priority shuffle is
	// seeded per draw), then run the draws × kinds cells host-parallel.
	kinds := policy.Kinds()
	drawBatches := make([]workload.Batch, draws)
	for d := range drawBatches {
		b := base
		b.Priorities = workload.AssignPriorities(len(b.Members), uint64(0x5EED+d))
		drawBatches[d] = b
	}
	runs := make([]*metrics.Run, draws*len(kinds))
	err = opts.runJobs(len(runs), func(i int) error {
		var err error
		runs[i], err = RunBatch(drawBatches[i/len(kinds)], kinds[i%len(kinds)], opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	acc := make(map[policy.Kind][]float64)
	for d := 0; d < draws; d++ {
		cell := func(k policy.Kind) *metrics.Run {
			for ki, kk := range kinds {
				if kk == k {
					return runs[d*len(kinds)+ki]
				}
			}
			return nil
		}
		ref := cell(policy.ITS).TotalIdle().Seconds()
		for _, k := range kinds {
			if ref > 0 {
				acc[k] = append(acc[k], cell(k).TotalIdle().Seconds()/ref)
			}
		}
	}
	var out []SensitivityResult
	for _, k := range policy.Kinds() {
		vals := acc[k]
		if len(vals) == 0 {
			continue
		}
		r := SensitivityResult{Policy: k, Min: vals[0], Max: vals[0]}
		sum := 0.0
		for _, v := range vals {
			sum += v
			if v < r.Min {
				r.Min = v
			}
			if v > r.Max {
				r.Max = v
			}
		}
		r.Mean = sum / float64(len(vals))
		out = append(out, r)
	}
	return out, nil
}

// ObservationPoint is one bar of the §2.2 motivation experiment.
type ObservationPoint struct {
	Processes int
	IdleTime  sim.Time
	Makespan  sim.Time
	// IdleFraction is idle time over total CPU time.
	IdleFraction float64
}

// ObservationMembers are the five processes of the §2.2 experiment: "Wrf,
// Blender, page rank, random walk algorithm, and also the single shortest
// path algorithm".
func ObservationMembers() []string {
	return []string{
		workload.Wrf,
		workload.Blender,
		workload.PageRank,
		workload.RandomWalk,
		workload.Graph500,
	}
}

// RunObservation reproduces the §2.2 experiment: run the first n of the
// observation members under plain Sync for n = 2..5, reporting CPU idle
// time per point (the paper normalizes to the 2-process run).
func RunObservation(opts Options) ([]ObservationPoint, error) {
	members := ObservationMembers()
	var out []ObservationPoint
	for n := 2; n <= len(members); n++ {
		b := workload.Batch{
			Name:       fmt.Sprintf("observation_%d", n),
			Members:    members[:n],
			Priorities: make([]int, n),
		}
		for i := range b.Priorities {
			b.Priorities[i] = i + 1
		}
		run, err := RunBatch(b, policy.Sync, opts)
		if err != nil {
			return nil, err
		}
		idle := run.TotalIdle()
		pt := ObservationPoint{
			Processes: n,
			IdleTime:  idle,
			Makespan:  run.Makespan,
		}
		if run.Makespan > 0 {
			pt.IdleFraction = float64(idle) / float64(run.Makespan)
		}
		out = append(out, pt)
	}
	return out, nil
}
