package machine

import (
	"runtime"
	"testing"

	"itsim/internal/policy"
	"itsim/internal/workload"
)

// TestHotLoopZeroAllocs pins the tracing-off hot loop at 0 allocs/record:
// once the platform is built, running tens of thousands of records must
// allocate only O(1) setup residue (event-pool warm-up, the first Pending
// growths, Inflight map rehashes, calendar-queue bucket growth) — nothing
// proportional to the record count. The budget below is a hundredth of an
// allocation per record; a single stray per-record allocation trips it by
// two orders of magnitude.
func TestHotLoopZeroAllocs(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Sync, policy.ITS} {
		t.Run(kind.String(), func(t *testing.T) {
			batch := workload.Batches()[1]
			gens := batch.Generators(0.02)
			specs := make([]ProcessSpec, len(gens))
			records := 0
			for j, g := range gens {
				specs[j] = ProcessSpec{Name: g.Name(), Gen: g, Priority: batch.Priorities[j], BaseVA: workload.BaseVA}
				records += g.Len()
			}
			m := New(testConfig(), policy.New(kind), batch.Name, specs)

			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			runtime.ReadMemStats(&after)

			allocs := after.Mallocs - before.Mallocs
			perRecord := float64(allocs) / float64(records)
			t.Logf("%d allocs over %d records = %.5f allocs/record", allocs, records, perRecord)
			if perRecord >= 0.01 {
				t.Errorf("hot loop allocates: %.5f allocs/record (%d allocs / %d records); want < 0.01",
					perRecord, allocs, records)
			}
		})
	}
}
