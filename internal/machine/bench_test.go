package machine

import (
	"io"
	"testing"

	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/workload"
)

// BenchmarkMachineRun measures end-to-end simulation throughput: simulated
// trace records per second of wall time.
func BenchmarkMachineRun(b *testing.B) {
	for _, kind := range []policy.Kind{policy.Sync, policy.ITS} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			var records int
			for i := 0; i < b.N; i++ {
				batch := workload.Batches()[1]
				gens := batch.Generators(0.02)
				specs := make([]ProcessSpec, len(gens))
				records = 0
				for j, g := range gens {
					specs[j] = ProcessSpec{Name: g.Name(), Gen: g, Priority: batch.Priorities[j], BaseVA: workload.BaseVA}
					records += g.Len()
				}
				m := New(testConfig(), policy.New(kind), batch.Name, specs)
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(records), "records/run")
		})
	}
}

// benchTracedRun is one full ITS run on the 1_Data_Intensive batch with the
// given tracer attached (nil = tracing off).
func benchTracedRun(b *testing.B, trc *obs.Tracer) {
	batch := workload.Batches()[1]
	gens := batch.Generators(0.02)
	specs := make([]ProcessSpec, len(gens))
	for j, g := range gens {
		specs[j] = ProcessSpec{Name: g.Name(), Gen: g, Priority: batch.Priorities[j], BaseVA: workload.BaseVA}
	}
	m := New(testConfig(), policy.New(policy.ITS), batch.Name, specs)
	m.Instrument(trc, 0)
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceOff is the untraced hot path: a nil tracer must cost only
// the per-emission-site m.want branch. Compare against BenchmarkTraceChrome
// to measure tracing overhead; the nil-sink path must stay within 2% of the
// seed's BenchmarkMachineRun/ITS.
func BenchmarkTraceOff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTracedRun(b, nil)
	}
}

// BenchmarkTraceChrome is the same run with every event serialized to a
// discarded Chrome trace — the full-observability worst case.
func BenchmarkTraceChrome(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTracedRun(b, obs.NewTracer(obs.NewChrome(io.Discard), obs.Filter{}))
	}
}
