package machine

import (
	"testing"

	"itsim/internal/policy"
	"itsim/internal/workload"
)

// BenchmarkMachineRun measures end-to-end simulation throughput: simulated
// trace records per second of wall time.
func BenchmarkMachineRun(b *testing.B) {
	for _, kind := range []policy.Kind{policy.Sync, policy.ITS} {
		b.Run(kind.String(), func(b *testing.B) {
			var records int
			for i := 0; i < b.N; i++ {
				batch := workload.Batches()[1]
				gens := batch.Generators(0.02)
				specs := make([]ProcessSpec, len(gens))
				records = 0
				for j, g := range gens {
					specs[j] = ProcessSpec{Name: g.Name(), Gen: g, Priority: batch.Priorities[j], BaseVA: workload.BaseVA}
					records += g.Len()
				}
				m := New(testConfig(), policy.New(kind), batch.Name, specs)
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(records), "records/run")
		})
	}
}
