package machine

import (
	"bytes"
	"encoding/json"
	"testing"

	"itsim/internal/policy"
	"itsim/internal/trace"
)

// TestStreamEquivalence: a run fed by the streaming ITRC decoder must be
// byte-identical (full serialized metrics) to the same run fed by the
// in-memory SliceGenerator — the tentpole invariant that streaming
// ingestion changes where records come from, never what they are.
func TestStreamEquivalence(t *testing.T) {
	gens := []trace.Generator{seqGen("a", 4000, 64), seqGen("b", 4000, 192)}

	// Serialize both traces, then rebuild one spec set in memory and one
	// streaming from the serialized bytes.
	blobs := make([][]byte, len(gens))
	for i, g := range gens {
		var buf bytes.Buffer
		if err := trace.WriteAll(&buf, g); err != nil {
			t.Fatal(err)
		}
		blobs[i] = buf.Bytes()
	}

	for _, kind := range policy.Kinds() {
		runOnce := func(stream bool) []byte {
			specs := make([]ProcessSpec, len(gens))
			for i := range gens {
				var g trace.Generator
				var err error
				if stream {
					g, err = trace.NewStreamGenerator(bytes.NewReader(blobs[i]))
				} else {
					g, err = trace.ReadAll(bytes.NewReader(blobs[i]))
				}
				if err != nil {
					t.Fatal(err)
				}
				specs[i] = ProcessSpec{Name: g.Name(), Gen: g, Priority: i + 1}
			}
			m := New(testConfig(), policy.New(kind), "stream-eq", specs)
			run, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			out, err := json.Marshal(run)
			if err != nil {
				t.Fatal(err)
			}
			for i := range specs {
				if sg, ok := specs[i].Gen.(*trace.StreamGenerator); ok {
					if err := sg.Err(); err != nil {
						t.Fatalf("stream error for %s: %v", specs[i].Name, err)
					}
				}
			}
			return out
		}
		inMem := runOnce(false)
		streamed := runOnce(true)
		if !bytes.Equal(inMem, streamed) {
			t.Errorf("%v: streamed run diverged from in-memory run:\n in-mem: %s\n stream: %s",
				kind, inMem, streamed)
		}
	}
}
