package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"itsim/internal/fault"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/workload"
)

// tracedRun runs one seed batch under one policy with the given sink
// attached and every event type admitted.
func tracedRun(t *testing.T, batchIdx int, kind policy.Kind, sink obs.Sink, gauge sim.Time) {
	t.Helper()
	batch := workload.Batches()[batchIdx]
	gens := batch.Generators(0.02)
	specs := make([]ProcessSpec, len(gens))
	for j, g := range gens {
		specs[j] = ProcessSpec{Name: g.Name(), Gen: g, Priority: batch.Priorities[j], BaseVA: workload.BaseVA}
	}
	m := New(testConfig(), policy.New(kind), batch.Name, specs)
	m.Instrument(obs.NewTracer(sink, obs.Filter{}), gauge)
	if _, err := m.Run(); err != nil {
		t.Fatalf("%s/%s: %v", kind, batch.Name, err)
	}
}

// The headline acceptance test: an ITS run on a seed batch traced in Chrome
// format must yield schema-valid trace JSON containing the ITS signature
// activity — prefetch issues, a pre-execution window, and major-fault spans
// whose begin/end records pair up at consistent virtual timestamps.
func TestChromeTraceITSSeedBatch(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewChrome(&buf)
	tracedRun(t, 2, policy.ITS, sink, 100*sim.Microsecond)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	var issues, windows, gauges int
	// Open major-fault spans keyed by (tid, va); count matched pairs.
	open := map[string]float64{}
	matched := 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "prefetch-issue":
			issues++
		case ev.Name == "preexec" && ev.Ph == "X":
			windows++
		case ev.Ph == "C":
			gauges++
		case ev.Name == "major-fault":
			key := fmt.Sprintf("%d/%v", ev.TID, ev.Args["va"])
			switch ev.Ph {
			case "B":
				open[key] = ev.Ts
			case "E":
				begin, ok := open[key]
				if !ok {
					t.Fatalf("major-fault end without begin for %s at ts=%v", key, ev.Ts)
				}
				if ev.Ts < begin {
					t.Fatalf("major-fault %s ends at %v before its begin %v", key, ev.Ts, begin)
				}
				delete(open, key)
				matched++
			}
		}
	}
	if issues == 0 {
		t.Error("no PrefetchIssue events in an ITS trace")
	}
	if windows == 0 {
		t.Error("no PreexecWindow events in an ITS trace")
	}
	if matched == 0 {
		t.Error("no matched MajorFaultBegin/End pair")
	}
	if len(open) != 0 {
		t.Errorf("%d major-fault spans never closed", len(open))
	}
	if gauges == 0 {
		t.Error("no gauge counter samples despite -gauge-interval")
	}
}

// The raw event stream must pair every MajorFaultEnd with a Begin at exactly
// End.Time − End.Dur for the same pid and address — the virtual-timestamp
// match the Chrome spans are built from.
func TestEventStreamFaultWindowsPair(t *testing.T) {
	ring := obs.NewRing(1 << 20)
	tracedRun(t, 2, policy.ITS, ring, 0)
	if ring.Dropped() > 0 {
		t.Fatalf("ring dropped %d events; enlarge the buffer", ring.Dropped())
	}

	type key struct {
		pid int
		va  uint64
	}
	begins := map[key][]sim.Time{}
	modes := map[string]int{}
	ends := 0
	for _, ev := range ring.Events() {
		switch ev.Type {
		case obs.EvMajorFaultBegin:
			k := key{ev.PID, ev.VA}
			begins[k] = append(begins[k], ev.Time)
		case obs.EvMajorFaultEnd:
			ends++
			modes[ev.Cause]++
			k := key{ev.PID, ev.VA}
			want := ev.Time - ev.Dur
			q := begins[k]
			if len(q) == 0 {
				t.Fatalf("MajorFaultEnd pid=%d va=%#x with no pending begin", ev.PID, ev.VA)
			}
			if q[0] != want {
				t.Fatalf("MajorFaultEnd pid=%d va=%#x: Time-Dur=%v but begin was %v", ev.PID, ev.VA, want, q[0])
			}
			begins[k] = q[1:]
		}
	}
	if ends == 0 {
		t.Fatal("no major-fault windows in an ITS run")
	}
	for k, q := range begins {
		if len(q) != 0 {
			t.Fatalf("pid=%d va=%#x has %d unclosed fault windows", k.pid, k.va, len(q))
		}
	}
	for mode := range modes {
		switch mode {
		case "sync", "async", "spin":
		default:
			t.Fatalf("unexpected fault handling mode %q", mode)
		}
	}
}

// Satellite: every seed policy on every seed batch must pass the always-on
// invariant auditor (Run returns its verdict) — the positive half of the
// audit tests; deliberate mis-accounting is covered in internal/obs.
func TestAuditorPassesAllPoliciesAllBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy×batch sweep in -short mode")
	}
	for _, batch := range workload.Batches() {
		for _, kind := range policy.Kinds() {
			batch, kind := batch, kind
			t.Run(batch.Name+"/"+kind.String(), func(t *testing.T) {
				gens := batch.Generators(0.02)
				specs := make([]ProcessSpec, len(gens))
				for j, g := range gens {
					specs[j] = ProcessSpec{Name: g.Name(), Gen: g, Priority: batch.Priorities[j], BaseVA: workload.BaseVA}
				}
				m := New(testConfig(), policy.New(kind), batch.Name, specs)
				run, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				aud := m.Auditor()
				if aud.Events() == 0 {
					t.Fatal("auditor observed no events")
				}
				if got, want := aud.Accounted(), run.Makespan; got != want {
					t.Fatalf("auditor accounted %v, makespan %v", got, want)
				}
			})
		}
	}
}

// The JSONL sink must survive a full machine run and stay line-decodable.
func TestJSONLTraceSeedBatch(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	tracedRun(t, 1, policy.SyncPrefetch, sink, 0)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	lines := 0
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no JSONL events")
	}
}

// Gauge samples must be strictly periodic in virtual time and stop draining
// the engine once the run is over (bounded count).
func TestGaugeSampling(t *testing.T) {
	ring := obs.NewRing(1 << 20)
	tracedRun(t, 1, policy.Sync, ring, 50*sim.Microsecond)
	byGauge := map[string][]sim.Time{}
	for _, ev := range ring.Events() {
		if ev.Type == obs.EvGauge {
			byGauge[ev.Cause] = append(byGauge[ev.Cause], ev.Time)
		}
	}
	for _, name := range []string{"ready_queue_depth", "outstanding_swapins", "llc_lines", "busy_storage_channels"} {
		ts := byGauge[name]
		if len(ts) == 0 {
			t.Fatalf("gauge %q never sampled", name)
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("gauge %q not monotonic: %v after %v", name, ts[i], ts[i-1])
			}
		}
	}
}

// A faulty run with demotion and prefetch throttling enabled must surface
// every degradation decision as a typed event: injections (with their
// cause), kernel retries, spin-budget demotions (and the matching "demote"
// fault-window mode), and throttled prefetch walks.
func TestFaultEventsTraced(t *testing.T) {
	batch := workload.Batches()[2]
	gens := batch.Generators(0.02)
	specs := make([]ProcessSpec, len(gens))
	for j, g := range gens {
		specs[j] = ProcessSpec{Name: g.Name(), Gen: g, Priority: batch.Priorities[j], BaseVA: workload.BaseVA}
	}
	cfg := testConfig()
	cfg.Fault = fault.Config{Seed: 42, TailProb: 0.2, TailMult: 16, StallProb: 0.01, DMAFailProb: 0.05}
	cfg.SpinBudget = 4 * sim.Microsecond
	m := New(cfg, policy.NewITS(policy.ITSConfig{PrefetchThrottleFraction: 0.1}), batch.Name, specs)
	ring := obs.NewRing(1 << 20)
	m.Instrument(obs.NewTracer(ring, obs.Filter{}), 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if ring.Dropped() > 0 {
		t.Fatalf("ring dropped %d events; enlarge the buffer", ring.Dropped())
	}

	injects := map[string]int{}
	var retries, demotes, throttles, demoteEnds int
	for _, ev := range ring.Events() {
		switch ev.Type {
		case obs.EvFaultInject:
			injects[ev.Cause]++
			if ev.Dur <= 0 && ev.Cause != "dma" {
				t.Fatalf("FaultInject %q with no injected delay: %+v", ev.Cause, ev)
			}
		case obs.EvIORetry:
			retries++
			if ev.Value < 1 {
				t.Fatalf("IORetry with attempt %d", ev.Value)
			}
		case obs.EvDemote:
			demotes++
			if ev.Dur <= sim.Time(ev.Value) {
				t.Fatalf("Demote with predicted wait %v not over budget %v", ev.Dur, sim.Time(ev.Value))
			}
		case obs.EvPrefetchThrottle:
			throttles++
		case obs.EvMajorFaultEnd:
			if ev.Cause == "demote" {
				demoteEnds++
			}
		}
	}
	for _, cause := range []string{"tail", "stall", "dma"} {
		if injects[cause] == 0 {
			t.Errorf("no %q FaultInject events", cause)
		}
	}
	if retries == 0 {
		t.Error("no IORetry events despite DMA failures")
	}
	if demotes == 0 {
		t.Error("no Demote events despite tail spikes over the spin budget")
	}
	if demotes != demoteEnds {
		t.Errorf("Demote events (%d) != demote-mode fault windows (%d)", demotes, demoteEnds)
	}
	if throttles == 0 {
		t.Error("no PrefetchThrottle events despite a saturated device")
	}
}

// timeBudget guards against the trace tests ballooning the suite.
func TestTraceRunsStayFast(t *testing.T) {
	start := time.Now()
	tracedRun(t, 1, policy.ITS, obs.NewRing(1024), 0)
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("traced run took %v", d)
	}
}
