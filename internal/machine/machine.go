// Package machine assembles the full simulated platform of the paper's
// evaluation (§4.1): a single simulated core with an L1 and a 16-way 8 MB
// LLC (halved when the policy needs a pre-execute cache), the mini kernel's
// page tables and swap path, the SCHED_RR scheduler with NICE time slices,
// the ULL device behind a PCIe 5.x ×4 link, and one of the five I/O-mode
// policies deciding what happens on every major page fault.
//
// A Machine executes a batch of trace-driven processes to completion on a
// deterministic virtual clock and produces a metrics.Run with everything
// Figures 4 and 5 need.
package machine

import (
	"fmt"

	"itsim/internal/cache"
	"itsim/internal/cpu"
	"itsim/internal/kernel"
	"itsim/internal/mem"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/pagetable"
	"itsim/internal/policy"
	"itsim/internal/preexec"
	"itsim/internal/sched"
	"itsim/internal/sim"
	"itsim/internal/storage"
	"itsim/internal/trace"

	"itsim/internal/bus"
)

// Timing defaults of the simulated core.
const (
	// DefaultL1Hit is the L1 hit latency.
	DefaultL1Hit = 1 * sim.Nanosecond
	// DefaultLLCHit is the LLC hit latency.
	DefaultLLCHit = 12 * sim.Nanosecond
	// DefaultInstPerNs is instructions retired per nanosecond of pure
	// compute (2 ⇒ 0.5 ns per instruction, a 2 GHz core at IPC 1).
	DefaultInstPerNs = 2
	// DefaultLookahead is how many upcoming records the pre-execute
	// engine can see (the effective instruction window during runahead).
	DefaultLookahead = 256
)

// Config sizes the simulated platform. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Cores is the number of simulated CPU cores. 1 (or 0, for configs
	// built before the field existed) selects this package's single-core
	// machine; larger values select the internal/smp model, which shares
	// the LLC, kernel and storage path across cores. Validate rejects
	// non-positive values on paths that take user input.
	Cores int
	// LLCSize/LLCWays/LineBytes shape the last-level cache. When the
	// policy needs a pre-execute cache, half of LLCSize goes to it.
	LLCSize   int
	LLCWays   int
	LineBytes int
	// L1Size/L1Ways shape the first-level cache.
	L1Size int
	L1Ways int
	// L1Hit/LLCHit are hit latencies.
	L1Hit  sim.Time
	LLCHit sim.Time
	// InstPerNs converts instruction gaps to time.
	InstPerNs int
	// DRAMFrames fixes physical memory size in frames; when zero,
	// DRAMRatio × (batch footprint pages) is used.
	DRAMFrames int
	// DRAMRatio sizes DRAM relative to the batch's aggregate footprint
	// (the paper tailors DRAM to the working set; contention comes from
	// the sum exceeding capacity).
	DRAMRatio float64
	// Replacement selects the page-replacement policy.
	Replacement mem.ReplacementKind
	// Device parameterizes the ULL SSD.
	Device storage.Config
	// BusLanes/LaneBandwidth parameterize the PCIe link.
	BusLanes      int
	LaneBandwidth int64
	// Lookahead bounds the pre-execute window in records.
	Lookahead int
	// MinSlice/MaxSlice are the SCHED_RR NICE slice bounds. The paper
	// uses 5 ms…800 ms over minutes-long traces; scaled-down traces
	// scale these with the workload so round-robin rotation dynamics are
	// preserved (see core.Options.Scale). Zero selects the paper values.
	MinSlice sim.Time
	MaxSlice sim.Time
	// MaxSimTime aborts runaway simulations (0 = no limit).
	MaxSimTime sim.Time
	// WarmFraction of DRAM is pre-loaded with the processes' working
	// sets (fair shares, hottest pages first) before the run, modelling
	// the paper's steady-state multiprogramming rather than a cold boot.
	// 0 selects the default (0.85); negative disables warm-start.
	WarmFraction float64
	// PreExecCacheFraction is the share of the LLC carved out as the
	// pre-execute cache for Sync_Runahead/ITS (paper §4.1 fixes it at
	// one half). 0 selects 0.5; values are clamped to [0.1, 0.9] and
	// rounded to keep both caches valid set-associative geometries.
	PreExecCacheFraction float64
	// StrictPriority selects true SCHED_RR dispatch semantics (highest
	// priority first) instead of the paper's effective single-queue
	// round-robin with NICE slices. Ablation knob.
	StrictPriority bool
	// TLBEntries enables the TLB model with the given capacity (0 =
	// disabled). When enabled, context switches flush the TLB and every
	// TLB miss pays TLBMissCost — a mechanistic replacement for the
	// fixed SwitchPollutionCost, which is then not charged.
	TLBEntries int
	// TLBMissCost is the page-walk cost of a TLB miss (default 25 ns: a
	// mostly-cached 4-level walk).
	TLBMissCost sim.Time
	// SwapClusterPages selects the swap-in granularity in pages (0 or 1
	// = base 4 KiB pages). Larger values model huge-page-style swapping
	// (paper §1: "larger I/O sizes like huge page management"): a major
	// fault fetches the whole aligned cluster and the faulting process
	// waits for all of it.
	SwapClusterPages int
	// RecoveryPoll selects the state-recovery termination mode of
	// §3.4.3: zero means interrupt-driven (the DMA controller interrupts
	// on I/O completion, costing InterruptCost), a positive duration
	// means a polling timer checks completion every RecoveryPoll — the
	// process resumes only at the next tick after the DMA lands, so
	// polling overshoots by up to one interval.
	RecoveryPoll sim.Time
}

// InterruptCost is the DMA completion interrupt's handling cost charged when
// interrupt-driven state recovery ends a pre-execution episode (§3.4.3).
const InterruptCost = 300 * sim.Nanosecond

// DefaultConfig returns the paper's §4.1 platform.
func DefaultConfig() Config {
	return Config{
		Cores:         1,
		LLCSize:       8 << 20,
		LLCWays:       16,
		LineBytes:     64,
		L1Size:        32 << 10,
		L1Ways:        8,
		L1Hit:         DefaultL1Hit,
		LLCHit:        DefaultLLCHit,
		InstPerNs:     DefaultInstPerNs,
		DRAMRatio:     0.75,
		Replacement:   mem.ReplaceClock,
		Device:        storage.DefaultConfig(),
		BusLanes:      bus.DefaultLanes,
		LaneBandwidth: bus.DefaultLaneBandwidth,
		Lookahead:     DefaultLookahead,
	}
}

// preExecWays returns how many LLC ways the pre-execute carve-out takes in
// total, applying the PreExecCacheFraction defaulting and clamping rules.
func (c Config) preExecWays() int {
	frac := c.PreExecCacheFraction
	if frac <= 0 {
		frac = 0.5
	}
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.9 {
		frac = 0.9
	}
	pxWays := int(frac*float64(c.LLCWays) + 0.5)
	if pxWays < 1 {
		pxWays = 1
	}
	if pxWays >= c.LLCWays {
		pxWays = c.LLCWays - 1
	}
	return pxWays
}

// PreExecPartition splits the LLC's ways between the shared LLC and `cores`
// per-core pre-execute carve-outs. The total carve-out budget is the
// single-core fraction of the ways; each core receives an equal share of at
// least one way, and the shared LLC keeps whatever remains. An error means
// the geometry cannot host one carve-out per core — the validation the
// -cores flag path surfaces to the user.
func (c Config) PreExecPartition(cores int) (pxWaysPerCore, llcWays int, err error) {
	if cores < 1 {
		return 0, 0, fmt.Errorf("machine: non-positive core count %d", cores)
	}
	total := c.preExecWays()
	per := total / cores
	if per < 1 {
		return 0, 0, fmt.Errorf("machine: LLC (%d ways, %d reserved for pre-execute caches) is smaller than one pre-execute carve-out per core across %d cores",
			c.LLCWays, total, cores)
	}
	llcWays = c.LLCWays - per*cores
	if llcWays < 1 {
		return 0, 0, fmt.Errorf("machine: %d cores × %d pre-execute ways leave no LLC ways of %d",
			cores, per, c.LLCWays)
	}
	return per, llcWays, nil
}

// Validate checks the platform configuration, returning errors instead of
// the panics (or silent nonsense) the low-level constructors produce: paths
// that accept user input — the CLIs' -cores flag, core.Options — validate
// before building a machine.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("machine: core count must be positive, got %d", c.Cores)
	}
	if c.LLCWays <= 0 || c.LLCWays&(c.LLCWays-1) != 0 {
		return fmt.Errorf("machine: LLC ways %d is not a power of two", c.LLCWays)
	}
	if c.L1Ways <= 0 || c.L1Ways&(c.L1Ways-1) != 0 {
		return fmt.Errorf("machine: L1 ways %d is not a power of two", c.L1Ways)
	}
	if err := (cache.Config{SizeBytes: c.LLCSize, LineBytes: c.LineBytes, Ways: c.LLCWays}).Validate(); err != nil {
		return fmt.Errorf("machine: LLC geometry: %w", err)
	}
	if err := (cache.Config{SizeBytes: c.L1Size, LineBytes: c.LineBytes, Ways: c.L1Ways}).Validate(); err != nil {
		return fmt.Errorf("machine: L1 geometry: %w", err)
	}
	// Every policy must be runnable on the configured geometry, so the
	// pre-execute carve-out (ITS/Sync_Runahead) must fit even if the run
	// at hand does not use it.
	if _, _, err := c.PreExecPartition(c.Cores); err != nil {
		return err
	}
	return nil
}

// ProcessSpec declares one process of a run.
type ProcessSpec struct {
	// Name labels the process (benchmark name).
	Name string
	// Gen supplies the trace.
	Gen trace.Generator
	// Priority is the scheduling priority (larger = higher).
	Priority int
	// BaseVA is where the process image starts; the region
	// [BaseVA, BaseVA+Gen.FootprintBytes()) is mapped into the swap area
	// before the run. Synthetic workloads use workload.BaseVA.
	BaseVA uint64
}

// proc is the per-process runtime state.
type proc struct {
	pid  int
	spec ProcessSpec
	met  *metrics.Process

	// look is the lookahead FIFO of fetched-but-unexecuted records;
	// head indexes the next record to execute.
	look []trace.Record
	head int
	// drained means the generator is exhausted.
	drained bool

	sliceLeft sim.Time
	// instCarry holds leftover instructions that didn't fill a whole
	// nanosecond at InstPerNs.
	instCarry uint64
	// blockedAt is when the process blocked on asynchronous I/O;
	// wasBlocked makes the next dispatch charge the block→dispatch span
	// as storage-induced stall.
	blockedAt  sim.Time
	wasBlocked bool
	// gapPaid marks that the head record's compute gap has been charged,
	// so a faulting access retried after an asynchronous block does not
	// pay (or count) its gap twice.
	gapPaid bool
}

type inflightKey struct {
	pid  int
	page uint64
}

// Machine is one simulated platform executing one batch under one policy.
type Machine struct {
	cfg Config
	pol policy.Policy

	eng *sim.Engine
	sch *sched.RR
	krn *kernel.Kernel
	l1  *cache.Cache
	llc *cache.Cache
	px  *preexec.Engine
	tlb *cpu.TLB

	procs []*proc
	run   *metrics.Run

	inflight map[inflightKey]sim.Time
	// lastOnCPU tracks the process whose context the CPU holds, for
	// context-switch charging.
	lastOnCPU int
	// lastPXPid tracks whose pre-execute state the hardware holds.
	lastPXPid int

	// trc is the user tracer (nil = tracing off); aud is the always-on
	// accounting auditor. want caches, per event type, whether either
	// consumer would accept it, so untraced emission sites cost one
	// array load and branch.
	trc  *obs.Tracer
	aud  *obs.Auditor
	want [obs.NumTypes]bool
	// gaugeEvery is the virtual-time gauge sampling interval (0 = off).
	gaugeEvery sim.Time
	// dispatchedAt is when the current dispatch put its process on the
	// CPU, for occupancy reporting on leave events.
	dispatchedAt sim.Time
}

// New builds a machine for the given specs and policy. batchName labels the
// metrics.
func New(cfg Config, pol policy.Policy, batchName string, specs []ProcessSpec) *Machine {
	if len(specs) == 0 {
		panic("machine: no processes")
	}
	if cfg.InstPerNs <= 0 {
		cfg.InstPerNs = DefaultInstPerNs
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = DefaultLookahead
	}
	if cfg.DRAMRatio <= 0 {
		cfg.DRAMRatio = 0.75
	}

	llcSize := cfg.LLCSize
	llcWays := cfg.LLCWays
	var px *preexec.Engine
	if pol.Kind().NeedsPreExecCache() {
		// Partition by ways (as real cache partitioning does): the set
		// count stays constant and power-of-two for both halves.
		pxWays, shareWays, err := cfg.PreExecPartition(1)
		if err != nil {
			panic(err) // unreachable: clamping keeps 1 ≤ pxWays < LLCWays
		}
		sets := cfg.LLCSize / (cfg.LineBytes * cfg.LLCWays)
		pxSize := pxWays * sets * cfg.LineBytes
		llcSize = cfg.LLCSize - pxSize
		llcWays = shareWays
		px = preexec.New(cpu.NewPreExecCache(cache.Config{
			SizeBytes: pxSize,
			LineBytes: cfg.LineBytes,
			Ways:      pxWays,
		}))
	}

	frames := cfg.DRAMFrames
	if frames == 0 {
		var pages uint64
		for _, s := range specs {
			pages += trace.FootprintPages(s.Gen.FootprintBytes())
		}
		frames = int(cfg.DRAMRatio * float64(pages))
	}
	if frames < 64 {
		frames = 64
	}

	link := bus.New(cfg.BusLanes, cfg.LaneBandwidth)
	dev := storage.New(cfg.Device, link)
	m := &Machine{
		cfg:       cfg,
		pol:       pol,
		eng:       &sim.Engine{},
		sch:       sched.New(),
		krn:       kernel.New(mem.NewDRAM(frames, cfg.Replacement), dev),
		l1:        cache.New(cache.Config{SizeBytes: cfg.L1Size, LineBytes: cfg.LineBytes, Ways: cfg.L1Ways}),
		llc:       cache.New(cache.Config{SizeBytes: llcSize, LineBytes: cfg.LineBytes, Ways: llcWays}),
		px:        px,
		run:       metrics.NewRun(pol.Name(), batchName),
		inflight:  make(map[inflightKey]sim.Time),
		lastOnCPU: -1,
		lastPXPid: -1,
		aud:       obs.NewAuditor(),
	}
	for i := range m.want {
		m.want[i] = m.aud.Wants(obs.Type(i))
	}

	if cfg.StrictPriority {
		m.sch.SetStrictPriority(true)
	}
	if cfg.TLBEntries > 0 {
		m.tlb = cpu.NewTLB(cfg.TLBEntries)
		if m.cfg.TLBMissCost <= 0 {
			m.cfg.TLBMissCost = 25 * sim.Nanosecond
		}
	}

	if cfg.MinSlice > 0 || cfg.MaxSlice > 0 {
		minS, maxS := cfg.MinSlice, cfg.MaxSlice
		if minS <= 0 {
			minS = sched.MinSlice
		}
		if maxS <= 0 {
			maxS = sched.MaxSlice
		}
		m.sch.SetSliceRange(minS, maxS)
	}

	for pid, s := range specs {
		s.Gen.Reset()
		p := &proc{pid: pid, spec: s, met: m.run.AddProcess(pid, s.Name, s.Priority)}
		m.procs = append(m.procs, p)
		m.krn.AddProcess(pid, s.Name, s.Priority)
		m.krn.MapRegion(pid, s.BaseVA, s.Gen.FootprintBytes())
		m.sch.Add(pid, s.Priority)
	}
	m.warmStart(cfg.WarmFraction, frames)
	return m
}

// warmSetter is implemented by workloads that can enumerate their working
// set (hottest pages first) for warm-starting DRAM.
type warmSetter interface {
	WarmPages(maxPages int) []uint64
}

// warmStart pre-loads each process's hottest pages into DRAM, fair-share,
// so the run begins in the steady multiprogrammed state the paper measures.
func (m *Machine) warmStart(fraction float64, frames int) {
	if fraction < 0 {
		return
	}
	if fraction == 0 {
		fraction = 0.85
	}
	if fraction > 1 {
		fraction = 1
	}
	budget := int(fraction * float64(frames) / float64(len(m.procs)))
	if budget <= 0 {
		return
	}
	for _, p := range m.procs {
		ws, ok := p.spec.Gen.(warmSetter)
		if !ok {
			continue
		}
		as := m.krn.Process(p.pid).AS
		for _, va := range ws.WarmPages(budget) {
			if pte, found := as.Lookup(va); found && pte.Present() {
				continue
			}
			id, free := m.krn.DRAM().Allocate(p.pid, va, false)
			if !free {
				return // DRAM full: warm-start ends here
			}
			as.MakePresent(va, uint64(id))
		}
	}
}

// Instrument attaches an event tracer and, when gaugeEvery > 0, a periodic
// virtual-time gauge sampler to the machine. Call before Run. A nil tracer
// leaves tracing off (the accounting auditor still runs — it is part of the
// machine, not of tracing).
func (m *Machine) Instrument(trc *obs.Tracer, gaugeEvery sim.Time) {
	m.trc = trc
	m.gaugeEvery = gaugeEvery
	m.krn.SetTracer(trc)
	if trc.Wants(obs.EvUnblock) {
		m.sch.SetObserver(func(pid int, from, to sched.State) {
			if from == sched.Blocked && to == sched.Ready {
				m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvUnblock, PID: pid})
			}
		})
	}
	for i := range m.want {
		m.want[i] = m.aud.Wants(obs.Type(i)) || trc.Wants(obs.Type(i))
	}
}

// Auditor exposes the machine's accounting auditor (tests, tools).
func (m *Machine) Auditor() *obs.Auditor { return m.aud }

// emit routes one event to the auditor and the tracer. Emission sites guard
// with m.want first so disabled types cost no event construction.
func (m *Machine) emit(ev obs.Event) {
	if m.aud.Wants(ev.Type) {
		m.aud.Write(ev)
	}
	m.trc.Emit(ev)
}

// scheduleGauges starts the periodic gauge sampler when enabled. Each tick
// emits counter events for the run-introspection quantities the aggregate
// metrics cannot show over time: ready-queue depth, outstanding swap-ins,
// LLC and pre-execute-cache occupancy, and busy storage channels.
func (m *Machine) scheduleGauges() {
	if m.gaugeEvery <= 0 || !m.want[obs.EvGauge] {
		return
	}
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		m.emitGauges(now)
		if m.sch.Alive() > 0 {
			m.eng.Schedule(now+m.gaugeEvery, tick)
		}
	}
	m.eng.Schedule(m.eng.Now()+m.gaugeEvery, tick)
}

func (m *Machine) emitGauges(now sim.Time) {
	g := func(name string, v int64) {
		m.emit(obs.Event{Time: now, Type: obs.EvGauge, PID: -1, Cause: name, Value: v})
	}
	g("ready_queue_depth", int64(m.sch.Runnable()))
	g("outstanding_swapins", int64(len(m.inflight)))
	g("llc_lines", int64(m.llc.ValidLines()))
	if m.px != nil {
		g("preexec_cache_lines", int64(m.px.PXC.ValidLines()))
	}
	g("busy_storage_channels", int64(m.krn.Device().BusyChannelsAt(now)))
}

// Kernel exposes the kernel for inspection (tests, tools).
func (m *Machine) Kernel() *kernel.Kernel { return m.krn }

// LLC exposes the last-level cache for inspection.
func (m *Machine) LLC() *cache.Cache { return m.llc }

// Scheduler exposes the scheduler for inspection.
func (m *Machine) Scheduler() *sched.RR { return m.sch }

// Now returns the current virtual time.
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// tagged folds the pid into the address's upper bits so per-process virtual
// addresses share the physically-indexed caches without aliasing.
func tagged(pid int, addr uint64) uint64 {
	return addr&(1<<pagetable.VABits-1) | uint64(pid+1)<<pagetable.VABits
}

// Run executes every process to completion and returns the metrics. The
// always-on accounting auditor checks time conservation and monotonic
// virtual time as the run executes; a violation fails the run loudly.
func (m *Machine) Run() (*metrics.Run, error) {
	m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvRunBegin, PID: -1,
		Cause: m.run.Policy + "/" + m.run.Batch})
	m.scheduleGauges()
	for m.sch.Alive() > 0 {
		if m.cfg.MaxSimTime > 0 && m.eng.Now() > m.cfg.MaxSimTime {
			return m.run, fmt.Errorf("machine: exceeded max simulated time %v", m.cfg.MaxSimTime)
		}
		pid := m.sch.PickNext()
		if pid == -1 {
			// Everyone is blocked on asynchronous I/O: the CPU sits
			// idle waiting for storage. The idle-begin event must go out
			// before StepOne — events fired inside carry later times.
			t0 := m.eng.Now()
			if m.want[obs.EvSchedIdleBegin] {
				m.emit(obs.Event{Time: t0, Type: obs.EvSchedIdleBegin, PID: -1})
			}
			if !m.eng.StepOne() {
				return m.run, fmt.Errorf("machine: deadlock — no runnable process and no pending event at %v", t0)
			}
			m.run.SchedulerIdle += m.eng.Now() - t0
			if m.want[obs.EvSchedIdleEnd] {
				m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvSchedIdleEnd, PID: -1})
			}
			continue
		}
		p := m.procs[pid]
		if p.wasBlocked {
			wait := m.eng.Now() - p.blockedAt
			p.met.BlockedWait += wait
			m.run.BlockedHist.Observe(wait)
			p.wasBlocked = false
		}
		m.lastOnCPU = pid
		p.sliceLeft = m.sch.SliceFor(pid)
		m.dispatchedAt = m.eng.Now()
		if m.want[obs.EvDispatch] {
			m.emit(obs.Event{Time: m.dispatchedAt, Type: obs.EvDispatch, PID: pid,
				Cause: p.spec.Name, Value: int64(p.spec.Priority)})
		}
		m.runProcess(p)
	}
	m.run.Makespan = m.eng.Now()
	m.emit(obs.Event{Time: m.run.Makespan, Type: obs.EvRunEnd, PID: -1})
	m.eng.RunUntilIdle() // drain trailing prefetch/write-back completions
	if err := m.aud.Err(); err != nil {
		return m.run, fmt.Errorf("machine: accounting audit failed: %w", err)
	}
	return m.run, nil
}

// runProcess executes p until it blocks, exhausts its slice, or finishes.
func (m *Machine) runProcess(p *proc) {
	for {
		rec, ok := m.peek(p, 0)
		if !ok {
			p.met.FinishTime = m.eng.Now()
			p.met.Finished = true
			m.sch.Finish(p.pid)
			if m.want[obs.EvProcFinish] {
				m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvProcFinish, PID: p.pid,
					Dur: m.eng.Now() - m.dispatchedAt})
			}
			if m.eng.Now() > m.run.Makespan {
				m.run.Makespan = m.eng.Now()
			}
			if m.sch.Alive() > 0 {
				m.chargeSwitch(p)
			}
			return
		}
		// Compute gap (once per record, even across fault retries).
		if rec.Gap > 0 && !p.gapPaid {
			p.instCarry += uint64(rec.Gap)
			d := sim.Time(p.instCarry / uint64(m.cfg.InstPerNs))
			p.instCarry %= uint64(m.cfg.InstPerNs)
			if d > 0 {
				m.advance(p, d)
			}
			p.met.Instructions += uint64(rec.Gap)
		}
		p.gapPaid = true
		// The access itself (may busy-wait or block).
		blocked := m.access(p, rec)
		if blocked {
			return
		}
		p.met.Instructions++
		m.pop(p)
		// Slice accounting: RR rotates only when someone else is ready.
		if p.sliceLeft <= 0 {
			// Re-check the runaway guard at slice boundaries too, so a
			// lone process cannot run unbounded inside one dispatch.
			if m.cfg.MaxSimTime > 0 && m.eng.Now() > m.cfg.MaxSimTime {
				m.sch.Expire(p.pid)
				return
			}
			if m.want[obs.EvSliceExpiry] {
				m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvSliceExpiry, PID: p.pid})
			}
			if m.sch.Runnable() > 0 {
				m.sch.Expire(p.pid)
				if m.want[obs.EvPreempt] {
					m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvPreempt, PID: p.pid,
						Dur: m.eng.Now() - m.dispatchedAt})
				}
				m.chargeSwitch(p)
				return
			}
			p.sliceLeft = m.sch.SliceFor(p.pid)
		}
	}
}

// chargeSwitch charges the 7 µs context switch paid whenever the CPU leaves
// a process (block, slice expiry, exit with successors). Dispatching the
// next process is covered by this single save+restore charge, matching the
// paper's one-switch-per-transition accounting.
func (m *Machine) chargeSwitch(p *proc) {
	m.run.ContextSwitchTime += kernel.ContextSwitchCost
	p.met.ContextSwitches++
	cost := kernel.ContextSwitchCost + kernel.SwitchPollutionCost
	if m.tlb != nil {
		// Mechanistic mode: the switch flushes the TLB; the pollution
		// cost emerges from the subsequent misses instead of a
		// constant.
		m.tlb.Flush()
		cost = kernel.ContextSwitchCost
	}
	m.advance(nil, cost)
	if m.tlb == nil {
		// The pollution tail (TLB shootdown, re-missing hot cache lines,
		// §2.1.1) surfaces as memory stall.
		p.met.MemStall += kernel.SwitchPollutionCost
	}
	if m.want[obs.EvContextSwitch] {
		// Dur is the full clock advance (switch plus pollution tail) so
		// the auditor's time-conservation ledger balances.
		m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvContextSwitch, PID: p.pid, Dur: cost})
	}
}

// peek returns the i-th unexecuted record (0 = next), refilling the
// lookahead buffer from the generator. Peeks beyond the configured
// lookahead window report end-of-window: the pre-execute engine's visibility
// is bounded by the hardware instruction window it models.
func (m *Machine) peek(p *proc, i int) (trace.Record, bool) {
	if i >= m.cfg.Lookahead {
		return trace.Record{}, false
	}
	for !p.drained && len(p.look)-p.head <= i {
		var r trace.Record
		if !p.spec.Gen.Next(&r) {
			p.drained = true
			break
		}
		p.look = append(p.look, r)
	}
	if p.head+i < len(p.look) {
		return p.look[p.head+i], true
	}
	return trace.Record{}, false
}

// pop consumes the head record, compacting the buffer periodically.
func (m *Machine) pop(p *proc) {
	p.gapPaid = false
	p.head++
	if p.head >= 4096 && p.head*2 >= len(p.look) {
		p.look = append(p.look[:0], p.look[p.head:]...)
		p.head = 0
	}
}

// advance moves virtual time forward by d (firing due events) and charges
// p's slice and CPU-occupancy time.
func (m *Machine) advance(p *proc, d sim.Time) {
	if d <= 0 {
		return
	}
	m.eng.AdvanceTo(m.eng.Now() + d)
	if p != nil {
		p.sliceLeft -= d
		p.met.CPUTime += d
	}
}

// access performs one memory access for p. It returns true when the process
// blocked (asynchronous fault) and execution must leave runProcess; the
// faulting record stays at the head for retry on wake-up.
func (m *Machine) access(p *proc, rec trace.Record) (blockedOut bool) {
	write := rec.Kind == trace.Store
	for {
		tr, _, prefHit := m.krn.Translate(p.pid, rec.Addr, write)
		if tr == kernel.Present {
			if prefHit {
				// Swap-cache hit on a prefetched page: minor fault.
				p.met.MinorFaults++
				p.met.PrefetchUseful++
				if m.want[obs.EvPrefetchHit] {
					m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvPrefetchHit,
						PID: p.pid, VA: rec.Addr})
				}
				m.advance(p, kernel.MinorFaultCost)
				m.krn.ChargeHandler(kernel.MinorFaultCost)
				m.run.FaultHandlerTime += kernel.MinorFaultCost
			}
			m.cacheAccess(p, rec.Addr)
			return false
		}
		// Major fault.
		if m.majorFault(p, rec) {
			return true
		}
		// Synchronous completion: retry the translation.
	}
}

// cacheAccess charges the (TLB →) L1 → LLC → DRAM path.
func (m *Machine) cacheAccess(p *proc, addr uint64) {
	key := tagged(p.pid, addr)
	if m.tlb != nil && !m.tlb.Lookup(key>>pagetable.PageShift) {
		// TLB miss: the hardware walker re-reads the page tables.
		m.advance(p, m.cfg.TLBMissCost)
		p.met.MemStall += m.cfg.TLBMissCost
	}
	if m.l1.Access(key) {
		m.advance(p, m.cfg.L1Hit)
		return
	}
	p.met.LLCAccesses++
	if m.llc.Access(key) {
		m.advance(p, m.cfg.L1Hit+m.cfg.LLCHit)
		// The LLC-hit service time is still the CPU waiting on the
		// memory hierarchy (paper: idle accrues "during the cache
		// misses"), here an L1 miss served by the LLC.
		p.met.MemStall += m.cfg.LLCHit
		m.l1.Fill(key)
		return
	}
	p.met.LLCMisses++
	stall := m.cfg.L1Hit + m.cfg.LLCHit + mem.AccessLatency
	m.advance(p, stall)
	p.met.MemStall += m.cfg.LLCHit + mem.AccessLatency
	m.llcFill(key)
	m.l1.Fill(key)
}

// llcFill installs a line in the LLC, back-invalidating the displaced
// victim from the L1 (inclusive hierarchy: a line evicted from the LLC
// cannot stay live in an inner cache).
func (m *Machine) llcFill(key uint64) {
	if victim, ok := m.llc.Fill(key); ok {
		m.l1.Invalidate(m.llc.AddrOf(victim))
	}
}

// swapKind distinguishes why a page is being swapped in.
type swapKind uint8

const (
	// swapDemand is the faulting page itself.
	swapDemand swapKind = iota
	// swapPrefetch is a prefetcher candidate (counted in prefetch
	// metrics; first victim under pressure).
	swapPrefetch
	// swapCluster is a sibling page of a huge-I/O cluster fault (not a
	// prefetch for metrics purposes, not separately a major fault).
	swapCluster
)

// ensureSwapIn starts (or joins) the swap-in of (pid, page-of-va) and
// returns its completion time. Completion side effects (page-table update,
// unpin, inflight cleanup) run as an event at that time.
func (m *Machine) ensureSwapIn(p *proc, va uint64, kind swapKind) sim.Time {
	page := va &^ uint64(pagetable.PageSize-1)
	key := inflightKey{pid: p.pid, page: page}
	if done, ok := m.inflight[key]; ok {
		return done
	}
	// A page picked as a prefetch candidate can become resident before the
	// candidates are issued (an earlier swap-in completing during the
	// dispatch/walk time); treat that as already done.
	if pte, ok := m.krn.Process(p.pid).AS.Lookup(page); ok && pte.Present() {
		return m.eng.Now()
	}
	out := m.krn.StartSwapIn(m.eng.Now(), p.pid, page, kind != swapDemand)
	m.inflight[key] = out.Done
	frame := out.Frame
	m.eng.Schedule(out.Done, func(sim.Time) {
		m.krn.CompleteSwapIn(p.pid, page, frame)
		delete(m.inflight, key)
	})
	if kind == swapPrefetch {
		p.met.PrefetchIssued++
		if m.want[obs.EvPrefetchIssue] {
			m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvPrefetchIssue,
				PID: p.pid, VA: page, Dur: out.Done - m.eng.Now()})
		}
	}
	return out.Done
}

// clusterSwapIn fetches the swapped-out siblings of va's aligned
// SwapClusterPages-page cluster, returning the last completion time.
func (m *Machine) clusterSwapIn(p *proc, va uint64) sim.Time {
	cluster := uint64(m.cfg.SwapClusterPages) * pagetable.PageSize
	base := va &^ (cluster - 1)
	victim := va &^ uint64(pagetable.PageSize-1)
	as := m.krn.Process(p.pid).AS
	var last sim.Time
	for pv := base; pv < base+cluster; pv += pagetable.PageSize {
		if pv == victim {
			continue
		}
		if pte, ok := as.Lookup(pv); !ok || !pte.Swapped() {
			continue
		}
		if d := m.ensureSwapIn(p, pv, swapCluster); d > last {
			last = d
		}
	}
	return last
}

// tryPrefetch starts the swap-in of a prefetch candidate, subject to device
// admission control: if the page's channel is busy the candidate is dropped
// (readahead throttling), so demand reads never queue behind a prefetch
// flood.
func (m *Machine) tryPrefetch(p *proc, va uint64) {
	page := va &^ uint64(pagetable.PageSize-1)
	if _, busy := m.inflight[inflightKey{pid: p.pid, page: page}]; busy {
		return
	}
	pte, ok := m.krn.Process(p.pid).AS.Lookup(page)
	if !ok || !pte.Swapped() {
		return
	}
	if !m.krn.Device().FreeChannelAt(pte.Frame(), m.eng.Now()) {
		p.met.PrefetchDropped++
		if m.want[obs.EvPrefetchDrop] {
			m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvPrefetchDrop, PID: p.pid, VA: page})
		}
		return
	}
	m.ensureSwapIn(p, page, swapPrefetch)
}

// majorFault runs the paper's Figure 1 flow for one major fault. It returns
// true when the process blocked (async mode).
func (m *Machine) majorFault(p *proc, rec trace.Record) (blocked bool) {
	// The begin event goes out at entry, before any cost is charged: the
	// policy decision (and thus the handling mode) is only known later, so
	// the mode rides on the matching end event.
	faultStart := m.eng.Now()
	if m.want[obs.EvMajorFaultBegin] {
		m.emit(obs.Event{Time: faultStart, Type: obs.EvMajorFaultBegin, PID: p.pid, VA: rec.Addr})
	}
	p.met.MajorFaults++
	m.advance(p, kernel.FaultEntryCost)
	m.krn.ChargeHandler(kernel.FaultEntryCost)
	m.run.FaultHandlerTime += kernel.FaultEntryCost

	ctx := policy.Context{
		Now:         m.eng.Now(),
		PID:         p.pid,
		VA:          rec.Addr,
		AS:          m.krn.Process(p.pid).AS,
		CurPriority: p.spec.Priority,
	}
	if next := m.sch.NextToRun(); next != -1 {
		ctx.HasNext = true
		ctx.NextPriority = m.procs[next].spec.Priority
	}
	d := m.pol.Decide(&ctx)
	if d.DispatchCost > 0 {
		m.advance(p, d.DispatchCost)
		m.krn.ChargeHandler(d.DispatchCost)
		m.run.FaultHandlerTime += d.DispatchCost
	}

	// Start the victim page's DMA first (it is the critical path), then
	// issue prefetches so they queue behind it.
	done := m.ensureSwapIn(p, rec.Addr, swapDemand)
	// Huge-I/O clusters: the fault fetches the whole aligned cluster and
	// waits for all of it (§1's "larger I/O sizes").
	if m.cfg.SwapClusterPages > 1 {
		if d2 := m.clusterSwapIn(p, rec.Addr); d2 > done {
			done = d2
		}
	}

	if d.Mode == policy.AsyncBlock {
		for _, pv := range d.Prefetch {
			m.tryPrefetch(p, pv)
		}
		m.sch.Block(p.pid)
		p.blockedAt = m.eng.Now()
		p.wasBlocked = true
		if m.want[obs.EvBlock] {
			m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvBlock, PID: p.pid,
				VA: rec.Addr, Dur: m.eng.Now() - m.dispatchedAt})
		}
		m.scheduleFaultEnd(p, rec.Addr, faultStart, done, "async")
		// Wake up when the page lands (after the completion event at
		// the same timestamp, thanks to FIFO event ordering).
		m.eng.Schedule(done, func(sim.Time) { m.sch.Unblock(p.pid) })
		// Switching away is the asynchronous mode's price: 7 µs of pure
		// state movement — longer than the ULL I/O itself.
		m.chargeSwitch(p)
		return true
	}

	// Hybrid polling (Spin_Block): if the I/O will outlive the spin
	// threshold, burn the threshold busy-waiting and then block for the
	// remainder.
	if d.SpinThreshold > 0 && done-m.eng.Now() > d.SpinThreshold {
		p.met.StorageWait += d.SpinThreshold
		m.advance(p, d.SpinThreshold)
		m.sch.Block(p.pid)
		p.blockedAt = m.eng.Now()
		p.wasBlocked = true
		if m.want[obs.EvBlock] {
			m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvBlock, PID: p.pid,
				VA: rec.Addr, Dur: m.eng.Now() - m.dispatchedAt})
		}
		m.scheduleFaultEnd(p, rec.Addr, faultStart, done, "spin")
		m.eng.Schedule(done, func(sim.Time) { m.sch.Unblock(p.pid) })
		m.chargeSwitch(p)
		return true
	}

	// Synchronous busy-wait. The whole window is storage-induced stall
	// for this process (its own progress is paused even while ITS steals
	// the cycles for prefetching/pre-execution).
	windowStart := m.eng.Now()
	if w := done - windowStart; w > 0 {
		p.met.StorageWait += w
		m.run.SyncWaitHist.Observe(w)
	}
	if d.PrefetchWalkCost > 0 {
		walk := d.PrefetchWalkCost
		if rem := done - m.eng.Now(); walk > rem && rem > 0 {
			walk = rem // the walk cannot usefully exceed the wait
		}
		m.advance(p, walk)
		p.met.StolenPrefetch += walk
		if m.want[obs.EvPrefetchWalk] {
			m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvPrefetchWalk, PID: p.pid,
				Dur: walk, Value: int64(d.PrefetchScanned)})
		}
	}
	for _, pv := range d.Prefetch {
		m.tryPrefetch(p, pv)
	}
	preexecuted := false
	if d.PreExecute && m.px != nil {
		window := done - m.eng.Now()
		if window > 0 {
			m.preExecute(p, rec, window)
			preexecuted = true
		}
	}
	if rem := done - m.eng.Now(); rem > 0 {
		m.advance(p, rem)
	}
	if preexecuted {
		m.endRecovery(p, windowStart, done)
	}
	if m.want[obs.EvMajorFaultEnd] {
		m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvMajorFaultEnd, PID: p.pid,
			VA: rec.Addr, Dur: m.eng.Now() - faultStart, Cause: "sync"})
	}
	return false
}

// scheduleFaultEnd arranges the EvMajorFaultEnd of an asynchronous or
// spin-then-block fault to fire when its DMA lands, keeping the event stream
// monotonic while other processes run inside the window.
func (m *Machine) scheduleFaultEnd(p *proc, va uint64, faultStart, done sim.Time, mode string) {
	if !m.want[obs.EvMajorFaultEnd] {
		return
	}
	m.eng.Schedule(done, func(now sim.Time) {
		m.emit(obs.Event{Time: now, Type: obs.EvMajorFaultEnd, PID: p.pid,
			VA: va, Dur: now - faultStart, Cause: mode})
	})
}

// endRecovery applies the §3.4.3 termination mode after a pre-execution
// episode: an interrupt-driven DMA completion costs InterruptCost; a polling
// timer makes the process resume at the first tick after the DMA landed,
// overshooting by up to one poll interval.
func (m *Machine) endRecovery(p *proc, windowStart, done sim.Time) {
	if m.cfg.RecoveryPoll <= 0 {
		m.advance(p, InterruptCost)
		p.met.RecoveryOverhead += InterruptCost
		m.krn.ChargeHandler(InterruptCost)
		m.run.FaultHandlerTime += InterruptCost
		if m.want[obs.EvRecovery] {
			m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvRecovery, PID: p.pid,
				Dur: InterruptCost, Cause: "interrupt"})
		}
		return
	}
	elapsed := done - windowStart
	over := (m.cfg.RecoveryPoll - elapsed%m.cfg.RecoveryPoll) % m.cfg.RecoveryPoll
	if over > 0 {
		m.advance(p, over)
		p.met.RecoveryOverhead += over
		p.met.StorageWait += over
	}
	if m.want[obs.EvRecovery] {
		m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvRecovery, PID: p.pid,
			Dur: over, Cause: "poll"})
	}
}

// preExecute runs the fault-aware pre-execute engine during a synchronous
// wait window.
func (m *Machine) preExecute(p *proc, faulting trace.Record, window sim.Time) {
	if m.lastPXPid != p.pid {
		m.px.FlushHardware()
		m.lastPXPid = p.pid
	}
	as := m.krn.Process(p.pid).AS
	env := preexec.Env{
		Lookahead: func(i int) (trace.Record, bool) {
			return m.peek(p, 1+i)
		},
		PagePresent: func(va uint64) bool {
			pte, ok := as.Lookup(va)
			return ok && pte.Present()
		},
		PTEINV: func(va uint64) bool {
			pte, ok := as.Lookup(va)
			return ok && pte.INV()
		},
		SetPTEINV: func(va uint64) {
			as.Update(va, func(e pagetable.PTE) pagetable.PTE { return e | pagetable.FlagINV })
		},
		LLCContains: func(addr uint64) bool {
			return m.llc.Contains(tagged(p.pid, addr))
		},
		LLCFill: func(addr uint64) {
			m.llcFill(tagged(p.pid, addr))
			// The fill reads DRAM: reference the backing frame so
			// CLOCK sees the page as live (pre-execution protects
			// the pages it warms).
			if pte, ok := as.Lookup(addr); ok && pte.Present() {
				m.krn.DRAM().Touch(mem.FrameID(pte.Frame()), false)
			}
		},
		ClearPTEINV: func(va uint64) {
			as.Update(va, func(e pagetable.PTE) pagetable.PTE { return e &^ pagetable.FlagINV })
		},
		FaultVA:  faulting.Addr,
		FaultDst: faulting.Dst,
	}
	res := m.px.Run(window, env)
	if res.Used > 0 {
		m.advance(p, res.Used)
		p.met.StolenPreexec += res.Used - res.Overhead
		p.met.RecoveryOverhead += res.Overhead
	}
	p.met.PreexecInstrs += res.Instrs
	p.met.PreexecValid += res.Valid
	p.met.PreexecFills += res.Fills
	if m.want[obs.EvPreexecWindow] {
		m.emit(obs.Event{Time: m.eng.Now(), Type: obs.EvPreexecWindow, PID: p.pid,
			Dur: res.Used, Value: int64(res.Instrs)})
	}
}
