// Package machine assembles the full simulated platform of the paper's
// evaluation (§4.1): a single simulated core with an L1 and a 16-way 8 MB
// LLC (halved when the policy needs a pre-execute cache), the mini kernel's
// page tables and swap path, the SCHED_RR scheduler with NICE time slices,
// the ULL device behind a PCIe 5.x ×4 link, and one of the five I/O-mode
// policies deciding what happens on every major page fault.
//
// A Machine executes a batch of trace-driven processes to completion on a
// deterministic virtual clock and produces a metrics.Run with everything
// Figures 4 and 5 need.
//
// The per-record executor lives in internal/exec and is shared with the
// multi-core model (internal/smp): a Machine is one exec.Core over one
// exec.Shared, driven by the plain run loop below. Config and ProcessSpec
// are aliases of the exec types, so existing callers are unaffected.
package machine

import (
	"fmt"

	"itsim/internal/cache"
	"itsim/internal/exec"
	"itsim/internal/kernel"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/sched"
	"itsim/internal/sim"
)

// Timing defaults of the simulated core (re-exported from internal/exec for
// the package's historical API).
const (
	// DefaultL1Hit is the L1 hit latency.
	DefaultL1Hit = exec.DefaultL1Hit
	// DefaultLLCHit is the LLC hit latency.
	DefaultLLCHit = exec.DefaultLLCHit
	// DefaultInstPerNs is instructions retired per nanosecond of pure
	// compute (2 ⇒ 0.5 ns per instruction, a 2 GHz core at IPC 1).
	DefaultInstPerNs = exec.DefaultInstPerNs
	// DefaultLookahead is how many upcoming records the pre-execute
	// engine can see (the effective instruction window during runahead).
	DefaultLookahead = exec.DefaultLookahead
	// InterruptCost is the DMA completion interrupt's handling cost charged
	// when interrupt-driven state recovery ends a pre-execution episode
	// (§3.4.3).
	InterruptCost = exec.InterruptCost
)

// Config sizes the simulated platform. The zero value is not usable; start
// from DefaultConfig.
type Config = exec.Config

// ProcessSpec declares one process of a run.
type ProcessSpec = exec.ProcessSpec

// DefaultConfig returns the paper's §4.1 platform.
func DefaultConfig() Config { return exec.DefaultConfig() }

// Machine is one simulated platform executing one batch under one policy:
// the single core of a shared exec platform.
type Machine struct {
	s    *exec.Shared
	core *exec.Core
}

// New builds a machine for the given specs and policy. batchName labels the
// metrics.
func New(cfg Config, pol policy.Policy, batchName string, specs []ProcessSpec) *Machine {
	if len(specs) == 0 {
		panic("machine: no processes")
	}
	s, err := exec.NewShared(cfg, []policy.Policy{pol}, batchName, specs, false)
	if err != nil {
		// Unreachable on the paper's geometries: the pre-execute
		// way-partition clamping keeps 1 ≤ pxWays < LLCWays at one core.
		panic(err)
	}
	return &Machine{s: s, core: s.Cores[0]}
}

// Instrument attaches an event tracer and, when gaugeEvery > 0, a periodic
// virtual-time gauge sampler to the machine. Call before Run. A nil tracer
// leaves tracing off (the accounting auditor still runs — it is part of the
// machine, not of tracing).
func (m *Machine) Instrument(trc *obs.Tracer, gaugeEvery sim.Time) {
	m.s.Instrument(trc, gaugeEvery)
}

// Auditor exposes the machine's accounting auditor (tests, tools).
func (m *Machine) Auditor() *obs.Auditor { return m.core.Aud }

// Kernel exposes the kernel for inspection (tests, tools).
func (m *Machine) Kernel() *kernel.Kernel { return m.s.Krn }

// LLC exposes the last-level cache for inspection.
func (m *Machine) LLC() *cache.Cache { return m.s.LLC }

// Scheduler exposes the scheduler for inspection.
func (m *Machine) Scheduler() *sched.RR { return m.core.Sch }

// Now returns the current virtual time.
func (m *Machine) Now() sim.Time { return m.core.Eng.Now() }

// Run executes every process to completion and returns the metrics. The
// always-on accounting auditor checks time conservation and monotonic
// virtual time as the run executes; a violation fails the run loudly.
func (m *Machine) Run() (*metrics.Run, error) {
	s, c := m.s, m.core
	c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvRunBegin, PID: -1,
		Cause: s.Run.Policy + "/" + s.Run.Batch})
	s.ScheduleGauges()
	for c.Sch.Alive() > 0 {
		if s.Cfg.MaxSimTime > 0 && c.Eng.Now() > s.Cfg.MaxSimTime {
			return s.Run, fmt.Errorf("machine: exceeded max simulated time %v", s.Cfg.MaxSimTime)
		}
		pid := c.Sch.PickNext()
		if pid == -1 {
			// Everyone is blocked on asynchronous I/O: the CPU sits
			// idle waiting for storage. The idle-begin event must go out
			// before StepOne — events fired inside carry later times.
			t0 := c.Eng.Now()
			if s.Want[obs.EvSchedIdleBegin] {
				c.Emit(obs.Event{Time: t0, Type: obs.EvSchedIdleBegin, PID: -1})
			}
			if !c.Eng.StepOne() {
				return s.Run, fmt.Errorf("machine: deadlock — no runnable process and no pending event at %v", t0)
			}
			s.Run.SchedulerIdle += c.Eng.Now() - t0
			if s.Want[obs.EvSchedIdleEnd] {
				c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvSchedIdleEnd, PID: -1})
			}
			continue
		}
		c.Dispatch(pid)
		c.RunUntil(exec.Never)
	}
	s.Run.Makespan = c.Eng.Now()
	c.Emit(obs.Event{Time: s.Run.Makespan, Type: obs.EvRunEnd, PID: -1})
	c.Eng.RunUntilIdle() // drain trailing prefetch/write-back completions
	s.CollectInjection()
	if err := c.Aud.Err(); err != nil {
		return s.Run, fmt.Errorf("machine: accounting audit failed: %w", err)
	}
	if err := c.CheckFolded(); err != nil {
		return s.Run, fmt.Errorf("machine: attribution cross-check failed: %w", err)
	}
	return s.Run, nil
}
