package machine

import (
	"testing"
	"testing/quick"

	"itsim/internal/exec"
	"itsim/internal/kernel"
	"itsim/internal/metrics"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/trace"
	"itsim/internal/workload"
)

// testConfig returns a small platform so tests run in milliseconds.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.LLCSize = 256 << 10
	cfg.L1Size = 8 << 10
	cfg.MinSlice = 20 * sim.Microsecond
	cfg.MaxSlice = 200 * sim.Microsecond
	cfg.MaxSimTime = 10 * sim.Second
	return cfg
}

// seqGen builds a purely sequential trace: n accesses at the given stride.
func seqGen(name string, n int, stride uint64) trace.Generator {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			Addr: 0x10_0000 + uint64(i)*stride,
			Gap:  4, Size: 8,
			Kind: trace.Load,
			Dst:  uint8(i % 8), Src: uint8((i + 1) % 8),
		}
	}
	g := trace.NewSliceGenerator(name, recs)
	g.SetFootprint(uint64(n)*stride + 0x10_0000)
	return g
}

func specFor(gens ...trace.Generator) []ProcessSpec {
	specs := make([]ProcessSpec, len(gens))
	for i, g := range gens {
		specs[i] = ProcessSpec{Name: g.Name(), Gen: g, Priority: i + 1}
	}
	return specs
}

func TestSingleProcessCompletes(t *testing.T) {
	for _, kind := range policy.Kinds() {
		m := New(testConfig(), policy.New(kind), "t", specFor(seqGen("a", 5000, 64)))
		run, err := m.Run()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(run.Procs) != 1 || !run.Procs[0].Finished {
			t.Fatalf("%v: process did not finish", kind)
		}
		if run.Procs[0].FinishTime <= 0 || run.Makespan < run.Procs[0].FinishTime {
			t.Fatalf("%v: times inconsistent: %v / %v", kind, run.Procs[0].FinishTime, run.Makespan)
		}
		if run.Procs[0].Instructions == 0 {
			t.Fatalf("%v: no instructions recorded", kind)
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *metrics_run {
		m := New(testConfig(), policy.New(policy.ITS), "t",
			specFor(seqGen("a", 3000, 64), seqGen("b", 3000, 128)))
		run, err := m.Run()
		if err != nil {
			panic(err)
		}
		return &metrics_run{run.Makespan, run.TotalIdle(), run.TotalMajorFaults(), run.TotalLLCMisses()}
	}
	a, b := mk(), mk()
	if *a != *b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

type metrics_run struct {
	makespan sim.Time
	idle     sim.Time
	faults   uint64
	misses   uint64
}

func TestWorkloadBatchUnderEveryPolicy(t *testing.T) {
	b := workload.Batches()[1] // 1_Data_Intensive
	for _, kind := range policy.Kinds() {
		gens := b.Generators(0.01)
		specs := make([]ProcessSpec, len(gens))
		for i, g := range gens {
			specs[i] = ProcessSpec{Name: g.Name(), Gen: g, Priority: b.Priorities[i], BaseVA: workload.BaseVA}
		}
		m := New(testConfig(), policy.New(kind), b.Name, specs)
		run, err := m.Run()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, p := range run.Procs {
			if !p.Finished {
				t.Fatalf("%v: %s did not finish", kind, p.Name)
			}
		}
		if run.TotalIdle() <= 0 {
			t.Fatalf("%v: zero idle time", kind)
		}
	}
}

func TestAsyncBlocksAndSwitches(t *testing.T) {
	gens := workload.Batches()[0].Generators(0.01)
	specs := specFor(gens[0], gens[1])
	m := New(testConfig(), policy.New(policy.Async), "t", specs)
	run, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.TotalMajorFaults() == 0 {
		t.Fatal("no faults — test workload too small")
	}
	if run.TotalContextSwitches() == 0 || run.ContextSwitchTime == 0 {
		t.Fatal("async faults produced no context switches")
	}
	// Every async fault pays at least one switch.
	if run.TotalContextSwitches() < run.TotalMajorFaults() {
		t.Fatalf("switches %d < faults %d", run.TotalContextSwitches(), run.TotalMajorFaults())
	}
	var blocked sim.Time
	for _, p := range run.Procs {
		blocked += p.BlockedWait
	}
	if blocked == 0 {
		t.Fatal("async faults recorded no blocked wait")
	}
}

func TestSyncBusyWaits(t *testing.T) {
	gens := workload.Batches()[0].Generators(0.01)
	m := New(testConfig(), policy.New(policy.Sync), "t", specFor(gens[0], gens[1]))
	run, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var storage sim.Time
	for _, p := range run.Procs {
		storage += p.StorageWait
		if p.BlockedWait != 0 {
			t.Fatal("sync policy produced blocked waits")
		}
	}
	if storage == 0 {
		t.Fatal("sync faults recorded no storage wait")
	}
	if run.SchedulerIdle != 0 {
		t.Fatal("sync run left the scheduler idle")
	}
}

func TestITSPrefetchesAndSteals(t *testing.T) {
	gens := workload.Batches()[0].Generators(0.02)
	specs := make([]ProcessSpec, 3)
	for i := 0; i < 3; i++ {
		specs[i] = ProcessSpec{Name: gens[i].Name(), Gen: gens[i], Priority: i + 1, BaseVA: workload.BaseVA}
	}
	m := New(testConfig(), policy.New(policy.ITS), "t", specs)
	run, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var issued, useful uint64
	var stolen sim.Time
	for _, p := range run.Procs {
		issued += p.PrefetchIssued
		useful += p.PrefetchUseful
		stolen += p.StolenPrefetch + p.StolenPreexec
	}
	if issued == 0 {
		t.Fatal("ITS issued no prefetches")
	}
	if useful > issued {
		t.Fatalf("useful %d > issued %d", useful, issued)
	}
	if stolen == 0 {
		t.Fatal("ITS stole no busy-wait time")
	}
	if run.TotalMinorFaults() == 0 {
		t.Fatal("no prefetched page was ever hit (no minor faults)")
	}
}

func TestITSBeatsSyncOnIdle(t *testing.T) {
	// The headline result at miniature scale: ITS ≤ Sync on total idle.
	b := workload.Batches()[1]
	mkRun := func(kind policy.Kind) sim.Time {
		gens := b.Generators(0.02)
		specs := make([]ProcessSpec, len(gens))
		for i, g := range gens {
			specs[i] = ProcessSpec{Name: g.Name(), Gen: g, Priority: b.Priorities[i], BaseVA: workload.BaseVA}
		}
		m := New(testConfig(), policy.New(kind), b.Name, specs)
		run, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return run.TotalIdle()
	}
	its := mkRun(policy.ITS)
	syn := mkRun(policy.Sync)
	if its >= syn {
		t.Fatalf("ITS idle %v not below Sync idle %v", its, syn)
	}
}

func TestRunaheadCutsCacheMisses(t *testing.T) {
	b := workload.Batches()[0]
	mkRun := func(kind policy.Kind) uint64 {
		gens := b.Generators(0.02)
		specs := make([]ProcessSpec, len(gens))
		for i, g := range gens {
			specs[i] = ProcessSpec{Name: g.Name(), Gen: g, Priority: b.Priorities[i], BaseVA: workload.BaseVA}
		}
		cfg := testConfig()
		cfg.LLCSize = 1 << 20
		m := New(cfg, policy.New(kind), b.Name, specs)
		run, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return run.TotalLLCMisses()
	}
	ra := mkRun(policy.SyncRunahead)
	syn := mkRun(policy.Sync)
	if ra >= syn {
		t.Fatalf("Runahead misses %d not below Sync misses %d", ra, syn)
	}
}

func TestWarmStartReducesColdFaults(t *testing.T) {
	b := workload.Batches()[0]
	mkRun := func(warm float64) uint64 {
		gens := b.Generators(0.01)
		specs := make([]ProcessSpec, len(gens))
		for i, g := range gens {
			specs[i] = ProcessSpec{Name: g.Name(), Gen: g, Priority: b.Priorities[i], BaseVA: workload.BaseVA}
		}
		cfg := testConfig()
		cfg.WarmFraction = warm
		m := New(cfg, policy.New(policy.Sync), b.Name, specs)
		run, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return run.TotalMajorFaults()
	}
	warm := mkRun(0.85)
	cold := mkRun(-1)
	if warm >= cold {
		t.Fatalf("warm start did not reduce faults: warm=%d cold=%d", warm, cold)
	}
}

func TestMaxSimTimeAborts(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSimTime = 10 * sim.Microsecond
	m := New(cfg, policy.New(policy.Sync), "t", specFor(seqGen("a", 500000, 64)))
	if _, err := m.Run(); err == nil {
		t.Fatal("MaxSimTime exceeded without error")
	}
}

func TestNoProcessesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty spec list accepted")
		}
	}()
	New(testConfig(), policy.New(policy.Sync), "t", nil)
}

func TestTaggedAddressesIsolateProcesses(t *testing.T) {
	if exec.Tagged(0, 0x1000) == exec.Tagged(1, 0x1000) {
		t.Fatal("same VA in different processes aliases in the cache")
	}
	if exec.Tagged(3, 0x1000)&(1<<48-1) != 0x1000 {
		t.Fatal("tagging corrupted the address bits")
	}
}

func TestContextSwitchCostCharged(t *testing.T) {
	// Two pure-compute processes with tiny slices must context switch and
	// pay 7 µs each time.
	cfg := testConfig()
	cfg.MinSlice = 20 * sim.Microsecond
	cfg.MaxSlice = 20 * sim.Microsecond
	m := New(cfg, policy.New(policy.Sync), "t",
		specFor(seqGen("a", 2000, 8), seqGen("b", 2000, 8)))
	run, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.TotalContextSwitches() == 0 {
		t.Fatal("no slice-expiry switches")
	}
	if run.ContextSwitchTime != sim.Time(run.TotalContextSwitches())*kernel.ContextSwitchCost {
		t.Fatalf("switch time %v inconsistent with %d switches",
			run.ContextSwitchTime, run.TotalContextSwitches())
	}
}

func TestFinishTimesOrderedByCompletion(t *testing.T) {
	m := New(testConfig(), policy.New(policy.Sync), "t",
		specFor(seqGen("short", 1000, 64), seqGen("long", 20000, 64)))
	run, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Procs[0].FinishTime >= run.Procs[1].FinishTime {
		t.Fatalf("short process finished after long one: %v vs %v",
			run.Procs[0].FinishTime, run.Procs[1].FinishTime)
	}
	if run.Makespan != run.Procs[1].FinishTime {
		t.Fatalf("makespan %v != last finish %v", run.Makespan, run.Procs[1].FinishTime)
	}
}

func TestRecoveryInterruptVsPolling(t *testing.T) {
	gens := workload.Batches()[0].Generators(0.01)
	mkRun := func(poll sim.Time) *run2 {
		cfg := testConfig()
		cfg.RecoveryPoll = poll
		specs := []ProcessSpec{
			{Name: gens[0].Name(), Gen: gens[0], Priority: 1, BaseVA: workload.BaseVA},
		}
		m := New(cfg, policy.New(policy.SyncRunahead), "t", specs)
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		var rec sim.Time
		for _, p := range r.Procs {
			rec += p.RecoveryOverhead
		}
		return &run2{rec, r.Makespan}
	}
	intr := mkRun(0)
	poll := mkRun(2 * sim.Microsecond)
	if intr.recovery <= 0 {
		t.Fatal("interrupt mode charged no recovery overhead")
	}
	// A 2 µs polling timer overshoots ~1 µs per episode on average — far
	// more than the 300 ns interrupt — so polling must cost more overall.
	if poll.recovery <= intr.recovery {
		t.Fatalf("polling recovery %v not above interrupt %v", poll.recovery, intr.recovery)
	}
	if poll.makespan <= intr.makespan {
		t.Fatalf("polling makespan %v not above interrupt %v", poll.makespan, intr.makespan)
	}
}

type run2 struct {
	recovery sim.Time
	makespan sim.Time
}

func TestFaultOnInflightPrefetchJoins(t *testing.T) {
	// A fault on a page whose prefetch is already in flight must wait for
	// the existing DMA, not start a second one: device swap-in count stays
	// equal to distinct pages fetched.
	gens := workload.Batches()[0].Generators(0.01)
	specs := []ProcessSpec{
		{Name: gens[0].Name(), Gen: gens[0], Priority: 2, BaseVA: workload.BaseVA},
		{Name: gens[1].Name(), Gen: gens[1], Priority: 1, BaseVA: workload.BaseVA},
	}
	m := New(testConfig(), policy.New(policy.ITS), "t", specs)
	run, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	krnStats := m.Kernel().Stats()
	devStats := m.Kernel().Device().Stats()
	if devStats.Reads != krnStats.SwapIns {
		t.Fatalf("device reads %d != kernel swap-ins %d (duplicate DMA?)", devStats.Reads, krnStats.SwapIns)
	}
	_ = run
}

func TestInstructionConservation(t *testing.T) {
	// Every instruction of every trace is executed exactly once, whatever
	// the policy does around faults.
	for _, kind := range policy.Kinds() {
		gens := workload.Batches()[0].Generators(0.01)
		var want uint64
		for _, g := range gens[:3] {
			st := trace.Analyze(g)
			want += st.Instrs
		}
		specs := make([]ProcessSpec, 3)
		for i := 0; i < 3; i++ {
			specs[i] = ProcessSpec{Name: gens[i].Name(), Gen: gens[i], Priority: i + 1, BaseVA: workload.BaseVA}
		}
		m := New(testConfig(), policy.New(kind), "t", specs)
		run, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for _, p := range run.Procs {
			got += p.Instructions
		}
		if got != want {
			t.Fatalf("%v: executed %d instructions, traces contain %d", kind, got, want)
		}
	}
}

func TestIdleNeverExceedsAggregateRuntime(t *testing.T) {
	gens := workload.Batches()[3].Generators(0.01)
	specs := make([]ProcessSpec, len(gens))
	for i, g := range gens {
		specs[i] = ProcessSpec{Name: g.Name(), Gen: g, Priority: i + 1, BaseVA: workload.BaseVA}
	}
	for _, kind := range policy.Kinds() {
		for i := range specs {
			specs[i].Gen.Reset()
		}
		m := New(testConfig(), policy.New(kind), "t", specs)
		run, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Aggregate per-process stall cannot exceed processes × makespan.
		if run.TotalIdle() > run.Makespan*sim.Time(len(specs)) {
			t.Fatalf("%v: idle %v exceeds %d×makespan %v", kind, run.TotalIdle(), len(specs), run.Makespan)
		}
	}
}

func TestTLBModeChargesMisses(t *testing.T) {
	gens := workload.Batches()[0].Generators(0.01)
	mkRun := func(tlbEntries int) *metrics_run {
		cfg := testConfig()
		cfg.TLBEntries = tlbEntries
		specs := []ProcessSpec{
			{Name: gens[0].Name(), Gen: gens[0], Priority: 2, BaseVA: workload.BaseVA},
			{Name: gens[1].Name(), Gen: gens[1], Priority: 1, BaseVA: workload.BaseVA},
		}
		for i := range specs {
			specs[i].Gen.Reset()
		}
		m := New(cfg, policy.New(policy.Sync), "t", specs)
		run, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return &metrics_run{run.Makespan, run.TotalIdle(), run.TotalMajorFaults(), run.TotalLLCMisses()}
	}
	tiny := mkRun(16)  // thrashing TLB
	big := mkRun(4096) // ample TLB
	off := mkRun(0)    // constant-pollution mode
	if tiny.idle <= big.idle {
		t.Fatalf("tiny TLB idle %v not above big TLB idle %v", tiny.idle, big.idle)
	}
	if off.faults != tiny.faults || off.faults != big.faults {
		t.Fatalf("TLB model changed fault counts: %d/%d/%d", off.faults, tiny.faults, big.faults)
	}
}

func TestSpinBlockHybridBehaviour(t *testing.T) {
	gens := workload.Batches()[1].Generators(0.01)
	specs := make([]ProcessSpec, 4)
	for i := 0; i < 4; i++ {
		specs[i] = ProcessSpec{Name: gens[i].Name(), Gen: gens[i], Priority: i + 1, BaseVA: workload.BaseVA}
	}
	mkRun := func(pol policy.Policy) *metrics.Run {
		for i := range specs {
			specs[i].Gen.Reset()
		}
		m := New(testConfig(), pol, "t", specs)
		run, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	// A generous threshold (device read ~3 µs < 7 µs) behaves like Sync:
	// (almost) no blocking.
	generous := mkRun(policy.NewSpinBlock(50 * sim.Microsecond))
	var blocked sim.Time
	for _, p := range generous.Procs {
		blocked += p.BlockedWait
	}
	if frac := float64(blocked) / float64(generous.Makespan); frac > 0.2 {
		t.Fatalf("generous spin threshold still blocked %.0f%% of the time", 100*frac)
	}
	// A sub-I/O threshold must fall back to blocking on essentially every
	// fault that outlives it.
	stingy := mkRun(policy.NewSpinBlock(500 * sim.Nanosecond))
	blocked = 0
	for _, p := range stingy.Procs {
		blocked += p.BlockedWait
	}
	if blocked == 0 {
		t.Fatal("stingy spin threshold never blocked")
	}
	if stingy.TotalContextSwitches() <= generous.TotalContextSwitches() {
		t.Fatalf("stingy threshold switched %d times, generous %d",
			stingy.TotalContextSwitches(), generous.TotalContextSwitches())
	}
}

// TestTimeConservation is the machine's strongest invariant: every
// nanosecond of the makespan is attributed exactly once — to some process's
// CPU occupancy, to context switching, or to scheduler idle.
func TestTimeConservation(t *testing.T) {
	for _, kind := range policy.Kinds() {
		b := workload.Batches()[2]
		gens := b.Generators(0.01)
		specs := make([]ProcessSpec, len(gens))
		for i, g := range gens {
			specs[i] = ProcessSpec{Name: g.Name(), Gen: g, Priority: b.Priorities[i], BaseVA: workload.BaseVA}
		}
		m := New(testConfig(), policy.New(kind), b.Name, specs)
		run, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		var cpu sim.Time
		for _, p := range run.Procs {
			cpu += p.CPUTime
		}
		// Switch time includes the pollution tail, which advance() does
		// not attribute to a process (advance(nil, ...)).
		accounted := cpu + run.ContextSwitchTime + run.SchedulerIdle +
			sim.Time(run.TotalContextSwitches())*kernel.SwitchPollutionCost
		if accounted != run.Makespan {
			t.Fatalf("%v: accounted %v != makespan %v (Δ %v)",
				kind, accounted, run.Makespan, run.Makespan-accounted)
		}
	}
}

func TestPreExecCacheFractionPartitionsWays(t *testing.T) {
	gens := workload.Batches()[0].Generators(0.01)
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		cfg := testConfig()
		cfg.LLCSize = 1 << 20
		cfg.PreExecCacheFraction = frac
		specs := []ProcessSpec{{Name: gens[0].Name(), Gen: gens[0], Priority: 1, BaseVA: workload.BaseVA}}
		specs[0].Gen.Reset()
		m := New(cfg, policy.New(policy.SyncRunahead), "t", specs)
		got := m.LLC().Config()
		pxCfg := m.core.PX.PXC.Config()
		if got.SizeBytes+pxCfg.SizeBytes != cfg.LLCSize {
			t.Fatalf("frac %v: LLC %d + px %d != %d", frac, got.SizeBytes, pxCfg.SizeBytes, cfg.LLCSize)
		}
		if got.Ways+pxCfg.Ways != cfg.LLCWays {
			t.Fatalf("frac %v: ways %d + %d != %d", frac, got.Ways, pxCfg.Ways, cfg.LLCWays)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}
	}
}

// TestRandomTracesProperty drives every policy with small random traces:
// the machine must terminate, conserve instructions, and keep metrics sane.
func TestRandomTracesProperty(t *testing.T) {
	f := func(seeds []uint16, polIdx uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 3 {
			seeds = seeds[:3]
		}
		kind := policy.Kinds()[int(polIdx)%len(policy.Kinds())]
		var specs []ProcessSpec
		var want uint64
		for i, seed := range seeds {
			p := workload.Profile{
				Name:           "rnd",
				FootprintBytes: uint64(64+seed%512) * 4096,
				Records:        2000 + int(seed)%3000,
				PSeq:           float64(seed%10) / 10 * 0.8,
				PHot:           0.1,
				StoreFrac:      0.3,
				GapMean:        1 + int(seed)%20,
				Seed:           uint64(seed) + 1,
			}
			g := workload.New(p)
			st := trace.Analyze(g)
			want += st.Instrs
			specs = append(specs, ProcessSpec{
				Name: "rnd", Gen: g, Priority: i + 1, BaseVA: workload.BaseVA,
			})
		}
		m := New(testConfig(), policy.New(kind), "prop", specs)
		run, err := m.Run()
		if err != nil {
			return false
		}
		var got uint64
		for _, p := range run.Procs {
			if !p.Finished || p.FinishTime <= 0 {
				return false
			}
			got += p.Instructions
		}
		return got == want && run.TotalIdle() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
