package preexec

import (
	"testing"

	"itsim/internal/cache"
	"itsim/internal/cpu"
	"itsim/internal/sim"
	"itsim/internal/trace"
)

func newEngine() *Engine {
	return New(cpu.NewPreExecCache(cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4}))
}

// env builds a test Env over an explicit lookahead and a set of resident
// pages; llc records fills.
type testEnv struct {
	recs     []trace.Record
	resident map[uint64]bool // page-aligned VA → present
	pteINV   map[uint64]bool
	llc      map[uint64]bool // line-aligned → present
	fills    []uint64
	cleared  []uint64
	faultVA  uint64
	faultDst uint8
}

func (te *testEnv) env() Env {
	if te.pteINV == nil {
		te.pteINV = map[uint64]bool{}
	}
	if te.llc == nil {
		te.llc = map[uint64]bool{}
	}
	return Env{
		Lookahead: func(i int) (trace.Record, bool) {
			if i < len(te.recs) {
				return te.recs[i], true
			}
			return trace.Record{}, false
		},
		PagePresent: func(va uint64) bool { return te.resident[va&^0xFFF] },
		PTEINV:      func(va uint64) bool { return te.pteINV[va&^0xFFF] },
		SetPTEINV:   func(va uint64) { te.pteINV[va&^0xFFF] = true },
		ClearPTEINV: func(va uint64) {
			delete(te.pteINV, va&^0xFFF)
			te.cleared = append(te.cleared, va)
		},
		LLCContains: func(addr uint64) bool { return te.llc[addr&^63] },
		LLCFill: func(addr uint64) {
			te.llc[addr&^63] = true
			te.fills = append(te.fills, addr&^63)
		},
		FaultVA:  te.faultVA,
		FaultDst: te.faultDst,
	}
}

const bigWindow = 100 * sim.Microsecond

func TestTooSmallWindowDoesNothing(t *testing.T) {
	e := newEngine()
	te := &testEnv{faultVA: 0x1000}
	res := e.Run(cpu.CheckpointCost, te.env())
	if res.Used != 0 || res.Instrs != 0 {
		t.Fatalf("tiny window ran: %+v", res)
	}
}

func TestValidLoadWarmsCache(t *testing.T) {
	e := newEngine()
	te := &testEnv{
		recs: []trace.Record{
			{Addr: 0x2000, Kind: trace.Load, Gap: 2, Size: 8, Dst: 1, Src: 2},
		},
		resident: map[uint64]bool{0x2000: true},
		faultVA:  0x1000, faultDst: 0,
	}
	res := e.Run(bigWindow, te.env())
	if res.Instrs != 1 || res.Valid != 1 || res.Fills != 1 {
		t.Fatalf("res = %+v", res)
	}
	if len(te.fills) != 1 || te.fills[0] != 0x2000 {
		t.Fatalf("fills = %#v", te.fills)
	}
	if res.Used <= cpu.CheckpointCost {
		t.Fatalf("Used = %v", res.Used)
	}
}

func TestFaultPageLoadIsInvalid(t *testing.T) {
	e := newEngine()
	te := &testEnv{
		recs: []trace.Record{
			// Load from the faulting page itself: invalid even though the
			// map says "resident" (it is mid-swap-in).
			{Addr: 0x1800, Kind: trace.Load, Size: 8, Dst: 4, Src: 2},
		},
		resident: map[uint64]bool{0x1000: true},
		faultVA:  0x1234, faultDst: 0,
	}
	res := e.Run(bigWindow, te.env())
	if res.Valid != 0 || res.Fills != 0 {
		t.Fatalf("fault-page load treated valid: %+v", res)
	}
}

func TestINVPropagationThroughRegisters(t *testing.T) {
	e := newEngine()
	// Faulting load poisons r0; the second load's address depends on r0 →
	// its dst r5 poisoned; third load uses r5 → poisoned too; a fourth,
	// independent load is valid.
	te := &testEnv{
		recs: []trace.Record{
			{Addr: 0x2000, Kind: trace.Load, Size: 8, Dst: 5, Src: 0},
			{Addr: 0x3000, Kind: trace.Load, Size: 8, Dst: 6, Src: 5},
			{Addr: 0x4000, Kind: trace.Load, Size: 8, Dst: 7, Src: 9},
		},
		resident: map[uint64]bool{0x2000: true, 0x3000: true, 0x4000: true},
		faultVA:  0x1000, faultDst: 0,
	}
	res := e.Run(bigWindow, te.env())
	if res.Instrs != 3 {
		t.Fatalf("Instrs = %d", res.Instrs)
	}
	if res.Valid != 1 {
		t.Fatalf("Valid = %d, want only the independent load", res.Valid)
	}
}

func TestValidResultClearsINVChain(t *testing.T) {
	e := newEngine()
	// r0 poisoned by the fault; an independent valid load into r0 clears
	// it; a subsequent use of r0 is then valid.
	te := &testEnv{
		recs: []trace.Record{
			{Addr: 0x2000, Kind: trace.Load, Size: 8, Dst: 0, Src: 3},
			{Addr: 0x3000, Kind: trace.Load, Size: 8, Dst: 1, Src: 0},
		},
		resident: map[uint64]bool{0x2000: true, 0x3000: true},
		faultVA:  0x1000, faultDst: 0,
	}
	res := e.Run(bigWindow, te.env())
	if res.Valid != 2 {
		t.Fatalf("Valid = %d, want 2 (overwrite clears INV)", res.Valid)
	}
}

func TestStoreInStorageGoesToPreExecCache(t *testing.T) {
	e := newEngine()
	te := &testEnv{
		recs: []trace.Record{
			// Store to a swapped-out page (Figure 3a step 0).
			{Addr: 0x5000, Kind: trace.Store, Size: 8, Dst: 0, Src: 3},
			// Dependent load forwarded from the store buffer: INV.
			{Addr: 0x5000, Kind: trace.Load, Size: 8, Dst: 2, Src: 7},
		},
		resident: map[uint64]bool{},
		faultVA:  0x1000, faultDst: 0,
	}
	res := e.Run(bigWindow, te.env())
	if res.Valid != 0 {
		t.Fatalf("Valid = %d, want 0", res.Valid)
	}
	if res.PoisonedPTEs == 0 {
		t.Fatal("store to storage did not poison its PTE")
	}
	// PTE poison must be cleared at episode end.
	if te.pteINV[0x5000] {
		t.Fatal("PTE INV not cleared by state recovery")
	}
}

func TestStoreForwardingValid(t *testing.T) {
	e := newEngine()
	te := &testEnv{
		recs: []trace.Record{
			{Addr: 0x2000, Kind: trace.Store, Size: 8, Dst: 0, Src: 3}, // valid store
			{Addr: 0x2000, Kind: trace.Load, Size: 8, Dst: 2, Src: 7},  // forwarded: valid
		},
		resident: map[uint64]bool{0x2000: true},
		faultVA:  0x1000, faultDst: 0,
	}
	res := e.Run(bigWindow, te.env())
	if res.Valid != 2 {
		t.Fatalf("Valid = %d, want 2", res.Valid)
	}
}

func TestPoisonedStorePoisonsForwardedLoad(t *testing.T) {
	e := newEngine()
	te := &testEnv{
		recs: []trace.Record{
			// Store whose source register is the fault's destination.
			{Addr: 0x2000, Kind: trace.Store, Size: 8, Dst: 0, Src: 9},
			{Addr: 0x2000, Kind: trace.Load, Size: 8, Dst: 2, Src: 7},
		},
		resident: map[uint64]bool{0x2000: true},
		faultVA:  0x1000, faultDst: 9,
	}
	res := e.Run(bigWindow, te.env())
	// The store is invalid (src INV); the forwarded load inherits INV.
	if res.Valid != 0 {
		t.Fatalf("Valid = %d, want 0", res.Valid)
	}
}

func TestPTEINVBlocksCachedData(t *testing.T) {
	e := newEngine()
	te := &testEnv{
		recs: []trace.Record{
			{Addr: 0x6000, Kind: trace.Load, Size: 8, Dst: 2, Src: 7},
		},
		resident: map[uint64]bool{0x6000: true},
		pteINV:   map[uint64]bool{0x6000: true},
		llc:      map[uint64]bool{0x6000: true},
		faultVA:  0x1000, faultDst: 0,
	}
	res := e.Run(bigWindow, te.env())
	if res.Valid != 0 {
		t.Fatalf("Valid = %d: PTE INV ignored for cached data", res.Valid)
	}
}

func TestWindowBudgetRespected(t *testing.T) {
	e := newEngine()
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = trace.Record{Addr: uint64(0x2000 + i*64), Kind: trace.Load, Gap: 10, Size: 8, Dst: uint8(i % 8), Src: 15}
	}
	resident := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		resident[uint64(0x2000+i*64)&^0xFFF] = true
	}
	te := &testEnv{recs: recs, resident: resident, faultVA: 0x1000, faultDst: 0}
	window := 3 * sim.Microsecond
	res := e.Run(window, te.env())
	if res.Used > window {
		t.Fatalf("Used %v exceeds window %v", res.Used, window)
	}
	if res.Instrs == 0 || res.Instrs == 1000 {
		t.Fatalf("Instrs = %d, want partial progress", res.Instrs)
	}
}

func TestStateRecoveryRestoresRegisters(t *testing.T) {
	e := newEngine()
	te := &testEnv{
		recs: []trace.Record{
			{Addr: 0x2000, Kind: trace.Load, Size: 8, Dst: 3, Src: 0},
		},
		resident: map[uint64]bool{0x2000: true},
		faultVA:  0x1000, faultDst: 0,
	}
	e.Run(bigWindow, te.env())
	if e.RF.CountINV() != 0 {
		t.Fatalf("architectural RF has %d INV bits after recovery", e.RF.CountINV())
	}
	if e.Shadow.Valid() {
		t.Fatal("shadow checkpoint still pending")
	}
	if e.SB.Len() != 0 {
		t.Fatal("store buffer not drained")
	}
}

func TestOverheadAccounting(t *testing.T) {
	e := newEngine()
	te := &testEnv{
		recs:     []trace.Record{{Addr: 0x2000, Kind: trace.Load, Size: 8, Dst: 1, Src: 2}},
		resident: map[uint64]bool{0x2000: true},
		faultVA:  0x1000,
	}
	res := e.Run(bigWindow, te.env())
	if res.Overhead != cpu.CheckpointCost+cpu.RestoreCost {
		t.Fatalf("Overhead = %v", res.Overhead)
	}
	if res.Used <= res.Overhead {
		t.Fatalf("Used %v not above overhead %v", res.Used, res.Overhead)
	}
}

func TestClearPTECallback(t *testing.T) {
	e := newEngine()
	var cleared []uint64
	te := &testEnv{
		recs: []trace.Record{
			{Addr: 0x5000, Kind: trace.Store, Size: 8, Dst: 0, Src: 3},
		},
		resident: map[uint64]bool{},
		faultVA:  0x1000,
	}
	e.Run(bigWindow, te.env())
	_ = cleared
	if len(te.cleared) != 1 || te.cleared[0] != 0x5000 {
		t.Fatalf("cleared = %#v", te.cleared)
	}
}

func TestFlushHardware(t *testing.T) {
	e := newEngine()
	e.PXC.Write(0x40, 8, false)
	e.SB.Insert(0x80, 8, false, nil)
	e.RF.MarkINV(1)
	e.FlushHardware()
	if present, _ := e.PXC.Read(0x40, 8); present {
		t.Fatal("PXC survived flush")
	}
	if e.SB.Len() != 0 || e.RF.CountINV() != 0 {
		t.Fatal("SB/RF survived flush")
	}
}

func TestCustomPerInstructionCost(t *testing.T) {
	e := newEngine()
	e.Costs.PerInstruction = 10 * sim.Nanosecond
	recs := make([]trace.Record, 100)
	for i := range recs {
		recs[i] = trace.Record{Addr: 0x2000, Kind: trace.Load, Gap: 0, Size: 8, Dst: 1, Src: 2}
	}
	te := &testEnv{recs: recs, resident: map[uint64]bool{0x2000: true}, faultVA: 0x1000}
	// Budget for ~10 instructions at 10 ns + probes.
	res := e.Run(cpu.CheckpointCost+cpu.RestoreCost+130*sim.Nanosecond, te.env())
	if res.Instrs == 0 || res.Instrs > 12 {
		t.Fatalf("custom per-instruction cost ignored: %d instrs", res.Instrs)
	}
}

func TestStoreBufferRetireIntoPXCDuringEpisode(t *testing.T) {
	// Overflowing the store buffer mid-episode retires entries into the
	// pre-execute cache through the engine's retire hook.
	e := newEngine()
	n := cpu.StoreBufferSize + 8
	recs := make([]trace.Record, n)
	resident := map[uint64]bool{}
	for i := range recs {
		addr := uint64(0x2000 + i*64)
		recs[i] = trace.Record{Addr: addr, Kind: trace.Store, Size: 8, Dst: 1, Src: 2}
		resident[addr&^0xFFF] = true
	}
	te := &testEnv{recs: recs, resident: resident, faultVA: 0x1000}
	res := e.Run(bigWindow, te.env())
	if res.Instrs != uint64(n) {
		t.Fatalf("Instrs = %d, want %d", res.Instrs, n)
	}
	// The oldest retired store's bytes are in the pre-execute cache.
	if present, inv := e.PXC.Read(0x2000, 8); !present || inv {
		t.Fatalf("retired store not in PXC: present=%v inv=%v", present, inv)
	}
}

func TestPreLoadAddressFromPoisonedRegister(t *testing.T) {
	// A load whose source register is poisoned must be invalid even if its
	// page is resident and cached.
	e := newEngine()
	te := &testEnv{
		recs: []trace.Record{
			{Addr: 0x2000, Kind: trace.Load, Size: 8, Dst: 1, Src: 0},
		},
		resident: map[uint64]bool{0x2000: true},
		llc:      map[uint64]bool{0x2000: true},
		faultVA:  0x1000, faultDst: 0,
	}
	res := e.Run(bigWindow, te.env())
	if res.Valid != 0 {
		t.Fatalf("poisoned-address load treated valid: %+v", res)
	}
}
