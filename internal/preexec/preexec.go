// Package preexec implements the fault-aware pre-execute policy (§3.4.2)
// and the state-recovery policy (§3.4.3): runahead-style execution of the
// instructions following a faulting access, for the duration of the
// synchronous I/O wait, with INV (invalid) marks propagated through
// registers, the store buffer, the pre-execute cache and page-table entries
// so that nothing dependent on the faulting (bogus) data is trusted.
//
// The observable effect — and the whole point — is cache warming: valid
// pre-executed loads and stores pull their lines into the CPU cache, so
// when real execution resumes after the I/O it hits where it would have
// missed. Pre-execute stores never touch real memory or the real cache
// hierarchy's data; they live in the store buffer and pre-execute cache
// only.
package preexec

import (
	"itsim/internal/cpu"
	"itsim/internal/sim"
	"itsim/internal/trace"
)

// Env is the machine state the engine consults, expressed as callbacks so
// the engine stays independent of the machine's internals (and trivially
// testable).
type Env struct {
	// Lookahead returns the i-th upcoming record after the faulting one
	// (0-based) without consuming it, or false past the end of the
	// available window.
	Lookahead func(i int) (trace.Record, bool)
	// PagePresent reports whether the page holding va is resident in
	// DRAM (false ⇒ the data is in the storage device ⇒ invalid).
	PagePresent func(va uint64) bool
	// PTEINV reads the INV bit of va's page-table entry.
	PTEINV func(va uint64) bool
	// SetPTEINV sets the INV bit of va's page-table entry.
	SetPTEINV func(va uint64)
	// ClearPTEINV clears the INV bit of va's page-table entry; the
	// state-recovery pass invokes it for every PTE the episode poisoned.
	ClearPTEINV func(va uint64)
	// LLCContains reports line presence without recency update.
	LLCContains func(addr uint64) bool
	// LLCFill installs a line (cache warming) — the engine's useful work.
	LLCFill func(addr uint64)
	// FaultVA is the faulting access's address; its page is by definition
	// not present, and the faulting load's destination register is the
	// initial INV source.
	FaultVA uint64
	// FaultDst is the destination register of the faulting instruction.
	FaultDst uint8
}

// Costs parameterize the engine's timing.
type Costs struct {
	// PerInstruction is the pre-execution cost of one instruction.
	PerInstruction sim.Time
	// CacheProbe is the cost of checking the store buffer / pre-execute
	// cache / LLC for one access.
	CacheProbe sim.Time
	// MemFill is the DRAM latency paid to warm a line into the LLC.
	MemFill sim.Time
}

// DefaultCosts uses the machine model's standard timing (0.5 ns/instruction
// ≈ a 2 GHz core at IPC 1, 2 ns probes, 50 ns DRAM fills).
func DefaultCosts() Costs {
	return Costs{
		PerInstruction: sim.Time(1) / 2, // rounds to 0; see perInst()
		CacheProbe:     2 * sim.Nanosecond,
		MemFill:        50 * sim.Nanosecond,
	}
}

// perInst returns the per-instruction cost in half-nanosecond resolution:
// costs accumulate in picosecond-free integer ns, so we charge 1 ns per two
// instructions.
func (c Costs) perInst(n uint32) sim.Time {
	if c.PerInstruction > 0 {
		return c.PerInstruction * sim.Time(n)
	}
	return sim.Time(n) / 2
}

// Result reports one pre-execution episode.
type Result struct {
	// Used is the busy-wait time consumed (≤ the window given to Run,
	// including checkpoint/restore overhead).
	Used sim.Time
	// Overhead is the state-recovery portion of Used.
	Overhead sim.Time
	// Instrs is the number of records examined (pre-executed or skipped).
	Instrs uint64
	// Valid is the number of records whose access was valid.
	Valid uint64
	// Fills is the number of LLC lines warmed.
	Fills uint64
	// PoisonedPTEs is the number of page-table INV bits set.
	PoisonedPTEs uint64
}

// Engine holds the microarchitectural state pre-execution uses. One engine
// exists per simulated machine (the hardware is shared; its contents are
// flushed between episodes of different processes by the machine).
type Engine struct {
	RF     cpu.RegisterFile
	Shadow cpu.Shadow
	SB     cpu.StoreBuffer
	PXC    *cpu.PreExecCache
	Costs  Costs

	// poisoned accumulates VAs whose PTE INV bit was set during the
	// episode, so Run can clear them at exit (the bit is only meaningful
	// during pre-execution).
	poisoned []uint64
}

// New builds an engine around the given pre-execute cache.
func New(pxc *cpu.PreExecCache) *Engine {
	return &Engine{PXC: pxc, Costs: DefaultCosts()}
}

// Run pre-executes upcoming instructions within the busy-wait window and
// returns the episode report. State recovery at episode end restores the
// register file and clears every PTE INV bit the episode set (via
// env.ClearPTEINV).
func (e *Engine) Run(window sim.Time, env Env) Result {
	var res Result
	overhead := cpu.CheckpointCost + cpu.RestoreCost
	if window <= overhead {
		return res // not worth activating (§3.2: ITS must not impede progress)
	}
	e.RF.Reset()
	e.SB.Reset()
	e.Shadow.Checkpoint(&e.RF, 0, 0)
	// The faulting load's destination holds bogus data: the initial INV.
	e.RF.MarkINV(env.FaultDst)

	budget := window - overhead
	res.Overhead = overhead
	var used sim.Time
	faultPage := env.FaultVA &^ 0xFFF

	for i := 0; ; i++ {
		rec, ok := env.Lookahead(i)
		if !ok {
			break
		}
		cost := e.Costs.perInst(rec.Gap+1) + e.Costs.CacheProbe
		if used+cost > budget {
			break
		}
		used += cost
		res.Instrs++

		srcINV := e.RF.INV(rec.Src)
		page := rec.Addr &^ 0xFFF
		inStorage := page == faultPage || !env.PagePresent(rec.Addr)

		if rec.Kind == trace.Store {
			e.preStore(rec, srcINV, inStorage, env, &res, &used, budget)
		} else {
			e.preLoad(rec, srcINV, inStorage, env, &res, &used, budget)
		}
	}

	// State recovery: drain the store buffer into the pre-execute cache,
	// restore the architectural state, clear the PTE poison.
	e.SB.Drain(func(addr uint64, size uint8, inv bool) {
		e.PXC.Write(addr, size, inv)
	})
	e.Shadow.Restore(&e.RF)
	res.PoisonedPTEs = uint64(len(e.poisoned))
	for _, va := range e.poisoned {
		if env.ClearPTEINV != nil {
			env.ClearPTEINV(va)
		}
	}
	e.poisoned = e.poisoned[:0]

	res.Used = used + overhead
	return res
}

// preStore implements Figure 3a.
func (e *Engine) preStore(rec trace.Record, srcINV, inStorage bool, env Env, res *Result, used *sim.Time, budget sim.Time) {
	inv := srcINV || inStorage
	if inStorage {
		// Step 0: data in storage — allocate a pre-execute cache line
		// and mark the written bytes INV; also poison the PTE.
		e.PXC.Write(rec.Addr, rec.Size, true)
		e.poison(rec.Addr, env)
		e.SB.Insert(rec.Addr, rec.Size, true, e.retire)
		return
	}
	// Step 1: data in DRAM or cache — the store is valid unless its source
	// register is poisoned; result goes to the store buffer with its INV
	// status.
	e.SB.Insert(rec.Addr, rec.Size, inv, e.retire)
	if inv {
		e.poison(rec.Addr, env)
		return
	}
	res.Valid++
	// Step 2: in memory but not in cache — fetch the line (warming).
	if !env.LLCContains(rec.Addr) && *used+e.Costs.MemFill <= budget {
		env.LLCFill(rec.Addr)
		*used += e.Costs.MemFill
		res.Fills++
	}
}

// preLoad implements Figure 3b.
func (e *Engine) preLoad(rec trace.Record, srcINV, inStorage bool, env Env, res *Result, used *sim.Time, budget sim.Time) {
	if srcINV || inStorage {
		// Step 0: address depends on bogus data, or data in storage.
		e.RF.MarkINV(rec.Dst)
		return
	}
	// Steps 1–2: forwarded from the store buffer or pre-execute cache.
	if found, inv := e.SB.Lookup(rec.Addr, rec.Size); found {
		if inv {
			e.RF.MarkINV(rec.Dst)
		} else {
			e.RF.ClearINV(rec.Dst)
			res.Valid++
		}
		return
	}
	if present, inv := e.PXC.Read(rec.Addr, rec.Size); present {
		if inv {
			e.RF.MarkINV(rec.Dst)
		} else {
			e.RF.ClearINV(rec.Dst)
			res.Valid++
		}
		return
	}
	// Step 3: in the CPU's main cache — trust it unless the PTE says the
	// page holds bogus data.
	if env.LLCContains(rec.Addr) {
		if env.PTEINV(rec.Addr) {
			e.RF.MarkINV(rec.Dst)
			return
		}
		e.RF.ClearINV(rec.Dst)
		res.Valid++
		return
	}
	// Step 4: only in memory — valid; move it into the cache (warming).
	if env.PTEINV(rec.Addr) {
		e.RF.MarkINV(rec.Dst)
		return
	}
	e.RF.ClearINV(rec.Dst)
	res.Valid++
	if *used+e.Costs.MemFill <= budget {
		env.LLCFill(rec.Addr)
		*used += e.Costs.MemFill
		res.Fills++
	}
}

func (e *Engine) retire(addr uint64, size uint8, inv bool) {
	e.PXC.Write(addr, size, inv)
}

func (e *Engine) poison(va uint64, env Env) {
	if env.SetPTEINV != nil {
		env.SetPTEINV(va)
	}
	e.poisoned = append(e.poisoned, va)
}

// FlushHardware clears the pre-execute cache (e.g. when the machine
// switches which process owns the core, the stale pre-execute contents are
// meaningless).
func (e *Engine) FlushHardware() {
	e.PXC.Flush()
	e.SB.Reset()
	e.RF.Reset()
}
