// Package prefetch implements the two page prefetchers of the evaluation:
//
//   - the ITS virtual-address-based prefetcher (§3.4.1), which walks the
//     4-level page table starting right after the victim page, skipping
//     already-present pages, hopping to the next PMD's page table when a PT
//     is exhausted, and collecting up to n swapped-out candidates; and
//   - the baseline "page-on-page" prefetcher of Sync_Prefetch ([17] in the
//     paper), which statically groups pages with contiguous page ids into a
//     fixed-size aligned unit and fetches the whole unit on a fault.
//
// Both return candidate page addresses; issuing the DMA is the policy
// layer's job (internal/policy), so the prefetchers stay pure and testable.
package prefetch

import (
	"itsim/internal/pagetable"
	"itsim/internal/sim"
)

// Cost model for the ITS prefetcher's page-table walk. Each table touched
// is a memory read (the tables themselves live in DRAM); scanning PTEs
// within a cached table is much cheaper.
const (
	// TableAccessCost is charged per distinct page table touched.
	TableAccessCost = 50 * sim.Nanosecond
	// EntryScanCost is charged per PTE examined.
	EntryScanCost = 2 * sim.Nanosecond
)

// DefaultDegree is the ITS prefetch degree n (candidates per fault).
const DefaultDegree = 8

// DefaultMaxScan bounds how many PTEs the walker examines looking for
// candidates before giving up (a victim page at the end of a mostly-present
// region must not walk the whole address space).
const DefaultMaxScan = 4 * pagetable.EntriesPerTable

// Result is a prefetcher decision.
type Result struct {
	// Pages are the page-aligned virtual addresses to swap in.
	Pages []uint64
	// WalkCost is the CPU time the candidate search consumed (charged
	// against the busy-wait window for ITS).
	WalkCost sim.Time
	// Scanned is the number of PTEs examined.
	Scanned int
}

// VAWalker is the ITS §3.4.1 prefetcher.
type VAWalker struct {
	// Degree is the number of candidate pages to gather (n).
	Degree int
	// MaxScan bounds the PTEs examined per invocation.
	MaxScan int

	// buf backs Result.Pages across invocations. The caller consumes the
	// result before the next Candidates call (the policy layer issues the
	// prefetch DMAs inside the same fault), so reuse is safe and keeps the
	// fault path allocation-free.
	buf []uint64
}

// NewVAWalker returns a walker with the default degree and scan bound.
func NewVAWalker() *VAWalker {
	return &VAWalker{Degree: DefaultDegree, MaxScan: DefaultMaxScan}
}

// Candidates walks as from the page following victimVA, gathering up to
// Degree swapped-out pages. Present pages are skipped (their data is already
// in DRAM); unmapped holes terminate the contiguous region but the walk
// continues into the next mapped table, mirroring the paper's next-PMD hop.
func (w *VAWalker) Candidates(as *pagetable.AddressSpace, victimVA uint64) Result {
	degree := w.Degree
	if degree <= 0 {
		degree = DefaultDegree
	}
	maxScan := w.MaxScan
	if maxScan <= 0 {
		maxScan = DefaultMaxScan
	}
	start := (victimVA &^ uint64(pagetable.PageSize-1)) + pagetable.PageSize
	res := Result{Pages: w.buf[:0]}
	visited, tables := as.VisitFrom(start, maxScan, func(s pagetable.WalkStep) bool {
		if s.PTE.Swapped() {
			res.Pages = append(res.Pages, s.VA)
		}
		return len(res.Pages) < degree
	})
	w.buf = res.Pages[:0]
	res.Scanned = visited
	res.WalkCost = sim.Time(tables)*TableAccessCost + sim.Time(visited)*EntryScanCost
	return res
}

// PageOnPage is the Sync_Prefetch baseline: a static group of GroupPages
// pages with contiguous page ids, aligned to the group size, fetched as a
// unit when any member faults.
type PageOnPage struct {
	// GroupPages is the unit size in pages.
	GroupPages int

	// buf backs Result.Pages across invocations; same contract as
	// VAWalker.buf (result consumed before the next call).
	buf []uint64
}

// DefaultGroupPages matches the ITS prefetch degree so the two prefetchers
// move comparable volume per fault.
const DefaultGroupPages = 8

// NewPageOnPage returns the baseline prefetcher with the default unit size.
func NewPageOnPage() *PageOnPage {
	return &PageOnPage{GroupPages: DefaultGroupPages}
}

// Candidates returns the swapped-out members of victimVA's aligned group,
// excluding the victim itself (the fault handler already fetches it).
func (p *PageOnPage) Candidates(as *pagetable.AddressSpace, victimVA uint64) Result {
	group := p.GroupPages
	if group <= 0 {
		group = DefaultGroupPages
	}
	unit := uint64(group) * pagetable.PageSize
	base := victimVA &^ (unit - 1)
	victimPage := victimVA &^ uint64(pagetable.PageSize-1)
	res := Result{Pages: p.buf[:0]}
	for va := base; va < base+unit; va += pagetable.PageSize {
		res.Scanned++
		if va == victimPage {
			continue
		}
		pte, ok := as.Lookup(va)
		if ok && pte.Swapped() {
			res.Pages = append(res.Pages, va)
		}
	}
	p.buf = res.Pages[:0]
	// The group lookup is a handful of PTE reads within one table.
	res.WalkCost = TableAccessCost + sim.Time(res.Scanned)*EntryScanCost
	return res
}
