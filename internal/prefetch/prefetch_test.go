package prefetch

import (
	"testing"

	"itsim/internal/pagetable"
)

const page = pagetable.PageSize

// space maps pages [start, start+n) as swapped, then makes `present` of them
// resident.
func space(start uint64, n int, present map[int]bool) *pagetable.AddressSpace {
	as := pagetable.New()
	for i := 0; i < n; i++ {
		va := start + uint64(i)*page
		as.MapSwapped(va, uint64(i))
		if present[i] {
			as.MakePresent(va, uint64(1000+i))
		}
	}
	return as
}

func TestVAWalkerBasic(t *testing.T) {
	as := space(0x10000, 20, nil)
	w := NewVAWalker()
	res := w.Candidates(as, 0x10000)
	if len(res.Pages) != DefaultDegree {
		t.Fatalf("got %d candidates, want %d", len(res.Pages), DefaultDegree)
	}
	for i, va := range res.Pages {
		want := uint64(0x10000) + uint64(i+1)*page
		if va != want {
			t.Fatalf("candidate %d = %#x, want %#x", i, va, want)
		}
	}
	if res.WalkCost <= 0 || res.Scanned < DefaultDegree {
		t.Fatalf("cost=%v scanned=%d", res.WalkCost, res.Scanned)
	}
}

func TestVAWalkerSkipsPresent(t *testing.T) {
	// Pages 1,2,3 resident: the walker must return 4,5,... (§3.4.1: "To
	// prevent prefetching pages already present in DRAM").
	as := space(0x10000, 20, map[int]bool{1: true, 2: true, 3: true})
	w := &VAWalker{Degree: 4}
	res := w.Candidates(as, 0x10000)
	if len(res.Pages) != 4 {
		t.Fatalf("got %d candidates", len(res.Pages))
	}
	for i, va := range res.Pages {
		want := uint64(0x10000) + uint64(i+4)*page
		if va != want {
			t.Fatalf("candidate %d = %#x, want %#x", i, va, want)
		}
	}
}

func TestVAWalkerExcludesVictim(t *testing.T) {
	as := space(0x10000, 10, nil)
	res := NewVAWalker().Candidates(as, 0x10000+500) // mid-page victim
	for _, va := range res.Pages {
		if va == 0x10000 {
			t.Fatal("victim page returned as candidate")
		}
	}
}

func TestVAWalkerBoundedScan(t *testing.T) {
	// Nothing mapped after the victim: the walk must stop at MaxScan.
	as := space(0x10000, 1, nil)
	w := &VAWalker{Degree: 8, MaxScan: 100}
	res := w.Candidates(as, 0x10000)
	if len(res.Pages) != 0 {
		t.Fatalf("found %d candidates in empty space", len(res.Pages))
	}
	if res.Scanned > 100 {
		t.Fatalf("scanned %d > MaxScan 100", res.Scanned)
	}
}

func TestVAWalkerCrossesIntoNextTable(t *testing.T) {
	// Victim at the end of a PT (2 MiB region); candidates live in the
	// next table — the paper's "traverse the next PMD entry" case.
	boundary := uint64(2 << 20)
	as := pagetable.New()
	as.MapSwapped(boundary-page, 0)
	for i := uint64(0); i < 4; i++ {
		as.MapSwapped(boundary+i*page, i+1)
	}
	w := &VAWalker{Degree: 4}
	res := w.Candidates(as, boundary-page)
	if len(res.Pages) != 4 {
		t.Fatalf("got %d candidates across PT boundary", len(res.Pages))
	}
	if res.Pages[0] != boundary {
		t.Fatalf("first candidate %#x, want %#x", res.Pages[0], boundary)
	}
}

func TestVAWalkerDefaultsOnZeroFields(t *testing.T) {
	as := space(0, 20, nil)
	w := &VAWalker{} // zero Degree/MaxScan must fall back to defaults
	res := w.Candidates(as, 0)
	if len(res.Pages) != DefaultDegree {
		t.Fatalf("got %d, want default degree %d", len(res.Pages), DefaultDegree)
	}
}

func TestPageOnPageGroup(t *testing.T) {
	as := space(0, 32, nil)
	p := NewPageOnPage()
	// Victim in the middle of the second aligned group of 8.
	victim := uint64(11 * page)
	res := p.Candidates(as, victim)
	if len(res.Pages) != 7 {
		t.Fatalf("got %d candidates, want 7 (group minus victim)", len(res.Pages))
	}
	lo, hi := uint64(8*page), uint64(16*page)
	for _, va := range res.Pages {
		if va < lo || va >= hi {
			t.Fatalf("candidate %#x outside aligned group [%#x,%#x)", va, lo, hi)
		}
		if va == victim&^uint64(page-1) {
			t.Fatal("victim included")
		}
	}
}

func TestPageOnPageSkipsResidentMembers(t *testing.T) {
	as := space(0, 8, map[int]bool{0: true, 1: true, 2: true})
	p := &PageOnPage{GroupPages: 8}
	res := p.Candidates(as, 3*page)
	if len(res.Pages) != 4 { // pages 4..7
		t.Fatalf("got %d candidates, want 4", len(res.Pages))
	}
}

func TestPageOnPageUnmappedHole(t *testing.T) {
	// Group contains unmapped pages: they are not candidates.
	as := pagetable.New()
	as.MapSwapped(0, 0)
	as.MapSwapped(page, 1)
	p := &PageOnPage{GroupPages: 8}
	res := p.Candidates(as, 0)
	if len(res.Pages) != 1 || res.Pages[0] != page {
		t.Fatalf("candidates = %#v", res.Pages)
	}
}

func TestPageOnPageDefaultGroup(t *testing.T) {
	as := space(0, 16, nil)
	p := &PageOnPage{}
	res := p.Candidates(as, 0)
	if res.Scanned != DefaultGroupPages {
		t.Fatalf("scanned %d, want default group %d", res.Scanned, DefaultGroupPages)
	}
}
