package policy

import (
	"fmt"

	"itsim/internal/sim"
)

// SpinBlock is the classic hybrid-polling baseline the kernel community
// ships today (e.g. NVMe hybrid polling): busy-wait for up to a fixed
// threshold, and fall back to blocking asynchronously if the I/O has not
// completed by then. It is not one of the paper's five compared policies,
// but it is the natural yardstick between pure Sync and pure Async, and the
// repository includes it as an extension baseline.
//
// The machine honours Decision.SpinThreshold: if the DMA completes within
// the threshold the fault behaves like Sync; otherwise the process blocks
// (having already burned the threshold busy-waiting).
type SpinBlock struct {
	// Threshold is the maximum busy-wait before blocking. The classic
	// setting is around the cost of a context switch: spinning longer
	// than a switch can never win.
	Threshold sim.Time
}

// DefaultSpinThreshold spins for one context-switch cost (7 µs) before
// giving up — the break-even setting.
const DefaultSpinThreshold = 7 * sim.Microsecond

// NewSpinBlock builds the hybrid policy; threshold ≤ 0 selects the default.
func NewSpinBlock(threshold sim.Time) *SpinBlock {
	if threshold <= 0 {
		threshold = DefaultSpinThreshold
	}
	return &SpinBlock{Threshold: threshold}
}

// Kind implements Policy. SpinBlock reports the Sync kind's cache geometry
// behaviour (no pre-execute cache carve-out) but a distinct name.
func (*SpinBlock) Kind() Kind { return Sync }

// Name implements Policy.
func (s *SpinBlock) Name() string {
	return fmt.Sprintf("Spin_Block_%v", s.Threshold)
}

// Decide implements Policy: spin up to Threshold, then block.
func (s *SpinBlock) Decide(*Context) Decision {
	return Decision{Mode: SyncWait, SpinThreshold: s.Threshold}
}
