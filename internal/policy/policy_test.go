package policy

import (
	"testing"

	"itsim/internal/pagetable"
	"itsim/internal/sim"
)

func swappedSpace(pages int) *pagetable.AddressSpace {
	as := pagetable.New()
	for i := 0; i < pages; i++ {
		as.MapSwapped(uint64(i)*pagetable.PageSize, uint64(i))
	}
	return as
}

func ctx(as *pagetable.AddressSpace, cur, next int, hasNext bool) *Context {
	return &Context{
		PID: 1, VA: 0,
		AS:           as,
		CurPriority:  cur,
		NextPriority: next,
		HasNext:      hasNext,
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Async:        "Async",
		Sync:         "Sync",
		SyncRunahead: "Sync_Runahead",
		SyncPrefetch: "Sync_Prefetch",
		ITS:          "ITS",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
		back, err := KindByName(s)
		if err != nil || back != k {
			t.Errorf("KindByName(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Fatal("bogus policy name accepted")
	}
}

func TestKindsOrderAndCount(t *testing.T) {
	ks := Kinds()
	if len(ks) != 5 {
		t.Fatalf("Kinds() has %d entries", len(ks))
	}
	if ks[0] != Async || ks[4] != ITS {
		t.Fatalf("Kinds order wrong: %v", ks)
	}
}

func TestNeedsPreExecCache(t *testing.T) {
	if Async.NeedsPreExecCache() || Sync.NeedsPreExecCache() || SyncPrefetch.NeedsPreExecCache() {
		t.Fatal("non-runahead policy wants a pre-execute cache")
	}
	if !SyncRunahead.NeedsPreExecCache() || !ITS.NeedsPreExecCache() {
		t.Fatal("runahead policies must halve the LLC")
	}
}

func TestAsyncDecision(t *testing.T) {
	p := New(Async)
	d := p.Decide(ctx(swappedSpace(4), 1, 2, true))
	if d.Mode != AsyncBlock || d.PreExecute || len(d.Prefetch) != 0 {
		t.Fatalf("Async decision: %+v", d)
	}
}

func TestSyncDecision(t *testing.T) {
	d := New(Sync).Decide(ctx(swappedSpace(4), 1, 2, true))
	if d.Mode != SyncWait || d.PreExecute || len(d.Prefetch) != 0 {
		t.Fatalf("Sync decision: %+v", d)
	}
}

func TestRunaheadDecision(t *testing.T) {
	d := New(SyncRunahead).Decide(ctx(swappedSpace(4), 1, 2, true))
	if d.Mode != SyncWait || !d.PreExecute || len(d.Prefetch) != 0 {
		t.Fatalf("Runahead decision: %+v", d)
	}
}

func TestPrefetchDecision(t *testing.T) {
	d := New(SyncPrefetch).Decide(ctx(swappedSpace(16), 1, 2, true))
	if d.Mode != SyncWait || d.PreExecute {
		t.Fatalf("Prefetch decision: %+v", d)
	}
	if len(d.Prefetch) == 0 || d.PrefetchWalkCost <= 0 {
		t.Fatalf("page-on-page produced no candidates: %+v", d)
	}
}

func TestITSHighPriority(t *testing.T) {
	p := New(ITS)
	// Current priority above next-to-run: self-improving thread.
	d := p.Decide(ctx(swappedSpace(32), 5, 2, true))
	if d.Mode != SyncWait || !d.PreExecute || d.SelfSacrificing {
		t.Fatalf("high-priority decision: %+v", d)
	}
	if len(d.Prefetch) == 0 {
		t.Fatal("self-improving thread did not prefetch")
	}
	if d.DispatchCost <= 0 {
		t.Fatal("ITS thread dispatch cost missing")
	}
}

func TestITSLowPriority(t *testing.T) {
	p := New(ITS)
	d := p.Decide(ctx(swappedSpace(32), 2, 5, true))
	if d.Mode != AsyncBlock || !d.SelfSacrificing {
		t.Fatalf("low-priority decision: %+v", d)
	}
	// The self-sacrificing thread still initiates prefetch.
	if len(d.Prefetch) == 0 {
		t.Fatal("sacrificed fault lost prefetching")
	}
	if d.PrefetchWalkCost != 0 {
		t.Fatal("async prefetch walk must not consume a busy-wait window")
	}
}

func TestITSEqualPriorityIsHighPriority(t *testing.T) {
	// "lower than the next-to-be-run" — equal is NOT lower.
	d := New(ITS).Decide(ctx(swappedSpace(8), 3, 3, true))
	if d.Mode != SyncWait {
		t.Fatalf("equal priority treated as low: %+v", d)
	}
}

func TestITSNoNextProcess(t *testing.T) {
	// With nothing else runnable there is no one to yield to.
	d := New(ITS).Decide(ctx(swappedSpace(8), 1, 0, false))
	if d.Mode != SyncWait {
		t.Fatalf("lone process sacrificed itself: %+v", d)
	}
}

func TestITSAblations(t *testing.T) {
	as := swappedSpace(32)
	noSac := NewITS(ITSConfig{DisableSelfSacrificing: true})
	if d := noSac.Decide(ctx(as, 1, 5, true)); d.Mode != SyncWait {
		t.Fatalf("DisableSelfSacrificing ignored: %+v", d)
	}
	noPf := NewITS(ITSConfig{DisablePrefetch: true})
	if d := noPf.Decide(ctx(as, 5, 1, true)); len(d.Prefetch) != 0 {
		t.Fatalf("DisablePrefetch ignored: %+v", d)
	}
	noPx := NewITS(ITSConfig{DisablePreExecute: true})
	if d := noPx.Decide(ctx(as, 5, 1, true)); d.PreExecute {
		t.Fatalf("DisablePreExecute ignored: %+v", d)
	}
}

func TestITSPrefetchDegreeConfig(t *testing.T) {
	p := NewITS(ITSConfig{PrefetchDegree: 3})
	d := p.Decide(ctx(swappedSpace(32), 5, 1, true))
	if len(d.Prefetch) != 3 {
		t.Fatalf("degree 3 produced %d candidates", len(d.Prefetch))
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind accepted")
		}
	}()
	New(Kind(99))
}

func TestModeString(t *testing.T) {
	if SyncWait.String() != "sync" || AsyncBlock.String() != "async" {
		t.Fatal("Mode strings wrong")
	}
}

func TestSpinBlockDecision(t *testing.T) {
	s := NewSpinBlock(0)
	if s.Threshold != DefaultSpinThreshold {
		t.Fatalf("default threshold %v", s.Threshold)
	}
	d := s.Decide(ctx(swappedSpace(4), 1, 2, true))
	if d.Mode != SyncWait || d.SpinThreshold != DefaultSpinThreshold {
		t.Fatalf("decision %+v", d)
	}
	if s.Name() != "Spin_Block_7.000µs" {
		t.Fatalf("name %q", s.Name())
	}
	custom := NewSpinBlock(2 * sim.Microsecond)
	if custom.Decide(nil).SpinThreshold != 2*sim.Microsecond {
		t.Fatal("custom threshold ignored")
	}
}

func TestPolicyKindAndNameAccessors(t *testing.T) {
	for _, k := range Kinds() {
		p := New(k)
		if p.Kind() != k {
			t.Fatalf("New(%v).Kind() = %v", k, p.Kind())
		}
		if p.Name() != k.String() {
			t.Fatalf("New(%v).Name() = %q", k, p.Name())
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Fatalf("unknown kind String = %q", got)
	}
	sb := NewSpinBlock(0)
	if sb.Kind() != Sync {
		t.Fatalf("SpinBlock.Kind() = %v (must not carve a pre-execute cache)", sb.Kind())
	}
}

func TestITSMaxScanConfig(t *testing.T) {
	// A tiny MaxScan bounds the walk: with candidates far away none are
	// found.
	as := pagetable.New()
	as.MapSwapped(0, 0)
	for i := 0; i < 8; i++ {
		as.MapSwapped(uint64(1000+i)*pagetable.PageSize, uint64(i))
	}
	p := NewITS(ITSConfig{MaxScan: 10})
	d := p.Decide(ctx(as, 5, 1, true))
	if len(d.Prefetch) != 0 {
		t.Fatalf("MaxScan 10 found %d candidates 1000 pages away", len(d.Prefetch))
	}
}
