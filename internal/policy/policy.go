// Package policy implements the five I/O-mode policies compared in the
// paper's evaluation (§4.1):
//
//	Async         — traditional asynchronous I/O: every major fault context
//	                switches away and the process blocks until DMA completes.
//	Sync          — the Intel/IBM-advocated synchronous mode: busy-wait for
//	                the ULL device on every major fault.
//	Sync_Runahead — synchronous, with classic runahead pre-execution during
//	                the wait ([5,10,11]; triggered on page faults here, as
//	                the paper adapts it).
//	Sync_Prefetch — synchronous, with page-on-page group prefetching ([17]).
//	ITS           — the paper's contribution: priority-aware thread
//	                selection (§3.2) dispatching the self-sacrificing thread
//	                (async, §3.3) for low-priority processes and the
//	                self-improving thread (page-table-walk prefetch +
//	                fault-aware pre-execution, §3.4) for high-priority ones.
//
// A policy is consulted once per major fault and returns a Decision; the
// machine executes it. Policies are stateless apart from their embedded
// prefetchers, so one instance serves a whole run.
package policy

import (
	"fmt"

	"itsim/internal/kernel"
	"itsim/internal/pagetable"
	"itsim/internal/prefetch"
	"itsim/internal/sim"
)

// Kind enumerates the five policies.
type Kind int

// Policy kinds, in the paper's presentation order.
const (
	Async Kind = iota
	Sync
	SyncRunahead
	SyncPrefetch
	ITS
)

// Kinds returns all five policy kinds in presentation order.
func Kinds() []Kind { return []Kind{Async, Sync, SyncRunahead, SyncPrefetch, ITS} }

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case Async:
		return "Async"
	case Sync:
		return "Sync"
	case SyncRunahead:
		return "Sync_Runahead"
	case SyncPrefetch:
		return "Sync_Prefetch"
	case ITS:
		return "ITS"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindByName parses a policy name (as printed by String).
func KindByName(name string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q", name)
}

// NeedsPreExecCache reports whether the machine must carve half the LLC out
// as the pre-execute cache for this policy (paper §4.1).
func (k Kind) NeedsPreExecCache() bool { return k == SyncRunahead || k == ITS }

// Mode is what the faulting process does while the page is in flight.
type Mode uint8

// Fault-handling modes.
const (
	// SyncWait busy-waits on the CPU until DMA completion.
	SyncWait Mode = iota
	// AsyncBlock context-switches away and blocks until completion.
	AsyncBlock
)

// String names the mode.
func (m Mode) String() string {
	if m == AsyncBlock {
		return "async"
	}
	return "sync"
}

// Context is the fault information a policy sees.
type Context struct {
	// Now is the fault time.
	Now sim.Time
	// PID and VA identify the faulting access.
	PID int
	VA  uint64
	// AS is the faulting process's address space (for prefetch walks).
	AS *pagetable.AddressSpace
	// CurPriority is the faulting process's priority (larger = higher).
	CurPriority int
	// NextPriority is the next-to-be-run process's priority; valid only
	// when HasNext. This is the §3.2 comparison input.
	NextPriority int
	HasNext      bool
	// BusyChannels / Channels is the storage device's channel occupancy
	// at fault time — the busy_storage_channels gauge fed back into the
	// decision so adaptive policies can throttle prefetch when the
	// device saturates.
	BusyChannels int
	Channels     int
}

// Decision is what the machine executes for one major fault.
type Decision struct {
	// Mode selects busy-wait or block.
	Mode Mode
	// Prefetch lists page VAs to swap in alongside the victim.
	Prefetch []uint64
	// PrefetchWalkCost is CPU time consumed finding the candidates; for
	// sync modes it is carved out of the busy-wait window.
	PrefetchWalkCost sim.Time
	// PrefetchScanned is how many PTEs the candidate walk examined
	// (observability: EvPrefetchWalk's Value).
	PrefetchScanned int
	// PreExecute enables the fault-aware pre-execute engine for the
	// remainder of the busy-wait window.
	PreExecute bool
	// DispatchCost is the kernel-thread hand-off overhead (ITS only).
	DispatchCost sim.Time
	// SpinThreshold, when positive with Mode == SyncWait, bounds the
	// busy-wait: if the I/O has not completed within the threshold the
	// process blocks for the remainder (hybrid polling).
	SpinThreshold sim.Time
	// SelfSacrificing marks an ITS low-priority async decision (metrics).
	SelfSacrificing bool
	// PrefetchThrottled marks a prefetch walk skipped because the
	// device's channel occupancy saturated (observability: the machine
	// counts it and emits EvPrefetchThrottle).
	PrefetchThrottled bool
}

// Policy decides how each major fault is handled.
type Policy interface {
	Kind() Kind
	Name() string
	Decide(ctx *Context) Decision
}

// New constructs the policy for kind with default parameters.
func New(kind Kind) Policy {
	switch kind {
	case Async:
		return asyncPolicy{}
	case Sync:
		return syncPolicy{}
	case SyncRunahead:
		return runaheadPolicy{}
	case SyncPrefetch:
		return &prefetchPolicy{pf: prefetch.NewPageOnPage()}
	case ITS:
		return NewITS(ITSConfig{})
	default:
		panic(fmt.Sprintf("policy: unknown kind %d", kind))
	}
}

type asyncPolicy struct{}

func (asyncPolicy) Kind() Kind   { return Async }
func (asyncPolicy) Name() string { return Async.String() }
func (asyncPolicy) Decide(*Context) Decision {
	return Decision{Mode: AsyncBlock}
}

type syncPolicy struct{}

func (syncPolicy) Kind() Kind   { return Sync }
func (syncPolicy) Name() string { return Sync.String() }
func (syncPolicy) Decide(*Context) Decision {
	return Decision{Mode: SyncWait}
}

type runaheadPolicy struct{}

func (runaheadPolicy) Kind() Kind   { return SyncRunahead }
func (runaheadPolicy) Name() string { return SyncRunahead.String() }
func (runaheadPolicy) Decide(*Context) Decision {
	return Decision{Mode: SyncWait, PreExecute: true}
}

type prefetchPolicy struct {
	pf *prefetch.PageOnPage
}

func (*prefetchPolicy) Kind() Kind   { return SyncPrefetch }
func (*prefetchPolicy) Name() string { return SyncPrefetch.String() }
func (p *prefetchPolicy) Decide(ctx *Context) Decision {
	res := p.pf.Candidates(ctx.AS, ctx.VA)
	return Decision{
		Mode:             SyncWait,
		Prefetch:         res.Pages,
		PrefetchWalkCost: res.WalkCost,
		PrefetchScanned:  res.Scanned,
	}
}

// ITSConfig tunes the ITS policy. Zero values select the paper defaults.
type ITSConfig struct {
	// PrefetchDegree is the self-improving thread's candidate count n.
	PrefetchDegree int
	// MaxScan bounds the page-table walk per fault.
	MaxScan int
	// DisableSelfSacrificing turns off §3.3 (ablation).
	DisableSelfSacrificing bool
	// DisablePreExecute turns off §3.4.2 (ablation).
	DisablePreExecute bool
	// DisablePrefetch turns off §3.4.1 (ablation).
	DisablePrefetch bool
	// PrefetchThrottleFraction, in (0, 1], makes the prefetcher
	// self-throttling: when at least this fraction of the device's
	// channels is busy at fault time, the candidate walk is skipped
	// entirely — the device has no spare parallelism for prefetch to
	// ride, so the walk would only burn window time and drop its
	// candidates at admission control. 0 disables throttling (the
	// historical behaviour).
	PrefetchThrottleFraction float64
}

// ITSPolicy is the paper's design. See package comment.
type ITSPolicy struct {
	cfg    ITSConfig
	walker *prefetch.VAWalker
}

// NewITS builds the ITS policy.
func NewITS(cfg ITSConfig) *ITSPolicy {
	w := prefetch.NewVAWalker()
	if cfg.PrefetchDegree > 0 {
		w.Degree = cfg.PrefetchDegree
	}
	if cfg.MaxScan > 0 {
		w.MaxScan = cfg.MaxScan
	}
	return &ITSPolicy{cfg: cfg, walker: w}
}

// Kind implements Policy.
func (*ITSPolicy) Kind() Kind { return ITS }

// Name implements Policy.
func (*ITSPolicy) Name() string { return ITS.String() }

// Decide implements the priority-aware thread selection policy (§3.2): the
// faulting process is low-priority iff its priority value is lower than the
// next-to-be-run process's; low-priority faults go to the self-sacrificing
// thread (async), high-priority ones to the self-improving thread
// (sync + prefetch + pre-execute).
func (p *ITSPolicy) Decide(ctx *Context) Decision {
	lowPriority := ctx.HasNext && ctx.CurPriority < ctx.NextPriority
	if lowPriority && !p.cfg.DisableSelfSacrificing {
		d := Decision{
			Mode:            AsyncBlock,
			DispatchCost:    kernel.ITSDispatchCost,
			SelfSacrificing: true,
		}
		// The self-sacrificing kernel thread still initiates the page
		// prefetch alongside the asynchronous I/O it marks (the fault
		// savings of §4.2.1 stack: ITS "not only" prefetches, it
		// "also" sacrifices) — the walk runs in kernel context while
		// the process is being switched out, so no busy-wait window is
		// consumed.
		if !p.cfg.DisablePrefetch {
			if p.throttled(ctx) {
				d.PrefetchThrottled = true
			} else {
				res := p.walker.Candidates(ctx.AS, ctx.VA)
				d.Prefetch = res.Pages
			}
		}
		return d
	}
	d := Decision{
		Mode:         SyncWait,
		PreExecute:   !p.cfg.DisablePreExecute,
		DispatchCost: kernel.ITSDispatchCost,
	}
	if !p.cfg.DisablePrefetch {
		if p.throttled(ctx) {
			d.PrefetchThrottled = true
		} else {
			res := p.walker.Candidates(ctx.AS, ctx.VA)
			d.Prefetch = res.Pages
			d.PrefetchWalkCost = res.WalkCost
			d.PrefetchScanned = res.Scanned
		}
	}
	return d
}

// throttled is the §3.4.1 admission-control feedback loop closed at the
// policy layer: when the busy_storage_channels signal says the device has
// (almost) no idle channels, the walk's candidates would be dropped at
// device admission anyway, so ITS skips the walk and keeps the window
// time for pre-execution instead.
func (p *ITSPolicy) throttled(ctx *Context) bool {
	f := p.cfg.PrefetchThrottleFraction
	return f > 0 && ctx.Channels > 0 &&
		float64(ctx.BusyChannels) >= f*float64(ctx.Channels)
}
