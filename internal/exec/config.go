// Package exec is the shared core-execution engine: the per-record executor
// that both the single-core machine (internal/machine) and the multi-core
// SMP model (internal/smp) instantiate. One implementation of dispatch,
// record peek/pop/advance, cache access with inclusive LLC fill, swap-in
// management, prefetching, the major-fault flow of the paper's Figure 1, and
// fault-aware pre-execution — parameterized over core-local state (engine/
// clock, L1, TLB, runqueue, policy instance, pre-execute carve-out, metrics
// sink) with the shared LLC/kernel/swap/ULL state behind it.
//
// A Core is one simulated CPU; a Shared is everything the cores contend on.
// The single-core machine is a Shared with one Core driven by a plain run
// loop; the SMP model is a Shared with N Cores driven by a bounded-skew
// coordinator. Both produce byte-identical output for the same inputs at
// N=1 because they run the same code.
package exec

import (
	"fmt"

	"itsim/internal/bus"
	"itsim/internal/cache"
	"itsim/internal/fault"
	"itsim/internal/mem"
	"itsim/internal/sim"
	"itsim/internal/storage"
	"itsim/internal/trace"
)

// Timing defaults of the simulated core.
const (
	// DefaultL1Hit is the L1 hit latency.
	DefaultL1Hit = 1 * sim.Nanosecond
	// DefaultLLCHit is the LLC hit latency.
	DefaultLLCHit = 12 * sim.Nanosecond
	// DefaultInstPerNs is instructions retired per nanosecond of pure
	// compute (2 ⇒ 0.5 ns per instruction, a 2 GHz core at IPC 1).
	DefaultInstPerNs = 2
	// DefaultLookahead is how many upcoming records the pre-execute
	// engine can see (the effective instruction window during runahead).
	DefaultLookahead = 256
)

// InterruptCost is the DMA completion interrupt's handling cost charged when
// interrupt-driven state recovery ends a pre-execution episode (§3.4.3).
const InterruptCost = 300 * sim.Nanosecond

// Config sizes the simulated platform. The zero value is not usable;
// start from DefaultConfig. (Error messages keep the "machine:" prefix —
// they describe the simulated machine's configuration, which users reach
// through machine.Config.)
type Config struct {
	// Cores is the number of simulated CPU cores. 1 (or 0, for configs
	// built before the field existed) selects the single-core machine;
	// larger values select the internal/smp model, which shares the LLC,
	// kernel and storage path across cores. Validate rejects
	// non-positive values on paths that take user input.
	Cores int
	// LLCSize/LLCWays/LineBytes shape the last-level cache. When the
	// policy needs a pre-execute cache, half of LLCSize goes to it.
	LLCSize   int
	LLCWays   int
	LineBytes int
	// L1Size/L1Ways shape the first-level cache.
	L1Size int
	L1Ways int
	// L1Hit/LLCHit are hit latencies.
	L1Hit  sim.Time
	LLCHit sim.Time
	// InstPerNs converts instruction gaps to time.
	InstPerNs int
	// DRAMFrames fixes physical memory size in frames; when zero,
	// DRAMRatio × (batch footprint pages) is used.
	DRAMFrames int
	// DRAMRatio sizes DRAM relative to the batch's aggregate footprint
	// (the paper tailors DRAM to the working set; contention comes from
	// the sum exceeding capacity).
	DRAMRatio float64
	// Replacement selects the page-replacement policy.
	Replacement mem.ReplacementKind
	// Device parameterizes the ULL SSD.
	Device storage.Config
	// BusLanes/LaneBandwidth parameterize the PCIe link.
	BusLanes      int
	LaneBandwidth int64
	// Lookahead bounds the pre-execute window in records.
	Lookahead int
	// MinSlice/MaxSlice are the SCHED_RR NICE slice bounds. The paper
	// uses 5 ms…800 ms over minutes-long traces; scaled-down traces
	// scale these with the workload so round-robin rotation dynamics are
	// preserved (see core.Options.Scale). Zero selects the paper values.
	MinSlice sim.Time
	MaxSlice sim.Time
	// MaxSimTime aborts runaway simulations (0 = no limit).
	MaxSimTime sim.Time
	// WarmFraction of DRAM is pre-loaded with the processes' working
	// sets (fair shares, hottest pages first) before the run, modelling
	// the paper's steady-state multiprogramming rather than a cold boot.
	// 0 selects the default (0.85); negative disables warm-start.
	WarmFraction float64
	// PreExecCacheFraction is the share of the LLC carved out as the
	// pre-execute cache for Sync_Runahead/ITS (paper §4.1 fixes it at
	// one half). 0 selects 0.5; values are clamped to [0.1, 0.9] and
	// rounded to keep both caches valid set-associative geometries.
	PreExecCacheFraction float64
	// StrictPriority selects true SCHED_RR dispatch semantics (highest
	// priority first) instead of the paper's effective single-queue
	// round-robin with NICE slices. Ablation knob.
	StrictPriority bool
	// TLBEntries enables the TLB model with the given capacity (0 =
	// disabled). When enabled, context switches flush the TLB and every
	// TLB miss pays TLBMissCost — a mechanistic replacement for the
	// fixed SwitchPollutionCost, which is then not charged.
	TLBEntries int
	// TLBMissCost is the page-walk cost of a TLB miss (default 25 ns: a
	// mostly-cached 4-level walk).
	TLBMissCost sim.Time
	// SwapClusterPages selects the swap-in granularity in pages (0 or 1
	// = base 4 KiB pages). Larger values model huge-page-style swapping
	// (paper §1: "larger I/O sizes like huge page management"): a major
	// fault fetches the whole aligned cluster and the faulting process
	// waits for all of it.
	SwapClusterPages int
	// RecoveryPoll selects the state-recovery termination mode of
	// §3.4.3: zero means interrupt-driven (the DMA controller interrupts
	// on I/O completion, costing InterruptCost), a positive duration
	// means a polling timer checks completion every RecoveryPoll — the
	// process resumes only at the next tick after the DMA lands, so
	// polling overshoots by up to one interval.
	RecoveryPoll sim.Time
	// Fault configures deterministic device fault injection (tail
	// spikes, channel stalls, transient DMA failures). The zero value
	// attaches no injector and keeps the device on the historical path.
	Fault fault.Config
	// SpinBudget bounds every otherwise-unbounded synchronous fault wait:
	// when the predicted window exceeds the budget, the wait demotes to
	// an async context switch (graceful degradation under a misbehaving
	// device). 0 disables the budget (the historical behaviour).
	SpinBudget sim.Time
}

// DefaultConfig returns the paper's §4.1 platform.
func DefaultConfig() Config {
	return Config{
		Cores:         1,
		LLCSize:       8 << 20,
		LLCWays:       16,
		LineBytes:     64,
		L1Size:        32 << 10,
		L1Ways:        8,
		L1Hit:         DefaultL1Hit,
		LLCHit:        DefaultLLCHit,
		InstPerNs:     DefaultInstPerNs,
		DRAMRatio:     0.75,
		Replacement:   mem.ReplaceClock,
		Device:        storage.DefaultConfig(),
		BusLanes:      bus.DefaultLanes,
		LaneBandwidth: bus.DefaultLaneBandwidth,
		Lookahead:     DefaultLookahead,
	}
}

// preExecWays returns how many LLC ways the pre-execute carve-out takes in
// total, applying the PreExecCacheFraction defaulting and clamping rules.
func (c Config) preExecWays() int {
	frac := c.PreExecCacheFraction
	if frac <= 0 {
		frac = 0.5
	}
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.9 {
		frac = 0.9
	}
	pxWays := int(frac*float64(c.LLCWays) + 0.5)
	if pxWays < 1 {
		pxWays = 1
	}
	if pxWays >= c.LLCWays {
		pxWays = c.LLCWays - 1
	}
	return pxWays
}

// PreExecPartition splits the LLC's ways between the shared LLC and `cores`
// per-core pre-execute carve-outs. The total carve-out budget is the
// single-core fraction of the ways; each core receives an equal share of at
// least one way, and the shared LLC keeps whatever remains. An error means
// the geometry cannot host one carve-out per core — the validation the
// -cores flag path surfaces to the user.
func (c Config) PreExecPartition(cores int) (pxWaysPerCore, llcWays int, err error) {
	if cores < 1 {
		return 0, 0, fmt.Errorf("machine: non-positive core count %d", cores)
	}
	total := c.preExecWays()
	per := total / cores
	if per < 1 {
		return 0, 0, fmt.Errorf("machine: LLC (%d ways, %d reserved for pre-execute caches) is smaller than one pre-execute carve-out per core across %d cores",
			c.LLCWays, total, cores)
	}
	llcWays = c.LLCWays - per*cores
	if llcWays < 1 {
		return 0, 0, fmt.Errorf("machine: %d cores × %d pre-execute ways leave no LLC ways of %d",
			cores, per, c.LLCWays)
	}
	return per, llcWays, nil
}

// Validate checks the platform configuration, returning errors instead of
// the panics (or silent nonsense) the low-level constructors produce: paths
// that accept user input — the CLIs' -cores flag, core.Options — validate
// before building a machine.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("machine: core count must be positive, got %d", c.Cores)
	}
	if c.LLCWays <= 0 || c.LLCWays&(c.LLCWays-1) != 0 {
		return fmt.Errorf("machine: LLC ways %d is not a power of two", c.LLCWays)
	}
	if c.L1Ways <= 0 || c.L1Ways&(c.L1Ways-1) != 0 {
		return fmt.Errorf("machine: L1 ways %d is not a power of two", c.L1Ways)
	}
	if err := (cache.Config{SizeBytes: c.LLCSize, LineBytes: c.LineBytes, Ways: c.LLCWays}).Validate(); err != nil {
		return fmt.Errorf("machine: LLC geometry: %w", err)
	}
	if err := (cache.Config{SizeBytes: c.L1Size, LineBytes: c.LineBytes, Ways: c.L1Ways}).Validate(); err != nil {
		return fmt.Errorf("machine: L1 geometry: %w", err)
	}
	// Every policy must be runnable on the configured geometry, so the
	// pre-execute carve-out (ITS/Sync_Runahead) must fit even if the run
	// at hand does not use it.
	if _, _, err := c.PreExecPartition(c.Cores); err != nil {
		return err
	}
	if err := c.Device.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if err := c.Fault.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if c.SpinBudget < 0 {
		return fmt.Errorf("machine: spin budget must be >= 0, got %v", c.SpinBudget)
	}
	return nil
}

// ProcessSpec declares one process of a run.
type ProcessSpec struct {
	// Name labels the process (benchmark name).
	Name string
	// Tenant names the serving tenant this process's request belongs to
	// on fleet runs (internal/cluster); empty elsewhere. Carried through
	// to metrics.Process.Tenant so fleet traces attribute per tenant.
	Tenant string
	// Gen supplies the trace.
	Gen trace.Generator
	// Priority is the scheduling priority (larger = higher).
	Priority int
	// BaseVA is where the process image starts; the region
	// [BaseVA, BaseVA+Gen.FootprintBytes()) is mapped into the swap area
	// before the run. Synthetic workloads use workload.BaseVA.
	BaseVA uint64
}
