package exec

import (
	"fmt"

	"itsim/internal/sim"
)

// CheckFolded cross-checks the auditor's per-category folded totals (the
// attribution intervals a trace replay recovers: dispatch spans, context
// switch charges, scheduler-idle spans) against the core's conservation
// ledger at run end. Passing means `observe attribute` output reconciles
// with the metrics summary by construction — zero tolerance, virtual-time
// arithmetic only.
func (c *Core) CheckFolded() error {
	cpu, sw, idle := c.Aud.Folded()
	if c.Met != nil {
		if cpu != c.Met.CPUTime || sw != c.Met.ContextSwitchTime || idle != c.Met.SchedulerIdle {
			return fmt.Errorf("exec: core %d folded intervals (cpu %v, switch %v, idle %v) != ledger (cpu %v, switch %v, idle %v)",
				c.ID, cpu, sw, idle, c.Met.CPUTime, c.Met.ContextSwitchTime, c.Met.SchedulerIdle)
		}
		return nil
	}
	// Legacy single-core ledger: per-process CPU time plus run-level idle.
	// The run-level switch counter excludes the pollution tail the events
	// include, so the switch category is covered only via the grand total
	// (which the auditor's conservation check pins to the makespan).
	var procCPU sim.Time
	for _, p := range c.S.Procs {
		procCPU += p.Met.CPUTime
	}
	if cpu != procCPU {
		return fmt.Errorf("exec: folded CPU occupancy %v != per-process CPU time %v", cpu, procCPU)
	}
	if idle != c.S.Run.SchedulerIdle {
		return fmt.Errorf("exec: folded scheduler idle %v != run ledger %v", idle, c.S.Run.SchedulerIdle)
	}
	return nil
}
