package exec

import (
	"math"

	"itsim/internal/cache"
	"itsim/internal/cpu"
	"itsim/internal/kernel"
	"itsim/internal/mem"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/pagetable"
	"itsim/internal/policy"
	"itsim/internal/preexec"
	"itsim/internal/sched"
	"itsim/internal/sim"
	"itsim/internal/trace"
)

// Never is the no-horizon sentinel: RunUntil(Never) executes without ever
// pausing for a coordinator (the single-core machine's mode).
const Never = sim.Time(math.MaxInt64)

// Core is one simulated CPU: a private virtual clock, L1, optional TLB,
// SCHED_RR runqueue, policy instance and pre-execute carve-out, plus an
// always-on accounting auditor checking per-core time conservation.
type Core struct {
	// S is the shared platform state behind this core.
	S *Shared
	// ID is the core number (0 on the single-core machine).
	ID int
	// Eng is the core's virtual clock and event queue.
	Eng *sim.Engine
	// Sch is the core's runqueue.
	Sch *sched.RR
	// L1 is the core's private first-level cache.
	L1 *cache.Cache
	// TLB is the core's private TLB (nil = TLB model off).
	TLB *cpu.TLB
	// PX is the core's pre-execute engine and carve-out cache (nil when
	// the policy has no pre-execute cache).
	PX *preexec.Engine
	// Pol is this core's policy instance (policies are stateful).
	Pol policy.Policy
	// Aud is the core's always-on accounting auditor.
	Aud *obs.Auditor
	// Met is the per-core metrics ledger; nil on the legacy single-core
	// machine, whose summaries carry no per-core section.
	Met *metrics.Core

	// Cur is the dispatched process; it stays dispatched across horizon
	// pauses so a coordinator hand-off is not a spurious context switch.
	Cur *Proc
	// lastPXPid tracks whose pre-execute state the hardware holds.
	lastPXPid int
	// DispatchedAt is when the current dispatch put its process on the
	// CPU, for occupancy reporting on leave events.
	DispatchedAt sim.Time

	// pctx is the scratch policy context reused across faults, so Decide
	// never forces a heap allocation on the fault path.
	pctx policy.Context
	// pxEnv is the pre-execute environment built once per core: its
	// callbacks close over the core and read pxP/pxAS, set per episode.
	// Without this, every synchronous fault allocated eight closures.
	pxEnv  preexec.Env
	pxInit bool
	pxP    *Proc
	pxAS   *pagetable.AddressSpace
}

// Emit stamps the event with the core id and routes it to the core's
// auditor and the shared tracer. Emission sites guard with S.Want first so
// disabled types cost no event construction.
func (c *Core) Emit(ev obs.Event) {
	ev.Core = c.ID
	if c.Aud.Wants(ev.Type) {
		c.Aud.Write(ev)
	}
	c.S.Trc.Emit(ev)
}

// observe is the core's scheduler hook: it keeps steal-eligibility
// timestamps fresh and mirrors unblock transitions into the trace.
func (c *Core) observe(pid int, from, to sched.State) {
	if to == sched.Ready {
		c.S.Procs[pid].ReadyAt = c.Eng.Now()
	}
	if from == sched.Blocked && to == sched.Ready && c.S.Trc.Wants(obs.EvUnblock) {
		c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvUnblock, PID: pid})
	}
}

// Dispatch puts pid on this core's CPU.
func (c *Core) Dispatch(pid int) {
	s := c.S
	p := s.Procs[pid]
	if p.wasBlocked {
		wait := c.Eng.Now() - p.blockedAt
		p.Met.BlockedWait += wait
		s.Run.BlockedHist.Observe(wait)
		p.wasBlocked = false
	}
	p.sliceLeft = c.Sch.SliceFor(pid)
	c.DispatchedAt = c.Eng.Now()
	if c.Met != nil {
		c.Met.Dispatches++
	}
	if s.Want[obs.EvDispatch] {
		c.Emit(obs.Event{Time: c.DispatchedAt, Type: obs.EvDispatch, PID: pid,
			Cause: p.Spec.Name, Value: int64(p.Spec.Priority)})
	}
	c.Cur = p
}

// RunUntil executes the dispatched process until it blocks, exhausts its
// slice, finishes — or crosses the coordinator's horizon, in which case it
// stays dispatched (Cur != nil) and resumes on the core's next step. The
// single-core machine passes Never.
func (c *Core) RunUntil(horizon sim.Time) {
	s := c.S
	p := c.Cur
	for {
		rec, ok := c.peek(p, 0)
		if !ok {
			p.Met.FinishTime = c.Eng.Now()
			p.Met.Finished = true
			c.Sch.Finish(p.PID)
			if s.Want[obs.EvProcFinish] {
				c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvProcFinish, PID: p.PID,
					Dur: c.Eng.Now() - c.DispatchedAt})
			}
			if c.Eng.Now() > s.Run.Makespan {
				s.Run.Makespan = c.Eng.Now()
			}
			c.Cur = nil
			if c.Sch.Alive() > 0 {
				c.chargeSwitch(p)
			}
			return
		}
		// Compute gap (once per record, even across fault retries).
		if rec.Gap > 0 && !p.gapPaid {
			p.instCarry += uint64(rec.Gap)
			var d sim.Time
			if s.instShift >= 0 {
				// Power-of-two InstPerNs (the default): shift/mask is
				// the same quotient/remainder without a per-record div.
				d = sim.Time(p.instCarry >> uint(s.instShift))
				p.instCarry &= s.instMask
			} else {
				d = sim.Time(p.instCarry / uint64(s.Cfg.InstPerNs))
				p.instCarry %= uint64(s.Cfg.InstPerNs)
			}
			if d > 0 {
				c.advance(p, d)
			}
			p.Met.Instructions += uint64(rec.Gap)
		}
		p.gapPaid = true
		// The access itself (may busy-wait or block).
		if c.access(p, rec) {
			c.Cur = nil
			return
		}
		p.Met.Instructions++
		c.pop(p)
		// Slice accounting: RR rotates only when someone else is ready.
		if p.sliceLeft <= 0 {
			// Re-check the runaway guard at slice boundaries too, so a
			// lone process cannot run unbounded inside one dispatch.
			if s.Cfg.MaxSimTime > 0 && c.Eng.Now() > s.Cfg.MaxSimTime {
				c.Sch.Expire(p.PID)
				c.Cur = nil
				return
			}
			if s.Want[obs.EvSliceExpiry] {
				c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvSliceExpiry, PID: p.PID})
			}
			if c.Sch.Runnable() > 0 {
				c.Sch.Expire(p.PID)
				if s.Want[obs.EvPreempt] {
					c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvPreempt, PID: p.PID,
						Dur: c.Eng.Now() - c.DispatchedAt})
				}
				c.Cur = nil
				c.chargeSwitch(p)
				return
			}
			p.sliceLeft = c.Sch.SliceFor(p.PID)
		}
		// Horizon pause — checked after at least one record so a tied
		// horizon cannot starve the coordinator of progress.
		if c.Eng.Now() >= horizon {
			return
		}
	}
}

// chargeSwitch charges the 7 µs context switch paid whenever the CPU leaves
// a process (block, slice expiry, exit with successors). Dispatching the
// next process is covered by this single save+restore charge, matching the
// paper's one-switch-per-transition accounting. The per-core metric takes
// the full clock cost (including the pollution tail) so per-core time
// conservation closes exactly.
func (c *Core) chargeSwitch(p *Proc) {
	s := c.S
	s.Run.ContextSwitchTime += kernel.ContextSwitchCost
	p.Met.ContextSwitches++
	cost := kernel.ContextSwitchCost + kernel.SwitchPollutionCost
	if c.TLB != nil {
		// Mechanistic mode: the switch flushes the TLB; the pollution
		// cost emerges from the subsequent misses instead of a
		// constant.
		c.TLB.Flush()
		cost = kernel.ContextSwitchCost
	}
	if c.Met != nil {
		c.Met.ContextSwitchTime += cost
	}
	c.advance(nil, cost)
	if c.TLB == nil {
		// The pollution tail (TLB shootdown, re-missing hot cache lines,
		// §2.1.1) surfaces as memory stall.
		p.Met.MemStall += kernel.SwitchPollutionCost
	}
	if s.Want[obs.EvContextSwitch] {
		// Dur is the full clock advance (switch plus pollution tail) so
		// the auditor's time-conservation ledger balances.
		c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvContextSwitch, PID: p.PID, Dur: cost})
	}
}

// peek returns the i-th unexecuted record (0 = next), refilling the
// lookahead ring from the generator. Peeks beyond the configured
// lookahead window report end-of-window: the pre-execute engine's
// visibility is bounded by the hardware instruction window it models.
// Records decode straight into ring slots — the executor's per-record
// path performs no allocation.
func (c *Core) peek(p *Proc, i int) (trace.Record, bool) {
	if i >= c.S.Cfg.Lookahead {
		return trace.Record{}, false
	}
	for !p.drained && p.size <= i {
		if !p.Spec.Gen.Next(&p.look[(p.head+p.size)&p.mask]) {
			p.drained = true
			break
		}
		p.size++
	}
	if i < p.size {
		return p.look[(p.head+i)&p.mask], true
	}
	return trace.Record{}, false
}

// pop consumes the head record.
func (c *Core) pop(p *Proc) {
	p.gapPaid = false
	p.head = (p.head + 1) & p.mask
	p.size--
}

// advance moves this core's clock forward by d (firing due local events)
// and charges p's slice and CPU occupancy, mirrored into the core ledger.
func (c *Core) advance(p *Proc, d sim.Time) {
	if d <= 0 {
		return
	}
	c.Eng.AdvanceTo(c.Eng.Now() + d)
	if p != nil {
		p.sliceLeft -= d
		p.Met.CPUTime += d
		if c.Met != nil {
			c.Met.CPUTime += d
		}
	}
}

// access performs one memory access for p. It returns true when the process
// blocked (asynchronous fault) and execution must leave RunUntil; the
// faulting record stays at the head for retry on wake-up.
func (c *Core) access(p *Proc, rec trace.Record) (blockedOut bool) {
	s := c.S
	write := rec.Kind == trace.Store
	for {
		tr, _, prefHit := s.Krn.TranslateIn(p.KP, rec.Addr, write)
		if tr == kernel.Present {
			if prefHit {
				// Swap-cache hit on a prefetched page: minor fault.
				p.Met.MinorFaults++
				p.Met.PrefetchUseful++
				if s.Want[obs.EvPrefetchHit] {
					c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvPrefetchHit,
						PID: p.PID, VA: rec.Addr})
				}
				c.advance(p, kernel.MinorFaultCost)
				s.Krn.ChargeHandler(kernel.MinorFaultCost)
				s.Run.FaultHandlerTime += kernel.MinorFaultCost
			}
			c.cacheAccess(p, rec.Addr)
			return false
		}
		// Major fault.
		if c.majorFault(p, rec) {
			return true
		}
		// Synchronous completion: retry the translation.
	}
}

// cacheAccess charges the (TLB →) L1 → LLC → DRAM path.
func (c *Core) cacheAccess(p *Proc, addr uint64) {
	s := c.S
	key := Tagged(p.PID, addr)
	if c.TLB != nil && !c.TLB.Lookup(key>>pagetable.PageShift) {
		// TLB miss: the hardware walker re-reads the page tables.
		c.advance(p, s.Cfg.TLBMissCost)
		p.Met.MemStall += s.Cfg.TLBMissCost
	}
	if c.L1.Access(key) {
		c.advance(p, s.Cfg.L1Hit)
		return
	}
	p.Met.LLCAccesses++
	// The LLC lookup and the miss-path fill are fused into one set scan
	// (cache.AccessFill); nothing between the unfused pair ever touched
	// the caches — event handlers fired by advance are scheduler- and
	// kernel-only — so fusing is invisible to the simulation. The L1
	// refills use FillCold: the key just missed L1 and only invalidations
	// can intervene, so the match scan is provably dead.
	hit, victim, wasValid := s.LLC.AccessFill(key)
	if hit {
		c.advance(p, s.Cfg.L1Hit+s.Cfg.LLCHit)
		// The LLC-hit service time is still the CPU waiting on the
		// memory hierarchy (paper: idle accrues "during the cache
		// misses"), here an L1 miss served by the LLC.
		p.Met.MemStall += s.Cfg.LLCHit
		c.L1.FillCold(key)
		return
	}
	if wasValid {
		// Inclusive hierarchy: back-invalidate the displaced line from
		// every private L1 (same as llcFill, without re-filling).
		addr := s.LLC.AddrOf(victim)
		for _, cc := range s.Cores {
			cc.L1.Invalidate(addr)
		}
	}
	p.Met.LLCMisses++
	stall := s.Cfg.L1Hit + s.Cfg.LLCHit + mem.AccessLatency
	c.advance(p, stall)
	p.Met.MemStall += s.Cfg.LLCHit + mem.AccessLatency
	c.L1.FillCold(key)
}

// ensureSwapIn starts (or joins) the swap-in of (pid, page-of-va) and
// returns its completion time. The completion runs as an event on this
// core's engine and migrates with the process if it is stolen.
func (c *Core) ensureSwapIn(p *Proc, va uint64, kind swapKind) sim.Time {
	s := c.S
	page := va &^ uint64(pagetable.PageSize-1)
	key := InflightKey{PID: p.PID, Page: page}
	if done, ok := s.Inflight[key]; ok {
		return done
	}
	// A page picked as a prefetch candidate can become resident before the
	// candidates are issued (an earlier swap-in completing during the
	// dispatch/walk time); treat that as already done.
	if pte, ok := p.KP.AS.Lookup(page); ok && pte.Present() {
		return c.Eng.Now()
	}
	out := s.Krn.StartSwapIn(c.Eng.Now(), p.PID, page, kind != swapDemand)
	s.Inflight[key] = out.Done
	pio := s.getPendingIO()
	pio.Key, pio.Frame, pio.Done = key, out.Frame, out.Done
	c.SchedulePendingIO(p, pio)
	if kind == swapPrefetch {
		p.Met.PrefetchIssued++
		if s.Want[obs.EvPrefetchIssue] {
			c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvPrefetchIssue,
				PID: p.PID, VA: page, Dur: out.Done - c.Eng.Now()})
		}
	}
	return out.Done
}

// SchedulePendingIO schedules pio's completion (page-table update, unpin,
// inflight cleanup) on this core's engine and tracks it on p so a steal can
// re-home it. The completion is the PendingIO itself (sim.Handler), so
// scheduling allocates neither a closure nor an event struct.
func (c *Core) SchedulePendingIO(p *Proc, pio *PendingIO) {
	pio.p, pio.s = p, c.S
	pio.Ev = c.Eng.ScheduleHandler(pio.Done, pio)
	p.Pending = append(p.Pending, pio)
}

// clusterSwapIn fetches the swapped-out siblings of va's aligned
// SwapClusterPages-page cluster, returning the last completion time.
func (c *Core) clusterSwapIn(p *Proc, va uint64) sim.Time {
	cluster := uint64(c.S.Cfg.SwapClusterPages) * pagetable.PageSize
	base := va &^ (cluster - 1)
	victim := va &^ uint64(pagetable.PageSize-1)
	as := p.KP.AS
	var last sim.Time
	for pv := base; pv < base+cluster; pv += pagetable.PageSize {
		if pv == victim {
			continue
		}
		if pte, ok := as.Lookup(pv); !ok || !pte.Swapped() {
			continue
		}
		if d := c.ensureSwapIn(p, pv, swapCluster); d > last {
			last = d
		}
	}
	return last
}

// tryPrefetch starts the swap-in of a prefetch candidate, subject to device
// admission control: if the page's channel is busy the candidate is dropped
// (readahead throttling), so demand reads never queue behind a prefetch
// flood.
func (c *Core) tryPrefetch(p *Proc, va uint64) {
	s := c.S
	page := va &^ uint64(pagetable.PageSize-1)
	if _, busy := s.Inflight[InflightKey{PID: p.PID, Page: page}]; busy {
		return
	}
	pte, ok := s.Krn.Process(p.PID).AS.Lookup(page)
	if !ok || !pte.Swapped() {
		return
	}
	if !s.Krn.Device().FreeChannelAt(pte.Frame(), c.Eng.Now()) {
		p.Met.PrefetchDropped++
		if s.Want[obs.EvPrefetchDrop] {
			c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvPrefetchDrop, PID: p.PID, VA: page})
		}
		return
	}
	c.ensureSwapIn(p, page, swapPrefetch)
}

// majorFault runs the paper's Figure 1 flow for one major fault. It returns
// true when the process blocked (async mode).
func (c *Core) majorFault(p *Proc, rec trace.Record) (blocked bool) {
	s := c.S
	// The begin event goes out at entry, before any cost is charged: the
	// policy decision (and thus the handling mode) is only known later, so
	// the mode rides on the matching end event.
	faultStart := c.Eng.Now()
	if s.Want[obs.EvMajorFaultBegin] {
		c.Emit(obs.Event{Time: faultStart, Type: obs.EvMajorFaultBegin, PID: p.PID, VA: rec.Addr})
	}
	p.Met.MajorFaults++
	c.advance(p, kernel.FaultEntryCost)
	s.Krn.ChargeHandler(kernel.FaultEntryCost)
	s.Run.FaultHandlerTime += kernel.FaultEntryCost

	// The context lives on the Core (scratch, reused every fault): passing
	// a stack struct through the Policy interface would force a heap
	// allocation per fault.
	c.pctx = policy.Context{
		Now:          c.Eng.Now(),
		PID:          p.PID,
		VA:           rec.Addr,
		AS:           p.KP.AS,
		CurPriority:  p.Spec.Priority,
		BusyChannels: s.Krn.Device().BusyChannelsAt(c.Eng.Now()),
		Channels:     s.Krn.Device().Config().Channels,
	}
	if next := c.Sch.NextToRun(); next != -1 {
		c.pctx.HasNext = true
		c.pctx.NextPriority = s.Procs[next].Spec.Priority
	}
	d := c.Pol.Decide(&c.pctx)
	if d.PrefetchThrottled {
		p.Met.PrefetchThrottled++
		if s.Want[obs.EvPrefetchThrottle] {
			c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvPrefetchThrottle, PID: p.PID,
				VA: rec.Addr, Value: int64(c.pctx.BusyChannels)})
		}
	}
	if d.DispatchCost > 0 {
		c.advance(p, d.DispatchCost)
		s.Krn.ChargeHandler(d.DispatchCost)
		s.Run.FaultHandlerTime += d.DispatchCost
	}

	// Start the victim page's DMA first (it is the critical path), then
	// issue prefetches so they queue behind it.
	done := c.ensureSwapIn(p, rec.Addr, swapDemand)
	// Huge-I/O clusters: the fault fetches the whole aligned cluster and
	// waits for all of it (§1's "larger I/O sizes").
	if s.Cfg.SwapClusterPages > 1 {
		if d2 := c.clusterSwapIn(p, rec.Addr); d2 > done {
			done = d2
		}
	}

	if d.Mode == policy.AsyncBlock {
		for _, pv := range d.Prefetch {
			c.tryPrefetch(p, pv)
		}
		c.Sch.Block(p.PID)
		p.blockedAt = c.Eng.Now()
		p.wasBlocked = true
		if s.Want[obs.EvBlock] {
			c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvBlock, PID: p.PID,
				VA: rec.Addr, Dur: c.Eng.Now() - c.DispatchedAt})
		}
		c.scheduleFaultEnd(p, rec.Addr, faultStart, done, "async")
		// Wake up when the page lands (after the completion event at
		// the same timestamp, thanks to FIFO event ordering).
		p.scheduleWake(c, done)
		// Switching away is the asynchronous mode's price: 7 µs of pure
		// state movement — longer than the ULL I/O itself.
		c.chargeSwitch(p)
		return true
	}

	// Hybrid polling (Spin_Block): if the I/O will outlive the spin
	// threshold, burn the threshold busy-waiting and then block for the
	// remainder. The executor-level spin budget extends the same bounded
	// spin to every otherwise-unbounded synchronous wait: when a
	// misbehaving device (tail spike, channel stall, retried DMA) pushes
	// the predicted window past the budget, the wait demotes to an async
	// context switch instead of burning the core — ITS degrades toward
	// Vanilla_Async rather than spinning out the fault.
	spin, spinCause := d.SpinThreshold, "spin"
	if spin <= 0 && s.Cfg.SpinBudget > 0 {
		spin, spinCause = s.Cfg.SpinBudget, "demote"
	}
	if spin > 0 && done-c.Eng.Now() > spin {
		if spinCause == "demote" {
			p.Met.Demotions++
			if s.Want[obs.EvDemote] {
				c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvDemote, PID: p.PID,
					VA: rec.Addr, Dur: done - c.Eng.Now(), Value: int64(spin)})
			}
		}
		p.Met.StorageWait += spin
		c.advance(p, spin)
		c.Sch.Block(p.PID)
		p.blockedAt = c.Eng.Now()
		p.wasBlocked = true
		if s.Want[obs.EvBlock] {
			c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvBlock, PID: p.PID,
				VA: rec.Addr, Dur: c.Eng.Now() - c.DispatchedAt})
		}
		c.scheduleFaultEnd(p, rec.Addr, faultStart, done, spinCause)
		p.scheduleWake(c, done)
		c.chargeSwitch(p)
		return true
	}

	// Synchronous busy-wait. The whole window is storage-induced stall
	// for this process (its own progress is paused even while ITS steals
	// the cycles for prefetching/pre-execution).
	windowStart := c.Eng.Now()
	if w := done - windowStart; w > 0 {
		p.Met.StorageWait += w
		s.Run.SyncWaitHist.Observe(w)
	}
	if d.PrefetchWalkCost > 0 {
		walk := d.PrefetchWalkCost
		if rem := done - c.Eng.Now(); walk > rem && rem > 0 {
			walk = rem // the walk cannot usefully exceed the wait
		}
		c.advance(p, walk)
		p.Met.StolenPrefetch += walk
		if c.Met != nil {
			c.Met.StolenPrefetch += walk
		}
		if s.Want[obs.EvPrefetchWalk] {
			c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvPrefetchWalk, PID: p.PID,
				Dur: walk, Value: int64(d.PrefetchScanned)})
		}
	}
	for _, pv := range d.Prefetch {
		c.tryPrefetch(p, pv)
	}
	preexecuted := false
	if d.PreExecute && c.PX != nil {
		window := done - c.Eng.Now()
		if window > 0 {
			c.preExecute(p, rec, window)
			preexecuted = true
		}
	}
	if rem := done - c.Eng.Now(); rem > 0 {
		c.advance(p, rem)
	}
	if preexecuted {
		c.endRecovery(p, windowStart, done)
	}
	if s.Want[obs.EvMajorFaultEnd] {
		c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvMajorFaultEnd, PID: p.PID,
			VA: rec.Addr, Dur: c.Eng.Now() - faultStart, Cause: "sync"})
	}
	return false
}

// scheduleFaultEnd arranges the EvMajorFaultEnd of an asynchronous or
// spin-then-block fault to fire when its DMA lands, keeping the event
// stream monotonic while other processes run inside the window. Blocked
// processes never migrate, so the owning core's engine is the right home.
func (c *Core) scheduleFaultEnd(p *Proc, va uint64, faultStart, done sim.Time, mode string) {
	if !c.S.Want[obs.EvMajorFaultEnd] {
		return
	}
	c.Eng.Schedule(done, func(now sim.Time) {
		c.Emit(obs.Event{Time: now, Type: obs.EvMajorFaultEnd, PID: p.PID,
			VA: va, Dur: now - faultStart, Cause: mode})
	})
}

// endRecovery applies the §3.4.3 termination mode after a pre-execution
// episode: an interrupt-driven DMA completion costs InterruptCost; a
// polling timer makes the process resume at the first tick after the DMA
// landed, overshooting by up to one poll interval.
func (c *Core) endRecovery(p *Proc, windowStart, done sim.Time) {
	s := c.S
	if s.Cfg.RecoveryPoll <= 0 {
		c.advance(p, InterruptCost)
		p.Met.RecoveryOverhead += InterruptCost
		s.Krn.ChargeHandler(InterruptCost)
		s.Run.FaultHandlerTime += InterruptCost
		if s.Want[obs.EvRecovery] {
			c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvRecovery, PID: p.PID,
				Dur: InterruptCost, Cause: "interrupt"})
		}
		return
	}
	elapsed := done - windowStart
	over := (s.Cfg.RecoveryPoll - elapsed%s.Cfg.RecoveryPoll) % s.Cfg.RecoveryPoll
	if over > 0 {
		c.advance(p, over)
		p.Met.RecoveryOverhead += over
		p.Met.StorageWait += over
	}
	if s.Want[obs.EvRecovery] {
		c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvRecovery, PID: p.PID,
			Dur: over, Cause: "poll"})
	}
}

// pxEnvFor points the core's cached pre-execute environment at p and the
// faulting record. The callbacks are built once per core (closing only over
// the core) and dereference pxP/pxAS, so an episode costs zero allocations
// instead of eight closures.
func (c *Core) pxEnvFor(p *Proc, faulting trace.Record) {
	c.pxP = p
	c.pxAS = p.KP.AS
	if !c.pxInit {
		c.pxInit = true
		s := c.S
		c.pxEnv = preexec.Env{
			Lookahead: func(i int) (trace.Record, bool) {
				return c.peek(c.pxP, 1+i)
			},
			PagePresent: func(va uint64) bool {
				pte, ok := c.pxAS.Lookup(va)
				return ok && pte.Present()
			},
			PTEINV: func(va uint64) bool {
				pte, ok := c.pxAS.Lookup(va)
				return ok && pte.INV()
			},
			SetPTEINV: func(va uint64) {
				c.pxAS.Update(va, setINV)
			},
			LLCContains: func(addr uint64) bool {
				return s.LLC.Contains(Tagged(c.pxP.PID, addr))
			},
			LLCFill: func(addr uint64) {
				s.llcFill(Tagged(c.pxP.PID, addr))
				// The fill reads DRAM: reference the backing frame so
				// CLOCK sees the page as live (pre-execution protects
				// the pages it warms).
				if pte, ok := c.pxAS.Lookup(addr); ok && pte.Present() {
					s.Krn.DRAM().Touch(mem.FrameID(pte.Frame()), false)
				}
			},
			ClearPTEINV: func(va uint64) {
				c.pxAS.Update(va, clearINV)
			},
		}
	}
	c.pxEnv.FaultVA = faulting.Addr
	c.pxEnv.FaultDst = faulting.Dst
}

func setINV(e pagetable.PTE) pagetable.PTE   { return e | pagetable.FlagINV }
func clearINV(e pagetable.PTE) pagetable.PTE { return e &^ pagetable.FlagINV }

// preExecute runs this core's fault-aware pre-execute engine during a
// synchronous wait window, warming the shared LLC through its private
// carve-out.
func (c *Core) preExecute(p *Proc, faulting trace.Record, window sim.Time) {
	s := c.S
	if c.lastPXPid != p.PID {
		c.PX.FlushHardware()
		c.lastPXPid = p.PID
	}
	c.pxEnvFor(p, faulting)
	res := c.PX.Run(window, c.pxEnv)
	if res.Used > 0 {
		c.advance(p, res.Used)
		p.Met.StolenPreexec += res.Used - res.Overhead
		if c.Met != nil {
			c.Met.StolenPreexec += res.Used - res.Overhead
		}
		p.Met.RecoveryOverhead += res.Overhead
	}
	p.Met.PreexecInstrs += res.Instrs
	p.Met.PreexecValid += res.Valid
	p.Met.PreexecFills += res.Fills
	if s.Want[obs.EvPreexecWindow] {
		c.Emit(obs.Event{Time: c.Eng.Now(), Type: obs.EvPreexecWindow, PID: p.PID,
			Dur: res.Used, Value: int64(res.Instrs)})
	}
}
