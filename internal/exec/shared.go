package exec

import (
	"errors"
	"math/bits"

	"itsim/internal/bus"
	"itsim/internal/cache"
	"itsim/internal/cpu"
	"itsim/internal/fault"
	"itsim/internal/kernel"
	"itsim/internal/mem"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/preexec"
	"itsim/internal/sched"
	"itsim/internal/sim"
	"itsim/internal/storage"
	"itsim/internal/trace"
)

// Shared is the state every core of one simulated platform contends on: the
// kernel (page tables, swap path, DRAM), the inclusive LLC, the ULL device
// behind its PCIe link (owned by the kernel), the process table and the
// run-level metrics. One Shared plus one Core is the single-core machine;
// one Shared plus N Cores is the SMP model.
type Shared struct {
	// Cfg is the platform configuration after defaulting.
	Cfg Config
	// Krn is the shared mini kernel.
	Krn *kernel.Kernel
	// LLC is the shared last-level cache (minus pre-execute carve-outs).
	LLC *cache.Cache
	// Run collects the run-level metrics.
	Run *metrics.Run
	// Procs is the process table, indexed by pid.
	Procs []*Proc
	// Inflight maps in-flight swap-ins to their completion times so
	// concurrent faults and prefetches join rather than duplicate DMAs.
	Inflight map[InflightKey]sim.Time
	// Cores are the simulated CPUs sharing this state.
	Cores []*Core

	// Trc is the user tracer (nil = tracing off). Want caches, per event
	// type, whether the auditor or the tracer would accept it, so
	// untraced emission sites cost one array load and branch.
	Trc  *obs.Tracer
	Want [obs.NumTypes]bool
	// GaugeEvery is the virtual-time gauge sampling interval (0 = off).
	GaugeEvery sim.Time

	// pioFree is the free list of recycled PendingIO structs. Completions
	// are frequent (one per asynchronous swap-in) and short-lived, so
	// pooling them keeps the hot loop allocation-free.
	pioFree *PendingIO

	// instShift/instMask replace the per-record div/mod in the gap
	// conversion when InstPerNs is a power of two (the default, 2):
	// gap >> instShift and gap & instMask compute the identical quotient
	// and remainder. instShift is -1 when InstPerNs is not a power of two.
	instShift int
	instMask  uint64
}

// getPendingIO pops a recycled completion struct (or allocates the first
// time). All fields the caller does not set are zeroed here.
func (s *Shared) getPendingIO() *PendingIO {
	pio := s.pioFree
	if pio == nil {
		return &PendingIO{}
	}
	s.pioFree = pio.next
	*pio = PendingIO{}
	return pio
}

// ReleasePendingIO returns a completion struct to the free list. Callers
// must not retain pio afterwards; its event handle is owned by the engine
// (fired) or already cancelled (steal path).
func (s *Shared) ReleasePendingIO(pio *PendingIO) {
	pio.next = s.pioFree
	s.pioFree = pio
}

// NewShared builds the shared platform and one Core per policy instance
// (len(pols) = core count; policies are stateful, so each core needs its
// own). Processes are assigned to cores round-robin (pid % N — with N=1,
// all to the single core). When perCoreMetrics is set each core gets a
// metrics.Core ledger; the legacy single-core machine leaves it off so its
// summaries stay free of a per-core section.
func NewShared(cfg Config, pols []policy.Policy, batchName string, specs []ProcessSpec, perCoreMetrics bool) (*Shared, error) {
	if len(pols) == 0 {
		return nil, errors.New("exec: no policy instances")
	}
	for _, pol := range pols {
		if pol == nil {
			return nil, errors.New("exec: nil policy instance")
		}
	}
	if len(specs) == 0 {
		return nil, errors.New("exec: no processes")
	}
	if cfg.InstPerNs <= 0 {
		cfg.InstPerNs = DefaultInstPerNs
	}
	instShift := -1
	var instMask uint64
	if n := uint64(cfg.InstPerNs); n&(n-1) == 0 {
		instShift = bits.TrailingZeros64(n)
		instMask = n - 1
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = DefaultLookahead
	}
	if cfg.DRAMRatio <= 0 {
		cfg.DRAMRatio = 0.75
	}
	if cfg.TLBEntries > 0 && cfg.TLBMissCost <= 0 {
		cfg.TLBMissCost = 25 * sim.Nanosecond
	}
	n := len(pols)

	// Partition the LLC by ways (as real cache partitioning does — the
	// set count stays constant and power-of-two for both halves): every
	// core gets its own pre-execute carve-out, the remainder is the
	// shared LLC.
	llcSize, llcWays := cfg.LLCSize, cfg.LLCWays
	pxSize, pxWays := 0, 0
	if pols[0].Kind().NeedsPreExecCache() {
		per, share, err := cfg.PreExecPartition(n)
		if err != nil {
			return nil, err
		}
		sets := cfg.LLCSize / (cfg.LineBytes * cfg.LLCWays)
		pxWays = per
		pxSize = per * sets * cfg.LineBytes
		llcSize = cfg.LLCSize - pxSize*n
		llcWays = share
	}

	frames := cfg.DRAMFrames
	if frames == 0 {
		var pages uint64
		for _, s := range specs {
			pages += trace.FootprintPages(s.Gen.FootprintBytes())
		}
		frames = int(cfg.DRAMRatio * float64(pages))
	}
	if frames < 64 {
		frames = 64
	}

	link := bus.New(cfg.BusLanes, cfg.LaneBandwidth)
	dev := storage.New(cfg.Device, link)
	if cfg.Fault.Enabled() {
		dev.SetInjector(fault.New(cfg.Fault))
	}
	s := &Shared{
		Cfg:       cfg,
		Krn:       kernel.New(mem.NewDRAM(frames, cfg.Replacement), dev),
		LLC:       cache.New(cache.Config{SizeBytes: llcSize, LineBytes: cfg.LineBytes, Ways: llcWays}),
		Run:       metrics.NewRun(pols[0].Name(), batchName),
		Inflight:  make(map[InflightKey]sim.Time),
		instShift: instShift,
		instMask:  instMask,
	}

	// Pin every core's slice mapping to the batch-global priority range
	// so a migrated process keeps the slice the single-queue machine
	// would give it. (With one core the observed range equals the global
	// range, so pinning changes nothing.)
	lo, hi := specs[0].Priority, specs[0].Priority
	for _, sp := range specs[1:] {
		if sp.Priority < lo {
			lo = sp.Priority
		}
		if sp.Priority > hi {
			hi = sp.Priority
		}
	}

	for i := 0; i < n; i++ {
		c := &Core{
			S:         s,
			ID:        i,
			Eng:       &sim.Engine{},
			Sch:       sched.New(),
			L1:        cache.New(cache.Config{SizeBytes: cfg.L1Size, LineBytes: cfg.LineBytes, Ways: cfg.L1Ways}),
			Pol:       pols[i],
			Aud:       obs.NewAuditor(),
			lastPXPid: -1,
		}
		if perCoreMetrics {
			c.Met = s.Run.AddCore(i)
		}
		if pxSize > 0 {
			c.PX = preexec.New(cpu.NewPreExecCache(cache.Config{
				SizeBytes: pxSize, LineBytes: cfg.LineBytes, Ways: pxWays,
			}))
		}
		if cfg.TLBEntries > 0 {
			c.TLB = cpu.NewTLB(cfg.TLBEntries)
		}
		if cfg.StrictPriority {
			c.Sch.SetStrictPriority(true)
		}
		if cfg.MinSlice > 0 || cfg.MaxSlice > 0 {
			minS, maxS := cfg.MinSlice, cfg.MaxSlice
			if minS <= 0 {
				minS = sched.MinSlice
			}
			if maxS <= 0 {
				maxS = sched.MaxSlice
			}
			c.Sch.SetSliceRange(minS, maxS)
		}
		c.Sch.SetPriorityRange(lo, hi)
		c.Sch.SetObserver(c.observe)
		s.Cores = append(s.Cores, c)
	}

	for pid, sp := range specs {
		sp.Gen.Reset()
		p := &Proc{PID: pid, Spec: sp, Met: s.Run.AddProcess(pid, sp.Name, sp.Priority), Owner: pid % n}
		p.Met.Tenant = sp.Tenant
		ringLen := 1
		for ringLen < cfg.Lookahead {
			ringLen <<= 1
		}
		p.look = make([]trace.Record, ringLen)
		p.mask = ringLen - 1
		s.Procs = append(s.Procs, p)
		s.Krn.AddProcess(pid, sp.Name, sp.Priority)
		s.Krn.MapRegion(pid, sp.BaseVA, sp.Gen.FootprintBytes())
		p.KP = s.Krn.Process(pid)
		s.Cores[p.Owner].Sch.Add(pid, sp.Priority)
	}
	s.warmStart(cfg.WarmFraction, frames)
	s.RefreshWant()
	return s, nil
}

// warmSetter is implemented by workloads that can enumerate their working
// set (hottest pages first) for warm-starting DRAM.
type warmSetter interface {
	WarmPages(maxPages int) []uint64
}

// warmStart pre-loads each process's hottest pages into DRAM, fair-share,
// in pid order, so the run begins in the steady multiprogrammed state the
// paper measures.
func (s *Shared) warmStart(fraction float64, frames int) {
	if fraction < 0 {
		return
	}
	if fraction == 0 {
		fraction = 0.85
	}
	if fraction > 1 {
		fraction = 1
	}
	budget := int(fraction * float64(frames) / float64(len(s.Procs)))
	if budget <= 0 {
		return
	}
	for _, p := range s.Procs {
		ws, ok := p.Spec.Gen.(warmSetter)
		if !ok {
			continue
		}
		as := s.Krn.Process(p.PID).AS
		for _, va := range ws.WarmPages(budget) {
			if pte, found := as.Lookup(va); found && pte.Present() {
				continue
			}
			id, free := s.Krn.DRAM().Allocate(p.PID, va, false)
			if !free {
				return // DRAM full: warm-start ends here
			}
			as.MakePresent(va, uint64(id))
		}
	}
}

// Instrument attaches an event tracer and, when gaugeEvery > 0, a periodic
// virtual-time gauge sampler. Call before the run starts. A nil tracer
// leaves tracing off (the per-core accounting auditors still run — they are
// part of the platform, not of tracing).
func (s *Shared) Instrument(trc *obs.Tracer, gaugeEvery sim.Time) {
	s.Trc = trc
	s.GaugeEvery = gaugeEvery
	s.Krn.SetTracer(trc)
	s.RefreshWant()
}

// RefreshWant recomputes the per-type emission mask from the auditor's
// static interests and the current tracer's filter.
func (s *Shared) RefreshWant() {
	aud := s.Cores[0].Aud
	for i := range s.Want {
		s.Want[i] = aud.Wants(obs.Type(i)) || s.Trc.Wants(obs.Type(i))
	}
}

// CollectInjection copies the fault injector's end-of-run counters (plus
// the kernel's retry count) into the run record. With no injector
// attached it leaves Run.Injection nil, so fault-free summaries keep the
// historical byte layout. Both run loops call it after the last event.
func (s *Shared) CollectInjection() {
	inj := s.Krn.Device().Injector()
	if inj == nil {
		return
	}
	st := inj.Stats()
	s.Run.Injection = &metrics.InjectionStats{
		TailSpikes:    st.TailSpikes,
		ChannelStalls: st.ChannelStalls,
		DMAFailures:   st.DMAFailures,
		DMARetries:    s.Krn.Stats().DMARetries,
	}
}

// Alive is the number of unfinished processes across every core.
func (s *Shared) Alive() int {
	n := 0
	for _, c := range s.Cores {
		n += c.Sch.Alive()
	}
	return n
}

// llcFill installs a line in the shared LLC; the inclusive hierarchy
// back-invalidates the displaced victim from every core's L1 (a line
// evicted from the LLC cannot stay live in an inner cache). This is the
// single implementation of the inclusivity invariant for both the
// single-core machine (one L1) and the SMP model.
func (s *Shared) llcFill(key uint64) {
	if victim, ok := s.LLC.Fill(key); ok {
		addr := s.LLC.AddrOf(victim)
		for _, c := range s.Cores {
			c.L1.Invalidate(addr)
		}
	}
}

// ScheduleGauges starts the periodic gauge sampler (on core 0's clock) when
// enabled. Each tick emits counter events for the run-introspection
// quantities the aggregate metrics cannot show over time: ready-queue
// depth, outstanding swap-ins, LLC and pre-execute-cache occupancy, and
// busy storage channels.
func (s *Shared) ScheduleGauges() {
	if s.GaugeEvery <= 0 || !s.Want[obs.EvGauge] {
		return
	}
	c0 := s.Cores[0]
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		if s.Alive() == 0 {
			// The run is over: a pending tick draining after EvRunEnd must
			// not emit — replay attribution requires RunEnd to be the last
			// event of its run.
			return
		}
		s.emitGauges(now)
		c0.Eng.Schedule(now+s.GaugeEvery, tick)
	}
	c0.Eng.Schedule(c0.Eng.Now()+s.GaugeEvery, tick)
}

func (s *Shared) emitGauges(now sim.Time) {
	c0 := s.Cores[0]
	g := func(name string, v int64) {
		c0.Emit(obs.Event{Time: now, Type: obs.EvGauge, PID: -1, Cause: name, Value: v})
	}
	ready := 0
	for _, c := range s.Cores {
		ready += c.Sch.Runnable()
	}
	g("ready_queue_depth", int64(ready))
	g("outstanding_swapins", int64(len(s.Inflight)))
	g("llc_lines", int64(s.LLC.ValidLines()))
	if c0.PX != nil {
		px := 0
		for _, c := range s.Cores {
			px += c.PX.PXC.ValidLines()
		}
		g("preexec_cache_lines", int64(px))
	}
	g("busy_storage_channels", int64(s.Krn.Device().BusyChannelsAt(now)))
}
