package exec

import (
	"strings"
	"testing"

	"itsim/internal/cache"
	"itsim/internal/policy"
)

// TestLLCFillBackInvalidatesEveryL1 pins the inclusivity invariant at its
// single implementation: when llcFill displaces a victim from the shared
// LLC, the line disappears from every core's L1, not just the filling
// core's.
func TestLLCFillBackInvalidatesEveryL1(t *testing.T) {
	const line = 64
	// One-set, one-way LLC: any fill of a different line evicts the
	// previous occupant deterministically.
	s := &Shared{LLC: cache.New(cache.Config{SizeBytes: line, LineBytes: line, Ways: 1})}
	for i := 0; i < 4; i++ {
		s.Cores = append(s.Cores, &Core{S: s, ID: i,
			L1: cache.New(cache.Config{SizeBytes: 8 * line, LineBytes: line, Ways: 2})})
	}

	victim := Tagged(0, 0x1000)
	s.llcFill(victim)
	for _, c := range s.Cores {
		c.L1.Fill(victim)
		if !c.L1.Contains(victim) {
			t.Fatalf("core %d: L1 lost the line before the LLC eviction", c.ID)
		}
	}

	// A conflicting fill (same set, different line) evicts the victim from
	// the LLC; inclusion demands it leave all four L1s with it.
	s.llcFill(Tagged(0, 0x2000))
	if s.LLC.Contains(victim) {
		t.Fatal("conflicting fill did not evict the victim from the LLC")
	}
	for _, c := range s.Cores {
		if c.L1.Contains(victim) {
			t.Fatalf("core %d: L1 still holds a line the LLC evicted (inclusion violated)", c.ID)
		}
	}
	// The fill's own line was never in the L1s, so nothing else vanished.
	for _, c := range s.Cores {
		if got := c.L1.ValidLines(); got != 0 {
			t.Fatalf("core %d: %d valid L1 lines after invalidation, want 0", c.ID, got)
		}
	}
}

func TestNewSharedValidation(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		name  string
		pols  []policy.Policy
		specs []ProcessSpec
		want  string
	}{
		{"no policies", nil, []ProcessSpec{{}}, "no policy instances"},
		{"nil policy", []policy.Policy{nil}, []ProcessSpec{{}}, "nil policy instance"},
		{"no processes", []policy.Policy{policy.New(policy.Sync)}, nil, "no processes"},
	}
	for _, tc := range cases {
		_, err := NewShared(cfg, tc.pols, "t", tc.specs, false)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}
