package exec

import (
	"itsim/internal/kernel"
	"itsim/internal/mem"
	"itsim/internal/metrics"
	"itsim/internal/pagetable"
	"itsim/internal/sched"
	"itsim/internal/sim"
	"itsim/internal/trace"
)

// Proc is the per-process runtime state. The steal-eligibility fields
// (Owner, ReadyAt, Pending) are maintained unconditionally; on a single-core
// Shared they are inert bookkeeping.
type Proc struct {
	// PID is the process id (index into Shared.Procs).
	PID int
	// Spec is the declaration the process was built from.
	Spec ProcessSpec
	// Met is the per-process metrics record.
	Met *metrics.Process
	// KP is the kernel-side process, resolved once at construction so the
	// per-record translate path skips the kernel's pid map lookup.
	KP *kernel.Process

	// Owner is the core whose runqueue currently holds the process.
	Owner int
	// ReadyAt is when the process last became Ready (owner-core clock);
	// a thief's clock jumps to at least this time before stealing.
	ReadyAt sim.Time
	// Pending tracks this process's in-flight swap-in completions, which
	// live on the owner core's engine and migrate with the process.
	// Entries are always unfired: a completion drops itself from the list
	// in the same event that fires it, which is what makes cancel-then-
	// recycle of the underlying sim.Event safe.
	Pending []*PendingIO

	// look is the lookahead ring of fetched-but-unexecuted records, sized
	// to the configured lookahead window (power of two; mask = len-1).
	// Records are decoded straight into ring slots, so the hot loop never
	// allocates per record; head indexes the next record to execute and
	// size counts the buffered records.
	look []trace.Record
	mask int
	head int
	size int
	// drained means the generator is exhausted.
	drained bool

	// wake is the process's reusable unblock handler: at most one wake-up
	// is outstanding per process (a blocked process cannot block again
	// before it fires), so scheduling it allocates nothing.
	wake wakeHandler

	sliceLeft sim.Time
	// instCarry holds leftover instructions that didn't fill a whole
	// nanosecond at InstPerNs.
	instCarry uint64
	// blockedAt is when the process blocked on asynchronous I/O;
	// wasBlocked makes the next dispatch charge the block→dispatch span
	// as storage-induced stall.
	blockedAt  sim.Time
	wasBlocked bool
	// gapPaid marks that the head record's compute gap has been charged,
	// so a faulting access retried after an asynchronous block does not
	// pay (or count) its gap twice.
	gapPaid bool
}

// wakeHandler unblocks a process when its asynchronous I/O lands. Blocked
// processes never migrate, so the runqueue captured at block time is still
// the right one when the completion fires.
type wakeHandler struct {
	sch *sched.RR
	pid int
}

// Fire implements sim.Handler.
func (w *wakeHandler) Fire(sim.Time) { w.sch.Unblock(w.pid) }

// scheduleWake arms p's wake-up on core c at time done. Must only be called
// with p freshly blocked (one outstanding wake per process).
func (p *Proc) scheduleWake(c *Core, done sim.Time) {
	p.wake.sch = c.Sch
	p.wake.pid = p.PID
	c.Eng.ScheduleHandler(done, &p.wake)
}

// dropPending removes pio from the process's in-flight completion list.
func (p *Proc) dropPending(pio *PendingIO) {
	for i, q := range p.Pending {
		if q == pio {
			p.Pending = append(p.Pending[:i], p.Pending[i+1:]...)
			return
		}
	}
}

// InflightKey identifies one in-flight swap-in: the page of one process.
type InflightKey struct {
	PID  int
	Page uint64
}

// PendingIO is one scheduled swap-in completion. Its completion event calls
// Fire directly (no closure), and fired or superseded structs return to a
// free list on Shared. The SMP steal path cancels Ev on the victim core's
// engine and reschedules the completion on the thief's.
type PendingIO struct {
	Key   InflightKey
	Frame mem.FrameID
	Done  sim.Time
	Ev    *sim.Event

	// p/s are the owning process and platform, set when the completion is
	// scheduled; next links the free list.
	p    *Proc
	s    *Shared
	next *PendingIO
}

// Fire implements sim.Handler: the swap-in lands — update the page table,
// drop the inflight entry and recycle the struct.
func (pio *PendingIO) Fire(sim.Time) {
	s, p := pio.s, pio.p
	s.Krn.CompleteSwapIn(p.PID, pio.Key.Page, pio.Frame)
	delete(s.Inflight, pio.Key)
	p.dropPending(pio)
	s.ReleasePendingIO(pio)
}

// swapKind distinguishes why a page is being swapped in.
type swapKind uint8

const (
	// swapDemand is the faulting page itself.
	swapDemand swapKind = iota
	// swapPrefetch is a prefetcher candidate (counted in prefetch
	// metrics; first victim under pressure).
	swapPrefetch
	// swapCluster is a sibling page of a huge-I/O cluster fault (not a
	// prefetch for metrics purposes, not separately a major fault).
	swapCluster
)

// Tagged folds the pid into the address's upper bits so per-process virtual
// addresses share the physically-indexed caches without aliasing.
func Tagged(pid int, addr uint64) uint64 {
	return addr&(1<<pagetable.VABits-1) | uint64(pid+1)<<pagetable.VABits
}
