package exec

import (
	"itsim/internal/mem"
	"itsim/internal/metrics"
	"itsim/internal/pagetable"
	"itsim/internal/sim"
	"itsim/internal/trace"
)

// Proc is the per-process runtime state. The steal-eligibility fields
// (Owner, ReadyAt, Pending) are maintained unconditionally; on a single-core
// Shared they are inert bookkeeping.
type Proc struct {
	// PID is the process id (index into Shared.Procs).
	PID int
	// Spec is the declaration the process was built from.
	Spec ProcessSpec
	// Met is the per-process metrics record.
	Met *metrics.Process

	// Owner is the core whose runqueue currently holds the process.
	Owner int
	// ReadyAt is when the process last became Ready (owner-core clock);
	// a thief's clock jumps to at least this time before stealing.
	ReadyAt sim.Time
	// Pending tracks this process's in-flight swap-in completions, which
	// live on the owner core's engine and migrate with the process.
	Pending []*PendingIO

	// look is the lookahead FIFO of fetched-but-unexecuted records;
	// head indexes the next record to execute.
	look []trace.Record
	head int
	// drained means the generator is exhausted.
	drained bool

	sliceLeft sim.Time
	// instCarry holds leftover instructions that didn't fill a whole
	// nanosecond at InstPerNs.
	instCarry uint64
	// blockedAt is when the process blocked on asynchronous I/O;
	// wasBlocked makes the next dispatch charge the block→dispatch span
	// as storage-induced stall.
	blockedAt  sim.Time
	wasBlocked bool
	// gapPaid marks that the head record's compute gap has been charged,
	// so a faulting access retried after an asynchronous block does not
	// pay (or count) its gap twice.
	gapPaid bool
}

// dropPending removes pio from the process's in-flight completion list.
func (p *Proc) dropPending(pio *PendingIO) {
	for i, q := range p.Pending {
		if q == pio {
			p.Pending = append(p.Pending[:i], p.Pending[i+1:]...)
			return
		}
	}
}

// InflightKey identifies one in-flight swap-in: the page of one process.
type InflightKey struct {
	PID  int
	Page uint64
}

// PendingIO is one scheduled swap-in completion. The SMP steal path cancels
// Ev on the victim core's engine and reschedules the completion on the
// thief's.
type PendingIO struct {
	Key   InflightKey
	Frame mem.FrameID
	Done  sim.Time
	Ev    *sim.Event
}

// swapKind distinguishes why a page is being swapped in.
type swapKind uint8

const (
	// swapDemand is the faulting page itself.
	swapDemand swapKind = iota
	// swapPrefetch is a prefetcher candidate (counted in prefetch
	// metrics; first victim under pressure).
	swapPrefetch
	// swapCluster is a sibling page of a huge-I/O cluster fault (not a
	// prefetch for metrics purposes, not separately a major fault).
	swapCluster
)

// Tagged folds the pid into the address's upper bits so per-process virtual
// addresses share the physically-indexed caches without aliasing.
func Tagged(pid int, addr uint64) uint64 {
	return addr&(1<<pagetable.VABits-1) | uint64(pid+1)<<pagetable.VABits
}
