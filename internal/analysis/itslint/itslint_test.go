package itslint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"itsim/internal/analysis/atest"
	"itsim/internal/analysis/itslint"
	"itsim/internal/analysis/simdeterminism"
)

// TestDirectiveMachinery drives the storage fixture through simdeterminism
// (the analyzer that owns directive validation) and asserts the three
// directive behaviours programmatically: a justified allow suppresses and
// is counted, an empty-reason allow is reported and does NOT suppress, and
// a lookalike comment (//itslint:allowance) is not a directive at all.
func TestDirectiveMachinery(t *testing.T) {
	summary := filepath.Join(t.TempDir(), "summary")
	t.Setenv(itslint.SummaryEnv, summary)

	diags := atest.RunResult(t, "../testdata", simdeterminism.Analyzer, "itsim/internal/storage")

	var emptyReason, mapRange int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "without a reason"):
			emptyReason++
		case strings.Contains(d.Message, "range over map"):
			mapRange++
		default:
			t.Errorf("unexpected diagnostic: %s", d.Message)
		}
	}
	if emptyReason != 1 {
		t.Errorf("empty-reason directives reported = %d, want 1", emptyReason)
	}
	// Two map ranges must still be reported: the one under the empty-reason
	// directive (no justification, no suppression) and the one beside the
	// //itslint:allowance lookalike. The justified one must not be.
	if mapRange != 2 {
		t.Errorf("map-range findings reported = %d, want 2", mapRange)
	}

	// The justified suppression must be counted in the summary side channel.
	data, err := os.ReadFile(summary)
	if err != nil {
		t.Fatalf("summary file not written: %v", err)
	}
	per, total := itslint.ParseSummary(data)
	if total != 1 || per["simdeterminism"] != 1 {
		t.Errorf("ParseSummary = %v (total %d), want simdeterminism=1", per, total)
	}
}

func TestDeterministic(t *testing.T) {
	for path, want := range map[string]bool{
		"itsim/internal/exec":     true,
		"itsim/internal/metrics":  true,
		"itsim/internal/core":     false,
		"itsim/cmd/itsbench":      false,
		"itsim/internal/analysis": false,
	} {
		if got := itslint.Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestParseSummary(t *testing.T) {
	data := []byte(strings.Join([]string{
		"simdeterminism\titsim/internal/sched\t3",
		"gospawn\titsim/internal/core\t1",
		"simdeterminism\titsim/internal/obs\t2",
		"truncated line without tabs",
		"vtime\titsim/internal/exec\tnot-a-number",
		"vtime\titsim/internal/exec\t-4",
		"",
	}, "\n"))
	per, total := itslint.ParseSummary(data)
	if total != 6 {
		t.Errorf("total = %d, want 6", total)
	}
	if per["simdeterminism"] != 5 || per["gospawn"] != 1 || per["vtime"] != 0 {
		t.Errorf("per-analyzer = %v, want simdeterminism=5 gospawn=1", per)
	}
}

func TestFormatSummary(t *testing.T) {
	if got := itslint.FormatSummary(map[string]int{}, 0); !strings.Contains(got, "clean") {
		t.Errorf("empty summary = %q, want a clean message", got)
	}
	got := itslint.FormatSummary(map[string]int{"simdeterminism": 2, "gospawn": 1}, 3)
	want := "itslint: 3 findings suppressed by //itslint:allow (gospawn=1, simdeterminism=2)"
	if got != want {
		t.Errorf("FormatSummary = %q, want %q", got, want)
	}
	if got := itslint.FormatSummary(map[string]int{"vtime": 1}, 1); !strings.Contains(got, "1 finding suppressed") {
		t.Errorf("singular form = %q, want %q", got, "1 finding suppressed")
	}
}

// TestAppendSummary checks the side-channel file protocol the vet worker
// processes use: appends accumulate, and an unset env means no-op.
func TestAppendSummary(t *testing.T) {
	summary := filepath.Join(t.TempDir(), "summary")
	t.Setenv(itslint.SummaryEnv, summary)
	itslint.AppendSummary("gospawn", "itsim/internal/core", 1)
	itslint.AppendSummary("simdeterminism", "itsim/internal/sched", 3)
	itslint.AppendSummary("simdeterminism", "itsim/internal/obs", 0) // zero: dropped
	data, err := os.ReadFile(summary)
	if err != nil {
		t.Fatalf("summary file not written: %v", err)
	}
	per, total := itslint.ParseSummary(data)
	if total != 4 || per["gospawn"] != 1 || per["simdeterminism"] != 3 {
		t.Errorf("round-trip = %v (total %d), want gospawn=1 simdeterminism=3", per, total)
	}

	t.Setenv(itslint.SummaryEnv, "")
	itslint.AppendSummary("vtime", "itsim/internal/exec", 7)
	data, _ = os.ReadFile(summary)
	if _, total := itslint.ParseSummary(data); total != 4 {
		t.Errorf("append with unset env changed the file: total = %d, want 4", total)
	}
}
