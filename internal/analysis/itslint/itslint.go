// Package itslint holds the shared machinery of the simulator's custom
// go/analysis passes: the deterministic-package set every analyzer scopes
// itself to, the //itslint:allow suppression directive, and the suppression
// accounting the `itslint run` multichecker aggregates into its summary.
//
// Every result this repository reports rests on bit-exact determinism: the
// same seed must produce byte-identical summaries across repeats, across
// machine-vs-1-core-SMP, and under any fault schedule. The analyzers in
// internal/analysis/... machine-check the coding discipline that property
// depends on; this package keeps their shared conventions in one place.
package itslint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// deterministicPkgs is the set of import paths whose code must be bit-exact
// reproducible: one stray wall-clock read, global-rand draw, env-dependent
// branch or map-order iteration in any of them can silently break replay,
// `itsbench diff`, and the per-core conservation ledger.
var deterministicPkgs = map[string]bool{
	// The event core joined the set with the calendar queue: its bucket
	// walk and free lists are pure slice code today, and a map-range or
	// wall-clock read slipping in would scramble same-time event order —
	// the exact invariant every equivalence suite anchors on.
	"itsim/internal/sim":      true,
	"itsim/internal/exec":     true,
	"itsim/internal/smp":      true,
	"itsim/internal/kernel":   true,
	"itsim/internal/storage":  true,
	"itsim/internal/fault":    true,
	"itsim/internal/policy":   true,
	"itsim/internal/sched":    true,
	"itsim/internal/cache":    true,
	"itsim/internal/preexec":  true,
	"itsim/internal/prefetch": true,
	"itsim/internal/obs":      true,
	"itsim/internal/metrics":  true,
	"itsim/internal/replay":   true,
	"itsim/internal/workload": true,
	"itsim/internal/cluster":  true,
	// Chaos schedules are replayed byte-for-byte by the CI chaos-
	// determinism job: any nondeterminism here reshuffles machine
	// failures across identically-seeded runs.
	"itsim/internal/chaos": true,
}

// Deterministic reports whether the import path belongs to the simulator's
// deterministic core.
func Deterministic(path string) bool { return deterministicPkgs[path] }

// IsTestFile reports whether the node's file is a _test.go file. The
// determinism invariants bind the simulator, not its tests — tests iterate
// maps and read wall clocks freely — so every analyzer skips test files.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// EntropySources maps package path → function name → the nondeterminism
// class a call introduces. It is the single source table shared by
// simdeterminism (which bans the calls outright in the deterministic set)
// and entropyflow (which treats their results as taint everywhere, so a
// wall-clock read or global-rand draw laundered through a helper package
// is still caught when it reaches sim-visible state).
var EntropySources = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"math/rand": {
		"Int": "global math/rand source", "Intn": "global math/rand source",
		"Int31": "global math/rand source", "Int31n": "global math/rand source",
		"Int63": "global math/rand source", "Int63n": "global math/rand source",
		"Uint32": "global math/rand source", "Uint64": "global math/rand source",
		"Float32": "global math/rand source", "Float64": "global math/rand source",
		"ExpFloat64": "global math/rand source", "NormFloat64": "global math/rand source",
		"Perm": "global math/rand source", "Shuffle": "global math/rand source",
		"Seed": "global math/rand source", "Read": "global math/rand source",
	},
	"math/rand/v2": {
		"Int": "global math/rand/v2 source", "IntN": "global math/rand/v2 source",
		"Int32": "global math/rand/v2 source", "Int32N": "global math/rand/v2 source",
		"Int64": "global math/rand/v2 source", "Int64N": "global math/rand/v2 source",
		"Uint32": "global math/rand/v2 source", "Uint32N": "global math/rand/v2 source",
		"Uint64": "global math/rand/v2 source", "Uint64N": "global math/rand/v2 source",
		"N": "global math/rand/v2 source", "Float32": "global math/rand/v2 source",
		"Float64": "global math/rand/v2 source", "Perm": "global math/rand/v2 source",
		"Shuffle": "global math/rand/v2 source", "ExpFloat64": "global math/rand/v2 source",
		"NormFloat64": "global math/rand/v2 source",
	},
	"os": {
		"Getenv":    "environment-dependent behaviour",
		"LookupEnv": "environment-dependent behaviour",
		"Environ":   "environment-dependent behaviour",
		"ExpandEnv": "environment-dependent behaviour",
	},
}

// EntropySource reports whether fn is one of the banned nondeterminism
// introducers, and the class it belongs to.
func EntropySource(fn *types.Func) (why string, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if sig, sok := fn.Type().(*types.Signature); !sok || sig.Recv() != nil {
		return "", false // method call (e.g. a seeded *rand.Rand) — deterministic
	}
	why, ok = EntropySources[fn.Pkg().Path()][fn.Name()]
	return why, ok
}

// prefix is the directive that suppresses an itslint diagnostic.
const prefix = "//itslint:allow"

// mixerPrefix marks a function as a documented seed mixer: seedflow
// accepts its calls as sanctioned seed derivations (see docs/LINTS.md,
// "seedflow").
const mixerPrefix = "//itslint:seedmixer"

// FrozenPrefix marks an exported struct whose serialized layout is frozen
// against the committed schemafreeze baseline.
const FrozenPrefix = "//itslint:frozen"

// IsSeedMixer reports whether the function declaration carries the
// //itslint:seedmixer directive in its doc comment.
func IsSeedMixer(fd *ast.FuncDecl) bool {
	return hasDirective(fd.Doc, mixerPrefix)
}

// IsFrozen reports whether the struct's type declaration carries the
// //itslint:frozen directive in doc (on the TypeSpec or its GenDecl).
func IsFrozen(docs ...*ast.CommentGroup) bool {
	for _, d := range docs {
		if hasDirective(d, FrozenPrefix) {
			return true
		}
	}
	return false
}

// hasDirective reports whether the comment group contains a line that is
// the directive, optionally followed by free text.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == directive {
			return true
		}
		if strings.HasPrefix(c.Text, directive) {
			rest := c.Text[len(directive):]
			if strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "\t") {
				return true
			}
		}
	}
	return false
}

// SummaryEnv, when set, names a file each analyzer appends its suppression
// counts to; `itslint run` aggregates it into the multichecker summary.
const SummaryEnv = "ITSLINT_SUMMARY"

// Directive is one parsed //itslint:allow comment.
type Directive struct {
	Pos    token.Pos
	Line   int
	Reason string
}

// Allows indexes the //itslint:allow directives of one package and arbitrates
// whether a diagnostic at a given position is suppressed. A directive covers
// its own source line and the line immediately below it (so it can trail the
// flagged statement or sit on its own line above it); anywhere else it does
// not suppress.
type Allows struct {
	pass *analysis.Pass
	// dirs maps filename → line → directive.
	dirs map[string]map[int]*Directive
	// Suppressed counts diagnostics a non-empty-reason directive absorbed.
	Suppressed int
}

// Scan indexes the allow directives of every non-test file in the package.
func Scan(pass *analysis.Pass) *Allows {
	al := &Allows{pass: pass, dirs: make(map[string]map[int]*Directive)}
	for _, d := range Directives(pass) {
		p := pass.Fset.Position(d.Pos)
		m := al.dirs[p.Filename]
		if m == nil {
			m = make(map[int]*Directive)
			al.dirs[p.Filename] = m
		}
		m[d.Line] = d
	}
	return al
}

// Directives returns every //itslint:allow directive in the package's
// non-test files, in file order.
func Directives(pass *analysis.Pass) []*Directive {
	var out []*Directive
	for _, f := range pass.Files {
		if IsTestFile(pass, f.Pos()) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := c.Text[len(prefix):]
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //itslint:allowance — not our directive
				}
				out = append(out, &Directive{
					Pos:    c.Pos(),
					Line:   pass.Fset.Position(c.Pos()).Line,
					Reason: strings.TrimSpace(rest),
				})
			}
		}
	}
	return out
}

// allowed returns the directive covering pos, if any. Only directives with a
// non-empty reason suppress; empty-reason directives are themselves reported
// by CheckDirectives.
func (al *Allows) allowed(pos token.Pos) *Directive {
	p := al.pass.Fset.Position(pos)
	m := al.dirs[p.Filename]
	if m == nil {
		return nil
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if d := m[line]; d != nil && d.Reason != "" {
			return d
		}
	}
	return nil
}

// Sanctioned reports whether a justified allow directive covers pos,
// WITHOUT counting a suppression. entropyflow uses it to sanitize taint at
// source sites (a map range simdeterminism already arbitrates), so one
// directive is not double-counted against two analyzers' budgets.
func (al *Allows) Sanctioned(pos token.Pos) bool { return al.allowed(pos) != nil }

// Report files the diagnostic unless a justified //itslint:allow directive
// covers pos, in which case the suppression is counted instead.
func (al *Allows) Report(pos token.Pos, format string, args ...any) {
	if al.allowed(pos) != nil {
		al.Suppressed++
		return
	}
	al.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportFix is Report with attached SuggestedFixes, for diagnostics that
// `itslint fix` can apply mechanically.
func (al *Allows) ReportFix(pos token.Pos, end token.Pos, fixes []analysis.SuggestedFix, format string, args ...any) {
	if al.allowed(pos) != nil {
		al.Suppressed++
		return
	}
	al.pass.Report(analysis.Diagnostic{
		Pos: pos, End: end,
		Message:        fmt.Sprintf(format, args...),
		SuggestedFixes: fixes,
	})
}

// Flush appends this pass's suppression count to the $ITSLINT_SUMMARY file
// (best-effort; the environment variable unset means no accounting was
// requested). Call once at the end of the analyzer's Run.
func (al *Allows) Flush(analyzer string) {
	if al.Suppressed == 0 {
		return
	}
	AppendSummary(analyzer, al.pass.Pkg.Path(), al.Suppressed)
}

// AppendSummary records n suppressions for analyzer on pkg in the summary
// file named by $ITSLINT_SUMMARY. Each vet worker process appends a single
// line, so concurrent packages interleave whole records.
func AppendSummary(analyzer, pkg string, n int) {
	path := os.Getenv(SummaryEnv)
	if path == "" || n == 0 {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	fmt.Fprintf(f, "%s\t%s\t%d\n", analyzer, pkg, n)
	f.Close()
}

// ParseSummary aggregates the summary file's records into per-analyzer
// totals and a grand total. Malformed lines are ignored (a crashed worker
// may truncate its record).
func ParseSummary(data []byte) (perAnalyzer map[string]int, total int) {
	perAnalyzer = make(map[string]int)
	for _, line := range strings.Split(string(data), "\n") {
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			continue
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil || n <= 0 {
			continue
		}
		perAnalyzer[parts[0]] += n
		total += n
	}
	return perAnalyzer, total
}

// FormatSummary renders the aggregated suppression counts as the one-line
// multichecker summary, e.g.
//
//	itslint: 3 findings suppressed by //itslint:allow (gospawn=1, simdeterminism=2)
func FormatSummary(perAnalyzer map[string]int, total int) string {
	if total == 0 {
		return "itslint: clean, no //itslint:allow suppressions"
	}
	names := make([]string, 0, len(perAnalyzer))
	for name := range perAnalyzer {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, perAnalyzer[name]))
	}
	noun := "findings"
	if total == 1 {
		noun = "finding"
	}
	return fmt.Sprintf("itslint: %d %s suppressed by //itslint:allow (%s)",
		total, noun, strings.Join(parts, ", "))
}

// ParseBudget parses a suppression-budget file: one `analyzer count` pair
// per line, '#' comments and blank lines ignored. The budget is the
// ceiling on //itslint:allow suppressions per analyzer — suppressions can
// be spent down (count below budget) but never silently grow.
func ParseBudget(data []byte) (map[string]int, error) {
	budget := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("budget line %d: want `analyzer count`, got %q", i+1, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("budget line %d: bad count %q", i+1, fields[1])
		}
		budget[fields[0]] = n
	}
	return budget, nil
}

// CheckBudget compares observed per-analyzer suppression counts against
// the budget and returns one violation line per analyzer over its ceiling
// (an analyzer absent from the budget file has a ceiling of zero), sorted.
func CheckBudget(perAnalyzer, budget map[string]int) []string {
	var violations []string
	for name, n := range perAnalyzer {
		if max := budget[name]; n > max {
			violations = append(violations, fmt.Sprintf(
				"%s: %d suppressions exceed the committed budget of %d (spend suppressions down, never grow them; "+
					"if a new //itslint:allow is genuinely justified, raise the budget file in the same reviewed change)",
				name, n, max))
		}
	}
	sort.Strings(violations)
	return violations
}

// CheckDirectives reports every //itslint:allow directive with an empty
// reason: a suppression without a justification is itself a violation.
// Exactly one analyzer (simdeterminism, which runs on every package) calls
// this, so each bad directive is reported once.
func CheckDirectives(pass *analysis.Pass) {
	for _, d := range Directives(pass) {
		if d.Reason == "" {
			pass.Report(analysis.Diagnostic{
				Pos:     d.Pos,
				Message: "itslint:allow directive without a reason: justify the suppression (//itslint:allow <why this is deterministic>)",
			})
		}
	}
}

// EnclosingFuncName returns the name of the innermost function declaration
// containing the node path produced by walking with WithStack-style
// traversal; helpers for analyzers that allowlist by function.
func EnclosingFuncName(decl *ast.FuncDecl) string {
	if decl == nil || decl.Name == nil {
		return ""
	}
	return decl.Name.Name
}
