// Package simdeterminism forbids the nondeterminism sources that silently
// break the simulator's bit-exact replay guarantee inside the deterministic
// core packages: wall-clock reads (time.Now/Since/Until), the global
// math/rand source, environment-dependent behaviour (os.Getenv and friends),
// and iteration over maps — whose order Go randomizes per run, so a map
// range feeding an event stream, a summary, or a queue makes two runs of the
// same seed diverge.
//
// Legitimate order-insensitive map iteration (pure counting, min/max folds)
// is suppressed with a justified //itslint:allow directive; the directive
// machinery itself (including the empty-reason check, which this analyzer
// owns for every package) lives in internal/analysis/itslint.
package simdeterminism

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"itsim/internal/analysis/itslint"
)

// Analyzer is the simdeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock time, global math/rand, environment reads and map iteration " +
		"in the simulator's deterministic packages (suppress with //itslint:allow <reason>)",
	Run: run,
}

// The banned package-level function table lives in itslint.EntropySources,
// shared with entropyflow: what this pass bans syntactically inside the
// deterministic set, entropyflow tracks as taint through helper packages.
// Only package-level functions are banned: a seeded *rand.Rand method draw
// is deterministic, the global source is not.

func run(pass *analysis.Pass) (any, error) {
	// The allow-directive validation runs on every package — a suppression
	// without a justification is a violation wherever it appears.
	itslint.CheckDirectives(pass)

	if !itslint.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	al := itslint.Scan(pass)
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, al, n)
			case *ast.RangeStmt:
				checkRange(pass, al, n)
			}
			return true
		})
	}
	al.Flush("simdeterminism")
	return nil, nil
}

// checkCall flags calls to the banned package-level functions.
func checkCall(pass *analysis.Pass, al *itslint.Allows, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if why, banned := itslint.EntropySource(fn); banned {
		al.Report(call.Pos(),
			"call to %s.%s in deterministic package %s: %s breaks bit-exact replay",
			fn.Pkg().Path(), fn.Name(), pass.Pkg.Path(), why)
	}
}

// checkRange flags iteration over map types: Go randomizes map order per
// run, so any map range whose body's effects can reach an event stream,
// summary or queue breaks determinism. Order-insensitive folds are
// annotated //itslint:allow with the justification.
func checkRange(pass *analysis.Pass, al *itslint.Allows, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	al.Report(rng.Pos(),
		"range over map %s in deterministic package %s: iteration order is randomized per run; "+
			"iterate sorted keys (or annotate an order-insensitive fold with //itslint:allow <reason>)",
		tv.Type.String(), pass.Pkg.Path())
}
