// Package simdeterminism forbids the nondeterminism sources that silently
// break the simulator's bit-exact replay guarantee inside the deterministic
// core packages: wall-clock reads (time.Now/Since/Until), the global
// math/rand source, environment-dependent behaviour (os.Getenv and friends),
// and iteration over maps — whose order Go randomizes per run, so a map
// range feeding an event stream, a summary, or a queue makes two runs of the
// same seed diverge.
//
// Legitimate order-insensitive map iteration (pure counting, min/max folds)
// is suppressed with a justified //itslint:allow directive; the directive
// machinery itself (including the empty-reason check, which this analyzer
// owns for every package) lives in internal/analysis/itslint.
package simdeterminism

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"itsim/internal/analysis/itslint"
)

// Analyzer is the simdeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock time, global math/rand, environment reads and map iteration " +
		"in the simulator's deterministic packages (suppress with //itslint:allow <reason>)",
	Run: run,
}

// bannedFuncs maps package path → function name → the invariant the call
// would break. Only package-level functions are banned: a seeded
// *rand.Rand method draw is deterministic, the global source is not.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"math/rand": {
		"Int": "global math/rand source", "Intn": "global math/rand source",
		"Int31": "global math/rand source", "Int31n": "global math/rand source",
		"Int63": "global math/rand source", "Int63n": "global math/rand source",
		"Uint32": "global math/rand source", "Uint64": "global math/rand source",
		"Float32": "global math/rand source", "Float64": "global math/rand source",
		"ExpFloat64": "global math/rand source", "NormFloat64": "global math/rand source",
		"Perm": "global math/rand source", "Shuffle": "global math/rand source",
		"Seed": "global math/rand source", "Read": "global math/rand source",
	},
	"math/rand/v2": {
		"Int": "global math/rand/v2 source", "IntN": "global math/rand/v2 source",
		"Int32": "global math/rand/v2 source", "Int32N": "global math/rand/v2 source",
		"Int64": "global math/rand/v2 source", "Int64N": "global math/rand/v2 source",
		"Uint32": "global math/rand/v2 source", "Uint32N": "global math/rand/v2 source",
		"Uint64": "global math/rand/v2 source", "Uint64N": "global math/rand/v2 source",
		"N": "global math/rand/v2 source", "Float32": "global math/rand/v2 source",
		"Float64": "global math/rand/v2 source", "Perm": "global math/rand/v2 source",
		"Shuffle": "global math/rand/v2 source", "ExpFloat64": "global math/rand/v2 source",
		"NormFloat64": "global math/rand/v2 source",
	},
	"os": {
		"Getenv":    "environment-dependent behaviour",
		"LookupEnv": "environment-dependent behaviour",
		"Environ":   "environment-dependent behaviour",
		"ExpandEnv": "environment-dependent behaviour",
	},
}

func run(pass *analysis.Pass) (any, error) {
	// The allow-directive validation runs on every package — a suppression
	// without a justification is a violation wherever it appears.
	itslint.CheckDirectives(pass)

	if !itslint.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	al := itslint.Scan(pass)
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, al, n)
			case *ast.RangeStmt:
				checkRange(pass, al, n)
			}
			return true
		})
	}
	al.Flush("simdeterminism")
	return nil, nil
}

// checkCall flags calls to the banned package-level functions.
func checkCall(pass *analysis.Pass, al *itslint.Allows, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // method call (e.g. a seeded *rand.Rand) — deterministic
	}
	if why, banned := bannedFuncs[fn.Pkg().Path()][fn.Name()]; banned {
		al.Report(call.Pos(),
			"call to %s.%s in deterministic package %s: %s breaks bit-exact replay",
			fn.Pkg().Path(), fn.Name(), pass.Pkg.Path(), why)
	}
}

// checkRange flags iteration over map types: Go randomizes map order per
// run, so any map range whose body's effects can reach an event stream,
// summary or queue breaks determinism. Order-insensitive folds are
// annotated //itslint:allow with the justification.
func checkRange(pass *analysis.Pass, al *itslint.Allows, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	al.Report(rng.Pos(),
		"range over map %s in deterministic package %s: iteration order is randomized per run; "+
			"iterate sorted keys (or annotate an order-insensitive fold with //itslint:allow <reason>)",
		tv.Type.String(), pass.Pkg.Path())
}
