package simdeterminism_test

import (
	"strings"
	"testing"

	"itsim/internal/analysis/atest"
	"itsim/internal/analysis/simdeterminism"
)

// TestDeterministicPackage checks both polarities inside the deterministic
// set: wall clocks, global rand, env reads and map ranges are flagged;
// seeded draws and justified //itslint:allow suppressions are not, and a
// directive two lines away does not suppress. The workload fixture covers
// the arrival-generator package that joined the set with the fleet model;
// the sim fixture covers the event core that joined with the calendar
// queue (a map-range or time.Now there must be flagged, the pure
// bucket-array walk must not).
func TestDeterministicPackage(t *testing.T) {
	atest.Run(t, "../testdata", simdeterminism.Analyzer,
		"itsim/internal/kernel", "itsim/internal/workload", "itsim/internal/sim")
}

// TestNonDeterministicPackage checks that outside the deterministic set the
// banned patterns pass freely, while directive hygiene (the empty-reason
// check) is still enforced everywhere. Asserted programmatically because
// the empty-reason diagnostic lands on the directive's own line, which
// cannot also carry a // want comment.
func TestNonDeterministicPackage(t *testing.T) {
	diags := atest.RunResult(t, "../testdata", simdeterminism.Analyzer, "itsim/cmd/clitool")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the empty-reason report: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "without a reason") {
		t.Errorf("unexpected diagnostic: %s", diags[0].Message)
	}
}
