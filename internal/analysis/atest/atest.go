// Package atest is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis/analysistest. The Go distribution vendors
// the go/analysis framework (which cmd/itslint builds on) but not
// analysistest or go/packages, and this repository builds offline, so the
// fixture-driver is reimplemented here on stdlib go/parser + go/types.
//
// It follows the analysistest conventions: fixtures live in a GOPATH-style
// tree (dir/src/<import/path>/*.go) and expected diagnostics are written as
// trailing comments of the form
//
//	broken()            // want "regexp" "another regexp"
//
// Every expectation must be matched by a diagnostic reported on the same
// line, and every diagnostic must match an expectation, else the test fails.
// Fixture packages may import each other (resolved from the tree) and the
// standard library (type-checked from GOROOT source, which works offline).
package atest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package and checks a's diagnostics against the
// // want expectations in its files. Fixture dependencies loaded from the
// tree are analyzed first (depth-first, memoized), so object and package
// facts exported on them are importable from the package under test —
// the in-process equivalent of go vet's .vetx fact files.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	s := newSession(dir)
	for _, path := range paths {
		pi, err := s.l.load(path)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, path, err)
			continue
		}
		diags := s.analyze(t, a, pi)
		check(t, a.Name, s.l.fset, pi, diags)
	}
}

// RunResult loads one fixture package and returns the raw diagnostics,
// for tests that assert on suppression counts, fact flow or suggested
// fixes rather than // want lines.
func RunResult(t *testing.T, dir string, a *analysis.Analyzer, path string) []analysis.Diagnostic {
	t.Helper()
	s := newSession(dir)
	pi, err := s.l.load(path)
	if err != nil {
		t.Fatalf("%s: loading fixture %s: %v", a.Name, path, err)
	}
	return s.analyze(t, a, pi)
}

// session carries the cross-package state of one Run/RunResult call: the
// loader plus the fact store shared by every package analyzed in it.
type session struct {
	l *loader
	// objFacts and pkgFacts store gob-encoded facts, keyed by the object
	// (or package) and the concrete fact type — the same keying the real
	// driver uses, with gob round-trips standing in for .vetx files so
	// non-serializable facts fail here too.
	objFacts map[objFactKey][]byte
	pkgFacts map[pkgFactKey][]byte
	// analyzed memoizes which fixture packages an analyzer already ran
	// on, per analyzer (Requires members run once per package too).
	analyzed map[*analysis.Analyzer]map[string]bool
	// results memoizes analyzer results per (analyzer, package).
	results map[*analysis.Analyzer]map[string]any
	// diags accumulates diagnostics per (analyzer, package) so that a
	// package analyzed early (as a dependency) keeps its diagnostics for
	// a later direct Run over the same session.
	diags map[*analysis.Analyzer]map[string][]analysis.Diagnostic
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

func newSession(dir string) *session {
	return &session{
		l:        newLoader(dir),
		objFacts: make(map[objFactKey][]byte),
		pkgFacts: make(map[pkgFactKey][]byte),
		analyzed: make(map[*analysis.Analyzer]map[string]bool),
		results:  make(map[*analysis.Analyzer]map[string]any),
		diags:    make(map[*analysis.Analyzer]map[string][]analysis.Diagnostic),
	}
}

type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset *token.FileSet
	dir  string
	std  types.Importer
	pkgs map[string]*pkgInfo
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		dir:  dir,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*pkgInfo),
	}
}

// load type-checks the fixture package at dir/src/<path>, resolving imports
// from the fixture tree first and the standard library otherwise.
func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	pdir := filepath.Join(l.dir, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(pdir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(pdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", pdir)
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if _, err := os.Stat(filepath.Join(l.dir, "src", filepath.FromSlash(ipath))); err == nil {
				pi, err := l.load(ipath)
				if err != nil {
					return nil, err
				}
				return pi.pkg, nil
			}
			return l.std.Import(ipath)
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	return pi, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// analyze executes a on pi — after executing it on every fixture-tree
// dependency of pi (depth-first), so facts exported on dependency objects
// are importable — and returns pi's diagnostics.
func (s *session) analyze(t *testing.T, a *analysis.Analyzer, pi *pkgInfo) []analysis.Diagnostic {
	t.Helper()
	s.ensure(t, a, pi)
	return s.diags[a][pi.pkg.Path()]
}

// ensure runs a (and, recursively, its Requires) on pi exactly once per
// session, dependencies first. Import order over pi.pkg.Imports() is
// deterministic for a fixed fixture, and the fixture trees are acyclic by
// construction (Go forbids import cycles).
func (s *session) ensure(t *testing.T, a *analysis.Analyzer, pi *pkgInfo) {
	t.Helper()
	path := pi.pkg.Path()
	if s.analyzed[a] == nil {
		s.analyzed[a] = make(map[string]bool)
	}
	if s.analyzed[a][path] {
		return
	}
	s.analyzed[a][path] = true
	for _, imp := range pi.pkg.Imports() {
		if dpi, ok := s.l.pkgs[imp.Path()]; ok {
			s.ensure(t, a, dpi)
		}
	}

	var diags []analysis.Diagnostic
	var exec func(a *analysis.Analyzer, collect bool) any
	exec = func(a *analysis.Analyzer, collect bool) any {
		if perPkg, ok := s.results[a]; ok {
			if r, ok := perPkg[path]; ok {
				return r
			}
		}
		resultOf := make(map[*analysis.Analyzer]any)
		for _, req := range a.Requires {
			resultOf[req] = exec(req, false)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       s.l.fset,
			Files:      pi.files,
			Pkg:        pi.pkg,
			TypesInfo:  pi.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
			ImportObjectFact:  s.importObjectFact,
			ExportObjectFact:  s.exportObjectFactFor(t, a, pi),
			ImportPackageFact: s.importPackageFact,
			ExportPackageFact: s.exportPackageFactFor(t, a, pi),
			AllObjectFacts:    s.allObjectFacts,
			AllPackageFacts:   s.allPackageFacts,
		}
		r, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s: Run failed on %s: %v", a.Name, path, err)
		}
		if s.results[a] == nil {
			s.results[a] = make(map[string]any)
		}
		s.results[a][path] = r
		return r
	}
	exec(a, true)
	if s.diags[a] == nil {
		s.diags[a] = make(map[string][]analysis.Diagnostic)
	}
	s.diags[a][path] = diags
}

// encodeFact gob-encodes a fact, mirroring the serialization the real vet
// driver applies between compilation units: facts that cannot survive gob
// fail in tests too.
func encodeFact(fact analysis.Fact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeFact(data []byte, into analysis.Fact) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(into)
}

func (s *session) importObjectFact(obj types.Object, fact analysis.Fact) bool {
	data, ok := s.objFacts[objFactKey{obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	if err := decodeFact(data, fact); err != nil {
		panic(fmt.Sprintf("atest: decoding object fact %T: %v", fact, err))
	}
	return true
}

func (s *session) exportObjectFactFor(t *testing.T, a *analysis.Analyzer, pi *pkgInfo) func(types.Object, analysis.Fact) {
	return func(obj types.Object, fact analysis.Fact) {
		if obj == nil || obj.Pkg() != pi.pkg {
			t.Fatalf("%s: ExportObjectFact on object %v outside current package %s", a.Name, obj, pi.pkg.Path())
		}
		data, err := encodeFact(fact)
		if err != nil {
			t.Fatalf("%s: encoding object fact %T: %v", a.Name, fact, err)
		}
		s.objFacts[objFactKey{obj, reflect.TypeOf(fact)}] = data
	}
}

func (s *session) importPackageFact(pkg *types.Package, fact analysis.Fact) bool {
	data, ok := s.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	if err := decodeFact(data, fact); err != nil {
		panic(fmt.Sprintf("atest: decoding package fact %T: %v", fact, err))
	}
	return true
}

func (s *session) exportPackageFactFor(t *testing.T, a *analysis.Analyzer, pi *pkgInfo) func(analysis.Fact) {
	return func(fact analysis.Fact) {
		data, err := encodeFact(fact)
		if err != nil {
			t.Fatalf("%s: encoding package fact %T: %v", a.Name, fact, err)
		}
		s.pkgFacts[pkgFactKey{pi.pkg, reflect.TypeOf(fact)}] = data
	}
}

func (s *session) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for k, data := range s.objFacts {
		fact := reflect.New(k.t.Elem()).Interface().(analysis.Fact)
		if err := decodeFact(data, fact); err != nil {
			panic(fmt.Sprintf("atest: decoding object fact %v: %v", k.t, err))
		}
		out = append(out, analysis.ObjectFact{Object: k.obj, Fact: fact})
	}
	return out
}

func (s *session) allPackageFacts() []analysis.PackageFact {
	var out []analysis.PackageFact
	for k, data := range s.pkgFacts {
		fact := reflect.New(k.t.Elem()).Interface().(analysis.Fact)
		if err := decodeFact(data, fact); err != nil {
			panic(fmt.Sprintf("atest: decoding package fact %v: %v", k.t, err))
		}
		out = append(out, analysis.PackageFact{Package: k.pkg, Fact: fact})
	}
	return out
}

// expectation is one // want regexp at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares diagnostics against the // want comments of the fixture.
func check(t *testing.T, name string, fset *token.FileSet, pi *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(text[i+len("// want "):]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: %s:%d: bad want regexp %q: %v", name, pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: %s:%d: unexpected diagnostic: %s", name, pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", name, w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the space-separated quoted regexps of a want comment:
// "..." (interpreted) or `...` (raw) strings.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return out
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, unq)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return out
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
