// Package atest is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis/analysistest. The Go distribution vendors
// the go/analysis framework (which cmd/itslint builds on) but not
// analysistest or go/packages, and this repository builds offline, so the
// fixture-driver is reimplemented here on stdlib go/parser + go/types.
//
// It follows the analysistest conventions: fixtures live in a GOPATH-style
// tree (dir/src/<import/path>/*.go) and expected diagnostics are written as
// trailing comments of the form
//
//	broken()            // want "regexp" "another regexp"
//
// Every expectation must be matched by a diagnostic reported on the same
// line, and every diagnostic must match an expectation, else the test fails.
// Fixture packages may import each other (resolved from the tree) and the
// standard library (type-checked from GOROOT source, which works offline).
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package and checks a's diagnostics against the
// // want expectations in its files.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(dir)
	for _, path := range paths {
		pi, err := l.load(path)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, path, err)
			continue
		}
		diags := runAnalyzer(t, a, l, pi)
		check(t, a.Name, l.fset, pi, diags)
	}
}

// RunResult loads one fixture package and returns the raw diagnostics,
// for tests that assert on suppression counts rather than // want lines.
func RunResult(t *testing.T, dir string, a *analysis.Analyzer, path string) []analysis.Diagnostic {
	t.Helper()
	l := newLoader(dir)
	pi, err := l.load(path)
	if err != nil {
		t.Fatalf("%s: loading fixture %s: %v", a.Name, path, err)
	}
	return runAnalyzer(t, a, l, pi)
}

type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset *token.FileSet
	dir  string
	std  types.Importer
	pkgs map[string]*pkgInfo
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		dir:  dir,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*pkgInfo),
	}
}

// load type-checks the fixture package at dir/src/<path>, resolving imports
// from the fixture tree first and the standard library otherwise.
func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	pdir := filepath.Join(l.dir, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(pdir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(pdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", pdir)
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if _, err := os.Stat(filepath.Join(l.dir, "src", filepath.FromSlash(ipath))); err == nil {
				pi, err := l.load(ipath)
				if err != nil {
					return nil, err
				}
				return pi.pkg, nil
			}
			return l.std.Import(ipath)
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	return pi, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runAnalyzer executes a (and, recursively, its Requires) on the package
// and collects the diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, l *loader, pi *pkgInfo) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var exec func(a *analysis.Analyzer, collect bool) any
	exec = func(a *analysis.Analyzer, collect bool) any {
		if r, ok := results[a]; ok {
			return r
		}
		resultOf := make(map[*analysis.Analyzer]any)
		for _, req := range a.Requires {
			resultOf[req] = exec(req, false)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      pi.files,
			Pkg:        pi.pkg,
			TypesInfo:  pi.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
			ImportObjectFact:  func(obj types.Object, fact analysis.Fact) bool { return false },
			ExportObjectFact:  func(obj types.Object, fact analysis.Fact) {},
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool { return false },
			ExportPackageFact: func(fact analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		r, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s: Run failed on %s: %v", a.Name, pi.pkg.Path(), err)
		}
		results[a] = r
		return r
	}
	exec(a, true)
	return diags
}

// expectation is one // want regexp at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares diagnostics against the // want comments of the fixture.
func check(t *testing.T, name string, fset *token.FileSet, pi *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(text[i+len("// want "):]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: %s:%d: bad want regexp %q: %v", name, pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: %s:%d: unexpected diagnostic: %s", name, pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", name, w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the space-separated quoted regexps of a want comment:
// "..." (interpreted) or `...` (raw) strings.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return out
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, unq)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return out
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
