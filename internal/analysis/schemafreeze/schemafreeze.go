// Package schemafreeze gives the serialized-summary schemas a layout-drift
// gate: an exported struct whose type declaration carries //itslint:frozen
// has its layout — field names, types, order and JSON tags — compared
// against the committed baseline in internal/analysis/testdata/frozen.json.
// Any drift (a field added, removed, renamed, retyped, reordered or
// retagged) without regenerating the baseline fails the lint, so schema
// changes to Summary, FleetSummary and friends are always a reviewed diff
// of frozen.json, never an accident. eventsink's omitempty rule protects
// the byte layout of old baselines; this pass protects the schema itself.
//
// Regenerate with `itslint freeze`: it drives the analyzer in freeze mode
// (-schemafreeze.freeze=<file>, each vet worker appends its package's
// records) and rewrites the baseline sorted.
package schemafreeze

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"itsim/internal/analysis/itslint"
)

// Analyzer is the schemafreeze pass.
var Analyzer = &analysis.Analyzer{
	Name: "schemafreeze",
	Doc: "compare //itslint:frozen struct layouts (field names, types, order, JSON tags) " +
		"against the committed frozen.json baseline; regenerate with `itslint freeze`",
	Run: run,
}

// BaselineRel is the repo-relative path of the committed baseline.
const BaselineRel = "internal/analysis/testdata/frozen.json"

// The flag values live in package variables (not looked up through
// Analyzer) so run does not reference Analyzer — that would be an
// initialization cycle.
var (
	baselineFlag string
	freezeFlag   string
)

func init() {
	Analyzer.Flags.StringVar(&baselineFlag, "baseline", "",
		"path to the frozen-schema baseline (default: "+BaselineRel+" under the module root)")
	Analyzer.Flags.StringVar(&freezeFlag, "freeze", "",
		"freeze mode: append this package's frozen-struct records to the named file instead of checking")
}

// Record is one frozen struct's layout, as serialized into the baseline
// and the freeze-mode capture file.
type Record struct {
	Name   string `json:"name"`   // fully qualified: importpath.StructName
	Layout string `json:"layout"` // canonical field descriptor
}

func run(pass *analysis.Pass) (any, error) {
	recs := collect(pass)
	if len(recs) == 0 {
		return nil, nil
	}
	if freezePath := freezeFlag; freezePath != "" {
		return nil, appendRecords(freezePath, recs)
	}
	baseline, path, err := loadBaseline(pass, recs[0].pos)
	if err != nil {
		return nil, err
	}
	al := itslint.Scan(pass)
	for _, r := range recs {
		want, ok := baseline[r.Name]
		switch {
		case !ok:
			al.Report(r.pos,
				"frozen struct %s is not in the frozen-schema baseline %s: run `itslint freeze` and commit the result",
				r.Name, path)
		case want != r.Layout:
			al.Report(r.pos,
				"frozen struct %s drifted from the committed baseline: have [%s], baseline [%s]; "+
					"if the schema change is intended, run `itslint freeze` and commit the regenerated %s",
				r.Name, r.Layout, want, path)
		}
	}
	al.Flush("schemafreeze")
	return nil, nil
}

type posRecord struct {
	Record
	pos token.Pos
}

// collect returns the package's frozen-struct records in file order.
func collect(pass *analysis.Pass) []posRecord {
	var out []posRecord
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || !itslint.IsFrozen(gd.Doc, ts.Doc) {
					continue
				}
				out = append(out, posRecord{
					Record: Record{
						Name:   pass.Pkg.Path() + "." + ts.Name.Name,
						Layout: Layout(pass, st),
					},
					pos: ts.Pos(),
				})
			}
		}
	}
	return out
}

// Layout renders the canonical field descriptor: one `Name Type json:"tag"`
// entry per field in declaration order, joined with "; ". Unexported fields
// participate too — they shift the reflect-visible layout and gob wire
// order even when encoding/json skips them.
func Layout(pass *analysis.Pass, st *ast.StructType) string {
	var fields []string
	for _, field := range st.Fields.List {
		typ := pass.TypesInfo.TypeOf(field.Type)
		typStr := "?"
		if typ != nil {
			typStr = typ.String()
		}
		tag := ""
		if field.Tag != nil {
			if unq, err := unquoteTag(field.Tag.Value); err == nil {
				if jt, ok := reflect.StructTag(unq).Lookup("json"); ok {
					tag = fmt.Sprintf(" json:%q", jt)
				}
			}
		}
		if len(field.Names) == 0 {
			// Embedded field: the type is the name.
			fields = append(fields, typStr+tag)
			continue
		}
		for _, name := range field.Names {
			fields = append(fields, name.Name+" "+typStr+tag)
		}
	}
	return strings.Join(fields, "; ")
}

func unquoteTag(raw string) (string, error) {
	if len(raw) >= 2 && (raw[0] == '`' || raw[0] == '"') {
		var out string
		_, err := fmt.Sscanf(raw, "%q", &out)
		if err == nil {
			return out, nil
		}
		if raw[0] == '`' {
			return raw[1 : len(raw)-1], nil
		}
		return "", err
	}
	return raw, nil
}

// appendRecords writes the package's records to the freeze capture file,
// one JSON object per line (append-only, so concurrent vet workers
// interleave whole records like the suppression summary).
func appendRecords(path string, recs []posRecord) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, r := range recs {
		line, err := json.Marshal(r.Record)
		if err != nil {
			return err
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// MergeCapture parses a freeze capture (JSON lines) into the baseline map,
// rejecting conflicting duplicates (the same struct frozen with two
// different layouts can only be a build-setup bug).
func MergeCapture(data []byte) (map[string]string, error) {
	out := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("bad capture line %q: %v", line, err)
		}
		if prev, ok := out[r.Name]; ok && prev != r.Layout {
			return nil, fmt.Errorf("conflicting layouts captured for %s: [%s] vs [%s]", r.Name, prev, r.Layout)
		}
		out[r.Name] = r.Layout
	}
	return out, nil
}

// FormatBaseline renders the baseline deterministically (sorted keys,
// one record per line) for committing.
func FormatBaseline(baseline map[string]string) []byte {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		key, _ := json.Marshal(name)
		val, _ := json.Marshal(baseline[name])
		fmt.Fprintf(&b, "  %s: %s", key, val)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

// loadBaseline reads the baseline: the -schemafreeze.baseline flag if set,
// else BaselineRel under the module root found by walking up from the
// package's first frozen struct. A missing file is an empty baseline (every
// frozen struct then reports as unregistered).
func loadBaseline(pass *analysis.Pass, at token.Pos) (map[string]string, string, error) {
	path := baselineFlag
	if path == "" {
		dir := filepath.Dir(pass.Fset.Position(at).Filename)
		root := findModuleRoot(dir)
		if root == "" {
			return nil, "", fmt.Errorf("schemafreeze: cannot locate module root above %s (pass -schemafreeze.baseline)", dir)
		}
		path = filepath.Join(root, filepath.FromSlash(BaselineRel))
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]string{}, path, nil
	}
	if err != nil {
		return nil, "", err
	}
	var baseline map[string]string
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, "", fmt.Errorf("schemafreeze: parsing baseline %s: %v", path, err)
	}
	return baseline, path, nil
}

func findModuleRoot(dir string) string {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
