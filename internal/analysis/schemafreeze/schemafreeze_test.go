package schemafreeze_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"itsim/internal/analysis/atest"
	"itsim/internal/analysis/schemafreeze"
)

// setFlag sets an analyzer flag for the duration of the test.
func setFlag(t *testing.T, name, value string) {
	t.Helper()
	if err := schemafreeze.Analyzer.Flags.Set(name, value); err != nil {
		t.Fatalf("setting -%s: %v", name, err)
	}
	t.Cleanup(func() { schemafreeze.Analyzer.Flags.Set(name, "") })
}

// TestSchemaFreeze is the drift gate's both-polarity (and negative
// acceptance) test: a frozen struct matching the baseline passes, a field
// added without regenerating the baseline fails, an unregistered frozen
// struct fails, and an unfrozen struct is ignored.
func TestSchemaFreeze(t *testing.T) {
	setFlag(t, "baseline", filepath.Join("..", "testdata", "frozen_fixture.json"))
	atest.Run(t, "../testdata", schemafreeze.Analyzer, "itsim/internal/policy")
}

// TestFreezeMode captures the fixture package's layouts and round-trips
// them through MergeCapture/FormatBaseline: the regenerated baseline must
// contain every frozen struct with its current layout, at which point a
// re-check against it is clean.
func TestFreezeMode(t *testing.T) {
	capture := filepath.Join(t.TempDir(), "capture.jsonl")
	setFlag(t, "freeze", capture)
	if diags := atest.RunResult(t, "../testdata", schemafreeze.Analyzer, "itsim/internal/policy"); len(diags) != 0 {
		t.Fatalf("freeze mode must not report diagnostics, got %+v", diags)
	}
	schemafreeze.Analyzer.Flags.Set("freeze", "")

	data, err := os.ReadFile(capture)
	if err != nil {
		t.Fatalf("reading capture: %v", err)
	}
	baseline, err := schemafreeze.MergeCapture(data)
	if err != nil {
		t.Fatalf("merging capture: %v", err)
	}
	for _, name := range []string{
		"itsim/internal/policy.Frozen",
		"itsim/internal/policy.Drifted",
		"itsim/internal/policy.Unregistered",
	} {
		if _, ok := baseline[name]; !ok {
			t.Errorf("capture missing %s: %v", name, baseline)
		}
	}
	if _, ok := baseline["itsim/internal/policy.Free"]; ok {
		t.Errorf("unfrozen struct captured: %v", baseline)
	}
	if got := baseline["itsim/internal/policy.Frozen"]; got != `Name string json:"name"; Val uint64 json:"val"` {
		t.Errorf("unexpected layout for Frozen: %q", got)
	}

	// The regenerated baseline silences the checker.
	regenerated := filepath.Join(t.TempDir(), "frozen.json")
	if err := os.WriteFile(regenerated, schemafreeze.FormatBaseline(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	setFlag(t, "baseline", regenerated)
	if diags := atest.RunResult(t, "../testdata", schemafreeze.Analyzer, "itsim/internal/policy"); len(diags) != 0 {
		t.Fatalf("regenerated baseline must be clean, got %+v", diags)
	}
}

// TestMergeCaptureConflict rejects two different layouts for one struct.
func TestMergeCaptureConflict(t *testing.T) {
	_, err := schemafreeze.MergeCapture([]byte(
		`{"name":"p.S","layout":"A int"}` + "\n" + `{"name":"p.S","layout":"B int"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "conflicting layouts") {
		t.Fatalf("want conflicting-layouts error, got %v", err)
	}
}
