// Fixture for the gospawn analyzer: this package path is in the
// deterministic set, so every form of host concurrency is flagged.
package sched

func spawn(f func()) {
	go f() // want `go statement in deterministic core package itsim/internal/sched`
}

func send(c chan int) {
	c <- 1 // want `channel send in deterministic core package`
}

func recv(c chan int) int {
	return <-c // want `channel receive in deterministic core package`
}

func sel() {
	select { // want `select statement in deterministic core package`
	default:
	}
}

func drain(c chan int) int {
	n := 0
	for range c { // want `range over channel in deterministic core package`
		n++
	}
	return n
}

func mk() chan int {
	return make(chan int) // want `make\(chan\) in deterministic core package`
}

func shut(c chan int) {
	close(c) // want `close of channel in deterministic core package`
}

// allowedSpawn demonstrates a justified suppression: counted, not reported.
func allowedSpawn(f func()) {
	go f() //itslint:allow fixture-sanctioned spawn with a reason
}

// plainLoop exercises the non-channel paths that must stay clean.
func plainLoop(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
