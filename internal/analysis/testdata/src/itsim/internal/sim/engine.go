package sim

// Engine is the fixture event queue: the Schedule family's first argument
// is the insertion key entropyflow treats as a determinism-critical sink.
// Pure declarations — clean for simdeterminism and vtime, which also run
// over this fixture package.
type Engine struct {
	now Time
}

// Handler is the fixture event-handler interface.
type Handler interface {
	Fire(at Time)
}

// Schedule enqueues fn at the virtual instant at.
func (e *Engine) Schedule(at Time, fn func()) {
	_ = at
	_ = fn
}

// ScheduleHandler enqueues h at the virtual instant at.
func (e *Engine) ScheduleHandler(at Time, h Handler) {
	_ = at
	_ = h
}

// ScheduleAfter enqueues fn delay after the current instant.
func (e *Engine) ScheduleAfter(delay Time, fn func()) {
	_ = delay
	_ = fn
}
