// Package sim is a minimal fixture stand-in for the real virtual-time
// package: just enough for the vtime analyzer to recognize the Time type.
package sim

// Time is a virtual timestamp in nanoseconds (fixture copy).
type Time int64

// Fixture copies of the duration constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)
