// Package sim is a fixture stand-in for the real virtual-time package: the
// Time type for the vtime analyzer, plus event-core-shaped code for the
// simdeterminism analyzer — sim is in the deterministic set (the calendar
// queue's same-time ordering is the determinism anchor), so wall clocks and
// map ranges here must be flagged while the pure bucket-array walk passes.
package sim

import "time"

// Time is a virtual timestamp in nanoseconds (fixture copy).
type Time int64

// Fixture copies of the duration constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// event is a fixture calendar-queue entry.
type event struct {
	at  Time
	seq uint64
}

// engine is a fixture event core: a bucket array plus a free list, the
// shape of the real calendar queue.
type engine struct {
	buckets [][]*event
	byID    map[uint64]*event
	free    []*event
}

// wallStamp is the violation an event core must never contain: stamping
// events from the host clock instead of virtual time.
func (e *engine) wallStamp() Time {
	return Time(time.Now().UnixNano()) // want `call to time\.Now in deterministic package itsim/internal/sim`
}

// drainByID iterates a map: event firing order would depend on Go's map
// hashing, breaking same-time FIFO — flagged.
func (e *engine) drainByID() []*event {
	var out []*event
	for _, ev := range e.byID { // want `range over map map\[uint64\]\*itsim/internal/sim\.event in deterministic package`
		out = append(out, ev)
	}
	return out
}

// earliest is the clean polarity: the calendar-queue day walk is pure
// slice iteration with an explicit (at, seq) tie-break — no diagnostics.
func (e *engine) earliest() *event {
	var best *event
	for _, b := range e.buckets {
		for _, ev := range b {
			if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best = ev
			}
		}
	}
	return best
}

// recycle is the clean polarity for the pool: free lists are plain slices,
// nothing to suppress.
func (e *engine) recycle(ev *event) {
	*ev = event{}
	e.free = append(e.free, ev)
}
