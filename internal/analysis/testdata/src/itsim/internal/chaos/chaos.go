// Package chaos is the deterministic-set consumer fixture for entropyflow:
// every function here is clean for simdeterminism (no direct map range,
// wall clock or global rand — a test asserts that), yet the leak variants
// launder nondeterminism through the order→wrap helper chain or introduce
// it via unsafe/select, and entropyflow must catch it at the sink.
package chaos

import (
	"unsafe"

	"itsim/internal/lib/wrap"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/prng"
	"itsim/internal/sim"
)

// scheduleLeak keys an event on a value two packages away from a map range:
// the regression the fact propagation exists for.
func scheduleLeak(e *sim.Engine, m map[string]int) {
	key := wrap.FirstKey(m)
	e.Schedule(sim.Time(len(key)), func() {}) // want `map iteration order \(via itsim/internal/lib/order\.Keys\) flows into event-queue insertion key in deterministic package itsim/internal/chaos`
}

// scheduleSorted is the clean polarity: the helper chain sanitized the
// order with a sort, so no fact and no diagnostic.
func scheduleSorted(e *sim.Engine, m map[string]int) {
	key := wrap.FirstSorted(m)
	e.Schedule(sim.Time(len(key)), func() {})
}

// seedLeak derives a PRNG seed from map order: stream draws reshuffle
// across runs even though every individual draw is seeded.
func seedLeak(m map[string]int) *prng.Source {
	return prng.New(uint64(len(wrap.FirstKey(m)))) // want `map iteration order \(via itsim/internal/lib/order\.Keys\) flows into PRNG seed`
}

// seedMixed is the clean polarity: a constant-derived seed through the
// documented mixer.
func seedMixed(id int) *prng.Source {
	return prng.New(prng.Mix(0x1234, uint64(id)))
}

// emitLeak stamps an obs event field from laundered map order.
func emitLeak(m map[string]int) obs.Event {
	return obs.Event{Type: obs.Type(len(wrap.FirstKey(m)))} // want `map iteration order \(via itsim/internal/lib/order\.Keys\) flows into obs event field`
}

// record forwards its parameter into a frozen metrics summary field: no
// diagnostic here (v may be deterministic), but the ParamEscapesToSink fact
// makes every caller's argument a sink.
func record(s *metrics.Summary, v float64) {
	s.NewGauge = v
}

// recordLeak passes laundered entropy into record's escaping parameter:
// caught through the intra-package fact, one hop above the field write.
func recordLeak(s *metrics.Summary, m map[string]int) {
	record(s, float64(len(wrap.FirstKey(m)))) // want `map iteration order \(via itsim/internal/lib/order\.Keys\) flows into metrics summary field via itsim/internal/chaos\.record`
}

// addrLeak keys an event on a pointer address: ASLR reshuffles it per run.
func addrLeak(e *sim.Engine, p *int) {
	e.Schedule(sim.Time(uintptr(unsafe.Pointer(p))), func() {}) // want `pointer-address entropy \(unsafe conversion\) flows into event-queue insertion key`
}

// selectLeak keys an event on which channel won the select race.
func selectLeak(e *sim.Engine, a, b chan int) {
	var v int
	select {
	case v = <-a:
	case v = <-b:
	}
	e.Schedule(sim.Time(v), func() {}) // want `select arrival order flows into event-queue insertion key`
}

// allowedLeak carries a justified suppression: counted, not reported.
func allowedLeak(e *sim.Engine, m map[string]int) {
	key := wrap.FirstKey(m)
	//itslint:allow fixture: key only pads the demo, order-insensitive
	e.Schedule(sim.Time(len(key)), func() {})
}
