// Fixture for the eventsink summary-layout rule: fields added to the
// serialized summary structs after the seed must carry omitempty (or an
// explicit json:"-") so unexercised features keep the historical byte
// layout committed baselines diff against.
package metrics

// Summary is the fixture copy of the serialized run summary. Policy is in
// the frozen seed baseline; the other fields exercise the layout rule.
type Summary struct {
	Policy     string  `json:"policy"`
	NewCounter uint64  `json:"new_counter"` // want `field Summary\.NewCounter is not in the seed summary layout`
	NewGauge   float64 `json:"new_gauge,omitempty"`
	Skipped    int     `json:"-"`
	Untagged   bool    // want `field Summary\.Untagged is not in the seed summary layout`
	hidden     int
	Allowed    uint64 `json:"allowed_total"` //itslint:allow fixture-sanctioned layout change with a reason
}

// Core is also a tracked struct: ID is baseline, the addition is clean
// because it carries omitempty.
type Core struct {
	ID        int    `json:"id"`
	NewDetail uint64 `json:"new_detail,omitempty"`
}

// Other is not a tracked summary struct: layout-free.
type Other struct {
	Whatever int `json:"whatever"`
}

func use(s Summary) int { return s.hidden }

// ChaosStats is tracked with its whole introduction-era field set frozen:
// baseline fields need no omitempty, post-introduction growth does.
type ChaosStats struct {
	Crashes  uint64 `json:"crashes"`
	Rehomed  uint64 `json:"rehomed"`
	NewAxis  uint64 `json:"new_axis"` // want `field ChaosStats\.NewAxis is not in the seed summary layout`
	NewAxis2 uint64 `json:"new_axis2,omitempty"`
}
