// Fixture for the simdeterminism analyzer on the workload package: the
// open-loop arrival generators joined the deterministic set, so wall
// clocks, global rand, env reads and map-order iteration are flagged
// there like everywhere else in the simulator core.
package workload

import (
	"math/rand"
	"os"
	"time"
)

// profiles is a fixture benchmark table.
type profiles struct{ byName map[string]uint64 }

// jitteredArrival stamps arrivals off the host clock: flagged — arrival
// times must be a pure function of the seed.
func jitteredArrival() time.Duration {
	t0 := time.Now()      // want `call to time\.Now in deterministic package itsim/internal/workload`
	return time.Since(t0) // want `call to time\.Since in deterministic package itsim/internal/workload`
}

// globalDraw thins arrivals through the process-global rand: flagged.
func globalDraw() float64 {
	return rand.Float64() // want `call to math/rand\.Float64 in deterministic package itsim/internal/workload`
}

// seededDraw uses an explicit seeded source: deterministic, clean.
func seededDraw() float64 {
	r := rand.New(rand.NewSource(7))
	return r.Float64()
}

// envRate reads the arrival rate from the environment: flagged.
func envRate() string {
	return os.Getenv("ITS_RATE") // want `call to os\.Getenv in deterministic package itsim/internal/workload`
}

// sumAll iterates the profile map in host order: flagged — tenant spec
// order, not map order, is the deterministic enumeration.
func sumAll(p profiles) uint64 {
	var total uint64
	for _, seed := range p.byName { // want `range over map map\[string\]uint64 in deterministic package`
		total += seed
	}
	return total
}

// keyedLookup accesses the map by key only: clean.
func keyedLookup(p profiles, name string) uint64 {
	return p.byName[name]
}

// allowedSum demonstrates a justified suppression: counted, not reported.
func allowedSum(p profiles) uint64 {
	var total uint64
	for _, seed := range p.byName { //itslint:allow order-insensitive sum over seeds
		total += seed
	}
	return total
}
