// Package prng is the fixture stand-in for the real deterministic PRNG:
// New's seed argument is a determinism-critical sink for entropyflow, and
// its callers are audited by seedflow.
package prng

// Source is the fixture PRNG state.
type Source struct {
	s uint64
}

// New returns a fixture source seeded with seed.
func New(seed uint64) *Source {
	return &Source{s: seed}
}

// Mix folds the parts into one seed (fixture copy of the documented
// splitmix64 mixer).
//
//itslint:seedmixer
func Mix(parts ...uint64) uint64 {
	var out uint64
	for _, p := range parts {
		out ^= p + 0x9E3779B97F4A7C15
	}
	return out
}

// Uint64 draws the next value.
func (s *Source) Uint64() uint64 {
	s.s += 0x9E3779B97F4A7C15
	return s.s
}
