// Fixture for the //itslint:allow directive machinery, asserted
// programmatically (atest.RunResult) because the empty-reason diagnostic
// lands on the directive's own line, where a trailing // want comment
// cannot coexist with the directive.
package storage

type table struct{ rows map[int]int }

// count carries a justified suppression: the map-range finding is absorbed
// and counted toward the multichecker summary.
func count(t table) int {
	n := 0
	for range t.rows { //itslint:allow pure count; iteration order cannot matter
		n++
	}
	return n
}

// unjustified carries an empty-reason directive: the directive itself is
// reported, and the violation underneath is NOT suppressed.
func unjustified(t table) int {
	n := 0
	//itslint:allow
	for range t.rows {
		n++
	}
	return n
}

// lookalike carries a comment that merely shares the prefix: not a
// directive, no suppression, no empty-reason report.
func lookalike(t table) int {
	n := 0
	for range t.rows { //itslint:allowance is not our directive
		n++
	}
	return n
}
