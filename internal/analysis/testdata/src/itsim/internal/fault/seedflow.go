// Package fault is the seedflow fixture: every sanctioned seed shape in
// one column, every diagnostic shape in the other, plus a forwarder whose
// SeedArg fact moves the check to the caller's argument.
package fault

import "itsim/internal/prng"

// axisTweak is a named tweak constant — the XOR/multiply operand the
// sanctioned shapes are built from.
const axisTweak uint64 = 0x51afd54fb7f5c9da

// newStream forwards its seed parameter into the constructor unchanged:
// legal here (pass-through), and the SeedArg fact makes its callers' seed
// arguments subject to the shape check.
func newStream(rate float64, seed uint64) *prng.Source {
	_ = rate
	return prng.New(seed)
}

// xorChain is the canonical sanctioned derivation.
func xorChain(base uint64, id int) *prng.Source {
	return prng.New(base ^ axisTweak ^ uint64(id+1)*axisTweak)
}

// mixed derives through the documented mixer.
func mixed(base uint64, id int) *prng.Source {
	return prng.New(prng.Mix(base, uint64(id)))
}

// namedPassThrough hands a named value straight to the constructor.
func namedPassThrough(cfg struct{ Seed uint64 }) *prng.Source {
	return prng.New(cfg.Seed)
}

// rawLiteral builds a stream from a bare literal.
func rawLiteral() *prng.Source {
	return prng.New(42) // want `raw literal PRNG seed for New in deterministic package itsim/internal/fault`
}

// bareAdd is the collision-prone id+seed shape.
func bareAdd(base uint64, id int) *prng.Source {
	return prng.New(base + uint64(id)) // want `bare "\+" arithmetic in PRNG seed for New`
}

// bareAddConverted hides the addition inside a transparent conversion.
func bareAddConverted(base int, id int) *prng.Source {
	return prng.New(uint64(base + id)) // want `bare "\+" arithmetic in PRNG seed for New`
}

// forwardedAdd reaches the constructor through the forwarder: the SeedArg
// fact lands the same diagnostic on the caller's argument.
func forwardedAdd(base uint64, id int) *prng.Source {
	return newStream(0.5, base+uint64(id)) // want `bare "\+" arithmetic in PRNG seed for newStream`
}

// reused gives two axes the same stream.
func reused(base uint64) (*prng.Source, *prng.Source) {
	a := prng.New(base ^ axisTweak)
	b := prng.New(base ^ axisTweak) // want `reuses an earlier stream's seed expression`
	return a, b
}

// distinctTweaks is the clean polarity of reuse: per-axis tweak multiplies.
func distinctTweaks(base uint64) (*prng.Source, *prng.Source) {
	return prng.New(base ^ axisTweak), prng.New(base ^ 3*axisTweak)
}

// allowedRaw carries a justified suppression: counted, not reported.
func allowedRaw() *prng.Source {
	//itslint:allow fixture: demo stream, correlation harmless
	return prng.New(7)
}
