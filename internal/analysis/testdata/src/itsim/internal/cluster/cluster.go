// Fixture for the eventsink cluster-exhaustiveness rule: the fleet
// coordinator consumes the obs event stream like replay does, so any
// switch over the obs event discriminator — in any function — must handle
// every kind or default explicitly.
package cluster

import "itsim/internal/obs"

// routeClean handles every kind explicitly: clean.
func routeClean(ev obs.Event) int {
	switch ev.Type {
	case obs.EvA:
		return 1
	case obs.EvB:
		return 2
	case obs.EvC:
		return 3
	case obs.EvD:
		return 4
	}
	return 0
}

// routeDefaulted drops the rest through an explicit default — a deliberate
// act, so it is clean.
func routeDefaulted(ev obs.Event) int {
	switch ev.Type {
	case obs.EvA:
		return 1
	default:
		return 0
	}
}

// routeLeaky silently ignores EvC: flagged even though it is not a Write
// method.
func routeLeaky(ev obs.Event) int {
	switch ev.Type { // want `cluster switch does not handle event kinds EvC, EvD`
	case obs.EvA:
		return 1
	case obs.EvB:
		return 2
	}
	return 0
}

// coordinator methods are covered too.
type coordinator struct{ n int }

func (c *coordinator) observe(ev obs.Event) {
	switch ev.Type { // want `cluster switch does not handle event kinds EvB, EvC, EvD`
	case obs.EvA:
		c.n++
	}
}

// notEventSwitch switches over a machine id, not an event kind: ignored.
func notEventSwitch(machine int) int {
	switch machine {
	case 0:
		return 1
	}
	return 0
}

// allowedGap suppresses the gap with a justification: counted, not
// reported.
func allowedGap(ev obs.Event) int {
	switch ev.Type { //itslint:allow fixture: only EvA reaches the router
	case obs.EvA:
		return 1
	}
	return 0
}
