// Fixture for the gospawn allowlist: itsim/internal/core is the
// host-parallel batch layer, and its sanctioned entry points (RunGrid,
// RunSensitivity, RunSpinSweep and the shared runJobs helper) may use
// goroutines and channels freely — everything else in the package may not.
package core

// RunGrid is a sanctioned host-parallel entry point: clean despite the
// goroutines and channels.
func RunGrid(jobs []func()) {
	done := make(chan struct{})
	for _, j := range jobs {
		j := j
		go func() {
			j()
			done <- struct{}{}
		}()
	}
	for range jobs {
		<-done
	}
	close(done)
}

// runJobs is the shared worker-fanout helper, also sanctioned.
func runJobs(n int, f func(int)) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) { f(i); done <- struct{}{} }(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// stray is NOT on the allowlist: host concurrency outside the sanctioned
// entry points is flagged even in this package.
func stray(f func()) {
	go f() // want `go statement in deterministic core package itsim/internal/core`
}
