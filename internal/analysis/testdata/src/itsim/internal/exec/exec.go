// Fixture for the vtime analyzer: unit-confusion patterns around the
// virtual-time type itsim/internal/sim.Time.
package exec

import "itsim/internal/sim"

func badSquare(a, b sim.Time) sim.Time {
	return a * b // want `multiplying two virtual-time values`
}

func badAdd(t sim.Time, bytes int) sim.Time {
	return t + sim.Time(bytes) // want `virtual-time arithmetic adds sim\.Time\(bytes\)`
}

func badSub(t sim.Time, cycles uint64) sim.Time {
	return t - sim.Time(cycles) // want `virtual-time arithmetic adds sim\.Time\(cycles\)`
}

func badCompare(t sim.Time, lines int64) bool {
	return t < sim.Time(lines) // want `virtual-time arithmetic compares sim\.Time\(lines\)`
}

// scaleByCount is the sanctioned scaling idiom: the explicit conversion
// marks the operand as a scalar count, so the MUL rule does not fire.
func scaleByCount(cost sim.Time, n int) sim.Time {
	return cost * sim.Time(n)
}

// constOffset adds a compile-time-constant duration: clean.
func constOffset(t sim.Time) sim.Time {
	return t + 5*sim.Millisecond
}

// floatScale converts a float product with a float64(span) factor: the
// sanctioned fractional-scaling idiom, exempt from the fresh-conversion
// rule because the factor carries the time units.
func floatScale(t sim.Time, frac float64, span sim.Time) sim.Time {
	return t + sim.Time(frac*float64(span))
}

// multScale is the chaos/resilience multiplier shape (float64(t) * mult,
// duration first): also sanctioned, no allow-comment needed.
func multScale(t, span sim.Time, mult float64) sim.Time {
	return t + sim.Time(float64(span)*mult)
}

// badFloatAdd converts a unitless float straight into time arithmetic —
// no factor carries units, so this is the float flavour of the
// count-as-nanoseconds bug.
func badFloatAdd(t sim.Time, x float64) sim.Time {
	return t + sim.Time(x) // want `virtual-time arithmetic adds sim\.Time\(x\): the converted float carries no time units`
}

// badFloatProduct multiplies two unitless floats: still no units, still
// flagged even though it is a product.
func badFloatProduct(t sim.Time, a, b float64) bool {
	return t < sim.Time(a*b) // want `virtual-time arithmetic compares sim\.Time\(…\): the converted float carries no time units`
}

// RunUntil is on the analyzer's exempt list for this package: it IS the
// instructions→nanoseconds rate boundary, so the conversion is clean here.
func RunUntil(t sim.Time, instCarry, instPerNs uint64) sim.Time {
	return t + sim.Time(instCarry/instPerNs)
}

// allowedAdd demonstrates a justified suppression: counted, not reported.
func allowedAdd(t sim.Time, bytes int) sim.Time {
	return t + sim.Time(bytes) //itslint:allow fixture-sanctioned unit mix with a reason
}

// timeSum adds two genuine timestamps/durations: clean.
func timeSum(t, d sim.Time) sim.Time {
	return t + d
}
