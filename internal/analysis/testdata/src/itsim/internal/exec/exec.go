// Fixture for the vtime analyzer: unit-confusion patterns around the
// virtual-time type itsim/internal/sim.Time.
package exec

import "itsim/internal/sim"

func badSquare(a, b sim.Time) sim.Time {
	return a * b // want `multiplying two virtual-time values`
}

func badAdd(t sim.Time, bytes int) sim.Time {
	return t + sim.Time(bytes) // want `virtual-time arithmetic adds sim\.Time\(bytes\)`
}

func badSub(t sim.Time, cycles uint64) sim.Time {
	return t - sim.Time(cycles) // want `virtual-time arithmetic adds sim\.Time\(cycles\)`
}

func badCompare(t sim.Time, lines int64) bool {
	return t < sim.Time(lines) // want `virtual-time arithmetic compares sim\.Time\(lines\)`
}

// scaleByCount is the sanctioned scaling idiom: the explicit conversion
// marks the operand as a scalar count, so the MUL rule does not fire.
func scaleByCount(cost sim.Time, n int) sim.Time {
	return cost * sim.Time(n)
}

// constOffset adds a compile-time-constant duration: clean.
func constOffset(t sim.Time) sim.Time {
	return t + 5*sim.Millisecond
}

// floatScale converts a float product: the sanctioned fractional-scaling
// idiom, exempt from the fresh-conversion rule.
func floatScale(t sim.Time, frac float64, span sim.Time) sim.Time {
	return t + sim.Time(frac*float64(span))
}

// RunUntil is on the analyzer's exempt list for this package: it IS the
// instructions→nanoseconds rate boundary, so the conversion is clean here.
func RunUntil(t sim.Time, instCarry, instPerNs uint64) sim.Time {
	return t + sim.Time(instCarry/instPerNs)
}

// allowedAdd demonstrates a justified suppression: counted, not reported.
func allowedAdd(t sim.Time, bytes int) sim.Time {
	return t + sim.Time(bytes) //itslint:allow fixture-sanctioned unit mix with a reason
}

// timeSum adds two genuine timestamps/durations: clean.
func timeSum(t, d sim.Time) sim.Time {
	return t + d
}
