// Fixture for the eventsink replay-exhaustiveness rule: in the replay
// package any switch over the obs event discriminator — in any function,
// not just Write methods — must handle every kind or default explicitly.
package replay

import "itsim/internal/obs"

// foldClean handles every kind explicitly: clean.
func foldClean(ev obs.Event) int {
	switch ev.Type {
	case obs.EvA:
		return 1
	case obs.EvB:
		return 2
	case obs.EvC:
		return 3
	case obs.EvD:
		return 4
	}
	return 0
}

// foldDefaulted drops the rest through an explicit default — a deliberate
// act, so it is clean.
func foldDefaulted(ev obs.Event) int {
	switch ev.Type {
	case obs.EvA:
		return 1
	default:
		return 0
	}
}

// foldLeaky silently ignores EvC: flagged even though it is not a Write
// method.
func foldLeaky(ev obs.Event) int {
	switch ev.Type { // want `replay switch does not handle event kinds EvC, EvD`
	case obs.EvA:
		return 1
	case obs.EvB:
		return 2
	}
	return 0
}

// method receivers are covered too.
type folder struct{ n int }

func (f *folder) fold(ev obs.Event) {
	switch ev.Type { // want `replay switch does not handle event kinds EvB, EvC, EvD`
	case obs.EvA:
		f.n++
	}
}

// notEventSwitch switches over something else entirely: ignored.
func notEventSwitch(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// allowedGap suppresses the gap with a justification: counted, not
// reported.
func allowedGap(ev obs.Event) int {
	switch ev.Type { //itslint:allow fixture: only EvA matters here
	case obs.EvA:
		return 1
	}
	return 0
}
