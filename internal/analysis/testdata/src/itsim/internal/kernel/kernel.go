// Fixture for the simdeterminism analyzer: this package path is in the
// deterministic set, so every nondeterminism source below must be flagged
// unless a justified //itslint:allow covers it.
package kernel

import (
	"math/rand"
	"os"
	"time"
)

// Stats is a fixture counter table.
type Stats struct{ counts map[string]uint64 }

func wallClock() time.Duration {
	start := time.Now()      // want `call to time\.Now in deterministic package itsim/internal/kernel`
	return time.Since(start) // want `call to time\.Since in deterministic package itsim/internal/kernel`
}

func globalRand() int {
	return rand.Intn(10) // want `call to math/rand\.Intn in deterministic package itsim/internal/kernel`
}

// seededRand draws from an explicit seeded source: deterministic, clean.
func seededRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func envDependent() string {
	return os.Getenv("ITS_MODE") // want `call to os\.Getenv in deterministic package itsim/internal/kernel`
}

func mapOrder(s Stats) uint64 {
	var total uint64
	for _, n := range s.counts { // want `range over map map\[string\]uint64 in deterministic package`
		total += n
	}
	return total
}

// allowedFold demonstrates a justified suppression: counted, not reported.
func allowedFold(s Stats) uint64 {
	var total uint64
	for _, n := range s.counts { //itslint:allow order-insensitive sum over counters
		total += n
	}
	return total
}

// wrongLine demonstrates that a directive two lines away does not suppress:
// a directive covers its own line and the one below, nothing further.
func wrongLine(s Stats) uint64 {
	var total uint64
	//itslint:allow this directive is stranded two lines above the range

	for _, n := range s.counts { // want `range over map map\[string\]uint64 in deterministic package`
		total += n
	}
	return total
}
