// Package policy is the schemafreeze fixture: frozen structs in every
// state — matching the baseline, drifted from it, and never registered —
// plus an unfrozen struct the pass must ignore.
package policy

// Frozen matches the committed fixture baseline exactly: clean.
//
//itslint:frozen
type Frozen struct {
	Name string `json:"name"`
	Val  uint64 `json:"val"`
}

// Drifted gained the Extra field without regenerating the baseline — the
// accident the gate exists for.
//
//itslint:frozen
type Drifted struct { // want `frozen struct itsim/internal/policy\.Drifted drifted from the committed baseline`
	Name  string `json:"name"`
	Extra int    `json:"extra"`
}

// Unregistered is frozen but absent from the baseline: freezing a struct
// and committing its layout are one reviewed change.
//
//itslint:frozen
type Unregistered struct { // want `frozen struct itsim/internal/policy\.Unregistered is not in the frozen-schema baseline`
	X int `json:"x"`
}

// Free is not frozen: it may change shape at will.
type Free struct {
	Whatever int `json:"whatever"`
}
