// Fixture for the eventsink sink-exhaustiveness rule: every switch over the
// event discriminator inside a sink's Write method must either handle every
// kind or carry an explicit default.
package obs

// Type discriminates event kinds (fixture copy of the real obs.Type).
type Type uint8

// Fixture event kinds; NumTypes is the array-sizing sentinel the analyzer
// excludes from the exhaustiveness set.
const (
	EvA Type = iota
	EvB
	EvC
	EvD
	NumTypes
)

// Event is the fixture event record.
type Event struct {
	Type Type
}

// Exhaustive handles every kind explicitly: clean.
type Exhaustive struct{ a, b, c, d int }

// Write implements the sink contract.
func (s *Exhaustive) Write(ev Event) {
	switch ev.Type {
	case EvA:
		s.a++
	case EvB:
		s.b++
	case EvC:
		s.c++
	case EvD:
		s.d++
	}
}

// Defaulted drops the rest through an explicit default — a deliberate act,
// so it is clean.
type Defaulted struct{ a int }

// Write implements the sink contract.
func (s *Defaulted) Write(ev Event) {
	switch ev.Type {
	case EvA:
		s.a++
	default:
		// everything else deliberately ignored
	}
}

// Leaky silently ignores EvC and EvD: flagged with the full missing list.
type Leaky struct{ a, b int }

// Write implements the sink contract.
func (s *Leaky) Write(ev Event) {
	switch ev.Type { // want `sink switch does not handle event kinds EvC, EvD`
	case EvA:
		s.a++
	case EvB:
		s.b++
	}
}

// classify is not a Write method: the exhaustiveness rule does not apply.
func classify(t Type) bool {
	switch t {
	case EvA:
		return true
	}
	return false
}

// Allowed suppresses the gap with a justification: counted, not reported.
type Allowed struct{ a int }

// Write implements the sink contract.
func (s *Allowed) Write(ev Event) {
	switch ev.Type { //itslint:allow fixture: only EvA bears accounting here
	case EvA:
		s.a++
	}
}
