// Package wrap is the second hop of the laundering chain: it forwards
// order.Keys' map-order entropy through another package boundary, so a
// deterministic consumer is two calls away from the source — invisible to
// any single-package syntactic check, visible to entropyflow's facts.
package wrap

import "itsim/internal/lib/order"

// FirstKey returns one of m's keys — which one depends on Go's map hashing,
// so the ReturnsEntropy fact propagates from order.Keys.
func FirstKey(m map[string]int) string {
	ks := order.Keys(m)
	if len(ks) == 0 {
		return ""
	}
	return ks[0]
}

// FirstSorted is the clean pass-through: order.SortedKeys carries no fact.
func FirstSorted(m map[string]int) string {
	ks := order.SortedKeys(m)
	if len(ks) == 0 {
		return ""
	}
	return ks[0]
}
