// Package order is a helper OUTSIDE the deterministic set: it may legally
// range over maps, but entropyflow exports a ReturnsEntropy fact on Keys so
// the map-order dependence is still caught when a deterministic package
// consumes the result. No diagnostics are expected in this package.
package order

import "sort"

// Keys returns m's keys in Go's per-run randomized map order: the return
// value carries "map iteration order" entropy.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the clean polarity: the sort sanitizes the order, so the
// return value carries no entropy fact.
func SortedKeys(m map[string]int) []string {
	out := Keys(m)
	sort.Strings(out)
	return out
}
