// Command clitool is a fixture for a package OUTSIDE the deterministic set:
// wall clocks, the global rand source, environment reads and map iteration
// are all fine here — but an //itslint:allow directive without a reason is
// still reported, because directive hygiene is validated everywhere.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(os.Getenv("HOME"), rand.Intn(10), time.Since(start))
	m := map[string]int{"a": 1, "b": 2}
	total := 0
	for _, v := range m {
		total += v
	}
	//itslint:allow
	fmt.Println(total)
}
