// Package eventsink guards the two output-layer invariants the regression
// tooling depends on:
//
//  1. Sink exhaustiveness — every obs event kind must be handled (or
//     explicitly defaulted) in every sink's Write switch. A new event type
//     that silently falls through one sink makes `itsbench diff`,
//     trace-driven comparisons and the CI determinism smoke compare
//     incomplete streams. The same rule binds the replay package's event
//     switches (any function, not just Write methods): an event kind the
//     trace analytics silently drop breaks the attribution conservation
//     cross-check one release later, when the kind starts carrying time.
//  2. Summary JSON layout — every field added to the serialized summary
//     structs in itsim/internal/metrics after the seed must carry
//     `omitempty` (or an explicit `json:"-"`), so runs that do not exercise
//     the new feature keep the historical byte layout that committed
//     baseline documents and the CI determinism smoke diff against.
//
// The seed field sets are frozen in summaryBaseline below; growing a struct
// means either adding omitempty or consciously extending the baseline here
// (which is the reviewable act of breaking the historical layout).
package eventsink

import (
	"go/ast"
	"go/constant"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"itsim/internal/analysis/itslint"
)

// Analyzer is the eventsink pass.
var Analyzer = &analysis.Analyzer{
	Name: "eventsink",
	Doc: "require obs sinks to handle (or explicitly default) every event kind and new " +
		"summary struct fields to carry omitempty, preserving the historical JSON layout",
	Run: run,
}

const (
	obsPkg     = "itsim/internal/obs"
	metricsPkg = "itsim/internal/metrics"
	replayPkg  = "itsim/internal/replay"
	clusterPkg = "itsim/internal/cluster"
)

// summaryBaseline freezes the seed-era field sets of the JSON-serialized
// summary structs. Fields not listed here must carry omitempty.
var summaryBaseline = map[string]map[string]bool{
	"Summary": set("Policy", "Batch", "MakespanNs", "TotalIdleNs", "SchedulerIdleNs",
		"ContextSwitchTimeNs", "FaultHandlerTimeNs", "TotalStolenNs", "MajorFaults",
		"MinorFaults", "LLCMisses", "ContextSwitches", "PrefetchAccuracy", "AvgFinishNs",
		"TopHalfAvgFinishNs", "BottomHalfAvgFinishNs", "SyncWait", "Blocked", "Procs"),
	"HistogramSnapshot": set("Count", "MeanNs", "P50Ns", "P99Ns", "MaxNs", "SumNs", "Buckets"),
	"BucketCount":       set("UpperNs", "Count"),
	"Process": set("PID", "Name", "Priority", "FinishTime", "Finished", "Instructions",
		"CPUTime", "MajorFaults", "MinorFaults", "LLCAccesses", "LLCMisses", "MemStall",
		"StorageWait", "BlockedWait", "StolenPrefetch", "StolenPreexec", "RecoveryOverhead",
		"ContextSwitches", "PrefetchIssued", "PrefetchUseful", "PrefetchDropped",
		"PreexecInstrs", "PreexecValid", "PreexecFills"),
	"Core": set("ID", "LocalClock", "CPUTime", "SchedulerIdle", "ContextSwitchTime",
		"StolenPrefetch", "StolenPreexec", "Dispatches", "Steals", "MigratedAway"),
	"InjectionStats": set("TailSpikes", "ChannelStalls", "DMAFailures", "DMARetries"),
	// Fleet-era structs (internal/cluster), frozen at introduction: the
	// `itssim fleet` JSON document and the CI fleet-determinism job diff
	// against this layout.
	"FleetSummary": set("Policy", "Routing", "Machines", "Slots", "MakespanNs",
		"Requests", "Completed", "Tenants", "PerMachine", "Injection"),
	"TenantStats": set("Name", "Bench", "Requests", "Completed", "SLONs",
		"SLOAttainment", "Latency", "SyncWait"),
	"MachineStats": set("ID", "Epochs", "Requests", "BusyNs", "IdleNs",
		"WaitingNs", "StolenNs", "MajorFaults", "DemotedWaits"),
	// Resilience-era struct, frozen at introduction: emitted only when the
	// resilience plane is active (the chaos key is itself omitempty on
	// FleetSummary), so its fields are part of the baseline layout.
	"ChaosStats": set("Crashes", "Flaps", "Brownouts", "Rehomed", "Timeouts",
		"Retries", "Hedges", "HedgeWins", "Shed", "Failed"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func run(pass *analysis.Pass) (any, error) {
	switch pass.Pkg.Path() {
	case obsPkg:
		checkSinks(pass)
	case metricsPkg:
		checkSummaries(pass)
	case replayPkg:
		checkConsumer(pass, "replay")
	case clusterPkg:
		checkConsumer(pass, "cluster")
	}
	return nil, nil
}

// checkSinks verifies that every switch over the event type inside a sink's
// Write method covers every event kind or carries an explicit default.
func checkSinks(pass *analysis.Pass) {
	al := itslint.Scan(pass)
	kinds := eventKinds(pass.Pkg)
	if len(kinds) == 0 {
		return
	}
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Write" {
				continue
			}
			checkEventSwitches(pass, al, fd, kinds, "sink")
		}
	}
	al.Flush("eventsink")
}

// checkConsumer enforces sink-style exhaustiveness on a stream-consuming
// package (replay, cluster): any switch over the obs event type, in any
// function, must cover every kind or carry an explicit default. Unlike a
// sink, these packages consume the stream long after it was recorded — a
// silently-dropped kind here is a wrong attribution, not just a thinner
// trace. The noun labels diagnostics with the consuming package.
func checkConsumer(pass *analysis.Pass, noun string) {
	al := itslint.Scan(pass)
	var obs *types.Package
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == obsPkg {
			obs = imp
			break
		}
	}
	if obs == nil {
		return
	}
	kinds := eventKinds(obs)
	if len(kinds) == 0 {
		return
	}
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkEventSwitches(pass, al, fd, kinds, noun)
		}
	}
	al.Flush("eventsink")
}

// checkEventSwitches walks one function for switches over the obs event
// type and checks each for exhaustiveness.
func checkEventSwitches(pass *analysis.Pass, al *itslint.Allows, fd *ast.FuncDecl, kinds map[int64]string, noun string) {
	ast.Inspect(fd, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		if !isEventType(pass.TypesInfo.TypeOf(sw.Tag)) {
			return true
		}
		checkSwitch(pass, al, sw, kinds, noun)
		return true
	})
}

// eventKinds returns pkg's package-level constants of the obs event type,
// except the NumTypes array-sizing sentinel, keyed by constant value.
func eventKinds(pkg *types.Package) map[int64]string {
	kinds := make(map[int64]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || name == "NumTypes" {
			continue
		}
		if !isEventType(c.Type()) {
			continue
		}
		if v, exact := constant.Int64Val(c.Val()); exact {
			kinds[v] = name
		}
	}
	return kinds
}

// isEventType reports whether t is the obs event-discriminator type (named
// Type, declared in the obs package — matched by import path so the check
// works from both inside obs and from its consumers).
func isEventType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Type" && obj.Pkg() != nil && obj.Pkg().Path() == obsPkg
}

func checkSwitch(pass *analysis.Pass, al *itslint.Allows, sw *ast.SwitchStmt, kinds map[int64]string, noun string) {
	handled := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: ignoring the rest is a deliberate act
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			if v, exact := constant.Int64Val(tv.Value); exact {
				handled[v] = true
			}
		}
	}
	var missing []string
	for v, name := range kinds {
		if !handled[v] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	al.Report(sw.Pos(),
		"%s switch does not handle event kinds %s: handle them or add an explicit default "+
			"so dropping them is a deliberate act",
		noun, strings.Join(missing, ", "))
}

// checkSummaries enforces the omitempty rule on the serialized summary
// structs of internal/metrics.
func checkSummaries(pass *analysis.Pass) {
	al := itslint.Scan(pass)
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			baseline, tracked := summaryBaseline[ts.Name.Name]
			if !tracked {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if !name.IsExported() || baseline[name.Name] {
						continue
					}
					if hasOmitemptyOrSkip(field.Tag) {
						continue
					}
					al.Report(name.Pos(),
						"field %s.%s is not in the seed summary layout and lacks `json:\"…,omitempty\"`: "+
							"it would change the byte layout of every summary, invalidating committed "+
							"baselines and `itsbench diff` documents",
						ts.Name.Name, name.Name)
				}
			}
			return true
		})
	}
	al.Flush("eventsink")
}

// hasOmitemptyOrSkip reports whether the field tag opts the field out of
// layout drift: a json tag with omitempty, or json:"-".
func hasOmitemptyOrSkip(tag *ast.BasicLit) bool {
	if tag == nil {
		return false
	}
	val := strings.Trim(tag.Value, "`")
	jsonTag, ok := reflect.StructTag(val).Lookup("json")
	if !ok {
		return false
	}
	if jsonTag == "-" {
		return true
	}
	parts := strings.Split(jsonTag, ",")
	for _, p := range parts[1:] {
		if p == "omitempty" {
			return true
		}
	}
	return false
}
