package eventsink_test

import (
	"testing"

	"itsim/internal/analysis/atest"
	"itsim/internal/analysis/eventsink"
)

// TestEventsink checks all three rules on their fixture packages: sink
// Write switches must handle every event kind or default explicitly
// (itsim/internal/obs fixture), summary struct fields outside the frozen
// seed baseline must carry omitempty or json:"-" (itsim/internal/metrics
// fixture), and stream-consumer event switches — in any function — must be
// exhaustive or explicitly defaulted (itsim/internal/replay and
// itsim/internal/cluster fixtures).
func TestEventsink(t *testing.T) {
	atest.Run(t, "../testdata", eventsink.Analyzer,
		"itsim/internal/obs", "itsim/internal/metrics", "itsim/internal/replay",
		"itsim/internal/cluster")
}
