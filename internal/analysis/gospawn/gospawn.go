// Package gospawn forbids host concurrency — `go` statements, channel
// operations, select — inside the simulator's deterministic core. The
// discrete-event engine is single-threaded by construction: virtual time
// advances under one logical thread per run, and any host-level concurrency
// inside the core would let OS scheduling order leak into event order.
//
// The only sanctioned concurrency is the host-parallel batch layer in
// itsim/internal/core: runJobs and the entry points that use it (RunGrid,
// RunSensitivity, RunSpinSweep) fan whole runs out across host cores, each
// run still fully deterministic in isolation (serial order is re-imposed
// when tracing). Those functions are allowlisted; everything else in the
// deterministic packages and internal/core is flagged.
package gospawn

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"itsim/internal/analysis/itslint"
)

// Analyzer is the gospawn pass.
var Analyzer = &analysis.Analyzer{
	Name: "gospawn",
	Doc: "forbid goroutines and channel operations in the deterministic simulator core " +
		"(host-parallel entry points core.RunGrid/RunSensitivity/RunSpinSweep are allowlisted)",
	Run: run,
}

// hostParallelPkg is the batch layer allowed to use host concurrency in
// designated functions only.
const hostParallelPkg = "itsim/internal/core"

// hostParallelFuncs are the sanctioned host-parallel functions of
// internal/core, including the shared worker-fanout helper they delegate to.
var hostParallelFuncs = map[string]bool{
	"runJobs":        true,
	"RunGrid":        true,
	"RunSensitivity": true,
	"RunSpinSweep":   true,
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !itslint.Deterministic(path) && path != hostParallelPkg {
		return nil, nil
	}
	al := itslint.Scan(pass)
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if path == hostParallelPkg && hostParallelFuncs[fd.Name.Name] {
				continue // sanctioned host-parallel entry point
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				checkNode(pass, al, n)
				return true
			})
		}
	}
	al.Flush("gospawn")
	return nil, nil
}

func checkNode(pass *analysis.Pass, al *itslint.Allows, n ast.Node) {
	switch n := n.(type) {
	case *ast.GoStmt:
		al.Report(n.Pos(),
			"go statement in deterministic core package %s: host scheduling order would leak into virtual-event order",
			pass.Pkg.Path())
	case *ast.SendStmt:
		al.Report(n.Pos(), "channel send in deterministic core package %s", pass.Pkg.Path())
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" {
			al.Report(n.Pos(), "channel receive in deterministic core package %s", pass.Pkg.Path())
		}
	case *ast.SelectStmt:
		al.Report(n.Pos(), "select statement in deterministic core package %s", pass.Pkg.Path())
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				al.Report(n.Pos(), "range over channel in deterministic core package %s", pass.Pkg.Path())
			}
		}
	case *ast.CallExpr:
		fun, ok := ast.Unparen(n.Fun).(*ast.Ident)
		if !ok || len(n.Args) == 0 {
			return
		}
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok || (b.Name() != "close" && b.Name() != "make") {
			return
		}
		if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && fun.Name == "close" {
				al.Report(n.Pos(), "close of channel in deterministic core package %s", pass.Pkg.Path())
			}
		}
		if fun.Name == "make" {
			if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && tv.IsType() {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					al.Report(n.Pos(), "make(chan) in deterministic core package %s", pass.Pkg.Path())
				}
			}
		}
	}
}
