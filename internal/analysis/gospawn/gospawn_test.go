package gospawn_test

import (
	"testing"

	"itsim/internal/analysis/atest"
	"itsim/internal/analysis/gospawn"
)

// TestGospawn checks both polarities: every host-concurrency form is
// flagged in a deterministic package (itsim/internal/sched fixture), the
// sanctioned host-parallel entry points of itsim/internal/core pass
// despite their goroutines and channels, and anything else in that package
// is still flagged.
func TestGospawn(t *testing.T) {
	atest.Run(t, "../testdata", gospawn.Analyzer,
		"itsim/internal/sched", "itsim/internal/core")
}
