// Package seedflow encodes the seed-tree discipline of the fleet layers as
// law: every PRNG constructed inside the deterministic package set must
// derive its seed through a sanctioned shape, so per-axis streams
// decorrelate instead of colliding.
//
// Sanctioned seed shapes (the grammar PRs 7 and 9 converged on):
//
//   - a named value passed through unchanged (prng.New(cfg.Seed) — the
//     constructor splitmix64-expands internally),
//   - an XOR chain of named values, tweak constants and tweak multiplies
//     (cfg.Seed ^ tailTweak ^ uint64(id+1)*machineTweak),
//   - a call to a documented mixer — a function whose doc comment carries
//     //itslint:seedmixer (prng.Mix and the per-layer helpers built on it).
//
// Diagnostics, each with a SuggestedFix where the rewrite is mechanical:
//
//   - a raw literal as the whole seed (prng.New(42)): streams built from
//     nearby literals are correlated through the additive splitmix64 walk;
//   - bare additive/bitwise arithmetic at the top level of the seed
//     (prng.New(seed+uint64(id))): id+seed shapes collide across axes
//     (machine 3 axis A == machine 4 axis B) — the historical bug class the
//     golden-ratio tweak multiply exists to prevent;
//   - an identical seed expression reused for a second stream in the same
//     function: the axes draw the same sequence.
//
// Seed-forwarding helpers (func newStream(rate, seed) { prng.New(seed) })
// are followed through a SeedArg fact, so the shape check lands on the
// caller's argument — across packages — exactly like entropyflow's taint.
// Functions annotated //itslint:seedmixer are exempt inside (a mixer's body
// is raw arithmetic by design); their fact still exports.
package seedflow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"

	"itsim/internal/analysis/itslint"
)

// Analyzer is the seedflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "require PRNG seeds in the deterministic packages to derive through sanctioned " +
		"shapes (named values, XOR/tweak-multiply chains, //itslint:seedmixer helpers)",
	Run:       run,
	FactTypes: []analysis.Fact{(*SeedArg)(nil)},
}

// SeedArg marks a function that forwards one or more of its parameters
// directly into a PRNG constructor's seed (or another forwarder), so the
// seed-shape check applies to its call sites.
type SeedArg struct {
	Params []int // zero-based parameter indices, sorted
}

func (*SeedArg) AFact()           {}
func (f *SeedArg) String() string { return fmt.Sprintf("SeedArg(%v)", f.Params) }

// prngPath is the import path of the deterministic PRNG whose Mix helper
// the suggested fixes reference.
const prngPath = "itsim/internal/prng"

func run(pass *analysis.Pass) (any, error) {
	al := itslint.Scan(pass)
	det := itslint.Deterministic(pass.Pkg.Path())

	var funcs []*ast.FuncDecl
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
			}
		}
	}
	// Fact fixpoint: a forwarder that feeds another forwarder in the same
	// package needs a second round to surface.
	for iter := 0; iter <= len(funcs)+1; iter++ {
		changed := false
		for _, fd := range funcs {
			if analyzeFunc(pass, al, fd, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if det {
		for _, fd := range funcs {
			analyzeFunc(pass, al, fd, true)
		}
	}
	al.Flush("seedflow")
	return nil, nil
}

// analyzeFunc scans one function for PRNG constructions and forwarder
// calls; with report set it emits diagnostics, otherwise it only grows the
// function's SeedArg fact. Returns whether the fact changed.
func analyzeFunc(pass *analysis.Pass, al *itslint.Allows, fd *ast.FuncDecl, report bool) bool {
	fnObj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	if itslint.IsSeedMixer(fd) {
		return false // a mixer's body is sanctioned arithmetic by decree
	}
	params := make(map[types.Object]int)
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}

	forwarded := make(map[int]bool)
	seen := make(map[string]bool) // normalized seed exprs, for reuse detection
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		for _, argIdx := range seedArgs(pass, fn) {
			if argIdx >= len(call.Args) {
				continue
			}
			seed := call.Args[argIdx]
			// Forwarder fact: a parameter passed through unchanged.
			if id, isIdent := ast.Unparen(seed).(*ast.Ident); isIdent {
				if p, isParam := params[pass.TypesInfo.Uses[id]]; isParam {
					forwarded[p] = true
				}
			}
			if report {
				checkSeedShape(pass, al, fn, seed)
				checkReuse(pass, al, seen, seed)
			}
		}
		return true
	})

	if len(forwarded) == 0 {
		return false
	}
	set := make(map[int]bool)
	var prev SeedArg
	had := pass.ImportObjectFact(fnObj, &prev)
	for _, p := range prev.Params {
		set[p] = true
	}
	for p := range forwarded {
		set[p] = true
	}
	fact := &SeedArg{Params: sortedKeys(set)}
	if had && equalInts(prev.Params, fact.Params) {
		return false
	}
	pass.ExportObjectFact(fnObj, fact)
	return true
}

// seedArgs returns the argument indices of fn that are PRNG seeds: the
// known constructors plus any SeedArg-fact forwarder.
func seedArgs(pass *analysis.Pass, fn *types.Func) []int {
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case prngPath:
			if fn.Name() == "New" && !isMethod(fn) {
				return []int{0}
			}
		case "math/rand":
			if (fn.Name() == "NewSource" || fn.Name() == "Seed") && !isMethod(fn) {
				return []int{0}
			}
		case "math/rand/v2":
			switch fn.Name() {
			case "NewPCG":
				return []int{0, 1}
			case "NewChaCha8":
				return []int{0}
			}
		}
	}
	var fact SeedArg
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Params
	}
	return nil
}

// checkSeedShape validates the seed expression against the sanctioned
// grammar and reports (with a mechanical fix where possible) otherwise.
func checkSeedShape(pass *analysis.Pass, al *itslint.Allows, callee *types.Func, seed ast.Expr) {
	e := ast.Unparen(seed)
	switch x := e.(type) {
	case *ast.BasicLit:
		al.ReportFix(seed.Pos(), seed.End(), mixFix(pass, seed, x),
			"raw literal PRNG seed for %s in deterministic package %s: derive seeds through the "+
				"documented splitmix64 mixer (//itslint:seedmixer helpers, e.g. prng.Mix) so streams decorrelate across axes",
			callee.Name(), pass.Pkg.Path())
	case *ast.BinaryExpr:
		checkSeedOp(pass, al, callee, seed, x)
	case *ast.CallExpr:
		// A conversion is transparent: uint64(seed+id) is still bare
		// arithmetic. Real calls (mixers, hashes) are sanctioned.
		if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			checkSeedShape(pass, al, callee, x.Args[0])
		}
	}
}

// checkSeedOp walks an operator chain: XOR is the sanctioned combinator
// (recurse into both sides), tweak-multiply terminates a branch, and
// anything additive/bitwise at combinator level is the collision-prone
// shape the mixer replaces.
func checkSeedOp(pass *analysis.Pass, al *itslint.Allows, callee *types.Func, seed ast.Expr, x *ast.BinaryExpr) {
	switch x.Op {
	case token.XOR:
		for _, side := range []ast.Expr{x.X, x.Y} {
			side = ast.Unparen(side)
			if b, ok := side.(*ast.BinaryExpr); ok {
				checkSeedOp(pass, al, callee, side, b)
			}
			// Idents, selectors, calls and literals are legal XOR operands
			// (a literal here acts as an inline tweak constant).
		}
	case token.MUL:
		// Tweak multiply: uint64(id+1)*machineTweak — operands free-form.
	default:
		var fixes []analysis.SuggestedFix
		if x.Op == token.ADD {
			fixes = mixFix(pass, seed, x.X, x.Y)
		}
		al.ReportFix(x.Pos(), x.End(), fixes,
			"bare %q arithmetic in PRNG seed for %s in deterministic package %s: id+seed shapes "+
				"collide across axes; combine with XOR, a tweak multiply, or the documented mixer (prng.Mix)",
			x.Op.String(), callee.Name(), pass.Pkg.Path())
	}
}

// checkReuse flags a seed expression that already constructed a stream in
// this function: identical seeds draw identical sequences.
func checkReuse(pass *analysis.Pass, al *itslint.Allows, seen map[string]bool, seed ast.Expr) {
	key := exprString(pass.Fset, seed)
	if key == "" {
		return
	}
	if seen[key] {
		al.Report(seed.Pos(),
			"PRNG seed %s in deterministic package %s reuses an earlier stream's seed expression: "+
				"identical seeds draw identical sequences; give each axis its own tweak or mixer argument",
			key, pass.Pkg.Path())
		return
	}
	seen[key] = true
}

// mixFix builds the wrap-in-prng.Mix suggested fix, provided the file
// already imports the prng package (the fix must not edit imports).
func mixFix(pass *analysis.Pass, seed ast.Expr, operands ...ast.Expr) []analysis.SuggestedFix {
	local := prngLocalName(pass, seed.Pos())
	if local == "" {
		return nil
	}
	var buf bytes.Buffer
	buf.WriteString(local)
	buf.WriteString(".Mix(")
	for i, op := range operands {
		if i > 0 {
			buf.WriteString(", ")
		}
		s := exprString(pass.Fset, op)
		if s == "" {
			return nil
		}
		buf.WriteString(s)
	}
	buf.WriteString(")")
	return []analysis.SuggestedFix{{
		Message: "derive the seed through " + local + ".Mix",
		TextEdits: []analysis.TextEdit{{
			Pos: seed.Pos(), End: seed.End(), NewText: buf.Bytes(),
		}},
	}}
}

// prngLocalName returns the local import name of the prng package in the
// file containing pos, or "" if the file does not import it.
func prngLocalName(pass *analysis.Pass, pos token.Pos) string {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			for _, imp := range f.Imports {
				path := imp.Path.Value
				if path != `"`+prngPath+`"` {
					continue
				}
				if imp.Name != nil {
					if imp.Name.Name == "_" || imp.Name.Name == "." {
						return ""
					}
					return imp.Name.Name
				}
				return "prng"
			}
		}
	}
	return ""
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
