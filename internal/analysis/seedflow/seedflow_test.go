package seedflow_test

import (
	"strings"
	"testing"

	"itsim/internal/analysis/atest"
	"itsim/internal/analysis/seedflow"
)

// TestSeedFlow checks both polarities on the fault fixture: sanctioned
// shapes (pass-through, XOR/tweak-multiply chains, mixer calls) pass, the
// collision-prone shapes (raw literals, bare additive arithmetic — also
// through a conversion and through a forwarder's SeedArg fact — and reused
// seed expressions) are flagged.
func TestSeedFlow(t *testing.T) {
	atest.Run(t, "../testdata", seedflow.Analyzer, "itsim/internal/fault")
}

// TestSuggestedFix asserts the bare-addition diagnostic carries the
// mechanical wrap-in-prng.Mix rewrite `itslint fix` applies.
func TestSuggestedFix(t *testing.T) {
	diags := atest.RunResult(t, "../testdata", seedflow.Analyzer, "itsim/internal/fault")
	found := false
	for _, d := range diags {
		if !strings.Contains(d.Message, `bare "+" arithmetic`) {
			continue
		}
		for _, fix := range d.SuggestedFixes {
			for _, edit := range fix.TextEdits {
				if strings.HasPrefix(string(edit.NewText), "prng.Mix(") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("no bare-addition diagnostic carried a prng.Mix suggested fix: %+v", diags)
	}
}

// TestNonDeterministicPackageClean: the shape rules stop at the
// deterministic-set boundary — order/wrap construct nothing, but the prng
// fixture package itself (raw splitmix constants everywhere) must be clean.
func TestNonDeterministicPackageClean(t *testing.T) {
	diags := atest.RunResult(t, "../testdata", seedflow.Analyzer, "itsim/internal/prng")
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics outside the deterministic set: %+v", diags)
	}
}
