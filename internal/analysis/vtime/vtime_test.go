package vtime_test

import (
	"testing"

	"itsim/internal/analysis/atest"
	"itsim/internal/analysis/vtime"
)

// TestVtime checks both polarities on the itsim/internal/exec fixture:
// time×time products, fresh integer conversions in additions/subtractions
// and comparisons are flagged; the sanctioned idioms (count scaling via
// explicit conversion, constant offsets, float fractional scaling, the
// exempt RunUntil rate boundary, justified allows) are not.
func TestVtime(t *testing.T) {
	atest.Run(t, "../testdata", vtime.Analyzer, "itsim/internal/exec")
}
