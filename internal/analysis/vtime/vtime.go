// Package vtime flags arithmetic that mixes virtual-time values
// (itsim/internal/sim.Time, an int64 nanosecond count) with non-time
// integers — cycle counts, byte sizes, record counts — the unit-confusion
// class of bug that corrupts the per-core conservation ledger
// (CPUTime + SchedulerIdle + ContextSwitchTime == LocalClock) without
// breaking the type checker, since any integer converts to sim.Time.
//
// Three patterns are flagged in the deterministic packages:
//
//  1. t1 * t2 where both operands are (non-constant, non-converted)
//     sim.Time values: time × time is time², never a duration. Scaling a
//     per-item cost by a count is written cost*sim.Time(n) — the explicit
//     conversion marks the operand as a scalar and is not flagged.
//  2. t ± sim.Time(x) where x is a non-constant integer or unitless float
//     expression: adding a freshly converted raw number to a timestamp is
//     how byte counts and cycle counts sneak into the clock. Convert at the
//     rate boundary instead (ns = units / unitsPerNs), as the clock helpers
//     do. The sanctioned fractional-scaling shape is exempt: a float
//     product/quotient with a float64(<sim.Time>) factor — frac *
//     float64(span), float64(t) * WarmMult — carries its time units inside
//     the expression, so chaos/resilience multiplier scaling needs no
//     allow-comment.
//  3. t OP sim.Time(x) comparisons with a freshly converted non-constant
//     integer, the same confusion on the comparison path.
//
// The conversion helpers themselves — package itsim/internal/sim and the
// designated clock/ledger helpers in itsim/internal/exec — are exempt:
// converting at the rate boundary is their job. Anything else that is
// genuinely unit-correct carries a //itslint:allow justification.
package vtime

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"itsim/internal/analysis/itslint"
)

// Analyzer is the vtime pass.
var Analyzer = &analysis.Analyzer{
	Name: "vtime",
	Doc: "flag arithmetic mixing virtual-time (sim.Time) values with converted non-time integers " +
		"outside the clock/ledger helpers",
	Run: run,
}

// simPkg is the package defining the virtual-time type.
const simPkg = "itsim/internal/sim"

// exemptFuncs names the clock/ledger helpers of itsim/internal/exec allowed
// to convert raw integers inside time arithmetic: they ARE the rate
// boundary. Keyed by declared function name.
var exemptFuncs = map[string]bool{
	// Core.RunUntil owns the instructions→ns carry arithmetic
	// (instCarry / InstPerNs) that turns compute gaps into clock time.
	"RunUntil": true,
	// Core.advance is the clock-mutation choke point charging time to
	// the process, the ledger and the engine in one place.
	"advance": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !itslint.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	al := itslint.Scan(pass)
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && pass.Pkg.Path() == "itsim/internal/exec" && exemptFuncs[fd.Name.Name] {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				if be, ok := n.(*ast.BinaryExpr); ok {
					checkBinary(pass, al, be)
				}
				return true
			})
		}
	}
	al.Flush("vtime")
	return nil, nil
}

func checkBinary(pass *analysis.Pass, al *itslint.Allows, be *ast.BinaryExpr) {
	switch be.Op {
	case token.MUL:
		if isTime(pass, be.X) && isTime(pass, be.Y) &&
			!isConst(pass, be.X) && !isConst(pass, be.Y) &&
			!isTimeConv(pass, be.X) && !isTimeConv(pass, be.Y) {
			al.Report(be.Pos(),
				"multiplying two virtual-time values: time × time is time², not a duration; "+
					"scale with an explicit count conversion (cost * sim.Time(n)) or fix the units")
		}
	case token.ADD, token.SUB:
		if !isTime(pass, be.X) && !isTime(pass, be.Y) {
			return
		}
		reportFreshConv(pass, al, be, "adds")
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		if !isTime(pass, be.X) && !isTime(pass, be.Y) {
			return
		}
		reportFreshConv(pass, al, be, "compares")
	}
}

// reportFreshConv flags the operand that is a conversion of a non-constant
// non-time integer — or unitless float — directly inside time arithmetic.
func reportFreshConv(pass *analysis.Pass, al *itslint.Allows, be *ast.BinaryExpr, verb string) {
	for _, op := range [2]ast.Expr{be.X, be.Y} {
		arg, ok := timeConvArg(pass, op)
		if !ok || isConst(pass, op) || isTime(pass, arg) {
			continue
		}
		if isFloat(pass, arg) {
			if hasTimeFactor(pass, arg) {
				continue // sanctioned fractional scaling: units ride the float64(<sim.Time>) factor
			}
			al.Report(op.Pos(),
				"virtual-time arithmetic %s sim.Time(%s): the converted float carries no time units; "+
					"scale a duration instead (frac * float64(span)) or convert at the rate boundary",
				verb, exprString(arg))
			continue
		}
		if !isInteger(pass, arg) {
			continue
		}
		al.Report(op.Pos(),
			"virtual-time arithmetic %s sim.Time(%s): converting a raw %s inside time arithmetic "+
				"is the byte/cycle-count-as-nanoseconds bug; convert at the rate boundary or justify with //itslint:allow",
			verb, exprString(arg), pass.TypesInfo.TypeOf(arg))
	}
}

// hasTimeFactor reports whether the float expression carries its time
// units internally: some multiplicative factor is itself a float conversion
// of a sim.Time value (the frac*float64(span) / float64(t)*mult shape). A
// sum or difference is unit-carrying only when both sides are.
func hasTimeFactor(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.MUL, token.QUO:
			return hasTimeFactor(pass, e.X) || hasTimeFactor(pass, e.Y)
		case token.ADD, token.SUB:
			return hasTimeFactor(pass, e.X) && hasTimeFactor(pass, e.Y)
		}
	case *ast.CallExpr:
		if arg, ok := floatConvArg(pass, e); ok {
			return isTime(pass, arg) || hasTimeFactor(pass, arg)
		}
	}
	return false
}

// isTime reports whether e's type is sim.Time.
func isTime(pass *analysis.Pass, e ast.Expr) bool {
	return isTimeType(pass.TypesInfo.TypeOf(e))
}

func isTimeType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == simPkg
}

// isInteger reports whether e's core type is an integer — the classic
// unit-confusion class: byte, line, cycle and record counts used directly
// as nanoseconds.
func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	basic, ok := pass.TypesInfo.TypeOf(e).Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// isFloat reports whether e's core type is a float.
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	basic, ok := pass.TypesInfo.TypeOf(e).Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// floatConvArg returns the argument of a float32/float64(...) conversion.
func floatConvArg(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return nil, false
	}
	return call.Args[0], true
}

// isConst reports whether e folds to a compile-time constant.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isTimeConv reports whether e is syntactically a conversion to sim.Time.
func isTimeConv(pass *analysis.Pass, e ast.Expr) bool {
	_, ok := timeConvArg(pass, e)
	return ok
}

// timeConvArg returns the argument of a sim.Time(...) conversion expression.
func timeConvArg(pass *analysis.Pass, e ast.Expr) (ast.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || !isTimeType(tv.Type) {
		return nil, false
	}
	return call.Args[0], true
}

// exprString renders a short source form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	default:
		return "…"
	}
}
