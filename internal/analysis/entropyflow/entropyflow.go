// Package entropyflow is a fact-based interprocedural taint analysis that
// proves nondeterminism cannot reach sim-visible state. simdeterminism bans
// entropy *sources* syntactically inside the deterministic package set; this
// pass tracks their *values* — through assignments, conversions, builtins
// and (via exported facts) across package boundaries — until they hit a
// determinism-critical sink: an event-queue insertion key, an obs.Event
// field, a metrics summary field, or a PRNG seed.
//
// The threat it closes is laundering: a helper package outside the
// deterministic set may legally range over a map or read the clock, but the
// moment its return value keys an event or seeds a stream inside the set,
// two identically-seeded runs diverge. The analysis follows the modular
// printf-wrapper style of go/analysis: each function exports facts
// (ReturnsEntropy, ParamEscapesToSink, SeedsRNG) that the vet driver
// serializes between compilation units, so the fixpoint spans the whole
// build graph without SSA or whole-program loading.
//
// Taint sources:
//   - calls to the itslint.EntropySources table (time.Now, global math/rand,
//     os env — shared with simdeterminism),
//   - map iteration order (range over a map taints the key and value),
//   - select arrival order (a comm-clause receive taints its binding),
//   - unsafe.Pointer/uintptr conversions of pointers (address-space layout),
//   - calls to functions carrying a ReturnsEntropy fact.
//
// Sanitizers: sort.* / slices.Sort* calls cleanse their argument, and a
// justified //itslint:allow on a source line sanitizes that source without
// counting a suppression (the directive is simdeterminism's to arbitrate —
// one annotation, one budget entry).
package entropyflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"itsim/internal/analysis/itslint"
)

// Analyzer is the entropyflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "entropyflow",
	Doc: "track nondeterministic values interprocedurally and forbid them from reaching " +
		"event-queue keys, obs events, metrics summaries or PRNG seeds in the deterministic packages",
	Run: run,
	FactTypes: []analysis.Fact{
		(*ReturnsEntropy)(nil),
		(*ParamEscapesToSink)(nil),
		(*SeedsRNG)(nil),
	},
}

// ReturnsEntropy marks a function whose return value carries entropy — a
// wall-clock read, global-rand draw, map-order-dependent result, or the
// propagated result of calling such a function.
type ReturnsEntropy struct {
	Why string // entropy class, with the laundering chain appended
}

func (*ReturnsEntropy) AFact()           {}
func (f *ReturnsEntropy) String() string { return "ReturnsEntropy(" + f.Why + ")" }

// ParamEscapesToSink marks a function that forwards one or more of its
// parameters into a determinism-critical sink (directly or transitively).
type ParamEscapesToSink struct {
	Params []int  // zero-based parameter indices, sorted
	Sink   string // sink description; multiple sinks joined with "; "
}

func (*ParamEscapesToSink) AFact() {}
func (f *ParamEscapesToSink) String() string {
	return fmt.Sprintf("ParamEscapesToSink(%v → %s)", f.Params, f.Sink)
}

// SeedsRNG marks a function that uses one or more of its parameters as a
// PRNG seed (directly or transitively) — the hook seedflow-style audits and
// call-site taint checks share.
type SeedsRNG struct {
	Params []int // zero-based parameter indices, sorted
}

func (*SeedsRNG) AFact()           {}
func (f *SeedsRNG) String() string { return fmt.Sprintf("SeedsRNG(%v)", f.Params) }

const rngSeedSink = "PRNG seed"

func run(pass *analysis.Pass) (any, error) {
	al := itslint.Scan(pass)
	det := itslint.Deterministic(pass.Pkg.Path())

	var funcs []*ast.FuncDecl
	for _, f := range pass.Files {
		if itslint.IsTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
			}
		}
	}

	// Fixpoint over the package's functions: facts exported for one function
	// are visible when a later (or earlier, on the next round) function in
	// the same package calls it. Facts only grow, so this terminates.
	for iter := 0; iter <= len(funcs)+1; iter++ {
		changed := false
		for _, fd := range funcs {
			if analyzeFunc(pass, al, fd, false, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting pass, after all facts have settled.
	for _, fd := range funcs {
		analyzeFunc(pass, al, fd, true, det)
	}
	al.Flush("entropyflow")
	return nil, nil
}

// taintVal describes why a value is suspect: Why names the entropy class it
// carries (empty if none), params records which enclosing-function
// parameters it derives from (for fact synthesis).
type taintVal struct {
	why    string
	params map[int]bool
}

func (t *taintVal) clone() *taintVal {
	c := &taintVal{why: t.why, params: make(map[int]bool, len(t.params))}
	for p := range t.params {
		c.params[p] = true
	}
	return c
}

// merge folds b into a, returning the merged value (either may be nil).
func merge(a, b *taintVal) *taintVal {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	if out.why == "" {
		out.why = b.why
	}
	for p := range b.params {
		out.params[p] = true
	}
	return out
}

// funcState is the per-function analysis state.
type funcState struct {
	pass   *analysis.Pass
	al     *itslint.Allows
	taint  map[types.Object]*taintVal
	params map[types.Object]int // parameter object → index
	emit   bool                 // final pass: record escapes/returns
	report bool                 // emit diagnostics (deterministic package)

	returnsWhy string           // first entropy class seen flowing to a return
	escapes    map[string][]int // sink → param indices reaching it
	// selComm marks the comm-clause assignments of select statements, whose
	// bindings carry arrival-order entropy (recorded when the enclosing
	// SelectStmt is visited, which pre-order traversal guarantees happens
	// before the assignment itself).
	selComm map[*ast.AssignStmt]bool
}

// analyzeFunc runs the in-order taint walk over fd (three passes, so taint
// carried backward by a loop still converges) and, when emit is set, exports
// the function's facts and reports sink violations. It returns whether the
// exported facts changed.
func analyzeFunc(pass *analysis.Pass, al *itslint.Allows, fd *ast.FuncDecl, emit, report bool) bool {
	fnObj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	st := &funcState{
		pass:    pass,
		al:      al,
		taint:   make(map[types.Object]*taintVal),
		params:  make(map[types.Object]int),
		escapes: make(map[string][]int),
		selComm: make(map[*ast.AssignStmt]bool),
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					st.params[obj] = idx
					st.taint[obj] = &taintVal{params: map[int]bool{idx: true}}
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	// Two silent walks to propagate loop-carried taint, then the walk that
	// records escapes, returns and (in the deterministic set) diagnostics.
	st.walk(fd.Body)
	st.walk(fd.Body)
	st.emit, st.report = emit, report
	st.walk(fd.Body)
	if !emit {
		// During fixpoint iterations, facts come from a silent emit walk.
		st.emit = true
		st.report = false
		st.walk(fd.Body)
	}
	return st.exportFacts(fnObj)
}

// exportFacts merges the walk's findings into the function's facts,
// reporting whether anything new was learned.
func (st *funcState) exportFacts(fn *types.Func) bool {
	changed := false
	if st.returnsWhy != "" {
		var prev ReturnsEntropy
		if !st.pass.ImportObjectFact(fn, &prev) {
			st.pass.ExportObjectFact(fn, &ReturnsEntropy{Why: st.returnsWhy})
			changed = true
		}
	}
	var sinkNames []string
	paramSet := make(map[int]bool)
	var rngParams []int
	for sink, params := range st.escapes {
		if sink == rngSeedSink {
			rngParams = append(rngParams, params...)
			continue
		}
		sinkNames = append(sinkNames, sink)
		for _, p := range params {
			paramSet[p] = true
		}
	}
	if len(sinkNames) > 0 {
		sort.Strings(sinkNames)
		fact := &ParamEscapesToSink{Params: sortedKeys(paramSet), Sink: strings.Join(sinkNames, "; ")}
		var prev ParamEscapesToSink
		if !st.pass.ImportObjectFact(fn, &prev) || !equalInts(prev.Params, fact.Params) || prev.Sink != fact.Sink {
			// Merge with whatever was known before: facts only grow.
			for _, p := range prev.Params {
				paramSet[p] = true
			}
			fact.Params = sortedKeys(paramSet)
			if prev.Sink != "" && prev.Sink != fact.Sink {
				fact.Sink = mergeSinks(prev.Sink, fact.Sink)
			}
			if !equalInts(prev.Params, fact.Params) || prev.Sink != fact.Sink {
				st.pass.ExportObjectFact(fn, fact)
				changed = true
			}
		}
	}
	if len(rngParams) > 0 {
		set := make(map[int]bool)
		for _, p := range rngParams {
			set[p] = true
		}
		var prev SeedsRNG
		had := st.pass.ImportObjectFact(fn, &prev)
		for _, p := range prev.Params {
			set[p] = true
		}
		fact := &SeedsRNG{Params: sortedKeys(set)}
		if !had || !equalInts(prev.Params, fact.Params) {
			st.pass.ExportObjectFact(fn, fact)
			changed = true
		}
	}
	return changed
}

func mergeSinks(a, b string) string {
	set := make(map[string]bool)
	for _, s := range strings.Split(a, "; ") {
		set[s] = true
	}
	for _, s := range strings.Split(b, "; ") {
		set[s] = true
	}
	names := make([]string, 0, len(set))
	for s := range set {
		names = append(names, s)
	}
	sort.Strings(names)
	return strings.Join(names, "; ")
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// walk processes the function body in source order, propagating taint and —
// on the emit pass — recording sinks and returns.
func (st *funcState) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.assign(n)
		case *ast.ValueSpec:
			st.valueSpec(n)
		case *ast.RangeStmt:
			st.rangeStmt(n)
		case *ast.SelectStmt:
			st.selectStmt(n)
		case *ast.CallExpr:
			st.callSite(n)
		case *ast.CompositeLit:
			st.compositeLit(n)
		case *ast.ReturnStmt:
			st.returnStmt(n)
		}
		return true
	})
}

func (st *funcState) objOf(id *ast.Ident) types.Object {
	if obj := st.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return st.pass.TypesInfo.Uses[id]
}

// rootObj returns the object of the base identifier of a chain like
// x.f[i].g, for field-insensitive container tainting.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Defs[x]; obj != nil {
				return obj
			}
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (st *funcState) assign(n *ast.AssignStmt) {
	pairwise := len(n.Lhs) == len(n.Rhs)
	var tupleTaint *taintVal
	if !pairwise && len(n.Rhs) == 1 {
		tupleTaint = st.exprTaint(n.Rhs[0])
	}
	var commTaint *taintVal
	if st.selComm[n] {
		commTaint = &taintVal{why: "select arrival order", params: map[int]bool{}}
	}
	for i, lhs := range n.Lhs {
		var tv *taintVal
		if pairwise {
			tv = st.exprTaint(n.Rhs[i])
		} else {
			tv = tupleTaint
		}
		tv = merge(tv, commTaint)
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := st.objOf(l)
			if obj == nil {
				continue
			}
			if _, isParam := st.params[obj]; isParam {
				// A parameter keeps its param identity; merge new taint in.
				if tv != nil {
					st.taint[obj] = merge(st.taint[obj], tv)
				}
				continue
			}
			switch {
			case tv != nil && n.Tok == token.ASSIGN:
				st.taint[obj] = tv.clone()
			case tv != nil:
				st.taint[obj] = merge(st.taint[obj], tv)
			case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
				// Strong update with a clean value sanitizes.
				delete(st.taint, obj)
			}
		case *ast.SelectorExpr:
			// Writing into a struct field: sink check on determinism-
			// critical structs, then field-insensitive container taint.
			if tv != nil {
				if base := st.pass.TypesInfo.Types[l.X]; base.Type != nil {
					if sink, ok := structSink(base.Type); ok {
						st.sinkHit(n.Pos(), sink, tv, "")
					}
				}
				if obj := rootObj(st.pass.TypesInfo, l.X); obj != nil {
					st.taint[obj] = merge(st.taint[obj], tv)
				}
			}
		case *ast.IndexExpr, *ast.StarExpr:
			if tv != nil {
				if obj := rootObj(st.pass.TypesInfo, l); obj != nil {
					st.taint[obj] = merge(st.taint[obj], tv)
				}
			}
		}
	}
}

func (st *funcState) valueSpec(n *ast.ValueSpec) {
	for i, name := range n.Names {
		if name.Name == "_" || i >= len(n.Values) && len(n.Values) != 1 {
			continue
		}
		var tv *taintVal
		if len(n.Values) == len(n.Names) {
			tv = st.exprTaint(n.Values[i])
		} else if len(n.Values) == 1 {
			tv = st.exprTaint(n.Values[0])
		}
		if tv != nil {
			if obj := st.pass.TypesInfo.Defs[name]; obj != nil {
				st.taint[obj] = merge(st.taint[obj], tv)
			}
		}
	}
}

func (st *funcState) rangeStmt(n *ast.RangeStmt) {
	tv, ok := st.pass.TypesInfo.Types[n.X]
	if !ok {
		return
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	inherited := st.exprTaint(n.X)
	for _, bind := range []ast.Expr{n.Key, n.Value} {
		if bind == nil {
			continue
		}
		id, ok := ast.Unparen(bind).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := st.objOf(id)
		if obj == nil {
			continue
		}
		var t *taintVal
		if isMap && !st.al.Sanctioned(n.Pos()) {
			t = &taintVal{why: "map iteration order", params: map[int]bool{}}
		}
		t = merge(t, inherited)
		if t != nil {
			st.taint[obj] = merge(st.taint[obj], t)
		}
	}
}

func (st *funcState) selectStmt(n *ast.SelectStmt) {
	for _, clause := range n.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		assign, ok := comm.Comm.(*ast.AssignStmt)
		if !ok || st.al.Sanctioned(comm.Pos()) {
			continue
		}
		st.selComm[assign] = true
	}
}

func (st *funcState) returnStmt(n *ast.ReturnStmt) {
	if !st.emit {
		return
	}
	for _, res := range n.Results {
		if tv := st.exprTaint(res); tv != nil && tv.why != "" && st.returnsWhy == "" {
			st.returnsWhy = tv.why
		}
	}
}

func (st *funcState) compositeLit(n *ast.CompositeLit) {
	typ := st.pass.TypesInfo.TypeOf(n)
	if typ == nil {
		return
	}
	sink, ok := structSink(typ)
	if !ok {
		return
	}
	for _, elt := range n.Elts {
		val := elt
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			val = kv.Value
		}
		if tv := st.exprTaint(val); tv != nil {
			st.sinkHit(n.Pos(), sink, tv, "")
		}
	}
}

// callSite performs the sink and callee-fact checks for one call.
func (st *funcState) callSite(call *ast.CallExpr) {
	fn := calleeFunc(st.pass, call)
	if fn == nil {
		return
	}
	via := ""
	// Direct sinks of the call's own signature.
	for _, argIdx := range directSinkArgs(fn) {
		if argIdx < len(call.Args) {
			if tv := st.exprTaint(call.Args[argIdx]); tv != nil {
				st.sinkHit(call.Pos(), sinkNameFor(fn), tv, via)
			}
		}
	}
	// Facts: the callee forwards parameters into sinks somewhere downstream.
	var esc ParamEscapesToSink
	if st.pass.ImportObjectFact(fn, &esc) {
		via = fmt.Sprintf(" via %s", funcName(fn))
		for _, p := range esc.Params {
			if p < len(call.Args) {
				if tv := st.exprTaint(call.Args[p]); tv != nil {
					st.sinkHit(call.Pos(), esc.Sink, tv, via)
				}
			}
		}
	}
	var seeds SeedsRNG
	if st.pass.ImportObjectFact(fn, &seeds) {
		via = fmt.Sprintf(" via %s", funcName(fn))
		for _, p := range seeds.Params {
			if p < len(call.Args) {
				if tv := st.exprTaint(call.Args[p]); tv != nil {
					st.sinkHit(call.Pos(), rngSeedSink, tv, via)
				}
			}
		}
	}
	// Sanitizers: sort.X(arg) / slices.SortX(arg) cleanse the argument.
	if isSanitizer(fn) && len(call.Args) > 0 {
		if obj := rootObj(st.pass.TypesInfo, call.Args[0]); obj != nil {
			if t := st.taint[obj]; t != nil {
				if _, isParam := st.params[obj]; !isParam {
					delete(st.taint, obj)
				} else {
					st.taint[obj] = &taintVal{params: map[int]bool{st.params[obj]: true}}
				}
			}
		}
	}
}

// sinkHit records (and, in the deterministic set, reports) taint reaching a
// sink: entropy is a diagnostic, parameter derivation becomes a fact.
func (st *funcState) sinkHit(pos token.Pos, sink string, tv *taintVal, via string) {
	if !st.emit {
		return
	}
	for p := range tv.params {
		st.escapes[sink] = append(st.escapes[sink], p)
	}
	if tv.why != "" && st.report {
		st.al.Report(pos,
			"%s flows into %s%s in deterministic package %s: nondeterminism becomes sim-visible state and breaks bit-exact replay",
			tv.why, sink, via, st.pass.Pkg.Path())
	}
}

// exprTaint computes the taint of an expression from the current state.
func (st *funcState) exprTaint(e ast.Expr) *taintVal {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := st.objOf(e); obj != nil {
			return st.taint[obj]
		}
	case *ast.SelectorExpr:
		// Field of a tainted value, or a (possibly tainted) package object.
		if tv := st.exprTaint(e.X); tv != nil {
			return tv
		}
		if obj := st.pass.TypesInfo.Uses[e.Sel]; obj != nil {
			return st.taint[obj]
		}
	case *ast.IndexExpr:
		return merge(st.exprTaint(e.X), st.exprTaint(e.Index))
	case *ast.SliceExpr:
		return st.exprTaint(e.X)
	case *ast.StarExpr:
		return st.exprTaint(e.X)
	case *ast.UnaryExpr:
		return st.exprTaint(e.X)
	case *ast.BinaryExpr:
		return merge(st.exprTaint(e.X), st.exprTaint(e.Y))
	case *ast.TypeAssertExpr:
		return st.exprTaint(e.X)
	case *ast.KeyValueExpr:
		return st.exprTaint(e.Value)
	case *ast.CompositeLit:
		var out *taintVal
		for _, elt := range e.Elts {
			out = merge(out, st.exprTaint(elt))
		}
		return out
	case *ast.CallExpr:
		return st.callTaint(e)
	}
	return nil
}

// callTaint computes the taint of a call's result: conversions and builtins
// propagate operand taint, entropy sources and ReturnsEntropy callees
// introduce it, everything else is clean (facts are the only conduit).
func (st *funcState) callTaint(call *ast.CallExpr) *taintVal {
	// Type conversion T(x): propagates, and unsafe address conversions are
	// themselves sources (pointer values change across runs with ASLR).
	if tv, ok := st.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		argTaint := st.exprTaint(call.Args[0])
		if isUnsafeConv(st.pass, tv.Type, call.Args[0]) && !st.al.Sanctioned(call.Pos()) {
			return merge(&taintVal{why: "pointer-address entropy (unsafe conversion)", params: map[int]bool{}}, argTaint)
		}
		return argTaint
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := st.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "len", "cap", "append", "min", "max":
				var out *taintVal
				for _, arg := range call.Args {
					out = merge(out, st.exprTaint(arg))
				}
				return out
			}
			return nil
		}
	}
	fn := calleeFunc(st.pass, call)
	if fn == nil {
		return nil
	}
	if why, banned := itslint.EntropySource(fn); banned {
		if st.al.Sanctioned(call.Pos()) {
			return nil
		}
		return &taintVal{why: why, params: map[int]bool{}}
	}
	var ret ReturnsEntropy
	if st.pass.ImportObjectFact(fn, &ret) {
		why := ret.Why
		if !strings.Contains(why, "via ") {
			why = fmt.Sprintf("%s (via %s)", why, funcName(fn))
		}
		return &taintVal{why: why, params: map[int]bool{}}
	}
	return nil
}

// calleeFunc resolves the called function or method, or nil for indirect
// calls, builtins and conversions.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func funcName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// directSinkArgs returns the argument indices of fn that are determinism-
// critical sinks by signature.
func directSinkArgs(fn *types.Func) []int {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	switch pkg.Path() {
	case "itsim/internal/sim":
		if recvNamed(fn) == "Engine" {
			switch fn.Name() {
			case "Schedule", "ScheduleHandler", "ScheduleAfter":
				return []int{0}
			}
		}
	case "itsim/internal/prng":
		if fn.Name() == "New" && recvNamed(fn) == "" {
			return []int{0}
		}
	case "math/rand":
		switch fn.Name() {
		case "NewSource", "Seed":
			if recvNamed(fn) == "" {
				return []int{0}
			}
		}
	case "math/rand/v2":
		switch fn.Name() {
		case "NewPCG":
			return []int{0, 1}
		case "NewChaCha8":
			return []int{0}
		}
	}
	return nil
}

// sinkNameFor names the sink class of a direct-sink function.
func sinkNameFor(fn *types.Func) string {
	if fn.Pkg() != nil && fn.Pkg().Path() == "itsim/internal/sim" {
		return "event-queue insertion key"
	}
	return rngSeedSink
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// structSink reports whether writing a field of typ is a determinism-
// critical sink: obs.Event feeds the trace stream, and every exported
// struct in internal/metrics is (transitively) part of a frozen summary.
func structSink(typ types.Type) (string, bool) {
	t := typ
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return "", false
	}
	switch n.Obj().Pkg().Path() {
	case "itsim/internal/obs":
		if n.Obj().Name() == "Event" {
			return "obs event field", true
		}
	case "itsim/internal/metrics":
		if n.Obj().Exported() {
			return "metrics summary field", true
		}
	}
	return "", false
}

// isUnsafeConv reports whether converting arg to typ crosses the
// pointer/integer boundary: unsafe.Pointer→uintptr or pointer→unsafe.Pointer.
func isUnsafeConv(pass *analysis.Pass, typ types.Type, arg ast.Expr) bool {
	argType := pass.TypesInfo.TypeOf(arg)
	if argType == nil {
		return false
	}
	if b, ok := typ.Underlying().(*types.Basic); ok {
		if b.Kind() == types.Uintptr && isUnsafePointer(argType) {
			return true
		}
		return false
	}
	if isUnsafePointer(typ) {
		_, isPtr := argType.Underlying().(*types.Pointer)
		return isPtr || isUnsafePointer(argType)
	}
	return false
}

func isUnsafePointer(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}

// isSanitizer reports whether fn imposes a deterministic order on its
// argument: the sort/slices sorting entry points.
func isSanitizer(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Sort", "Stable", "Slice", "SliceStable":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}
