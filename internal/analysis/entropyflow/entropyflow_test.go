package entropyflow_test

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	"itsim/internal/analysis/atest"
	"itsim/internal/analysis/entropyflow"
	"itsim/internal/analysis/simdeterminism"
)

// TestEntropyFlow checks both polarities on the fixture tree: the chaos
// consumer package (deterministic set) must flag every laundered-entropy
// sink and nothing else, and the helper packages outside the set must stay
// diagnostic-free even though they contain the map ranges.
func TestEntropyFlow(t *testing.T) {
	atest.Run(t, "../testdata", entropyflow.Analyzer,
		"itsim/internal/chaos", "itsim/internal/lib/order", "itsim/internal/lib/wrap")
}

// TestHelperChainBeyondSimdeterminism is the regression proof from the
// acceptance criteria: the map-range leak hidden behind the two-package
// order→wrap helper chain is caught by entropyflow and NOT caught by
// simdeterminism alone on the consumer package.
func TestHelperChainBeyondSimdeterminism(t *testing.T) {
	ed := atest.RunResult(t, "../testdata", entropyflow.Analyzer, "itsim/internal/chaos")
	found := false
	for _, d := range ed {
		if strings.Contains(d.Message, "via itsim/internal/lib/order.Keys") &&
			strings.Contains(d.Message, "event-queue insertion key") {
			found = true
		}
	}
	if !found {
		t.Fatalf("entropyflow did not catch the two-package helper-chain leak; diagnostics: %+v", ed)
	}
	sd := atest.RunResult(t, "../testdata", simdeterminism.Analyzer, "itsim/internal/chaos")
	if len(sd) != 0 {
		t.Fatalf("simdeterminism unexpectedly caught the laundered leak (the fixture must contain "+
			"no direct source): %+v", sd)
	}
}

// TestFactRoundTrip proves each fact type survives the gob serialization
// the vet driver applies between compilation units.
func TestFactRoundTrip(t *testing.T) {
	facts := []any{
		&entropyflow.ReturnsEntropy{Why: "map iteration order (via p.F)"},
		&entropyflow.ParamEscapesToSink{Params: []int{0, 2}, Sink: "PRNG seed; obs event field"},
		&entropyflow.SeedsRNG{Params: []int{1}},
	}
	for _, f := range facts {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(f); err != nil {
			t.Fatalf("encoding %T: %v", f, err)
		}
		out := reflect.New(reflect.TypeOf(f).Elem()).Interface()
		if err := gob.NewDecoder(&buf).Decode(out); err != nil {
			t.Fatalf("decoding %T: %v", f, err)
		}
		if !reflect.DeepEqual(f, out) {
			t.Errorf("%T round-trip mismatch: sent %+v, got %+v", f, f, out)
		}
	}
}
