package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{3 * Microsecond, "3.000µs"},
		{7*Microsecond + 500*Nanosecond, "7.500µs"},
		{12 * Millisecond, "12.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestScheduleAndAdvanceTo(t *testing.T) {
	var e Engine
	var fired []int
	e.Schedule(30, func(Time) { fired = append(fired, 3) })
	e.Schedule(10, func(Time) { fired = append(fired, 1) })
	e.Schedule(20, func(Time) { fired = append(fired, 2) })
	e.AdvanceTo(25)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
	e.AdvanceTo(30)
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("fired = %v, want [1 2 3]", fired)
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func(Time) { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func(Time) {})
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	var e Engine
	e.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backwards did not panic")
		}
	}()
	e.AdvanceTo(50)
}

func TestNegativeAdvancePanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	e.Advance(-1)
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(10, func(Time) { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel returned true")
	}
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	var e Engine
	ev := e.Schedule(10, func(Time) {})
	e.RunUntilIdle()
	if e.Cancel(ev) {
		t.Fatal("Cancel of fired event returned true")
	}
}

func TestEventsScheduledDuringEvent(t *testing.T) {
	var e Engine
	var fired []Time
	e.Schedule(10, func(now Time) {
		fired = append(fired, now)
		e.Schedule(now+5, func(now2 Time) { fired = append(fired, now2) })
	})
	e.AdvanceTo(20)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestNestedEventBeyondHorizonStaysPending(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(10, func(now Time) {
		e.Schedule(now+100, func(Time) { fired = true })
	})
	e.AdvanceTo(50)
	if fired {
		t.Fatal("event beyond AdvanceTo horizon fired early")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestStepOne(t *testing.T) {
	var e Engine
	count := 0
	e.Schedule(5, func(Time) { count++ })
	e.Schedule(9, func(Time) { count++ })
	if !e.StepOne() {
		t.Fatal("StepOne returned false with pending events")
	}
	if count != 1 || e.Now() != 5 {
		t.Fatalf("after StepOne: count=%d now=%v", count, e.Now())
	}
	if !e.StepOne() || e.Now() != 9 {
		t.Fatalf("second StepOne: now=%v", e.Now())
	}
	if e.StepOne() {
		t.Fatal("StepOne returned true on empty queue")
	}
}

func TestNextEventTime(t *testing.T) {
	var e Engine
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("NextEventTime ok on empty queue")
	}
	e.Schedule(42, func(Time) {})
	if at, ok := e.NextEventTime(); !ok || at != 42 {
		t.Fatalf("NextEventTime = %v,%v want 42,true", at, ok)
	}
}

func TestScheduleAfterClampsNegative(t *testing.T) {
	var e Engine
	e.Advance(10)
	ev := e.ScheduleAfter(-5, func(Time) {})
	if ev.At != 10 {
		t.Fatalf("ScheduleAfter(-5) at %v, want now (10)", ev.At)
	}
}

func TestCounters(t *testing.T) {
	var e Engine
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func(Time) {})
	}
	e.RunUntilIdle()
	if e.Scheduled() != 5 || e.Fired() != 5 || e.Pending() != 0 {
		t.Fatalf("counters: sched=%d fired=%d pending=%d", e.Scheduled(), e.Fired(), e.Pending())
	}
}

// Property: events always fire in non-decreasing timestamp order regardless
// of insertion order.
func TestFiringOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var e Engine
		var fired []Time
		for _, ti := range times {
			e.Schedule(Time(ti), func(now Time) { fired = append(fired, now) })
		}
		e.RunUntilIdle()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
