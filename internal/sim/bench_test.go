package sim

import "testing"

func BenchmarkScheduleFire(b *testing.B) {
	var e Engine
	fn := func(Time) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Time(i%64), fn)
		if e.Pending() > 64 {
			e.StepOne()
		}
	}
}
