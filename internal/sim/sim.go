// Package sim provides the deterministic discrete-event core of the
// simulator: a virtual nanosecond clock and a binary-heap event queue.
//
// The machine model (internal/machine) advances the clock directly while the
// simulated CPU executes a trace, and schedules future work — DMA
// completions, asynchronous I/O completions, prefetch arrivals — as events.
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps runs reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in nanoseconds since the start of a run.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "3.000µs".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a unit of future work. Fn runs when the clock reaches At.
type Event struct {
	At  Time
	Fn  func(now Time)
	seq uint64 // tie-break: FIFO among equal timestamps
	idx int    // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.idx == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending-event queue. The zero value
// is ready to use.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	fired  uint64
	sched  uint64
	inStep bool
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// Scheduled returns the total number of events ever scheduled.
func (e *Engine) Scheduled() uint64 { return e.sched }

// Fired returns the total number of events that have run.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (at < Now) is a programming error and panics: the machine model must never
// generate causality violations. Returns a handle usable with Cancel.
func (e *Engine) Schedule(at Time, fn func(now Time)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &Event{At: at, Fn: fn, seq: e.seq}
	e.seq++
	e.sched++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAfter queues fn to run delay nanoseconds from now.
func (e *Engine) ScheduleAfter(delay Time, fn func(now Time)) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.Schedule(e.now+delay, fn)
}

// Cancel removes a pending event so it never fires. Cancelling an event that
// already fired (or was already cancelled) is a no-op returning false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -2
	return true
}

// NextEventTime returns the timestamp of the earliest pending event and true,
// or (0, false) when the queue is empty.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].At, true
}

// Advance moves the clock forward by d without firing events. It panics if
// d is negative. Events that fall inside the skipped window remain pending;
// callers that need them processed use AdvanceTo/RunUntil instead. This is
// the fast path used while the CPU burns through compute gaps with no device
// activity outstanding.
func (e *Engine) Advance(d Time) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	e.now += d
}

// AdvanceTo moves the clock to t (>= now), firing every event with At <= t in
// order. Event functions may schedule further events; those are honoured if
// they also fall at or before t.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before now %v", t, e.now))
	}
	for len(e.queue) > 0 && e.queue[0].At <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunUntilIdle fires events in timestamp order until the queue is empty.
func (e *Engine) RunUntilIdle() {
	for len(e.queue) > 0 {
		e.step()
	}
}

// StepOne fires exactly the earliest pending event (advancing the clock to
// it) and reports whether an event was fired.
func (e *Engine) StepOne() bool {
	if len(e.queue) == 0 {
		return false
	}
	e.step()
	return true
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*Event)
	if ev.At > e.now {
		e.now = ev.At
	}
	e.fired++
	ev.Fn(e.now)
}
