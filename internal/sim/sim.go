// Package sim provides the deterministic discrete-event core of the
// simulator: a virtual nanosecond clock and a calendar-queue event core.
//
// The machine model (internal/machine) advances the clock directly while the
// simulated CPU executes a trace, and schedules future work — DMA
// completions, asynchronous I/O completions, prefetch arrivals — as events.
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps runs reproducible.
//
// # Calendar queue
//
// Pending events live in a calendar queue (R. Brown, CACM 1988): a flat
// power-of-two array of buckets, each one "day" of virtual time wide, with
// bucket b holding every event whose day index is congruent to b modulo the
// bucket count. Each bucket keeps its events sorted by (At, seq), so the
// earliest event of the whole queue is always the head of some bucket and
// dequeue walks at most one bucket per empty day. Unlike a binary heap the
// structure never moves events after insertion, the common
// append-at-the-end insert touches one cache line, and the earliest pending
// event is cached so NextEventTime — which the SMP coordinator polls every
// step — is a single load.
//
// The tie-break order is load-bearing and frozen: events with equal At fire
// strictly in scheduling order (ascending seq). Every determinism anchor of
// the repository — machine⇔1-core-SMP equivalence, seeded-fault repeats,
// `itsbench diff` at zero tolerance — depends on same-time completions,
// wake-ups and trace emissions interleaving exactly this way. Equal-At
// events always share a bucket (same day), where they sit in seq order, so
// the calendar preserves the heap's FIFO semantics bit-for-bit.
//
// # Memory discipline
//
// Fired events return to a free list on the Engine and are reused by later
// Schedule calls, so steady-state simulation allocates no event structs.
// Two consequences bind callers: (1) a *Event handle must not be Cancelled
// after its event fired — the struct may already belong to a newer event
// (the executor maintains this by dropping its PendingIO tracking entry in
// the same completion that fires); (2) reading At or Cancelled from a
// handle whose event fired is similarly stale. Cancelled events are NOT
// recycled — Cancel is rare (work-steal re-homing only) and the handle
// stays valid for Cancelled() queries. Hot paths schedule a Handler
// implemented on a long-lived struct instead of a closure, so scheduling
// itself allocates nothing either.
package sim

import (
	"fmt"
	"math"
)

// Time is a virtual timestamp in nanoseconds since the start of a run.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "3.000µs".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Handler is the allocation-free alternative to scheduling a closure: a
// long-lived struct implements Fire and is scheduled with ScheduleHandler.
type Handler interface {
	// Fire runs when the clock reaches the event's time.
	Fire(now Time)
}

// Event is a unit of future work: either fn or h runs when the clock
// reaches At.
type Event struct {
	At  Time
	fn  func(now Time)
	h   Handler
	seq uint64 // tie-break: FIFO among equal timestamps
	bkt int32  // bucket index; -1 once popped/recycled, -2 cancelled
}

// Cancelled reports whether the event was removed before firing. Only
// meaningful on a handle whose event has not fired (see the package
// comment's recycling rules).
func (e *Event) Cancelled() bool { return e.bkt == -2 }

// Calendar-queue sizing. The queue is typically small (outstanding device
// completions, wake-ups, at most one gauge tick), so it starts at 8 buckets
// one microsecond wide — the scale of ULL completion spacing — and doubles
// whenever occupancy exceeds two events per bucket, re-estimating the day
// width from the observed event span.
const (
	cqMinBuckets = 8
	cqMaxBuckets = 4096
	cqInitWidth  = Microsecond
)

// Engine owns the virtual clock and the pending-event calendar. The zero
// value is ready to use.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64
	sched uint64

	// The calendar proper: len(buckets) is a power of two, width is the
	// day length, count the number of pending events.
	buckets [][]*Event
	width   Time
	count   int
	// cursor/curTop track the dequeue position: events in buckets[cursor]
	// with At < curTop belong to the current day and fire next. Invariant:
	// no pending event has At < curTop-width.
	cursor int
	curTop Time
	// min caches the earliest pending event (nil = recompute on demand).
	min *Event
	// free holds fired events for reuse.
	free []*Event
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events not yet fired.
func (e *Engine) Pending() int { return e.count }

// Scheduled returns the total number of events ever scheduled.
func (e *Engine) Scheduled() uint64 { return e.sched }

// Fired returns the total number of events that have run.
func (e *Engine) Fired() uint64 { return e.fired }

// newEvent validates at, takes an event from the free list (or allocates)
// and inserts it into the calendar.
func (e *Engine) newEvent(at Time) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	if e.buckets == nil {
		e.buckets = make([][]*Event, cqMinBuckets)
		e.width = cqInitWidth
		e.curTop = e.width
	}
	if e.count >= 2*len(e.buckets) && len(e.buckets) < cqMaxBuckets {
		e.grow()
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.At = at
	ev.seq = e.seq
	e.seq++
	e.sched++
	e.insert(ev)
	return ev
}

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (at < Now) is a programming error and panics: the machine model must never
// generate causality violations. Returns a handle usable with Cancel.
func (e *Engine) Schedule(at Time, fn func(now Time)) *Event {
	ev := e.newEvent(at)
	ev.fn = fn
	ev.h = nil
	return ev
}

// ScheduleHandler queues h.Fire to run at absolute time at — the
// allocation-free form of Schedule for hot paths. Same past-time panic and
// Cancel semantics.
func (e *Engine) ScheduleHandler(at Time, h Handler) *Event {
	ev := e.newEvent(at)
	ev.fn = nil
	ev.h = h
	return ev
}

// ScheduleAfter queues fn to run delay nanoseconds from now.
func (e *Engine) ScheduleAfter(delay Time, fn func(now Time)) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.Schedule(e.now+delay, fn)
}

// bucketOf maps a timestamp to its bucket: day index modulo bucket count.
func (e *Engine) bucketOf(at Time) int {
	return int(uint64(at) / uint64(e.width) & uint64(len(e.buckets)-1))
}

// dayTop returns the exclusive end of at's day, saturating at the far
// future so times near the horizon cannot overflow.
func (e *Engine) dayTop(at Time) Time {
	top := at - at%e.width + e.width
	if top < at {
		return math.MaxInt64
	}
	return top
}

// insert places ev into its bucket keeping (At, seq) order, and repairs the
// cursor and cached minimum.
func (e *Engine) insert(ev *Event) {
	idx := e.bucketOf(ev.At)
	b := e.buckets[idx]
	i := len(b)
	for i > 0 && (b[i-1].At > ev.At || (b[i-1].At == ev.At && b[i-1].seq > ev.seq)) {
		i--
	}
	b = append(b, nil)
	copy(b[i+1:], b[i:])
	b[i] = ev
	e.buckets[idx] = b
	ev.bkt = int32(idx)
	e.count++
	// An event earlier than the cursor's day rewinds the dequeue position;
	// otherwise the no-event-before-cursor-day invariant would break.
	if e.count == 1 || ev.At < e.curTop-e.width {
		e.cursor = idx
		e.curTop = e.dayTop(ev.At)
	}
	if e.min != nil && ev.At < e.min.At {
		e.min = ev
	} else if e.min == nil && e.count == 1 {
		e.min = ev
	}
}

// grow doubles the bucket array, re-estimating the day width from the
// pending events' span, and redistributes. Deterministic: a pure function
// of the queue contents.
func (e *Engine) grow() {
	old := e.buckets
	var evs []*Event
	lo, hi := Time(math.MaxInt64), Time(0)
	for _, b := range old {
		for _, ev := range b {
			evs = append(evs, ev)
			if ev.At < lo {
				lo = ev.At
			}
			if ev.At > hi {
				hi = ev.At
			}
		}
	}
	e.buckets = make([][]*Event, 2*len(old))
	if n := Time(len(evs)); n > 0 {
		if w := (hi - lo) / n; w > e.width {
			e.width = w
		}
	}
	e.count = 0
	e.min = nil
	e.cursor = 0
	e.curTop = e.width
	for _, ev := range evs {
		e.count++
		idx := e.bucketOf(ev.At)
		b := e.buckets[idx]
		i := len(b)
		for i > 0 && (b[i-1].At > ev.At || (b[i-1].At == ev.At && b[i-1].seq > ev.seq)) {
			i--
		}
		b = append(b, nil)
		copy(b[i+1:], b[i:])
		b[i] = ev
		e.buckets[idx] = b
		ev.bkt = int32(idx)
	}
	if len(evs) > 0 {
		e.cursor = e.bucketOf(lo)
		e.curTop = e.dayTop(lo)
	}
}

// findMin returns the earliest pending event (caching it), or nil when the
// queue is empty. The walk visits at most one full year of days before
// falling back to a direct scan of the bucket heads (the sparse-queue
// case), after which the cursor is re-seated at the found event's day.
func (e *Engine) findMin() *Event {
	if e.min != nil {
		return e.min
	}
	if e.count == 0 {
		return nil
	}
	n := len(e.buckets)
	for i := 0; i < n; i++ {
		b := e.buckets[e.cursor]
		if len(b) > 0 && b[0].At < e.curTop {
			e.min = b[0]
			return b[0]
		}
		e.cursor++
		if e.cursor == n {
			e.cursor = 0
		}
		if e.curTop > math.MaxInt64-e.width {
			e.curTop = math.MaxInt64
		} else {
			e.curTop += e.width
		}
	}
	var best *Event
	for _, b := range e.buckets {
		if len(b) == 0 {
			continue
		}
		h := b[0]
		if best == nil || h.At < best.At || (h.At == best.At && h.seq < best.seq) {
			best = h
		}
	}
	e.cursor = e.bucketOf(best.At)
	e.curTop = e.dayTop(best.At)
	e.min = best
	return best
}

// remove unlinks ev from its bucket (order-preserving).
func (e *Engine) remove(ev *Event) {
	idx := int(ev.bkt)
	b := e.buckets[idx]
	for i, q := range b {
		if q == ev {
			copy(b[i:], b[i+1:])
			b[len(b)-1] = nil
			e.buckets[idx] = b[:len(b)-1]
			break
		}
	}
	e.count--
	if e.min == ev {
		e.min = nil
	}
}

// Cancel removes a pending event so it never fires. Cancelling an event that
// was already cancelled is a no-op returning false — as is cancelling a
// handle whose event fired and was not yet reused, but holding a handle
// past its fire time is a caller bug (the struct is recycled; see the
// package comment).
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.bkt < 0 {
		return false
	}
	e.remove(ev)
	ev.bkt = -2
	return true
}

// NextEventTime returns the timestamp of the earliest pending event and true,
// or (0, false) when the queue is empty.
func (e *Engine) NextEventTime() (Time, bool) {
	ev := e.findMin()
	if ev == nil {
		return 0, false
	}
	return ev.At, true
}

// Advance moves the clock forward by d without firing events. It panics if
// d is negative. Events that fall inside the skipped window remain pending;
// callers that need them processed use AdvanceTo/RunUntil instead. This is
// the fast path used while the CPU burns through compute gaps with no device
// activity outstanding.
func (e *Engine) Advance(d Time) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	e.now += d
}

// AdvanceTo moves the clock to t (>= now), firing every event with At <= t in
// order. Event functions may schedule further events; those are honoured if
// they also fall at or before t.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before now %v", t, e.now))
	}
	for {
		ev := e.findMin()
		if ev == nil || ev.At > t {
			break
		}
		e.fire(ev)
	}
	if e.now < t {
		e.now = t
	}
}

// RunUntilIdle fires events in timestamp order until the queue is empty.
func (e *Engine) RunUntilIdle() {
	for {
		ev := e.findMin()
		if ev == nil {
			break
		}
		e.fire(ev)
	}
}

// StepOne fires exactly the earliest pending event (advancing the clock to
// it) and reports whether an event was fired.
func (e *Engine) StepOne() bool {
	ev := e.findMin()
	if ev == nil {
		return false
	}
	e.fire(ev)
	return true
}

// fire pops ev (the cached minimum), advances the clock, recycles the
// struct and runs the payload. The payload is read out before recycling so
// the event it schedules next may legally reuse the same struct.
func (e *Engine) fire(ev *Event) {
	e.remove(ev)
	if ev.At > e.now {
		e.now = ev.At
	}
	e.fired++
	fn, h := ev.fn, ev.h
	ev.fn = nil
	ev.h = nil
	ev.bkt = -1
	e.free = append(e.free, ev)
	if h != nil {
		h.Fire(e.now)
	} else {
		fn(e.now)
	}
}
