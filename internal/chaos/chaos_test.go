package chaos

import (
	"strings"
	"testing"

	"itsim/internal/sim"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want Config // compared only when wantErr is empty
		errs string // substring the error must contain; empty = must parse
	}{
		{name: "empty", spec: "", want: Config{}},
		{name: "whitespace only", spec: "  ", want: Config{}},
		{name: "full", spec: "seed=42,crashr=5,crashd=3ms,warm=1ms,warmx=2.5,brownr=10,brownd=500us,brownx=6,flapr=2,flapd=250us",
			want: Config{Seed: 42, CrashRate: 5, CrashDown: 3 * sim.Millisecond,
				Warm: sim.Millisecond, WarmMult: 2.5, BrownRate: 10,
				BrownDur: 500 * sim.Microsecond, BrownMult: 6, FlapRate: 2,
				FlapDown: 250 * sim.Microsecond}},
		{name: "spaces and case", spec: " CRASHR = 1 , FlapR = 2 ",
			want: Config{CrashRate: 1, FlapRate: 2}},
		{name: "hex seed", spec: "seed=0xdead", want: Config{Seed: 0xdead}},
		{name: "trailing comma", spec: "crashr=1,", want: Config{CrashRate: 1}},

		{name: "bare key", spec: "crashr", errs: "malformed spec entry"},
		{name: "unknown key", spec: "crasher=1", errs: "unknown spec key"},
		{name: "bad float", spec: "crashr=fast", errs: "bad value for crashr"},
		{name: "bad duration", spec: "crashd=3", errs: "bad value for crashd"},
		{name: "bad seed", spec: "seed=-1", errs: "bad value for seed"},
		{name: "negative rate", spec: "crashr=-1", errs: "crash rate must be finite and >= 0"},
		{name: "nan rate", spec: "brownr=NaN", errs: "brownout rate must be finite"},
		{name: "inf rate", spec: "flapr=Inf", errs: "flap rate must be finite"},
		{name: "rate beyond max", spec: "crashr=1e8", errs: "crash rate must be <= 1e+07"},
		{name: "negative duration", spec: "brownd=-1ms", errs: "brownout window must be >= 0"},
		{name: "mult below one", spec: "brownx=0.5", errs: "brownout multiplier must be >= 1"},
		{name: "nan mult", spec: "warmx=NaN", errs: "warm multiplier must be >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseSpec(tc.spec)
			if tc.errs != "" {
				if err == nil || !strings.Contains(err.Error(), tc.errs) {
					t.Fatalf("ParseSpec(%q) err = %v, want substring %q", tc.spec, err, tc.errs)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
			}
			if got != tc.want {
				t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
			}
		})
	}
}

func TestCheckProb(t *testing.T) {
	for _, p := range []float64{0, 0.5, 1} {
		if err := CheckProb("p", p); err != nil {
			t.Errorf("CheckProb(%v) = %v, want nil", p, err)
		}
	}
	nan := func() float64 { var z float64; return z / z }()
	for _, p := range []float64{-0.01, 1.01, 2, nan} {
		if err := CheckProb("p", p); err == nil {
			t.Errorf("CheckProb(%v) = nil, want error", p)
		}
	}
}

// TestScheduleDeterminism: same (seed, id) ⇒ identical stream; different
// ids and different seeds ⇒ decorrelated streams.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, CrashRate: 100, BrownRate: 50, FlapRate: 25}
	draw := func(seed uint64, id int) []sim.Time {
		c := cfg
		c.Seed = seed
		s := New(c).Machine(id)
		var out []sim.Time
		for i := 0; i < 32; i++ {
			out = append(out, s.Next())
			// Advance whichever axis produced the minimum.
			switch s.Next() {
			case s.Crash.Peek():
				s.Crash.Advance()
			case s.Brown.Peek():
				s.Brown.Advance()
			default:
				s.Flap.Advance()
			}
		}
		return out
	}
	eq := func(a, b []sim.Time) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eq(draw(7, 0), draw(7, 0)) {
		t.Errorf("same (seed, id) produced different schedules")
	}
	if eq(draw(7, 0), draw(7, 1)) {
		t.Errorf("different machine ids share a schedule")
	}
	if eq(draw(7, 0), draw(8, 0)) {
		t.Errorf("different seeds share a schedule")
	}
}

// TestStreamsStrictlyIncrease: window starts are strictly increasing even
// at the maximum rate (the 1 ns floor).
func TestStreamsStrictlyIncrease(t *testing.T) {
	s := newStream(MaxRate, 1)
	prev := sim.Time(-1)
	for i := 0; i < 1000; i++ {
		cur := s.Peek()
		if cur <= prev {
			t.Fatalf("stream not strictly increasing: %d after %d", cur, prev)
		}
		prev = cur
		s.Advance()
	}
}

// TestZeroRateAxisInert: a disabled axis owns no PRNG, never fires, and
// Advance on it is a no-op — so sweeping one axis can never disturb
// another's stream.
func TestZeroRateAxisInert(t *testing.T) {
	s := New(Config{Seed: 3, CrashRate: 10}).Machine(0)
	if s.Brown.Peek() != Never || s.Flap.Peek() != Never {
		t.Fatalf("zero-rate axes fired: brown=%d flap=%d", s.Brown.Peek(), s.Flap.Peek())
	}
	first := s.Crash.Peek()
	s.Brown.Advance()
	s.Flap.Advance()
	if s.Crash.Peek() != first || s.Brown.Peek() != Never {
		t.Errorf("advancing disabled axes perturbed the schedule")
	}

	// Enabling a second axis must not reshuffle the first one's windows.
	both := New(Config{Seed: 3, CrashRate: 10, BrownRate: 10}).Machine(0)
	if both.Crash.Peek() != first {
		t.Errorf("enabling brownouts moved the first crash: %d != %d", both.Crash.Peek(), first)
	}
}

func TestDefaults(t *testing.T) {
	eff := New(Config{CrashRate: 1, BrownRate: 1, FlapRate: 1}).Config()
	want := Config{CrashRate: 1, BrownRate: 1, FlapRate: 1,
		CrashDown: DefaultCrashDown, Warm: DefaultWarm, WarmMult: DefaultWarmMult,
		BrownDur: DefaultBrownDur, BrownMult: DefaultBrownMult, FlapDown: DefaultFlapDown}
	if eff != want {
		t.Errorf("defaulted config = %+v, want %+v", eff, want)
	}
	// Explicit values survive defaulting.
	eff = New(Config{CrashRate: 1, CrashDown: sim.Microsecond, WarmMult: 8}).Config()
	if eff.CrashDown != sim.Microsecond || eff.WarmMult != 8 {
		t.Errorf("explicit knobs overwritten: %+v", eff)
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Errorf("zero config reports Enabled")
	}
	if (Config{CrashDown: sim.Millisecond, BrownMult: 4}).Enabled() {
		t.Errorf("rates-free config reports Enabled")
	}
	for _, c := range []Config{{CrashRate: 1}, {BrownRate: 1}, {FlapRate: 1}} {
		if !c.Enabled() {
			t.Errorf("config %+v reports disabled", c)
		}
	}
}
