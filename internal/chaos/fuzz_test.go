package chaos

import (
	"strings"
	"testing"
)

// FuzzParseChaosSpec: ParseSpec must never panic, every accepted spec must
// validate, and accepted specs must round-trip deterministically (parsing
// twice yields the same Config).
func FuzzParseChaosSpec(f *testing.F) {
	seeds := []string{
		"",
		"seed=42",
		"crashr=5,crashd=3ms",
		"seed=1,crashr=5,crashd=3ms,warm=1ms,warmx=2.5,brownr=10,brownd=500us,brownx=6,flapr=2,flapd=250us",
		"crashr=1e8",
		"brownx=0.5",
		"flapd=-1ms",
		"crashr=NaN",
		"seed=0xffffffffffffffff",
		"crashr",
		"=1",
		"crashr=1,,flapr=2,",
		" CRASHR = 1 ",
		"unknown=1",
		"crashd=1h",
		strings.Repeat("crashr=1,", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			if cfg != (Config{}) {
				t.Fatalf("error path leaked a non-zero config: %+v", cfg)
			}
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", spec, verr)
		}
		again, err := ParseSpec(spec)
		if err != nil || again != cfg {
			t.Fatalf("reparse of %q diverged: %+v vs %+v (err %v)", spec, cfg, again, err)
		}
		// The defaulted config must stay valid and the injector usable.
		inj := New(cfg)
		if ierr := inj.Config().Validate(); ierr != nil {
			t.Fatalf("defaulted config invalid for %q: %v", spec, ierr)
		}
		_ = inj.Machine(0).Next()
	})
}
