// Package chaos provides seeded, fully deterministic machine-level fault
// injection for the fleet simulation (internal/cluster) — the cluster-scope
// sibling of internal/fault's device-level injector. Where fault makes one
// ULL device misbehave per request, chaos makes whole machines misbehave
// over time: crash/restart windows (the machine disappears, killing its
// in-flight epoch), brownouts (a window during which every epoch the
// machine starts runs a configurable factor slower — thermal throttling,
// a noisy neighbour, a failing fan), and flapping (repeated graceful
// leave/rejoin cycles — rolling restarts, preemptible instances).
//
// Determinism is the same design constraint as in internal/fault: every
// window is drawn from seeded PRNG streams derived only from the chaos
// seed and the machine id — never from simulation state — so the same
// seed reproduces byte-identical schedules, and each axis draws from its
// own stream (distinct seed tweaks) so sweeping one rate never reshuffles
// another axis's windows. A zero-rate axis allocates no PRNG and draws
// nothing, making the all-zero Config byte-inert by construction.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"itsim/internal/prng"
	"itsim/internal/sim"
)

// Stream tweaks: XORed into the seed so the three chaos axes draw from
// uncorrelated PRNG streams.
const (
	crashTweak = 0x63726173685f6d63 // "crash_mc"
	brownTweak = 0x62726f776e5f6d63 // "brown_mc"
	flapTweak  = 0x666c61705f6d6163 // "flap_mac"
)

// machineTweak mixes the machine id into per-machine stream seeds (the
// multiplier is splitmix64's golden-ratio increment), so machines fail on
// decorrelated schedules from one chaos seed.
const machineTweak = 0x9E3779B97F4A7C15

// Defaults applied by New for fields left zero while their axis is active.
// Timescales match the fleet's: epochs are hundreds of microseconds to
// milliseconds, so a crash takes a machine out for a few epochs and a
// brownout spans roughly one.
const (
	DefaultCrashDown = 2 * sim.Millisecond
	DefaultWarm      = 2 * sim.Millisecond
	DefaultWarmMult  = 2.0
	DefaultBrownDur  = 1 * sim.Millisecond
	DefaultBrownMult = 4.0
	DefaultFlapDown  = 1 * sim.Millisecond
)

// MaxRate bounds every axis rate (events per virtual second, per machine):
// beyond this the schedule degenerates into a window every < 100 ns —
// denser than any epoch — and the coordinator would spend the run
// processing chaos transitions instead of requests.
const MaxRate = 1e7

// Config describes a deterministic machine-chaos schedule. The zero value
// injects nothing and is byte-inert.
type Config struct {
	// Seed selects the per-machine decision streams. Two injectors with
	// the same Config produce identical schedules.
	Seed uint64

	// CrashRate is the rate (events per virtual second, per machine) of
	// hard crashes: the machine drops to Down immediately, its in-flight
	// epoch is aborted and every queued request is re-homed. After
	// CrashDown the machine rejoins cache-cold: for Warm it is in the
	// Rejoining state and epochs it starts run WarmMult slower.
	CrashRate float64
	CrashDown sim.Time
	Warm      sim.Time
	WarmMult  float64

	// BrownRate is the rate of brownout windows: for BrownDur the machine
	// is Degraded and every epoch it starts runs BrownMult slower. The
	// machine keeps serving — slowly — which is exactly the failure mode
	// naive routing handles worst.
	BrownRate float64
	BrownDur  sim.Time
	BrownMult float64

	// FlapRate is the rate of graceful leave/rejoin cycles: the machine
	// drains (finishes its in-flight epoch, accepts nothing new, queued
	// requests re-home immediately), goes Down for FlapDown, then rejoins
	// through the same Rejoining warm-up as a crash.
	FlapRate float64
	FlapDown sim.Time
}

// Enabled reports whether the config injects any chaos at all. A disabled
// config must leave the fleet on exactly the code path it took before this
// package existed: no PRNG draws, no events, no summary fields.
func (c Config) Enabled() bool {
	return c.CrashRate > 0 || c.BrownRate > 0 || c.FlapRate > 0
}

// Bounds helpers. These are the shared user-input gates for spec-style
// knobs; internal/fault's Config.Validate reuses them so the two injector
// grammars reject bad input with identical semantics.

// CheckProb rejects probabilities outside [0, 1] (NaN included: no
// comparison admits it).
func CheckProb(name string, p float64) error {
	if !(p >= 0 && p <= 1) {
		return fmt.Errorf("%s must be in [0,1], got %v", name, p)
	}
	return nil
}

// CheckRate rejects event rates that are negative, non-finite, or beyond
// max (0 disables the axis).
func CheckRate(name string, r, max float64) error {
	if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
		return fmt.Errorf("%s must be finite and >= 0, got %v", name, r)
	}
	if r > max {
		return fmt.Errorf("%s must be <= %v, got %v", name, max, r)
	}
	return nil
}

// CheckMult rejects slowdown multipliers below 1 (0 means "use the
// default" and is accepted).
func CheckMult(name string, m float64) error {
	if m == 0 {
		return nil
	}
	if math.IsNaN(m) || math.IsInf(m, 0) || m < 1 {
		return fmt.Errorf("%s must be >= 1, got %v", name, m)
	}
	return nil
}

// CheckDur rejects negative durations.
func CheckDur(name string, d sim.Time) error {
	if d < 0 {
		return fmt.Errorf("%s must be >= 0, got %v", name, d)
	}
	return nil
}

// Validate rejects configs that are nonsensical rather than merely
// incomplete (New applies defaults for the latter). It is the user-input
// gate for the CLIs.
func (c Config) Validate() error {
	for _, check := range []error{
		CheckRate("chaos: crash rate", c.CrashRate, MaxRate),
		CheckRate("chaos: brownout rate", c.BrownRate, MaxRate),
		CheckRate("chaos: flap rate", c.FlapRate, MaxRate),
		CheckDur("chaos: crash downtime", c.CrashDown),
		CheckDur("chaos: rejoin warm-up", c.Warm),
		CheckDur("chaos: brownout window", c.BrownDur),
		CheckDur("chaos: flap downtime", c.FlapDown),
		CheckMult("chaos: warm multiplier", c.WarmMult),
		CheckMult("chaos: brownout multiplier", c.BrownMult),
	} {
		if check != nil {
			return check
		}
	}
	return nil
}

// withDefaults fills zero-valued knobs whose axis is active.
func (c Config) withDefaults() Config {
	if c.CrashDown <= 0 {
		c.CrashDown = DefaultCrashDown
	}
	if c.Warm <= 0 {
		c.Warm = DefaultWarm
	}
	if c.WarmMult < 1 {
		c.WarmMult = DefaultWarmMult
	}
	if c.BrownDur <= 0 {
		c.BrownDur = DefaultBrownDur
	}
	if c.BrownMult < 1 {
		c.BrownMult = DefaultBrownMult
	}
	if c.FlapDown <= 0 {
		c.FlapDown = DefaultFlapDown
	}
	return c
}

// Injector derives per-machine chaos schedules from one validated Config.
type Injector struct {
	cfg Config
}

// New builds an injector, applying defaults for zero-valued knobs
// (CrashDown 2 ms, Warm 2 ms ×2.0, BrownDur 1 ms ×4.0, FlapDown 1 ms).
// Use Config.Validate to reject bad user input first.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg.withDefaults()}
}

// Config returns the injector's effective (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Machine returns machine id's schedule: three independent lazy window
// streams. Schedules for distinct ids are decorrelated; the same (seed,
// id) pair always yields the same schedule.
func (in *Injector) Machine(id int) *Schedule {
	mix := uint64(id+1) * machineTweak
	c := &in.cfg
	return &Schedule{
		Crash: newStream(c.CrashRate, c.Seed^crashTweak^mix),
		Brown: newStream(c.BrownRate, c.Seed^brownTweak^mix),
		Flap:  newStream(c.FlapRate, c.Seed^flapTweak^mix),
	}
}

// Schedule is one machine's chaos timeline: a lazy, strictly increasing
// stream of window start times per axis. The consumer (the fleet
// coordinator) peeks the earliest applicable start, applies or drops it
// against its state machine, and advances the stream — schedule times
// never depend on what the consumer does with them.
type Schedule struct {
	Crash *Stream
	Brown *Stream
	Flap  *Stream
}

// Next returns the earliest pending window start across the three axes
// (Never when every axis is disabled or exhausted).
func (s *Schedule) Next() sim.Time {
	t := s.Crash.Peek()
	if b := s.Brown.Peek(); b < t {
		t = b
	}
	if f := s.Flap.Peek(); f < t {
		t = f
	}
	return t
}

// Never is the no-pending-window sentinel.
const Never = sim.Time(math.MaxInt64)

// Stream generates one axis's window start times: a homogeneous Poisson
// process at the axis rate, drawn lazily. A zero rate yields a stream that
// never fires and owns no PRNG (byte-inert by construction).
type Stream struct {
	rng       *prng.Source
	ratePerNs float64
	next      sim.Time
}

func newStream(ratePerSec float64, seed uint64) *Stream {
	s := &Stream{}
	if ratePerSec <= 0 {
		s.next = Never
		return s
	}
	s.rng = prng.New(seed)
	s.ratePerNs = ratePerSec / 1e9
	s.next = s.draw(0)
	return s
}

// draw samples the next start strictly after from: an exponential gap at
// the axis rate, floored at 1 ns so the stream is strictly increasing.
func (s *Stream) draw(from sim.Time) sim.Time {
	u := s.rng.Float64()
	gap := -math.Log(1-u) / s.ratePerNs
	g := sim.Time(gap)
	if g < 1 {
		g = 1
	}
	return from + g
}

// Peek returns the pending window start without consuming it.
func (s *Stream) Peek() sim.Time { return s.next }

// Advance consumes the pending start and draws the next one. Calling
// Advance on a disabled stream is a no-op.
func (s *Stream) Advance() {
	if s.rng == nil {
		return
	}
	s.next = s.draw(s.next)
}

// ParseSpec parses the CLI chaos-spec syntax: a comma-separated list of
// key=value pairs, the same grammar as -faults. Keys: seed (uint64),
// crashr (crashes per virtual second per machine), crashd (down window,
// Go duration), warm (rejoin warm-up duration), warmx (warm-up slowdown
// multiplier), brownr (brownouts per second), brownd (window), brownx
// (slowdown multiplier), flapr (graceful leave/rejoin per second), flapd
// (off duration). An empty spec yields the zero (disabled, byte-inert)
// Config. The result is validated.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, found := strings.Cut(field, "=")
		if !found {
			return Config{}, fmt.Errorf("chaos: malformed spec entry %q (want key=value)", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 0, 64)
		case "crashr":
			cfg.CrashRate, err = strconv.ParseFloat(val, 64)
		case "crashd":
			cfg.CrashDown, err = parseDuration(val)
		case "warm":
			cfg.Warm, err = parseDuration(val)
		case "warmx":
			cfg.WarmMult, err = strconv.ParseFloat(val, 64)
		case "brownr":
			cfg.BrownRate, err = strconv.ParseFloat(val, 64)
		case "brownd":
			cfg.BrownDur, err = parseDuration(val)
		case "brownx":
			cfg.BrownMult, err = strconv.ParseFloat(val, 64)
		case "flapr":
			cfg.FlapRate, err = strconv.ParseFloat(val, 64)
		case "flapd":
			cfg.FlapDown, err = parseDuration(val)
		default:
			return Config{}, fmt.Errorf("chaos: unknown spec key %q (known: %s)", key, strings.Join(specKeys(), ", "))
		}
		if err != nil {
			return Config{}, fmt.Errorf("chaos: bad value for %s: %v", key, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

func specKeys() []string {
	keys := []string{"seed", "crashr", "crashd", "warm", "warmx", "brownr", "brownd", "brownx", "flapr", "flapd"}
	sort.Strings(keys)
	return keys
}

func parseDuration(val string) (sim.Time, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	return sim.Time(d.Nanoseconds()), nil
}
