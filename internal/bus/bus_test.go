package bus

import (
	"testing"

	"itsim/internal/sim"
)

func TestDefaults(t *testing.T) {
	l := New(0, 0)
	want := int64(DefaultLanes) * DefaultLaneBandwidth
	if l.Bandwidth() != want {
		t.Fatalf("Bandwidth = %d, want %d", l.Bandwidth(), want)
	}
}

func TestTransferTime(t *testing.T) {
	l := New(4, 3_983_000_000) // ~15.93 GB/s aggregate
	// 4 KiB at 15.932 GB/s ≈ 257 ns (rounded up).
	got := l.TransferTime(4096)
	if got < 255*sim.Nanosecond || got > 260*sim.Nanosecond {
		t.Fatalf("TransferTime(4096) = %v, want ≈257ns", got)
	}
	if l.TransferTime(0) != 0 || l.TransferTime(-5) != 0 {
		t.Fatal("non-positive sizes must cost 0")
	}
}

func TestTransferTimeRoundsUp(t *testing.T) {
	l := New(1, int64(sim.Second)) // 1 byte per ns exactly
	if got := l.TransferTime(3); got != 3 {
		t.Fatalf("TransferTime(3) = %v, want 3ns", got)
	}
	l2 := New(1, int64(sim.Second)*2) // 2 bytes per ns
	if got := l2.TransferTime(3); got != 2 {
		t.Fatalf("TransferTime(3) at 2B/ns = %v, want 2ns (ceil)", got)
	}
}

func TestSerialization(t *testing.T) {
	l := New(1, int64(sim.Second)) // 1 byte/ns
	s1, d1 := l.Reserve(0, 100)
	if s1 != 0 || d1 != 100 {
		t.Fatalf("first transfer [%v,%v], want [0,100]", s1, d1)
	}
	// Second transfer ready at 50 must queue until 100.
	s2, d2 := l.Reserve(50, 100)
	if s2 != 100 || d2 != 200 {
		t.Fatalf("second transfer [%v,%v], want [100,200]", s2, d2)
	}
	// Third ready after drain starts immediately.
	s3, d3 := l.Reserve(300, 10)
	if s3 != 300 || d3 != 310 {
		t.Fatalf("third transfer [%v,%v], want [300,310]", s3, d3)
	}
	st := l.Stats()
	if st.Transfers != 3 || st.Bytes != 210 {
		t.Fatalf("stats = %+v", st)
	}
	if st.QueueDelay != 50 {
		t.Fatalf("QueueDelay = %v, want 50ns", st.QueueDelay)
	}
	if st.BusyTime != 210 {
		t.Fatalf("BusyTime = %v, want 210ns", st.BusyTime)
	}
}

func TestUtilization(t *testing.T) {
	l := New(1, int64(sim.Second))
	l.Reserve(0, 500)
	if u := l.Utilization(1000); u != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	if u := l.Utilization(0); u != 0 {
		t.Fatal("Utilization with zero elapsed should be 0")
	}
	if u := l.Utilization(100); u != 1 {
		t.Fatalf("Utilization clamps to 1, got %v", u)
	}
}

func TestBusyUntil(t *testing.T) {
	l := New(1, int64(sim.Second))
	if l.BusyUntil() != 0 {
		t.Fatal("fresh link busy")
	}
	l.Reserve(10, 5)
	if l.BusyUntil() != 15 {
		t.Fatalf("BusyUntil = %v, want 15", l.BusyUntil())
	}
}
