// Package bus models the host interface between DRAM and the ULL storage
// device: a multi-lane PCIe link with finite bandwidth, matching the paper's
// §4.1 setup ("a 4-lane PCIe 5.x host interface … approximately 3.983 GB/s
// bandwidth per lane").
//
// Transfers serialize on the link: each reservation starts no earlier than
// the end of the previous one, which makes bulk prefetching consume real
// bus time instead of being free.
package bus

import "itsim/internal/sim"

// Default PCIe 5.x ×4 parameters from the paper.
const (
	// DefaultLanes is the lane count.
	DefaultLanes = 4
	// DefaultLaneBandwidth is bytes per second per lane (~3.983 GB/s).
	DefaultLaneBandwidth = 3_983_000_000
)

// Stats counts link activity.
type Stats struct {
	Transfers  uint64
	Bytes      uint64
	BusyTime   sim.Time // total time the link spent transferring
	QueueDelay sim.Time // total time requests waited for the link
}

// Link is a serialized shared interconnect.
type Link struct {
	lanes     int
	laneBytes int64 // bytes/second per lane
	busyUntil sim.Time
	stats     Stats
}

// New creates a link with the given lane count and per-lane bandwidth in
// bytes/second. Non-positive arguments select the paper defaults.
func New(lanes int, laneBandwidth int64) *Link {
	if lanes <= 0 {
		lanes = DefaultLanes
	}
	if laneBandwidth <= 0 {
		laneBandwidth = DefaultLaneBandwidth
	}
	return &Link{lanes: lanes, laneBytes: laneBandwidth}
}

// Bandwidth returns the aggregate link bandwidth in bytes/second.
func (l *Link) Bandwidth() int64 { return int64(l.lanes) * l.laneBytes }

// TransferTime returns the wire time for n bytes at full aggregate
// bandwidth, ignoring queueing.
func (l *Link) TransferTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	ns := (int64(n)*int64(sim.Second) + l.Bandwidth() - 1) / l.Bandwidth()
	return sim.Time(ns)
}

// Reserve books a transfer of n bytes that becomes eligible at ready. It
// returns the transfer's start and completion times, accounting for the
// link being busy with earlier transfers.
func (l *Link) Reserve(ready sim.Time, n int) (start, done sim.Time) {
	start = ready
	if l.busyUntil > start {
		l.stats.QueueDelay += l.busyUntil - start
		start = l.busyUntil
	}
	dur := l.TransferTime(n)
	done = start + dur
	l.busyUntil = done
	l.stats.Transfers++
	l.stats.Bytes += uint64(n)
	l.stats.BusyTime += dur
	return start, done
}

// BusyUntil returns the time at which the link drains.
func (l *Link) BusyUntil() sim.Time { return l.busyUntil }

// Stats returns a copy of the counters.
func (l *Link) Stats() Stats { return l.stats }

// Utilization returns BusyTime divided by elapsed, clamped to [0,1].
func (l *Link) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(l.stats.BusyTime) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
