// Package report renders experiment results as text tables, CSV, and ASCII
// bar charts — the presentation layer of cmd/itsbench and the examples, kept
// separate so output formatting stays testable and consistent.
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// render with two decimals, integers verbatim.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case fmt.Stringer:
			row = append(row, v.String())
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, "  "+strings.Join(t.Header, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, "  "+strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas, quotes, or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	write := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			quoted[i] = csvQuote(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if len(t.Header) > 0 {
		if err := write(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Bar is one bar of an ASCII chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal ASCII bars scaled to width characters, e.g.
//
//	Async          ██████████████████████████████ 2.77
//	Sync           ██████████████████ 1.69
//	ITS            ██████████ 1.00
//
// Values must be non-negative; the longest bar gets the full width.
func BarChart(w io.Writer, title string, bars []Bar, width int) error {
	if width <= 0 {
		width = 40
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	var max float64
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		if b.Value > 0 && n == 0 {
			n = 1
		}
		if _, err := fmt.Fprintf(w, "  %-*s %s %.2f\n",
			labelW, b.Label, strings.Repeat("█", n), b.Value); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// GroupedBarChart renders one BarChart per group, prefixed by the group
// name — the shape of the paper's per-batch figures.
func GroupedBarChart(w io.Writer, title string, groups []string, series map[string][]Bar, width int) error {
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for _, g := range groups {
		if err := BarChart(w, "["+g+"]", series[g], width); err != nil {
			return err
		}
	}
	return nil
}
