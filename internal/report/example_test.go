package report_test

import (
	"os"

	"itsim/internal/report"
)

func ExampleTable() {
	t := report.NewTable("Results", "batch", "Async", "ITS")
	t.AddRowf("No_Data_Intensive", 2.76, 1.0)
	t.WriteText(os.Stdout)
	// Output:
	// Results
	//   batch              Async  ITS
	//   No_Data_Intensive  2.76   1.00
}

func ExampleBarChart() {
	report.BarChart(os.Stdout, "normalized idle", []report.Bar{
		{Label: "Async", Value: 2.0},
		{Label: "ITS", Value: 1.0},
	}, 10)
	// Output:
	// normalized idle
	//   Async ██████████ 2.00
	//   ITS   █████ 1.00
}
