package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Results", "batch", "Async", "ITS")
	tb.AddRow("No_DI", "2.77", "1.00")
	tb.AddRowf("1_DI", 3.1012, 1.0)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Results", "batch", "No_DI", "2.77", "3.10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow(`quote "q"`, "2")
	tb.AddRow("comma, cell", "3")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if lines[0] != "name,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"quote ""q""",2` {
		t.Fatalf("quoted line = %q", lines[2])
	}
	if lines[3] != `"comma, cell",3` {
		t.Fatalf("comma line = %q", lines[3])
	}
}

func TestAddRowfFormats(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("s", 1.5, 42)
	got := tb.Rows[0]
	if got[0] != "s" || got[1] != "1.50" || got[2] != "42" {
		t.Fatalf("AddRowf row = %v", got)
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	bars := []Bar{{"Async", 2.0}, {"Sync", 1.0}, {"ITS", 0.5}}
	if err := BarChart(&sb, "idle", bars, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + 3 bars
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	asyncBlocks := strings.Count(lines[1], "█")
	syncBlocks := strings.Count(lines[2], "█")
	itsBlocks := strings.Count(lines[3], "█")
	if asyncBlocks != 20 {
		t.Fatalf("max bar has %d blocks, want full width 20", asyncBlocks)
	}
	if syncBlocks != 10 || itsBlocks != 5 {
		t.Fatalf("bars not proportional: %d %d", syncBlocks, itsBlocks)
	}
}

func TestBarChartTinyValueStillVisible(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "", []Bar{{"big", 1000}, {"tiny", 0.1}}, 10); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.Contains(line, "tiny") && !strings.Contains(line, "█") {
			t.Fatal("non-zero bar rendered empty")
		}
	}
}

func TestBarChartZeroValues(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "", []Bar{{"a", 0}, {"b", 0}}, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "█") {
		t.Fatal("zero bars rendered blocks")
	}
}

func TestGroupedBarChart(t *testing.T) {
	var sb strings.Builder
	groups := []string{"g1", "g2"}
	series := map[string][]Bar{
		"g1": {{"a", 1}},
		"g2": {{"b", 2}},
	}
	if err := GroupedBarChart(&sb, "T", groups, series, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "[g1]") || !strings.Contains(out, "[g2]") || !strings.Contains(out, "T") {
		t.Fatalf("grouped output wrong:\n%s", out)
	}
	// Group order preserved.
	if strings.Index(out, "[g1]") > strings.Index(out, "[g2]") {
		t.Fatal("groups out of order")
	}
}
