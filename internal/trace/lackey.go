package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseLackey converts the output of Valgrind's Lackey tool — the paper's
// trace front end ("the front end of our trace-based simulator adopts the
// dynamic binary instruction tools, Valgrind", §4.1) — into a trace.
//
// Lackey's --trace-mem=yes format, one operation per line:
//
//	I  0023C790,2     instruction fetch (address,size)
//	 L 04222C48,4     data load
//	 S 04222C14,4     data store
//	 M 0421C7AC,4     data modify (load + store)
//
// Instruction fetches become the Gap of the next data access; loads and
// stores map directly; a modify becomes a load followed by a store at the
// same address. Register ids are synthesized deterministically (Lackey does
// not expose them) with a simple dependence chain. Unparseable lines are
// skipped (Lackey interleaves diagnostics on stderr-captured logs); a stream
// with no valid operations is an error.
func ParseLackey(r io.Reader, name string) (*SliceGenerator, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var recs []Record
	var gap uint32
	var lastDst uint8
	reg := func(i int) uint8 { return uint8(i % NumRegs) }
	n := 0
	emit := func(addr uint64, size uint8, kind Kind) {
		n++
		dst := reg(n * 7)
		src := reg(n * 3)
		if n%2 == 0 {
			src = lastDst
		}
		recs = append(recs, Record{
			Addr: addr, Size: size, Kind: kind, Gap: gap, Dst: dst, Src: src,
		})
		if kind == Load {
			lastDst = dst
		}
		gap = 0
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		op, rest := lackeyOp(line)
		if op == 0 {
			continue // diagnostic noise
		}
		addr, size, ok := lackeyOperand(rest)
		if !ok {
			continue
		}
		switch op {
		case 'I':
			// Instruction fetches advance the gap; Lackey reports one
			// line per instruction.
			if gap < 1<<30 {
				gap++
			}
		case 'L':
			emit(addr, size, Load)
		case 'S':
			emit(addr, size, Store)
		case 'M':
			emit(addr, size, Load)
			emit(addr, size, Store)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: lackey scan: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: no Lackey memory operations found")
	}
	g := NewSliceGenerator(name, recs)
	return g, nil
}

// lackeyOp classifies a Lackey line, returning the op byte and the operand
// part, or 0 when the line is not a trace operation.
func lackeyOp(line string) (byte, string) {
	switch {
	case strings.HasPrefix(line, "I "):
		return 'I', line[2:]
	case strings.HasPrefix(line, " L "):
		return 'L', line[3:]
	case strings.HasPrefix(line, " S "):
		return 'S', line[3:]
	case strings.HasPrefix(line, " M "):
		return 'M', line[3:]
	}
	return 0, ""
}

// lackeyOperand parses "ADDR,SIZE" with a hex address.
func lackeyOperand(s string) (addr uint64, size uint8, ok bool) {
	s = strings.TrimSpace(s)
	comma := strings.IndexByte(s, ',')
	if comma <= 0 {
		return 0, 0, false
	}
	a, err := strconv.ParseUint(strings.TrimSpace(s[:comma]), 16, 64)
	if err != nil {
		return 0, 0, false
	}
	sz, err := strconv.ParseUint(strings.TrimSpace(s[comma+1:]), 10, 8)
	if err != nil || sz == 0 {
		return 0, 0, false
	}
	if sz > 64 {
		sz = 64
	}
	return a, uint8(sz), true
}
