package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadAll: arbitrary bytes must never panic the ITRC parser — corrupt
// trace files fail with ErrBadFormat, not a crash.
func FuzzReadAll(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	var buf bytes.Buffer
	recs := []Record{
		{Addr: 0x1000, Gap: 3, Size: 8, Kind: Load, Dst: 1, Src: 2},
		{Addr: 0x2000, Gap: 0, Size: 4, Kind: Store, Dst: 3, Src: 4},
	}
	if err := WriteAll(&buf, NewSliceGenerator("seed", recs)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("ITRC"))
	f.Add([]byte{})
	f.Add(valid[:len(valid)-1])
	truncHdr := append([]byte(nil), valid[:10]...)
	f.Add(truncHdr)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed traces must be internally consistent.
		if g.Len() < 0 {
			t.Fatalf("negative length")
		}
		_ = Records(g)
	})
}

// FuzzParseLackey: arbitrary text must never panic the Lackey importer.
func FuzzParseLackey(f *testing.F) {
	f.Add("I  0023C790,2\n L 04222C48,4\n")
	f.Add(" M 0421C7AC,4\n")
	f.Add("garbage\n L zz,4\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseLackey(strings.NewReader(s), "fuzz")
		if err != nil {
			return
		}
		for _, r := range Records(g) {
			if r.Size == 0 || r.Size > 64 {
				t.Fatalf("bad size %d", r.Size)
			}
		}
	})
}
