package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadAll: arbitrary bytes must never panic the ITRC parser — corrupt
// trace files fail with ErrBadFormat, not a crash.
func FuzzReadAll(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	var buf bytes.Buffer
	recs := []Record{
		{Addr: 0x1000, Gap: 3, Size: 8, Kind: Load, Dst: 1, Src: 2},
		{Addr: 0x2000, Gap: 0, Size: 4, Kind: Store, Dst: 3, Src: 4},
	}
	if err := WriteAll(&buf, NewSliceGenerator("seed", recs)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("ITRC"))
	f.Add([]byte{})
	f.Add(valid[:len(valid)-1])
	truncHdr := append([]byte(nil), valid[:10]...)
	f.Add(truncHdr)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed traces must be internally consistent.
		if g.Len() < 0 {
			t.Fatalf("negative length")
		}
		_ = Records(g)
	})
}

// FuzzReadStream: the streaming reader must never panic on arbitrary input,
// and whenever ReadAll accepts the input, streaming the same bytes must
// yield the identical record sequence (shared decode loop, so divergence
// would mean the stream wrapper corrupted the position or latch state).
func FuzzReadStream(f *testing.F) {
	var buf bytes.Buffer
	recs := []Record{
		{Addr: 0x1000, Gap: 3, Size: 8, Kind: Load, Dst: 1, Src: 2},
		{Addr: 0x2000, Gap: 0, Size: 4, Kind: Store, Dst: 3, Src: 4},
		{Addr: 0x1fc0, Gap: 12, Size: 1, Kind: Load, Dst: 5, Src: 3},
	}
	if err := WriteAll(&buf, NewSliceGenerator("seed", recs)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("ITRC"))
	f.Add([]byte{})
	f.Add(valid[:len(valid)-1])
	f.Add(append([]byte(nil), valid[:10]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		sg, serr := NewStreamGenerator(bytes.NewReader(data))
		ag, aerr := ReadAll(bytes.NewReader(data))
		if serr != nil {
			// Both parse the header through the same code: a header
			// the stream rejects, ReadAll must reject too.
			if aerr == nil {
				t.Fatalf("stream rejected header ReadAll accepted: %v", serr)
			}
			return
		}
		var first []Record
		var got Record
		for sg.Next(&got) {
			first = append(first, got)
		}
		if aerr == nil {
			// Valid trace: the streamed sequence must be identical.
			want := Records(ag)
			if len(first) != len(want) {
				t.Fatalf("stream yielded %d records, ReadAll %d", len(first), len(want))
			}
			for i := range want {
				if first[i] != want[i] {
					t.Fatalf("record %d: stream %+v vs readall %+v", i, first[i], want[i])
				}
			}
			if sg.Err() != nil {
				t.Fatalf("stream error on input ReadAll accepted: %v", sg.Err())
			}
		} else if sg.Err() == nil && uint64(len(first)) < sg.tr.count {
			t.Fatalf("stream ended %d/%d records early without latching an error", len(first), sg.tr.count)
		}
		// Reset must reproduce the exact same prefix (and, on corrupt
		// bodies, latch the same early end).
		sg.Reset()
		var second []Record
		for sg.Next(&got) {
			second = append(second, got)
		}
		if len(second) != len(first) {
			t.Fatalf("after Reset: %d records vs %d on first pass", len(second), len(first))
		}
		for i := range first {
			if second[i] != first[i] {
				t.Fatalf("after Reset, record %d diverged", i)
			}
		}
	})
}

// FuzzParseLackey: arbitrary text must never panic the Lackey importer.
func FuzzParseLackey(f *testing.F) {
	f.Add("I  0023C790,2\n L 04222C48,4\n")
	f.Add(" M 0421C7AC,4\n")
	f.Add("garbage\n L zz,4\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseLackey(strings.NewReader(s), "fuzz")
		if err != nil {
			return
		}
		for _, r := range Records(g) {
			if r.Size == 0 || r.Size > 64 {
				t.Fatalf("bad size %d", r.Size)
			}
		}
	})
}
