package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// streamRoundTrip writes recs to a buffer and opens them back as a stream.
func streamRoundTrip(t *testing.T, recs []Record) *StreamGenerator {
	t.Helper()
	var buf bytes.Buffer
	g := NewSliceGenerator("roundtrip", recs)
	g.SetFootprint(1 << 20)
	if err := WriteAll(&buf, g); err != nil {
		t.Fatal(err)
	}
	sg, err := NewStreamGenerator(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

// TestStreamMatchesReadAll: the streamed sequence equals the materialized
// one record for record, across Resets, with header metadata intact.
func TestStreamMatchesReadAll(t *testing.T) {
	recs := benchRecords(5000)
	sg := streamRoundTrip(t, recs)

	if sg.Name() != "roundtrip" || sg.Len() != len(recs) || sg.FootprintBytes() != 1<<20 {
		t.Fatalf("header mismatch: name=%q len=%d foot=%d", sg.Name(), sg.Len(), sg.FootprintBytes())
	}
	for pass := 0; pass < 3; pass++ {
		sg.Reset()
		var r Record
		i := 0
		for sg.Next(&r) {
			if r != recs[i] {
				t.Fatalf("pass %d record %d: got %+v want %+v", pass, i, r, recs[i])
			}
			i++
		}
		if i != len(recs) {
			t.Fatalf("pass %d: streamed %d/%d records", pass, i, len(recs))
		}
		if err := sg.Err(); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
	}
}

// TestStreamTruncatedLatchesErr: cutting the body mid-record must end the
// stream early with a latched error, never a panic or a silent full read.
func TestStreamTruncatedLatchesErr(t *testing.T) {
	recs := benchRecords(100)
	var buf bytes.Buffer
	if err := WriteAll(&buf, NewSliceGenerator("trunc", recs)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3]
	sg, err := NewStreamGenerator(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var r Record
	n := 0
	for sg.Next(&r) {
		n++
	}
	if n >= len(recs) {
		t.Fatalf("streamed %d records from a truncated body", n)
	}
	if sg.Err() == nil {
		t.Fatal("truncated body did not latch an error")
	}
}

// TestOpenFile: the file-backed generator streams a trace written to disk
// and reports Close/Err cleanly.
func TestOpenFile(t *testing.T) {
	recs := benchRecords(1000)
	path := filepath.Join(t.TempDir(), "t.itrc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(f, NewSliceGenerator("onDisk", recs)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got := Records(g)
	if len(got) != len(recs) {
		t.Fatalf("streamed %d/%d records", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
}
