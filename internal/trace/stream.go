package trace

import (
	"bufio"
	"io"
	"os"
)

// StreamGenerator adapts an ITRC stream to the Generator interface without
// materializing the records: each Next decodes one record from the buffered
// source, so a multi-gigabyte trace costs one 64 KiB buffer instead of its
// decoded size. Reset seeks the source back to the start and re-parses the
// header through the same buffer.
//
// Generator.Next cannot report errors, so a decode failure (truncated or
// corrupt input past the header) latches into Err and ends the stream early;
// callers that care must check Err after the run. The decode loop is shared
// with ReadAll (both drive Reader.Next), which is what makes the streamed
// record sequence byte-identical to the materialized one.
type StreamGenerator struct {
	src io.ReadSeeker
	br  *bufio.Reader
	tr  *Reader
	err error
}

// NewStreamGenerator parses the header of src and returns a generator
// positioned at the first record. src must support seeking (Reset rewinds).
func NewStreamGenerator(src io.ReadSeeker) (*StreamGenerator, error) {
	g := &StreamGenerator{src: src}
	if err := g.rewind(); err != nil {
		return nil, err
	}
	return g, nil
}

// rewind seeks the source to the start and re-parses the header, reusing the
// buffered reader.
func (g *StreamGenerator) rewind() error {
	if _, err := g.src.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if g.br == nil {
		g.br = bufio.NewReaderSize(g.src, 1<<16)
	} else {
		g.br.Reset(g.src)
	}
	tr, err := newReaderFrom(g.br)
	if err != nil {
		return err
	}
	g.tr = tr
	return nil
}

// Name implements Generator.
func (g *StreamGenerator) Name() string { return g.tr.Name() }

// Len implements Generator.
func (g *StreamGenerator) Len() int { return g.tr.Len() }

// FootprintBytes implements Generator.
func (g *StreamGenerator) FootprintBytes() uint64 { return g.tr.FootprintBytes() }

// Reset implements Generator. A failing rewind (the file shrank, the pipe
// does not seek) latches into Err and leaves the generator exhausted.
func (g *StreamGenerator) Reset() {
	g.err = nil
	if err := g.rewind(); err != nil {
		g.err = err
		g.tr.read = g.tr.count // exhaust: Next must return false
	}
}

// Next implements Generator.
func (g *StreamGenerator) Next(rec *Record) bool {
	if g.err != nil {
		return false
	}
	ok, err := g.tr.Next(rec)
	if err != nil {
		g.err = err
		return false
	}
	return ok
}

// Err returns the first decode or rewind error, or nil after a clean end of
// trace.
func (g *StreamGenerator) Err() error { return g.err }

// FileGenerator is a StreamGenerator that owns its backing file.
type FileGenerator struct {
	*StreamGenerator
	f *os.File
}

// OpenFile opens an ITRC trace file for streaming. The caller must Close it
// after the run.
func OpenFile(path string) (*FileGenerator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	g, err := NewStreamGenerator(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileGenerator{StreamGenerator: g, f: f}, nil
}

// Close releases the backing file.
func (g *FileGenerator) Close() error { return g.f.Close() }
