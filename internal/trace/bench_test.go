package trace

import (
	"bytes"
	"testing"
)

func benchRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Addr: uint64(i) * 64, Gap: uint32(i % 50), Size: 8, Kind: Kind(i % 2), Dst: uint8(i % 16), Src: uint8((i + 1) % 16)}
	}
	return recs
}

func BenchmarkWrite(b *testing.B) {
	recs := benchRecords(10000)
	g := NewSliceGenerator("bench", recs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteAll(&buf, g); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkRead(b *testing.B) {
	recs := benchRecords(10000)
	var buf bytes.Buffer
	if err := WriteAll(&buf, NewSliceGenerator("bench", recs)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamIngest measures the streaming decode path end to end:
// Reset (seek + header re-parse) plus one record per Next, with no
// materialization. Steady-state iterations must not allocate per record —
// the reused bufio buffer and caller-owned Record are the whole footprint.
func BenchmarkStreamIngest(b *testing.B) {
	recs := benchRecords(10000)
	var buf bytes.Buffer
	if err := WriteAll(&buf, NewSliceGenerator("bench", recs)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	g, err := NewStreamGenerator(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var r Record
	for i := 0; i < b.N; i++ {
		g.Reset()
		n := 0
		for g.Next(&r) {
			n++
		}
		if n != len(recs) || g.Err() != nil {
			b.Fatalf("streamed %d/%d records, err=%v", n, len(recs), g.Err())
		}
	}
}
