package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{Addr: 0x1000, Gap: 3, Size: 8, Kind: Load, Dst: 1, Src: 2},
		{Addr: 0x1040, Gap: 0, Size: 4, Kind: Store, Dst: 0, Src: 1},
		{Addr: 0x0800, Gap: 100, Size: 8, Kind: Load, Dst: 15, Src: 14},
		{Addr: 0xFFFF_F000, Gap: 7, Size: 1, Kind: Store, Dst: 3, Src: 3},
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatalf("Kind strings wrong: %q %q", Load, Store)
	}
}

func TestSliceGeneratorRoundTrip(t *testing.T) {
	recs := sampleRecords()
	g := NewSliceGenerator("sample", recs)
	if g.Name() != "sample" || g.Len() != len(recs) {
		t.Fatalf("Name/Len wrong: %s %d", g.Name(), g.Len())
	}
	got := Records(g)
	if len(got) != len(recs) {
		t.Fatalf("Records len %d, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	// Reset and drain again: identical.
	again := Records(g)
	for i := range again {
		if again[i] != recs[i] {
			t.Fatalf("after Reset, record %d differs", i)
		}
	}
}

func TestSliceGeneratorFootprint(t *testing.T) {
	g := NewSliceGenerator("f", sampleRecords())
	want := uint64(0xFFFF_F000 + 1)
	if got := g.FootprintBytes(); got != want {
		t.Fatalf("FootprintBytes = %#x, want %#x", got, want)
	}
	g.SetFootprint(123)
	if got := g.FootprintBytes(); got != 123 {
		t.Fatalf("SetFootprint not honoured: %d", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	recs := sampleRecords()
	g := NewSliceGenerator("roundtrip", recs)
	g.SetFootprint(4096 * 10)
	var buf bytes.Buffer
	if err := WriteAll(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "roundtrip" {
		t.Fatalf("name = %q", back.Name())
	}
	if back.FootprintBytes() != 4096*10 {
		t.Fatalf("footprint = %d", back.FootprintBytes())
	}
	got := Records(back)
	if len(got) != len(recs) {
		t.Fatalf("len = %d, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, gaps []uint16) bool {
		n := len(addrs)
		if len(gaps) < n {
			n = len(gaps)
		}
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			k := Load
			if addrs[i]%3 == 0 {
				k = Store
			}
			recs = append(recs, Record{
				Addr: uint64(addrs[i]),
				Gap:  uint32(gaps[i]),
				Size: uint8(1 + addrs[i]%64),
				Kind: k,
				Dst:  uint8(addrs[i] % 16),
				Src:  uint8(gaps[i] % 16),
			})
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, NewSliceGenerator("p", recs)); err != nil {
			return false
		}
		back, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		got := Records(back)
		if len(got) != len(recs) {
			return false
		}
		for i := range got {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterCountValidation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "bad", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Addr: 1, Size: 8}
	if err := w.Write(&r); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted short trace")
	}
}

func TestWriterOverflowRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "bad", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Addr: 1, Size: 8}
	if err := w.Write(&r); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&r); err == nil {
		t.Fatal("Write accepted more records than declared")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReaderRejectsTruncated(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteAll(&buf, NewSliceGenerator("t", recs)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) - 3, 30} {
		if cut <= 24 {
			continue
		}
		if _, err := ReadAll(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated stream (len %d of %d) accepted", cut, len(full))
		}
	}
}

func TestDefaultSizeEncodesAsEight(t *testing.T) {
	recs := []Record{{Addr: 64, Kind: Load}} // Size 0 → written as 8
	var buf bytes.Buffer
	if err := WriteAll(&buf, NewSliceGenerator("z", recs)); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Records(back)
	if got[0].Size != 8 {
		t.Fatalf("zero Size round-tripped as %d, want 8", got[0].Size)
	}
}

func TestAnalyze(t *testing.T) {
	recs := []Record{
		{Addr: 0, Gap: 10, Size: 8, Kind: Load},
		{Addr: PageSize, Gap: 5, Size: 8, Kind: Store},
		{Addr: PageSize + 8, Gap: 0, Size: 8, Kind: Load},
	}
	st := Analyze(NewSliceGenerator("a", recs))
	if st.Records != 3 || st.Loads != 2 || st.Stores != 1 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.UniquePages != 2 {
		t.Fatalf("UniquePages = %d, want 2", st.UniquePages)
	}
	if st.Instrs != 10+5+0+3 {
		t.Fatalf("Instrs = %d, want 18", st.Instrs)
	}
	if st.MinAddr != 0 || st.MaxAddr != PageSize+8 {
		t.Fatalf("addr range wrong: %+v", st)
	}
}

func TestPageHelpers(t *testing.T) {
	if PageOf(0) != 0 || PageOf(4095) != 0 || PageOf(4096) != 1 {
		t.Fatal("PageOf wrong")
	}
	if FootprintPages(0) != 0 || FootprintPages(1) != 1 || FootprintPages(4096) != 1 || FootprintPages(4097) != 2 {
		t.Fatal("FootprintPages wrong")
	}
}
