package trace

import (
	"strings"
	"testing"
)

const lackeySample = `==12345== Lackey, an example Valgrind tool
I  0023C790,2
I  0023C792,5
 L 04222C48,4
I  0023C797,3
 S 04222C14,8
 M 0421C7AC,4
I  0023C79A,6
==12345== some diagnostic
 L 0421C7B0,2
`

func TestParseLackey(t *testing.T) {
	g, err := ParseLackey(strings.NewReader(lackeySample), "sample")
	if err != nil {
		t.Fatal(err)
	}
	recs := Records(g)
	// L, S, M (→ L+S), L = 5 records.
	if len(recs) != 5 {
		t.Fatalf("%d records, want 5: %+v", len(recs), recs)
	}
	if recs[0].Kind != Load || recs[0].Addr != 0x04222C48 || recs[0].Size != 4 {
		t.Fatalf("first record %+v", recs[0])
	}
	// Two instruction fetches preceded the first load.
	if recs[0].Gap != 2 {
		t.Fatalf("first gap %d, want 2", recs[0].Gap)
	}
	if recs[1].Kind != Store || recs[1].Gap != 1 || recs[1].Size != 8 {
		t.Fatalf("second record %+v", recs[1])
	}
	// Modify expands to load+store at the same address.
	if recs[2].Kind != Load || recs[3].Kind != Store || recs[2].Addr != recs[3].Addr {
		t.Fatalf("modify expansion wrong: %+v %+v", recs[2], recs[3])
	}
	// The diagnostic line was skipped; final load got the 1 I-line gap...
	if recs[4].Kind != Load || recs[4].Addr != 0x0421C7B0 {
		t.Fatalf("final record %+v", recs[4])
	}
	if recs[4].Gap != 1 {
		t.Fatalf("final gap %d, want 1", recs[4].Gap)
	}
	if g.Name() != "sample" {
		t.Fatalf("name %q", g.Name())
	}
}

func TestParseLackeyEmptyErrors(t *testing.T) {
	if _, err := ParseLackey(strings.NewReader("no ops here\n"), "x"); err == nil {
		t.Fatal("opless input accepted")
	}
	if _, err := ParseLackey(strings.NewReader(""), "x"); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestParseLackeyMalformedOperands(t *testing.T) {
	in := ` L zzzz,4
 L 1000,
 L ,4
 L 1000,0
 L 2000,4
`
	g, err := ParseLackey(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	recs := Records(g)
	if len(recs) != 1 || recs[0].Addr != 0x2000 {
		t.Fatalf("malformed lines not skipped: %+v", recs)
	}
}

func TestParseLackeySizeClamped(t *testing.T) {
	g, err := ParseLackey(strings.NewReader(" L 1000,200\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if recs := Records(g); recs[0].Size != 64 {
		t.Fatalf("size %d, want clamped 64", recs[0].Size)
	}
}

func TestParseLackeyRoundTripsThroughITRC(t *testing.T) {
	g, err := ParseLackey(strings.NewReader(lackeySample), "rt")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteAll(&sb, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := Records(g), Records(back)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
