// Package trace defines the memory-access trace model the simulator
// consumes, mirroring the paper's Valgrind-captured virtual-address streams.
//
// A trace is a finite sequence of Records. Each record is one memory access
// (load or store) to a virtual address, annotated with the number of
// non-memory instructions executed since the previous access (the "gap") and
// a compact register-dependency hint used by the fault-aware pre-execute
// engine to propagate INV (invalid) marks (paper §3.4.2).
//
// Traces are produced either lazily by the synthetic generators in
// internal/workload or read back from the binary file format implemented in
// this package (see Writer/Reader), so externally captured traces can be
// substituted without touching the simulator.
package trace

// Kind distinguishes load and store accesses.
type Kind uint8

const (
	// Load reads memory into a destination register.
	Load Kind = iota
	// Store writes a source register to memory.
	Store
)

// String returns "load" or "store".
func (k Kind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// NumRegs is the size of the simulated architectural register file. x86-64
// has 16 general-purpose registers; the generators emit register ids in
// [0, NumRegs).
const NumRegs = 16

// Record is one simulated memory access.
type Record struct {
	// Addr is the virtual byte address accessed.
	Addr uint64
	// Gap is the number of non-memory instructions executed before this
	// access since the previous record. The machine charges
	// Gap × (ns per instruction) of pure compute time.
	Gap uint32
	// Size is the access width in bytes (1..64). Generators default to 8.
	Size uint8
	// Kind is Load or Store.
	Kind Kind
	// Dst is the destination register of a load (ignored for stores).
	Dst uint8
	// Src is the source register: the value stored (stores) or the address
	// base register (loads). The pre-execute engine uses Src/Dst to chain
	// INV propagation between dependent instructions.
	Src uint8
}

// Generator produces a trace lazily. Implementations must be deterministic:
// after Reset, the exact same record sequence is produced again.
type Generator interface {
	// Name identifies the workload (e.g. "randomwalk").
	Name() string
	// Next fills rec with the next record and returns true, or returns
	// false when the trace is exhausted (rec is then unspecified).
	Next(rec *Record) bool
	// Reset rewinds the generator to the beginning of its sequence.
	Reset()
	// Len returns the total number of records the generator will produce.
	Len() int
	// FootprintBytes returns the size of the virtual region the trace
	// touches (an upper bound on bytes accessed).
	FootprintBytes() uint64
}

// SliceGenerator adapts an in-memory []Record to the Generator interface.
// It is the natural form for hand-written tests and for traces loaded from
// files.
type SliceGenerator struct {
	name    string
	recs    []Record
	pos     int
	footpr  uint64
	footSet bool
}

// NewSliceGenerator wraps recs. The footprint is computed on first use from
// the max address touched unless SetFootprint is called.
func NewSliceGenerator(name string, recs []Record) *SliceGenerator {
	return &SliceGenerator{name: name, recs: recs}
}

// SetFootprint overrides the reported footprint.
func (g *SliceGenerator) SetFootprint(bytes uint64) {
	g.footpr = bytes
	g.footSet = true
}

// Name implements Generator.
func (g *SliceGenerator) Name() string { return g.name }

// Len implements Generator.
func (g *SliceGenerator) Len() int { return len(g.recs) }

// Reset implements Generator.
func (g *SliceGenerator) Reset() { g.pos = 0 }

// Next implements Generator.
func (g *SliceGenerator) Next(rec *Record) bool {
	if g.pos >= len(g.recs) {
		return false
	}
	*rec = g.recs[g.pos]
	g.pos++
	return true
}

// FootprintBytes implements Generator.
func (g *SliceGenerator) FootprintBytes() uint64 {
	if g.footSet {
		return g.footpr
	}
	var max uint64
	for i := range g.recs {
		end := g.recs[i].Addr + uint64(g.recs[i].Size)
		if end > max {
			max = end
		}
	}
	g.footpr = max
	g.footSet = true
	return g.footpr
}

// Records drains gen into a slice. Intended for tests and tools; production
// simulation streams records without materializing them.
func Records(gen Generator) []Record {
	gen.Reset()
	out := make([]Record, 0, gen.Len())
	var r Record
	for gen.Next(&r) {
		out = append(out, r)
	}
	return out
}
