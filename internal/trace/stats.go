package trace

// Stats summarizes a trace: the simulator's sizing code uses the page-level
// footprint and the working set to configure DRAM pressure the way the
// paper's §4.1 does ("DRAM size is tailored to match the working set").
type Stats struct {
	Name        string
	Records     int
	Loads       int
	Stores      int
	Instrs      uint64 // total instructions = records + sum(gaps)
	UniquePages int    // distinct 4 KiB pages touched
	MinAddr     uint64
	MaxAddr     uint64
}

// PageSize is the simulated page size in bytes (Linux 4.4 default, 4 KiB).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageOf returns the virtual page number containing addr.
func PageOf(addr uint64) uint64 { return addr >> PageShift }

// Analyze runs gen to completion and returns summary statistics. The
// generator is Reset before and after.
func Analyze(gen Generator) Stats {
	gen.Reset()
	st := Stats{Name: gen.Name(), MinAddr: ^uint64(0)}
	pages := make(map[uint64]struct{})
	var r Record
	for gen.Next(&r) {
		st.Records++
		if r.Kind == Store {
			st.Stores++
		} else {
			st.Loads++
		}
		st.Instrs += uint64(r.Gap) + 1
		if r.Addr < st.MinAddr {
			st.MinAddr = r.Addr
		}
		if r.Addr > st.MaxAddr {
			st.MaxAddr = r.Addr
		}
		pages[PageOf(r.Addr)] = struct{}{}
	}
	st.UniquePages = len(pages)
	if st.Records == 0 {
		st.MinAddr = 0
	}
	gen.Reset()
	return st
}

// FootprintPages converts a byte footprint to whole pages, rounding up.
func FootprintPages(bytes uint64) uint64 {
	return (bytes + PageSize - 1) / PageSize
}
