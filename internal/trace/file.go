package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format ("ITRC"), version 1.
//
//	header:
//	  magic   [4]byte  "ITRC"
//	  version uint16   little-endian, currently 1
//	  nameLen uint16   little-endian
//	  name    []byte
//	  count   uint64   little-endian record count
//	  foot    uint64   little-endian footprint bytes
//	records (repeated count times, varint-packed):
//	  flags   byte     bit0: kind (1=store); bits 1..7: size-1 when <= 64
//	  addrDelta zigzag varint (delta from previous record's Addr)
//	  gap     uvarint
//	  regs    byte     dst<<4 | src
//
// Address deltas keep sequential traces tiny; zigzag handles backwards jumps.

const (
	fileMagic   = "ITRC"
	fileVersion = 1
)

// ErrBadFormat is returned when a trace file fails to parse.
var ErrBadFormat = errors.New("trace: malformed trace file")

// Writer streams records into an io.Writer in the ITRC format. Call Close to
// flush; the header is written on construction, so the record count must be
// known up front.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	declared uint64
	written  uint64
	buf      [2*binary.MaxVarintLen64 + 2]byte
}

// NewWriter writes the header for a trace named name with exactly count
// records and footprint foot, returning the record writer.
func NewWriter(w io.Writer, name string, count uint64, foot uint64) (*Writer, error) {
	if len(name) > 0xFFFF {
		return nil, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], fileVersion)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	var counts [16]byte
	binary.LittleEndian.PutUint64(counts[0:8], count)
	binary.LittleEndian.PutUint64(counts[8:16], foot)
	if _, err := bw.Write(counts[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, declared: count}, nil
}

// Write appends one record.
func (tw *Writer) Write(r *Record) error {
	if tw.written >= tw.declared {
		return fmt.Errorf("trace: more records written than declared (%d)", tw.declared)
	}
	flags := byte(0)
	if r.Kind == Store {
		flags |= 1
	}
	size := r.Size
	if size == 0 {
		size = 8
	}
	flags |= (size - 1) << 1
	buf := tw.buf[:0]
	buf = append(buf, flags)
	delta := int64(r.Addr - tw.prevAddr)
	buf = binary.AppendVarint(buf, delta)
	buf = binary.AppendUvarint(buf, uint64(r.Gap))
	buf = append(buf, r.Dst<<4|r.Src&0x0F)
	tw.prevAddr = r.Addr
	tw.written++
	_, err := tw.w.Write(buf)
	return err
}

// Close flushes buffered output and validates the declared record count.
func (tw *Writer) Close() error {
	if tw.written != tw.declared {
		return fmt.Errorf("trace: declared %d records, wrote %d", tw.declared, tw.written)
	}
	return tw.w.Flush()
}

// WriteAll drains gen into w in ITRC format.
func WriteAll(w io.Writer, gen Generator) error {
	gen.Reset()
	tw, err := NewWriter(w, gen.Name(), uint64(gen.Len()), gen.FootprintBytes())
	if err != nil {
		return err
	}
	var r Record
	for gen.Next(&r) {
		if err := tw.Write(&r); err != nil {
			return err
		}
	}
	return tw.Close()
}

// Reader decodes an ITRC stream. It implements Generator only when the
// underlying reader is seekable via ReadAll; for streaming use, call Next
// until it returns false.
type Reader struct {
	r        *bufio.Reader
	name     string
	count    uint64
	foot     uint64
	read     uint64
	prevAddr uint64
}

// NewReader parses the header and positions the reader at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	return newReaderFrom(bufio.NewReaderSize(r, 1<<16))
}

// newReaderFrom parses the header from an existing buffered reader — the
// streaming generator rewinds by seeking the source and re-parsing through
// its reused buffer.
func newReaderFrom(br *bufio.Reader) (*Reader, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	nameLen := binary.LittleEndian.Uint16(hdr[2:4])
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	var counts [16]byte
	if _, err := io.ReadFull(br, counts[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return &Reader{
		r:     br,
		name:  string(name),
		count: binary.LittleEndian.Uint64(counts[0:8]),
		foot:  binary.LittleEndian.Uint64(counts[8:16]),
	}, nil
}

// Name returns the trace name from the header.
func (tr *Reader) Name() string { return tr.name }

// Len returns the record count from the header.
func (tr *Reader) Len() int { return int(tr.count) }

// FootprintBytes returns the footprint from the header.
func (tr *Reader) FootprintBytes() uint64 { return tr.foot }

// Next decodes the next record. It returns false at a clean end of trace and
// a non-nil error for truncated or corrupt input.
func (tr *Reader) Next(rec *Record) (bool, error) {
	if tr.read >= tr.count {
		return false, nil
	}
	flags, err := tr.r.ReadByte()
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	delta, err := binary.ReadVarint(tr.r)
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	gap, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if gap > 0xFFFFFFFF {
		return false, fmt.Errorf("%w: gap overflow %d", ErrBadFormat, gap)
	}
	regs, err := tr.r.ReadByte()
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	tr.prevAddr += uint64(delta)
	rec.Addr = tr.prevAddr
	rec.Gap = uint32(gap)
	rec.Size = (flags >> 1) + 1
	if flags&1 != 0 {
		rec.Kind = Store
	} else {
		rec.Kind = Load
	}
	rec.Dst = regs >> 4
	rec.Src = regs & 0x0F
	tr.read++
	return true, nil
}

// ReadAll decodes an entire ITRC stream into a SliceGenerator.
func ReadAll(r io.Reader) (*SliceGenerator, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	// The header's count is untrusted input: cap the initial allocation
	// and let append grow it if the trace really is that long.
	hint := tr.Len()
	if hint < 0 || hint > 1<<20 {
		hint = 1 << 20
	}
	recs := make([]Record, 0, hint)
	var rec Record
	for {
		ok, err := tr.Next(&rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	g := NewSliceGenerator(tr.Name(), recs)
	g.SetFootprint(tr.FootprintBytes())
	return g, nil
}
