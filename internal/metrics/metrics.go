// Package metrics collects the quantities the paper's evaluation reports:
// total CPU idle time (Fig 4a), page-fault counts (Fig 4b), CPU cache-miss
// counts (Fig 4c), and per-process finish times split by priority half
// (Fig 5a/5b), plus supporting detail (prefetch accuracy, pre-execution
// efficacy, context switches).
//
// The paper's definition (§4.2.1): "CPU idle time is the aggregated time of
// the CPU busy waiting for the response of memory and storage devices during
// the cache misses and page faults". We therefore accumulate idle time in
// three buckets: memory stalls (LLC miss service), storage busy-wait
// (synchronous fault wait not covered by stolen work), and scheduler idle
// (all processes blocked on asynchronous I/O — still time the CPU spends
// waiting on storage).
package metrics

import (
	"sort"

	"itsim/internal/sim"
)

// Process accumulates per-process counters.
//
//itslint:frozen
type Process struct {
	PID      int
	Name     string
	Priority int

	// Tenant names the serving tenant whose request this process executes
	// on fleet runs (internal/cluster); empty — and omitted from JSON, so
	// single-machine summaries keep their historical byte layout — on
	// every other path.
	Tenant string `json:"Tenant,omitempty"`

	// FinishTime is the virtual time the process's trace completed.
	FinishTime sim.Time
	// Finished reports whether the process ran to completion.
	Finished bool

	// Instructions is the number of simulated instructions executed
	// (memory accesses + compute gaps).
	Instructions uint64

	// CPUTime is wall-clock (virtual) time this process occupied the
	// CPU while dispatched: compute, cache stalls, fault handling and
	// synchronous waits. Across a run, ΣCPUTime + context-switch time +
	// scheduler idle == makespan (the machine's conservation invariant).
	CPUTime sim.Time

	// MajorFaults / MinorFaults count page faults (major = storage I/O).
	MajorFaults uint64
	MinorFaults uint64

	// LLCAccesses / LLCMisses count last-level-cache activity attributed
	// to this process's real (non-pre-execute) accesses.
	LLCAccesses uint64
	LLCMisses   uint64

	// MemStall is CPU time spent waiting on DRAM after LLC misses.
	MemStall sim.Time
	// StorageWait is CPU busy-wait time during this process's synchronous
	// major faults: the whole window from DMA start to completion. Time
	// ITS steals from the window for prefetching/pre-execution is still
	// part of the window (the CPU is occupied by the wait either way; the
	// stolen work's payoff shows up as fewer future faults and misses).
	StorageWait sim.Time
	// BlockedWait is a diagnostic for asynchronous faults: time from
	// blocking to next dispatch (I/O plus ready-queue wait). It is NOT
	// part of IdleTime — the CPU ran other processes meanwhile; the CPU
	// cost of asynchrony is counted globally as context-switch time and
	// scheduler idle.
	BlockedWait sim.Time
	// StolenPrefetch / StolenPreexec is busy-wait time the ITS /
	// runahead machinery converted into useful work.
	StolenPrefetch sim.Time
	StolenPreexec  sim.Time
	// RecoveryOverhead is state-recovery checkpoint/restore time.
	RecoveryOverhead sim.Time

	// ContextSwitches counts switches charged to this process's faults
	// and slice expiries.
	ContextSwitches uint64

	// PrefetchIssued / PrefetchUseful count prefetched pages and those
	// later touched before eviction. PrefetchDropped counts candidates
	// rejected by device admission control (channel busy).
	PrefetchIssued  uint64
	PrefetchUseful  uint64
	PrefetchDropped uint64

	// PreexecInstrs / PreexecValid / PreexecFills count pre-executed
	// instructions, the valid subset, and LLC lines warmed by them.
	PreexecInstrs uint64
	PreexecValid  uint64
	PreexecFills  uint64

	// Demotions counts synchronous waits the executor's spin budget
	// demoted to asynchronous context switches (graceful degradation
	// under a misbehaving device). PrefetchThrottled counts prefetch
	// walks ITS skipped because the busy-channel gauge saturated. Both
	// are zero — and omitted from JSON — on a healthy device.
	Demotions         uint64 `json:"Demotions,omitempty"`
	PrefetchThrottled uint64 `json:"PrefetchThrottled,omitempty"`
}

// IdleTime returns the process-attributed idle time (memory stalls plus
// un-stolen storage busy-wait).
func (p *Process) IdleTime() sim.Time { return p.MemStall + p.StorageWait }

// Core accumulates per-core counters of a multi-core run. On a single-core
// machine the slice is absent (legacy path) or holds one entry whose fields
// mirror the Run-level aggregates.
//
//itslint:frozen
type Core struct {
	// ID is the simulated core number.
	ID int `json:"id"`

	// LocalClock is the core's virtual clock when it retired its last
	// activity; the run's Makespan is the maximum over cores.
	LocalClock sim.Time `json:"local_clock_ns"`

	// CPUTime is time the core spent executing dispatched processes
	// (compute, stalls, fault handling, synchronous waits).
	CPUTime sim.Time `json:"cpu_time_ns"`
	// SchedulerIdle is time the core had nothing runnable (including
	// parked spans ended by stealing work from another core).
	SchedulerIdle sim.Time `json:"scheduler_idle_ns"`
	// ContextSwitchTime is switch time charged on this core, including
	// migration switches paid to steal a process. Unlike the Run-level
	// field, it carries the full clock cost of each switch (the 7 µs
	// save/restore plus the pollution tail when modelled as a constant),
	// so that per core CPUTime + SchedulerIdle + ContextSwitchTime ==
	// LocalClock exactly.
	ContextSwitchTime sim.Time `json:"context_switch_time_ns"`

	// StolenPrefetch/StolenPreexec is busy-wait time this core's ITS
	// machinery converted into useful work (per-core stolen time).
	StolenPrefetch sim.Time `json:"stolen_prefetch_ns"`
	StolenPreexec  sim.Time `json:"stolen_preexec_ns"`

	// Dispatches counts processes put on this core's CPU.
	Dispatches uint64 `json:"dispatches"`
	// Steals counts ready processes this core pulled from another core's
	// runqueue; MigratedAway counts processes other cores pulled from
	// this one.
	Steals       uint64 `json:"steals"`
	MigratedAway uint64 `json:"migrated_away"`
}

// Stolen returns the core's total stolen time.
func (c *Core) Stolen() sim.Time { return c.StolenPrefetch + c.StolenPreexec }

// Run aggregates one simulation run (one batch under one policy).
type Run struct {
	Policy string
	Batch  string

	Procs []*Process

	// Cores holds per-core counters on a multi-core machine; nil on the
	// legacy single-core path. Run-level time fields (SchedulerIdle,
	// ContextSwitchTime) aggregate over cores as CPU-seconds.
	Cores []*Core

	// Makespan is the finish time of the last process.
	Makespan sim.Time
	// SchedulerIdle is CPU time with no runnable process (every process
	// blocked on asynchronous I/O) — the CPU is waiting on storage.
	SchedulerIdle sim.Time
	// ContextSwitchTime is total time spent performing context switches.
	ContextSwitchTime sim.Time
	// FaultHandlerTime is kernel time in the page-fault handler.
	FaultHandlerTime sim.Time
	// SyncWaitHist is the distribution of synchronous fault windows.
	SyncWaitHist *Histogram
	// BlockedHist is the distribution of asynchronous block→dispatch
	// waits.
	BlockedHist *Histogram

	// Injection summarizes fault-injector activity and the kernel's
	// retry response; nil (and omitted from JSON) when no injector was
	// attached, so fault-free summaries are byte-identical to the
	// pre-fault format.
	Injection *InjectionStats `json:"Injection,omitempty"`
}

// InjectionStats counts delivered device faults and kernel retries over a
// run with fault injection enabled.
//
//itslint:frozen
type InjectionStats struct {
	// TailSpikes / ChannelStalls / DMAFailures count faults the injector
	// delivered.
	TailSpikes    uint64 `json:"tail_spikes,omitempty"`
	ChannelStalls uint64 `json:"channel_stalls,omitempty"`
	DMAFailures   uint64 `json:"dma_failures,omitempty"`
	// DMARetries counts the kernel's backoff resubmissions (equal to
	// DMAFailures minus failures still unresolved at run end — in
	// practice equal, since every failed read is retried immediately).
	DMARetries uint64 `json:"dma_retries,omitempty"`
}

// NewRun creates an empty run record.
func NewRun(policy, batch string) *Run {
	return &Run{
		Policy:       policy,
		Batch:        batch,
		SyncWaitHist: NewLatencyHistogram(),
		BlockedHist:  NewLatencyHistogram(),
	}
}

// AddProcess registers a process record and returns it.
func (r *Run) AddProcess(pid int, name string, priority int) *Process {
	p := &Process{PID: pid, Name: name, Priority: priority}
	r.Procs = append(r.Procs, p)
	return p
}

// AddCore registers a per-core record and returns it.
func (r *Run) AddCore(id int) *Core {
	c := &Core{ID: id}
	r.Cores = append(r.Cores, c)
	return c
}

// TotalIdle is the paper's Fig 4a quantity ("Total CPU Waiting Time"): the
// aggregated time the CPU makes no process progress because of memory and
// storage — per-process memory stalls and synchronous busy-wait windows,
// plus the globally wasted time of asynchrony: context switching (pure
// state movement, no progress) and scheduler idle (every process blocked on
// storage).
func (r *Run) TotalIdle() sim.Time {
	t := r.SchedulerIdle + r.ContextSwitchTime
	for _, p := range r.Procs {
		t += p.IdleTime()
	}
	return t
}

// TotalMajorFaults is the Fig 4b quantity.
func (r *Run) TotalMajorFaults() uint64 {
	var n uint64
	for _, p := range r.Procs {
		n += p.MajorFaults
	}
	return n
}

// TotalMinorFaults sums minor faults.
func (r *Run) TotalMinorFaults() uint64 {
	var n uint64
	for _, p := range r.Procs {
		n += p.MinorFaults
	}
	return n
}

// TotalLLCMisses is the Fig 4c quantity.
func (r *Run) TotalLLCMisses() uint64 {
	var n uint64
	for _, p := range r.Procs {
		n += p.LLCMisses
	}
	return n
}

// TotalContextSwitches sums context switches.
func (r *Run) TotalContextSwitches() uint64 {
	var n uint64
	for _, p := range r.Procs {
		n += p.ContextSwitches
	}
	return n
}

// TotalDemotions sums spin-budget demotions across processes.
func (r *Run) TotalDemotions() uint64 {
	var n uint64
	for _, p := range r.Procs {
		n += p.Demotions
	}
	return n
}

// TotalPrefetchThrottled sums gauge-throttled prefetch walks.
func (r *Run) TotalPrefetchThrottled() uint64 {
	var n uint64
	for _, p := range r.Procs {
		n += p.PrefetchThrottled
	}
	return n
}

// TotalStolen returns the busy-wait time converted to useful work.
func (r *Run) TotalStolen() sim.Time {
	var t sim.Time
	for _, p := range r.Procs {
		t += p.StolenPrefetch + p.StolenPreexec
	}
	return t
}

// byPriority sorts descending by priority, ties broken by pid for
// determinism.
func (r *Run) byPriority() []*Process {
	out := make([]*Process, len(r.Procs))
	copy(out, r.Procs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].PID < out[j].PID
	})
	return out
}

// TopHalfAvgFinish is Fig 5a: the mean finish time of the top-50 %-priority
// processes.
func (r *Run) TopHalfAvgFinish() sim.Time {
	s := r.byPriority()
	half := len(s) / 2
	if half == 0 {
		half = len(s)
	}
	return avgFinish(s[:half])
}

// BottomHalfAvgFinish is Fig 5b: the mean finish time of the bottom-50 %.
func (r *Run) BottomHalfAvgFinish() sim.Time {
	s := r.byPriority()
	half := len(s) / 2
	return avgFinish(s[half:])
}

// AvgFinish is the mean finish time over all processes.
func (r *Run) AvgFinish() sim.Time { return avgFinish(r.Procs) }

func avgFinish(ps []*Process) sim.Time {
	if len(ps) == 0 {
		return 0
	}
	var t sim.Time
	for _, p := range ps {
		t += p.FinishTime
	}
	return t / sim.Time(len(ps))
}

// PrefetchAccuracy returns useful/issued prefetches over the run, or 0.
func (r *Run) PrefetchAccuracy() float64 {
	var issued, useful uint64
	for _, p := range r.Procs {
		issued += p.PrefetchIssued
		useful += p.PrefetchUseful
	}
	if issued == 0 {
		return 0
	}
	return float64(useful) / float64(issued)
}
