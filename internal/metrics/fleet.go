package metrics

// Fleet-level summaries (internal/cluster). These are new serialized
// structs, frozen in the eventsink lint's summaryBaseline like the
// single-machine Summary: growing them later means omitempty or a
// deliberate baseline extension.

// TenantStats digests one tenant's serving experience over a fleet run.
type TenantStats struct {
	// Name is the tenant's name from the tenant spec.
	Name string `json:"name"`
	// Bench is the benchmark each of the tenant's requests executes.
	Bench string `json:"bench"`
	// Requests is the number of requests the tenant submitted; Completed
	// the number that finished (equal on a successful run).
	Requests  uint64 `json:"requests"`
	Completed uint64 `json:"completed"`
	// SLONs is the tenant's latency objective in nanoseconds; 0 means no
	// SLO was set and SLOAttainment is meaningless (renderers print "-").
	SLONs int64 `json:"slo_ns"`
	// SLOAttainment is the fraction of completed requests whose
	// end-to-end latency met SLONs.
	SLOAttainment float64 `json:"slo_attainment"`
	// Latency is the end-to-end request latency distribution
	// (arrival → completion, including queueing).
	Latency HistogramSnapshot `json:"latency"`
	// SyncWait is the distribution of per-request synchronous storage
	// busy-wait (the paper's stolen-or-wasted window), summed per request.
	SyncWait HistogramSnapshot `json:"sync_wait"`
}

// MachineStats digests one machine's activity over a fleet run.
type MachineStats struct {
	// ID is the machine's index in the cluster.
	ID int `json:"id"`
	// Epochs is how many batch epochs the machine executed; Requests how
	// many requests those epochs served.
	Epochs   uint64 `json:"epochs"`
	Requests uint64 `json:"requests"`
	// BusyNs is fleet time the machine spent executing epochs; IdleNs is
	// the rest of the fleet makespan.
	BusyNs int64 `json:"busy_ns"`
	IdleNs int64 `json:"idle_ns"`
	// WaitingNs aggregates the machine's in-epoch CPU waiting time (the
	// paper's Fig 4a quantity, summed over epochs); StolenNs the time its
	// ITS machinery converted into useful work.
	WaitingNs int64 `json:"waiting_ns"`
	StolenNs  int64 `json:"stolen_ns"`
	// MajorFaults sums major page faults across the machine's epochs.
	MajorFaults uint64 `json:"major_faults"`
	// DemotedWaits counts spin-budget demotions under fault injection;
	// omitted when zero so healthy-device summaries stay compact.
	DemotedWaits uint64 `json:"demoted_waits,omitempty"`
}

// FleetSummary is the JSON-serializable digest of one cluster run.
type FleetSummary struct {
	// Policy and Routing name the I/O-mode policy every machine ran and
	// the routing policy that placed requests.
	Policy  string `json:"policy"`
	Routing string `json:"routing"`
	// Machines and Slots echo the cluster shape (N machines, at most
	// Slots requests batched per epoch).
	Machines int `json:"machines"`
	Slots    int `json:"slots"`
	// MakespanNs is the fleet time at which the last request completed.
	MakespanNs int64 `json:"makespan_ns"`
	// Requests / Completed count over all tenants.
	Requests  uint64 `json:"requests"`
	Completed uint64 `json:"completed"`
	// Tenants holds per-tenant serving stats in tenant-spec order.
	Tenants []TenantStats `json:"tenants"`
	// PerMachine holds per-machine stats ascending by machine id.
	PerMachine []MachineStats `json:"per_machine"`
	// Injection aggregates fault-injector activity across machines; nil
	// (and omitted) when no injector was attached.
	Injection *InjectionStats `json:"fault_injection,omitempty"`
}
