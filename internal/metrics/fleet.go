package metrics

// Fleet-level summaries (internal/cluster). These are new serialized
// structs, frozen in the eventsink lint's summaryBaseline like the
// single-machine Summary: growing them later means omitempty or a
// deliberate baseline extension.

// TenantStats digests one tenant's serving experience over a fleet run.
//
//itslint:frozen
type TenantStats struct {
	// Name is the tenant's name from the tenant spec.
	Name string `json:"name"`
	// Bench is the benchmark each of the tenant's requests executes.
	Bench string `json:"bench"`
	// Requests is the number of requests the tenant submitted; Completed
	// the number that finished (equal on a successful run).
	Requests  uint64 `json:"requests"`
	Completed uint64 `json:"completed"`
	// SLONs is the tenant's latency objective in nanoseconds; 0 means no
	// SLO was set and SLOAttainment is meaningless (renderers print "-").
	SLONs int64 `json:"slo_ns"`
	// SLOAttainment is the fraction of completed requests whose
	// end-to-end latency met SLONs.
	SLOAttainment float64 `json:"slo_attainment"`
	// Latency is the end-to-end request latency distribution
	// (arrival → completion, including queueing).
	Latency HistogramSnapshot `json:"latency"`
	// SyncWait is the distribution of per-request synchronous storage
	// busy-wait (the paper's stolen-or-wasted window), summed per request.
	SyncWait HistogramSnapshot `json:"sync_wait"`
	// DeadlineNs is the tenant's per-request deadline in nanoseconds; 0
	// means requests never time out. All resilience counters below are
	// omitempty so deadline-free, chaos-free runs keep their historical
	// byte layout.
	DeadlineNs int64 `json:"deadline_ns,omitempty"`
	// TimedOut counts attempt timeouts (one request can time out several
	// times across retries); Retries counts re-submissions after them.
	TimedOut uint64 `json:"timed_out,omitempty"`
	Retries  uint64 `json:"retries,omitempty"`
	// Hedges counts hedged duplicate dispatches; HedgeWins how many
	// requests the hedge finished first.
	Hedges    uint64 `json:"hedges,omitempty"`
	HedgeWins uint64 `json:"hedge_wins,omitempty"`
	// Shed counts requests rejected at admission by priority-aware load
	// shedding; Failed counts requests that exhausted deadline + retries.
	// Neither is included in Completed.
	Shed   uint64 `json:"shed,omitempty"`
	Failed uint64 `json:"failed,omitempty"`
}

// MachineStats digests one machine's activity over a fleet run.
//
//itslint:frozen
type MachineStats struct {
	// ID is the machine's index in the cluster.
	ID int `json:"id"`
	// Epochs is how many batch epochs the machine executed; Requests how
	// many requests those epochs served.
	Epochs   uint64 `json:"epochs"`
	Requests uint64 `json:"requests"`
	// BusyNs is fleet time the machine spent executing epochs; IdleNs is
	// the rest of the fleet makespan.
	BusyNs int64 `json:"busy_ns"`
	IdleNs int64 `json:"idle_ns"`
	// WaitingNs aggregates the machine's in-epoch CPU waiting time (the
	// paper's Fig 4a quantity, summed over epochs); StolenNs the time its
	// ITS machinery converted into useful work.
	WaitingNs int64 `json:"waiting_ns"`
	StolenNs  int64 `json:"stolen_ns"`
	// MajorFaults sums major page faults across the machine's epochs.
	MajorFaults uint64 `json:"major_faults"`
	// DemotedWaits counts spin-budget demotions under fault injection;
	// omitted when zero so healthy-device summaries stay compact.
	DemotedWaits uint64 `json:"demoted_waits,omitempty"`
	// Chaos accounting, all omitempty so chaos-free fleets keep their
	// historical byte layout. Crashes/Flaps/Brownouts count windows that
	// actually hit this machine; DownNs is time spent out of service
	// (crashed, flapped off, or rejoining cache-cold counts as in
	// service); Rehomed counts requests moved off this machine's queue by
	// a crash or drain.
	Crashes   uint64 `json:"crashes,omitempty"`
	Flaps     uint64 `json:"flaps,omitempty"`
	Brownouts uint64 `json:"brownouts,omitempty"`
	DownNs    int64  `json:"down_ns,omitempty"`
	Rehomed   uint64 `json:"rehomed,omitempty"`
}

// FleetSummary is the JSON-serializable digest of one cluster run.
//
//itslint:frozen
type FleetSummary struct {
	// Policy and Routing name the I/O-mode policy every machine ran and
	// the routing policy that placed requests.
	Policy  string `json:"policy"`
	Routing string `json:"routing"`
	// Machines and Slots echo the cluster shape (N machines, at most
	// Slots requests batched per epoch).
	Machines int `json:"machines"`
	Slots    int `json:"slots"`
	// MakespanNs is the fleet time at which the last request completed.
	MakespanNs int64 `json:"makespan_ns"`
	// Requests / Completed count over all tenants.
	Requests  uint64 `json:"requests"`
	Completed uint64 `json:"completed"`
	// Tenants holds per-tenant serving stats in tenant-spec order.
	Tenants []TenantStats `json:"tenants"`
	// PerMachine holds per-machine stats ascending by machine id.
	PerMachine []MachineStats `json:"per_machine"`
	// Injection aggregates fault-injector activity across machines; nil
	// (and omitted) when no injector was attached.
	Injection *InjectionStats `json:"fault_injection,omitempty"`
	// Chaos aggregates machine-level chaos and request-lifecycle
	// resilience activity across the fleet; nil (and omitted) when no
	// chaos was injected and no tenant used deadlines/hedging, so
	// historical fleet output is byte-identical.
	Chaos *ChaosStats `json:"chaos,omitempty"`
}

// ChaosStats aggregates fleet resilience activity: machine-level chaos
// windows that hit, and the request-lifecycle reactions to them.
//
//itslint:frozen
type ChaosStats struct {
	// Crashes / Flaps / Brownouts count machine windows that applied
	// (windows dropped against an ineligible state are not counted).
	Crashes   uint64 `json:"crashes"`
	Flaps     uint64 `json:"flaps"`
	Brownouts uint64 `json:"brownouts"`
	// Rehomed counts requests deterministically moved to another machine
	// after a crash or drain.
	Rehomed uint64 `json:"rehomed"`
	// Timeouts / Retries / Hedges / HedgeWins / Shed / Failed sum the
	// per-tenant resilience counters.
	Timeouts  uint64 `json:"timeouts"`
	Retries   uint64 `json:"retries"`
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	Shed      uint64 `json:"shed"`
	Failed    uint64 `json:"failed"`
}
