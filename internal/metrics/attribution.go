package metrics

import (
	"fmt"

	"itsim/internal/sim"
)

// CoreAttribution is one core's folded interval totals as recovered from a
// trace replay (internal/replay): the sum of its dispatch spans, context
// switch charges and scheduler-idle spans. It intentionally mirrors the
// conservation-bearing fields of Core so the two can be reconciled with
// zero tolerance.
type CoreAttribution struct {
	Core              int      `json:"core"`
	CPUTime           sim.Time `json:"cpu_time_ns"`
	ContextSwitchTime sim.Time `json:"context_switch_time_ns"`
	SchedulerIdle     sim.Time `json:"scheduler_idle_ns"`
}

// Total is the attributed virtual time: on a clean trace it equals the
// core's local clock.
func (a CoreAttribution) Total() sim.Time {
	return a.CPUTime + a.ContextSwitchTime + a.SchedulerIdle
}

// CheckAttribution reconciles replayed per-core attribution totals against
// this summary's conservation ledger — virtual-time arithmetic, zero
// tolerance. On multi-core summaries every category must match its per-core
// counter exactly and the attributed total must equal the core's local
// clock (CPUTime + SchedulerIdle + ContextSwitchTime == LocalClock). On
// legacy single-core summaries (no per-core section) the CPU category is
// checked against the per-process CPU times, idle against the run-level
// counter, and the grand total against the makespan; the run-level switch
// counter excludes the pollution tail the events carry, so it is covered
// only through the total.
func (s *Summary) CheckAttribution(atts []CoreAttribution) error {
	if len(s.Cores) > 0 {
		covered := make(map[int]bool, len(atts))
		for _, att := range atts {
			var c *Core
			for _, sc := range s.Cores {
				if sc.ID == att.Core {
					c = sc
					break
				}
			}
			if c == nil {
				return fmt.Errorf("metrics: attribution for core %d but summary has no such core", att.Core)
			}
			covered[att.Core] = true
			if att.CPUTime != c.CPUTime || att.ContextSwitchTime != c.ContextSwitchTime || att.SchedulerIdle != c.SchedulerIdle {
				return fmt.Errorf("metrics: core %d attribution (cpu %v, switch %v, idle %v) != ledger (cpu %v, switch %v, idle %v)",
					att.Core, att.CPUTime, att.ContextSwitchTime, att.SchedulerIdle,
					c.CPUTime, c.ContextSwitchTime, c.SchedulerIdle)
			}
			if att.Total() != c.LocalClock {
				return fmt.Errorf("metrics: core %d attributed total %v != local clock %v", att.Core, att.Total(), c.LocalClock)
			}
		}
		// A core that parked for the whole run emits no events and so has no
		// attribution entry; that is consistent only with an all-zero ledger.
		for _, sc := range s.Cores {
			if covered[sc.ID] {
				continue
			}
			if sc.CPUTime != 0 || sc.ContextSwitchTime != 0 || sc.SchedulerIdle != 0 {
				return fmt.Errorf("metrics: core %d has ledger time (cpu %v, switch %v, idle %v) but no attributed events",
					sc.ID, sc.CPUTime, sc.ContextSwitchTime, sc.SchedulerIdle)
			}
		}
		return nil
	}

	if len(atts) != 1 || atts[0].Core != 0 {
		return fmt.Errorf("metrics: single-core summary needs exactly one core-0 attribution, got %d", len(atts))
	}
	att := atts[0]
	var procCPU sim.Time
	for _, p := range s.Procs {
		procCPU += p.CPUTime
	}
	if att.CPUTime != procCPU {
		return fmt.Errorf("metrics: attributed CPU occupancy %v != per-process CPU time %v", att.CPUTime, procCPU)
	}
	if att.SchedulerIdle != sim.Time(s.SchedulerIdleNs) {
		return fmt.Errorf("metrics: attributed scheduler idle %v != summary %v", att.SchedulerIdle, s.SchedulerIdleNs)
	}
	if att.Total() != sim.Time(s.MakespanNs) {
		return fmt.Errorf("metrics: attributed total %v != makespan %v", att.Total(), s.MakespanNs)
	}
	return nil
}
