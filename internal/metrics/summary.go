package metrics

// BucketCount is one non-empty histogram bucket in a snapshot. UpperNs is
// the bucket's inclusive upper bound in nanoseconds; -1 marks the overflow
// bucket.
//
//itslint:frozen
type BucketCount struct {
	UpperNs int64  `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is the JSON-serializable form of a Histogram, including
// the full (non-empty) bucket counts so downstream tooling can re-derive any
// quantile.
//
//itslint:frozen
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	MeanNs  int64         `json:"mean_ns"`
	P50Ns   int64         `json:"p50_ns"`
	P99Ns   int64         `json:"p99_ns"`
	MaxNs   int64         `json:"max_ns"`
	SumNs   int64         `json:"sum_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot captures the distribution for serialization.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.total,
		MeanNs: int64(h.Mean()),
		P50Ns:  int64(h.Quantile(0.5)),
		P99Ns:  int64(h.Quantile(0.99)),
		MaxNs:  int64(h.max),
		SumNs:  int64(h.sum),
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		upper := int64(-1)
		if i < len(h.bounds) {
			upper = int64(h.bounds[i])
		}
		s.Buckets = append(s.Buckets, BucketCount{UpperNs: upper, Count: c})
	}
	return s
}

// Summary is the JSON-serializable digest of one run: the aggregate Figure
// 4/5 quantities, both latency distributions, and the raw per-process
// counters. Durations are virtual nanoseconds.
//
//itslint:frozen
type Summary struct {
	Policy string `json:"policy"`
	Batch  string `json:"batch"`

	MakespanNs          int64 `json:"makespan_ns"`
	TotalIdleNs         int64 `json:"total_idle_ns"`
	SchedulerIdleNs     int64 `json:"scheduler_idle_ns"`
	ContextSwitchTimeNs int64 `json:"context_switch_time_ns"`
	FaultHandlerTimeNs  int64 `json:"fault_handler_time_ns"`
	TotalStolenNs       int64 `json:"total_stolen_ns"`

	MajorFaults     uint64 `json:"major_faults"`
	MinorFaults     uint64 `json:"minor_faults"`
	LLCMisses       uint64 `json:"llc_misses"`
	ContextSwitches uint64 `json:"context_switches"`

	PrefetchAccuracy float64 `json:"prefetch_accuracy"`

	AvgFinishNs           int64 `json:"avg_finish_ns"`
	TopHalfAvgFinishNs    int64 `json:"top_half_avg_finish_ns"`
	BottomHalfAvgFinishNs int64 `json:"bottom_half_avg_finish_ns"`

	SyncWait HistogramSnapshot `json:"sync_wait"`
	Blocked  HistogramSnapshot `json:"blocked"`

	// DemotedWaits / PrefetchThrottled / Injection report the
	// graceful-degradation machinery; all omitted when zero/nil so
	// fault-free summaries keep the historical byte layout.
	DemotedWaits      uint64          `json:"demoted_waits,omitempty"`
	PrefetchThrottled uint64          `json:"prefetch_throttled,omitempty"`
	Injection         *InjectionStats `json:"fault_injection,omitempty"`

	// Cores carries per-core counters on multi-core runs (absent on the
	// legacy single-core machine).
	Cores []*Core `json:"cores,omitempty"`

	Procs []*Process `json:"procs"`
}

// Summary builds the serializable digest of the run.
func (r *Run) Summary() Summary {
	return Summary{
		Policy:                r.Policy,
		Batch:                 r.Batch,
		MakespanNs:            int64(r.Makespan),
		TotalIdleNs:           int64(r.TotalIdle()),
		SchedulerIdleNs:       int64(r.SchedulerIdle),
		ContextSwitchTimeNs:   int64(r.ContextSwitchTime),
		FaultHandlerTimeNs:    int64(r.FaultHandlerTime),
		TotalStolenNs:         int64(r.TotalStolen()),
		MajorFaults:           r.TotalMajorFaults(),
		MinorFaults:           r.TotalMinorFaults(),
		LLCMisses:             r.TotalLLCMisses(),
		ContextSwitches:       r.TotalContextSwitches(),
		PrefetchAccuracy:      r.PrefetchAccuracy(),
		AvgFinishNs:           int64(r.AvgFinish()),
		TopHalfAvgFinishNs:    int64(r.TopHalfAvgFinish()),
		BottomHalfAvgFinishNs: int64(r.BottomHalfAvgFinish()),
		SyncWait:              r.SyncWaitHist.Snapshot(),
		Blocked:               r.BlockedHist.Snapshot(),
		DemotedWaits:          r.TotalDemotions(),
		PrefetchThrottled:     r.TotalPrefetchThrottled(),
		Injection:             r.Injection,
		Cores:                 r.Cores,
		Procs:                 r.Procs,
	}
}
