package metrics

import (
	"testing"

	"itsim/internal/sim"
)

func sampleRun() *Run {
	r := NewRun("ITS", "test_batch")
	specs := []struct {
		pid, prio  int
		finish     sim.Time
		major      uint64
		misses     uint64
		mem, store sim.Time
	}{
		{0, 6, 10 * sim.Millisecond, 100, 1000, sim.Millisecond, 2 * sim.Millisecond},
		{1, 5, 20 * sim.Millisecond, 200, 2000, sim.Millisecond, sim.Millisecond},
		{2, 4, 30 * sim.Millisecond, 300, 3000, sim.Millisecond, 0},
		{3, 3, 40 * sim.Millisecond, 400, 4000, 0, sim.Millisecond},
		{4, 2, 50 * sim.Millisecond, 500, 5000, 0, 0},
		{5, 1, 60 * sim.Millisecond, 600, 6000, sim.Millisecond, sim.Millisecond},
	}
	for _, s := range specs {
		p := r.AddProcess(s.pid, "w", s.prio)
		p.FinishTime = s.finish
		p.Finished = true
		p.MajorFaults = s.major
		p.LLCMisses = s.misses
		p.MemStall = s.mem
		p.StorageWait = s.store
	}
	r.Makespan = 60 * sim.Millisecond
	return r
}

func TestTotals(t *testing.T) {
	r := sampleRun()
	if r.TotalMajorFaults() != 2100 {
		t.Fatalf("TotalMajorFaults = %d", r.TotalMajorFaults())
	}
	if r.TotalLLCMisses() != 21000 {
		t.Fatalf("TotalLLCMisses = %d", r.TotalLLCMisses())
	}
	wantIdle := 4*sim.Millisecond + 5*sim.Millisecond
	if r.TotalIdle() != wantIdle {
		t.Fatalf("TotalIdle = %v, want %v", r.TotalIdle(), wantIdle)
	}
}

func TestIdleIncludesGlobalWaste(t *testing.T) {
	r := sampleRun()
	base := r.TotalIdle()
	r.SchedulerIdle = 3 * sim.Millisecond
	r.ContextSwitchTime = 2 * sim.Millisecond
	if got := r.TotalIdle(); got != base+5*sim.Millisecond {
		t.Fatalf("TotalIdle = %v, want %v", got, base+5*sim.Millisecond)
	}
}

func TestHalfSplits(t *testing.T) {
	r := sampleRun()
	// Top half by priority: pids 0,1,2 → finishes 10,20,30 → avg 20ms.
	if got := r.TopHalfAvgFinish(); got != 20*sim.Millisecond {
		t.Fatalf("TopHalfAvgFinish = %v", got)
	}
	// Bottom half: 40,50,60 → 50ms.
	if got := r.BottomHalfAvgFinish(); got != 50*sim.Millisecond {
		t.Fatalf("BottomHalfAvgFinish = %v", got)
	}
	if got := r.AvgFinish(); got != 35*sim.Millisecond {
		t.Fatalf("AvgFinish = %v", got)
	}
}

func TestHalfSplitTieBreakByPID(t *testing.T) {
	r := NewRun("Sync", "b")
	a := r.AddProcess(0, "a", 3)
	b := r.AddProcess(1, "b", 3)
	a.FinishTime = 10
	b.FinishTime = 30
	// Equal priorities: pid 0 goes to the top half deterministically.
	if got := r.TopHalfAvgFinish(); got != 10 {
		t.Fatalf("TopHalfAvgFinish = %v", got)
	}
	if got := r.BottomHalfAvgFinish(); got != 30 {
		t.Fatalf("BottomHalfAvgFinish = %v", got)
	}
}

func TestEmptyRun(t *testing.T) {
	r := NewRun("Sync", "empty")
	if r.TotalIdle() != 0 || r.AvgFinish() != 0 || r.TopHalfAvgFinish() != 0 || r.BottomHalfAvgFinish() != 0 {
		t.Fatal("empty run non-zero aggregates")
	}
	if r.PrefetchAccuracy() != 0 {
		t.Fatal("empty run prefetch accuracy non-zero")
	}
}

func TestSingleProcessHalves(t *testing.T) {
	r := NewRun("Sync", "one")
	p := r.AddProcess(0, "w", 1)
	p.FinishTime = 42
	if r.TopHalfAvgFinish() != 42 {
		t.Fatalf("single-process top half = %v", r.TopHalfAvgFinish())
	}
}

func TestPrefetchAccuracy(t *testing.T) {
	r := NewRun("ITS", "b")
	p := r.AddProcess(0, "w", 1)
	p.PrefetchIssued = 100
	p.PrefetchUseful = 80
	q := r.AddProcess(1, "x", 2)
	q.PrefetchIssued = 100
	q.PrefetchUseful = 40
	if got := r.PrefetchAccuracy(); got != 0.6 {
		t.Fatalf("PrefetchAccuracy = %v, want 0.6", got)
	}
}

func TestStolenAndSwitches(t *testing.T) {
	r := NewRun("ITS", "b")
	p := r.AddProcess(0, "w", 1)
	p.StolenPrefetch = sim.Microsecond
	p.StolenPreexec = 2 * sim.Microsecond
	p.ContextSwitches = 3
	q := r.AddProcess(1, "x", 2)
	q.ContextSwitches = 4
	if r.TotalStolen() != 3*sim.Microsecond {
		t.Fatalf("TotalStolen = %v", r.TotalStolen())
	}
	if r.TotalContextSwitches() != 7 {
		t.Fatalf("TotalContextSwitches = %d", r.TotalContextSwitches())
	}
}

func TestProcessIdleTime(t *testing.T) {
	p := &Process{MemStall: 5, StorageWait: 7, BlockedWait: 100}
	if p.IdleTime() != 12 {
		t.Fatalf("IdleTime = %v, want 12 (BlockedWait excluded)", p.IdleTime())
	}
}

func TestMinorFaultTotals(t *testing.T) {
	r := NewRun("ITS", "b")
	r.AddProcess(0, "w", 1).MinorFaults = 5
	r.AddProcess(1, "x", 2).MinorFaults = 7
	if r.TotalMinorFaults() != 12 {
		t.Fatalf("TotalMinorFaults = %d", r.TotalMinorFaults())
	}
}
