package metrics

import (
	"strings"
	"testing"
)

func multiCoreSummary() *Summary {
	return &Summary{
		MakespanNs: 400,
		Cores: []*Core{
			{ID: 0, LocalClock: 400, CPUTime: 290, SchedulerIdle: 90, ContextSwitchTime: 20},
			{ID: 1, LocalClock: 300, CPUTime: 250, SchedulerIdle: 50},
		},
	}
}

func TestCheckAttributionMultiCore(t *testing.T) {
	s := multiCoreSummary()
	good := []CoreAttribution{
		{Core: 0, CPUTime: 290, SchedulerIdle: 90, ContextSwitchTime: 20},
		{Core: 1, CPUTime: 250, SchedulerIdle: 50},
	}
	if err := s.CheckAttribution(good); err != nil {
		t.Fatal(err)
	}

	bad := append([]CoreAttribution(nil), good...)
	bad[0].CPUTime++
	if err := s.CheckAttribution(bad); err == nil || !strings.Contains(err.Error(), "core 0") {
		t.Fatalf("1ns CPU drift not caught: %v", err)
	}

	if err := s.CheckAttribution([]CoreAttribution{good[0], {Core: 7}}); err == nil ||
		!strings.Contains(err.Error(), "no such core") {
		t.Fatalf("unknown core accepted: %v", err)
	}
}

func TestCheckAttributionParkedCore(t *testing.T) {
	// A core with zero ledger time may legitimately have no attribution
	// entry (it parked before emitting a single event)...
	s := multiCoreSummary()
	s.Cores = append(s.Cores, &Core{ID: 2})
	atts := []CoreAttribution{
		{Core: 0, CPUTime: 290, SchedulerIdle: 90, ContextSwitchTime: 20},
		{Core: 1, CPUTime: 250, SchedulerIdle: 50},
	}
	if err := s.CheckAttribution(atts); err != nil {
		t.Fatal(err)
	}
	// ...but a core with ledger time and no events is a filtered trace.
	s.Cores[2].SchedulerIdle = 5
	if err := s.CheckAttribution(atts); err == nil || !strings.Contains(err.Error(), "no attributed events") {
		t.Fatalf("uncovered ledger time accepted: %v", err)
	}
}

func TestCheckAttributionSingleCore(t *testing.T) {
	s := &Summary{
		MakespanNs:      400,
		SchedulerIdleNs: 90,
		Procs: []*Process{
			{PID: 0, CPUTime: 100},
			{PID: 1, CPUTime: 190},
		},
	}
	good := []CoreAttribution{{Core: 0, CPUTime: 290, SchedulerIdle: 90, ContextSwitchTime: 20}}
	if err := s.CheckAttribution(good); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckAttribution(nil); err == nil {
		t.Fatal("empty attribution accepted on single-core summary")
	}
	bad := []CoreAttribution{{Core: 0, CPUTime: 291, SchedulerIdle: 90, ContextSwitchTime: 20}}
	if err := s.CheckAttribution(bad); err == nil || !strings.Contains(err.Error(), "CPU occupancy") {
		t.Fatalf("CPU drift not caught: %v", err)
	}
	tot := []CoreAttribution{{Core: 0, CPUTime: 290, SchedulerIdle: 90, ContextSwitchTime: 21}}
	if err := s.CheckAttribution(tot); err == nil || !strings.Contains(err.Error(), "makespan") {
		t.Fatalf("total drift not caught: %v", err)
	}
}
