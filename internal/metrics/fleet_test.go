package metrics

import (
	"encoding/json"
	"strings"
	"testing"

	"itsim/internal/sim"
)

// TestProcessTenantOmittedWhenEmpty pins the historical single-machine
// byte layout: a Process outside a fleet run (empty Tenant) must marshal
// without any Tenant key, so seed-era summary baselines stay byte-exact.
func TestProcessTenantOmittedWhenEmpty(t *testing.T) {
	p := Process{PID: 1, Name: "caffe", Priority: 2}
	b, err := json.Marshal(&p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Tenant") {
		t.Errorf("empty Tenant leaked into process JSON: %s", b)
	}
	p.Tenant = "alpha"
	b, err = json.Marshal(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"Tenant":"alpha"`) {
		t.Errorf("non-empty Tenant missing from process JSON: %s", b)
	}
}

// TestSummaryLayoutFrozen re-checks the full-run layout through the same
// lens: a run with no fleet/fault involvement must not mention any of the
// new optional keys.
func TestSummaryLayoutFrozen(t *testing.T) {
	r := NewRun("Sync", "batch")
	r.AddProcess(0, "caffe", 1)
	b, err := json.Marshal(r.Summary())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Tenant", "Injection", "Demotions", "PrefetchThrottled"} {
		if strings.Contains(string(b), key) {
			t.Errorf("unused optional key %q leaked into summary JSON: %s", key, b)
		}
	}
}

// TestFleetSummaryRoundTrip checks the fleet digest survives a JSON round
// trip unchanged — the property the CI fleet-determinism job's byte
// comparison builds on.
func TestFleetSummaryRoundTrip(t *testing.T) {
	lat := NewWideLatencyHistogram()
	lat.Observe(3 * sim.Microsecond)
	lat.Observe(40 * sim.Millisecond)
	in := FleetSummary{
		Policy: "ITS", Routing: "least-loaded", Machines: 3, Slots: 4,
		MakespanNs: 123456, Requests: 7, Completed: 7,
		Tenants: []TenantStats{{
			Name: "alpha", Bench: "caffe", Requests: 7, Completed: 7,
			SLONs: 1000, SLOAttainment: 0.5,
			Latency: lat.Snapshot(), SyncWait: NewWideLatencyHistogram().Snapshot(),
		}},
		PerMachine: []MachineStats{{ID: 0, Epochs: 2, Requests: 7, BusyNs: 99, IdleNs: 1}},
	}
	b1, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out FleetSummary
	if err := json.Unmarshal(b1, &out); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("fleet summary did not round-trip:\n%s\n%s", b1, b2)
	}
	if strings.Contains(string(b1), "fault_injection") {
		t.Errorf("nil injection stats leaked into fleet JSON: %s", b1)
	}
}

// TestWideLatencyHistogramRange checks the fleet histogram covers epoch-
// scale samples without falling into the overflow bucket.
func TestWideLatencyHistogramRange(t *testing.T) {
	h := NewWideLatencyHistogram()
	h.Observe(1 * sim.Second)
	if q := h.Quantile(0.99); q > 2*sim.Second {
		t.Errorf("1s sample quantized to %v, beyond the 2s ceiling", q)
	}
	if q := h.Quantile(0.99); q < 1*sim.Second {
		t.Errorf("1s sample quantized down to %v", q)
	}
}
