package metrics

import (
	"fmt"
	"strings"

	"itsim/internal/sim"
)

// Histogram accumulates a latency distribution in power-of-two buckets.
// Runs record per-fault wait times in these so the tail behaviour (queueing
// behind prefetches, ready-queue delays) is visible, not just the mean.
type Histogram struct {
	// bounds[i] is bucket i's inclusive upper bound; one overflow bucket
	// follows.
	bounds []sim.Time
	counts []uint64
	total  uint64
	sum    sim.Time
	max    sim.Time
}

// NewLatencyHistogram covers 250 ns … 1.024 ms in doubling buckets — the
// range of interest around the 3 µs device and 7 µs switch constants.
func NewLatencyHistogram() *Histogram {
	var bounds []sim.Time
	for b := 250 * sim.Nanosecond; b <= 1024*sim.Microsecond; b *= 2 {
		bounds = append(bounds, b)
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// NewWideLatencyHistogram covers 250 ns … ~2 s in doubling buckets. Fleet
// request latencies include queueing behind whole machine epochs, so the
// interesting range runs from the device constants up to full epoch
// makespans — far past NewLatencyHistogram's 1 ms ceiling.
func NewWideLatencyHistogram() *Histogram {
	var bounds []sim.Time
	for b := 250 * sim.Nanosecond; b <= 2*sim.Second; b *= 2 {
		bounds = append(bounds, b)
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	for i, b := range h.bounds {
		if d <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() sim.Time {
	if h.total == 0 {
		return 0
	}
	return h.sum / sim.Time(h.total)
}

// Max returns the largest sample seen.
func (h *Histogram) Max() sim.Time { return h.max }

// Sum returns the total of all samples.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) using
// bucket boundaries: the bound of the first bucket at which the cumulative
// count reaches q·total. Returns Max for the overflow bucket.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0.0001
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest k with k ≥ q·total (ceil).
	target := uint64(q * float64(h.total))
	if float64(target) < q*float64(h.total) {
		target++
	}
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// String renders non-empty buckets compactly, e.g.
// "n=42 mean=3.1µs p99<=8µs max=12µs".
func (h *Histogram) String() string {
	if h.total == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50<=%v p99<=%v max=%v",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// Buckets renders the full distribution, one "≤bound: count" per non-empty
// bucket, for verbose reports.
func (h *Histogram) Buckets() string {
	var parts []string
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if i < len(h.bounds) {
			parts = append(parts, fmt.Sprintf("≤%v:%d", h.bounds[i], c))
		} else {
			parts = append(parts, fmt.Sprintf(">%v:%d", h.bounds[len(h.bounds)-1], c))
		}
	}
	return strings.Join(parts, " ")
}
