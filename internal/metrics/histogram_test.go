package metrics

import (
	"strings"
	"testing"

	"itsim/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.String() != "n=0" {
		t.Fatal("empty histogram not empty")
	}
	h.Observe(3 * sim.Microsecond)
	h.Observe(3 * sim.Microsecond)
	h.Observe(9 * sim.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 5*sim.Microsecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 9*sim.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
	if h.Sum() != 15*sim.Microsecond {
		t.Fatalf("Sum = %v", h.Sum())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	// 99 samples at ~1µs, 1 at ~100µs.
	for i := 0; i < 99; i++ {
		h.Observe(sim.Microsecond)
	}
	h.Observe(100 * sim.Microsecond)
	p50 := h.Quantile(0.5)
	if p50 > 2*sim.Microsecond {
		t.Fatalf("p50 = %v, want ≤ 2µs", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 100*sim.Microsecond {
		t.Fatalf("p999 = %v, want ≥ 100µs", p999)
	}
	// Monotonic in q.
	if h.Quantile(0.1) > h.Quantile(0.9) {
		t.Fatal("quantiles not monotonic")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(10 * sim.Second) // beyond the last bound
	if h.Quantile(1) != 10*sim.Second {
		t.Fatalf("overflow quantile = %v", h.Quantile(1))
	}
	if !strings.Contains(h.Buckets(), ">") {
		t.Fatalf("Buckets() missing overflow: %s", h.Buckets())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative sample mishandled: %+v", h)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(3 * sim.Microsecond)
	s := h.String()
	for _, want := range []string{"n=1", "mean=", "p99<="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
