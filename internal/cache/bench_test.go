package cache

import "testing"

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16})
	c.Fill(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}

func BenchmarkAccessMiss(b *testing.B) {
	c := New(Config{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64)
	}
}

func BenchmarkFillEvict(b *testing.B) {
	c := New(Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i) * 64)
	}
}
