// Package cache implements the N-way set-associative cache model used for
// the simulated CPU's last-level cache (LLC) and, with the byte-granular INV
// extension in internal/cpu, the pre-execute cache.
//
// The paper's configuration (§4.1) is a 16-way, 8 MB LLC with 64-byte lines;
// for Sync_Runahead and ITS, half of the LLC is carved out as the
// pre-execute cache, which this package supports by simply constructing two
// caches of half the capacity each.
//
// The cache is keyed by 64-bit addresses. Because the simulated processes
// use overlapping virtual address spaces, the machine model tags addresses
// with the process id in the upper bits before lookup, modelling a
// physically-indexed shared LLC without building full physical addressing
// into the cache itself.
package cache

import (
	"fmt"
	"math/bits"
)

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity, e.g. 8 << 20.
	SizeBytes int
	// LineBytes is the line size, e.g. 64. Must be a power of two.
	LineBytes int
	// Ways is the associativity, e.g. 16.
	Ways int
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive config %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Fills     uint64
}

// MissRatio returns Misses/Accesses, or 0 when no accesses occurred.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is an N-way set-associative cache with true-LRU replacement within
// each set. It tracks line presence only (no data), which is all the timing
// model needs.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	ways      int
	// Flat arrays indexed by set*ways+way.
	tags  []uint64
	valid []bool
	// lruTick provides cheap true-LRU: larger == more recent.
	lruTick []uint64
	tick    uint64
	stats   Stats
}

// New builds a cache from cfg, panicking on invalid configuration (caches
// are constructed from vetted experiment configs; an invalid one is a bug).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	return &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		ways:      cfg.Ways,
		tags:      make([]uint64, lines),
		valid:     make([]bool, lines),
		lruTick:   make([]uint64, lines),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask) + 1 }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the activity counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineOf returns the line index (address >> lineShift) for addr.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineShift }

// AddrOf returns the base address of a line index — the inverse of LineOf.
// Inclusive-hierarchy back-invalidation uses it to turn an evicted LLC line
// tag back into an address the L1s can invalidate.
func (c *Cache) AddrOf(line uint64) uint64 { return line << c.lineShift }

func (c *Cache) setOf(line uint64) int { return int(line & c.setMask) }

// Access looks up addr, counting a hit or miss. On hit the line's recency is
// refreshed. It does NOT allocate on miss; pair with Fill for
// fetch-on-miss semantics, so the caller can charge memory latency first.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	line := c.LineOf(addr)
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.tick++
			c.lruTick[i] = c.tick
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains reports whether addr's line is present without updating recency
// or statistics. Used by the pre-execute engine's validity checks.
func (c *Cache) Contains(addr uint64) bool {
	line := c.LineOf(addr)
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Fill installs addr's line, evicting the LRU way if the set is full.
// It returns the evicted line tag and true if a valid line was displaced.
// Filling a line that is already present just refreshes its recency.
func (c *Cache) Fill(addr uint64) (evicted uint64, wasValid bool) {
	line := c.LineOf(addr)
	base := c.setOf(line) * c.ways
	victim := base
	var victimTick uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.tick++
			c.lruTick[i] = c.tick
			return 0, false
		}
		if !c.valid[i] {
			// Prefer an invalid way; mark it immediately preferred.
			if victimTick != 0 {
				victim, victimTick = i, 0
			}
			continue
		}
		if c.lruTick[i] < victimTick {
			victim, victimTick = i, c.lruTick[i]
		}
	}
	c.stats.Fills++
	if c.valid[victim] {
		evicted, wasValid = c.tags[victim], true
		c.stats.Evictions++
	}
	c.tick++
	c.tags[victim] = line
	c.valid[victim] = true
	c.lruTick[victim] = c.tick
	return evicted, wasValid
}

// Invalidate drops addr's line if present, returning whether it was present.
func (c *Cache) Invalidate(addr uint64) bool {
	line := c.LineOf(addr)
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.valid[i] = false
			return true
		}
	}
	return false
}

// InvalidateMatching drops every line for which keep(tagLine) reports true.
// The machine uses this to flush a terminated process's lines (tag match on
// the pid bits). Returns the number of lines dropped.
func (c *Cache) InvalidateMatching(match func(line uint64) bool) int {
	n := 0
	for i := range c.tags {
		if c.valid[i] && match(c.tags[i]) {
			c.valid[i] = false
			n++
		}
	}
	return n
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// ValidLines returns the number of currently valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
