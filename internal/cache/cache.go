// Package cache implements the N-way set-associative cache model used for
// the simulated CPU's last-level cache (LLC) and, with the byte-granular INV
// extension in internal/cpu, the pre-execute cache.
//
// The paper's configuration (§4.1) is a 16-way, 8 MB LLC with 64-byte lines;
// for Sync_Runahead and ITS, half of the LLC is carved out as the
// pre-execute cache, which this package supports by simply constructing two
// caches of half the capacity each.
//
// The cache is keyed by 64-bit addresses. Because the simulated processes
// use overlapping virtual address spaces, the machine model tags addresses
// with the process id in the upper bits before lookup, modelling a
// physically-indexed shared LLC without building full physical addressing
// into the cache itself.
package cache

import (
	"fmt"
	"math/bits"
)

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity, e.g. 8 << 20.
	SizeBytes int
	// LineBytes is the line size, e.g. 64. Must be a power of two.
	LineBytes int
	// Ways is the associativity, e.g. 16.
	Ways int
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive config %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Fills     uint64
}

// MissRatio returns Misses/Accesses, or 0 when no accesses occurred.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is an N-way set-associative cache with true-LRU replacement within
// each set. It tracks line presence only (no data), which is all the timing
// model needs.
//
// Recency is kept in one of two representations with identical semantics:
//
//   - ways <= 16 (every shipped configuration): order[set] packs the set's
//     way indices into one word, four bits per way, least-significant
//     nibble most-recent. A hit is a move-to-front on the word, and victim
//     selection is reading the top nibble — O(1), no per-way recency scan
//     and no second array walked alongside the tags. Invalid ways are kept
//     at the stale end, so the top nibble is an invalid way whenever one
//     exists and the true-LRU way otherwise. Which invalid way receives an
//     install is unobservable (the resulting line set, recency order,
//     statistics and future evictions are identical either way), so this
//     coexists byte-for-byte with the tick representation.
//
//   - ways > 16: a per-line tick stamp (larger == more recent), victim =
//     minimum stamp. Stamps are unique, so the LRU choice matches the
//     move-to-front order exactly.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	ways      int
	// tags is a flat array indexed by set*ways+way, storing line+1 so that
	// 0 means "invalid" — validity rides inside the tag word and the hot
	// lookup loops touch one array instead of two.
	tags []uint64
	// order is the packed per-set recency word (ways <= 16 only).
	order     []uint64
	orderMask uint64
	// lruTick / tick / validCount implement the fallback representation
	// (ways > 16): tick stamps per line, plus a per-set valid-way count so
	// full sets skip the invalid-way bookkeeping.
	lruTick    []uint64
	validCount []uint16
	tick       uint64
	stats      Stats
}

// initOrder is the identity packing: nibble p holds way p.
const initOrder = 0xFEDCBA9876543210

const (
	nibbleLo = 0x1111111111111111
	nibbleHi = 0x8888888888888888
)

// findShift returns the bit offset (4 * recency position) of way w in the
// packed order q. w must be present — every way index always is.
func findShift(q, w uint64) uint {
	// Standard find-the-zero-nibble trick on q XOR broadcast(w): nibbles
	// below the first match are nonzero, so no borrow reaches it and the
	// lowest marker bit is exact.
	x := q ^ (w * nibbleLo)
	m := (x - nibbleLo) & ^x & nibbleHi
	return uint(bits.TrailingZeros64(m)) - 3
}

// moveFront makes way w the most recent in q.
func moveFront(q, w uint64) uint64 {
	sh := findShift(q, w)
	below := q & (1<<sh - 1)
	above := q >> (sh + 4) << (sh + 4)
	return above | below<<4 | w
}

// moveToTail parks way w at the stale end of q (invalid-way invariant).
func (c *Cache) moveToTail(s int, w uint64) {
	q := c.order[s]
	sh := findShift(q, w)
	below := q & (1<<sh - 1)
	above := q >> (sh + 4) << sh
	c.order[s] = above | below | w<<(4*uint(c.ways-1))
}

// New builds a cache from cfg, panicking on invalid configuration (caches
// are constructed from vetted experiment configs; an invalid one is a bug).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		ways:      cfg.Ways,
		tags:      make([]uint64, lines),
	}
	if cfg.Ways <= 16 {
		c.orderMask = ^uint64(0) >> (64 - 4*uint(cfg.Ways))
		c.order = make([]uint64, sets)
		for s := range c.order {
			c.order[s] = initOrder & c.orderMask
		}
	} else {
		c.lruTick = make([]uint64, lines)
		c.validCount = make([]uint16, sets)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask) + 1 }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the activity counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineOf returns the line index (address >> lineShift) for addr.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineShift }

// AddrOf returns the base address of a line index — the inverse of LineOf.
// Inclusive-hierarchy back-invalidation uses it to turn an evicted LLC line
// tag back into an address the L1s can invalidate.
func (c *Cache) AddrOf(line uint64) uint64 { return line << c.lineShift }

func (c *Cache) setOf(line uint64) int { return int(line & c.setMask) }

// Access looks up addr, counting a hit or miss. On hit the line's recency is
// refreshed. It does NOT allocate on miss; pair with Fill for
// fetch-on-miss semantics, so the caller can charge memory latency first.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	line := c.LineOf(addr)
	t := line + 1
	s := c.setOf(line)
	base := s * c.ways
	set := c.tags[base : base+c.ways]
	for w := range set {
		if set[w] == t {
			if c.order != nil {
				c.order[s] = moveFront(c.order[s], uint64(w))
			} else {
				c.tick++
				c.lruTick[base+w] = c.tick
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains reports whether addr's line is present without updating recency
// or statistics. Used by the pre-execute engine's validity checks.
func (c *Cache) Contains(addr uint64) bool {
	line := c.LineOf(addr)
	t := line + 1
	base := c.setOf(line) * c.ways
	set := c.tags[base : base+c.ways]
	for w := range set {
		if set[w] == t {
			return true
		}
	}
	return false
}

// Fill installs addr's line, evicting the LRU way if the set is full.
// It returns the evicted line tag and true if a valid line was displaced.
// Filling a line that is already present just refreshes its recency.
func (c *Cache) Fill(addr uint64) (evicted uint64, wasValid bool) {
	line := c.LineOf(addr)
	t := line + 1
	s := c.setOf(line)
	base := s * c.ways
	set := c.tags[base : base+c.ways]
	if c.order != nil {
		q := c.order[s]
		for w := range set {
			if set[w] == t {
				c.order[s] = moveFront(q, uint64(w))
				return 0, false
			}
		}
		return c.installPacked(s, set, q, t)
	}
	lru := c.lruTick[base : base+c.ways]
	victim := 0
	var victimTick uint64 = ^uint64(0)
	for w := range set {
		if set[w] == t {
			c.tick++
			lru[w] = c.tick
			return 0, false
		}
		if set[w] == 0 {
			// Prefer the first invalid way; mark it immediately
			// preferred (no valid line's lruTick can be 0).
			if victimTick != 0 {
				victim, victimTick = w, 0
			}
			continue
		}
		if lru[w] < victimTick {
			victim, victimTick = w, lru[w]
		}
	}
	c.stats.Fills++
	if set[victim] != 0 {
		evicted, wasValid = set[victim]-1, true
		c.stats.Evictions++
	} else {
		c.validCount[s]++
	}
	c.tick++
	set[victim] = t
	lru[victim] = c.tick
	return evicted, wasValid
}

// installPacked fills tag t into set s (packed-order representation): the
// top nibble of q is an invalid way when one exists, the LRU way otherwise.
func (c *Cache) installPacked(s int, set []uint64, q, t uint64) (evicted uint64, wasValid bool) {
	v := q >> (4 * uint(c.ways-1))
	c.stats.Fills++
	if old := set[v]; old != 0 {
		evicted, wasValid = old-1, true
		c.stats.Evictions++
	}
	c.order[s] = (q<<4 | v) & c.orderMask
	set[v] = t
	return evicted, wasValid
}

// AccessFill is Access immediately followed by Fill on miss, fused into a
// single scan of the set: the match walk doubles as the presence check, and
// on miss the victim comes straight off the recency order — the executor's
// hottest loop never walks a second per-way array. On hit it behaves
// exactly like Access (recency refresh, no fill). On miss it installs the
// line and returns the displaced tag like Fill. Stats and replacement
// choices are bit-identical to the unfused pair — the victim is chosen from
// the same pre-fill set state, because a missed Access mutates nothing.
func (c *Cache) AccessFill(addr uint64) (hit bool, evicted uint64, wasValid bool) {
	c.stats.Accesses++
	line := c.LineOf(addr)
	t := line + 1
	s := c.setOf(line)
	base := s * c.ways
	set := c.tags[base : base+c.ways]
	if c.order != nil {
		q := c.order[s]
		for w := range set {
			if set[w] == t {
				c.order[s] = moveFront(q, uint64(w))
				c.stats.Hits++
				return true, 0, false
			}
		}
		c.stats.Misses++
		evicted, wasValid = c.installPacked(s, set, q, t)
		return false, evicted, wasValid
	}
	lru := c.lruTick[base : base+c.ways]
	victim := 0
	var victimTick uint64 = ^uint64(0)
	for w := range set {
		if set[w] == t {
			c.tick++
			lru[w] = c.tick
			c.stats.Hits++
			return true, 0, false
		}
		if set[w] == 0 {
			if victimTick != 0 {
				victim, victimTick = w, 0
			}
			continue
		}
		if lru[w] < victimTick {
			victim, victimTick = w, lru[w]
		}
	}
	c.stats.Misses++
	c.stats.Fills++
	if set[victim] != 0 {
		evicted, wasValid = set[victim]-1, true
		c.stats.Evictions++
	} else {
		c.validCount[s]++
	}
	c.tick++
	set[victim] = t
	lru[victim] = c.tick
	return false, evicted, wasValid
}

// FillCold installs addr's line when the caller has just observed it absent
// (an Access miss with no intervening fill of the same line — invalidations
// are fine, they only remove lines). With the packed recency order this is
// O(1): no tag or recency walk at all. The chosen victim and all state
// transitions are identical to Fill's.
func (c *Cache) FillCold(addr uint64) (evicted uint64, wasValid bool) {
	line := c.LineOf(addr)
	t := line + 1
	s := c.setOf(line)
	base := s * c.ways
	if c.order != nil {
		return c.installPacked(s, c.tags[base:base+c.ways], c.order[s], t)
	}
	set := c.tags[base : base+c.ways]
	c.stats.Fills++
	if int(c.validCount[s]) == c.ways {
		// Set full: victim selection never consults the tags — a pure
		// LRU scan suffices, and the eviction is certain.
		lru := c.lruTick[base : base+c.ways]
		victim := 0
		victimTick := lru[0]
		for w := 1; w < len(lru); w++ {
			if lru[w] < victimTick {
				victim, victimTick = w, lru[w]
			}
		}
		c.stats.Evictions++
		evicted = set[victim] - 1
		c.tick++
		set[victim] = t
		lru[victim] = c.tick
		return evicted, true
	}
	// The set has an invalid way; install into the first one, exactly as
	// the full walk would choose (no valid line can outrank an invalid
	// one, since valid lruTicks are always >= 1).
	victim := 0
	for w := range set {
		if set[w] == 0 {
			victim = w
			break
		}
	}
	c.validCount[s]++
	c.tick++
	set[victim] = t
	c.lruTick[base+victim] = c.tick
	return 0, false
}

// Invalidate drops addr's line if present, returning whether it was present.
func (c *Cache) Invalidate(addr uint64) bool {
	line := c.LineOf(addr)
	t := line + 1
	s := c.setOf(line)
	base := s * c.ways
	set := c.tags[base : base+c.ways]
	for w := range set {
		if set[w] == t {
			set[w] = 0
			if c.order != nil {
				c.moveToTail(s, uint64(w))
			} else {
				c.validCount[s]--
			}
			return true
		}
	}
	return false
}

// InvalidateMatching drops every line for which keep(tagLine) reports true.
// The machine uses this to flush a terminated process's lines (tag match on
// the pid bits). Returns the number of lines dropped.
func (c *Cache) InvalidateMatching(match func(line uint64) bool) int {
	n := 0
	for i := range c.tags {
		if c.tags[i] != 0 && match(c.tags[i]-1) {
			c.tags[i] = 0
			if c.order != nil {
				c.moveToTail(i/c.ways, uint64(i%c.ways))
			} else {
				c.validCount[i/c.ways]--
			}
			n++
		}
	}
	return n
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	if c.order != nil {
		for s := range c.order {
			c.order[s] = initOrder & c.orderMask
		}
		return
	}
	for i := range c.validCount {
		c.validCount[i] = 0
	}
}

// ValidLines returns the number of currently valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}
