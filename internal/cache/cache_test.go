package cache

import (
	"testing"
	"testing/quick"
)

func smallCfg() Config {
	return Config{SizeBytes: 4096, LineBytes: 64, Ways: 4} // 16 sets? 4096/64=64 lines /4 = 16 sets
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		smallCfg(),
		{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16},
		{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{},
		{SizeBytes: -1, LineBytes: 64, Ways: 4},
		{SizeBytes: 4096, LineBytes: 48, Ways: 4},    // line not power of two
		{SizeBytes: 4096, LineBytes: 64, Ways: 3},    // 64 lines not divisible... 64/3 no
		{SizeBytes: 64 * 48, LineBytes: 64, Ways: 4}, // 48/4=12 sets: not power of two
		{SizeBytes: 4100, LineBytes: 64, Ways: 4},    // size not multiple of line
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestAccessMissThenHit(t *testing.T) {
	c := New(smallCfg())
	if c.Access(0x1000) {
		t.Fatal("hit on empty cache")
	}
	c.Fill(0x1000)
	if !c.Access(0x1000) {
		t.Fatal("miss after Fill")
	}
	if !c.Access(0x1038) {
		t.Fatal("miss on same line, different offset")
	}
	if c.Access(0x1040) {
		t.Fatal("hit on adjacent line")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallCfg()) // 16 sets, 4 ways
	sets := uint64(c.Sets())
	line := uint64(64)
	// Five lines mapping to set 0: addresses k*sets*line.
	addrs := make([]uint64, 5)
	for i := range addrs {
		addrs[i] = uint64(i) * sets * line
	}
	for _, a := range addrs[:4] {
		c.Fill(a)
	}
	// Touch addrs[0] so addrs[1] is LRU.
	c.Access(addrs[0])
	evicted, was := c.Fill(addrs[4])
	if !was {
		t.Fatal("no eviction from full set")
	}
	if evicted != c.LineOf(addrs[1]) {
		t.Fatalf("evicted line %#x, want LRU %#x", evicted, c.LineOf(addrs[1]))
	}
	if c.Contains(addrs[1]) {
		t.Fatal("evicted line still present")
	}
	if !c.Contains(addrs[0]) || !c.Contains(addrs[4]) {
		t.Fatal("wrong lines evicted")
	}
}

func TestFillPresentLineRefreshesWithoutEviction(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0)
	if _, was := c.Fill(0); was {
		t.Fatal("refill of present line evicted something")
	}
	if c.Stats().Fills != 1 {
		t.Fatalf("refill counted as new fill: %+v", c.Stats())
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(smallCfg())
	sets := uint64(c.Sets())
	line := uint64(64)
	a0, a1, a2, a3, a4 := uint64(0), sets*line, 2*sets*line, 3*sets*line, 4*sets*line
	c.Fill(a0)
	c.Fill(a1)
	c.Fill(a2)
	c.Fill(a3)
	before := c.Stats()
	// Contains on a0 must not refresh its recency or touch stats.
	c.Contains(a0)
	if c.Stats() != before {
		t.Fatal("Contains changed stats")
	}
	c.Fill(a4) // evicts a0 (still LRU despite Contains)
	if c.Contains(a0) {
		t.Fatal("Contains refreshed recency")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0x40)
	if !c.Invalidate(0x40) {
		t.Fatal("Invalidate missed present line")
	}
	if c.Invalidate(0x40) {
		t.Fatal("Invalidate hit absent line")
	}
	if c.Contains(0x40) {
		t.Fatal("line present after Invalidate")
	}
}

func TestInvalidateMatchingAndFlush(t *testing.T) {
	c := New(smallCfg())
	for i := uint64(0); i < 8; i++ {
		c.Fill(i * 64)
	}
	n := c.InvalidateMatching(func(line uint64) bool { return line%2 == 0 })
	if n != 4 {
		t.Fatalf("InvalidateMatching dropped %d, want 4", n)
	}
	if c.ValidLines() != 4 {
		t.Fatalf("ValidLines = %d, want 4", c.ValidLines())
	}
	c.Flush()
	if c.ValidLines() != 0 {
		t.Fatal("Flush left valid lines")
	}
}

func TestEvictionOnlyWithinSet(t *testing.T) {
	c := New(smallCfg())
	// Fill every set's way 0.
	for s := 0; s < c.Sets(); s++ {
		c.Fill(uint64(s) * 64)
	}
	if c.ValidLines() != c.Sets() {
		t.Fatalf("ValidLines = %d, want %d", c.ValidLines(), c.Sets())
	}
	// Overfill set 0 only; other sets must be untouched.
	sets := uint64(c.Sets())
	for k := uint64(1); k <= 4; k++ {
		c.Fill(k * sets * 64)
	}
	for s := 1; s < c.Sets(); s++ {
		if !c.Contains(uint64(s) * 64) {
			t.Fatalf("set %d lost its line to set 0 pressure", s)
		}
	}
}

// Property: capacity is never exceeded and a just-filled line is always
// present.
func TestCapacityProperty(t *testing.T) {
	cfg := smallCfg()
	capacity := cfg.SizeBytes / cfg.LineBytes
	f := func(addrs []uint32) bool {
		c := New(cfg)
		for _, a := range addrs {
			c.Fill(uint64(a))
			if !c.Contains(uint64(a)) {
				return false
			}
			if c.ValidLines() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits+misses == accesses; evictions <= fills.
func TestStatsInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(smallCfg())
		for _, op := range ops {
			addr := uint64(op) * 8
			if op%3 == 0 {
				c.Fill(addr)
			} else {
				c.Access(addr)
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses && st.Evictions <= st.Fills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("MissRatio on zero stats != 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if got := s.MissRatio(); got != 0.3 {
		t.Fatalf("MissRatio = %v, want 0.3", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 7, Ways: 2})
}
