package workload

import (
	"testing"
	"testing/quick"

	"itsim/internal/trace"
)

func TestAllProfilesValid(t *testing.T) {
	for _, name := range Names() {
		p, err := ProfileFor(name, 1.0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := ProfileFor("nope", 1.0); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := ProfileFor(Caffe, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestDeterministicStreams(t *testing.T) {
	a := MustGenerator(RandomWalk, 0.02)
	b := MustGenerator(RandomWalk, 0.02)
	var ra, rb trace.Record
	for i := 0; i < 5000; i++ {
		okA := a.Next(&ra)
		okB := b.Next(&rb)
		if okA != okB || ra != rb {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ra, rb)
		}
		if !okA {
			break
		}
	}
}

func TestResetReproduces(t *testing.T) {
	g := MustGenerator(Wrf, 0.02)
	first := trace.Records(g)
	second := trace.Records(g)
	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("record %d differs after Reset", i)
		}
	}
}

func TestRecordCountMatchesLen(t *testing.T) {
	for _, name := range Names() {
		g := MustGenerator(name, 0.01)
		got := 0
		var r trace.Record
		for g.Next(&r) {
			got++
		}
		if got != g.Len() {
			t.Fatalf("%s: produced %d records, Len() = %d", name, got, g.Len())
		}
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, name := range Names() {
		g := MustGenerator(name, 0.02)
		lo := uint64(BaseVA)
		hi := lo + g.FootprintBytes()
		var r trace.Record
		for g.Next(&r) {
			if r.Addr < lo || r.Addr >= hi {
				t.Fatalf("%s: address %#x outside [%#x, %#x)", name, r.Addr, lo, hi)
			}
			if r.Size == 0 || r.Dst >= trace.NumRegs || r.Src >= trace.NumRegs {
				t.Fatalf("%s: bad record %+v", name, r)
			}
		}
	}
}

func TestClassSplit(t *testing.T) {
	di := map[string]bool{RandomWalk: true, Graph500: true, PageRank: true}
	for _, name := range Names() {
		g := MustGenerator(name, 0.01)
		want := GeneralPurpose
		if di[name] {
			want = DataIntensive
		}
		if g.Class() != want {
			t.Fatalf("%s class = %v, want %v", name, g.Class(), want)
		}
	}
	if GeneralPurpose.String() != "general-purpose" || DataIntensive.String() != "data-intensive" {
		t.Fatal("Class strings wrong")
	}
}

func TestSequentialityByClass(t *testing.T) {
	// General-purpose traces must show much higher page-level locality
	// than data-intensive ones: measure the fraction of accesses landing
	// in the same page as one of the previous 4 accesses.
	locality := func(name string) float64 {
		g := MustGenerator(name, 0.05)
		var r trace.Record
		var recent [4]uint64
		hits, total := 0, 0
		for g.Next(&r) && total < 50000 {
			page := r.Addr >> 12
			for _, p := range recent {
				if p == page {
					hits++
					break
				}
			}
			copy(recent[:], recent[1:])
			recent[3] = page
			total++
		}
		return float64(hits) / float64(total)
	}
	wrf := locality(Wrf)
	rw := locality(RandomWalk)
	if wrf < rw+0.2 {
		t.Fatalf("locality split violated: wrf=%.2f randomwalk=%.2f", wrf, rw)
	}
}

func TestScaleShrinksFootprintAndRecords(t *testing.T) {
	big, _ := ProfileFor(Wrf, 1.0)
	small, _ := ProfileFor(Wrf, 0.1)
	if small.FootprintBytes >= big.FootprintBytes || small.Records >= big.Records {
		t.Fatalf("scaling failed: %d/%d vs %d/%d",
			small.FootprintBytes, small.Records, big.FootprintBytes, big.Records)
	}
	if small.HotBytes >= big.HotBytes {
		t.Fatal("hot region not scaled")
	}
}

func TestScaleFloorsProperty(t *testing.T) {
	f := func(s float64) bool {
		if s <= 0 || s > 4 {
			s = 0.001
		}
		p, err := ProfileFor(Xz, s)
		if err != nil {
			return false
		}
		return p.FootprintBytes >= 16*4096 && p.Records >= 1000 && p.HotBytes >= 4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWarmPages(t *testing.T) {
	g := MustGenerator(Caffe, 0.05)
	ws := g.WarmPages(100)
	if len(ws) != 100 {
		t.Fatalf("WarmPages(100) returned %d", len(ws))
	}
	seen := map[uint64]bool{}
	lo, hi := uint64(BaseVA), uint64(BaseVA)+g.FootprintBytes()
	for _, va := range ws {
		if va%trace.PageSize != 0 {
			t.Fatalf("unaligned warm page %#x", va)
		}
		if va < lo || va >= hi {
			t.Fatalf("warm page %#x outside footprint", va)
		}
		if seen[va] {
			t.Fatalf("duplicate warm page %#x", va)
		}
		seen[va] = true
	}
	// Hot region first: the first warm page is the hot base.
	if ws[0] != lo {
		t.Fatalf("first warm page %#x, want hot base %#x", ws[0], lo)
	}
	if got := g.WarmPages(0); got != nil {
		t.Fatal("WarmPages(0) != nil")
	}
}

func TestWarmPagesCappedByFootprint(t *testing.T) {
	g := MustGenerator(DeepSjeng, 0.01)
	pages := int(trace.FootprintPages(g.FootprintBytes()))
	ws := g.WarmPages(pages * 10)
	if len(ws) > pages {
		t.Fatalf("WarmPages returned %d > footprint pages %d", len(ws), pages)
	}
}

func TestBatches(t *testing.T) {
	bs := Batches()
	if len(bs) != 4 {
		t.Fatalf("%d batches", len(bs))
	}
	for i, b := range bs {
		if len(b.Members) != 6 || len(b.Priorities) != 6 {
			t.Fatalf("%s: %d members, %d priorities", b.Name, len(b.Members), len(b.Priorities))
		}
		if b.DataIntensive != i {
			t.Fatalf("%s: DataIntensive = %d, want %d", b.Name, b.DataIntensive, i)
		}
		// Priorities are a permutation of 1..6.
		seen := map[int]bool{}
		for _, p := range b.Priorities {
			if p < 1 || p > 6 || seen[p] {
				t.Fatalf("%s: bad priorities %v", b.Name, b.Priorities)
			}
			seen[p] = true
		}
		// The shared trio leads every batch.
		if b.Members[0] != Wrf || b.Members[1] != Blender || b.Members[2] != CommDetect {
			t.Fatalf("%s: members %v", b.Name, b.Members)
		}
		// Declared data-intensive count matches the members.
		di := 0
		for _, m := range b.Members {
			if g := MustGenerator(m, 0.01); g.Class() == DataIntensive {
				di++
			}
		}
		if di != b.DataIntensive {
			t.Fatalf("%s: %d DI members, declared %d", b.Name, di, b.DataIntensive)
		}
	}
}

func TestBatchByName(t *testing.T) {
	b, err := BatchByName("2_Data_Intensive")
	if err != nil || b.DataIntensive != 2 {
		t.Fatalf("BatchByName: %+v, %v", b, err)
	}
	if _, err := BatchByName("nope"); err == nil {
		t.Fatal("unknown batch accepted")
	}
}

func TestBatchGeneratorsAndFootprint(t *testing.T) {
	b := Batches()[0]
	gens := b.Generators(0.05)
	if len(gens) != 6 {
		t.Fatalf("%d generators", len(gens))
	}
	var sum uint64
	for _, g := range gens {
		sum += g.FootprintBytes()
	}
	if got := b.TotalFootprint(0.05); got != sum {
		t.Fatalf("TotalFootprint = %d, want %d", got, sum)
	}
}

func TestAssignPriorities(t *testing.T) {
	p := AssignPriorities(6, 1)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 1 || v > 6 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	q := AssignPriorities(6, 1)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("same seed, different permutation")
		}
	}
}

func TestInvalidProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid profile accepted")
		}
	}()
	New(Profile{Name: "bad", FootprintBytes: 100, Records: 10})
}

func TestZipfScatterNotContiguous(t *testing.T) {
	// The permuted-Zipf random stream must not concentrate its hottest
	// pages in one contiguous VA run (that would make random workloads
	// artificially prefetchable). Count how often consecutive random
	// accesses land on VA-adjacent pages.
	p, _ := ProfileFor(RandomWalk, 0.05)
	p.PSeq, p.PHot = 0, 0 // pure random
	g := New(p)
	var r trace.Record
	var prev uint64
	adjacent, total := 0, 0
	for g.Next(&r) && total < 20000 {
		page := r.Addr >> 12
		if prev != 0 && (page == prev+1 || page == prev-1) {
			adjacent++
		}
		prev = page
		total++
	}
	if frac := float64(adjacent) / float64(total); frac > 0.01 {
		t.Fatalf("random stream %v%% VA-adjacent; hot pages not scattered", 100*frac)
	}
}

func TestPhasesShiftWorkingSet(t *testing.T) {
	// A hot-dominated profile makes the phase relocation visible: each
	// phase hammers one small region.
	base := Profile{
		Name: "phased", FootprintBytes: 32 << 20, Records: 20000,
		PSeq: 0.1, PHot: 0.8, HotBytes: 256 << 10,
		StoreFrac: 0.2, GapMean: 5, Seed: 99,
	}
	base.Phases = 4
	g := New(base)
	// Collect the hot-access page sets of the first and last quarter; with
	// phases they must differ substantially.
	quarter := base.Records / 4
	pages := func(skip, take int) map[uint64]int {
		g.Reset()
		var r trace.Record
		out := map[uint64]int{}
		for i := 0; i < skip+take; i++ {
			if !g.Next(&r) {
				break
			}
			if i >= skip {
				out[r.Addr>>12]++
			}
		}
		return out
	}
	first := pages(0, quarter)
	last := pages(3*quarter, quarter)
	common := 0
	for pg := range first {
		if _, ok := last[pg]; ok {
			common++
		}
	}
	overlap := float64(common) / float64(len(first))
	if overlap > 0.6 {
		t.Fatalf("phase shift ineffective: %.0f%% page overlap between first and last quarter", 100*overlap)
	}
	// Single-phase control: overlap should be much higher.
	base.Phases = 0
	g = New(base)
	first = pages(0, quarter)
	last = pages(3*quarter, quarter)
	common = 0
	for pg := range first {
		if _, ok := last[pg]; ok {
			common++
		}
	}
	if single := float64(common) / float64(len(first)); single <= overlap {
		t.Fatalf("single-phase overlap %.2f not above phased %.2f", single, overlap)
	}
}

func TestPhasesStillDeterministic(t *testing.T) {
	p, _ := ProfileFor(Blender, 0.02)
	p.Phases = 3
	a, b := New(p), New(p)
	var ra, rb trace.Record
	for i := 0; i < p.Records; i++ {
		okA, okB := a.Next(&ra), b.Next(&rb)
		if okA != okB || ra != rb {
			t.Fatalf("phased streams diverged at %d", i)
		}
		if !okA {
			break
		}
	}
}
