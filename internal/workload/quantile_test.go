package workload

import (
	"testing"

	"itsim/internal/sim"
)

func TestQuantileTrackerReadyGate(t *testing.T) {
	q := NewQuantileTracker(8, 4)
	if q.Ready() {
		t.Fatal("empty tracker reports Ready")
	}
	for i := 1; i <= 3; i++ {
		q.Observe(sim.Time(i))
	}
	if q.Ready() {
		t.Fatalf("Ready after %d of 4 warm-up samples", q.Samples())
	}
	q.Observe(4)
	if !q.Ready() {
		t.Fatal("not Ready at minSamples")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	q := NewQuantileTracker(16, 1)
	// Insert out of order: quantiles sort internally.
	for _, v := range []sim.Time{50, 10, 40, 20, 30} {
		q.Observe(v)
	}
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {0.99, 50}, {1, 50},
	}
	for _, tc := range cases {
		if got := q.Quantile(tc.p); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	// Quantile must not disturb the window order (scratch copy only).
	if got := q.Quantile(0.5); got != 30 {
		t.Errorf("repeated Quantile(0.5) = %d, want 30", got)
	}
}

func TestQuantileSlidingWindow(t *testing.T) {
	q := NewQuantileTracker(4, 1)
	for i := 1; i <= 4; i++ {
		q.Observe(sim.Time(i)) // window [1 2 3 4]
	}
	if got := q.Quantile(1); got != 4 {
		t.Fatalf("max of full window = %d, want 4", got)
	}
	q.Observe(100) // evicts 1 → [100 2 3 4]
	q.Observe(200) // evicts 2 → [100 200 3 4]
	if got := q.Quantile(1); got != 200 {
		t.Errorf("max after slide = %d, want 200", got)
	}
	if got := q.Quantile(0); got != 3 {
		t.Errorf("min after slide = %d, want 3", got)
	}
	if q.Samples() != 4 {
		t.Errorf("window grew beyond capacity: %d", q.Samples())
	}
}

func TestQuantileEmptyAndTiny(t *testing.T) {
	q := NewQuantileTracker(0, 0) // capacity clamps to 1
	if got := q.Quantile(0.5); got != 0 {
		t.Fatalf("empty tracker Quantile = %d, want 0", got)
	}
	q.Observe(7)
	if got := q.Quantile(0.99); got != 7 {
		t.Errorf("single-sample Quantile = %d, want 7", got)
	}
}
