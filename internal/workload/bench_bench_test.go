package workload

import (
	"testing"

	"itsim/internal/trace"
)

func BenchmarkSyntheticNext(b *testing.B) {
	for _, name := range []string{Wrf, RandomWalk} {
		b.Run(name, func(b *testing.B) {
			g := MustGenerator(name, 1.0)
			var r trace.Record
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !g.Next(&r) {
					g.Reset()
				}
			}
		})
	}
}

func BenchmarkWarmPages(b *testing.B) {
	g := MustGenerator(CommDetect, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.WarmPages(1024)
	}
}
