// Package workload provides deterministic synthetic trace generators that
// stand in for the paper's nine Valgrind-captured benchmarks (§4.1):
//
//	general-purpose: Caffe (CaffeNet inference), Wrf (SPEC CPU 2006),
//	                 Blender, Xz, DeepSjeng (SPEC CPU 2017), and GraphChi
//	                 community detection;
//	data-intensive:  GraphChi random walk, Graph500 single-source shortest
//	                 path, and GraphChi page rank.
//
// Real traces are proprietary to the authors' capture setup, so each
// generator models the published access-pattern class of its benchmark —
// streaming weights, stencil sweeps, tile rendering, sliding-window
// compression, transposition-table chasing, shard scans, and graph-random
// traversals — with footprints and locality chosen to preserve the paper's
// split: general-purpose processes are prefetch-friendly (high sequentiality,
// modest footprint), data-intensive ones are cache- and memory-hostile
// (large footprint, dominant random access). See DESIGN.md §2 for the
// substitution rationale.
//
// Every generator is reproducible: Reset rewinds to an identical stream.
package workload

import (
	"fmt"

	"itsim/internal/prng"
	"itsim/internal/trace"
)

// Class tags a workload as general-purpose or data-intensive.
type Class uint8

// Workload classes.
const (
	// GeneralPurpose workloads have predictable locality.
	GeneralPurpose Class = iota
	// DataIntensive workloads stress memory with random access.
	DataIntensive
)

// String names the class.
func (c Class) String() string {
	if c == DataIntensive {
		return "data-intensive"
	}
	return "general-purpose"
}

// Profile parameterizes a synthetic generator. Probabilities PSeq, PHot and
// PRandom are normalized; the remainder after PSeq+PHot goes to PRandom.
type Profile struct {
	// Name of the benchmark this profile models.
	Name string
	// Class is general-purpose or data-intensive.
	Class Class
	// FootprintBytes is the size of the virtual region the trace touches.
	FootprintBytes uint64
	// Records is the number of memory accesses to generate.
	Records int
	// Streams is the number of concurrent sequential streams (a stencil
	// sweep reads several arrays in lockstep).
	Streams int
	// StrideBytes is the sequential advance per stream access.
	StrideBytes uint64
	// PSeq is the probability an access advances a sequential stream.
	PSeq float64
	// PHot is the probability an access lands in the hot region.
	PHot float64
	// HotBytes is the hot-region size (reused data: activations,
	// dictionaries, stacks).
	HotBytes uint64
	// WindowBytes, when non-zero, confines random accesses to a sliding
	// window trailing the first stream head (xz-style matching).
	WindowBytes uint64
	// TileBytes, when non-zero, makes stream heads jump to a random
	// tile-aligned position after advancing a tile (blender-style).
	TileBytes uint64
	// ZipfTheta, when > 0, skews random accesses toward low addresses
	// (graph degree skew); 0 selects uniform random.
	ZipfTheta float64
	// StoreFrac is the fraction of accesses that are stores.
	StoreFrac float64
	// GapMean is the mean number of compute instructions between
	// accesses (geometric distribution).
	GapMean int
	// DepChain is the probability a record's source register is the
	// previous record's destination (dependency chains drive INV
	// propagation during pre-execution).
	DepChain float64
	// Phases, when > 1, splits the trace into program phases: at each
	// phase boundary the hot region relocates and the stream heads
	// re-seat at new positions, modelling the phase behaviour of real
	// programs (optional — the calibrated paper profiles run single-
	// phase).
	Phases int
	// Seed makes the stream unique and reproducible.
	Seed uint64
}

// Validate sanity-checks the profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if p.FootprintBytes < trace.PageSize {
		return fmt.Errorf("workload %s: footprint %d below one page", p.Name, p.FootprintBytes)
	}
	if p.Records <= 0 {
		return fmt.Errorf("workload %s: non-positive record count", p.Name)
	}
	if p.PSeq < 0 || p.PHot < 0 || p.PSeq+p.PHot > 1 {
		return fmt.Errorf("workload %s: bad probabilities seq=%v hot=%v", p.Name, p.PSeq, p.PHot)
	}
	if p.StoreFrac < 0 || p.StoreFrac > 1 {
		return fmt.Errorf("workload %s: bad store fraction %v", p.Name, p.StoreFrac)
	}
	return nil
}

// Synthetic is the generator driven by a Profile.
type Synthetic struct {
	prof Profile
	rng  *prng.Source

	emitted   int
	heads     []uint64 // per-stream next offsets within the footprint
	lastDst   uint8
	baseVA    uint64
	hotBase   uint64
	tileLeft  uint64
	nextPhase int // emitted-count at which the next phase shift happens
}

// BaseVA is where each synthetic trace's region begins. Real heaps don't
// start at zero; a non-trivial base exercises the multi-level page-table
// indexing.
const BaseVA = 0x0000_1000_0000

// New constructs a generator from prof, panicking on invalid profiles
// (profiles are compiled-in experiment configs, so invalid means a bug).
func New(prof Profile) *Synthetic {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	if prof.Streams <= 0 {
		prof.Streams = 1
	}
	if prof.StrideBytes == 0 {
		prof.StrideBytes = 64
	}
	if prof.GapMean <= 0 {
		prof.GapMean = 10
	}
	if prof.HotBytes == 0 {
		prof.HotBytes = prof.FootprintBytes / 32
	}
	g := &Synthetic{prof: prof}
	g.Reset()
	return g
}

// Profile returns the generator's parameters.
func (g *Synthetic) Profile() Profile { return g.prof }

// Name implements trace.Generator.
func (g *Synthetic) Name() string { return g.prof.Name }

// Len implements trace.Generator.
func (g *Synthetic) Len() int { return g.prof.Records }

// FootprintBytes implements trace.Generator.
func (g *Synthetic) FootprintBytes() uint64 { return g.prof.FootprintBytes }

// Class returns the workload class.
func (g *Synthetic) Class() Class { return g.prof.Class }

// Reset implements trace.Generator.
func (g *Synthetic) Reset() {
	p := g.prof
	g.rng = prng.New(p.Seed)
	g.emitted = 0
	g.baseVA = BaseVA
	g.hotBase = 0 // hot region sits at the start of the footprint
	g.heads = g.heads[:0]
	span := p.FootprintBytes / uint64(p.Streams)
	for i := 0; i < p.Streams; i++ {
		g.heads = append(g.heads, uint64(i)*span)
	}
	g.tileLeft = p.TileBytes
	g.lastDst = 0
	g.nextPhase = 0
	if p.Phases > 1 {
		g.nextPhase = p.Records / p.Phases
	}
}

// Next implements trace.Generator.
func (g *Synthetic) Next(rec *trace.Record) bool {
	p := &g.prof
	if g.emitted >= p.Records {
		return false
	}
	g.emitted++
	if g.nextPhase > 0 && g.emitted >= g.nextPhase {
		g.shiftPhase()
	}

	var off uint64
	r := g.rng.Float64()
	switch {
	case r < p.PSeq:
		off = g.nextSeq()
	case r < p.PSeq+p.PHot:
		off = g.hotBase + g.rng.Uint64n(p.HotBytes)
	default:
		off = g.nextRandom()
	}
	if off >= p.FootprintBytes {
		off %= p.FootprintBytes
	}

	rec.Addr = g.baseVA + off
	rec.Size = 8
	if g.rng.Bool(p.StoreFrac) {
		rec.Kind = trace.Store
	} else {
		rec.Kind = trace.Load
	}
	rec.Gap = g.geomGap()
	// Register assignment: loads define a destination; dependency chains
	// make the next record's source the previous destination.
	dst := uint8(g.rng.Intn(trace.NumRegs))
	src := uint8(g.rng.Intn(trace.NumRegs))
	if g.rng.Bool(p.DepChain) {
		src = g.lastDst
	}
	rec.Dst = dst
	rec.Src = src
	if rec.Kind == trace.Load {
		g.lastDst = dst
	}
	return true
}

// shiftPhase relocates the hot region and re-seats every stream head —
// the program entered a new phase with a different working set.
func (g *Synthetic) shiftPhase() {
	p := &g.prof
	g.nextPhase += p.Records / p.Phases
	if p.FootprintBytes > p.HotBytes {
		g.hotBase = g.rng.Uint64n(p.FootprintBytes - p.HotBytes)
	}
	for i := range g.heads {
		g.heads[i] = g.rng.Uint64n(p.FootprintBytes)
	}
}

// nextSeq advances a randomly chosen stream head by the stride, wrapping at
// the footprint and honouring tile jumps.
func (g *Synthetic) nextSeq() uint64 {
	p := &g.prof
	s := g.rng.Intn(len(g.heads))
	off := g.heads[s]
	g.heads[s] += p.StrideBytes
	if g.heads[s] >= p.FootprintBytes {
		g.heads[s] = 0
	}
	if p.TileBytes > 0 {
		if g.tileLeft <= p.StrideBytes {
			// Jump to a random tile start.
			tiles := p.FootprintBytes / p.TileBytes
			if tiles > 0 {
				g.heads[s] = g.rng.Uint64n(tiles) * p.TileBytes
			}
			g.tileLeft = p.TileBytes
		} else {
			g.tileLeft -= p.StrideBytes
		}
	}
	return off
}

// nextRandom draws a random offset: windowed behind stream 0 (xz), Zipf
// (graphs) or uniform.
func (g *Synthetic) nextRandom() uint64 {
	p := &g.prof
	if p.WindowBytes > 0 {
		head := g.heads[0]
		w := p.WindowBytes
		if head < w {
			w = head + trace.PageSize
		}
		back := g.rng.Uint64n(w)
		if back > head {
			return 0
		}
		return head - back
	}
	if p.ZipfTheta > 0 {
		pages := int(p.FootprintBytes / trace.PageSize)
		pg := g.rng.Zipf(pages, p.ZipfTheta)
		// Scatter the popularity ranks across the footprint with a
		// bijective multiplicative permutation: graph "hot vertices"
		// are not laid out contiguously in a real heap, so a victim
		// page's virtual-address neighbours must not be its
		// popularity neighbours (otherwise every prefetcher looks
		// artificially clairvoyant on random workloads).
		pg = int((uint64(pg) * 2654435761) % uint64(pages))
		return uint64(pg)*trace.PageSize + g.rng.Uint64n(trace.PageSize)
	}
	return g.rng.Uint64n(p.FootprintBytes)
}

// geomGap samples a geometric-ish gap with the configured mean.
func (g *Synthetic) geomGap() uint32 {
	m := g.prof.GapMean
	// Sum of two uniforms approximates the mean with bounded variance and
	// avoids pathological zero-runs.
	gap := g.rng.Intn(m+1) + g.rng.Intn(m+1)
	return uint32(gap)
}

// WarmPages returns up to maxPages page-aligned virtual addresses of the
// workload's working set, hottest first: the hot region, then pages fanning
// out from each stream's starting position. The machine model uses this to
// warm-start DRAM — the paper evaluates steady-state multiprogramming
// ("DRAM size is tailored to match the working set"), not cold-start
// page-in of every image.
func (g *Synthetic) WarmPages(maxPages int) []uint64 {
	if maxPages <= 0 {
		return nil
	}
	p := &g.prof
	seen := make(map[uint64]struct{}, maxPages)
	out := make([]uint64, 0, maxPages)
	add := func(off uint64) bool {
		if off >= p.FootprintBytes {
			return len(out) < maxPages
		}
		va := (BaseVA + off) &^ uint64(trace.PageSize-1)
		if _, dup := seen[va]; !dup {
			seen[va] = struct{}{}
			out = append(out, va)
		}
		return len(out) < maxPages
	}
	// Hot region first.
	for off := g.hotBase; off < g.hotBase+p.HotBytes; off += trace.PageSize {
		if !add(off) {
			return out
		}
	}
	// Then pages fanning out from each stream start, interleaved.
	streams := p.Streams
	if streams <= 0 {
		streams = 1
	}
	span := p.FootprintBytes / uint64(streams)
	for k := uint64(0); ; k++ {
		progressed := false
		for s := 0; s < streams; s++ {
			off := uint64(s)*span + k*trace.PageSize
			if off >= p.FootprintBytes || (s+1 < streams && off >= uint64(s+1)*span) {
				continue
			}
			progressed = true
			if !add(off) {
				return out
			}
		}
		if !progressed {
			return out
		}
	}
}

var _ trace.Generator = (*Synthetic)(nil)
