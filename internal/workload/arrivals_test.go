package workload

import (
	"math"
	"testing"

	"itsim/internal/sim"
)

func TestParsePattern(t *testing.T) {
	cases := []struct {
		in      string
		want    ArrivalPattern
		wantErr bool
	}{
		{"steady", Steady, false},
		{"", Steady, false},
		{"  Diurnal ", Diurnal, false},
		{"BURSTY", Bursty, false},
		{"multiperiod", MultiPeriod, false},
		{"multi-period", MultiPeriod, false},
		{"sawtooth", Steady, true},
	}
	for _, c := range cases {
		got, err := ParsePattern(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParsePattern(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParsePattern(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPatternStringRoundTrip(t *testing.T) {
	for _, p := range []ArrivalPattern{Steady, Diurnal, Bursty, MultiPeriod} {
		back, err := ParsePattern(p.String())
		if err != nil || back != p {
			t.Errorf("ParsePattern(%v.String()) = %v, %v", p, back, err)
		}
	}
}

func TestArrivalsZeroRate(t *testing.T) {
	a := NewArrivals(ArrivalConfig{Rate: 0, Seed: 1})
	for i := 0; i < 5; i++ {
		if got := a.Next(); got != 0 {
			t.Fatalf("zero-rate arrival %d at %v, want 0", i, got)
		}
	}
}

func TestArrivalsMonotonic(t *testing.T) {
	for _, p := range []ArrivalPattern{Steady, Diurnal, Bursty, MultiPeriod} {
		a := NewArrivals(ArrivalConfig{
			Rate: 50_000, Pattern: p, Period: 2 * sim.Millisecond, Amp: 0.8, Seed: 42,
		})
		var prev sim.Time
		for i := 0; i < 1000; i++ {
			got := a.Next()
			if got < prev {
				t.Fatalf("%v: arrival %d at %v before previous %v", p, i, got, prev)
			}
			prev = got
		}
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	mk := func() []sim.Time {
		a := NewArrivals(ArrivalConfig{
			Rate: 100_000, Pattern: Diurnal, Period: sim.Millisecond, Amp: 0.5, Seed: 7,
		})
		out := make([]sim.Time, 200)
		for i := range out {
			out[i] = a.Next()
		}
		return out
	}
	x, y := mk(), mk()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("arrival %d differs across identical generators: %v vs %v", i, x[i], y[i])
		}
	}
	a := NewArrivals(ArrivalConfig{
		Rate: 100_000, Pattern: Diurnal, Period: sim.Millisecond, Amp: 0.5, Seed: 8,
	})
	diff := false
	for i := range x {
		if a.Next() != x[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced an identical arrival sequence")
	}
}

// TestArrivalsRate checks the realized steady rate against the configured
// one: n arrivals at rate λ should land near n/λ seconds.
func TestArrivalsRate(t *testing.T) {
	const rate = 1e6 // 1 req/µs
	const n = 20000
	a := NewArrivals(ArrivalConfig{Rate: rate, Seed: 3})
	var last sim.Time
	for i := 0; i < n; i++ {
		last = a.Next()
	}
	want := float64(n) / rate * 1e9 // ns
	got := float64(last)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("steady arrivals: %d-th at %.0f ns, want ≈ %.0f ns (±5%%)", n, got, want)
	}
}

// TestArrivalsDiurnalShape checks that diurnal modulation concentrates
// arrivals in the envelope's high half-period.
func TestArrivalsDiurnalShape(t *testing.T) {
	period := 2 * sim.Millisecond
	a := NewArrivals(ArrivalConfig{
		Rate: 2e6, Pattern: Diurnal, Period: period, Amp: 0.9, Seed: 11,
	})
	var high, low int
	for i := 0; i < 20000; i++ {
		at := a.Next()
		if at%period < period/2 {
			high++ // sin > 0: first half-period
		} else {
			low++
		}
	}
	if high <= low {
		t.Fatalf("diurnal arrivals not concentrated in peak half: high=%d low=%d", high, low)
	}
}

func TestArrivalsClamping(t *testing.T) {
	a := NewArrivals(ArrivalConfig{Rate: 1e6, Pattern: Bursty, Amp: 5, Period: -1, Seed: 1})
	if a.cfg.Amp != 1 {
		t.Errorf("Amp clamp: got %v, want 1", a.cfg.Amp)
	}
	if a.cfg.Period != sim.Millisecond {
		t.Errorf("Period default: got %v, want %v", a.cfg.Period, sim.Millisecond)
	}
	if got := a.Next(); got <= 0 {
		t.Errorf("clamped generator produced non-positive arrival %v", got)
	}
}
