package workload

import (
	"fmt"
	"math"
	"strings"

	"itsim/internal/prng"
	"itsim/internal/sim"
)

// Open-loop request arrival generation for the fleet-scale serving
// simulation (internal/cluster). Arrivals are a nonhomogeneous Poisson
// process: a base rate shaped by a deterministic time-of-day envelope
// (ServeGen-style diurnal, bursty and multi-period patterns), sampled by
// Lewis–Shedler thinning from a seeded PRNG. Open-loop means arrival times
// never depend on service progress — the generator models millions of
// independent users, not a closed feedback loop.

// ArrivalPattern selects the rate envelope shaping a tenant's arrivals.
type ArrivalPattern uint8

// Arrival patterns.
const (
	// Steady is a constant-rate Poisson process.
	Steady ArrivalPattern = iota
	// Diurnal modulates the rate sinusoidally over one period — the
	// classic day/night serving curve.
	Diurnal
	// Bursty alternates half-periods of (1+Amp)× and (1−Amp)× the base
	// rate — on/off burst trains.
	Bursty
	// MultiPeriod superimposes a second, 3×-faster harmonic at half the
	// amplitude on the diurnal curve — weekly-over-daily style structure.
	MultiPeriod
)

// String names the pattern as used in tenant specs.
func (p ArrivalPattern) String() string {
	switch p {
	case Diurnal:
		return "diurnal"
	case Bursty:
		return "bursty"
	case MultiPeriod:
		return "multiperiod"
	default:
		return "steady"
	}
}

// ParsePattern resolves a pattern name (case-insensitive).
func ParsePattern(name string) (ArrivalPattern, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "steady":
		return Steady, nil
	case "diurnal":
		return Diurnal, nil
	case "bursty":
		return Bursty, nil
	case "multiperiod", "multi-period":
		return MultiPeriod, nil
	}
	return Steady, fmt.Errorf("workload: unknown arrival pattern %q (want steady, diurnal, bursty or multiperiod)", name)
}

// envelopeFloor keeps every envelope strictly positive so thinning always
// terminates and no tenant's traffic ever fully stops.
const envelopeFloor = 0.05

// ArrivalConfig parameterizes one tenant's arrival process.
type ArrivalConfig struct {
	// Rate is the base arrival rate in requests per virtual second.
	// Rate <= 0 degenerates to a closed burst: every arrival at t = 0
	// (the single-machine batch semantics, and the fleet⇔smp equivalence
	// anchor).
	Rate float64
	// Pattern shapes the rate over time.
	Pattern ArrivalPattern
	// Period is the envelope period; ignored by Steady.
	Period sim.Time
	// Amp is the modulation amplitude in [0, 1]; ignored by Steady.
	Amp float64
	// Seed drives the thinning draws.
	Seed uint64
}

// Arrivals generates one tenant's arrival times, strictly non-decreasing.
type Arrivals struct {
	cfg ArrivalConfig
	rng *prng.Source
	// now is the current virtual time in float64 nanoseconds — float so
	// the exponential gaps keep sub-nanosecond phase (truncating each gap
	// separately would bias the realized rate upward).
	now float64
}

// NewArrivals builds a generator. Invalid amplitude/period values are
// clamped (user input is validated upstream by the tenant-spec parser).
func NewArrivals(cfg ArrivalConfig) *Arrivals {
	if cfg.Amp < 0 {
		cfg.Amp = 0
	}
	if cfg.Amp > 1 {
		cfg.Amp = 1
	}
	if cfg.Period <= 0 {
		cfg.Period = sim.Millisecond
	}
	return &Arrivals{cfg: cfg, rng: prng.New(cfg.Seed)}
}

// envelope returns the rate multiplier at virtual time tNs.
func (a *Arrivals) envelope(tNs float64) float64 {
	c := &a.cfg
	period := float64(c.Period)
	var e float64
	switch c.Pattern {
	case Diurnal:
		e = 1 + c.Amp*math.Sin(2*math.Pi*tNs/period)
	case Bursty:
		phase := math.Mod(tNs, period) / period
		if phase < 0.5 {
			e = 1 + c.Amp
		} else {
			e = 1 - c.Amp
		}
	case MultiPeriod:
		e = 1 + c.Amp*math.Sin(2*math.Pi*tNs/period) + (c.Amp/2)*math.Sin(2*math.Pi*3*tNs/period)
	default:
		e = 1
	}
	if e < envelopeFloor {
		e = envelopeFloor
	}
	return e
}

// peak is the envelope's maximum multiplier — the thinning majorant.
func (a *Arrivals) peak() float64 {
	switch a.cfg.Pattern {
	case Diurnal, Bursty:
		return 1 + a.cfg.Amp
	case MultiPeriod:
		return 1 + 1.5*a.cfg.Amp
	default:
		return 1
	}
}

// maxThinningRejects bounds the thinning loop against numerical corner
// cases; with the envelope floored at envelopeFloor the acceptance
// probability is at least floor/peak ≈ 2 %, so the bound is never reached
// in practice.
const maxThinningRejects = 100_000

// Next returns the next arrival time. Successive calls are
// non-decreasing. With Rate <= 0 every call returns 0.
func (a *Arrivals) Next() sim.Time {
	c := &a.cfg
	if c.Rate <= 0 {
		return 0
	}
	// Lewis–Shedler thinning against the constant majorant rate
	// Rate·peak: draw homogeneous-Poisson candidates at the majorant and
	// accept each with probability envelope(t)/peak.
	peak := a.peak()
	lambdaMaxPerNs := c.Rate * peak / 1e9
	for i := 0; i < maxThinningRejects; i++ {
		u := a.rng.Float64()
		// Exponential gap at the majorant rate; 1-u keeps the argument
		// of Log strictly positive.
		a.now += -math.Log(1-u) / lambdaMaxPerNs
		if a.rng.Float64()*peak <= a.envelope(a.now) {
			break
		}
	}
	return sim.Time(a.now)
}
