package workload

import (
	"fmt"

	"itsim/internal/prng"
)

// Benchmark names (paper §4.1).
const (
	Caffe      = "caffe"
	Wrf        = "wrf"
	Blender    = "blender"
	Xz         = "xz"
	DeepSjeng  = "deepsjeng"
	CommDetect = "commdetect"
	RandomWalk = "randomwalk"
	Graph500   = "graph500sssp"
	PageRank   = "pagerank"
)

// MiB is 2^20 bytes.
const MiB = 1 << 20

// baseProfiles returns the nine benchmark profiles at scale 1.0. Footprints
// and record counts shrink/grow with scale so tests can run the same shapes
// cheaply. Each profile's comment states the access-pattern class it
// models; the parameters are the knobs DESIGN.md §2 calls out.
func baseProfiles() map[string]Profile {
	return map[string]Profile{
		// CaffeNet inference: layer weights stream sequentially, a small
		// activation buffer is intensely reused.
		Caffe: {
			Name: Caffe, Class: GeneralPurpose,
			FootprintBytes: 30 * MiB, Records: 400_000,
			Streams: 2, StrideBytes: 64,
			PSeq: 0.70, PHot: 0.20, HotBytes: 4 * MiB,
			StoreFrac: 0.25, GapMean: 21, DepChain: 0.45,
			Seed: 0xCAFE_0001,
		},
		// WRF weather stencil: several arrays swept in lockstep with
		// regular strides; tiny boundary-condition hot set.
		Wrf: {
			Name: Wrf, Class: GeneralPurpose,
			FootprintBytes: 32 * MiB, Records: 420_000,
			Streams: 4, StrideBytes: 64,
			PSeq: 0.78, PHot: 0.12, HotBytes: 2 * MiB,
			StoreFrac: 0.30, GapMean: 24, DepChain: 0.50,
			Seed: 0x00F1_0002,
		},
		// Blender rendering: sequential within a tile, random jumps
		// between tiles, scene-graph lookups in a reused cache.
		Blender: {
			Name: Blender, Class: GeneralPurpose,
			FootprintBytes: 28 * MiB, Records: 400_000,
			Streams: 2, StrideBytes: 64, TileBytes: 256 * 1024,
			PSeq: 0.62, PHot: 0.18, HotBytes: 4 * MiB,
			StoreFrac: 0.22, GapMean: 22, DepChain: 0.40,
			Seed: 0xB1E7_0003,
		},
		// Xz compression: sequential input scan with match lookups
		// confined to the trailing dictionary window.
		Xz: {
			Name: Xz, Class: GeneralPurpose,
			FootprintBytes: 26 * MiB, Records: 380_000,
			Streams: 1, StrideBytes: 64, WindowBytes: 6 * MiB,
			PSeq: 0.55, PHot: 0.15, HotBytes: 1 * MiB,
			StoreFrac: 0.35, GapMean: 18, DepChain: 0.50,
			Seed: 0x0C2A_0004,
		},
		// DeepSjeng chess search: transposition-table probes look random
		// but the table is modest and the search stack is very hot.
		DeepSjeng: {
			Name: DeepSjeng, Class: GeneralPurpose,
			FootprintBytes: 28 * MiB, Records: 360_000,
			Streams: 1, StrideBytes: 64,
			PSeq: 0.35, PHot: 0.30, HotBytes: 2 * MiB,
			StoreFrac: 0.25, GapMean: 20, DepChain: 0.55,
			Seed: 0xDEE2_0005,
		},
		// GraphChi community detection: semi-external shard scans
		// (sequential) plus skewed vertex-value lookups.
		CommDetect: {
			Name: CommDetect, Class: GeneralPurpose,
			FootprintBytes: 36 * MiB, Records: 440_000,
			Streams: 2, StrideBytes: 64,
			PSeq: 0.60, PHot: 0.10, HotBytes: 3 * MiB,
			ZipfTheta: 0.70,
			StoreFrac: 0.30, GapMean: 15, DepChain: 0.45,
			Seed: 0xC0DE_0006,
		},
		// GraphChi random walk: dominant uniform-ish jumps over a large
		// edge list — the canonical memory-hostile workload.
		RandomWalk: {
			Name: RandomWalk, Class: DataIntensive,
			FootprintBytes: 96 * MiB, Records: 450_000,
			Streams: 1, StrideBytes: 64,
			PSeq: 0.08, PHot: 0.07, HotBytes: 2 * MiB,
			ZipfTheta: 0.55,
			StoreFrac: 0.10, GapMean: 9, DepChain: 0.35,
			Seed: 0x3A1D_0007,
		},
		// Graph500 single-source shortest path: frontier expansion with
		// skewed random neighbour visits.
		Graph500: {
			Name: Graph500, Class: DataIntensive,
			FootprintBytes: 88 * MiB, Records: 450_000,
			Streams: 1, StrideBytes: 64,
			PSeq: 0.15, PHot: 0.10, HotBytes: 4 * MiB,
			ZipfTheta: 0.60,
			StoreFrac: 0.20, GapMean: 10, DepChain: 0.40,
			Seed: 0x6500_0008,
		},
		// GraphChi page rank: sequential edge streaming, random
		// destination-rank updates over a large vector.
		PageRank: {
			Name: PageRank, Class: DataIntensive,
			FootprintBytes: 80 * MiB, Records: 460_000,
			Streams: 2, StrideBytes: 64,
			PSeq: 0.40, PHot: 0.05, HotBytes: 2 * MiB,
			ZipfTheta: 0.65,
			StoreFrac: 0.25, GapMean: 9, DepChain: 0.40,
			Seed: 0x9A6E_0009,
		},
	}
}

// Names lists the nine benchmarks in the paper's order.
func Names() []string {
	return []string{Caffe, Wrf, Blender, Xz, DeepSjeng, CommDetect, RandomWalk, Graph500, PageRank}
}

// ProfileFor returns the benchmark's profile scaled by scale (footprint and
// record count; locality parameters are scale-invariant). Scale must be
// positive; scale 1.0 is the benchmark's full size.
func ProfileFor(name string, scale float64) (Profile, error) {
	if scale <= 0 {
		return Profile{}, fmt.Errorf("workload: non-positive scale %v", scale)
	}
	p, ok := baseProfiles()[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	p.FootprintBytes = uint64(float64(p.FootprintBytes) * scale)
	if p.FootprintBytes < 16*4096 {
		p.FootprintBytes = 16 * 4096
	}
	p.Records = int(float64(p.Records) * scale)
	if p.Records < 1000 {
		p.Records = 1000
	}
	p.HotBytes = uint64(float64(p.HotBytes) * scale)
	if p.HotBytes < 4096 {
		p.HotBytes = 4096
	}
	if p.WindowBytes > 0 {
		p.WindowBytes = uint64(float64(p.WindowBytes) * scale)
		if p.WindowBytes < 4096 {
			p.WindowBytes = 4096
		}
	}
	return p, nil
}

// MustGenerator builds the named benchmark's generator at scale, panicking
// on unknown names (experiment configs are compiled in).
func MustGenerator(name string, scale float64) *Synthetic {
	p, err := ProfileFor(name, scale)
	if err != nil {
		panic(err)
	}
	return New(p)
}

// Batch is one of the paper's four six-process mixes (§4.1).
type Batch struct {
	// Name is e.g. "2_Data_Intensive".
	Name string
	// Members are benchmark names, six per batch.
	Members []string
	// Priorities holds one priority per member (larger = higher),
	// assigned "randomly" as in the paper but deterministically from the
	// batch seed so every policy sees the same assignment.
	Priorities []int
	// DataIntensive is the number of data-intensive members.
	DataIntensive int
}

// Batches returns the paper's four process batches. All four share Wrf,
// Blender and community detection; the remaining three members vary the
// data-intensive count 0→3.
//
// Priorities are "assigned randomly" in the paper (§4.1) without the draw
// being disclosed; we pin one deterministic draw per batch so every policy
// sees identical assignments. The pinned draws spread heavy- and
// light-faulting processes over both priority halves (a property any
// representative draw has in expectation), which the Figure 5 top/bottom
// split depends on.
func Batches() []Batch {
	mixes := []struct {
		name  string
		extra []string
		prios []int // priority per member (wrf, blender, commdetect, extras…)
		di    int
	}{
		{"No_Data_Intensive", []string{Caffe, DeepSjeng, Xz}, []int{6, 3, 2, 5, 4, 1}, 0},
		{"1_Data_Intensive", []string{Caffe, DeepSjeng, RandomWalk}, []int{5, 6, 1, 4, 3, 2}, 1},
		{"2_Data_Intensive", []string{DeepSjeng, RandomWalk, Graph500}, []int{5, 3, 1, 4, 2, 6}, 2},
		{"3_Data_Intensive", []string{RandomWalk, Graph500, PageRank}, []int{5, 1, 4, 6, 2, 3}, 3},
	}
	out := make([]Batch, 0, len(mixes))
	for _, m := range mixes {
		members := append([]string{Wrf, Blender, CommDetect}, m.extra...)
		out = append(out, Batch{
			Name:          m.name,
			Members:       members,
			Priorities:    m.prios,
			DataIntensive: m.di,
		})
	}
	return out
}

// BatchByName returns the named batch.
func BatchByName(name string) (Batch, error) {
	for _, b := range Batches() {
		if b.Name == name {
			return b, nil
		}
	}
	return Batch{}, fmt.Errorf("workload: unknown batch %q", name)
}

// AssignPriorities returns a deterministic random permutation of 1..n —
// a reproducible "random" priority draw for custom batches.
func AssignPriorities(n int, seed uint64) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i + 1
	}
	rng := prng.New(seed)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Generators instantiates the batch's six generators at scale, in member
// order.
func (b Batch) Generators(scale float64) []*Synthetic {
	out := make([]*Synthetic, 0, len(b.Members))
	for _, name := range b.Members {
		out = append(out, MustGenerator(name, scale))
	}
	return out
}

// TotalFootprint sums the batch members' footprints at scale.
func (b Batch) TotalFootprint(scale float64) uint64 {
	var t uint64
	for _, name := range b.Members {
		p, err := ProfileFor(name, scale)
		if err != nil {
			panic(err)
		}
		t += p.FootprintBytes
	}
	return t
}
