package algo

import (
	"testing"

	"itsim/internal/trace"
)

func testGraph() *Graph { return Generate(4096, 8, 42) }

func TestGenerateGraph(t *testing.T) {
	g := testGraph()
	if g.N != 4096 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Edges() < g.N || g.Edges() > 16*g.N {
		t.Fatalf("edge count %d implausible for avgDeg 8", g.Edges())
	}
	if g.FootprintBytes() == 0 || g.FootprintBytes()%4096 != 0 {
		t.Fatalf("footprint %d not page-aligned", g.FootprintBytes())
	}
	// CSR invariants: rowPtr non-decreasing, targets in range, no self loop.
	for v := 0; v < g.N; v++ {
		lo, hi := g.neighbors(v)
		if hi < lo {
			t.Fatalf("rowPtr decreasing at %d", v)
		}
		for e := lo; e < hi; e++ {
			tgt := int(g.adj[e])
			if tgt < 0 || tgt >= g.N {
				t.Fatalf("edge %d target %d out of range", e, tgt)
			}
			if tgt == v {
				t.Fatalf("self loop at vertex %d", v)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(1024, 4, 7)
	b := Generate(1024, 4, 7)
	if a.Edges() != b.Edges() {
		t.Fatal("edge counts differ for same seed")
	}
	for i := range a.adj {
		if a.adj[i] != b.adj[i] {
			t.Fatalf("adjacency differs at %d", i)
		}
	}
	c := Generate(1024, 4, 8)
	if c.Edges() == a.Edges() {
		// Degrees are random; identical counts would be suspicious but
		// possible — require at least some adjacency difference.
		same := true
		for i := range a.adj {
			if i >= len(c.adj) || a.adj[i] != c.adj[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateTinyGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-vertex graph accepted")
		}
	}()
	Generate(1, 4, 1)
}

func TestScaleFreeSkew(t *testing.T) {
	g := testGraph()
	indeg := make([]int, g.N)
	for _, t := range g.adj {
		indeg[t]++
	}
	max, sum := 0, 0
	for _, d := range indeg {
		sum += d
		if d > max {
			max = d
		}
	}
	avg := float64(sum) / float64(g.N)
	if float64(max) < 10*avg {
		t.Fatalf("max in-degree %d not hub-like vs avg %.1f", max, avg)
	}
}

func generators(g *Graph) []trace.Generator {
	return []trace.Generator{
		NewRandomWalk(g, 4, 20000, 1),
		NewPageRank(g, 20000, 2),
		NewSSSP(g, 20000, 3),
	}
}

func TestGeneratorContracts(t *testing.T) {
	g := testGraph()
	for _, gen := range generators(g) {
		n := 0
		var r trace.Record
		lo, hi := Base, Base+g.FootprintBytes()
		for gen.Next(&r) {
			n++
			if r.Addr < lo || r.Addr >= hi {
				t.Fatalf("%s: address %#x outside heap [%#x,%#x)", gen.Name(), r.Addr, lo, hi)
			}
			if r.Size == 0 {
				t.Fatalf("%s: zero-size access", gen.Name())
			}
		}
		if n != gen.Len() {
			t.Fatalf("%s: produced %d records, Len=%d", gen.Name(), n, gen.Len())
		}
		// Reset reproduces the stream.
		gen.Reset()
		var first trace.Record
		gen.Next(&first)
		gen.Reset()
		var again trace.Record
		gen.Next(&again)
		if first != again {
			t.Fatalf("%s: Reset did not reproduce", gen.Name())
		}
	}
}

func TestLocalityClasses(t *testing.T) {
	// Page rank (streaming CSR) must show markedly more same-page locality
	// than random walk (pointer chasing).
	g := Generate(16384, 8, 11)
	locality := func(gen trace.Generator) float64 {
		var r trace.Record
		var recent [8]uint64
		same, n := 0, 0
		for gen.Next(&r) && n < 20000 {
			page := r.Addr >> 12
			for _, p := range recent {
				if p == page {
					same++
					break
				}
			}
			copy(recent[:], recent[1:])
			recent[len(recent)-1] = page
			n++
		}
		return float64(same) / float64(n)
	}
	pr := locality(NewPageRank(g, 20000, 5))
	rw := locality(NewRandomWalk(g, 4, 20000, 5))
	if pr <= rw {
		t.Fatalf("pagerank locality %.2f not above randomwalk %.2f", pr, rw)
	}
}

func TestSSSPCoversGraph(t *testing.T) {
	// The BFS must reach a substantial share of vertices (the graph is
	// near-connected thanks to hubs): distance stores must target many
	// distinct vertices.
	g := Generate(2048, 8, 13)
	s := NewSSSP(g, 60000, 17)
	seen := map[uint64]struct{}{}
	var r trace.Record
	for s.Next(&r) {
		if r.Kind == trace.Store {
			seen[r.Addr] = struct{}{}
		}
	}
	if len(seen) < g.N/4 {
		t.Fatalf("SSSP stored to only %d distinct addresses (N=%d)", len(seen), g.N)
	}
}

func TestWritesTraceFormatRoundTrip(t *testing.T) {
	// Algorithmic traces must survive the ITRC round trip like any other.
	g := Generate(512, 4, 19)
	gen := NewRandomWalk(g, 2, 5000, 23)
	orig := trace.Records(gen)
	sg := trace.NewSliceGenerator(gen.Name(), orig)
	st := trace.Analyze(sg)
	if st.Records != 5000 {
		t.Fatalf("records = %d", st.Records)
	}
}

func TestCommDetectContracts(t *testing.T) {
	g := testGraph()
	c := NewCommDetect(g, 20000, 7)
	n := 0
	var r trace.Record
	lo, hi := Base, Base+g.FootprintBytes()
	stores := 0
	for c.Next(&r) {
		n++
		if r.Addr < lo || r.Addr >= hi {
			t.Fatalf("address %#x outside heap", r.Addr)
		}
		if r.Kind == trace.Store {
			stores++
		}
	}
	if n != 20000 {
		t.Fatalf("produced %d records", n)
	}
	if stores == 0 {
		t.Fatal("label propagation never updated a label")
	}
	// Reset reproduces.
	c.Reset()
	var first trace.Record
	c.Next(&first)
	c.Reset()
	var again trace.Record
	c.Next(&again)
	if first != again {
		t.Fatal("Reset did not reproduce")
	}
}

func TestCommDetectConverges(t *testing.T) {
	// Labels must coalesce: after enough sweeps the number of store
	// (label-change) records per sweep declines.
	g := Generate(1024, 8, 3)
	c := NewCommDetect(g, 200000, 9)
	var r trace.Record
	storesEarly, storesLate, n := 0, 0, 0
	for c.Next(&r) {
		if r.Kind == trace.Store {
			if n < 50000 {
				storesEarly++
			} else if n >= 150000 {
				storesLate++
			}
		}
		n++
	}
	if storesLate >= storesEarly {
		t.Fatalf("label propagation not converging: early=%d late=%d", storesEarly, storesLate)
	}
}
